"""Ablation: indirect-predictor capacity vs the gnuchess anomaly.

Table 5's gnuchess outlier is explained in this reproduction by BTB
capacity pressure: the chess engine's dispatch-site footprint exceeds the
indirect-target tables while numeric kernels fit.  This bench sweeps the
modeled table size and shows the anomaly appear and disappear.
"""

from conftest import one_shot
from repro.harness import Harness
from repro.hw import BranchConfig, CacheConfig, MachineConfig


def _config(bits: int) -> MachineConfig:
    return MachineConfig(branch=BranchConfig(indirect_bits=bits))


def _miss_ratio(name: str, bits: int) -> float:
    h = Harness(size="test", benchmarks=[name])
    wasm = h.wasm_for(name)
    from repro.runtimes import make_runtime
    bench_fs = h._fs(h.benchmarks()[0])
    res = make_runtime("wamr").run(wasm, fs=bench_fs, config=_config(bits))
    return res.counters["branch_miss_ratio"]


def test_ablation_predictor_capacity(benchmark):
    def sweep():
        out = {}
        for bits in (7, 10, 14):
            out[bits] = {
                "gnuchess": _miss_ratio("gnuchess", bits),
                "gemm": _miss_ratio("gemm", bits),
            }
        return out

    results = one_shot(benchmark, sweep)
    # Tiny predictor: even gemm's loop thrashes.
    assert results[7]["gemm"] > results[14]["gemm"]
    # gnuchess needs far more capacity than gemm: at the modeled size its
    # ratio stays elevated while gemm's is already converged.
    assert results[10]["gnuchess"] > results[10]["gemm"]
    # With a huge table the anomaly shrinks.
    assert results[14]["gnuchess"] <= results[7]["gnuchess"]
