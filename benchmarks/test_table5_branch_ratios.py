"""Table 5 bench: branch miss *ratios* stay near native — except chess."""

from conftest import one_shot
from repro.harness.experiments import arch


def test_table5_branch_ratios(benchmark, harness):
    table = one_shot(benchmark, lambda: arch.table5(harness))
    # gnuchess on the interpreters: the paper's outlier.  Its data-
    # dependent bytecode stream defeats the dispatch predictor while
    # regular numeric kernels stay near-perfect.  (The paper measures
    # ~20% absolute; the model reproduces the *separation*, at a smaller
    # magnitude — see EXPERIMENTS.md.)
    chess_wamr = table.cell("gnuchess", "wamr")
    pb_label = "PolyBench"
    assert chess_wamr > 1.5 * table.cell(pb_label, "wamr")
    # Regular numeric kernels predict well on every engine.
    for engine in ("native", "wasmtime", "wasm3", "wamr"):
        assert table.cell(pb_label, engine) < 12.0, engine
    # And interpreter ratios elsewhere stay in native's regime
    # (Table 5's headline).
    assert table.cell(pb_label, "wamr") < \
        3 * max(0.5, table.cell(pb_label, "native"))
