"""Figures 11-14 bench: the appendix per-benchmark breakdowns."""

from conftest import one_shot
from repro.harness.experiments import arch, memory, perf


def test_fig11_backends_per_benchmark(benchmark, small_harness):
    table = one_shot(benchmark, lambda: perf.fig11(small_harness))
    assert len(table.rows) == len(small_harness.benchmark_names)


def test_fig12_aot_per_benchmark(benchmark, small_harness):
    table = one_shot(benchmark, lambda: perf.fig12(small_harness))
    assert len(table.rows) == len(small_harness.benchmark_names)
    for row in table.rows:
        assert all(v > 0.9 for v in row[1:]), row


def test_fig13_mrss_per_benchmark(benchmark, small_harness):
    table = one_shot(benchmark, lambda: memory.fig13(small_harness))
    assert len(table.rows) == len(small_harness.benchmark_names)


def test_fig14_instructions_per_benchmark(benchmark, small_harness):
    table = one_shot(benchmark, lambda: arch.fig14(small_harness))
    for row in table.rows:
        assert all(v > 1.0 for v in row[1:]), row
