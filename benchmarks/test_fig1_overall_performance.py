"""Figure 1 bench: overall performance slowdown vs native (Finding 1)."""

from conftest import one_shot
from repro.harness.experiments import perf


def test_fig1_overall_performance(benchmark, harness):
    table = one_shot(benchmark, lambda: perf.fig1(harness))
    row = table.rows[-1]
    assert row[0] == "GEOMEAN"
    slowdowns = dict(zip(table.columns[1:], row[1:]))

    # Finding 1: every runtime is slower than native.
    for runtime, slowdown in slowdowns.items():
        assert slowdown > 1.0, (runtime, slowdown)

    # JIT runtimes beat interpreters on average.
    jit_worst = max(slowdowns[r] for r in ("wasmtime", "wavm", "wasmer"))
    interp_best = min(slowdowns[r] for r in ("wasm3", "wamr"))
    assert interp_best > jit_worst

    # The paper's per-runtime ordering: wasmer <= wasmtime < wavm,
    # wasm3 < wamr.
    assert slowdowns["wasmer"] <= slowdowns["wasmtime"] * 1.05
    assert slowdowns["wavm"] > slowdowns["wasmtime"]
    assert slowdowns["wasm3"] < slowdowns["wamr"]

    # Rough magnitudes (paper: 1.59x-9.57x band).
    assert 1.05 < slowdowns["wasmer"] < 4.0
    assert 3.0 < slowdowns["wamr"] < 30.0
