"""Ablation: interpreter dispatch design (threaded vs classic).

DESIGN.md calls out the dispatch structure as the mechanism behind the
Wasm3-vs-WAMR gap; this bench isolates it by running the same module
through both interpreter profiles and through hybrids, holding everything
else fixed.
"""

from conftest import one_shot
from repro.compiler import compile_source
from repro.hw import CPUModel
from repro.runtimes.instance import instantiate
from repro.runtimes.interp.engine import (CLASSIC_PROFILE, THREADED_PROFILE,
                                          InterpProfile, Interpreter,
                                          prepare_function)
from repro.wasi import WasiAPI, VirtualFS
from repro.wasm import decode_module
from repro.wasm.module import KIND_FUNC

SOURCE = """
int main(void) {
    int i;
    unsigned int h = 1u;
    for (i = 0; i < 15000; i++) h = h * 31u + (unsigned int)(i ^ (i >> 3));
    print_x(h); print_nl();
    return 0;
}
"""


def run_profile(profile: InterpProfile):
    module = decode_module(compile_source(SOURCE).wasm_bytes)
    cpu = CPUModel()
    fs = VirtualFS()
    wasi = WasiAPI(fs=fs, cpu=cpu)
    env = instantiate(module, wasi, cpu)
    functions = [None] * module.num_funcs
    for idx, entry in env.host_funcs.items():
        functions[idx] = entry
    n_imported = module.num_imported_funcs
    for i, func in enumerate(module.functions):
        functions[n_imported + i] = ("wasm",
                                     prepare_function(module, func,
                                                      n_imported + i))
    interp = Interpreter(profile, cpu, env.memory, env.globals, env.table,
                         functions)
    interp.set_signatures(module)
    start = module.find_export("_start", KIND_FUNC)
    from repro.errors import ExitProc
    try:
        interp.call_index(start.index, ())
    except ExitProc:
        pass
    return cpu, fs


def test_ablation_dispatch_profiles(benchmark):
    def run_all():
        results = {}
        for label, profile in (("threaded", THREADED_PROFILE),
                               ("classic", CLASSIC_PROFILE)):
            cpu, fs = run_profile(profile)
            results[label] = (cpu.cycles, fs.stdout_text())
        return results

    results = one_shot(benchmark, run_all)
    assert results["threaded"][1] == results["classic"][1]
    # The threaded design's cheaper dispatch wins on the same module —
    # the Wasm3-vs-WAMR gap with every other variable held fixed.
    assert results["threaded"][0] < results["classic"][0]


def test_ablation_dispatch_cost_scaling(benchmark):
    """Per-op dispatch cost translates ~linearly into cycles."""
    def sweep():
        cycles = []
        for dispatch in (2, 6, 12):
            profile = InterpProfile(
                name=f"d{dispatch}", dispatch_cost=dispatch,
                handler_base=4, threaded=True,
                translate_cost_per_op=36, code_bytes_per_op=20)
            cpu, _fs = run_profile(profile)
            cycles.append(cpu.cycles)
        return cycles

    c2, c6, c12 = one_shot(benchmark, sweep)
    assert c2 < c6 < c12
    # Roughly linear: the 2->12 gap is much larger than the 2->6 gap.
    assert (c12 - c2) > 1.5 * (c6 - c2)
