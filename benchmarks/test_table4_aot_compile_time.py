"""Table 4 bench: AOT compilation times and their share of total time."""

from conftest import one_shot
from repro.harness import geomean
from repro.harness.experiments import perf


def test_table4_aot_compile_time(benchmark, harness):
    table = one_shot(benchmark, lambda: perf.table4(harness))
    # Parse the "ms (pct%)" cells of the AVERAGE row.
    avg = table.rows[-1]
    assert avg[0] == "AVERAGE"

    def parse(cell):
        ms, pct = cell.split(" (")
        return float(ms), float(pct.rstrip("%)"))

    wt_ms, wt_pct = parse(avg[1])
    wavm_ms, wavm_pct = parse(avg[2])
    wasmer_ms, wasmer_pct = parse(avg[3])
    # WAVM compiles an order of magnitude slower (paper: 0.93s vs 0.09s).
    assert wavm_ms > 5 * wt_ms
    assert wavm_ms > 5 * wasmer_ms
    # And its compile time is a much larger share of total runtime
    # (paper: 9.52% vs 0.67% / 0.48%).
    assert wavm_pct > 1.5 * wt_pct
