"""Figure 9 bench: cache misses (Finding 8, first half)."""

from conftest import one_shot
from repro.harness.experiments import arch


def test_fig9_cache_misses(benchmark, harness):
    table = one_shot(benchmark, lambda: arch.fig9(harness))
    geo = table.rows[-1]
    ratios = dict(zip(table.columns[1:], geo[1:]))
    # Finding 8: every runtime adds cache misses (paper 1.39x-4.60x),
    # with the LLVM JIT's compile bursts on top.
    for runtime, ratio in ratios.items():
        assert ratio >= 1.0, (runtime, ratio)
    assert ratios["wavm"] == max(ratios.values())
