"""Shared fixtures for the benchmark harness.

The bench targets regenerate each paper figure/table over a representative
subset at the fast workload size, assert the paper's qualitative shape,
and time the regeneration with pytest-benchmark.  Use the ``wabench`` CLI
for full-suite, full-size runs (recorded in EXPERIMENTS.md).
"""

import pytest

from repro.harness import Harness

# One benchmark per suite flavor plus the apps the paper singles out.
REPRESENTATIVE = [
    "gcc-loops", "quicksort",             # JetStream2
    "sha",                                # MiBench
    "gemm", "jacobi-2d",                  # PolyBench
    "gnuchess", "whitedb", "facedetection",  # apps with signature effects
]

SMALL_SET = ["quicksort", "gemm", "crc32", "facedetection"]


@pytest.fixture(scope="session")
def harness():
    """Session harness over the representative subset (results cached).

    Uses the "small" workload class: the paper's qualitative relationships
    (JIT vs interpreter, AOT gains, compile-time shares) need runs long
    enough that execution is not swamped by load/compile phases.
    """
    return Harness(size="small", benchmarks=REPRESENTATIVE)


@pytest.fixture(scope="session")
def small_harness():
    """Tiny harness for the expensive sweeps (opt levels, appendix)."""
    return Harness(size="test", benchmarks=SMALL_SET)


@pytest.fixture(scope="session")
def backend_harness():
    """Small-size harness for the backend-tier comparison (Fig. 2).

    Compile-share experiments need execution-dominated runs: at the
    "test" workload class the LLVM tier's compile time swamps execution
    and the paper's amortization finding cannot appear.
    """
    return Harness(size="small", benchmarks=SMALL_SET)


def one_shot(benchmark, fn):
    """Benchmark a function exactly once (model runs are deterministic)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
