"""Figure 8 bench: branch prediction misses (Finding 7)."""

from conftest import one_shot
from repro.harness.experiments import arch


def test_fig8_branch_misses(benchmark, harness):
    table = one_shot(benchmark, lambda: arch.fig8(harness))
    geo = table.rows[-1]
    ratios = dict(zip(table.columns[1:], geo[1:]))
    # Finding 7: more branch misses overall (paper 1.52x-12.64x); the
    # Cranelift tiers track native closely, LLVM's compile burst and the
    # interpreters' dispatch push the others up.
    for runtime, ratio in ratios.items():
        assert ratio >= 0.9, (runtime, ratio)
    assert ratios["wavm"] > ratios["wasmtime"]
    # The interpreters' indirect dispatch dominates the ranking.
    assert max(ratios["wasm3"], ratios["wamr"]) > ratios["wasmtime"]
