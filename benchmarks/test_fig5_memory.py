"""Figure 5/13 bench: memory overhead (Finding 5)."""

from conftest import one_shot
from repro.harness.experiments import memory


def test_fig5_memory(benchmark, harness):
    table = one_shot(benchmark, lambda: memory.fig5(harness))
    geo = table.rows[-1]
    assert geo[0] == "GEOMEAN"
    mrss = dict(zip(table.columns[1:], geo[1:]))
    # Finding 5: runtimes consume more memory on average ...
    for runtime in ("wasmtime", "wavm", "wasmer", "wamr"):
        assert mrss[runtime] > 1.0, runtime
    # ... WAVM the most, Wasm3 the least.
    assert mrss["wavm"] == max(mrss.values())
    assert mrss["wasm3"] == min(mrss.values())
    # whitedb: JIT runtimes show LESS memory than native (demand paging
    # vs native calloc) — the paper's anomaly.
    assert table.cell("whitedb", "wasmtime") < 1.0
