"""Figure 7 bench: IPC of native vs runtimes (Finding 6, second half)."""

from conftest import one_shot
from repro.harness.experiments import arch


def test_fig7_ipc(benchmark, harness):
    table = one_shot(benchmark, lambda: arch.fig7(harness))
    geo = table.rows[-1]
    ipc = dict(zip(table.columns[1:], geo[1:]))
    # All engines keep the pipeline reasonably busy.
    for engine, value in ipc.items():
        assert 0.3 < value <= 4.0, (engine, value)
    # The runtimes' IPC is generally at or above native's (they do more,
    # but more regular, work).
    assert ipc["wasm3"] > ipc["native"]
    assert ipc["wamr"] > ipc["native"] * 0.9
