"""Figure 6/14 bench: dynamic instruction blow-up (Finding 6)."""

from conftest import one_shot
from repro.harness.experiments import arch


def test_fig6_instructions(benchmark, harness):
    table = one_shot(benchmark, lambda: arch.fig6(harness))
    geo = table.rows[-1]
    assert geo[0] == "GEOMEAN"
    ratios = dict(zip(table.columns[1:], geo[1:]))
    # Finding 6: every runtime executes more instructions than native
    # (paper band: 2.03x-14.61x).
    for runtime, ratio in ratios.items():
        assert ratio > 1.2, (runtime, ratio)
    # Interpreters far above JITs.
    assert min(ratios["wasm3"], ratios["wamr"]) > \
        2 * max(ratios["wasmtime"], ratios["wasmer"])
