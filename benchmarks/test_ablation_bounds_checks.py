"""Ablation: software bounds-check density (the sandbox tax).

One of the modeled differences between native and JIT-compiled Wasm is
explicit bounds checking.  This bench sweeps the check density on the
same module and measures the steady-state cost, and checks that the
LLVM tier's check elimination keeps its density below Cranelift's.
"""

from conftest import one_shot
from repro.compiler import compile_source
from repro.hw import CPUModel
from repro.isa import Machine, ops
from repro.isa.memory import LinearMemory
from repro.runtimes.jit import BACKENDS, LoweringOptions, lower_module
from repro.wasi import WasiAPI, VirtualFS
from repro.wasm import decode_module

SOURCE = """
int data[4096];
int main(void) {
    int i, round;
    long total = 0l;
    for (round = 0; round < 12; round++)
        for (i = 0; i < 4096; i++) {
            data[i] = data[i] + i;
            total += (long)data[i];
        }
    print_l(total); print_nl();
    return 0;
}
"""


def _run_with_density(module, density):
    program = lower_module(module, LoweringOptions(check_density=density))
    program.finalize(0x0400_0000)
    cpu = CPUModel()
    fs = VirtualFS()
    machine = Machine(program, cpu,
                      memory=LinearMemory(program.memory_pages),
                      host=WasiAPI(fs=fs, cpu=cpu).as_host())
    machine.apply_data_segments()
    from repro.errors import ExitProc
    try:
        machine.run_export("_start")
    except ExitProc:
        pass
    return cpu.counters.instructions, fs.stdout_text()


def test_ablation_bounds_check_density(benchmark):
    module = decode_module(compile_source(SOURCE).wasm_bytes)

    def sweep():
        return {d: _run_with_density(module, d) for d in (0.0, 0.5, 1.0)}

    results = one_shot(benchmark, sweep)
    outputs = {text for _, text in results.values()}
    assert len(outputs) == 1                      # checks never change results
    i0, i5, i10 = (results[d][0] for d in (0.0, 0.5, 1.0))
    assert i0 < i5 < i10                          # density costs instructions
    # Full density on this memory-heavy loop costs >8% instructions.
    assert i10 > i0 * 1.08


def test_ablation_llvm_eliminates_checks(benchmark):
    module = decode_module(compile_source(SOURCE).wasm_bytes)

    def count_checks():
        out = {}
        for tier in ("cranelift", "llvm"):
            spec = BACKENDS[tier]
            from repro.runtimes.jit import compile_backend
            program = compile_backend(module, spec)
            out[tier] = sum(1 for f in program.functions
                            for i in f.code if i[0] == ops.CHECK)
        return out

    checks = one_shot(benchmark, count_checks)
    assert checks["llvm"] < checks["cranelift"]
