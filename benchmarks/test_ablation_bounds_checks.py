"""Ablation: software bounds-check density (the sandbox tax).

One of the modeled differences between native and JIT-compiled Wasm is
explicit bounds checking.  This bench sweeps the check density on the
same module and measures the steady-state cost, and checks that the
LLVM tier's check elimination keeps its density below Cranelift's.
"""

from conftest import one_shot
from repro.analysis import function_ranges
from repro.compiler import compile_source
from repro.hw import CPUModel
from repro.isa import Machine, ops
from repro.isa.memory import LinearMemory
from repro.runtimes.jit import (BACKENDS, LoweringOptions, compile_backend,
                                lower_module)
from repro.wasi import WasiAPI, VirtualFS
from repro.wasm import decode_module

SOURCE = """
int data[4096];
int main(void) {
    int i, round;
    long total = 0l;
    for (round = 0; round < 12; round++)
        for (i = 0; i < 4096; i++) {
            data[i] = data[i] + i;
            total += (long)data[i];
        }
    print_l(total); print_nl();
    return 0;
}
"""

# Same loop structure, but the index chases data-dependent values: the
# range analysis cannot prove those accesses, so the optimizing tier
# must keep their checks.
POINTER_SOURCE = """
int next[4096];
int main(void) {
    int i, p = 0;
    long total = 0l;
    for (i = 0; i < 4096; i++)
        next[i] = (i * 31 + 7) & 4095;
    for (i = 0; i < 49152; i++) {
        p = next[(p + i) & 8191];
        total += (long)p;
    }
    print_l(total); print_nl();
    return 0;
}
"""


def _count_checks(program):
    return sum(1 for f in program.functions
               for i in f.code if i[0] == ops.CHECK)


def _analysis_totals(module):
    total = proved = 0
    for func in module.functions:
        ranges = function_ranges(module, func)
        total += ranges.mem_ops
        proved += len(ranges.inbounds)
    return total, proved


def _run_with_density(module, density):
    program = lower_module(module, LoweringOptions(check_density=density))
    program.finalize(0x0400_0000)
    cpu = CPUModel()
    fs = VirtualFS()
    machine = Machine(program, cpu,
                      memory=LinearMemory(program.memory_pages),
                      host=WasiAPI(fs=fs, cpu=cpu).as_host())
    machine.apply_data_segments()
    from repro.errors import ExitProc
    try:
        machine.run_export("_start")
    except ExitProc:
        pass
    return cpu.counters.instructions, fs.stdout_text()


def test_ablation_bounds_check_density(benchmark):
    module = decode_module(compile_source(SOURCE).wasm_bytes)

    def sweep():
        return {d: _run_with_density(module, d) for d in (0.0, 0.5, 1.0)}

    results = one_shot(benchmark, sweep)
    outputs = {text for _, text in results.values()}
    assert len(outputs) == 1                      # checks never change results
    i0, i5, i10 = (results[d][0] for d in (0.0, 0.5, 1.0))
    assert i0 < i5 < i10                          # density costs instructions
    # Full density on this memory-heavy loop costs >8% instructions.
    assert i10 > i0 * 1.08


def test_ablation_llvm_eliminates_checks(benchmark):
    module = decode_module(compile_source(SOURCE).wasm_bytes)

    def count_checks():
        out = {}
        for tier in ("cranelift", "llvm"):
            program = compile_backend(module, BACKENDS[tier])
            out[tier] = _count_checks(program)
        return out

    checks = one_shot(benchmark, count_checks)
    assert checks["llvm"] < checks["cranelift"]

    # At the lowering level the LLVM tier's residual checks are exactly
    # the accesses the range analysis could not prove in bounds — not a
    # tuned fraction.  Both tiers also emit one stack-limit check per
    # function prologue; the heavy pass pipeline may then hoist/merge a
    # few more, so the final backend output only gets smaller.
    total, proved = _analysis_totals(module)
    prologues = len(module.functions)
    lowered = {tier: _count_checks(lower_module(module,
                                                BACKENDS[tier].lowering))
               for tier in ("cranelift", "llvm")}
    assert lowered["cranelift"] == total + prologues
    assert lowered["llvm"] == total - proved + prologues
    assert proved > 0
    assert checks["llvm"] <= lowered["llvm"]
    assert checks["cranelift"] <= lowered["cranelift"]


def test_ablation_pointer_chase_retains_checks(benchmark):
    """Data-dependent indexing defeats elimination; induction does not."""
    array_mod = decode_module(compile_source(SOURCE).wasm_bytes)
    chase_mod = decode_module(compile_source(POINTER_SOURCE).wasm_bytes)

    def residual_fraction():
        out = {}
        for name, module in (("array", array_mod), ("chase", chase_mod)):
            program = lower_module(module, BACKENDS["llvm"].lowering)
            total, proved = _analysis_totals(module)
            residual = _count_checks(program) - len(module.functions)
            out[name] = (residual, total, proved)
        return out

    results = one_shot(benchmark, residual_fraction)
    for residual, total, proved in results.values():
        assert residual == total - proved     # analysis drives lowering
    array_frac = results["array"][0] / results["array"][1]
    chase_frac = results["chase"][0] / results["chase"][1]
    assert chase_frac > array_frac            # chasing keeps more checks
