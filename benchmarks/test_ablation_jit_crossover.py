"""Ablation: the JIT compile-time / run-time crossover (Section 4.1).

The paper observes that short-running programs hurt JIT runtimes
(compile time dominates: jpeg/WAVM at 135x) while long runs amortize it.
This bench sweeps workload length for one program and locates the
crossover where WAVM overtakes the interpreter.
"""

from conftest import one_shot
from repro.compiler import compile_source
from repro.runtimes import make_runtime

TEMPLATE = """
int main(void) {
    int i;
    unsigned int h = 1u;
    for (i = 0; i < N; i++) h = h * 31u + (unsigned int)i;
    print_x(h); print_nl();
    return 0;
}
"""


def test_ablation_jit_crossover(benchmark):
    def sweep():
        points = {}
        for n in (200, 2000, 60000):
            wasm = compile_source(TEMPLATE, 2,
                                  defines={"N": str(n)}).wasm_bytes
            wavm = make_runtime("wavm").run(wasm)
            wasm3 = make_runtime("wasm3").run(wasm)
            assert wavm.stdout == wasm3.stdout
            points[n] = (wavm.seconds, wasm3.seconds,
                         wavm.compile_seconds / wavm.seconds)
        return points

    points = one_shot(benchmark, sweep)
    # Short run: the LLVM compile dominates; the interpreter wins.
    assert points[200][0] > points[200][1]
    assert points[200][2] > 0.5          # compile share > 50%
    # Long run: compilation amortizes; the JIT wins decisively.
    assert points[60000][0] < points[60000][1]
    assert points[60000][2] < 0.5
    # Compile share falls monotonically with workload length.
    shares = [points[n][2] for n in (200, 2000, 60000)]
    assert shares[0] > shares[1] > shares[2]
