"""Figure 3/12 bench: AOT compilation speedup (Finding 3)."""

from conftest import one_shot
from repro.harness.experiments import perf


def test_fig3_aot_speedup(benchmark, harness):
    table = one_shot(benchmark, lambda: perf.fig3(harness))
    row = table.rows[-1]
    assert row[0] == "GEOMEAN"
    speedups = dict(zip(table.columns[1:], row[1:]))
    # AOT never hurts.
    for runtime, speedup in speedups.items():
        assert speedup >= 0.99, (runtime, speedup)
    # Finding 3: WAVM gains far more than the Cranelift runtimes.
    assert speedups["wavm"] > speedups["wasmtime"] * 1.2
    assert speedups["wavm"] > speedups["wasmer"] * 1.2
    # facedetection (short run, big code) is WAVM's best case.
    fd = table.cell("facedetection", "wavm")
    assert fd >= speedups["wavm"]
