"""Figure 10 bench: cache miss ratios stay comparable to native."""

from conftest import one_shot
from repro.harness.experiments import arch


def test_fig10_cache_ratios(benchmark, harness):
    table = one_shot(benchmark, lambda: arch.fig10(harness))
    avg = table.rows[-1]
    ratios = dict(zip(table.columns[1:], avg[1:]))
    native = ratios["native"]
    # The paper's observation: despite more absolute misses, the miss
    # *ratios* stay in the same regime as native.
    for engine, value in ratios.items():
        assert value < max(35.0, 3.5 * native), (engine, value)
