"""Figure 4 bench: compiler optimization level speedups (Finding 4)."""

from conftest import one_shot
from repro.harness.experiments import perf


def test_fig4_opt_levels(benchmark, small_harness):
    table = one_shot(benchmark, lambda: perf.fig4(small_harness))
    rows = {row[0]: dict(zip(table.columns[1:], row[1:]))
            for row in table.rows}
    # -O0 baseline is 1.0 everywhere.
    for engine, levels in rows.items():
        assert abs(levels["-O0"] - 1.0) < 1e-9
        # Finding 4: higher levels never slow an engine down (geomean).
        assert levels["-O2"] > 1.0, engine
    # Finding 4's headline: the interpreters benefit the most from -O
    # (their cost is proportional to the wasm op count).
    assert rows["wasm3"]["-O2"] >= rows["wasmtime"]["-O2"]
    assert rows["wamr"]["-O2"] >= rows["wasmer"]["-O2"]
    # -O3 never regresses vs -O2.
    for engine, levels in rows.items():
        assert levels["-O3"] >= levels["-O2"] * 0.95, engine
