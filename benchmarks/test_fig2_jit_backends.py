"""Figure 2/11 bench: Wasmer's three JIT backends (Finding 2)."""

from conftest import one_shot
from repro.harness.experiments import perf


def test_fig2_jit_backends(benchmark, backend_harness):
    table = one_shot(benchmark, lambda: perf.fig2(backend_harness))
    row = table.rows[-1]
    assert row[0] == "GEOMEAN"
    singlepass, cranelift, llvm = row[1], row[2], row[3]
    # Normalized to SinglePass: it is exactly 1.
    assert abs(singlepass - 1.0) < 1e-9
    # Finding 2: Cranelift beats SinglePass overall (paper: 1.74x).
    assert cranelift < 1.0
    # LLVM generates the best steady-state code but pays heavy compile
    # time; at model workload scale it lands near SinglePass overall
    # (the paper's seconds-long workloads amortize it further).
    assert llvm < 1.6
    # Cranelift is the best default (paper: 1.74x vs LLVM's 1.43x).
    assert cranelift < llvm
