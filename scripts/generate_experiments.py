#!/usr/bin/env python3
"""Regenerate every paper artifact and write results/ + timing summary.

One shared harness serves all experiments (runs are cached and reused
across figures exactly as one `perf` session serves many tables).  The
-O-level sweep (Figure 4) multiplies every configuration by four, so it
runs over a 16-benchmark cross-section (4 per group) — noted in its
output.  Everything else covers all 50 benchmarks.
"""

import os
import sys
import time

from repro.bench import ALL_BENCHMARKS
from repro.harness import Harness
from repro.harness.experiments import EXPERIMENTS, perf

OUT = sys.argv[1] if len(sys.argv) > 1 else "results"
SIZE = sys.argv[2] if len(sys.argv) > 2 else "small"
SCOPE = sys.argv[3] if len(sys.argv) > 3 else "full"   # full | cross

# A 21-benchmark cross-section: four per suite group plus all seven whole
# applications — used when SCOPE=cross (and always for Figure 4, whose
# -O sweep multiplies every configuration by four).
CROSS_SECTION = [
    "gcc-loops", "quicksort", "tsf",
    "sha", "crc32", "bitcount",
    "gemm", "jacobi-2d", "trisolv",
    "bzip2", "espeak", "facedetection", "gnuchess", "mnist", "snappy",
    "whitedb",
]


def main() -> None:
    os.makedirs(OUT, exist_ok=True)
    harness = Harness(size=SIZE) if SCOPE == "full" else \
        Harness(size=SIZE, benchmarks=CROSS_SECTION)

    order = ["fig1", "fig5", "fig6", "fig7", "fig8", "table5", "fig9",
             "fig10", "fig2", "fig11", "fig3", "fig12", "table4", "fig13",
             "fig14", "fig4"]
    total_start = time.time()
    for experiment_id in order:
        fn = EXPERIMENTS[experiment_id]
        start = time.time()
        if experiment_id == "fig4":
            # The -O sweep multiplies every configuration; regenerate the
            # -O0 baseline against the shared -O2 runs (-O1/-O3 shift
            # results by <5% — run `wabench fig4` for the full sweep).
            table = perf.fig4(harness, opt_levels=(0, 2))
        else:
            table = fn(harness)
        if SCOPE != "full":
            table.note(f"run over a {len(CROSS_SECTION)}-benchmark "
                       "cross-section (3 per suite group + all 7 apps)")
        text = table.render()
        with open(os.path.join(OUT, f"{experiment_id}.txt"), "w") as f:
            f.write(text + "\n")
        print(text)
        print(f"  [{experiment_id}: {time.time() - start:.0f}s wall]\n",
              flush=True)
    print(f"total wall: {(time.time() - total_start) / 60:.1f} min")


if __name__ == "__main__":
    main()
