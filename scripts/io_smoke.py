#!/usr/bin/env python
"""I/O-class determinism smoke: bench/io vs the committed golden.

Usage::

    python scripts/io_smoke.py [--golden IO_golden.json] [--out FILE]
                               [--update-golden] [--jobs N]

Runs every ``bench/io`` workload at ``--size test`` across the full
engine grid and collects the canonical I/O profile per (benchmark,
engine): stdout, exit code, and the per-syscall ``{calls,
instructions, bytes}`` breakdown.  The script then enforces the two
contracts CI cares about:

* **determinism** — a warm-cache rerun and a ``--jobs`` fan-out must
  reproduce the cold run's canonical JSON byte-for-byte;
* **golden** — the canonical JSON must byte-match the committed
  ``IO_golden.json`` (refresh with ``--update-golden`` and commit the
  result alongside the change that moved it).

Exit codes: 0 ok, 1 determinism or golden mismatch, 2 usage.
"""

import argparse
import json
import shutil
import sys
import tempfile

from repro import speed
from repro.bench import io_names
from repro.harness import Harness
from repro.harness.parallel import run_cells
from repro.registry import ALL_RUNTIME_NAMES

IO_SCHEMA = "wabench-io/1"
SIZE = "test"


def collect(cache_dir, jobs=1):
    """Canonical JSON of the full io-class grid, via one harness."""
    speed.module_cache.clear()
    benches = list(io_names())
    harness = Harness(size=SIZE, benchmarks=benches, cache_dir=cache_dir)
    if jobs > 1:
        cells = [(bench, engine, 2, False)
                 for bench in benches for engine in ALL_RUNTIME_NAMES]
        run_cells(harness, cells, jobs=jobs)
    profiles = {}
    for bench in benches:
        per_engine = {}
        for engine in ALL_RUNTIME_NAMES:
            result = harness.run(bench, engine)
            per_engine[engine] = {
                "stdout": result.stdout_text(),
                "exit_code": result.exit_code,
                "wasi": result.wasi_calls,
            }
        profiles[bench] = per_engine
    report = {
        "schema": IO_SCHEMA,
        "size": SIZE,
        "engines": list(ALL_RUNTIME_NAMES),
        "profiles": profiles,
    }
    return json.dumps(report, indent=2, sort_keys=True) + "\n"


def main(argv):
    parser = argparse.ArgumentParser(
        prog="io_smoke", description=__doc__.split("\n\n")[0])
    parser.add_argument("--golden", default="IO_golden.json",
                        help="committed golden to byte-compare against")
    parser.add_argument("--out", default=None,
                        help="also write the canonical report here")
    parser.add_argument("--update-golden", action="store_true",
                        help="rewrite the golden instead of comparing")
    parser.add_argument("--jobs", type=int, default=4,
                        help="worker count for the fan-out pass")
    args = parser.parse_args(argv[1:])

    cache_dir = tempfile.mkdtemp(prefix="io-smoke-")
    try:
        cold = collect(cache_dir)
        warm = collect(cache_dir)
        fanned = collect(cache_dir + "-jobs", jobs=max(2, args.jobs))
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)
        shutil.rmtree(cache_dir + "-jobs", ignore_errors=True)

    status = 0
    if warm != cold:
        print("io_smoke: DETERMINISM VIOLATION: warm-cache rerun "
              "diverged from the cold run")
        status = 1
    if fanned != cold:
        print("io_smoke: DETERMINISM VIOLATION: --jobs fan-out "
              "diverged from the serial run")
        status = 1
    if status == 0:
        grid = len(list(io_names())) * len(ALL_RUNTIME_NAMES)
        print(f"io_smoke: cold/warm/--jobs byte-identical "
              f"({grid} grid cells)")

    if args.out:
        with open(args.out, "w") as fh:
            fh.write(cold)
    if args.update_golden:
        with open(args.golden, "w") as fh:
            fh.write(cold)
        print(f"io_smoke: wrote {args.golden}")
        return status

    try:
        with open(args.golden, "r") as fh:
            golden = fh.read()
    except FileNotFoundError:
        print(f"io_smoke: {args.golden}: no such file "
              "(generate with --update-golden)", file=sys.stderr)
        return 1
    if cold != golden:
        print(f"io_smoke: GOLDEN MISMATCH vs {args.golden}")
        cold_lines = cold.splitlines()
        golden_lines = golden.splitlines()
        for index, (a, b) in enumerate(zip(golden_lines, cold_lines)):
            if a != b:
                print(f"  first difference at line {index + 1}:"
                      f"\n  < {a}\n  > {b}")
                break
        else:
            print(f"  line counts differ: golden {len(golden_lines)}, "
                  f"measured {len(cold_lines)}")
        print("  refresh: python scripts/io_smoke.py --update-golden")
        status = 1
    else:
        print(f"io_smoke: matches committed {args.golden}")
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv))
