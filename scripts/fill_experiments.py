#!/usr/bin/env python3
"""Fill EXPERIMENTS.md placeholders from results/*.txt artifacts."""

import re
import sys

RESULTS = sys.argv[1] if len(sys.argv) > 1 else "results"


def parse_table(path):
    rows = {}
    columns = None
    for line in open(path):
        if "|" not in line or line.startswith("=="):
            continue
        cells = [c.strip() for c in line.split("|")]
        if columns is None:
            columns = cells
            continue
        if set(cells[0]) <= set("-+ "):
            continue
        rows[cells[0]] = dict(zip(columns[1:], cells[1:]))
    return rows


def main():
    fig1 = parse_table(f"{RESULTS}/fig1.txt")
    fig2 = parse_table(f"{RESULTS}/fig2.txt")
    fig3 = parse_table(f"{RESULTS}/fig3.txt")
    t4 = parse_table(f"{RESULTS}/table4.txt")
    fig4 = parse_table(f"{RESULTS}/fig4.txt")
    fig5 = parse_table(f"{RESULTS}/fig5.txt")
    fig6 = parse_table(f"{RESULTS}/fig6.txt")
    fig7 = parse_table(f"{RESULTS}/fig7.txt")
    fig8 = parse_table(f"{RESULTS}/fig8.txt")
    t5 = parse_table(f"{RESULTS}/table5.txt")
    fig9 = parse_table(f"{RESULTS}/fig9.txt")
    fig10 = parse_table(f"{RESULTS}/fig10.txt")
    fig12 = parse_table(f"{RESULTS}/fig12.txt")
    fig13 = parse_table(f"{RESULTS}/fig13.txt")

    g1 = fig1["GEOMEAN"]
    g2 = fig2["GEOMEAN"]
    g3 = fig3["GEOMEAN"]
    g4 = fig4  # per engine rows
    g5 = fig5["GEOMEAN"]
    g6 = fig6["GEOMEAN"]
    g7 = fig7["GEOMEAN"]
    g8 = fig8["GEOMEAN"]
    g9 = fig9["GEOMEAN"]
    g10 = fig10["AVERAGE"]
    t4avg = t4["AVERAGE"]

    f10_band = sorted(float(g10[e]) for e in
                      ("wasmtime", "wavm", "wasmer", "wasm3", "wamr"))

    subs = {
        "FIG1_WT": g1["wasmtime"], "FIG1_WAVM": g1["wavm"],
        "FIG1_WASMER": g1["wasmer"], "FIG1_W3": g1["wasm3"],
        "FIG1_WAMR": g1["wamr"],
        "FIG2_CL": g2["Cranelift"], "FIG2_LLVM": g2["LLVM"],
        "FIG3_WT": g3["wasmtime"], "FIG3_WAVM": g3["wavm"],
        "FIG3_WASMER": g3["wasmer"],
        "FIG3_FD_WAVM": fig12["facedetection"]["wavm"],
        "T4_WT": t4avg["wasmtime"], "T4_WAVM": t4avg["wavm"],
        "T4_WASMER": t4avg["wasmer"],
        "T4_FD_WAVM": t4["facedetection"]["wavm"],
        "F4_NAT": fig4["native"]["-O2"], "F4_WT": fig4["wasmtime"]["-O2"],
        "F4_WAVM": fig4["wavm"]["-O2"], "F4_WASMER": fig4["wasmer"]["-O2"],
        "F4_W3": fig4["wasm3"]["-O2"], "F4_WAMR": fig4["wamr"]["-O2"],
        "F5_WT": g5["wasmtime"], "F5_WAVM": g5["wavm"],
        "F5_WASMER": g5["wasmer"], "F5_W3": g5["wasm3"],
        "F5_WAMR": g5["wamr"],
        "F5_WHITEDB_WT": fig13["whitedb"]["wasmtime"],
        "F5_WHITEDB_WAVM": fig13["whitedb"]["wavm"],
        "F6_WT": g6["wasmtime"], "F6_WAVM": g6["wavm"],
        "F6_WASMER": g6["wasmer"], "F6_W3": g6["wasm3"],
        "F6_WAMR": g6["wamr"],
        "F7_NAT": g7["native"], "F7_WT": g7["wasmtime"],
        "F7_WAVM": g7["wavm"], "F7_WASMER": g7["wasmer"],
        "F7_W3": g7["wasm3"], "F7_WAMR": g7["wamr"],
        "F8_WT": g8["wasmtime"], "F8_WAVM": g8["wavm"],
        "F8_WASMER": g8["wasmer"], "F8_W3": g8["wasm3"],
        "F8_WAMR": g8["wamr"],
        "T5_PB_NAT": t5["PolyBench"]["native"] + "%",
        "T5_PB_WAMR": t5["PolyBench"]["wamr"] + "%",
        "T5_CHESS_WAMR": t5["gnuchess"]["wamr"] + "%",
        "T5_CHESS_NAT": t5["gnuchess"]["native"] + "%",
        "F9_WT": g9["wasmtime"], "F9_WAVM": g9["wavm"],
        "F9_WASMER": g9["wasmer"], "F9_W3": g9["wasm3"],
        "F9_WAMR": g9["wamr"],
        "F10_NAT": g10["native"] + "%",
        "F10_BAND": f"{f10_band[0]:.1f}%-{f10_band[-1]:.1f}%",
    }
    text = open("EXPERIMENTS.md").read()
    for key in sorted(subs, key=len, reverse=True):
        text = text.replace(key, str(subs[key]))
    open("EXPERIMENTS.md", "w").write(text)
    leftovers = re.findall(r"\b(?:FIG|F\d|T\d)\w*_[A-Z_0-9]+\b", text)
    print("filled; leftovers:", leftovers)


if __name__ == "__main__":
    main()
