#!/usr/bin/env python3
"""Lint every WABench source with the MiniC sanitizer.

Prints one line per finding and exits non-zero when any benchmark has
findings — suitable as a pre-commit gate for the bench suite.

Usage::

    PYTHONPATH=src python scripts/lint_bench.py [name ...]
"""

import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"))

from repro.analysis import analyze_source          # noqa: E402
from repro.bench import ALL_BENCHMARKS             # noqa: E402


def main(argv=None):
    argv = sys.argv[1:] if argv is None else argv
    selected = set(argv)
    benches = [b for b in ALL_BENCHMARKS
               if not selected or b.name in selected]
    unknown = selected - {b.name for b in benches}
    if unknown:
        print(f"lint_bench: unknown benchmark(s): {', '.join(sorted(unknown))}",
              file=sys.stderr)
        return 2

    total = 0
    for bench in benches:
        findings = analyze_source(bench.source,
                                  defines=bench.defines_for("test"))
        for finding in findings:
            print(finding.format(f"{bench.suite}/{bench.name}"))
        total += len(findings)
    print(f"lint_bench: {len(benches)} benchmark(s), {total} finding(s)")
    return 1 if total else 0


if __name__ == "__main__":
    sys.exit(main())
