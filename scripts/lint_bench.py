#!/usr/bin/env python3
"""Lint every WABench benchmark — one gate, two analyzers.

MiniC sources go through the sanitizer
(:mod:`repro.analysis.sanitizer`) and must be clean; the compiled Wasm
modules go through the static auditor (:mod:`repro.analysis.audit`)
and must report no diagnostic beyond the committed
``AUDIT_baseline.json`` expectations.  Prints one line per finding and
exits non-zero when any benchmark has findings — suitable as a
pre-commit gate for the bench suite.

Usage::

    PYTHONPATH=src python scripts/lint_bench.py [name ...]
    PYTHONPATH=src python scripts/lint_bench.py --no-wasm   # MiniC only
"""

import json
import os
import sys

_ROOT = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..")
sys.path.insert(0, os.path.join(_ROOT, "src"))

from repro.analysis import analyze_source, audit_wasm  # noqa: E402
from repro.bench import ALL_BENCHMARKS                 # noqa: E402

BASELINE_PATH = os.path.join(_ROOT, "AUDIT_baseline.json")


def _wasm_findings(benches, baseline):
    """Unexpected static-audit diagnostics, as printable lines."""
    from repro.harness.cache import default_cache_dir
    from repro.harness.runner import Harness

    opt = baseline.get("opt", 2)
    size = baseline.get("size", "test")
    expected = baseline.get("benchmarks", {})
    harness = Harness(size=size, opt_level=opt,
                      benchmarks=[b.name for b in benches],
                      cache_dir=default_cache_dir())
    lines = []
    for bench in benches:
        audit = audit_wasm(harness.wasm_for(bench.name, opt),
                           name=bench.name)
        allowed = set(expected.get(bench.name, {}).get("diagnostics", []))
        for diag in audit.diagnostics:
            if diag.key() not in allowed:
                lines.append(diag.format(f"{bench.suite}/{bench.name}"))
    return lines


def main(argv=None):
    argv = sys.argv[1:] if argv is None else argv
    check_wasm = "--no-wasm" not in argv
    argv = [a for a in argv if a != "--no-wasm"]
    selected = set(argv)
    benches = [b for b in ALL_BENCHMARKS
               if not selected or b.name in selected]
    unknown = selected - {b.name for b in benches}
    if unknown:
        print(f"lint_bench: unknown benchmark(s): {', '.join(sorted(unknown))}",
              file=sys.stderr)
        return 2

    total = 0
    for bench in benches:
        findings = analyze_source(bench.source,
                                  defines=bench.defines_for("test"))
        for finding in findings:
            print(finding.format(f"{bench.suite}/{bench.name}"))
        total += len(findings)

    if check_wasm:
        try:
            with open(BASELINE_PATH) as f:
                baseline = json.load(f)
        except OSError:
            print(f"lint_bench: no {BASELINE_PATH}; every Wasm "
                  "diagnostic counts as a finding", file=sys.stderr)
            baseline = {}
        lines = _wasm_findings(benches, baseline)
        for line in lines:
            print(line)
        total += len(lines)

    stages = "sanitizer+audit" if check_wasm else "sanitizer"
    print(f"lint_bench: {len(benches)} benchmark(s), {total} finding(s) "
          f"[{stages}]")
    return 1 if total else 0


if __name__ == "__main__":
    sys.exit(main())
