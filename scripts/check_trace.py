#!/usr/bin/env python
"""Validate wabench trace files and check byte-determinism.

Usage::

    python scripts/check_trace.py TRACE [TRACE2]

With one argument: schema-validate the trace (see TRACING.md) and print
its record counts.  With two: additionally require the two traces to be
byte-identical in canonical form (wall-time fields stripped) — the check
CI runs between a cold and a warm ``wabench run --trace``.

Exit codes: 0 ok, 1 schema violation or determinism mismatch, 2 usage.
"""

import sys

from repro.obs import TraceSchemaError, validate_trace
from repro.obs.export import canonical_lines


def _read(path):
    with open(path, "r") as fh:
        return fh.read().splitlines()


def main(argv):
    if len(argv) not in (2, 3):
        print(__doc__.strip(), file=sys.stderr)
        return 2
    status = 0
    traces = {}
    for path in argv[1:]:
        try:
            lines = _read(path)
        except FileNotFoundError:
            print(f"check_trace: {path}: no such file", file=sys.stderr)
            return 1
        try:
            counts = validate_trace(lines)
        except TraceSchemaError as exc:
            print(f"check_trace: {path}: SCHEMA VIOLATION: {exc}")
            return 1
        traces[path] = canonical_lines(lines)
        print(f"check_trace: {path}: ok — " +
              ", ".join(f"{kind}={count}"
                        for kind, count in sorted(counts.items())))
    if len(argv) == 3:
        first, second = (traces[p] for p in argv[1:])
        if first == second:
            print(f"check_trace: {argv[1]} and {argv[2]} are "
                  f"byte-identical ({len(first)} canonical lines)")
        else:
            diverging = sum(1 for a, b in zip(first, second) if a != b) \
                + abs(len(first) - len(second))
            print(f"check_trace: DETERMINISM VIOLATION: traces differ "
                  f"on {diverging} line(s)")
            for index, (a, b) in enumerate(zip(first, second)):
                if a != b:
                    print(f"  first difference at canonical line "
                          f"{index + 1}:\n  < {a}\n  > {b}")
                    break
            status = 1
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv))
