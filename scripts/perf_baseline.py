#!/usr/bin/env python
"""Build, refresh, or verify the committed perf-oracle baseline.

Usage::

    python scripts/perf_baseline.py --check          # CI: still current?
    python scripts/perf_baseline.py --update         # refresh + rewrite
    python scripts/perf_baseline.py --update --seed 42 --budget 50

``PERF_baseline.json`` holds the expected cross-engine slowdown ratios
(median log2 ratio + dispersion + tolerance per ``class|engine|-O``
pair) that ``wabench fuzz --perf`` gates against (see
:mod:`repro.fuzz.perf`).  The baseline is a pure function of
``(seed, budget, size-budget, engines, opt-levels, metric, k, floor)``,
so ``--check`` simply rebuilds it and byte-compares against the
committed file: any modeling change that moves a ratio beyond rounding
shows up as a diff, and the fix is to rerun with ``--update`` and
commit the result *alongside the change that moved it* — with a PR
description that justifies the shift.

Exit codes: 0 ok, 1 baseline is stale (``--check``), 2 usage.
"""

import argparse
import sys

from repro.errors import ReproError
from repro.fuzz.engines import DEFAULT_ENGINES, DEFAULT_OPT_LEVELS
from repro.fuzz.perf import (DEFAULT_BASELINE_PATH, DEFAULT_METRIC,
                             DEFAULT_TOLERANCE_FLOOR, DEFAULT_TOLERANCE_K,
                             build_baseline)

DEFAULT_SEED = 42
DEFAULT_BUDGET = 50
DEFAULT_SIZE_BUDGET = 24


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="build/refresh/verify PERF_baseline.json")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED,
                        help=f"campaign base seed (default: {DEFAULT_SEED})")
    parser.add_argument("--budget", type=int, default=DEFAULT_BUDGET,
                        metavar="N",
                        help=f"generated programs (default: {DEFAULT_BUDGET})")
    parser.add_argument("--size-budget", type=int,
                        default=DEFAULT_SIZE_BUDGET, metavar="S",
                        help="statements per generated program "
                             f"(default: {DEFAULT_SIZE_BUDGET})")
    parser.add_argument("--engines", default=None,
                        help="comma-separated engine list (default: the "
                             "wabench fuzz default grid)")
    parser.add_argument("--opt-levels", default=None,
                        help="comma-separated -O levels (default: 0,2)")
    parser.add_argument("--metric", default=DEFAULT_METRIC,
                        help=f"gated metric (default: {DEFAULT_METRIC})")
    parser.add_argument("--tolerance-k", type=float,
                        default=DEFAULT_TOLERANCE_K,
                        help="MAD multiplier in the tolerance formula")
    parser.add_argument("--tolerance-floor", type=float,
                        default=DEFAULT_TOLERANCE_FLOOR,
                        help="minimum tolerance in log2 units")
    parser.add_argument("--out", default=DEFAULT_BASELINE_PATH,
                        metavar="FILE",
                        help=f"baseline path (default: "
                             f"{DEFAULT_BASELINE_PATH})")
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--update", action="store_true",
                      help="rebuild and (over)write the baseline file")
    mode.add_argument("--check", action="store_true",
                      help="rebuild and byte-compare against the "
                           "committed baseline; exit 1 on drift")
    args = parser.parse_args(argv)

    engines = tuple(e.strip() for e in args.engines.split(",")) \
        if args.engines else DEFAULT_ENGINES
    opt_levels = tuple(int(o) for o in args.opt_levels.split(",")) \
        if args.opt_levels else DEFAULT_OPT_LEVELS

    def progress(index, cls_name):
        if index % 10 == 0:
            print(f"  [baseline] program {index} (class {cls_name})",
                  flush=True)

    try:
        baseline = build_baseline(
            args.seed, args.budget, size_budget=args.size_budget,
            engines=engines, opt_levels=opt_levels, metric=args.metric,
            k=args.tolerance_k, floor=args.tolerance_floor,
            progress=progress)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    text = baseline.to_json()
    print(f"baseline: {len(baseline.pairs)} pair(s) from "
          f"seed={args.seed} budget={args.budget} metric={args.metric}")

    if args.update:
        with open(args.out, "w") as fh:
            fh.write(text)
        print(f"wrote {args.out}")
        return 0

    try:
        with open(args.out) as fh:
            committed = fh.read()
    except OSError as exc:
        print(f"error: cannot read committed baseline: {exc}",
              file=sys.stderr)
        return 1
    if committed != text:
        print(f"STALE: {args.out} does not match a fresh rebuild.\n"
              "A modeling change moved the expected cross-engine "
              "ratios.  If that shift is intended, refresh with:\n"
              f"  python scripts/perf_baseline.py --update"
              f"{' --seed ' + str(args.seed) if args.seed != DEFAULT_SEED else ''}"
              "\nand commit the result alongside the change.",
              file=sys.stderr)
        return 1
    print(f"ok: {args.out} is current")
    return 0


if __name__ == "__main__":
    sys.exit(main())
