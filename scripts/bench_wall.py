#!/usr/bin/env python
"""Wall-clock benchmark grid for the wabench pipeline itself.

This times the *reproduction's own* Python wall clock — compile +
execute for a fixed benchmark x engine grid — NOT the modeled cycle
counters (those are deterministic and guarded by the equivalence tests).
It exists so a change that accidentally slows the pipeline down gets
caught in review rather than six PRs later.

Usage::

    python scripts/bench_wall.py                      # full grid
    python scripts/bench_wall.py --quick              # CI-sized subset
    python scripts/bench_wall.py --quick --baseline BENCH_baseline.json

Each cell is run ``--warmup`` times untimed and ``--repeats`` times
timed; the cell's score is the *median* repeat.  Results are written to
``BENCH_wall.json`` (``--out`` to override).

Cross-machine comparison
------------------------

Absolute wall times are machine-dependent, so comparing a CI runner
against a baseline recorded elsewhere would gate on hardware, not code.
Every run therefore also times a fixed pure-Python calibration loop;
when comparing against a baseline, each baseline cell is scaled by
``calibration_now / calibration_baseline`` before the threshold test.
A cell regresses when::

    median_now > baseline_median * (cal_now / cal_base) * (1 + threshold)

with ``--threshold`` defaulting to 0.25 (25%).  Any regressing cell
fails the comparison (exit 1) and prints refresh instructions.

Refreshing the baseline
-----------------------

After an *intentional* performance change (or to pick up speedups)::

    python scripts/bench_wall.py --quick --out BENCH_baseline.json
    git add BENCH_baseline.json

Exit codes: 0 ok, 1 regression detected, 2 usage/configuration error.
"""

import argparse
import json
import statistics
import sys
import time

# The grid is fixed on purpose: a stable set of cells makes medians
# comparable across commits.  ``--quick`` is the subset CI runs on every
# push; the full grid is for local investigation.
FULL_GRID = [
    ("gemm", "wasmtime"), ("gemm", "wavm"), ("gemm", "wasmer"),
    ("gemm", "wasm3"), ("gemm", "wamr"),
    ("crc32", "wasmtime"), ("crc32", "wasm3"), ("crc32", "wamr"),
    ("quicksort", "wasmtime"), ("quicksort", "wasm3"), ("quicksort", "wamr"),
]
QUICK_GRID = [
    ("gemm", "wasm3"), ("gemm", "wasmtime"), ("gemm", "wamr"),
    ("crc32", "wasm3"),
]

SCHEMA = "wabench-wall/1"
CALIBRATION_ITERS = 2_000_000


def calibrate() -> float:
    """Time a fixed pure-Python loop; best of 3 to shed scheduler noise."""
    best = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        total = 0
        for i in range(CALIBRATION_ITERS):
            total += i & 0xFF
        elapsed = time.perf_counter() - start
        if total < 0:  # pragma: no cover - keeps the loop un-optimizable
            raise AssertionError
        best = min(best, elapsed)
    return best


def time_cell(bench: str, engine: str, size: str,
              warmup: int, repeats: int) -> dict:
    """Median wall time of compile+run for one grid cell.

    A fresh :class:`Harness` per measurement so every repeat pays the
    full pipeline (compile, instantiate, execute) — that is the surface
    the speed layer optimizes and the one a regression would slow down.
    No ``cache_dir``: disk-cache hits would time the cache, not the code.
    """
    from repro.harness import Harness

    samples = []
    for i in range(warmup + repeats):
        harness = Harness(size=size, benchmarks=[bench])
        start = time.perf_counter()
        result = harness.run(bench, engine)
        elapsed = time.perf_counter() - start
        if result.trap:
            raise SystemExit(
                f"bench_wall: {bench}/{engine} trapped: {result.trap}")
        if i >= warmup:
            samples.append(elapsed)
    return {
        "median": statistics.median(samples),
        "repeats": samples,
        "warmup": warmup,
    }


def run_grid(grid, size, warmup, repeats, verbose=True) -> dict:
    from repro import speed

    report = {
        "schema": SCHEMA,
        "size": size,
        "speed_tier": speed.tier(),
        "calibration_seconds": calibrate(),
        "cells": {},
    }
    for bench, engine in grid:
        cell = time_cell(bench, engine, size, warmup, repeats)
        report["cells"]["%s/%s" % (bench, engine)] = cell
        if verbose:
            print("bench_wall: %-20s median %.4fs  (n=%d)"
                  % ("%s/%s" % (bench, engine), cell["median"], repeats))
    return report


def compare(report: dict, baseline: dict, threshold: float) -> int:
    """Gate ``report`` against ``baseline``; returns the exit code."""
    if baseline.get("schema") != SCHEMA:
        print("bench_wall: baseline has schema %r, expected %r"
              % (baseline.get("schema"), SCHEMA), file=sys.stderr)
        return 2
    cal_base = baseline.get("calibration_seconds")
    if not cal_base or cal_base <= 0:
        print("bench_wall: baseline lacks a calibration sample",
              file=sys.stderr)
        return 2
    scale = report["calibration_seconds"] / cal_base
    print("bench_wall: machine calibration ratio %.3f "
          "(now %.4fs / baseline %.4fs)"
          % (scale, report["calibration_seconds"], cal_base))

    regressions = []
    for key, cell in sorted(report["cells"].items()):
        base_cell = baseline["cells"].get(key)
        if base_cell is None:
            print("bench_wall: %-20s NEW CELL (no baseline; skipped)" % key)
            continue
        allowed = base_cell["median"] * scale * (1.0 + threshold)
        delta = cell["median"] / (base_cell["median"] * scale) - 1.0
        verdict = "ok" if cell["median"] <= allowed else "REGRESSION"
        print("bench_wall: %-20s %+6.1f%% vs baseline (%.4fs, allowed "
              "%.4fs) %s" % (key, delta * 100.0, cell["median"], allowed,
                             verdict))
        if cell["median"] > allowed:
            regressions.append((key, delta))

    if regressions:
        print()
        print("bench_wall: FAIL — %d cell(s) regressed more than %d%%:"
              % (len(regressions), round(threshold * 100)))
        for key, delta in regressions:
            print("  %-20s +%.1f%%" % (key, delta * 100.0))
        print()
        print("If this slowdown is intentional (or the baseline is stale),")
        print("refresh the committed baseline and explain why in the PR:")
        print()
        print("    python scripts/bench_wall.py --quick "
              "--out BENCH_baseline.json")
        print("    git add BENCH_baseline.json")
        return 1
    print("bench_wall: all %d cell(s) within %d%% of baseline"
          % (len(report["cells"]), round(threshold * 100)))
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="bench_wall.py",
        description="Wall-clock benchmark grid with regression gating.")
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized subset of the grid")
    parser.add_argument("--size", default="test",
                        help="benchmark input size (default: test)")
    parser.add_argument("--warmup", type=int, default=1,
                        help="untimed runs per cell (default: 1)")
    parser.add_argument("--repeats", type=int, default=5,
                        help="timed runs per cell (default: 5)")
    parser.add_argument("--out", default="BENCH_wall.json",
                        help="output JSON path (default: BENCH_wall.json)")
    parser.add_argument("--baseline", metavar="JSON",
                        help="compare against this baseline; exit 1 on "
                             "any >threshold median regression")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="allowed fractional regression per cell "
                             "(default: 0.25)")
    parser.add_argument("--speed-tier", type=int, default=None, metavar="T",
                        help="pin the repro.speed tier (0=reference, "
                             "1=fastloop, 2=closures); default: REPRO_SPEED")
    args = parser.parse_args(argv)
    if args.repeats < 1 or args.warmup < 0:
        parser.error("--repeats must be >= 1 and --warmup >= 0")
    if args.speed_tier is not None:
        from repro import speed
        if args.speed_tier not in speed.TIERS:
            parser.error("--speed-tier must be one of %s"
                         % (speed.TIERS,))
        speed.set_tier(args.speed_tier)

    grid = QUICK_GRID if args.quick else FULL_GRID
    report = run_grid(grid, args.size, args.warmup, args.repeats)
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print("bench_wall: wrote %s (%d cells)" % (args.out,
                                               len(report["cells"])))

    if args.baseline:
        try:
            with open(args.baseline) as fh:
                baseline = json.load(fh)
        except FileNotFoundError:
            print("bench_wall: baseline %s: no such file" % args.baseline,
                  file=sys.stderr)
            return 2
        except ValueError as exc:
            print("bench_wall: baseline %s: invalid JSON: %s"
                  % (args.baseline, exc), file=sys.stderr)
            return 2
        return compare(report, baseline, args.threshold)
    return 0


if __name__ == "__main__":
    sys.exit(main())
