"""Tests for the virtual ISA: op semantics, executor, block accounting."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ReproError, Trap
from repro.hw import CPUModel
from repro.isa import LinearMemory, Machine, MFunction, MProgram, ops
from repro.isa.ops import M32, M64, f32round, s32, s64


def run_func(code, num_params=0, num_regs=8, args=(), memory_pages=1,
             host=None, host_imports=(), functions_extra=(), table=(),
             globals_init=(), cpu=None):
    """Build a one-(or more-)function program and run its entry."""
    prog = MProgram(memory_pages=memory_pages,
                    host_imports=list(host_imports),
                    globals_init=list(globals_init),
                    table=list(table))
    entry = MFunction("entry", num_params, num_regs, list(code),
                      returns_value=True)
    prog.add_function(entry)
    for f in functions_extra:
        prog.add_function(f)
    prog.exports["entry"] = 0
    prog.finalize(code_base=0x0100_0000)
    cpu = cpu or CPUModel()
    machine = Machine(prog, cpu, host=host)
    return machine.run_export("entry", args), machine


class TestAluSemantics:
    def test_add32_wraps(self):
        assert ops.BINF[ops.ADD32](M32, 1) == 0

    def test_sub32_wraps(self):
        assert ops.BINF[ops.SUB32](0, 1) == M32

    def test_mul64_wraps(self):
        assert ops.BINF[ops.MUL64](M64, 2) == M64 - 1

    def test_div_s_truncates_toward_zero(self):
        assert s32(ops.BINF[ops.DIVS32]((-7) & M32, 2)) == -3

    def test_div_s_by_zero_traps(self):
        with pytest.raises(Trap):
            ops.BINF[ops.DIVS32](1, 0)

    def test_div_s_overflow_traps(self):
        with pytest.raises(Trap):
            ops.BINF[ops.DIVS32](0x80000000, M32)  # INT_MIN / -1

    def test_rem_s_sign_follows_dividend(self):
        assert s32(ops.BINF[ops.REMS32]((-7) & M32, 3)) == -1
        assert s32(ops.BINF[ops.REMS32](7, (-3) & M32)) == 1

    def test_div_u(self):
        assert ops.BINF[ops.DIVU32](M32, 2) == 0x7FFFFFFF

    def test_shr_s_is_arithmetic(self):
        assert s32(ops.BINF[ops.SHRS32]((-8) & M32, 1)) == -4

    def test_shr_u_is_logical(self):
        assert ops.BINF[ops.SHRU32]((-8) & M32, 1) == 0x7FFFFFFC

    def test_shift_count_masked(self):
        assert ops.BINF[ops.SHL32](1, 33) == 2

    def test_rotl32(self):
        assert ops.BINF[ops.ROTL32](0x80000001, 1) == 0x00000003
        assert ops.BINF[ops.ROTL32](0xDEADBEEF, 0) == 0xDEADBEEF

    def test_rotr64(self):
        assert ops.BINF[ops.ROTR64](1, 1) == 1 << 63

    def test_signed_unsigned_compare_differ(self):
        big = 0x80000000  # negative as signed
        assert ops.BINF[ops.LTS32](big, 1) == 1
        assert ops.BINF[ops.LTU32](big, 1) == 0

    def test_clz_ctz_popcnt(self):
        assert ops.UNF[ops.CLZ32 - ops.NUM_BIN](1) == 31
        assert ops.UNF[ops.CLZ32 - ops.NUM_BIN](0) == 32
        assert ops.UNF[ops.CTZ32 - ops.NUM_BIN](8) == 3
        assert ops.UNF[ops.CTZ32 - ops.NUM_BIN](0) == 32
        assert ops.UNF[ops.POPCNT32 - ops.NUM_BIN](0xF0F0) == 8

    def test_float_min_nan(self):
        assert math.isnan(ops.BINF[ops.MINF64](math.nan, 1.0))

    def test_float_min_signed_zero(self):
        assert math.copysign(1, ops.BINF[ops.MINF64](0.0, -0.0)) == -1

    def test_float_max_signed_zero(self):
        assert math.copysign(1, ops.BINF[ops.MAXF64](0.0, -0.0)) == 1

    def test_float_div_by_zero_is_inf(self):
        assert ops.BINF[ops.DIVF64](1.0, 0.0) == math.inf
        assert ops.BINF[ops.DIVF64](-1.0, 0.0) == -math.inf
        assert math.isnan(ops.BINF[ops.DIVF64](0.0, 0.0))

    def test_f32_arithmetic_rounds_to_single(self):
        result = ops.BINF[ops.ADDF32](1.0, 2 ** -30)
        assert result == f32round(1.0 + 2 ** -30)
        assert result != 1.0 + 2 ** -60 + 1.0

    def test_trunc_nan_traps(self):
        with pytest.raises(Trap):
            ops.UNF[ops.TRUNCF64S32 - ops.NUM_BIN](math.nan)

    def test_trunc_overflow_traps(self):
        with pytest.raises(Trap):
            ops.UNF[ops.TRUNCF64S32 - ops.NUM_BIN](3e9)

    def test_trunc_in_range(self):
        fn = ops.UNF[ops.TRUNCF64S32 - ops.NUM_BIN]
        assert s32(fn(-2.9)) == -2

    def test_nearest_half_to_even(self):
        fn = ops.UNF[ops.NEARESTF64 - ops.NUM_BIN]
        assert fn(2.5) == 2.0
        assert fn(3.5) == 4.0
        assert fn(-0.4) == 0.0 and math.copysign(1, fn(-0.4)) == -1

    def test_extend_signed(self):
        fn = ops.UNF[ops.EXTENDS32 - ops.NUM_BIN]
        assert fn((-5) & M32) == (-5) & M64

    def test_wrap(self):
        fn = ops.UNF[ops.WRAP64 - ops.NUM_BIN]
        assert fn(0x1_2345_6789) == 0x2345_6789

    def test_reinterpret_roundtrip(self):
        to_bits = ops.UNF[ops.RI64F64 - ops.NUM_BIN]
        from_bits = ops.UNF[ops.RF64I64 - ops.NUM_BIN]
        assert from_bits(to_bits(3.14159)) == 3.14159

    def test_convert_unsigned(self):
        fn = ops.UNF[ops.CVTU32F64 - ops.NUM_BIN]
        assert fn(M32) == float(M32)

    @given(st.integers(0, M32), st.integers(0, M32))
    @settings(max_examples=200, deadline=None)
    def test_add_sub_inverse(self, a, b):
        total = ops.BINF[ops.ADD32](a, b)
        assert ops.BINF[ops.SUB32](total, b) == a

    @given(st.integers(0, M32), st.integers(1, M32))
    @settings(max_examples=200, deadline=None)
    def test_divmod_identity_unsigned(self, a, b):
        q = ops.BINF[ops.DIVU32](a, b)
        r = ops.BINF[ops.REMU32](a, b)
        assert q * b + r == a and r < b

    @given(st.integers(0, M32), st.integers(0, 63))
    @settings(max_examples=200, deadline=None)
    def test_rotl_rotr_inverse(self, a, n):
        assert ops.BINF[ops.ROTR32](ops.BINF[ops.ROTL32](a, n), n) == a


class TestMachine:
    def test_simple_arith(self):
        code = [
            (ops.LI, 0, 2),
            (ops.LI, 1, 3),
            (ops.ADD32, 2, 0, 1),
            (ops.RET, 2),
        ]
        result, _ = run_func(code)
        assert result == 5

    def test_loop_counts(self):
        # r0 = 10; r1 = 0; while (r0) { r1 += r0; r0 -= 1 } return r1
        code = [
            (ops.LI, 0, 10),
            (ops.LI, 1, 0),
            (ops.LI, 2, 1),
            (ops.BRZ, 0, 8),          # 3: exit loop
            (ops.ADD32, 1, 1, 0),     # 4
            (ops.SUB32, 0, 0, 2),     # 5
            (ops.JMP, 3),             # 6
            (ops.LI, 3, 0),           # 7 (dead padding)
            (ops.RET, 1),             # 8
        ]
        result, machine = run_func(code)
        assert result == 55
        counters = machine.cpu.counters
        assert counters.instructions > 30
        assert counters.branches >= 21  # 11 conditional + 10 backedge jumps

    def test_memory_roundtrip(self):
        code = [
            (ops.LI, 0, 64),                 # address
            (ops.LI, 1, 0xDEADBEEF),
            (ops.STORE32, 0, 0, 1),
            (ops.LOAD32, 2, 0, 0),
            (ops.RET, 2),
        ]
        result, machine = run_func(code)
        assert result == 0xDEADBEEF
        assert machine.cpu.counters.l1d.refs == 2

    def test_load_sign_extension(self):
        code = [
            (ops.LI, 0, 0),
            (ops.LI, 1, 0x80),
            (ops.STORE8, 0, 0, 1),
            (ops.LOAD8_S, 2, 0, 0),
            (ops.LOAD8_U, 3, 0, 0),
            (ops.SUB32, 4, 2, 3),
            (ops.RET, 2),
        ]
        result, _ = run_func(code)
        assert s32(result) == -128

    def test_oob_load_traps(self):
        code = [
            (ops.LI, 0, 65536),
            (ops.LOAD32, 1, 0, 0),
            (ops.RET, 1),
        ]
        with pytest.raises(Trap):
            run_func(code)

    def test_float_memory(self):
        code = [
            (ops.LI, 0, 128),
            (ops.LI, 1, 2.5),
            (ops.STOREF64, 0, 0, 1),
            (ops.LOADF64, 2, 0, 0),
            (ops.LI, 3, 4.0),
            (ops.MULF64, 4, 2, 3),
            (ops.RET, 4),
        ]
        result, _ = run_func(code)
        assert result == 10.0

    def test_select(self):
        code = [
            (ops.LI, 0, 0),
            (ops.LI, 1, 111),
            (ops.LI, 2, 222),
            (ops.SELECT, 3, 0, 1, 2),
            (ops.RET, 3),
        ]
        result, _ = run_func(code)
        assert result == 222

    def test_direct_call(self):
        callee = MFunction("double", 1, 3,
                           [(ops.LI, 1, 2), (ops.MUL32, 2, 0, 1),
                            (ops.RET, 2)], returns_value=True)
        code = [
            (ops.LI, 0, 21),
            (ops.CALL, 1, 1, (0,)),
            (ops.RET, 1),
        ]
        result, _ = run_func(code, functions_extra=[callee])
        assert result == 42

    def test_indirect_call_and_sig_check(self):
        callee = MFunction("f", 0, 1, [(ops.LI, 0, 7), (ops.RET, 0)],
                           sig_id=5, returns_value=True)
        code = [
            (ops.LI, 0, 0),               # table index 0
            (ops.CALL_IND, 1, 5, 0, ()),
            (ops.RET, 1),
        ]
        result, _ = run_func(code, functions_extra=[callee], table=[1])
        assert result == 7

    def test_indirect_call_sig_mismatch_traps(self):
        callee = MFunction("f", 0, 1, [(ops.LI, 0, 7), (ops.RET, 0)],
                           sig_id=5, returns_value=True)
        code = [
            (ops.LI, 0, 0),
            (ops.CALL_IND, 1, 6, 0, ()),  # expects sig 6
            (ops.RET, 1),
        ]
        with pytest.raises(Trap):
            run_func(code, functions_extra=[callee], table=[1])

    def test_indirect_call_oob_traps(self):
        code = [
            (ops.LI, 0, 99),
            (ops.CALL_IND, 1, 0, 0, ()),
            (ops.RET, 1),
        ]
        with pytest.raises(Trap):
            run_func(code, table=[])

    def test_host_call(self):
        seen = []

        def hostfn(machine, args):
            seen.append(tuple(args))
            return 99

        code = [
            (ops.LI, 0, 5),
            (ops.CALL_HOST, 1, 0, (0,)),
            (ops.RET, 1),
        ]
        result, _ = run_func(code, host={"env.f": hostfn},
                             host_imports=["env.f"])
        assert result == 99
        assert seen == [(5,)]

    def test_unresolved_host_import(self):
        prog = MProgram(host_imports=["env.missing"])
        prog.add_function(MFunction("e", 0, 1, [(ops.RET, -1)]))
        prog.finalize(0x0100_0000)
        with pytest.raises(ReproError):
            Machine(prog, CPUModel())

    def test_globals(self):
        code = [
            (ops.GGET, 0, 0),
            (ops.LI, 1, 1),
            (ops.ADD32, 0, 0, 1),
            (ops.GSET, 0, 0),
            (ops.GGET, 2, 0),
            (ops.RET, 2),
        ]
        result, _ = run_func(code, globals_init=[41])
        assert result == 42

    def test_br_table(self):
        # return [10, 20, 30][arg] with default 99
        code = [
            (ops.BR_TABLE, 0, (2, 4, 6), 8),
            (ops.TRAP_OP, "unreachable"),
            (ops.LI, 1, 10), (ops.RET, 1),   # 2
            (ops.LI, 1, 20), (ops.RET, 1),   # 4
            (ops.LI, 1, 30), (ops.RET, 1),   # 6
            (ops.LI, 1, 99), (ops.RET, 1),   # 8
        ]
        for arg, expected in [(0, 10), (1, 20), (2, 30), (7, 99)]:
            result, _ = run_func(code, num_params=1, args=(arg,))
            assert result == expected

    def test_trap_op(self):
        code = [(ops.TRAP_OP, "unreachable")]
        with pytest.raises(Trap):
            run_func(code)

    def test_memsize_memgrow(self):
        code = [
            (ops.MEMSIZE, 0),
            (ops.LI, 1, 2),
            (ops.MEMGROW, 2, 1),
            (ops.MEMSIZE, 3),
            (ops.SUB32, 4, 3, 0),
            (ops.RET, 4),
        ]
        result, _ = run_func(code)
        assert result == 2

    def test_memgrow_failure_returns_minus_one(self):
        code = [
            (ops.LI, 0, 1 << 20),     # absurd page count
            (ops.MEMGROW, 1, 0),
            (ops.RET, 1),
        ]
        result, _ = run_func(code)
        assert s32(result) == -1

    def test_call_stack_exhaustion_traps(self):
        # Infinite recursion through function 0 calling itself.
        prog = MProgram()
        f = MFunction("rec", 0, 2,
                      [(ops.CALL, 0, 0, ()), (ops.RET, 0)],
                      returns_value=True)
        prog.add_function(f)
        prog.exports["rec"] = 0
        prog.finalize(0x0100_0000)
        machine = Machine(prog, CPUModel())
        with pytest.raises(Trap) as exc:
            machine.run_export("rec")
        assert "stack" in str(exc.value)

    def test_spill_reload_are_pure_accounting(self):
        code = [
            (ops.LI, 0, 77),
            (ops.SPILL, 0),
            (ops.RELOAD, 0),
            (ops.RET, 0),
        ]
        result, machine = run_func(code)
        assert result == 77
        assert machine.cpu.counters.l1d.refs == 2

    def test_block_instruction_accounting_exact(self):
        # Straight-line code: retired instructions must equal op count
        # (LI=1, ADD=1, RET=1).
        code = [
            (ops.LI, 0, 1),
            (ops.LI, 1, 2),
            (ops.ADD32, 2, 0, 1),
            (ops.RET, 2),
        ]
        result, machine = run_func(code)
        assert machine.cpu.counters.instructions == 4

    def test_call_cost_includes_args(self):
        callee = MFunction("id", 2, 2, [(ops.RET, 0)], returns_value=True)
        code = [
            (ops.LI, 0, 1),
            (ops.LI, 1, 2),
            (ops.CALL, 2, 1, (0, 1)),
            (ops.RET, 2),
        ]
        _, machine = run_func(code, functions_extra=[callee])
        # LI+LI+CALL(1+2 args)+RET + callee RET = 2 + 3 + 1 + 1 = 7
        assert machine.cpu.counters.instructions == 7

    def test_icache_warm_loop(self):
        # A tight loop must fetch its line once and then hit.
        code = [
            (ops.LI, 0, 100),
            (ops.LI, 1, 1),
            (ops.BRZ, 0, 5),
            (ops.SUB32, 0, 0, 1),
            (ops.JMP, 2),
            (ops.RET, 0),
        ]
        _, machine = run_func(code)
        c = machine.cpu.counters
        assert c.l1i.misses <= 3
        assert c.l1i.refs > 100


class TestProgramStructure:
    def test_invalid_branch_target_rejected(self):
        prog = MProgram()
        prog.add_function(MFunction("bad", 0, 1, [(ops.JMP, 99)]))
        with pytest.raises(ReproError):
            prog.finalize(0x0100_0000)

    def test_unfinalized_program_rejected(self):
        prog = MProgram()
        prog.add_function(MFunction("f", 0, 1, [(ops.RET, -1)]))
        with pytest.raises(ReproError):
            Machine(prog, CPUModel())

    def test_code_bytes_counts_all_functions(self):
        prog = MProgram()
        prog.add_function(MFunction("a", 0, 1, [(ops.RET, -1)]))
        prog.add_function(MFunction("b", 0, 1, [(ops.LI, 0, 1), (ops.RET, 0)]))
        prog.finalize(0x0100_0000)
        assert prog.code_bytes == 3 * 4

    def test_disassemble(self):
        from repro.isa import disassemble
        f = MFunction("f", 0, 2, [(ops.LI, 0, 5), (ops.RET, 0)])
        f.code_addr = 0
        f.compute_blocks(6)
        text = disassemble(f)
        assert "li" in text and "ret" in text
