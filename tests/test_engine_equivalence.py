"""Property test: interpreter and JIT tiers execute modules identically.

Random valid-by-construction Wasm modules come from
:func:`repro.fuzz.generator.generate_module` (the same seeded generator
``wabench fuzz`` uses) and are executed below the runtime layer: the
classic interpreter against every JIT backend tier (Cranelift, LLVM,
SinglePass), comparing the returned value *and* the memory image.
This exercises the engines below the MiniC compiler, so it catches
divergence the source-level differential tests cannot reach.

A failing test id names the module seed; reproduce with
``REPRO_FUZZ_SEED=<seed> pytest tests/test_engine_equivalence.py``.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.fuzz.generator import generate_module
from repro.hw import CPUModel
from repro.isa.machine import Machine
from repro.isa.memory import LinearMemory
from repro.runtimes.interp.engine import (THREADED_PROFILE, Interpreter,
                                          prepare_function)
from repro.runtimes.jit import CRANELIFT, LLVM, SINGLEPASS, compile_backend

from .conftest import fuzz_seeds

pytestmark = pytest.mark.fuzz

JIT_TIERS = (("cranelift", CRANELIFT), ("llvm", LLVM),
             ("singlepass", SINGLEPASS))


def _run_interp(module, args):
    prepared = []
    for i, func in enumerate(module.functions):
        prepared.append(("wasm", prepare_function(module, func, i)))
    cpu = CPUModel()
    mem = LinearMemory(1)
    interp = Interpreter(THREADED_PROFILE, cpu, mem, [], [], prepared)
    interp.set_signatures(module)
    return interp.call_index(0, args), bytes(mem.data[:256])


def _run_jit(module, backend, args):
    program = compile_backend(module, backend)
    cpu = CPUModel()
    mem = LinearMemory(1)
    machine = Machine(program, cpu, memory=mem)
    return machine.run_export("f", args), bytes(mem.data[:256])


def _args_for(seed):
    rng = random.Random(seed ^ 0x5F5E100)
    return (rng.randint(0, 2**32 - 1), rng.randint(0, 2**32 - 1))


def _assert_tiers_agree(seed, size=None):
    module = generate_module(seed, size)     # builder validates
    args = _args_for(seed)
    reference = _run_interp(module, args)
    for tier_name, backend in JIT_TIERS:
        got = _run_jit(module, backend, args)
        assert got == reference, (
            f"seed {seed}: {tier_name} JIT disagrees with interpreter "
            f"(REPRO_FUZZ_SEED={seed} reproduces): "
            f"{got[0]} != {reference[0]}")


class TestEngineEquivalence:
    @pytest.mark.parametrize("seed", fuzz_seeds(25, salt=5))
    def test_interp_and_all_jit_tiers_agree(self, seed):
        _assert_tiers_agree(seed)

    @given(seed=st.integers(0, 2**63 - 1), size=st.integers(5, 80))
    @settings(max_examples=40, deadline=None, print_blob=True,
              suppress_health_check=[HealthCheck.too_slow])
    def test_hypothesis_sweep(self, seed, size):
        _assert_tiers_agree(seed, size)
