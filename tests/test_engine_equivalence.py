"""Property test: interpreter and JIT execute random modules identically.

Hypothesis builds random (valid by construction) Wasm functions directly
with the module builder — straight-line arithmetic over locals with
embedded memory traffic — and checks that the classic interpreter and the
Cranelift-tier JIT produce the same result and the same memory image.
This exercises the engines below the MiniC compiler, so it catches
divergence the source-level differential tests cannot reach.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.hw import CPUModel
from repro.isa.machine import Machine
from repro.isa.memory import LinearMemory
from repro.runtimes.interp.engine import (THREADED_PROFILE, Interpreter,
                                          prepare_function)
from repro.runtimes.jit import CRANELIFT, compile_backend
from repro.wasm import I32, ModuleBuilder
from repro.wasm import opcodes as op

# Binary i32 ops safe for arbitrary operands (no trap).
_SAFE_BIN = (op.I32_ADD, op.I32_SUB, op.I32_MUL, op.I32_AND, op.I32_OR,
             op.I32_XOR, op.I32_SHL, op.I32_SHR_S, op.I32_SHR_U,
             op.I32_ROTL, op.I32_ROTR, op.I32_EQ, op.I32_NE, op.I32_LT_S,
             op.I32_LT_U, op.I32_GE_S)
_SAFE_UN = (op.I32_EQZ, op.I32_CLZ, op.I32_CTZ, op.I32_POPCNT)


@st.composite
def random_ops(draw):
    """A list of abstract ops keeping an abstract stack depth >= 0."""
    n = draw(st.integers(5, 60))
    ops_out = []
    depth = 0
    for _ in range(n):
        choices = ["const", "local_get"]
        if depth >= 1:
            choices += ["un", "local_set", "local_tee", "store", "load"]
        if depth >= 2:
            choices += ["bin", "bin", "drop_one"]
        kind = draw(st.sampled_from(choices))
        if kind == "const":
            ops_out.append(("const", draw(st.integers(-2**31, 2**31 - 1))))
            depth += 1
        elif kind == "local_get":
            ops_out.append(("local_get", draw(st.integers(0, 3))))
            depth += 1
        elif kind == "un":
            ops_out.append(("un", draw(st.sampled_from(_SAFE_UN))))
        elif kind == "bin":
            ops_out.append(("bin", draw(st.sampled_from(_SAFE_BIN))))
            depth -= 1
        elif kind == "local_set":
            ops_out.append(("local_set", draw(st.integers(0, 3))))
            depth -= 1
        elif kind == "local_tee":
            ops_out.append(("local_tee", draw(st.integers(0, 3))))
        elif kind == "store":
            # mask address into the first page, store the value
            ops_out.append(("store", draw(st.integers(0, 65528))))
            depth -= 1
        elif kind == "load":
            ops_out.append(("load", draw(st.integers(0, 65532))))
    # drain the stack into a xor accumulator
    ops_out.append(("drain", depth))
    return ops_out


def _build_module(abstract_ops):
    mb = ModuleBuilder()
    mb.set_memory(1)
    fb = mb.function("f", [I32, I32], [I32], export=True)
    fb.add_local(I32)
    fb.add_local(I32)
    for item in abstract_ops:
        kind = item[0]
        if kind == "const":
            fb.i32_const(item[1])
        elif kind == "local_get":
            fb.local_get(item[1])
        elif kind == "local_set":
            fb.local_set(item[1])
        elif kind == "local_tee":
            fb.local_tee(item[1])
        elif kind == "un":
            fb.emit(item[1])
        elif kind == "bin":
            fb.emit(item[1])
        elif kind == "store":
            # stack: [value] -> store8 at fixed address
            addr_tmp = item[1] & 0xFFF8
            fb.local_set(2)
            fb.i32_const(addr_tmp)
            fb.local_get(2)
            fb.emit(op.I32_STORE, 2, 0)
        elif kind == "load":
            fb.emit(op.DROP)
            fb.i32_const(item[1] & 0xFFFC)
            fb.emit(op.I32_LOAD, 2, 0)
        elif kind == "drain":
            fb.local_set(3) if item[1] else fb.i32_const(0)
            if item[1]:
                for _ in range(item[1] - 1):
                    fb.local_get(3).emit(op.I32_XOR).local_set(3)
                fb.local_get(3)
    return mb.build()


def _run_interp(module, args):
    prepared = []
    for i, func in enumerate(module.functions):
        prepared.append(("wasm", prepare_function(module, func, i)))
    cpu = CPUModel()
    mem = LinearMemory(1)
    interp = Interpreter(THREADED_PROFILE, cpu, mem, [], [], prepared)
    interp.set_signatures(module)
    return interp.call_index(0, args), bytes(mem.data[:256])


def _run_jit(module, args):
    program = compile_backend(module, CRANELIFT)
    cpu = CPUModel()
    mem = LinearMemory(1)
    machine = Machine(program, cpu, memory=mem)
    return machine.run_export("f", args), bytes(mem.data[:256])


class TestEngineEquivalence:
    @given(abstract=random_ops(),
           a=st.integers(0, 2**32 - 1), b=st.integers(0, 2**32 - 1))
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_interp_and_jit_agree(self, abstract, a, b):
        module = _build_module(abstract)   # builder validates
        interp_result = _run_interp(module, (a, b))
        jit_result = _run_jit(module, (a, b))
        assert interp_result == jit_result
