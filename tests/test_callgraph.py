"""Call-graph construction: SCCs, indirect edges, depth and stack bounds."""

import pytest

from repro.analysis.callgraph import build_call_graph, static_stack_bound
from repro.wasm import opcodes as op
from repro.wasm.builder import ModuleBuilder
from repro.wasm.types import I32, FuncType


def _mutual_recursion_module():
    """even/odd calling each other; main exported calling even."""
    mb = ModuleBuilder()
    odd_index = mb.reserve_function("odd")
    even = mb.function("even", params=(I32,), results=(I32,))
    even.local_get(0).emit(op.I32_EQZ)
    even.if_("base", result=I32)
    even.i32_const(1)
    even.else_()
    even.local_get(0).i32_const(1).emit(op.I32_SUB).call(odd_index)
    even.end()

    odd = mb.define_reserved("odd", params=(I32,), results=(I32,))
    odd.local_get(0).emit(op.I32_EQZ)
    odd.if_("base", result=I32)
    odd.i32_const(0)
    odd.else_()
    odd.local_get(0).i32_const(1).emit(op.I32_SUB).call_named("even")
    odd.end()

    main = mb.function("main", results=(I32,), export=True)
    main.i32_const(10).call_named("even")
    return mb.build()


def test_mutual_recursion_scc():
    module = _mutual_recursion_module()
    graph = build_call_graph(module)
    even = graph.names.index("even")
    odd = graph.names.index("odd")
    main = graph.names.index("main")

    assert graph.scc_of[even] == graph.scc_of[odd]
    assert graph.scc_of[main] != graph.scc_of[even]
    assert tuple(sorted((even, odd))) in \
        [tuple(sorted(s)) for s in graph.sccs]
    assert graph.recursive == {even, odd}
    # A reachable cycle makes the static call depth unbounded.
    assert graph.max_call_depth is None


def test_self_recursion_is_recursive():
    mb = ModuleBuilder()
    fact_index = mb.reserve_function("fact")
    fact = mb.define_reserved("fact", params=(I32,), results=(I32,))
    fact.local_get(0).emit(op.I32_EQZ)
    fact.if_("base", result=I32)
    fact.i32_const(1)
    fact.else_()
    fact.local_get(0).i32_const(1).emit(op.I32_SUB).call(fact_index)
    fact.end()
    mb.function("main", results=(I32,), export=True) \
        .i32_const(5).call(fact_index)
    graph = build_call_graph(mb.build())
    assert graph.names.index("fact") in graph.recursive
    assert graph.max_call_depth is None


def _chain_module():
    """main -> a -> b -> c, no recursion anywhere."""
    mb = ModuleBuilder()
    c = mb.function("c", results=(I32,))
    c.i32_const(7)
    b = mb.function("b", results=(I32,))
    b.call_named("c")
    a = mb.function("a", results=(I32,))
    a.call_named("b")
    main = mb.function("main", results=(I32,), export=True)
    main.call_named("a")
    return mb.build()


def test_max_call_depth_chain():
    graph = build_call_graph(_chain_module())
    assert graph.max_call_depth == 4          # main, a, b, c frames
    assert graph.recursive == set()
    assert graph.roots == (graph.names.index("main"),)
    assert not graph.dead_functions()


def _indirect_module():
    """Indirect-only edge to t1; t2 shares the table but not the type."""
    mb = ModuleBuilder()
    t1 = mb.function("t1", results=(I32,))
    t1.i32_const(11)
    t2 = mb.function("t2", params=(I32,), results=(I32,))
    t2.local_get(0)
    main = mb.function("main", results=(I32,), export=True)
    sig = mb.intern_type(FuncType((), (I32,)))
    main.i32_const(0).emit(op.CALL_INDIRECT, sig, 0)
    mb.add_element(0, ["t1", "t2"])
    return mb.build()


def test_indirect_edges_type_resolved():
    module = _indirect_module()
    graph = build_call_graph(module)
    t1 = graph.names.index("t1")
    t2 = graph.names.index("t2")
    main = graph.names.index("main")

    assert not graph.imprecise_indirect
    # No direct call anywhere, but the indirect edge resolves to the
    # type-matching table entry only.
    assert graph.direct[main] == ()
    assert graph.edges[main] == (t1,)
    assert set(graph.table_targets) == {t1, t2}
    reachable = graph.reachable()
    assert t1 in reachable
    assert t2 not in reachable


def test_dead_function_detection():
    mb = ModuleBuilder()
    dead = mb.function("deadbeef", results=(I32,))
    dead.i32_const(3)
    main = mb.function("main", results=(I32,), export=True)
    main.i32_const(1)
    graph = build_call_graph(mb.build())
    assert graph.dead_functions() == [graph.names.index("deadbeef")]


def test_imported_table_widens_indirect():
    mb = ModuleBuilder()
    mb.import_function("env", "h", FuncType((), (I32,)))
    main = mb.function("main", results=(I32,), export=True)
    sig = mb.intern_type(FuncType((), (I32,)))
    main.i32_const(0).emit(op.CALL_INDIRECT, sig, 0)
    module = mb.build(validate=False)
    from repro.wasm.module import KIND_TABLE, Import
    from repro.wasm.types import Limits
    module.imports.append(Import("env", "tbl", KIND_TABLE, Limits(4)))
    graph = build_call_graph(module)
    assert graph.imprecise_indirect
    # Widened: every signature-matching function is a possible callee.
    main_index = graph.names.index("main")
    assert graph.names.index("env.h") in graph.edges[main_index]


def test_static_stack_bound_simple():
    mb = ModuleBuilder()
    f = mb.function("f", params=(I32,), results=(I32,))
    # height trace: 1, 2, 3, 2, 1 -> max 3
    f.local_get(0).i32_const(2).i32_const(3)
    f.emit(op.I32_MUL).emit(op.I32_ADD)
    mb.function("main", results=(I32,), export=True) \
        .i32_const(1).call_named("f")
    module = mb.build()
    assert static_stack_bound(module, module.functions[0]) == 3


def test_static_stack_bound_skips_unreachable_tail():
    mb = ModuleBuilder()
    f = mb.function("f", results=(I32,))
    f.i32_const(1).ret()
    # Dead code after return must not contribute to the bound.
    f.i32_const(1).i32_const(2).i32_const(3).i32_const(4)
    f.emit(op.DROP).emit(op.DROP).emit(op.DROP)
    mb.function("main", results=(I32,), export=True).call_named("f")
    module = mb.build()
    assert static_stack_bound(module, module.functions[0]) == 1
