"""WABench suite tests: structure, compilation, and cross-engine agreement."""

import pytest

from repro.bench import (ALL_BENCHMARKS, APP_NAMES, SUITES, Benchmark,
                         by_suite, get, names)
from repro.compiler import compile_source
from repro.native import nativecc, run_native
from repro.runtimes import make_runtime
from repro.wasi import VirtualFS

ALL_NAMES = names()


def _fs_for(bench, size):
    fs = VirtualFS()
    for path, data in bench.files_for(size).items():
        fs.add_file(path, data)
    return fs


def run_bench_native(bench, size="test", opt=2):
    binary = nativecc(bench.source, opt, defines=bench.defines_for(size))
    return run_native(binary, fs=_fs_for(bench, size))


def run_bench_runtime(bench, runtime_name, size="test", opt=2):
    artifact = compile_source(bench.source, opt,
                              defines=bench.defines_for(size))
    return make_runtime(runtime_name).run(artifact.wasm_bytes,
                                          fs=_fs_for(bench, size))


class TestSuiteStructure:
    def test_fifty_benchmarks(self):
        assert len(ALL_BENCHMARKS) == 50

    def test_suite_sizes_match_table2(self):
        assert len(by_suite("jetstream2")) == 4
        assert len(by_suite("mibench")) == 9
        assert len(by_suite("polybench")) == 30
        assert len(by_suite("apps")) == 7

    def test_app_names_match_paper(self):
        assert set(APP_NAMES) == {b.name for b in by_suite("apps")}

    def test_unique_names(self):
        assert len(set(ALL_NAMES)) == 50

    def test_get_unknown_raises(self):
        with pytest.raises(KeyError):
            get("doom")

    def test_every_benchmark_has_three_sizes(self):
        for bench in ALL_BENCHMARKS:
            for size in ("test", "small", "ref"):
                defines = bench.defines_for(size)
                assert defines, (bench.name, size)

    def test_descriptions_and_domains_present(self):
        for bench in ALL_BENCHMARKS:
            assert bench.description and bench.domain

    def test_file_inputs_are_deterministic(self):
        for bench in ALL_BENCHMARKS:
            assert bench.files_for("test") == bench.files_for("test")


class TestCompilation:
    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_compiles_at_o2(self, name):
        bench = get(name)
        result = compile_source(bench.source, 2,
                                defines=bench.defines_for("test"))
        assert result.binary_size > 500
        assert result.instruction_count > 100

    def test_facedetection_is_code_heavy(self):
        # The paper's facedetection profile: large module, short run.
        fd = compile_source(get("facedetection").source, 2,
                            defines=get("facedetection").defines_for("test"))
        median = sorted(
            compile_source(get(n).source, 2,
                           defines=get(n).defines_for("test")).binary_size
            for n in ("gemm", "trisolv", "quicksort"))[1]
        assert fd.binary_size > 2 * median


class TestExecutionNative:
    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_runs_clean_natively(self, name):
        res = run_bench_native(get(name))
        assert res.trap is None, (name, res.trap)
        assert res.exit_code == 0, (name, res.stdout_text())
        assert res.stdout  # every benchmark reports something


class TestCrossEngineAgreement:
    # Full 50x5 agreement is covered by the harness; here each benchmark is
    # checked on one interpreter and one JIT, split to keep the suite fast.
    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_wamr_matches_native(self, name):
        bench = get(name)
        native = run_bench_native(bench)
        wamr = run_bench_runtime(bench, "wamr")
        assert wamr.trap is None, (name, wamr.trap)
        assert wamr.stdout == native.stdout, name

    @pytest.mark.parametrize("name", ALL_NAMES[::5])
    def test_wasmtime_matches_native(self, name):
        bench = get(name)
        native = run_bench_native(bench)
        jit = run_bench_runtime(bench, "wasmtime")
        assert jit.stdout == native.stdout, name

    @pytest.mark.parametrize("name", ("gnuchess", "whitedb", "snappy"))
    def test_opt_levels_agree_on_apps(self, name):
        bench = get(name)
        reference = run_bench_native(bench, opt=2).stdout
        assert run_bench_native(bench, opt=0).stdout == reference
        assert run_bench_runtime(bench, "wasm3", opt=1).stdout == reference


class TestPaperWorkloadProperties:
    def test_whitedb_touches_fraction_of_arena(self):
        # The mechanism behind the paper's whitedb MRSS anomaly.
        bench = get("whitedb")
        native = run_bench_native(bench)
        wamr = run_bench_runtime(bench, "wamr")
        arena_bytes = int(bench.defines_for("test")["ARENA_BYTES"])
        # The interpreter's resident set must be well below the arena size
        # plus base: untouched pages stay uncommitted.
        assert wamr.mrss_bytes < arena_bytes
        assert wamr.stdout == native.stdout

    def test_mnist_reports_accuracy(self):
        res = run_bench_native(get("mnist"), size="small")
        assert "accuracy_pct=" in res.stdout_text()

    def test_bzip2_compresses(self):
        text = run_bench_native(get("bzip2")).stdout_text()
        in_bytes = int(text.split("in=")[1].split()[0])
        out_bytes = int(text.split("out_bytes=")[1].split()[0])
        assert out_bytes < in_bytes

    def test_snappy_roundtrip_reported(self):
        text = run_bench_native(get("snappy")).stdout_text()
        assert "ratio_pct=" in text and "FAILED" not in text

    def test_gnuchess_searches_nodes(self):
        text = run_bench_native(get("gnuchess")).stdout_text()
        nodes = int(text.split("nodes=")[1].split()[0])
        assert nodes > 100
