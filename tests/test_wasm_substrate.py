"""Unit tests for the WebAssembly substrate: LEB128, encode/decode, validation."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import DecodeError, ValidationError, WasmError
from repro.wasm import (F64, I32, I64, FuncType, Limits, ModuleBuilder,
                        decode_module, encode_module, module_to_wat,
                        validate_module)
from repro.wasm import leb128, opcodes as op
from repro.wasm.module import Function, Module


class TestLeb128:
    def test_encode_u_zero(self):
        assert leb128.encode_u(0) == b"\x00"

    def test_encode_u_multibyte(self):
        assert leb128.encode_u(624485) == b"\xe5\x8e\x26"

    def test_encode_s_negative(self):
        assert leb128.encode_s(-123456) == b"\xc0\xbb\x78"

    def test_encode_u_rejects_negative(self):
        with pytest.raises(ValueError):
            leb128.encode_u(-1)

    def test_decode_u_truncated(self):
        with pytest.raises(DecodeError):
            leb128.decode_u(b"\x80", 0)

    def test_decode_u_overlong(self):
        with pytest.raises(DecodeError):
            leb128.decode_u(b"\x80\x80\x80\x80\x80\x80", 0, 32)

    def test_decode_u_out_of_range(self):
        # 2**32 does not fit in 32 bits.
        data = leb128.encode_u(2 ** 32)
        with pytest.raises(DecodeError):
            leb128.decode_u(data, 0, 32)

    @given(st.integers(min_value=0, max_value=2 ** 32 - 1))
    def test_u32_roundtrip(self, value):
        data = leb128.encode_u(value)
        decoded, offset = leb128.decode_u(data, 0, 32)
        assert decoded == value and offset == len(data)

    @given(st.integers(min_value=-2 ** 31, max_value=2 ** 31 - 1))
    def test_s32_roundtrip(self, value):
        data = leb128.encode_s(value)
        decoded, offset = leb128.decode_s(data, 0, 32)
        assert decoded == value and offset == len(data)

    @given(st.integers(min_value=-2 ** 63, max_value=2 ** 63 - 1))
    def test_s64_roundtrip(self, value):
        data = leb128.encode_s(value)
        decoded, offset = leb128.decode_s(data, 0, 64)
        assert decoded == value and offset == len(data)


def _simple_module() -> "Module":
    mb = ModuleBuilder()
    mb.set_memory(1, 16)
    mb.add_global("g", I32, True, (op.I32_CONST, 7))
    fb = mb.function("add", [I32, I32], [I32], export=True)
    fb.local_get(0).local_get(1).emit(op.I32_ADD)
    fb2 = mb.function("main", [], [I32], export=True)
    fb2.i32_const(2).i32_const(3).call_named("add")
    return mb.build()


class TestEncodeDecode:
    def test_roundtrip_simple(self):
        module = _simple_module()
        data = encode_module(module)
        assert data[:4] == b"\x00asm"
        decoded = decode_module(data)
        assert len(decoded.functions) == 2
        assert decoded.types == module.types
        assert decoded.functions[0].body == module.functions[0].body
        # Re-encode must be byte-identical (canonical encoder).
        assert encode_module(decoded) == data

    def test_roundtrip_control_flow(self):
        mb = ModuleBuilder()
        fb = mb.function("count", [I32], [I32], export=True)
        acc = fb.add_local(I32)
        fb.block("exit")
        fb.loop("top")
        fb.local_get(0).emit(op.I32_EQZ).br_if("exit")
        fb.local_get(acc).i32_const(1).emit(op.I32_ADD).local_set(acc)
        fb.local_get(0).i32_const(1).emit(op.I32_SUB).local_set(0)
        fb.br("top")
        fb.end().end()
        fb.local_get(acc)
        module = mb.build()
        data = encode_module(module)
        decoded = decode_module(data)
        assert decoded.functions[0].body == module.functions[0].body

    def test_decode_rejects_bad_magic(self):
        with pytest.raises(DecodeError):
            decode_module(b"\x00bad\x01\x00\x00\x00")

    def test_decode_rejects_truncation(self):
        data = encode_module(_simple_module())
        with pytest.raises(DecodeError):
            decode_module(data[:-3])

    def test_decode_rejects_unknown_opcode(self):
        module = _simple_module()
        module.functions[0].body = [(0xFE,)]
        # Encoder refuses unknown opcodes too.
        with pytest.raises(Exception):
            encode_module(module)

    def test_data_segments_roundtrip(self):
        mb = ModuleBuilder()
        mb.set_memory(1)
        mb.add_data(16, b"hello world\x00")
        mb.function("main", [], [], export=True).emit(op.NOP)
        module = mb.build()
        decoded = decode_module(encode_module(module))
        assert decoded.data[0].data == b"hello world\x00"
        assert decoded.data[0].offset == [(op.I32_CONST, 16)]

    def test_element_segments_roundtrip(self):
        mb = ModuleBuilder()
        fb = mb.function("f", [], [I32], export=True)
        fb.i32_const(42)
        mb.add_element(0, ["f"])
        module = mb.build()
        decoded = decode_module(encode_module(module))
        assert decoded.elements[0].func_indices == [0]

    def test_imports_roundtrip(self):
        mb = ModuleBuilder()
        mb.import_function("wasi_snapshot_preview1", "fd_write",
                           FuncType((I32, I32, I32, I32), (I32,)), "fd_write")
        mb.set_memory(1)
        fb = mb.function("main", [], [], export=True)
        fb.i32_const(0).i32_const(0).i32_const(0).i32_const(0)
        fb.call_named("fd_write").emit(op.DROP)
        module = mb.build()
        decoded = decode_module(encode_module(module))
        assert decoded.imports[0].module == "wasi_snapshot_preview1"
        assert decoded.num_imported_funcs == 1
        # Defined function is at joint index 1.
        assert decoded.func_type(1) == FuncType((), ())


class TestValidator:
    def test_valid_module_passes(self):
        validate_module(_simple_module())

    def test_stack_underflow(self):
        mb = ModuleBuilder()
        fb = mb.function("bad", [], [I32])
        fb.emit(op.I32_ADD)  # nothing on the stack
        with pytest.raises(ValidationError):
            mb.build()

    def test_type_mismatch(self):
        mb = ModuleBuilder()
        fb = mb.function("bad", [], [I32])
        fb.f64_const(1.0).f64_const(2.0).emit(op.I32_ADD)
        with pytest.raises(ValidationError):
            mb.build()

    def test_missing_result(self):
        mb = ModuleBuilder()
        mb.function("bad", [], [I32]).emit(op.NOP)
        with pytest.raises(ValidationError):
            mb.build()

    def test_leftover_values(self):
        mb = ModuleBuilder()
        fb = mb.function("bad", [], [])
        fb.i32_const(1)
        with pytest.raises(ValidationError):
            mb.build()

    def test_bad_local_index(self):
        mb = ModuleBuilder()
        mb.function("bad", [I32], [I32]).local_get(5)
        with pytest.raises(ValidationError):
            mb.build()

    def test_set_immutable_global(self):
        mb = ModuleBuilder()
        mb.add_global("g", I32, False, (op.I32_CONST, 1))
        fb = mb.function("bad", [], [])
        fb.i32_const(2).global_set(0)
        with pytest.raises(ValidationError):
            mb.build()

    def test_unreachable_polymorphism(self):
        # Code after unreachable may use any types.
        mb = ModuleBuilder()
        fb = mb.function("ok", [], [I32])
        fb.emit(op.UNREACHABLE)
        fb.emit(op.I32_ADD)  # polymorphic operands
        mb.build()  # must validate

    def test_br_to_outer_label(self):
        mb = ModuleBuilder()
        fb = mb.function("ok", [I32], [I32], export=True)
        fb.block("a", I32)
        fb.i32_const(1)
        fb.local_get(0).emit(op.I32_EQZ)
        fb.br_if("a")
        fb.emit(op.DROP)
        fb.i32_const(2)
        fb.end()
        mb.build()

    def test_if_with_result_requires_else(self):
        mb = ModuleBuilder()
        fb = mb.function("bad", [I32], [I32])
        fb.local_get(0)
        fb.if_("x", I32)
        fb.i32_const(1)
        fb.end()
        with pytest.raises(ValidationError):
            mb.build()

    def test_if_else_result(self):
        mb = ModuleBuilder()
        fb = mb.function("ok", [I32], [I32], export=True)
        fb.local_get(0)
        fb.if_("x", I32)
        fb.i32_const(1)
        fb.else_()
        fb.i32_const(2)
        fb.end()
        mb.build()

    def test_call_undefined_function(self):
        module = _simple_module()
        module.functions[1].body = [(op.CALL, 99)]
        with pytest.raises(ValidationError):
            validate_module(module)

    def test_memory_instruction_without_memory(self):
        mb = ModuleBuilder()
        fb = mb.function("bad", [], [I32])
        fb.i32_const(0).emit(op.I32_LOAD, 2, 0)
        with pytest.raises(ValidationError):
            mb.build()

    def test_overaligned_access(self):
        mb = ModuleBuilder()
        mb.set_memory(1)
        fb = mb.function("bad", [], [I32])
        fb.i32_const(0).emit(op.I32_LOAD, 4, 0)  # 2**4 = 16 > width 4
        with pytest.raises(ValidationError):
            mb.build()

    def test_duplicate_export_rejected(self):
        module = _simple_module()
        module.exports.append(module.exports[0])
        with pytest.raises(ValidationError):
            validate_module(module)

    def test_br_table_validates(self):
        mb = ModuleBuilder()
        fb = mb.function("ok", [I32], [I32], export=True)
        out = fb.add_local(I32)
        fb.block("c")
        fb.block("b")
        fb.block("a")
        fb.local_get(0)
        fb.br_table(["a", "b"], "c")
        fb.end()
        fb.i32_const(10).local_set(out)
        fb.br("c")
        fb.end()
        fb.i32_const(20).local_set(out)
        fb.end()
        fb.local_get(out)
        mb.build()


class TestBuilder:
    def test_unknown_label_raises(self):
        mb = ModuleBuilder()
        fb = mb.function("f", [], [])
        with pytest.raises(WasmError):
            fb.br("nope")

    def test_unclosed_label_raises(self):
        mb = ModuleBuilder()
        fb = mb.function("f", [], [])
        fb.block("open")
        with pytest.raises(WasmError):
            mb.build()

    def test_reserve_then_define(self):
        mb = ModuleBuilder()
        index = mb.reserve_function("later")
        fb = mb.function("caller", [], [I32], export=True)
        fb.call(index)
        fb2 = mb.define_reserved("later", [], [I32])
        fb2.i32_const(9)
        module = mb.build()
        # Reservation fixes the index at reserve time: "later" got index 0.
        assert module.functions[0].name == "later"
        assert module.functions[1].name == "caller"
        assert module.functions[1].body == [(op.CALL, 0)]

    def test_locals_run_length_encoding(self):
        mb = ModuleBuilder()
        fb = mb.function("f", [], [])
        fb.add_local(I32)
        fb.add_local(I32)
        fb.add_local(F64)
        fb.add_local(I32)
        fb.emit(op.NOP)
        module = mb.build()
        assert module.functions[0].local_decls == [(2, I32), (1, F64), (1, I32)]
        assert module.functions[0].local_types() == [I32, I32, F64, I32]

    def test_duplicate_function_name(self):
        mb = ModuleBuilder()
        mb.function("f", [], []).emit(op.NOP)
        with pytest.raises(WasmError):
            mb.function("f", [], [])


class TestWat:
    def test_wat_output_contains_structure(self):
        text = module_to_wat(_simple_module())
        assert "(module" in text
        assert "i32.add" in text
        assert '(export "add"' in text

    def test_format_body_indents(self):
        from repro.wasm import format_body
        body = [(op.BLOCK, 0x40), (op.NOP,), (op.END,)]
        lines = format_body(body).splitlines()
        assert lines[1].startswith("      ")  # nop is indented deeper
