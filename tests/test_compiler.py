"""Compiler tests: language semantics verified by executing compiled code.

Each test compiles a MiniC program and checks its observable output on
the cheapest runtime (and, where interesting, at several -O levels —
optimization must never change results).
"""

import pytest

from repro.compiler import compile_source
from repro.errors import CompileError
from tests.conftest import run_native_quick, run_wamr


def out(source, **kw):
    res = run_wamr(source, **kw)
    assert res.trap is None, res.trap
    return res.stdout_text()


class TestArithmetic:
    def test_integer_ops(self):
        assert out("""
            int main(void) {
                int a = 17, b = 5;
                print_i(a + b); print_nl();
                print_i(a - b); print_nl();
                print_i(a * b); print_nl();
                print_i(a / b); print_nl();
                print_i(a % b); print_nl();
                return 0;
            }
        """) == "22\n12\n85\n3\n2\n"

    def test_negative_division_truncates(self):
        assert out("""
            int main(void) {
                print_i(-7 / 2); print_nl();
                print_i(-7 % 2); print_nl();
                print_i(7 / -2); print_nl();
                return 0;
            }
        """) == "-3\n-1\n-3\n"

    def test_unsigned_arithmetic(self):
        assert out("""
            int main(void) {
                unsigned int big = 0xFFFFFFF0u;
                big = big + 0x20u;   /* wraps */
                print_u(big); print_nl();
                print_u(big / 2u); print_nl();
                return 0;
            }
        """) == "16\n8\n"

    def test_signed_overflow_wraps(self):
        assert out("""
            int main(void) {
                int x = 2147483647;
                x = x + 1;
                print_i(x); print_nl();
                return 0;
            }
        """) == "-2147483648\n"

    def test_long_arithmetic(self):
        assert out("""
            int main(void) {
                long a = 4000000000l;
                long b = a * 3l;
                print_l(b); print_nl();
                print_l(b >> 4); print_nl();
                return 0;
            }
        """) == "12000000000\n750000000\n"

    def test_shifts_and_masks(self):
        assert out("""
            int main(void) {
                int x = -16;
                print_i(x >> 2); print_nl();          /* arithmetic */
                print_u((unsigned int)x >> 2); print_nl();  /* logical */
                print_x(0xABCD1234u & 0xFFFFu); print_nl();
                return 0;
            }
        """) == "-4\n1073741820\n1234\n"

    def test_char_wrapping(self):
        assert out("""
            int main(void) {
                char c = (char)200;
                unsigned char u = (unsigned char)200;
                print_i(c); print_nl();
                print_i(u); print_nl();
                return 0;
            }
        """) == "-56\n200\n"

    def test_float_double(self):
        text = out("""
            int main(void) {
                double d = 1.5;
                float f = 0.25;
                print_f(d * 2.0 + (double)f); print_nl();
                print_f(1.0 / 3.0); print_nl();
                return 0;
            }
        """)
        assert text == "3.250000\n0.333333\n"

    def test_comparison_chain(self):
        assert out("""
            int main(void) {
                int a = 3, b = 7;
                print_i(a < b); print_i(a > b); print_i(a == 3);
                print_i(a != b); print_i(b >= 7); print_i(b <= 6);
                print_nl();
                return 0;
            }
        """) == "101110\n"

    def test_ternary_and_logical(self):
        assert out("""
            int check(int x) { return x > 10 ? 100 : -100; }
            int main(void) {
                print_i(check(20)); print_nl();
                print_i(check(5)); print_nl();
                print_i(1 && 2); print_i(0 || 3); print_i(!5); print_i(!0);
                print_nl();
                return 0;
            }
        """) == "100\n-100\n1101\n"

    def test_short_circuit_side_effects(self):
        assert out("""
            int calls = 0;
            int bump(void) { calls++; return 1; }
            int main(void) {
                int r = 0 && bump();
                r = 1 || bump();
                print_i(calls); print_nl();
                r = 1 && bump();
                r = 0 || bump();
                print_i(calls); print_nl();
                return 0;
            }
        """) == "0\n2\n"


class TestControlFlow:
    def test_nested_loops(self):
        assert out("""
            int main(void) {
                int total = 0;
                int i, j;
                for (i = 0; i < 5; i++)
                    for (j = 0; j <= i; j++)
                        total += j;
                print_i(total); print_nl();
                return 0;
            }
        """) == "20\n"

    def test_break_continue(self):
        assert out("""
            int main(void) {
                int total = 0, i;
                for (i = 0; i < 100; i++) {
                    if (i % 2 == 0) continue;
                    if (i > 10) break;
                    total += i;
                }
                print_i(total); print_nl();
                return 0;
            }
        """) == "25\n"

    def test_do_while(self):
        assert out("""
            int main(void) {
                int n = 0;
                do { n++; } while (n < 5);
                print_i(n); print_nl();
                do { n++; } while (0);
                print_i(n); print_nl();
                return 0;
            }
        """) == "5\n6\n"

    def test_switch_dense(self):
        assert out("""
            char *name(int d) {
                switch (d) {
                case 0: return "zero";
                case 1: return "one";
                case 2: return "two";
                case 3: return "three";
                default: return "many";
                }
            }
            int main(void) {
                int i;
                for (i = 0; i < 5; i++) { print_s(name(i)); print_nl(); }
                return 0;
            }
        """) == "zero\none\ntwo\nthree\nmany\n"

    def test_switch_fallthrough(self):
        assert out("""
            int main(void) {
                int count = 0;
                int x = 1;
                switch (x) {
                case 0: count += 1;
                case 1: count += 10;
                case 2: count += 100; break;
                case 3: count += 1000;
                }
                print_i(count); print_nl();
                return 0;
            }
        """) == "110\n"

    def test_switch_sparse(self):
        assert out("""
            int f(int x) {
                switch (x) {
                case 1: return 10;
                case 100: return 20;
                case 10000: return 30;
                }
                return -1;
            }
            int main(void) {
                print_i(f(1) + f(100) + f(10000) + f(5)); print_nl();
                return 0;
            }
        """) == "59\n"

    def test_deep_recursion(self):
        assert out("""
            int depth(int n) {
                if (n == 0) return 0;
                return 1 + depth(n - 1);
            }
            int main(void) { print_i(depth(300)); print_nl(); return 0; }
        """) == "300\n"

    def test_goto_free_state_machine(self):
        assert out("""
            int main(void) {
                int state = 0, steps = 0;
                while (state != 3) {
                    if (state == 0) state = 2;
                    else if (state == 2) state = 1;
                    else state = 3;
                    steps++;
                }
                print_i(steps); print_nl();
                return 0;
            }
        """) == "3\n"


class TestMemoryAndPointers:
    def test_global_arrays(self):
        assert out("""
            int grid[4][8];
            int main(void) {
                int i, j, total = 0;
                for (i = 0; i < 4; i++)
                    for (j = 0; j < 8; j++)
                        grid[i][j] = i * 10 + j;
                for (i = 0; i < 4; i++) total += grid[i][7];
                print_i(total); print_nl();
                return 0;
            }
        """) == "88\n"

    def test_pointer_arithmetic(self):
        assert out("""
            int data[5] = {10, 20, 30, 40, 50};
            int main(void) {
                int *p = data;
                print_i(*(p + 2)); print_nl();
                p += 4;
                print_i(*p); print_nl();
                print_i((int)(p - data)); print_nl();
                return 0;
            }
        """) == "30\n50\n4\n"

    def test_address_of_local(self):
        assert out("""
            void set(int *p, int v) { *p = v; }
            int main(void) {
                int x = 1;
                set(&x, 42);
                print_i(x); print_nl();
                return 0;
            }
        """) == "42\n"

    def test_local_array_init_list(self):
        assert out("""
            int main(void) {
                int v[4] = {3, 1, 4, 1};
                int i, total = 0;
                for (i = 0; i < 4; i++) total = total * 10 + v[i];
                print_i(total); print_nl();
                return 0;
            }
        """) == "3141\n"

    def test_string_operations(self):
        assert out("""
            int main(void) {
                char buf[32];
                strcpy(buf, "hello");
                strcat(buf, ", world");
                print_i((int)strlen(buf)); print_nl();
                print_s(buf); print_nl();
                print_i(strcmp(buf, "hello, world")); print_nl();
                return 0;
            }
        """) == "12\nhello, world\n0\n"

    def test_malloc_free_reuse(self):
        assert out("""
            int main(void) {
                int *a = (int *)malloc(64);
                int i;
                for (i = 0; i < 16; i++) a[i] = i;
                print_i(a[15]); print_nl();
                free((void *)a);
                {
                    int *b = (int *)malloc(32);
                    /* first-fit reuses the freed block */
                    print_i((int)(b == a)); print_nl();
                    b[0] = 7;
                    print_i(b[0]); print_nl();
                }
                return 0;
            }
        """) == "15\n1\n7\n"

    def test_calloc_zeroes_recycled(self):
        assert out("""
            int main(void) {
                int *a = (int *)malloc(64);
                a[0] = 12345;
                free((void *)a);
                {
                    int *b = (int *)calloc(16, 4);
                    print_i(b[0]); print_nl();
                }
                return 0;
            }
        """) == "0\n"

    def test_memcpy_memcmp_memset(self):
        assert out("""
            char a[16];
            char b[16];
            int main(void) {
                memset((void *)a, 7, 16);
                memcpy((void *)b, (void *)a, 16);
                print_i(memcmp((void *)a, (void *)b, 16)); print_nl();
                b[9] = 8;
                print_i(memcmp((void *)a, (void *)b, 16) < 0); print_nl();
                return 0;
            }
        """) == "0\n1\n"

    def test_2d_array_through_pointer(self):
        assert out("""
            double m[3][3];
            int main(void) {
                int i, j;
                for (i = 0; i < 3; i++)
                    for (j = 0; j < 3; j++)
                        m[i][j] = (double)(i * 3 + j);
                print_f(m[2][2] + m[1][0]); print_nl();
                return 0;
            }
        """) == "11.000000\n"

    def test_memmove_overlap(self):
        assert out("""
            char buf[16] = "abcdefgh";
            int main(void) {
                memmove((void *)(buf + 2), (void *)buf, 6);
                buf[8] = 0;
                print_s(buf); print_nl();
                return 0;
            }
        """) == "ababcdef\n"


class TestFunctionPointers:
    def test_qsort_with_comparator(self):
        assert out("""
            int values[8] = {42, 7, 19, 3, 88, 1, 55, 26};
            int cmp_int(void *a, void *b) {
                return *(int *)a - *(int *)b;
            }
            int main(void) {
                int i;
                qsort((void *)values, 8u, 4u, cmp_int);
                for (i = 0; i < 8; i++) { print_i(values[i]); putchar(' '); }
                print_nl();
                return 0;
            }
        """) == "1 3 7 19 26 42 55 88 \n"

    def test_function_pointer_dispatch(self):
        assert out("""
            int add(int a, int b) { return a + b; }
            int mul(int a, int b) { return a * b; }
            int apply(int (*op)(int, int), int x, int y) {
                return op(x, y);
            }
            int main(void) {
                int (*f)(int, int) = add;
                print_i(apply(f, 3, 4)); print_nl();
                f = mul;
                print_i(apply(f, 3, 4)); print_nl();
                print_i(apply(add, 10, apply(mul, 2, 5))); print_nl();
                return 0;
            }
        """) == "7\n12\n20\n"

    def test_function_pointer_table(self):
        assert out("""
            int inc(int x) { return x + 1; }
            int dec(int x) { return x - 1; }
            int dbl(int x) { return x * 2; }
            int (*ops[3])(int);
            int main(void) {
                int v = 10, i;
                ops[0] = inc; ops[1] = dbl; ops[2] = dec;
                for (i = 0; i < 3; i++) v = ops[i](v);
                print_i(v); print_nl();
                return 0;
            }
        """) == "21\n"


class TestLibm:
    def test_sqrt_pow_exp_log(self):
        text = out("""
            int main(void) {
                print_f(sqrt(16.0)); print_nl();
                print_f(pow(2.0, 10.0)); print_nl();
                print_f(pow(2.0, 0.5)); print_nl();
                print_f(exp(0.0)); print_nl();
                print_f(log(exp(3.0))); print_nl();
                return 0;
            }
        """)
        lines = text.splitlines()
        assert lines[0] == "4.000000"
        assert lines[1] == "1024.000000"
        assert abs(float(lines[2]) - 2 ** 0.5) < 1e-5
        assert lines[3] == "1.000000"
        assert abs(float(lines[4]) - 3.0) < 5e-5

    def test_trig(self):
        import math
        text = out("""
            int main(void) {
                print_f(sin(0.5)); print_nl();
                print_f(cos(0.5)); print_nl();
                print_f(atan(1.0)); print_nl();
                print_f(atan2(1.0, -1.0)); print_nl();
                return 0;
            }
        """)
        values = [float(x) for x in text.split()]
        assert abs(values[0] - math.sin(0.5)) < 1e-6
        assert abs(values[1] - math.cos(0.5)) < 1e-6
        assert abs(values[2] - math.pi / 4) < 1e-6
        assert abs(values[3] - 3 * math.pi / 4) < 1e-6

    def test_floor_ceil_fmod(self):
        assert out("""
            int main(void) {
                print_f(floor(2.7)); print_nl();
                print_f(ceil(2.1)); print_nl();
                print_f(fmod(7.5, 2.0)); print_nl();
                print_f(fabs(-3.25)); print_nl();
                return 0;
            }
        """) == "2.000000\n3.000000\n1.500000\n3.250000\n"

    def test_rand_deterministic(self):
        text = out("""
            int main(void) {
                int i;
                srand(42);
                for (i = 0; i < 3; i++) { print_i(rand()); putchar(' '); }
                print_nl();
                return 0;
            }
        """)
        assert text == out("""
            int main(void) {
                int i;
                srand(42);
                for (i = 0; i < 3; i++) { print_i(rand()); putchar(' '); }
                print_nl();
                return 0;
            }
        """)


class TestFileIO:
    def test_read_input_file(self):
        text = out("""
            int main(void) {
                char buf[64];
                int fd = open_read("input.txt");
                int n = read_bytes(fd, buf, 63);
                buf[n] = 0;
                print_i(n); print_nl();
                print_s(buf); print_nl();
                close_fd(fd);
                return 0;
            }
        """, files={"input.txt": b"hello file"})
        assert text == "10\nhello file\n"

    def test_write_then_read_back(self):
        assert out("""
            int main(void) {
                char buf[16];
                int fd = open_write("out.bin");
                write_bytes(fd, "abc", 3);
                close_fd(fd);
                fd = open_read("out.bin");
                {
                    int n = read_bytes(fd, buf, 16);
                    buf[n] = 0;
                    print_s(buf); print_nl();
                }
                return 0;
            }
        """) == "abc\n"

    def test_seek(self):
        assert out("""
            int main(void) {
                char buf[8];
                int fd = open_read("data.txt");
                seek_fd(fd, 6l, 0);
                {
                    int n = read_bytes(fd, buf, 5);
                    buf[n] = 0;
                    print_s(buf); print_nl();
                }
                return 0;
            }
        """, files={"data.txt": b"01234567890"}) == "67890\n"

    def test_missing_file(self):
        assert out("""
            int main(void) {
                print_i(open_read("nope.txt")); print_nl();
                return 0;
            }
        """) == "-1\n"


class TestOptimizationSoundness:
    SOURCE = """
        int poly[6] = {3, -1, 4, 1, -5, 9};
        unsigned int hash = 2166136261u;
        int main(void) {
            int i;
            long total = 0l;
            for (i = 0; i < 6; i++) {
                total += (long)(poly[i] * poly[(i + 1) % 6]);
                hash = (hash ^ (unsigned int)poly[i]) * 16777619u;
            }
            total += (long)(10 * 4 + 3);   /* const-foldable */
            total *= 8l;                    /* strength-reducible */
            print_l(total); print_nl();
            print_x(hash); print_nl();
            return 0;
        }
    """

    @pytest.mark.parametrize("opt", [0, 1, 2, 3])
    def test_same_output_at_every_level(self, opt):
        reference = run_native_quick(self.SOURCE, opt_level=2).stdout
        assert run_native_quick(self.SOURCE, opt_level=opt).stdout == reference
        assert run_wamr(self.SOURCE, opt_level=opt).stdout == reference

    def test_o2_emits_fewer_instructions_than_o0(self):
        o0 = compile_source(self.SOURCE, opt_level=0)
        o2 = compile_source(self.SOURCE, opt_level=2)
        assert o2.instruction_count < o0.instruction_count

    def test_unrolling_applies_at_o3(self):
        source = """
            int a[4];
            int main(void) {
                int total = 0;
                for (int i = 0; i < 4; i++) { total += i * 2; }
                print_i(total); print_nl();
                return 0;
            }
        """
        r3 = compile_source(source, opt_level=3)
        assert r3.midend_stats["unroll"] >= 1
        assert run_wamr(source, opt_level=3).stdout_text() == "12\n"


class TestDiagnostics:
    def test_undefined_function_is_link_error(self):
        with pytest.raises(CompileError):
            compile_source("int main(void) { return missing(); }")

    def test_unreachable_undefined_function_ok(self):
        # Declared but never called: fine (libc itself declares plenty).
        compile_source("int helper(int); int main(void) { return 0; }")

    def test_entry_required(self):
        with pytest.raises(CompileError):
            compile_source("int helper(void) { return 1; }")

    def test_bad_opt_level(self):
        with pytest.raises(CompileError):
            compile_source("int main(void){return 0;}", opt_level=7)
