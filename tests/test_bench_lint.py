"""Sanitizer sweep over the full WABench suite.

The sanitizer's zero-false-positive contract is enforced here: all 50
benchmark sources, with their real workload defines, must lint clean.
(The sweep parses each program twice — once per lint, once via the
normal compile in other suites — so it carries the ``slow`` marker.)
"""

import pytest

from repro.analysis import analyze_source
from repro.bench import ALL_BENCHMARKS

pytestmark = pytest.mark.slow


@pytest.mark.parametrize("bench", ALL_BENCHMARKS, ids=lambda b: b.name)
def test_bench_source_lints_clean(bench):
    findings = analyze_source(bench.source,
                              defines=bench.defines_for("test"))
    assert findings == [], (
        f"{bench.name}: "
        f"{[(f.kind, f.line, f.message) for f in findings]}")
