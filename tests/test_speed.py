"""The repro.speed contract: faster wall clock, byte-identical model.

Four families of checks (PERFORMANCE.md documents the contract):

* **Pipeline equivalence** — the full harness pipeline produces a
  byte-identical serialized :class:`RunResult` (counters, stdout, traps,
  phase spans) with the speed layer enabled and disabled.
* **Interpreter equivalence under hypothesis** — seeded random Wasm
  modules execute identically (value, memory image, every modeled
  counter, trap) through the predecoded fast loop and the reference
  loop.
* **Lexer differential** — the regex scanner agrees token-for-token
  (including line/column bookkeeping) with ``_tokenize_reference`` on
  every benchmark source and on hypothesis-generated soup.
* **Decoded-module cache** — memory/disk hit, miss, and corruption
  paths, plus the rule that only validated modules persist.

Plus a guard for :func:`repro.obs.export.canonical_lines`, which the
determinism checks depend on to strip exactly the wall field and
nothing else.
"""

import json
import pickle

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import speed
from repro.fuzz.generator import generate_module
from repro.harness import Harness
from repro.harness.cache import ArtifactCache
from repro.hw import CPUModel
from repro.minic.lexer import _tokenize_reference, tokenize
from repro.obs.export import canonical_lines
from repro.runtimes.interp.engine import (THREADED_PROFILE, Interpreter,
                                          prepare_function)
from repro.speed.modcache import ModuleCache, ModuleEntry
from repro.errors import Trap

from .conftest import fuzz_seeds


@pytest.fixture(autouse=True)
def _speed_layer_reset():
    """Each test starts speed-enabled with a cold, detached module cache."""
    speed.set_enabled(True)
    speed.module_cache.clear()
    speed.module_cache.attach_disk(None)
    yield
    speed.set_enabled(True)
    speed.module_cache.clear()
    speed.module_cache.attach_disk(None)


# ---------------------------------------------------------------------------
# Pipeline equivalence: speed on == speed off, byte for byte.
# ---------------------------------------------------------------------------

EQUIVALENCE_CELLS = [
    ("gemm", "wasm3", False),
    ("gemm", "wasmtime", False),
    ("gemm", "wasmtime", True),
    ("crc32", "wamr", False),
    ("quicksort", "wasmer", False),
]


def _run_cell(bench, engine, aot, enabled):
    speed.module_cache.clear()
    speed.set_enabled(enabled)
    try:
        harness = Harness(size="test", benchmarks=[bench])
        return harness.run(bench, engine, aot=aot).to_json()
    finally:
        speed.set_enabled(True)


@pytest.mark.parametrize("bench,engine,aot", EQUIVALENCE_CELLS)
def test_pipeline_equivalence(bench, engine, aot):
    slow = _run_cell(bench, engine, aot, enabled=False)
    fast = _run_cell(bench, engine, aot, enabled=True)
    assert fast == slow


def test_pipeline_equivalence_warm_cache_rerun():
    """A warm in-process rerun (module cache hot) is also byte-identical."""
    reference = _run_cell("gemm", "wasm3", False, enabled=False)
    speed.module_cache.clear()
    speed.set_enabled(True)
    harness = Harness(size="test", benchmarks=["gemm"])
    cold = harness.run("gemm", "wasm3").to_json()
    # A second harness re-executes (no shared result cache) but hits the
    # process-wide decoded-module cache.
    warm = Harness(size="test", benchmarks=["gemm"]).run(
        "gemm", "wasm3").to_json()
    assert cold == reference
    assert warm == reference
    assert speed.module_cache.hits > 0


# ---------------------------------------------------------------------------
# Interpreter equivalence on seeded random modules (hypothesis).
# ---------------------------------------------------------------------------


def _counters_dict(cpu):
    c = cpu.counters
    return {
        "instructions": c.instructions,
        "stall_cycles": c.stall_cycles,
        "branches": c.branches,
        "branch_misses": c.branch_misses,
        "l1i": (c.l1i.refs, c.l1i.misses),
        "l1d": (c.l1d.refs, c.l1d.misses),
        "l2": (c.l2.refs, c.l2.misses),
        "l3": (c.l3.refs, c.l3.misses),
    }


def _interp_run(module, args, use_fast):
    from repro.isa.memory import LinearMemory

    prepared = []
    for i, func in enumerate(module.functions):
        prepared.append(("wasm", prepare_function(module, func, i)))
    cpu = CPUModel()
    mem = LinearMemory(1)
    interp = Interpreter(THREADED_PROFILE, cpu, mem, [], [], prepared)
    interp.set_signatures(module)
    if use_fast:
        entry = ModuleEntry("test", module, None)
        entry.prepared = prepared
        entry.total_ops = sum(len(f.body) for f in module.functions)
        fast = entry.fast_code(THREADED_PROFILE, cpu.caches.line_shift)
        assert fast, "predecode produced no fast code"
        interp.fast_code = fast
    trap = None
    value = None
    try:
        value = interp.call_index(0, args)
    except Trap as exc:
        trap = str(exc)
    return value, trap, bytes(mem.data[:4096]), _counters_dict(cpu)


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=2**32 - 1),
       a=st.integers(min_value=0, max_value=2**32 - 1),
       b=st.integers(min_value=0, max_value=2**32 - 1))
def test_interp_equivalence_hypothesis(seed, a, b):
    module = generate_module(seed)
    slow = _interp_run(module, (a, b), use_fast=False)
    fast = _interp_run(module, (a, b), use_fast=True)
    assert fast == slow


@pytest.mark.parametrize("seed", fuzz_seeds(8, salt=0x5EED))
def test_interp_equivalence_seeded(seed):
    module = generate_module(seed)
    slow = _interp_run(module, (7, 13), use_fast=False)
    fast = _interp_run(module, (7, 13), use_fast=True)
    assert fast == slow


# ---------------------------------------------------------------------------
# Lexer differential: regex scanner vs reference scanner.
# ---------------------------------------------------------------------------


def test_lexer_matches_reference_on_all_benchmarks():
    from repro.bench import ALL_BENCHMARKS

    for bench in ALL_BENCHMARKS:
        defines = bench.defines_for("test")
        assert tokenize(bench.source, defines) == \
            _tokenize_reference(bench.source, defines), bench.name


_SOUP = st.text(
    alphabet=st.sampled_from(
        list("abcxyz_019 \t\n+-*/%<>=!&|^~(){}[];,.\"'\\#")),
    max_size=200)


@settings(max_examples=200, deadline=None)
@given(source=_SOUP)
def test_lexer_matches_reference_on_soup(source):
    """Both scanners agree on arbitrary input: same tokens or the same
    rejection."""
    from repro.errors import MiniCSyntaxError

    try:
        expected = _tokenize_reference(source)
    except MiniCSyntaxError:
        with pytest.raises(MiniCSyntaxError):
            tokenize(source)
        return
    assert tokenize(source) == expected


def test_lexer_token_fields():
    tokens = tokenize("int main() { return 42; }\n")
    assert [t.kind for t in tokens[:3]] == ["kw", "id", "op"]
    first = tokens[0]
    assert (first.line, first.col) == (1, 1)
    assert tokens[-1].kind == "eof"


# ---------------------------------------------------------------------------
# Decoded-module cache: hit / miss / corruption.
# ---------------------------------------------------------------------------


def _tiny_module_bytes():
    from repro.compiler import compile_source

    return compile_source("int main() { return 0; }\n").wasm_bytes


def _decode(wasm_bytes):
    from repro.wasm import decode_module_with_stats

    return decode_module_with_stats(wasm_bytes)


def test_module_cache_memory_hit_and_miss():
    cache = ModuleCache()
    wasm = _tiny_module_bytes()
    assert cache.lookup(wasm) is None
    assert cache.misses == 1

    module, stats = _decode(wasm)
    entry = cache.register(wasm, module, stats)
    assert not entry.validated
    assert cache.entry_for(module) is entry

    hit = cache.lookup(wasm)
    assert hit is entry
    assert cache.hits == 1


def test_module_cache_disk_roundtrip(tmp_path):
    wasm = _tiny_module_bytes()
    disk = ArtifactCache(str(tmp_path / "store"))

    writer = ModuleCache()
    writer.attach_disk(disk)
    module, stats = _decode(wasm)
    entry = writer.register(wasm, module, stats)
    writer.mark_validated(entry)

    # A fresh process (modeled by a fresh in-memory cache) finds the
    # validated module on disk.
    reader = ModuleCache()
    reader.attach_disk(disk)
    found = reader.lookup(wasm)
    assert found is not None
    assert found.validated
    assert reader.disk_hits == 1
    assert found.module.num_funcs == module.num_funcs


def test_module_cache_only_validated_modules_persist(tmp_path):
    wasm = _tiny_module_bytes()
    disk = ArtifactCache(str(tmp_path / "store"))
    cache = ModuleCache()
    cache.attach_disk(disk)
    module, stats = _decode(wasm)
    cache.register(wasm, module, stats)  # never validated

    reader = ModuleCache()
    reader.attach_disk(disk)
    assert reader.lookup(wasm) is None


def test_module_cache_corrupt_disk_entry_is_a_miss(tmp_path):
    wasm = _tiny_module_bytes()
    disk = ArtifactCache(str(tmp_path / "store"))
    writer = ModuleCache()
    writer.attach_disk(disk)
    module, stats = _decode(wasm)
    writer.mark_validated(writer.register(wasm, module, stats))

    key = ModuleCache._disk_key(ModuleCache.sha_of(wasm))
    path = disk._path(key)

    # Flipped payload bytes: the store's integrity check rejects them.
    blob = bytearray(open(path, "rb").read())
    blob[-1] ^= 0xFF
    with open(path, "wb") as fh:
        fh.write(bytes(blob))
    reader = ModuleCache()
    reader.attach_disk(disk)
    assert reader.lookup(wasm) is None

    # Valid store framing around an unpicklable payload: the module
    # cache itself must also degrade to a miss, not raise.
    disk.put_bytes(key, b"not a pickle")
    reader2 = ModuleCache()
    reader2.attach_disk(disk)
    assert reader2.lookup(wasm) is None


def test_module_cache_eviction_keeps_id_index_sound():
    cache = ModuleCache(capacity=2)
    entries = []
    for value in range(3):
        wasm = _tiny_module_bytes() + bytes([0])  # same module...
        # ...but distinct cache identities via the custom section trick
        # would require re-encoding; key on synthetic bytes instead.
        wasm = b"%d-" % value + wasm
        module, stats = _decode(_tiny_module_bytes())
        entries.append(cache.register(wasm, module, stats))
    # Capacity 2: the first entry was evicted, and its id mapping with it.
    assert len(cache._mem) == 2
    assert cache.entry_for(entries[0].module) is None
    assert cache.entry_for(entries[2].module) is entries[2]


def test_pickle_roundtrip_of_decoded_module():
    """The persisted payload survives a pickle cycle with behavior
    intact — guards against unpicklable state sneaking into Module."""
    wasm = _tiny_module_bytes()
    module, stats = _decode(wasm)
    module2, stats2 = pickle.loads(pickle.dumps((module, stats)))
    assert module2.num_funcs == module.num_funcs
    assert stats2.instructions == stats.instructions


# ---------------------------------------------------------------------------
# canonical_lines guard.
# ---------------------------------------------------------------------------


def test_canonical_lines_strips_exactly_wall():
    lines = [
        json.dumps({"kind": "run", "wall": 1.23, "bench": "gemm"}),
        "",  # blank lines are skipped
        json.dumps({"kind": "span", "phase": "execute", "ops": 7}),
    ]
    out = canonical_lines(lines)
    assert len(out) == 2
    assert all("wall" not in json.loads(line) for line in out)
    assert json.loads(out[0])["bench"] == "gemm"
    assert json.loads(out[1])["ops"] == 7

    # Two traces differing only in wall canonicalize identically...
    other = [json.dumps({"kind": "run", "wall": 9.87, "bench": "gemm"}),
             json.dumps({"kind": "span", "phase": "execute", "ops": 7})]
    assert canonical_lines(other) == out

    # ...and any modeled-field difference still shows through.
    diverged = [json.dumps({"kind": "run", "wall": 1.23, "bench": "gemm"}),
                json.dumps({"kind": "span", "phase": "execute", "ops": 8})]
    assert canonical_lines(diverged) != out
