"""Regression replay of the committed fuzz corpus.

Every reproducer under ``corpus/reproducers`` is re-checked against
today's engines on each test run:

- all-real-engine entries must replay *clean* (their divergence was a
  bug that has since been fixed — staying green is the point);
- a reproducer that still diverges fails the suite — a regression;
- entries whose diverging engine is a fault-injection wrapper that is
  not registered in this process map to *xfail*: the entry stays
  visible in the test report without failing the build.
"""

import os

import pytest

from repro.fuzz import Corpus

pytestmark = pytest.mark.fuzz

CORPUS_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "corpus")

_corpus = Corpus(CORPUS_DIR)
_entries = _corpus.entries()


def test_corpus_directory_present():
    """The committed corpus must exist and hold at least one entry."""
    assert _entries, f"no corpus entries found under {CORPUS_DIR}"


@pytest.mark.parametrize(
    "entry", [pytest.param(e, id=e.entry_id) for e in _entries])
def test_replay(entry):
    outcome = _corpus.replay_entry(entry)
    if outcome.status == "missing-engine":
        pytest.xfail(outcome.detail)
    assert outcome.status == "clean", (
        f"corpus entry {entry.entry_id} regressed: {outcome.detail}")
