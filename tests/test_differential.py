"""Differential testing: every engine must compute identical results.

Hypothesis generates random (but well-defined) MiniC programs; each is
compiled at two -O levels and executed natively, on an interpreter, and
on a JIT runtime.  Any divergence in stdout is a soundness bug in some
layer of the stack.  Expression generation avoids undefined behavior by
construction (divisors forced non-zero, shifts masked by the type system,
array indices reduced modulo the array length).
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.compiler import compile_source
from repro.native import nativecc, run_native
from repro.runtimes import make_runtime

_SETTINGS = dict(max_examples=25, deadline=None,
                 suppress_health_check=[HealthCheck.too_slow,
                                        HealthCheck.data_too_large])


# --- expression generators -------------------------------------------------

_INT_BIN = ["+", "-", "*", "&", "|", "^"]
_INT_CMP = ["==", "!=", "<", ">", "<=", ">="]


@st.composite
def int_expr(draw, depth=0):
    """A well-defined int-typed expression over variables a, b, c."""
    if depth > 3 or draw(st.booleans()):
        choice = draw(st.integers(0, 3))
        if choice == 0:
            return str(draw(st.integers(-1000, 1000)))
        return ("a", "b", "c")[choice - 1]
    kind = draw(st.integers(0, 5))
    left = draw(int_expr(depth + 1))
    right = draw(int_expr(depth + 1))
    if kind == 0:
        op = draw(st.sampled_from(_INT_BIN))
        return f"({left} {op} {right})"
    if kind == 1:
        op = draw(st.sampled_from(_INT_CMP))
        return f"({left} {op} {right})"
    if kind == 2:
        # Division guarded against zero and INT_MIN/-1.
        return f"(({left}) / ((({right}) & 255) + 1))"
    if kind == 3:
        shift = draw(st.integers(0, 31))
        return f"(({left}) << {shift})"
    if kind == 4:
        shift = draw(st.integers(0, 31))
        return f"(({left}) >> {shift})"
    return f"(({left}) ? ({right}) : ({left} + 1))"


@st.composite
def double_expr(draw, depth=0):
    if depth > 3 or draw(st.booleans()):
        choice = draw(st.integers(0, 2))
        if choice == 0:
            value = draw(st.floats(min_value=-100, max_value=100,
                                   allow_nan=False, allow_infinity=False))
            return repr(round(value, 6))
        return ("x", "y")[choice - 1]
    kind = draw(st.integers(0, 3))
    left = draw(double_expr(depth + 1))
    right = draw(double_expr(depth + 1))
    if kind == 0:
        op = draw(st.sampled_from(["+", "-", "*"]))
        return f"({left} {op} {right})"
    if kind == 1:
        return f"(({left}) / (fabs({right}) + 1.0))"
    if kind == 2:
        return f"__builtin_sqrt(fabs({left}))"
    return f"(({left}) < ({right}) ? ({left}) : ({right}))"


def _cross_check(source, runtimes=("wamr", "wasmtime")):
    reference = run_native(nativecc(source, 2)).stdout
    assert run_native(nativecc(source, 0)).stdout == reference
    for name in runtimes:
        rt = make_runtime(name)
        for opt in (0, 2):
            wasm = compile_source(source, opt_level=opt).wasm_bytes
            got = rt.run(wasm).stdout
            assert got == reference, (name, opt, got, reference)


class TestDifferentialExpressions:
    @given(expr=int_expr(),
           a=st.integers(-10**6, 10**6),
           b=st.integers(-10**6, 10**6),
           c=st.integers(-100, 100))
    @settings(**_SETTINGS)
    def test_int_expression_agreement(self, expr, a, b, c):
        source = f"""
            int main(void) {{
                int a = {a}; int b = {b}; int c = {c};
                print_i({expr}); print_nl();
                print_u((unsigned int)({expr})); print_nl();
                return 0;
            }}
        """
        _cross_check(source, runtimes=("wamr",))

    @given(expr=double_expr(),
           x=st.floats(min_value=-50, max_value=50, allow_nan=False),
           y=st.floats(min_value=-50, max_value=50, allow_nan=False))
    @settings(**_SETTINGS)
    def test_double_expression_agreement(self, expr, x, y):
        source = f"""
            int main(void) {{
                double x = {x!r}; double y = {y!r};
                double r = {expr};
                print_f(r); print_nl();
                print_l((long)(r * 1000.0)); print_nl();
                return 0;
            }}
        """
        _cross_check(source, runtimes=("wasm3",))

    @given(values=st.lists(st.integers(-1000, 1000), min_size=1,
                           max_size=24),
           seed=st.integers(0, 2**31 - 1))
    @settings(**_SETTINGS)
    def test_array_loop_agreement(self, values, seed):
        n = len(values)
        init = ", ".join(str(v) for v in values)
        source = f"""
            int data[{n}] = {{{init}}};
            int main(void) {{
                unsigned int h = {seed}u;
                int i;
                for (i = 0; i < {n}; i++) {{
                    h = h * 16777619u ^ (unsigned int)data[i];
                    data[i] = (int)(h & 1023u);
                }}
                for (i = 0; i < {n}; i++) {{ print_i(data[i]); putchar(' '); }}
                print_nl();
                return 0;
            }}
        """
        _cross_check(source, runtimes=("wasmtime",))


class TestDifferentialControlFlow:
    @given(limit=st.integers(1, 40), step=st.integers(1, 5),
           threshold=st.integers(0, 50))
    @settings(**_SETTINGS)
    def test_loop_break_patterns(self, limit, step, threshold):
        source = f"""
            int main(void) {{
                int total = 0, i;
                for (i = 0; i < {limit}; i += {step}) {{
                    if (i > {threshold}) break;
                    if (i % 3 == 0) continue;
                    total += i;
                }}
                print_i(total); print_nl();
                return 0;
            }}
        """
        _cross_check(source, runtimes=("wamr",))

    @given(scrutinees=st.lists(st.integers(-3, 12), min_size=1, max_size=8))
    @settings(**_SETTINGS)
    def test_switch_agreement(self, scrutinees):
        checks = "".join(
            f"print_i(classify({v})); putchar(' ');" for v in scrutinees)
        source = f"""
            int classify(int x) {{
                int r = 0;
                switch (x) {{
                case 0: r = 1; break;
                case 1: r = 2;
                case 2: r = r + 10; break;
                case 5: return 99;
                case 9: r = -5; break;
                default: r = 1000;
                }}
                return r;
            }}
            int main(void) {{ {checks} print_nl(); return 0; }}
        """
        _cross_check(source, runtimes=("wamr", "wasmtime"))

    @given(depth=st.integers(1, 60))
    @settings(max_examples=10, deadline=None)
    def test_recursion_agreement(self, depth):
        source = f"""
            long chain(int n, long acc) {{
                if (n <= 0) return acc;
                return chain(n - 1, acc * 3l + (long)n);
            }}
            int main(void) {{
                print_l(chain({depth}, 1l)); print_nl();
                return 0;
            }}
        """
        _cross_check(source, runtimes=("wasm3",))
