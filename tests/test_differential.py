"""Differential testing: every engine must compute identical results.

Programs are drawn from :mod:`repro.fuzz.generator` — the seeded,
well-defined-by-construction MiniC generator shared with ``wabench
fuzz`` — and checked with the subsystem's oracles: cross-engine stdout
/ exit-status / trap agreement, the metamorphic -O instruction-count
bound, and warm-rerun determinism.  Any divergence is a soundness bug
in some layer of the stack.

A failing test id names the exact program seed; reproduce locally with
``REPRO_FUZZ_SEED=<seed> pytest tests/test_differential.py``.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.fuzz import check_program, generate_program

from .conftest import fuzz_seeds

pytestmark = pytest.mark.fuzz

#: Fast cells for the wide sweep: the native baseline, the classic
#: interpreter, and the Cranelift JIT.
FAST_ENGINES = ("native", "wamr", "wasmtime")
#: Everything, for a narrower sweep: adds the threaded interpreter,
#: both remaining JIT tiers, and an AOT configuration.
ALL_ENGINES = ("native", "wamr", "wasm3", "wasmtime", "wavm", "wasmer",
               "wasmtime-aot")


def _assert_clean(seed, size_budget, engines, opt_levels):
    program = generate_program(seed, size_budget)
    report = check_program(program.source, engines=engines,
                           opt_levels=opt_levels, seed=seed)
    assert report.ok, (
        f"seed {seed} diverged "
        f"(REPRO_FUZZ_SEED={seed} reproduces):\n" +
        "\n".join(d.describe() for d in report.divergences) +
        "\n--- program ---\n" + program.source)


class TestGeneratedPrograms:
    @pytest.mark.parametrize("seed", fuzz_seeds(8, salt=1))
    def test_fast_engines_two_opt_levels(self, seed):
        _assert_clean(seed, size_budget=18, engines=FAST_ENGINES,
                      opt_levels=(0, 2))

    @pytest.mark.parametrize("seed", fuzz_seeds(3, salt=2))
    def test_all_engines_agree(self, seed):
        _assert_clean(seed, size_budget=14, engines=ALL_ENGINES,
                      opt_levels=(0, 2))

    @pytest.mark.parametrize("seed", fuzz_seeds(2, salt=3))
    def test_every_opt_level(self, seed):
        _assert_clean(seed, size_budget=14, engines=FAST_ENGINES,
                      opt_levels=(0, 1, 2, 3))

    @pytest.mark.slow
    @pytest.mark.parametrize("seed", fuzz_seeds(25, salt=4))
    def test_broad_sweep(self, seed):
        _assert_clean(seed, size_budget=30, engines=ALL_ENGINES,
                      opt_levels=(0, 1, 2, 3))


class TestHypothesisDriven:
    """Hypothesis explores the (seed, size) space beyond the fixed grid;
    ``print_blob`` reprints a failure's reproduction blob in CI logs."""

    @given(seed=st.integers(0, 2**63 - 1), size=st.integers(6, 36))
    @settings(max_examples=12, deadline=None, print_blob=True,
              suppress_health_check=[HealthCheck.too_slow])
    def test_native_interp_jit_agree(self, seed, size):
        _assert_clean(seed, size_budget=size,
                      engines=("native", "wamr", "wasmtime"),
                      opt_levels=(0, 2))
