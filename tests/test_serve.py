"""The repro.serve layer: modeled serving tier + harness bugfix sweep.

Covers the ``wabench serve`` determinism contract end to end:

* report byte-identity across repeated runs, cold vs warm artifact
  caches, and ``--jobs 1`` vs ``--jobs 4`` — the property CI relies on
  to diff the report against ``SERVE_golden.json``;
* simulator semantics per execution model: spawn pays a cold start per
  request, warm pays one per worker, pool exhaustion queues and idle
  expiry forces pool-miss cold starts;
* queueing invariants (latency = wait + setup + execute, FIFO service
  per slot, conservation of requests);
* the CLI argument-validation sweep (one-line errors, never a
  traceback) and the parallel-fallback warning/flag;
* the narrowed pickle-cache error handling (corruption evicts,
  version-skew misses without evicting).
"""

import pickle

import pytest

from repro.harness.cache import ArtifactCache, CacheStats, cache_key
from repro.harness.cli import main as wabench
from repro.harness.report import percentile_nearest_rank, \
    render_cache_stats
from repro.harness.runner import Harness
from repro.hw import MachineConfig
from repro.obs import Tracer, validate_trace
from repro.serve import (CostProfile, PhaseCost, arrival_times, cell_spans,
                         profiles_from_harness, report_json, run_serve,
                         simulate_cell)

#: A hand-built profile with easily-checked arithmetic: cold start is
#: 10x the warm reset, execution is in between.
PROFILE = CostProfile(
    workload="svc", engine="toy",
    cold=PhaseCost(cycles=1000, instructions=800),
    reset=PhaseCost(cycles=100, instructions=80),
    execute=PhaseCost(cycles=400, instructions=350),
    mrss_bytes=1 << 20)


def serve_grid(tmp_path, tag, extra=()):
    """Run the default serve grid through the CLI; return report bytes."""
    out = tmp_path / f"serve-{tag}.json"
    rc = wabench(["serve", "--seed", "0", "--json", str(out)]
                 + list(extra))
    assert rc == 0
    return out.read_bytes()


class TestDeterminism:
    def test_repeat_and_warm_cache_byte_identical(self, tmp_path):
        first = serve_grid(tmp_path, "cold")     # cold artifact cache
        second = serve_grid(tmp_path, "warm")    # fully warm rerun
        third = serve_grid(tmp_path, "nocache", ["--no-cache"])
        assert first == second == third

    def test_jobs_byte_identical(self, tmp_path, monkeypatch):
        serial = serve_grid(tmp_path, "serial")
        # Fresh cache directory so the parallel run really computes.
        monkeypatch.setenv("WABENCH_CACHE_DIR", str(tmp_path / "jobs4"))
        parallel = serve_grid(tmp_path, "jobs", ["--jobs", "4"])
        assert serial == parallel

    def test_matches_committed_golden(self, tmp_path):
        report = serve_grid(tmp_path, "golden")
        with open("SERVE_golden.json", "rb") as f:
            golden = f.read()
        assert report == golden, \
            "serve report drifted from SERVE_golden.json; if intended, " \
            "regenerate with: wabench serve --seed 0 --no-cache " \
            "--json SERVE_golden.json"

    def test_run_serve_is_pure(self):
        def one():
            harness = Harness(size="test",
                              benchmarks=["hello_svc"])
            return report_json(run_serve(
                harness, workloads=["hello_svc"], engines=["wasm3"],
                modes=["spawn", "warm", "pool"],
                concurrency_levels=[1, 4], seed=7, requests=50))
        assert one() == one()

    def test_arrivals_seeded_and_monotonic(self):
        times = arrival_times(3, 1000, 200)
        assert times == arrival_times(3, 1000, 200)
        assert times != arrival_times(4, 1000, 200)
        assert all(b > a for a, b in zip(times, times[1:]))
        mean = times[-1] / len(times)
        assert 0.7 * 1000 < mean < 1.3 * 1000


class TestSimulator:
    def test_spawn_pays_cold_start_per_request(self):
        sim = simulate_cell(PROFILE, "spawn", 4, seed=1, requests=64)
        assert sim.cold_starts == 64
        assert sim.warm_hits == 0
        assert all(r.finish - r.start == 1400 for r in sim.requests)

    def test_warm_pays_one_cold_start_per_worker(self):
        sim = simulate_cell(PROFILE, "warm", 4, seed=1, requests=64)
        assert sim.cold_starts == sim.instances_used <= 4
        assert sim.warm_hits == 64 - sim.cold_starts
        warm = [r for r in sim.requests if not r.cold]
        assert all(r.finish - r.start == 500 for r in warm)

    def test_pool_exhaustion_queues(self):
        sim = simulate_cell(PROFILE, "pool", 8, seed=1, requests=64,
                            pool_size=1, utilization=1.0)
        assert sim.slots == 1
        assert sim.queued > 0
        assert sim.queue_peak >= 1
        assert sim.max_wait > 0
        assert sim.instances_used == 1

    def test_pool_idle_expiry_forces_cold_start(self):
        eager = simulate_cell(PROFILE, "pool", 2, seed=1, requests=64,
                              idle_timeout_cycles=0)
        lazy = simulate_cell(PROFILE, "pool", 2, seed=1, requests=64,
                             idle_timeout_cycles=None)
        assert lazy.expirations == 0
        assert eager.expirations > 0
        assert eager.cold_starts == lazy.cold_starts + eager.expirations
        # Expired acquisitions pay the full cold start again.
        expired = [r for r in eager.requests if r.expired]
        assert expired and all(r.cold for r in expired)

    def test_queueing_invariants(self):
        sim = simulate_cell(PROFILE, "warm", 2, seed=5, requests=128,
                            utilization=1.0)
        assert len(sim.requests) == 128
        for r in sim.requests:
            setup = 1000 if r.cold else 100
            assert r.start >= r.arrival
            assert r.latency == r.wait + setup + 400
        # FIFO per slot: service intervals on one slot never overlap.
        by_slot = {}
        for r in sim.requests:
            by_slot.setdefault(r.instance, []).append(r)
        for served in by_slot.values():
            for a, b in zip(served, served[1:]):
                assert b.start >= a.finish
        assert sim.cold_starts + sim.warm_hits == 128
        assert 1 <= sim.busy_peak <= sim.slots

    def test_cell_spans_validate_and_cover_requests(self):
        from repro.obs import TracedRun
        from repro.obs.export import trace_lines
        from repro.runtimes import RunResult

        sim = simulate_cell(PROFILE, "pool", 4, seed=2, requests=16)
        spans = cell_spans(PROFILE, sim)
        result = RunResult(runtime="toy", stdout=b"", exit_code=0,
                           trap=None, seconds=0.0, cycles=sim.makespan,
                           mrss_bytes=0, counters={}, trace=spans)
        validate_trace(trace_lines(
            [TracedRun(meta={"bench": "svc"}, result=result)]))
        requests = [s for s in spans if s["span"] == "request"]
        assert len(requests) == 16
        colds = [s for s in spans if s["span"] == "cold_start"]
        resets = [s for s in spans if s["span"] == "reset"]
        assert len(colds) == sim.cold_starts
        assert len(resets) == sim.warm_hits

    def test_bad_knobs_rejected(self):
        from repro.errors import HarnessError
        with pytest.raises(HarnessError):
            simulate_cell(PROFILE, "drain", 1, seed=0, requests=8)
        with pytest.raises(HarnessError):
            simulate_cell(PROFILE, "warm", 0, seed=0, requests=8)
        with pytest.raises(HarnessError):
            simulate_cell(PROFILE, "warm", 1, seed=0, requests=8,
                          utilization=0.0)
        with pytest.raises(HarnessError):
            simulate_cell(PROFILE, "pool", 4, seed=0, requests=8,
                          pool_size=0)


class TestPercentiles:
    def test_nearest_rank_returns_observed_samples(self):
        values = [10, 20, 30, 40, 50, 60, 70, 80, 90, 100]
        assert percentile_nearest_rank(values, 50) == 50
        assert percentile_nearest_rank(values, 90) == 90
        assert percentile_nearest_rank(values, 99) == 100
        assert percentile_nearest_rank(values, 100) == 100
        assert percentile_nearest_rank([7], 50) == 7

    def test_nearest_rank_rejects_bad_input(self):
        with pytest.raises(ValueError):
            percentile_nearest_rank([], 50)
        with pytest.raises(ValueError):
            percentile_nearest_rank([1], 0)
        with pytest.raises(ValueError):
            percentile_nearest_rank([1], 101)


class TestProfiles:
    def test_profile_costs_reconcile_with_span_tree(self):
        harness = Harness(size="test", benchmarks=["hello_svc"])
        profiles = profiles_from_harness(harness, ["hello_svc"],
                                         ["wasmtime", "wasm3"])
        for (_w, engine), prof in profiles.items():
            result = harness.run("hello_svc", engine)
            phases = result.phase_cycles()
            assert prof.execute.cycles == phases["execute"]
            assert prof.cold.cycles == sum(
                phases.get(p, 0) for p in
                ("spawn", "decode", "validate", "load", "instantiate"))
            assert prof.cold_latency_cycles > prof.warm_latency_cycles
            assert prof.mrss_bytes == result.mrss_bytes


class TestCLIValidation:
    BAD = [
        (["serve", "--modes", "drain"], "unknown serve mode"),
        (["serve", "--engines", "v8"], "unknown engine"),
        (["serve", "--workloads", "nope_svc"], "unknown workload"),
        (["serve", "--concurrency", "two"], "--concurrency"),
        (["serve", "--concurrency", "0"], "must be >= 1"),
        (["serve", "--utilization", "0"], "--utilization"),
        (["serve", "--requests", "0"], "--requests"),
        (["serve", "--pool-size", "0"], "--pool-size"),
        (["serve", "--pool-size", "2", "--modes", "warm"],
         "only applies to the pool mode"),
        (["serve", "--benchmarks", "gemm"], "--workloads"),
        (["serve", "--jobs", "0"], "--jobs"),
        (["serve", "-O", "7"], "-O must be"),
        (["run", "gemm", "--runtime", "v8"], "unknown runtime"),
        (["run", "gemm", "--runtime", "native", "--aot"],
         "does not apply"),
        (["trace", "gemm", "--runtime", "nodejs"], "unknown runtime"),
    ]

    @pytest.mark.parametrize("argv,needle", BAD,
                             ids=[" ".join(b[0]) for b in BAD])
    def test_inconsistent_flags_one_line_error(self, argv, needle,
                                               capsys):
        rc = wabench(argv)
        captured = capsys.readouterr()
        assert rc == 1
        assert needle in captured.err
        assert "Traceback" not in captured.err
        assert len(captured.err.strip().splitlines()) == 1

    def test_serve_runs_services_through_run_subcommand(self, capsys):
        rc = wabench(["run", "hello_svc", "--runtime", "wasm3",
                      "--size", "test"])
        captured = capsys.readouterr()
        assert rc == 0
        assert "wasm3" in captured.out


class TestParallelFallback:
    def _failing_pool(self, monkeypatch):
        import concurrent.futures

        def boom(*args, **kwargs):
            raise OSError("no semaphores in this sandbox")
        monkeypatch.setattr(concurrent.futures,
                            "ProcessPoolExecutor", boom)

    def test_fallback_warns_and_flags(self, monkeypatch, capsys):
        self._failing_pool(monkeypatch)
        harness = Harness(size="test", benchmarks=["hello_svc"])
        cells = [("hello_svc", "wasm3", 2, False),
                 ("hello_svc", "wamr", 2, False)]
        harness.prewarm(cells, jobs=4)
        captured = capsys.readouterr()
        assert harness.cache_stats.parallel_fallback is True
        assert "running serially" in captured.err
        assert len(captured.err.strip().splitlines()) == 1
        assert "[parallel fallback: ran serial]" in \
            render_cache_stats(harness.cache_stats)

    def test_fallback_recorded_in_serve_report(self, monkeypatch,
                                               capsys):
        self._failing_pool(monkeypatch)
        harness = Harness(size="test", benchmarks=["hello_svc"])
        report = run_serve(harness, workloads=["hello_svc"],
                           engines=["wasm3", "wamr"], modes=["warm"],
                           concurrency_levels=[1], seed=0, requests=10,
                           jobs=4)
        assert report["meta"]["parallel_fallback"] is True

    def test_stats_merge_and_roundtrip_preserve_flag(self):
        stats = CacheStats(parallel_fallback=True)
        other = CacheStats()
        other.merge(stats)
        assert other.parallel_fallback is True
        assert CacheStats.from_dict(stats.to_dict()).parallel_fallback \
            is True
        assert CacheStats.from_dict({}).parallel_fallback is False


class TestPickleCacheNarrowing:
    def test_corruption_evicts(self, tmp_path):
        cache = ArtifactCache(str(tmp_path))
        key = cache_key("test", what="corrupt")
        cache.put_bytes(key, b"not a pickle at all")
        assert cache.get_pickle(key) is None
        assert not cache.contains(key)      # rebuilt next time

    def test_version_skew_misses_without_evicting(self, tmp_path):
        cache = ArtifactCache(str(tmp_path))
        key = cache_key("test", what="skew")
        # A structurally-valid pickle referencing a module this process
        # cannot import: ImportError, not corruption.
        cache.put_bytes(key, b"cwabench_no_such_module\nThing\n.")
        assert cache.get_pickle(key) is None
        assert cache.contains(key)          # left for other versions

    def test_truncated_pickle_evicts(self, tmp_path):
        cache = ArtifactCache(str(tmp_path))
        key = cache_key("test", what="short")
        cache.put_bytes(key, pickle.dumps({"a": 1})[:-2])
        assert cache.get_pickle(key) is None
        assert not cache.contains(key)


class TestReportShape:
    def test_cells_cover_grid_with_required_metrics(self):
        harness = Harness(size="test",
                          benchmarks=["hello_svc", "state_svc"])
        report = run_serve(harness,
                           workloads=["hello_svc", "state_svc"],
                           engines=["wasmtime", "wasm3"],
                           modes=["spawn", "warm", "pool"],
                           concurrency_levels=[1, 4],
                           seed=0, requests=40)
        assert report["schema"] == "wabench-serve/2"
        assert len(report["cells"]) == 2 * 2 * 3 * 2
        for cell in report["cells"]:
            for field in ("cold_start_us", "p50_us", "p90_us", "p99_us",
                          "rps", "scaling_efficiency", "cold_starts",
                          "queued", "rss_per_instance_bytes",
                          "modeled_peak_rss_bytes"):
                assert field in cell
            assert cell["p50_us"] <= cell["p90_us"] <= cell["p99_us"]
        base = [c for c in report["cells"] if c["concurrency"] == 1]
        assert all(c["scaling_efficiency"] == 1.0 for c in base)

    def test_serve_trace_exports_request_spans(self, tmp_path):
        tracer = Tracer()
        harness = Harness(size="test", benchmarks=["hello_svc"],
                          tracer=tracer)
        run_serve(harness, workloads=["hello_svc"], engines=["wasm3"],
                  modes=["warm"], concurrency_levels=[2],
                  seed=0, requests=12)
        serve_runs = [t for t in tracer.runs
                      if "serve_mode" in t.meta]
        assert len(serve_runs) == 1
        spans = serve_runs[0].result.trace
        assert sum(1 for s in spans if s["span"] == "request") == 12

    def test_warm_beats_spawn_on_startup_bound_service(self):
        harness = Harness(size="test", benchmarks=["hello_svc"])
        machine = MachineConfig()
        report = run_serve(harness, workloads=["hello_svc"],
                           engines=["wasmtime"],
                           modes=["spawn", "warm"],
                           concurrency_levels=[4], seed=0,
                           requests=100, machine=machine)
        by_mode = {c["mode"]: c for c in report["cells"]}
        # hello_svc on a JIT engine is startup-dominated: warm reuse
        # must beat spawn-per-request on median latency (the paper's
        # cold-start argument, end to end).
        assert by_mode["warm"]["p50_us"] < by_mode["spawn"]["p50_us"]
        assert by_mode["warm"]["cold_starts"] < \
            by_mode["spawn"]["cold_starts"]
