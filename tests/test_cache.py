"""Tests for the on-disk artifact cache and the parallel scheduler:
cold/warm equivalence, key sensitivity, corruption recovery, and
serial-vs-parallel byte-identity of CLI artifacts."""

import glob
import os

import pytest

from repro.compiler import compile_source, config_fingerprint
from repro.harness import Harness
from repro.harness.cache import ArtifactCache, cache_key
from repro.harness.cli import main as cli_main
from repro.harness.parallel import plan_cells, run_cells
from repro.runtimes import RunResult, make_runtime


BENCH = "quicksort"


def _result_fields(result):
    return (result.runtime, result.stdout, result.exit_code, result.trap,
            result.seconds, result.cycles, result.mrss_bytes,
            result.counters, result.compile_seconds, result.execute_seconds,
            result.memory_breakdown, result.code_bytes)


class TestArtifactCacheStore:
    def test_roundtrip_bytes(self, tmp_path):
        cache = ArtifactCache(str(tmp_path))
        key = cache_key("wasm", x=1)
        assert cache.get_bytes(key) is None
        cache.put_bytes(key, b"\x00asm payload")
        assert cache.get_bytes(key) == b"\x00asm payload"
        assert cache.contains(key)
        assert cache.object_count() == 1

    def test_truncated_object_is_a_miss_and_evicted(self, tmp_path):
        cache = ArtifactCache(str(tmp_path))
        key = cache_key("wasm", x=2)
        cache.put_bytes(key, b"x" * 100)
        path = cache._path(key)
        with open(path, "rb") as fh:
            blob = fh.read()
        with open(path, "wb") as fh:
            fh.write(blob[:len(blob) // 2])
        assert cache.get_bytes(key) is None
        assert not os.path.exists(path)

    def test_bitflip_detected(self, tmp_path):
        cache = ArtifactCache(str(tmp_path))
        key = cache_key("wasm", x=3)
        cache.put_bytes(key, b"payload-bytes")
        path = cache._path(key)
        blob = bytearray(open(path, "rb").read())
        blob[-1] ^= 0xFF
        open(path, "wb").write(bytes(blob))
        assert cache.get_bytes(key) is None

    def test_pickle_corruption_is_a_miss(self, tmp_path):
        cache = ArtifactCache(str(tmp_path))
        key = cache_key("native", x=4)
        # Checksum-valid payload that is not a pickle at all.
        cache.put_bytes(key, b"not a pickle")
        assert cache.get_pickle(key) is None

    def test_key_is_order_insensitive_and_kind_sensitive(self):
        assert cache_key("wasm", a=1, b=2) == cache_key("wasm", b=2, a=1)
        assert cache_key("wasm", a=1) != cache_key("native", a=1)


class TestRunResultJson:
    def test_roundtrip_preserves_every_field(self):
        artifact = compile_source("int main() { return 0; }", 2)
        result = make_runtime("wamr").run(artifact.wasm_bytes)
        back = RunResult.from_json(result.to_json())
        assert _result_fields(back) == _result_fields(result)
        # Numeric types survive: int counters stay int, floats stay float.
        for key, value in result.counters.items():
            assert type(back.counters[key]) is type(value), key


class TestHarnessDiskCache:
    def test_cold_then_warm_results_identical(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        cold = Harness(size="test", benchmarks=[BENCH], cache_dir=cache_dir)
        r_cold = cold.run(BENCH, "wamr")
        assert cold.cache_stats.total_hits == 0
        assert cold.cache_stats.misses["result"] == 1

        warm = Harness(size="test", benchmarks=[BENCH], cache_dir=cache_dir)
        r_warm = warm.run(BENCH, "wamr")
        assert _result_fields(r_warm) == _result_fields(r_cold)
        assert warm.cache_stats.total_misses == 0
        assert warm.cache_stats.hits["result"] == 1

    def test_warm_run_performs_zero_compiles(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        cold = Harness(size="test", benchmarks=[BENCH], cache_dir=cache_dir)
        cold.run(BENCH, "native")
        cold.run(BENCH, "wasmtime", aot=True)

        warm = Harness(size="test", benchmarks=[BENCH], cache_dir=cache_dir)
        warm.run(BENCH, "native")
        warm.run(BENCH, "wasmtime", aot=True)
        # Artifact hits only — native binary, wasm, aot image never rebuilt.
        assert warm.cache_stats.total_misses == 0
        assert warm.cache_stats.hits == {"result": 2}

    def test_wasm_and_native_artifacts_cached(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        h1 = Harness(size="test", benchmarks=[BENCH], cache_dir=cache_dir)
        wasm = h1.wasm_for(BENCH)
        h1.native_binary(BENCH)
        h2 = Harness(size="test", benchmarks=[BENCH], cache_dir=cache_dir)
        assert h2.wasm_for(BENCH) == wasm
        assert h2.native_binary(BENCH).code_bytes == \
            h1.native_binary(BENCH).code_bytes
        assert h2.cache_stats.hits == {"wasm": 1, "native": 1}

    def test_key_sensitivity_opt_size_defines(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        h = Harness(size="test", benchmarks=[BENCH], cache_dir=cache_dir)
        h.wasm_for(BENCH, opt=2)
        # Different -O level: distinct key, so a recompile (miss).
        h2 = Harness(size="test", benchmarks=[BENCH], cache_dir=cache_dir)
        h2.wasm_for(BENCH, opt=0)
        assert h2.cache_stats.misses.get("wasm") == 1
        # Different size: distinct key too.
        h3 = Harness(size="small", benchmarks=[BENCH], cache_dir=cache_dir)
        h3.wasm_for(BENCH, opt=2)
        assert h3.cache_stats.misses.get("wasm") == 1
        # Same config again: hit.
        h4 = Harness(size="test", benchmarks=[BENCH], cache_dir=cache_dir)
        h4.wasm_for(BENCH, opt=2)
        assert h4.cache_stats.hits.get("wasm") == 1

    def test_config_fingerprint_tracks_defines_and_opt(self):
        base = config_fingerprint(2, defines={"N": "10"})
        assert base == config_fingerprint(2, defines={"N": "10"})
        assert base != config_fingerprint(3, defines={"N": "10"})
        assert base != config_fingerprint(2, defines={"N": "11"})
        assert base != config_fingerprint(2, defines={"N": "10"},
                                          include_libc=False)

    def test_corrupt_result_falls_back_to_recompute(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        cold = Harness(size="test", benchmarks=[BENCH], cache_dir=cache_dir)
        expect = cold.run(BENCH, "wamr")
        # Truncate every cached object.
        for path in glob.glob(os.path.join(cache_dir, "objects", "*", "*")):
            with open(path, "rb") as fh:
                blob = fh.read()
            with open(path, "wb") as fh:
                fh.write(blob[:max(1, len(blob) // 3)])
        warm = Harness(size="test", benchmarks=[BENCH], cache_dir=cache_dir)
        again = warm.run(BENCH, "wamr")
        assert _result_fields(again) == _result_fields(expect)
        assert warm.cache_stats.misses["result"] == 1

    def test_in_memory_caches_key_on_size(self):
        # Regression: size was missing from the artifact cache keys, so
        # two sizes sharing one Harness silently reused the wrong binary.
        h = Harness(size="test", benchmarks=[BENCH])
        small_wasm = h.wasm_for(BENCH)
        h.size = "small"
        assert h.wasm_for(BENCH) != small_wasm
        assert set(k[2] for k in h._wasm_cache) == {"test", "small"}


class TestParallel:
    def test_plan_cells_covers_default_grid(self):
        h = Harness(size="test", benchmarks=["gemm", BENCH])
        cells = plan_cells(h, ["fig6"])
        assert len(cells) == 2 * 6  # 2 benchmarks x (native + 5 runtimes)
        aot_cells = plan_cells(h, ["fig3"])
        assert (BENCH, "wasmtime", 2, True) in aot_cells
        assert plan_cells(h, ["metrics"]) == []

    def test_parallel_matches_serial(self, tmp_path):
        serial = Harness(size="test", benchmarks=[BENCH])
        parallel = Harness(size="test", benchmarks=[BENCH],
                           cache_dir=str(tmp_path / "cache"))
        cells = [(BENCH, engine, 2, False)
                 for engine in ("native", "wamr", "wasm3")]
        run_cells(serial, cells, jobs=1)
        run_cells(parallel, cells, jobs=2)
        for cell in cells:
            key = cell + ("test",)
            assert _result_fields(parallel._result_cache[key]) == \
                _result_fields(serial._result_cache[key])

    def test_parallel_error_propagates(self, tmp_path):
        from repro.errors import HarnessError
        h = Harness(size="test", benchmarks=[BENCH])
        with pytest.raises(HarnessError):
            run_cells(h, [(BENCH, "native", 2, True),
                          (BENCH, "wamr", 2, False)], jobs=2)


class TestCliParallelByteIdentity:
    def test_jobs_artifacts_byte_identical_to_serial(self, tmp_path,
                                                     capsys):
        out1 = str(tmp_path / "par")
        out2 = str(tmp_path / "ser")
        base = ["fig6", "--size", "test", "--benchmarks",
                f"{BENCH},gemm"]
        assert cli_main(base + ["--jobs", "2", "--out", out1,
                                "--cache-dir",
                                str(tmp_path / "c1")]) == 0
        assert cli_main(base + ["--jobs", "1", "--out", out2,
                                "--cache-dir",
                                str(tmp_path / "c2")]) == 0
        par = open(os.path.join(out1, "fig6.txt"), "rb").read()
        ser = open(os.path.join(out2, "fig6.txt"), "rb").read()
        assert par == ser

    def test_warm_cli_rerun_is_all_hits(self, tmp_path, capsys):
        argv = ["fig6", "--size", "test", "--benchmarks", BENCH,
                "--cache-dir", str(tmp_path / "cache")]
        assert cli_main(argv) == 0
        capsys.readouterr()
        assert cli_main(argv) == 0
        out = capsys.readouterr().out
        assert "100.0%, warm" in out

    def test_no_cache_disables_store(self, tmp_path, capsys):
        argv = ["fig6", "--size", "test", "--benchmarks", BENCH,
                "--no-cache", "--cache-dir", str(tmp_path / "cache")]
        assert cli_main(argv) == 0
        assert not os.path.exists(str(tmp_path / "cache"))
