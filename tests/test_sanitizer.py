"""Tests for the MiniC sanitizer (``wasicc --analyze``).

Two halves: each class of seeded undefined behaviour must be caught at
the right source line, and a battery of tricky-but-correct programs must
produce zero findings (the tool lints all 50 WABench sources, so false
positives are a hard no).
"""

import pytest

from repro.analysis import analyze_source
from repro.compiler.driver import main as wasicc_main

# ---------------------------------------------------------------------------
# Seeded-UB fixtures: (name, source, expected kind, expected line)
# ---------------------------------------------------------------------------

SEEDED = [
    ("div_by_zero_literal", """\
int main(void) {
    int x = 10;
    return x / 0;
}
""", "div-by-zero", 3),
    ("div_by_zero_propagated", """\
int main(void) {
    int x = 10;
    int d = 4;
    d = d - 4;
    return x / d;
}
""", "div-by-zero", 5),
    ("mod_by_zero", """\
int main(void) {
    int x = 7;
    return x % 0;
}
""", "div-by-zero", 3),
    ("compound_div_assign", """\
int main(void) {
    int x = 9;
    x /= 0;
    return x;
}
""", "div-by-zero", 3),
    ("uninitialized_use", """\
int main(void) {
    int x;
    int y = x + 1;
    return y;
}
""", "uninitialized", 3),
    ("uninitialized_compound", """\
int main(void) {
    int x;
    x += 2;
    return x;
}
""", "uninitialized", 3),
    ("oob_constant_index", """\
int a[4];
int main(void) {
    return a[5];
}
""", "oob-index", 3),
    ("oob_negative_index", """\
int main(void) {
    int a[8];
    int i = 0;
    i = i - 1;
    return a[i];
}
""", "oob-index", 5),
    ("oob_store", """\
int buf[2];
int main(void) {
    buf[2] = 1;
    return 0;
}
""", "oob-index", 3),
    ("unreachable_after_return", """\
int main(void) {
    return 0;
    return 1;
}
""", "unreachable", 3),
    ("unreachable_branch", """\
int main(void) {
    int x = 1;
    if (0) {
        x = 2;
    }
    return x;
}
""", "unreachable", 4),
]


@pytest.mark.parametrize("name,source,kind,line",
                         SEEDED, ids=[s[0] for s in SEEDED])
def test_seeded_ub_is_caught(name, source, kind, line):
    findings = analyze_source(source)
    assert findings, f"{name}: expected a finding, got none"
    assert any(f.kind == kind and f.line == line for f in findings), (
        f"{name}: wanted [{kind}] at line {line}, got "
        f"{[(f.kind, f.line) for f in findings]}")


def test_finding_lines_are_rebased_to_user_source():
    # With the libc prepended, the reported line must still index into
    # the *user's* text, not the concatenated unit.
    findings = analyze_source("int main(void) { int q; return q; }\n")
    assert [f.line for f in findings] == [1]


def test_format_mentions_kind_and_function():
    findings = analyze_source("int main(void) { int q; return q; }\n")
    text = findings[0].format("prog.c")
    assert text.startswith("prog.c:1:")
    assert "[uninitialized]" in text and "main" in text


# ---------------------------------------------------------------------------
# Zero-false-positive battery
# ---------------------------------------------------------------------------

CLEAN = [
    ("guarded_division", """\
int main(void) {
    int x = 100, d = 0;
    if (d != 0) return x / d;
    return 0;
}
"""),
    ("short_circuit_guard", """\
int main(void) {
    int d = 0;
    if (d && (10 / d)) return 1;
    return d == 0 || 10 / d;
}
"""),
    ("ternary_guard", """\
int main(void) {
    int d = 0;
    return d ? 10 / d : 0;
}
"""),
    ("assigned_on_both_arms", """\
int main(void) {
    int x;
    if (1 == 1) x = 1; else x = 2;
    return x;
}
"""),
    ("assigned_in_one_arm_then_used", """\
int getc2(void) { return 42; }
int main(void) {
    int x;
    if (getc2()) x = 1;
    return x;
}
"""),
    ("loop_counter_index", """\
int a[16];
int main(void) {
    int i, acc = 0;
    for (i = 0; i < 16; i++) acc += a[i];
    return acc;
}
"""),
    ("one_past_end_address", """\
int main(void) {
    int a[4];
    int *p = &a[4];
    int *q = a;
    return p - q;
}
"""),
    ("divisor_reassigned_in_loop", """\
int main(void) {
    int i, d = 0, acc = 0;
    for (i = 1; i < 5; i++) {
        d = i;
        acc += 100 / d;
    }
    return acc;
}
"""),
    ("do_while_assigns_before_use", """\
int main(void) {
    int x;
    int n = 3;
    do { x = n; n--; } while (n > 0);
    return x;
}
"""),
    ("switch_with_default", """\
int main(void) {
    int x;
    int s = 2;
    switch (s) {
    case 1: x = 10; break;
    case 2: x = 20; break;
    default: x = 0; break;
    }
    return x;
}
"""),
    ("index_clamped_by_mask", """\
int tab[8];
int main(void) {
    int i, acc = 0;
    for (i = 0; i < 100; i++) acc += tab[i & 7];
    return acc;
}
"""),
    ("global_array_via_pointer", """\
int data[32];
int sum(int *p, int n) {
    int i, acc = 0;
    for (i = 0; i < n; i++) acc += p[i];
    return acc;
}
int main(void) {
    return sum(data, 32);
}
"""),
]


@pytest.mark.parametrize("name,source", CLEAN, ids=[c[0] for c in CLEAN])
def test_clean_program_has_no_findings(name, source):
    findings = analyze_source(source)
    assert findings == [], (
        f"{name}: false positives: "
        f"{[(f.kind, f.line, f.message) for f in findings]}")


def test_libc_itself_is_not_linted():
    # analyze_source rebases past the libc: a trivially clean program
    # must not surface libc-internal findings.
    assert analyze_source("int main(void) { return 0; }\n") == []


# ---------------------------------------------------------------------------
# The wasicc CLI surface
# ---------------------------------------------------------------------------


class TestWasiccCli:
    def _write(self, tmp_path, text):
        path = tmp_path / "prog.c"
        path.write_text(text)
        return str(path)

    def test_analyze_clean_exits_zero(self, tmp_path, capsys):
        src = self._write(tmp_path, "int main(void) { return 0; }\n")
        assert wasicc_main([src, "--analyze"]) == 0
        assert capsys.readouterr().out == ""

    def test_analyze_findings_exit_one(self, tmp_path, capsys):
        src = self._write(
            tmp_path, "int main(void) { int q; return q; }\n")
        assert wasicc_main([src, "--analyze"]) == 1
        out = capsys.readouterr().out
        assert "[uninitialized]" in out and "prog.c:1" in out

    def test_analyze_parse_error_exits_two(self, tmp_path, capsys):
        src = self._write(tmp_path, "int main(void) { return }\n")
        assert wasicc_main([src, "--analyze"]) == 2

    def test_compile_writes_wasm(self, tmp_path, capsys):
        src = self._write(tmp_path, "int main(void) { return 0; }\n")
        out = str(tmp_path / "prog.wasm")
        assert wasicc_main([src, "-o", out]) == 0
        data = open(out, "rb").read()
        assert data[:4] == b"\x00asm"

    def test_metrics_report(self, tmp_path, capsys):
        src = self._write(tmp_path, """\
int a[32];
int main(void) {
    int i;
    for (i = 0; i < 32; i++) a[i] = i;
    return a[3];
}
""")
        assert wasicc_main([src, "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "instructions" in out and "checks eliminated" in out

    def test_missing_file_exits_two(self, capsys):
        assert wasicc_main(["/nonexistent/x.c", "--analyze"]) == 2
