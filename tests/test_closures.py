"""Differential harness for the closure-compiled tier (REPRO_SPEED=2).

The closure tier is a template JIT of the model itself, so its failure
mode is the worst kind: plausible numbers that are subtly wrong.  Every
check here is therefore *differential* — the closure tier must produce
byte-identical ``RunResult.to_json()`` output (counters, traps, stdout,
span trees) to both the fastloop tier and the ``REPRO_SPEED=0``
reference, across engines, ``-O`` levels, fuzz-generated programs, and
the trap seed set.  Plus the sharing/robustness contract of the
persisted closure bundles: pool workers hit shared artifacts, corrupt
or stale artifacts recompute without crashing, and the tier knob itself
parses strictly.

Run the sweep locally with a different seed base:
``REPRO_FUZZ_SEED=1234 python -m pytest tests/test_closures.py``.
"""

import os
import pickle

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import speed
from repro.bench import io_names
from repro.errors import HarnessError, Trap
from repro.fuzz import CellRunner, normalize_trap
from repro.fuzz.generator import generate_module, generate_program
from repro.harness import Harness
from repro.harness.cache import ArtifactCache, CacheStats
from repro.harness.cli import main as wabench_main
from repro.harness.parallel import run_cells
from repro.hw import CPUModel
from repro.isa.memory import LinearMemory
from repro.runtimes.interp.engine import (THREADED_PROFILE, Interpreter,
                                          prepare_function)
from repro.speed import closures
from repro.speed.modcache import ModuleCache, ModuleEntry

from .conftest import fuzz_seeds
from .test_trap_equivalence import TRAP_PROGRAMS


@pytest.fixture(autouse=True)
def _closure_layer_reset():
    """Each test starts at the closure tier with cold, detached caches."""
    def reset():
        speed.set_tier(2)
        speed.module_cache.clear()
        speed.module_cache.attach_disk(None)
        speed.wasm_memo_clear()
    reset()
    yield
    reset()


# ---------------------------------------------------------------------------
# Interpreter-level equivalence: reference vs fastloop vs closures on
# seeded random Wasm modules, down to every modeled counter.
# ---------------------------------------------------------------------------


def _counters_dict(cpu):
    c = cpu.counters
    d = {"instructions": c.instructions, "stall_cycles": c.stall_cycles,
         "branches": c.branches, "branch_misses": c.branch_misses}
    for name in ("l1i", "l1d", "l2", "l3"):
        stats = getattr(c, name)
        d[name] = (stats.refs, stats.misses)
    return d


def _interp_run(module, args, tier, pickle_roundtrip=False):
    prepared = []
    for i, func in enumerate(module.functions):
        prepared.append(("wasm", prepare_function(module, func, i)))
    cpu = CPUModel()
    mem = LinearMemory(1)
    interp = Interpreter(THREADED_PROFILE, cpu, mem, [], [], prepared)
    interp.set_signatures(module)
    line_shift = cpu.caches.line_shift
    if tier >= 1:
        entry = ModuleEntry("test", module, None)
        entry.prepared = prepared
        entry.total_ops = sum(len(f.body) for f in module.functions)
        fast = entry.fast_code(THREADED_PROFILE, line_shift)
        assert fast, "predecode produced no fast code"
        interp.fast_code = fast
    if tier >= 2:
        bundle = closures.compile_bundle(prepared, THREADED_PROFILE,
                                         line_shift)
        if pickle_roundtrip:
            bundle = pickle.loads(pickle.dumps(bundle))
        code = closures.bind_bundle(bundle)
        assert code, "closure compilation produced no functions"
        interp.closure_code = code
    trap = None
    value = None
    try:
        value = interp.call_index(0, args)
    except Trap as exc:
        trap = str(exc)
    return value, trap, bytes(mem.data[:4096]), _counters_dict(cpu)


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=2**32 - 1),
       a=st.integers(min_value=0, max_value=2**32 - 1),
       b=st.integers(min_value=0, max_value=2**32 - 1))
def test_interp_equivalence_hypothesis(seed, a, b):
    module = generate_module(seed)
    ref = _interp_run(module, (a, b), tier=0)
    fast = _interp_run(module, (a, b), tier=1)
    closure = _interp_run(module, (a, b), tier=2)
    assert closure == ref
    assert fast == ref


@pytest.mark.parametrize("seed", fuzz_seeds(8, salt=0xC105))
def test_interp_equivalence_seeded(seed):
    module = generate_module(seed)
    ref = _interp_run(module, (7, 13), tier=0)
    closure = _interp_run(module, (7, 13), tier=2)
    assert closure == ref


@pytest.mark.parametrize("seed", fuzz_seeds(3, salt=0xB1D))
def test_bundle_pickle_roundtrip_equivalent(seed):
    """A bundle bound from its pickled form (the disk path) behaves
    identically to one bound in place."""
    module = generate_module(seed)
    direct = _interp_run(module, (7, 13), tier=2)
    roundtrip = _interp_run(module, (7, 13), tier=2,
                            pickle_roundtrip=True)
    assert roundtrip == direct


# ---------------------------------------------------------------------------
# Pipeline-level differential sweep: fuzz-generated MiniC programs,
# engines x -O levels x tiers, full RunResult byte-identity.
# ---------------------------------------------------------------------------

SWEEP_ENGINES = ("wasm3", "wamr", "wasmtime")
SWEEP_OPTS = (0, 2)


def _tier_result(runner, source, engine, opt, tier):
    speed.set_tier(tier)
    speed.module_cache.clear()
    try:
        return runner.run_cell(source, engine, opt,
                               use_cache=False).to_json()
    finally:
        speed.set_tier(2)


@pytest.mark.parametrize("seed", fuzz_seeds(6, salt=0xD1FF))
def test_differential_sweep_generated_programs(seed):
    source = generate_program(seed, size_budget=16).source
    runner = CellRunner()
    for engine in SWEEP_ENGINES:
        for opt in SWEEP_OPTS:
            ref = _tier_result(runner, source, engine, opt, tier=0)
            fast = _tier_result(runner, source, engine, opt, tier=1)
            closure = _tier_result(runner, source, engine, opt, tier=2)
            assert closure == ref, f"{engine} -O{opt} tier 2 diverged"
            assert fast == ref, f"{engine} -O{opt} tier 1 diverged"


@pytest.mark.parametrize("name", sorted(TRAP_PROGRAMS))
def test_differential_trap_programs(name):
    """The trap seed set: same trap kind AND byte-identical results on
    the interpreters where the closure tier runs."""
    source, expected_kind = TRAP_PROGRAMS[name]
    runner = CellRunner()
    for engine in ("wasm3", "wamr"):
        ref = _tier_result(runner, source, engine, 2, tier=0)
        closure = _tier_result(runner, source, engine, 2, tier=2)
        assert closure == ref, f"{name} on {engine} diverged"
        result = runner.run_cell(source, engine, 2, use_cache=False)
        assert normalize_trap(result.trap) == expected_kind


@pytest.mark.slow
@pytest.mark.parametrize("engine", ("wasm3", "wamr"))
def test_full_suite_equivalence(engine):
    """Every WABench program, byte-identical across all three tiers."""
    def suite(tier):
        speed.set_tier(tier)
        speed.module_cache.clear()
        harness = Harness(size="test")
        return {name: harness.run(name, engine).to_json()
                for name in harness.benchmark_names}

    ref = suite(0)
    fast = suite(1)
    closure = suite(2)
    diverged = [n for n in ref if closure[n] != ref[n]]
    assert not diverged, f"tier 2 diverged on: {diverged}"
    diverged = [n for n in ref if fast[n] != ref[n]]
    assert not diverged, f"tier 1 diverged on: {diverged}"


@pytest.mark.parametrize("engine", SWEEP_ENGINES)
def test_io_suite_equivalence(engine):
    """The I/O-bound WABench class, byte-identical across all three
    tiers.  These programs are WASI-heavy, so any tier that priced or
    ordered host calls differently would diverge here first."""
    def suite(tier):
        speed.set_tier(tier)
        speed.module_cache.clear()
        harness = Harness(size="test", benchmarks=list(io_names()))
        return {name: harness.run(name, engine).to_json()
                for name in io_names()}

    ref = suite(0)
    fast = suite(1)
    closure = suite(2)
    diverged = [n for n in ref if closure[n] != ref[n]]
    assert not diverged, f"tier 2 diverged on: {diverged}"
    diverged = [n for n in ref if fast[n] != ref[n]]
    assert not diverged, f"tier 1 diverged on: {diverged}"


# ---------------------------------------------------------------------------
# Cross-worker sharing: pool workers must hit the shared closure and
# decoded-module artifacts instead of re-deriving them per process.
# ---------------------------------------------------------------------------

SHARING_BENCHES = ("gemm", "crc32", "quicksort")
SHARING_CELLS = [(b, e, 2, False)
                 for b in SHARING_BENCHES for e in ("wasm3", "wamr")]


def _drop_results(harness):
    """Delete only the cached RunResults so cells re-execute (and the
    module/closure artifacts get consulted again)."""
    dropped = 0
    for name, engine, opt, aot in SHARING_CELLS:
        key = harness.artifact_key("result", name, opt,
                                   engine=engine, aot=aot)
        path = harness.disk_cache._path(key)
        if os.path.exists(path):
            os.unlink(path)
            dropped += 1
    assert dropped == len(SHARING_CELLS), \
        "expected every cached result to drop"


def test_cross_worker_artifact_sharing(tmp_path):
    cache_dir = str(tmp_path / "cache")
    serial = Harness(size="test", benchmarks=list(SHARING_BENCHES))
    expected = {cell: serial.run(cell[0], cell[1]).to_json()
                for cell in SHARING_CELLS}

    # Cold parallel run populates the store (module + closure bundles).
    speed.module_cache.clear()
    h1 = Harness(size="test", benchmarks=list(SHARING_BENCHES),
                 cache_dir=cache_dir)
    run_cells(h1, SHARING_CELLS, jobs=4)

    # Second parallel run against the warm store: results are dropped so
    # every cell re-executes, and the in-process caches are cleared so
    # even the serial fallback path must go through the disk store.
    _drop_results(h1)
    speed.module_cache.clear()
    speed.wasm_memo_clear()
    h2 = Harness(size="test", benchmarks=list(SHARING_BENCHES),
                 cache_dir=cache_dir)
    run_cells(h2, SHARING_CELLS, jobs=4)

    hits = h2.cache_stats.hits
    assert hits.get("speed-module", 0) > 0, hits
    assert hits.get("closure", 0) > 0, hits
    # No worker recompiled a closure bundle the store already had.
    assert h2.cache_stats.misses.get("closure", 0) == 0, \
        h2.cache_stats.misses

    for cell in SHARING_CELLS:
        key = (cell[0], cell[1], cell[2], cell[3], "test")
        assert h1._result_cache[key].to_json() == expected[cell]
        assert h2._result_cache[key].to_json() == expected[cell]


# ---------------------------------------------------------------------------
# Closure-bundle robustness: corruption and version skew mirror the
# decoded-module cache contract (recompute, never crash; stale formats
# miss without evicting).
# ---------------------------------------------------------------------------


def _cached_entry(cache, stats=None):
    """A registered, prepared entry backed by ``cache``."""
    module = generate_module(0xCAFE)
    wasm_bytes = b"closure-robustness-fixture"
    mc = ModuleCache()
    mc.attach_disk(cache, stats=stats)
    entry = mc.register(wasm_bytes, module, None)
    entry.prepared = [("wasm", prepare_function(module, func, i))
                      for i, func in enumerate(module.functions)]
    return mc, entry


def test_closure_bundle_persists_and_hits(tmp_path):
    cache = ArtifactCache(str(tmp_path / "cache"))
    stats = CacheStats()
    mc, entry = _cached_entry(cache, stats)
    line_shift = CPUModel().caches.line_shift
    code = mc.closure_code(entry, THREADED_PROFILE, line_shift)
    assert code and stats.misses.get("closure") == 1
    key = ModuleCache._closure_key(entry.sha, THREADED_PROFILE.name,
                                   line_shift)
    assert cache.contains(key)
    # A second cache (fresh process stand-in) binds the stored bundle.
    mc2, entry2 = _cached_entry(cache, stats)
    code2 = mc2.closure_code(entry2, THREADED_PROFILE, line_shift)
    assert stats.hits.get("closure") == 1
    assert sorted(code2) == sorted(code)
    # Memoized: a repeat lookup never touches the disk again.
    mc2.closure_code(entry2, THREADED_PROFILE, line_shift)
    assert stats.hits.get("closure") == 1


def test_closure_bundle_corruption_recomputes(tmp_path):
    cache = ArtifactCache(str(tmp_path / "cache"))
    mc, entry = _cached_entry(cache)
    line_shift = CPUModel().caches.line_shift
    mc.closure_code(entry, THREADED_PROFILE, line_shift)
    key = ModuleCache._closure_key(entry.sha, THREADED_PROFILE.name,
                                   line_shift)

    # Truncated object: the store detects it, evicts, and a fresh cache
    # recomputes without crashing.
    path = cache._path(key)
    blob = open(path, "rb").read()
    with open(path, "wb") as fh:
        fh.write(blob[:len(blob) // 2])
    mc2, entry2 = _cached_entry(cache)
    assert mc2.closure_code(entry2, THREADED_PROFILE, line_shift)
    assert cache.contains(key)  # rewritten on the recompute

    # Valid pickle, garbage source: recompute too.
    cache.put_pickle(key, {0: ("def broken(:", [])})
    mc3, entry3 = _cached_entry(cache)
    assert mc3.closure_code(entry3, THREADED_PROFILE, line_shift)

    # Valid pickle, unknown descriptor kind: recompute too.
    cache.put_pickle(key, {0: ("def _c0(I, args):\n    return None\n",
                               [("G0", ("no-such-kind",))])})
    mc4, entry4 = _cached_entry(cache)
    assert mc4.closure_code(entry4, THREADED_PROFILE, line_shift)


def test_closure_bundle_version_skew_misses_without_evicting(tmp_path):
    """A payload from a different code version (unimportable classes)
    must behave as a miss but stay on disk — the same narrowing as
    cache.get_pickle, so parallel old/new checkouts sharing a store
    don't evict each other's artifacts."""
    cache = ArtifactCache(str(tmp_path / "cache"))
    mc, entry = _cached_entry(cache)
    line_shift = CPUModel().caches.line_shift
    key = ModuleCache._closure_key(entry.sha, THREADED_PROFILE.name,
                                   line_shift)
    skew = b"cno_such_module\nNoSuchClass\n."  # protocol-0 pickle
    cache.put_bytes(key, skew)
    assert cache.get_pickle(key) is None
    assert cache.contains(key), "ImportError must not evict"
    # closure_code overwrites with a fresh bundle and keeps working.
    assert mc.closure_code(entry, THREADED_PROFILE, line_shift)


# ---------------------------------------------------------------------------
# The tier knob: strict parsing, runtime override, CLI validation.
# ---------------------------------------------------------------------------


def test_repro_speed_env_parsed_strictly(monkeypatch):
    for raw, expected in (("0", 0), ("1", 1), ("2", 2)):
        monkeypatch.setenv("REPRO_SPEED", raw)
        speed._tier = None
        assert speed.tier() == expected
    for raw in ("3", "on", "yes", "", " 1", "02"):
        monkeypatch.setenv("REPRO_SPEED", raw)
        speed._tier = None
        with pytest.raises(HarnessError) as excinfo:
            speed.tier()
        assert "REPRO_SPEED" in str(excinfo.value)
    monkeypatch.delenv("REPRO_SPEED", raising=False)
    speed._tier = None
    assert speed.tier() == 2  # default


def test_set_tier_validates():
    with pytest.raises(HarnessError):
        speed.set_tier(3)
    with pytest.raises(HarnessError):
        speed.set_tier("2")
    speed.set_tier(1)
    assert speed.tier() == 1 and speed.enabled()
    speed.set_tier(0)
    assert not speed.enabled()
    speed.set_enabled(True)
    assert speed.tier() == 2


def test_cli_rejects_bad_speed_tier(tmp_path, capsys):
    rc = wabench_main(["run", "gemm", "--size", "test",
                       "--speed-tier", "7", "--no-cache"])
    assert rc == 1
    err = capsys.readouterr().err
    assert "--speed-tier" in err and err.count("\n") == 1


def test_cli_speed_tier_override(tmp_path, capsys, monkeypatch):
    """--speed-tier 0 runs the reference path and produces the same
    output as the default closure tier."""
    monkeypatch.setattr(speed, "_tier", 2)
    out_dir = str(tmp_path / "out")
    rc = wabench_main(["run", "gemm", "--size", "test", "--no-cache",
                       "--speed-tier", "0", "--out", out_dir])
    assert rc == 0
    assert speed.tier() == 0
    assert os.environ.get("REPRO_SPEED") == "0"
    monkeypatch.delenv("REPRO_SPEED", raising=False)
