"""Unit tests for the interpreter engine's prepare pass and execution."""

import pytest

from repro.errors import Trap
from repro.hw import CPUModel
from repro.isa.memory import LinearMemory
from repro.runtimes.interp.engine import (CLASSIC_PROFILE, Interpreter,
                                          prepare_function)
from repro.wasm import (I32, FuncType, ModuleBuilder, decode_module,
                        encode_module)
from repro.wasm import opcodes as op


def _prep_and_run(build, params=(), expect=None, expect_trap=None):
    """Build one exported function, prepare, interpret, check the result."""
    mb = ModuleBuilder()
    mb.set_memory(1)
    fb = mb.function("f", [I32] * len(params), [I32], export=True)
    build(fb)
    module = mb.build()
    prepared = [("wasm", prepare_function(module, module.functions[0], 0))]
    cpu = CPUModel()
    interp = Interpreter(CLASSIC_PROFILE, cpu, LinearMemory(1), [], [],
                         prepared)
    interp.set_signatures(module)
    if expect_trap is not None:
        with pytest.raises(Trap):
            interp.call_index(0, params)
        return None
    result = interp.call_index(0, params)
    if expect is not None:
        assert result == expect
    return cpu


class TestPrepare:
    def test_if_else_side_table(self):
        def build(fb):
            fb.local_get(0)
            fb.if_("x", I32)
            fb.i32_const(10)
            fb.else_()
            fb.i32_const(20)
            fb.end()

        assert _prep_and_run(build, (1,), 10) is not None
        _prep_and_run(build, (0,), 20)

    def test_if_without_else(self):
        def build(fb):
            acc = fb.add_local(I32)
            fb.i32_const(5).local_set(acc)
            fb.local_get(0)
            fb.if_("x")
            fb.i32_const(99).local_set(acc)
            fb.end()
            fb.local_get(acc)

        _prep_and_run(build, (0,), 5)
        _prep_and_run(build, (1,), 99)

    def test_loop_branch(self):
        def build(fb):
            total = fb.add_local(I32)
            fb.block("exit")
            fb.loop("top")
            fb.local_get(0).emit(op.I32_EQZ).br_if("exit")
            fb.local_get(total).local_get(0).emit(op.I32_ADD)
            fb.local_set(total)
            fb.local_get(0).i32_const(1).emit(op.I32_SUB).local_set(0)
            fb.br("top")
            fb.end().end()
            fb.local_get(total)

        _prep_and_run(build, (10,), 55)

    def test_br_with_value_through_blocks(self):
        def build(fb):
            fb.block("outer", I32)
            fb.block("inner")
            fb.i32_const(42)
            fb.br("outer")        # carries the value out two levels
            fb.end()
            fb.i32_const(7)
            fb.br("outer")
            fb.end()

        _prep_and_run(build, (), 42)

    def test_br_table_dispatch(self):
        def build(fb):
            out = fb.add_local(I32)
            fb.block("d")
            fb.block("c")
            fb.block("b")
            fb.block("a")
            fb.local_get(0)
            fb.br_table(["a", "b", "c"], "d")
            fb.end()
            fb.i32_const(100).local_set(out)
            fb.br("d")
            fb.end()
            fb.i32_const(200).local_set(out)
            fb.br("d")
            fb.end()
            fb.i32_const(300).local_set(out)
            fb.br("d")
            fb.end()
            fb.local_get(out)
            # default falls to 'd' with out still 0
        for arg, expected in ((0, 100), (1, 200), (2, 300), (9, 0)):
            _prep_and_run(build, (arg,), expected)

    def test_unreachable_code_skipped(self):
        def build(fb):
            fb.block("b", I32)
            fb.i32_const(1)
            fb.br("b")
            fb.i32_const(2)          # unreachable
            fb.emit(op.DROP)
            fb.i32_const(3)
            fb.end()

        _prep_and_run(build, (), 1)

    def test_return_mid_function(self):
        def build(fb):
            fb.local_get(0)
            fb.if_("x")
            fb.i32_const(11)
            fb.ret()
            fb.end()
            fb.i32_const(22)

        _prep_and_run(build, (1,), 11)
        _prep_and_run(build, (0,), 22)


class TestInterpreterBehavior:
    def test_unreachable_traps(self):
        def build(fb):
            fb.emit(op.UNREACHABLE)

        _prep_and_run(build, (), expect_trap=True)

    def test_division_trap_charges_counters(self):
        def build(fb):
            fb.i32_const(1).i32_const(0).emit(op.I32_DIV_S)

        mb = ModuleBuilder()
        mb.set_memory(1)
        fb = mb.function("f", [], [I32], export=True)
        build(fb)
        module = mb.build()
        prepared = [("wasm", prepare_function(module, module.functions[0],
                                              0))]
        cpu = CPUModel()
        interp = Interpreter(CLASSIC_PROFILE, cpu, LinearMemory(1), [], [],
                             prepared)
        interp.set_signatures(module)
        with pytest.raises(Trap):
            interp.call_index(0, ())
        # Work before the trap was still charged.
        assert cpu.counters.instructions > 0

    def test_memory_grow_and_size(self):
        def build(fb):
            fb.i32_const(3)
            fb.emit(op.MEMORY_GROW)
            fb.emit(op.DROP)
            fb.emit(op.MEMORY_SIZE)

        _prep_and_run(build, (), 4)

    def test_select(self):
        def build(fb):
            fb.i32_const(111).i32_const(222)
            fb.local_get(0)
            fb.emit(op.SELECT)

        _prep_and_run(build, (1,), 111)
        _prep_and_run(build, (0,), 222)

    def test_dispatch_charges_per_instruction(self):
        def build(fb):
            fb.i32_const(0)
            for _ in range(50):
                fb.i32_const(1).emit(op.I32_ADD)

        cpu = _prep_and_run(build, (), 50)
        # 101 guest instructions, each with dispatch + handler cost.
        assert cpu.counters.instructions > 101 * (
            CLASSIC_PROFILE.dispatch_cost + 2)
        assert cpu.counters.branches >= 101  # one indirect per op
