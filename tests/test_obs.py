"""The repro.obs layer: span trees, trace export, registry, determinism.

Covers the instrumented RunPipeline contract end to end:

* per-engine span invariants — phase spans nest inside the root span and
  telescope exactly to its duration, ``compile_seconds`` /
  ``execute_seconds`` reconcile exactly with the span tree, and
  ``memory_breakdown`` sums to (or under, for freeing JITs) MRSS;
* the canonical engine-name registry is the single source of truth for
  the harness, the fuzzer, and the runtime class table;
* JSONL trace export: schema validation, wall-time exclusion, and
  byte-identity across cold, warm-cache, and ``--jobs`` invocations;
* the ``wabench trace`` subcommand and ``--trace`` export plumbing.
"""

import json

import pytest

from repro import registry
from repro.compiler import compile_source
from repro.harness.cli import main as wabench
from repro.native import nativecc, run_native
from repro.obs import (NULL_TRACER, TRACE_SCHEMA, CallStats, MetricRegistry,
                       NullTracer, Stopwatch, Tracer, TraceSchemaError,
                       phase_cycles, root_span, trace_lines, validate_trace,
                       write_trace)
from repro.obs.export import canonical_lines
from repro.runtimes import RUNTIME_CLASSES, make_runtime

SOURCE = """
int main() {
    int i;
    int s;
    s = 0;
    for (i = 0; i < 50; i = i + 1) { s = s + i; }
    print_i(s);
    print_nl();
    return 0;
}
"""

ENGINES = registry.ENGINES          # native + the five runtimes
#: Engines whose pipeline never frees a region, so the breakdown is an
#: exact partition of MRSS (JITs free their compiler-peak scratch, which
#: may or may not have set the high-water mark).
_NO_FREE_ENGINES = ("native", "wasm3", "wamr")


@pytest.fixture(scope="module")
def results():
    wasm = compile_source(SOURCE, 1).wasm_bytes
    out = {"native": run_native(nativecc(SOURCE, 1))}
    for name in registry.ALL_RUNTIME_NAMES:
        out[name] = make_runtime(name).run(wasm)
    return out


# -- per-engine span/result invariants --------------------------------------


@pytest.mark.parametrize("engine", ENGINES)
def test_spans_nest_and_telescope_to_root(results, engine):
    """Phase spans are contiguous children of the root span: their cycle
    intervals nest inside it and their durations sum exactly to it."""
    trace = results[engine].trace
    root = root_span(trace)
    assert root is not None and root["span"] == "run"
    children = [s for s in trace if s.get("parent") == root["id"]]
    assert children, f"{engine} root span has no phase children"
    for span in children:
        assert root["cycles_start"] <= span["cycles_start"] \
            <= span["cycles_end"] <= root["cycles_end"]
    telescoped = sum(s["cycles_end"] - s["cycles_start"] for s in children)
    assert telescoped == root["cycles_end"] - root["cycles_start"]


@pytest.mark.parametrize("engine", ENGINES)
def test_phase_seconds_reconcile_exactly(results, engine):
    """compile_seconds/execute_seconds are *derived from* the span tree,
    so recomputing them from the trace must match to the last bit."""
    from repro.hw import MachineConfig
    result = results[engine]
    cycles = phase_cycles(result.trace)
    to_seconds = MachineConfig().cycles_to_seconds
    assert result.execute_seconds == to_seconds(cycles["execute"])
    expected_compile = to_seconds(cycles["load"]) \
        if engine != "native" else 0.0
    assert result.compile_seconds == expected_compile
    assert result.compile_seconds + result.execute_seconds <= result.seconds
    assert result.phase_cycles() == cycles


@pytest.mark.parametrize("engine", ENGINES)
def test_pipeline_phase_names_come_from_registry(results, engine):
    phases = list(results[engine].phase_cycles())
    assert phases == [p for p in registry.PIPELINE_PHASES if p in phases]
    assert "execute" in phases and "spawn" in phases


@pytest.mark.parametrize("engine", ENGINES)
def test_memory_breakdown_sums_to_mrss(results, engine):
    result = results[engine]
    total = sum(result.memory_breakdown.values())
    assert total <= result.mrss_bytes
    if engine in _NO_FREE_ENGINES:
        assert total == result.mrss_bytes


def test_jit_breakdown_may_undershoot_after_free(results):
    """WAVM's LLVM-tier compiler peak is freed before execution and sets
    the high-water mark, so its breakdown sums strictly under MRSS."""
    result = results["wavm"]
    assert sum(result.memory_breakdown.values()) < result.mrss_bytes


@pytest.mark.parametrize("engine", ENGINES)
def test_wasi_call_stats(results, engine):
    """Every engine reports the eWAPA view: per-function call counts and
    modeled instruction cost, consistent with the program's output."""
    calls = results[engine].wasi_calls
    assert "fd_write" in calls and "proc_exit" in calls
    for stats in calls.values():
        assert stats["calls"] >= 1
        assert stats["instructions"] >= stats["calls"]
        assert stats["bytes"] >= 0
    # Same guest behavior everywhere: call counts and bytes match the
    # native baseline exactly.  Instruction pricing is per-engine
    # (repro.registry.syscall_cost_table), so it is engine-specific.
    native = results["native"].wasi_calls
    assert {fn: (s["calls"], s["bytes"]) for fn, s in calls.items()} == \
        {fn: (s["calls"], s["bytes"]) for fn, s in native.items()}
    if engine != "native":
        table = registry.syscall_cost_table(engine)
        native_table = registry.syscall_cost_table("native")
        for fn, stats in calls.items():
            delta = table[fn][0] - native_table[fn][0]
            assert stats["instructions"] == \
                native[fn]["instructions"] + delta * stats["calls"]


def test_interpreter_and_jit_child_spans(results):
    """Load work is visible as named child spans under ``load``."""
    def span_names(engine):
        return {s["span"] for s in results[engine].trace}

    assert "translate" in span_names("wasm3")       # interp translate loop
    assert {"translate", "ir-sweep"} <= span_names("wavm")   # JIT backend


def test_trace_roundtrips_through_result_json(results):
    from repro.runtimes import RunResult
    result = results["wasmtime"]
    clone = RunResult.from_json(result.to_json())
    assert clone.trace == result.trace
    assert clone.wasi_calls == result.wasi_calls


# -- the canonical registry --------------------------------------------------


def test_registry_is_single_source_of_truth():
    from repro.fuzz import engines as fuzz_engines
    from repro.harness import runner

    assert runner.ALL_RUNTIMES is registry.ALL_RUNTIME_NAMES
    assert runner.JIT_RUNTIMES is registry.JIT_RUNTIME_NAMES
    assert runner.ENGINES is registry.ENGINES
    assert fuzz_engines.DEFAULT_ENGINES is registry.DEFAULT_FUZZ_ENGINES
    assert tuple(RUNTIME_CLASSES) == registry.ALL_RUNTIME_NAMES
    assert registry.ENGINES[0] == registry.NATIVE_ENGINE
    assert set(registry.JIT_RUNTIME_NAMES).isdisjoint(
        registry.INTERP_RUNTIME_NAMES)


def test_registry_helpers():
    assert registry.base_engine("wasmtime-aot") == "wasmtime"
    assert registry.base_engine("wamr") == "wamr"
    assert registry.is_engine_name("native")
    assert registry.is_engine_name("wavm-aot")
    assert registry.is_engine_name("wasmer-llvm")
    assert not registry.is_engine_name("nodejs")


# -- trace export + schema ---------------------------------------------------


def _tracer_with_runs(results):
    tracer = Tracer()
    for engine in ENGINES:
        tracer.record_run({"bench": "inline", "engine": engine, "opt": 1,
                           "aot": False, "size": "test"}, results[engine])
    return tracer


def test_trace_lines_validate(results):
    tracer = _tracer_with_runs(results)
    lines = trace_lines(tracer.runs, config={"size": "test", "opt": 1})
    counts = validate_trace(lines)
    assert counts["header"] == 1
    assert counts["run"] == len(ENGINES)
    assert counts["span"] == sum(len(results[e].trace) for e in ENGINES)
    assert counts["wasi"] > 0
    header = json.loads(lines[0])
    assert header["schema"] == TRACE_SCHEMA
    assert header["config"] == {"size": "test", "opt": 1}


def test_trace_wall_time_is_opt_in(results):
    tracer = Tracer()
    tracer.record_run({"engine": "native"}, results["native"],
                      wall_seconds=1.5)
    assert all("wall" not in json.loads(line)
               for line in trace_lines(tracer.runs))
    with_wall = trace_lines(tracer.runs, include_wall=True)
    assert any(json.loads(line).get("wall") == 1.5 for line in with_wall)
    # canonical_lines strips wall, restoring the deterministic form
    assert canonical_lines(with_wall) == trace_lines(tracer.runs)


def test_validate_trace_rejects_corruption(results):
    tracer = _tracer_with_runs(results)
    lines = trace_lines(tracer.runs)

    with pytest.raises(TraceSchemaError, match="not valid JSON"):
        validate_trace(lines[:1] + ["{broken"])
    with pytest.raises(TraceSchemaError, match="header"):
        validate_trace(lines[1:])                 # header missing
    span_index = next(i for i, line in enumerate(lines)
                      if json.loads(line)["type"] == "span")
    record = json.loads(lines[span_index])
    record["cycles_end"] = record["cycles_start"] - 1
    bad = list(lines)
    bad[span_index] = json.dumps(record)
    with pytest.raises(TraceSchemaError, match="closes before"):
        validate_trace(bad)


def test_record_run_dedups_repeat_requests(results):
    tracer = Tracer()
    meta = {"bench": "x", "engine": "native", "opt": 2}
    tracer.record_run(meta, results["native"])
    tracer.record_run(meta, results["native"])
    assert len(tracer.runs) == 1
    assert tracer.metrics.snapshot()["runs.recorded"] == 1


def test_null_tracer_is_inert(results):
    assert not NULL_TRACER.enabled
    NULL_TRACER.record_run({"engine": "native"}, results["native"])
    assert NULL_TRACER.runs == []
    with NULL_TRACER.span("anything", attr=1) as span:
        span.attrs["ignored"] = True              # written, never kept
    assert NULL_TRACER.session_spans == []
    NULL_TRACER.metrics.inc("x")
    assert NULL_TRACER.metrics.snapshot() == {}
    assert isinstance(NULL_TRACER, NullTracer)


def test_metric_registry_and_callstats():
    metrics = MetricRegistry()
    metrics.inc("a")
    metrics.inc("a", 2)
    metrics.gauge("b", 7)
    assert metrics.snapshot() == {"a": 3, "b": 7}

    stats = CallStats()
    stats.record("fd_write", 100)
    stats.record("fd_write", 50)
    stats.record("proc_exit", 10)
    assert stats.total_calls == 3
    assert stats.total_instructions == 160
    assert list(stats.as_dict()) == ["fd_write", "proc_exit"]  # sorted


def test_stopwatch_is_monotonic():
    watch = Stopwatch()
    assert watch.seconds >= 0.0
    first = watch.seconds
    assert watch.seconds >= first


# -- CLI: byte-identity and the trace subcommand -----------------------------


def _run_traced(tmp_path, tag, extra=()):
    out = tmp_path / f"{tag}.jsonl"
    rc = wabench(["run", "bitcount", "--size", "test", "--runtime", "wasm3",
                  "--cache-dir", str(tmp_path / "cache"),
                  "--trace", str(out), *extra])
    assert rc == 0
    return out.read_bytes()


def test_trace_byte_identity_cold_warm_parallel(tmp_path):
    """The headline determinism contract: cold, warm-cache, and --jobs
    invocations of the same configuration emit identical trace files."""
    cold = _run_traced(tmp_path, "cold")
    warm = _run_traced(tmp_path, "warm")
    jobs = _run_traced(tmp_path, "jobs", extra=("--jobs", "2"))
    assert cold == warm == jobs
    lines = cold.decode().splitlines()
    counts = validate_trace(lines)
    assert counts["run"] == 1
    assert json.loads(lines[0])["repro"]  # version stamped in the header


def test_wabench_trace_subcommand(tmp_path, capsys):
    rc = wabench(["trace", "bitcount", "--size", "test",
                  "--cache-dir", str(tmp_path / "cache"),
                  "--out", str(tmp_path / "out"),
                  "--trace", "bitcount.jsonl"])
    assert rc == 0
    text = capsys.readouterr().out
    assert "modeled time per pipeline phase" in text
    for engine in ENGINES:
        assert engine in text
    assert "execute us" in text
    # --out plumbing: both the table artifact and the relative-path
    # trace land in the --out directory.
    assert (tmp_path / "out" / "trace-bitcount.txt").exists()
    trace_file = tmp_path / "out" / "bitcount.jsonl"
    counts = validate_trace(trace_file.read_text().splitlines())
    assert counts["run"] == len(ENGINES)


def test_run_rejects_benchmarks_flag(capsys):
    assert wabench(["trace", "bitcount", "--benchmarks", "gemm"]) == 2
    assert "--benchmarks" in capsys.readouterr().err


def test_write_trace_counts_lines(results, tmp_path):
    tracer = _tracer_with_runs(results)
    path = tmp_path / "t.jsonl"
    count = write_trace(str(path), tracer.runs)
    assert count == len(path.read_text().splitlines())


def test_wasicc_timings_flag(tmp_path, capsys):
    from repro.compiler.driver import main as wasicc
    src = tmp_path / "p.c"
    src.write_text(SOURCE)
    rc = wasicc([str(src), "-o", str(tmp_path / "p.wasm"), "--timings"])
    assert rc == 0
    out = capsys.readouterr().out
    for phase in ("frontend", "midend", "backend"):
        assert f"wasicc: [{phase}" in out
