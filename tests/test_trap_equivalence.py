"""Trap equivalence: every engine raises the same trap for the same sin.

The Wasm specification fixes the trap conditions; the paper's runtimes
(and our native baseline, which shares the ISA-level operator
semantics) must agree not just on results but on *failures*: integer
divide-by-zero, out-of-bounds loads and stores, indirect-call type
mismatches, and null indirect calls must produce the same trap kind on
the native model, the classic and threaded interpreters, every JIT
tier, and AOT images.  Trap messages carry engine-specific detail (the
faulting function's mangled name), so comparison uses
:func:`repro.fuzz.oracle.normalize_trap`.
"""

import pytest

from repro.fuzz import CellRunner, normalize_trap

#: Native baseline, both interpreter designs, all three JIT tiers
#: (Wasmtime=Cranelift, WAVM=LLVM, Wasmer x singlepass/cranelift/llvm),
#: and the AOT path of each AOT-capable runtime.
TRAP_ENGINES = ("native", "wamr", "wasm3",
                "wasmtime", "wavm", "wasmer",
                "wasmer-singlepass", "wasmer-llvm",
                "wasmtime-aot", "wavm-aot", "wasmer-aot")

TRAP_PROGRAMS = {
    "div-by-zero": ("""
        int main(void) {
            int zero = 0;
            print_i(7 / zero); print_nl();
            return 0;
        }
    """, "integer divide by zero"),
    "mod-by-zero": ("""
        int main(void) {
            int zero = 0;
            print_i(7 % zero); print_nl();
            return 0;
        }
    """, "integer divide by zero"),
    "oob-load": ("""
        int arr[4];
        int main(void) {
            int i = 100000000;
            print_i(arr[i]); print_nl();
            return 0;
        }
    """, "out of bounds memory access"),
    "oob-store": ("""
        int main(void) {
            int *p = (int *)(200 * 1024 * 1024);
            *p = 42;
            return 0;
        }
    """, "out of bounds memory access"),
    "indirect-type-mismatch": ("""
        double fadd(double a, double b) { return a + b; }
        int main(void) {
            int (*fp)(int, int);
            fp = (int (*)(int, int))fadd;
            print_i(fp(1, 2)); print_nl();
            return 0;
        }
    """, "indirect call type mismatch"),
    "null-indirect-call": ("""
        int main(void) {
            int (*fp)(int, int);
            fp = (int (*)(int, int))0;
            print_i(fp(1, 2)); print_nl();
            return 0;
        }
    """, "uninitialized element"),
    "stack-exhaustion": ("""
        int spin(int n) { return spin(n + 1) + n; }
        int main(void) {
            print_i(spin(0)); print_nl();
            return 0;
        }
    """, "call stack exhausted"),
}


@pytest.fixture(scope="module")
def runner():
    return CellRunner()


@pytest.mark.parametrize("engine", TRAP_ENGINES)
@pytest.mark.parametrize("name", sorted(TRAP_PROGRAMS))
def test_trap_kind_matches_everywhere(name, engine, runner):
    source, expected_kind = TRAP_PROGRAMS[name]
    result = runner.run_cell(source, engine, opt=2, use_cache=False)
    assert normalize_trap(result.trap) == expected_kind, (
        f"{name} on {engine}: expected trap {expected_kind!r}, "
        f"got {result.trap!r} (exit={result.exit_code})")


@pytest.mark.parametrize("name", sorted(TRAP_PROGRAMS))
def test_trap_identical_across_opt_levels(name, runner):
    """A trap must not appear or vanish with optimization level."""
    source, expected_kind = TRAP_PROGRAMS[name]
    for opt in (0, 1, 2, 3):
        result = runner.run_cell(source, "wasmtime", opt,
                                 use_cache=False)
        assert normalize_trap(result.trap) == expected_kind, (
            f"{name} at -O{opt}: got {result.trap!r}")


def test_trapping_stdout_agrees():
    """Output buffered before the trap must match across engines too
    (stdout is flushed on exit, so a trap drops buffered output the
    same way everywhere)."""
    source = """
        int main(void) {
            int zero = 0;
            print_s("before");
            print_i(1 / zero); print_nl();
            return 0;
        }
    """
    runner = CellRunner()
    outs = {engine: runner.run_cell(source, engine, 2,
                                    use_cache=False).stdout
            for engine in ("native", "wamr", "wasmtime")}
    assert len(set(outs.values())) == 1, outs
