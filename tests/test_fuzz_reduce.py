"""The delta-debugging reducer and the reproducer corpus.

Satellite requirement from the fuzz PR: a seeded divergence injected
via a fault-injecting engine wrapper must minimize to at most a fixed
statement count, and the whole pipeline — campaign, reduction, corpus
save, corpus replay — must be deterministic.
"""

import pytest

from repro.fuzz import (Corpus, check_program, count_statements,
                        generate_program, make_predicate,
                        reduce_divergence, reduce_source,
                        register_faulty_engine, run_campaign,
                        unregister_engine)

pytestmark = pytest.mark.fuzz

#: Any injected-fault divergence must shrink to at most this many real
#: statements.  The end-to-end pipeline lands at ~4; the bound leaves
#: slack for generator evolution without ever tolerating a non-answer.
MAX_REDUCED_STATEMENTS = 8

FAULTY = "wamr-bitflip"


@pytest.fixture
def faulty_engine():
    name = register_faulty_engine(FAULTY, base="wamr",
                                  mode="flip-stdout")
    yield name
    unregister_engine(name)


def _diverge(seed, faulty_engine, size_budget=16):
    program = generate_program(seed, size_budget)
    report = check_program(program.source,
                           engines=("native", faulty_engine),
                           opt_levels=(2,), seed=seed,
                           check_determinism=False)
    assert report.divergences, "fault injection produced no divergence"
    return report.divergences[0]


class TestReduceSource:
    def test_uninteresting_input_rejected(self):
        with pytest.raises(ValueError):
            reduce_source("int main(void) { return 0; }\n",
                          lambda src: False)

    def test_line_reduction_to_needle(self):
        source = "\n".join(f"line{i}" for i in range(64)) + "\n"
        result = reduce_source(source, lambda src: "line37" in src)
        assert result.source == "line37\n"
        assert result.original_lines == 64
        assert result.reduced_lines == 1

    def test_budget_respected(self):
        source = "\n".join(f"line{i}" for i in range(64)) + "\n"
        result = reduce_source(source, lambda src: "line37" in src,
                               max_tests=10)
        assert result.tests_run <= 10
        assert "line37" in result.source


class TestReduceDivergence:
    def test_minimizes_below_threshold(self, faulty_engine):
        divergence = _diverge(4242, faulty_engine)
        original = count_statements(divergence.source)
        result = reduce_divergence(divergence,
                                   engines=("native", faulty_engine),
                                   opt_levels=(2,))
        assert result is not None
        assert result.statement_count <= MAX_REDUCED_STATEMENTS
        assert result.statement_count < original
        # The minimized program must still exhibit the exact defect.
        predicate = make_predicate(("native", faulty_engine), (2,),
                                   divergence.signature())
        assert predicate(result.source)

    def test_reduction_is_deterministic(self, faulty_engine):
        divergence = _diverge(777, faulty_engine)
        kwargs = dict(engines=("native", faulty_engine),
                      opt_levels=(2,))
        first = reduce_divergence(divergence, **kwargs)
        second = reduce_divergence(divergence, **kwargs)
        assert first.source == second.source
        assert first.tests_run == second.tests_run

    def test_vanished_divergence_returns_none(self, faulty_engine):
        divergence = _diverge(4242, faulty_engine)
        result = reduce_divergence(divergence,
                                   engines=("native", "wamr"),
                                   opt_levels=(2,))
        assert result is None


class TestCorpus:
    def test_campaign_minimize_saves_reproducer(self, tmp_path,
                                                faulty_engine):
        corpus = Corpus(str(tmp_path / "corpus"))
        report = run_campaign(4242, budget=2,
                              engines=("native", faulty_engine),
                              opt_levels=(2,), minimize=True,
                              corpus=corpus)
        assert not report.ok
        assert report.reproducers
        entries = corpus.entries()
        assert len(entries) == len(report.reproducers)
        entry = entries[0]
        assert entry.signature[1] == faulty_engine
        assert count_statements(entry.source) <= MAX_REDUCED_STATEMENTS

    def test_save_is_idempotent(self, tmp_path):
        corpus = Corpus(str(tmp_path / "corpus"))
        source = "int main(void) { return 0; }\n"
        meta = {"signature": {"kind": "behavior", "engine": "x",
                              "opt": 2}}
        assert corpus.save_reproducer(source, meta) == \
            corpus.save_reproducer(source, meta)
        assert len(corpus.entries()) == 1

    def test_replay_statuses(self, tmp_path):
        corpus = Corpus(str(tmp_path / "corpus"))
        name = register_faulty_engine("wamr-replay-fault", base="wamr",
                                      mode="exit-code")
        try:
            run_campaign(99, budget=1, engines=("native", name),
                         opt_levels=(2,), minimize=True, corpus=corpus)
            # Engine registered: the saved divergence must replay.
            outcomes = corpus.replay_all()
            assert {o.status for o in outcomes} == {"divergent"}
        finally:
            unregister_engine(name)
        # Engine gone: replay degrades to missing-engine, never errors.
        outcomes = corpus.replay_all()
        assert {o.status for o in outcomes} == {"missing-engine"}
