"""Tests for the MiniC lexer, parser, and semantic analyzer."""

import pytest

from repro.errors import MiniCSyntaxError, MiniCTypeError
from repro.minic import analyze, ast, parse, tokenize
from repro.minic.typesys import (CHAR, DOUBLE, INT, LONG, UINT,
                                 common_arith_type, pointer_to, promote)


class TestLexer:
    def test_keywords_vs_identifiers(self):
        toks = tokenize("int interesting;")
        assert toks[0].kind == "kw" and toks[0].value == "int"
        assert toks[1].kind == "id" and toks[1].value == "interesting"

    def test_numbers(self):
        toks = tokenize("42 0x2A 3.5 1e3 2.5e-2 7u 9L")
        values = [t.value for t in toks if t.kind == "num"]
        assert values == [42, 42, 3.5, 1000.0, 0.025, 7, 9]

    def test_string_escapes(self):
        toks = tokenize(r'"a\nb\t\\"')
        assert toks[0].value == "a\nb\t\\"

    def test_char_literals(self):
        toks = tokenize(r"'a' '\n' '\0'")
        assert [t.value for t in toks[:3]] == [97, 10, 0]

    def test_comments_stripped(self):
        toks = tokenize("int a; // comment\n/* multi\nline */ int b;")
        names = [t.value for t in toks if t.kind == "id"]
        assert names == ["a", "b"]

    def test_line_numbers_survive_comments(self):
        toks = tokenize("/* one\ntwo */\nint x;")
        assert toks[0].line == 3

    def test_operators_maximal_munch(self):
        toks = tokenize("a <<= b >> c >= d")
        ops = [t.value for t in toks if t.kind == "op"]
        assert ops == ["<<=", ">>", ">="]

    def test_define_substitution(self):
        toks = tokenize("#define N 10\nint a[N];")
        nums = [t.value for t in toks if t.kind == "num"]
        assert nums == [10]

    def test_define_expression_parenthesized(self):
        toks = tokenize("#define N 2+3\nint x = N*2;")
        # N expands parenthesized: (2+3)*2
        text = " ".join(str(t.value) for t in toks if t.kind != "eof")
        assert "( 2 + 3 ) * 2" in text

    def test_define_not_substituted_in_strings(self):
        toks = tokenize('#define FOO 1\nchar *s = "FOO";')
        strings = [t.value for t in toks if t.kind == "str"]
        assert strings == ["FOO"]

    def test_ifdef_blocks(self):
        source = "#define A 1\n#ifdef A\nint x;\n#else\nint y;\n#endif\n"
        names = [t.value for t in tokenize(source) if t.kind == "id"]
        assert names == ["x"]

    def test_ifndef(self):
        source = "#ifndef MISSING\nint x;\n#endif\n"
        names = [t.value for t in tokenize(source) if t.kind == "id"]
        assert names == ["x"]

    def test_unterminated_if_rejected(self):
        with pytest.raises(MiniCSyntaxError):
            tokenize("#ifdef A\nint x;")

    def test_function_like_macro_rejected(self):
        with pytest.raises(MiniCSyntaxError):
            tokenize("#define SQ(x) ((x)*(x))\n")

    def test_predefines(self):
        toks = tokenize("int a[N];", defines={"N": "7"})
        nums = [t.value for t in toks if t.kind == "num"]
        assert nums == [7]


class TestParser:
    def test_function_definition(self):
        unit = parse("int add(int a, int b) { return a + b; }")
        f = unit.functions[0]
        assert f.name == "add"
        assert f.ret == INT
        assert [p.name for p in f.params] == ["a", "b"]

    def test_globals_with_arrays(self):
        unit = parse("int table[4][8]; double weights[10];")
        assert unit.globals[0].var_type.length == 4
        assert unit.globals[0].var_type.elem.length == 8
        assert unit.globals[1].var_type.elem == DOUBLE

    def test_global_initializer_list(self):
        unit = parse("int primes[] = {2, 3, 5, 7};")
        g = unit.globals[0]
        assert g.var_type.length == 4
        assert len(g.init_list) == 4

    def test_constant_array_size_expression(self):
        unit = parse("#define N 4\nint a[N * 2 + 1];")
        assert unit.globals[0].var_type.length == 9

    def test_pointers_and_declarators(self):
        unit = parse("char **argv; int *p;")
        assert unit.globals[0].var_type == pointer_to(pointer_to(CHAR))

    def test_function_pointer_global(self):
        unit = parse("int (*handler)(int, int);")
        g = unit.globals[0]
        assert g.var_type.is_pointer and g.var_type.pointee.is_func
        assert len(g.var_type.pointee.params) == 2

    def test_for_loop_with_decl(self):
        unit = parse("void f(void) { for (int i = 0; i < 4; i++) {} }")
        body = unit.functions[0].body.statements[0]
        assert isinstance(body, ast.For)
        assert isinstance(body.init, ast.VarDecl)

    def test_do_while(self):
        unit = parse("void f(void) { int i = 0; do { i++; } while (i < 3); }")
        assert isinstance(unit.functions[0].body.statements[1], ast.DoWhile)

    def test_switch(self):
        unit = parse("""
            int f(int x) {
                switch (x) {
                case 0: return 1;
                case 1: case 2: return 2;
                default: return 3;
                }
            }
        """)
        sw = unit.functions[0].body.statements[0]
        assert isinstance(sw, ast.Switch)
        assert [c.value for c in sw.cases] == [0, 1, 2, None]

    def test_ternary_and_precedence(self):
        unit = parse("int f(int a) { return a ? 1 + 2 * 3 : 0; }")
        ret = unit.functions[0].body.statements[0]
        cond = ret.value
        assert isinstance(cond, ast.Cond)
        assert isinstance(cond.then, ast.Binary) and cond.then.op == "+"
        assert cond.then.right.op == "*"

    def test_cast_expression(self):
        unit = parse("double f(int x) { return (double)x / 2; }")
        ret = unit.functions[0].body.statements[0]
        assert isinstance(ret.value.left, ast.Cast)

    def test_sizeof(self):
        unit = parse("int s = sizeof(double);")
        assert unit.globals[0].init.value == 8

    def test_string_concatenation(self):
        unit = parse('char *s = "ab" "cd";')
        # handled in sema/codegen; here just parsing
        assert unit.globals[0].init.value == b"abcd\x00"

    def test_inferred_string_array(self):
        unit = parse('char msg[] = "hi";')
        assert unit.globals[0].var_type.length == 3  # includes NUL

    def test_compound_assignment(self):
        unit = parse("void f(void) { int x = 1; x += 2; x <<= 1; }")
        stmts = unit.functions[0].body.statements
        assert stmts[1].expr.op == "+=" and stmts[2].expr.op == "<<="

    def test_syntax_error_reports_location(self):
        with pytest.raises(MiniCSyntaxError):
            parse("int f( { }")

    def test_multiple_declarators(self):
        unit = parse("void f(void) { int a = 1, b = 2, c; }")
        block = unit.functions[0].body.statements[0]
        assert isinstance(block, ast.Block) and len(block.statements) == 3


class TestTypeSystem:
    def test_promotion(self):
        assert promote(CHAR) == INT

    def test_common_type_double_wins(self):
        assert common_arith_type(INT, DOUBLE) == DOUBLE

    def test_common_type_unsigned_wins_same_rank(self):
        assert common_arith_type(INT, UINT) == UINT

    def test_common_type_long_wins(self):
        assert common_arith_type(INT, LONG) == LONG

    def test_sizes(self):
        assert INT.size == 4 and LONG.size == 8 and CHAR.size == 1
        assert pointer_to(INT).size == 4


class TestSema:
    def _analyze(self, source):
        unit = parse(source)
        return analyze(unit), unit

    def test_types_filled(self):
        _, unit = self._analyze("int f(int a) { return a + 1; }")
        ret = unit.functions[0].body.statements[0]
        assert ret.value.ctype == INT

    def test_implicit_conversion_inserted(self):
        _, unit = self._analyze("double f(int a) { return a + 1.5; }")
        ret = unit.functions[0].body.statements[0]
        binop = ret.value
        assert binop.ctype == DOUBLE
        assert isinstance(binop.left, ast.Cast)

    def test_undeclared_identifier(self):
        with pytest.raises(MiniCTypeError):
            self._analyze("int f(void) { return nope; }")

    def test_void_return_mismatch(self):
        with pytest.raises(MiniCTypeError):
            self._analyze("void f(void) { return 1; }")

    def test_call_arity_checked(self):
        with pytest.raises(MiniCTypeError):
            self._analyze("int g(int a) { return a; } "
                          "int f(void) { return g(1, 2); }")

    def test_pointer_arithmetic_types(self):
        _, unit = self._analyze(
            "int f(int *p) { return *(p + 3); }")
        ret = unit.functions[0].body.statements[0]
        assert ret.value.ctype == INT

    def test_array_decays_in_call(self):
        self._analyze("int g(int *p) { return p[0]; } "
                      "int a[4]; int f(void) { return g(a); }")

    def test_address_taken_local_marked(self):
        _, unit = self._analyze(
            "void g(int *p) {} "
            "void f(void) { int x = 0; g(&x); }")
        f = unit.function("f")
        decl = f.body.statements[0]
        assert decl.needs_memory and decl.frame_offset >= 0
        assert f.frame_size >= 4

    def test_plain_local_gets_wasm_slot(self):
        _, unit = self._analyze("void f(void) { int x = 1; x = x + 1; }")
        decl = unit.function("f").body.statements[0]
        assert not decl.needs_memory and decl.local_index >= 0

    def test_local_array_in_frame(self):
        _, unit = self._analyze("int f(void) { int a[8]; a[0] = 1; "
                                "return a[0]; }")
        decl = unit.function("f").body.statements[0]
        assert decl.needs_memory
        assert unit.function("f").frame_size >= 32

    def test_function_pointer_flow(self):
        analyzer, unit = self._analyze("""
            int twice(int x) { return 2 * x; }
            int apply(int (*fn)(int), int v) { return fn(v); }
            int main(void) { return apply(twice, 21); }
        """)
        # Passing a function by name decays it to a pointer: it must get
        # a funcref-table slot just like an explicit &twice.
        assert "twice" in analyzer.address_taken_funcs
        # passing a function implicitly takes its address via decay; ensure
        # the call type-checked and main returns int
        ret = unit.function("main").body.statements[0]
        assert ret.value.ctype == INT

    def test_explicit_function_address(self):
        analyzer, _ = self._analyze("""
            int one(void) { return 1; }
            int (*fp)(void);
            void f(void) { fp = &one; }
        """)
        assert "one" in analyzer.address_taken_funcs

    def test_duplicate_global_rejected(self):
        with pytest.raises(MiniCTypeError):
            self._analyze("int x; int x;")

    def test_duplicate_function_rejected(self):
        with pytest.raises(MiniCTypeError):
            self._analyze("int f(void){return 0;} int f(void){return 1;}")

    def test_conflicting_prototype_rejected(self):
        with pytest.raises(MiniCTypeError):
            self._analyze("int f(int); double f(int x) { return x; }")

    def test_wasi_extern_accepted(self):
        analyzer, _ = self._analyze(
            "extern void __wasi_proc_exit(int code);"
            "void f(void) { __wasi_proc_exit(0); }")
        assert analyzer.extern_funcs["__wasi_proc_exit"] == "proc_exit"

    def test_wasi_extern_bad_signature_rejected(self):
        with pytest.raises(MiniCTypeError):
            self._analyze("extern int __wasi_proc_exit(double x);")

    def test_builtin_call(self):
        _, unit = self._analyze(
            "double f(double x) { return __builtin_sqrt(x); }")
        ret = unit.function("f").body.statements[0]
        assert ret.value.ctype == DOUBLE

    def test_switch_duplicate_case_rejected(self):
        with pytest.raises(MiniCTypeError):
            self._analyze("""
                void f(int x) { switch (x) { case 1: break;
                                             case 1: break; } }
            """)

    def test_assign_to_array_rejected(self):
        with pytest.raises(MiniCTypeError):
            self._analyze("int a[3]; int b[3]; void f(void) { a = b; }")

    def test_non_constant_global_init_rejected(self):
        with pytest.raises(MiniCTypeError):
            self._analyze("int f(void) { return 1; } int x = f();")

    def test_string_global(self):
        self._analyze('char *greeting = "hello";')

    def test_condition_requires_scalar(self):
        # arrays decay to pointers, so they are scalar; void is not.
        with pytest.raises(MiniCTypeError):
            self._analyze("void g(void) {} void f(void) { if (g()) {} }")
