"""Unit tests for the JIT pipeline: lowering, passes, regalloc, backends."""

import pytest

from repro.compiler import compile_source
from repro.hw import CPUModel
from repro.isa import Machine, ops
from repro.isa.program import MFunction, MProgram
from repro.runtimes.jit import (BACKENDS, CRANELIFT, LLVM, SINGLEPASS,
                                LoweringOptions, allocate_registers,
                                compile_backend, lower_module,
                                run_optimizing_pipeline)
from repro.runtimes.jit.passes import (common_subexpression, constant_fold,
                                       copy_propagate, dead_code,
                                       eliminate_redundant_checks)
from repro.wasm import decode_module
from repro.wasi import WasiAPI, VirtualFS


def _module(source, opt=2):
    return decode_module(compile_source(source, opt).wasm_bytes)


def _run_program(program, expected_stdout):
    cpu = CPUModel()
    fs = VirtualFS()
    wasi = WasiAPI(fs=fs, cpu=cpu)
    from repro.isa.memory import LinearMemory
    memory = LinearMemory(program.memory_pages, program.memory_max_pages)
    machine = Machine(program, cpu, memory=memory, host=wasi.as_host())
    machine.apply_data_segments()
    from repro.errors import ExitProc
    try:
        machine.run_export("_start")
    except ExitProc:
        pass
    assert fs.stdout_text() == expected_stdout


SOURCE = """
int fib(int n) { return n < 2 ? n : fib(n - 1) + fib(n - 2); }
int main(void) { print_i(fib(12)); print_nl(); return 0; }
"""


class TestLowering:
    @pytest.mark.parametrize("backend", ("singlepass", "cranelift", "llvm"))
    def test_all_backends_execute_correctly(self, backend):
        module = _module(SOURCE)
        program = compile_backend(module, BACKENDS[backend])
        _run_program(program, "144\n")

    def test_singlepass_emits_shadow_traffic(self):
        module = _module(SOURCE)
        sp = lower_module(module, SINGLEPASS.lowering)
        vr = lower_module(module, CRANELIFT.lowering)
        sp_ops = sum(len(f.code) for f in sp.functions)
        vr_ops = sum(len(f.code) for f in vr.functions)
        assert sp_ops > 1.5 * vr_ops

    def test_check_density_controls_checks(self):
        module = _module(SOURCE)
        dense = lower_module(module, LoweringOptions(check_density=1.0))
        sparse = lower_module(module, LoweringOptions(check_density=0.3))
        none = lower_module(module, LoweringOptions(check_density=0.0))

        def checks(prog):
            return sum(1 for f in prog.functions for i in f.code
                       if i[0] == ops.CHECK)

        assert checks(dense) > checks(sparse) > checks(none) == 0

    def test_control_flow_lowering(self):
        source = """
            int classify(int x) {
                int r = 0;
                switch (x) {
                case 0: r = 1; break;
                case 1: r = 2; break;
                case 2: r = 4; break;
                default: r = 8;
                }
                while (r < 100) r *= 3;
                return r;
            }
            int main(void) {
                print_i(classify(0) + classify(1) + classify(2)
                        + classify(7));
                print_nl();
                return 0;
            }
        """
        module = _module(source)
        for backend in ("singlepass", "llvm"):
            program = compile_backend(module, BACKENDS[backend])
            _run_program(program, "729\n")

    def test_exports_and_table_carried_over(self):
        source = """
            int one(void) { return 1; }
            int (*fp)(void);
            int main(void) { fp = one; return fp() - 1; }
        """
        module = _module(source)
        program = compile_backend(module, CRANELIFT)
        assert "_start" in program.exports
        assert len(program.table) >= 2  # null slot + one


class TestPasses:
    def _func(self, code, num_regs=10, params=0):
        return MFunction("t", params, num_regs, list(code),
                         returns_value=True)

    def test_constant_fold(self):
        f = self._func([
            (ops.LI, 0, 6),
            (ops.LI, 1, 7),
            (ops.MUL32, 2, 0, 1),
            (ops.RET, 2),
        ])
        assert constant_fold(f) == 1
        assert f.code[2] == (ops.LI, 2, 42)

    def test_constant_fold_respects_block_boundaries(self):
        f = self._func([
            (ops.LI, 0, 1),
            (ops.BRZ, 0, 3),
            (ops.LI, 0, 2),           # other block redefines r0
            (ops.ADD32, 1, 0, 0),     # block leader: constants were cleared
            (ops.RET, 1),
        ])
        constant_fold(f)
        assert f.code[3][0] == ops.ADD32

    def test_constant_fold_skips_traps(self):
        f = self._func([
            (ops.LI, 0, 1),
            (ops.LI, 1, 0),
            (ops.DIVS32, 2, 0, 1),   # would trap: must not fold
            (ops.RET, 2),
        ])
        constant_fold(f)
        assert f.code[2][0] == ops.DIVS32

    def test_copy_propagation(self):
        f = self._func([
            (ops.LI, 0, 5),
            (ops.MOV, 1, 0),
            (ops.ADD32, 2, 1, 1),
            (ops.RET, 2),
        ])
        assert copy_propagate(f) >= 1
        assert f.code[2] == (ops.ADD32, 2, 0, 0)

    def test_cse(self):
        f = self._func([
            (ops.ADD32, 2, 0, 1),
            (ops.ADD32, 3, 0, 1),    # same computation
            (ops.ADD32, 4, 2, 3),
            (ops.RET, 4),
        ], params=2)
        assert common_subexpression(f) == 1
        assert f.code[1] == (ops.MOV, 3, 2)

    def test_cse_invalidated_by_redefinition(self):
        f = self._func([
            (ops.ADD32, 2, 0, 1),
            (ops.LI, 0, 9),          # operand changes
            (ops.ADD32, 3, 0, 1),    # must NOT be CSE'd
            (ops.RET, 3),
        ], params=2)
        assert common_subexpression(f) == 0

    def test_dead_code_removed_and_targets_remapped(self):
        f = self._func([
            (ops.LI, 0, 1),
            (ops.LI, 5, 99),         # dead
            (ops.BRZ, 0, 4),
            (ops.LI, 1, 2),
            (ops.RET, 0),            # branch target
        ])
        removed = dead_code(f)
        assert removed >= 1
        # The BRZ target must still point at the RET.
        brz = next(i for i in f.code if i[0] == ops.BRZ)
        assert f.code[brz[2]][0] == ops.RET

    def test_dead_code_keeps_trapping_ops(self):
        f = self._func([
            (ops.LI, 0, 1),
            (ops.LI, 1, 0),
            (ops.DIVS32, 5, 0, 1),   # result unused BUT may trap
            (ops.RET, 0),
        ])
        dead_code(f)
        assert any(i[0] == ops.DIVS32 for i in f.code)

    def test_check_elimination(self):
        f = self._func([
            (ops.CHECK,),
            (ops.LOAD32, 1, 0, 0),
            (ops.CHECK,),
            (ops.LOAD32, 2, 0, 4),
            (ops.RET, 2),
        ], params=1)
        assert eliminate_redundant_checks(f) == 1
        assert sum(1 for i in f.code if i[0] == ops.CHECK) == 1

    def test_pipeline_preserves_execution(self):
        module = _module(SOURCE)
        program = lower_module(module, LoweringOptions(check_density=0.0))
        for func in program.functions:
            run_optimizing_pipeline(func, heavy=True)
        program.finalize(0x0400_0000)
        _run_program(program, "144\n")

    def test_heavy_pipeline_shrinks_code(self):
        module = _module(SOURCE, opt=0)   # sloppy input
        raw = lower_module(module, LoweringOptions(check_density=0.0))
        raw_size = sum(len(f.code) for f in raw.functions)
        opt = lower_module(module, LoweringOptions(check_density=0.0))
        for func in opt.functions:
            run_optimizing_pipeline(func, heavy=True)
        opt_size = sum(len(f.code) for f in opt.functions)
        assert opt_size < raw_size


class TestRegalloc:
    def test_no_spills_under_pressure_limit(self):
        f = MFunction("f", 0, 8, [
            (ops.LI, 0, 1), (ops.LI, 1, 2), (ops.ADD32, 2, 0, 1),
            (ops.RET, 2)], returns_value=True)
        assert allocate_registers(f, 16) == 0
        assert not any(i[0] in (ops.SPILL, ops.RELOAD) for i in f.code)

    def test_spills_when_pressure_exceeds(self):
        # 12 simultaneously-live values, 4 registers.
        code = [(ops.LI, i, i) for i in range(12)]
        acc = 12
        code.append((ops.ADD32, acc, 0, 1))
        for i in range(2, 12):
            code.append((ops.ADD32, acc + i - 1, acc + i - 2, i))
        code.append((ops.RET, acc + 10))
        f = MFunction("f", 0, 32, code, returns_value=True)
        spilled = allocate_registers(f, 4)
        assert spilled > 0
        assert any(i[0] == ops.SPILL for i in f.code)
        assert any(i[0] == ops.RELOAD for i in f.code)
        assert f.frame_slots >= spilled

    def test_spilled_code_still_executes(self):
        module = _module(SOURCE)
        program = lower_module(module, LoweringOptions(check_density=0.0))
        for func in program.functions:
            allocate_registers(func, 4)   # brutal pressure
        program.finalize(0x0400_0000)
        _run_program(program, "144\n")

    def test_fewer_registers_cost_more(self):
        module = _module("""
            double work(void) {
                double a = 1.0, b = 2.0, c = 3.0, d = 4.0;
                double e = 5.0, f = 6.0, g = 7.0, h = 8.0;
                int i;
                for (i = 0; i < 200; i++) {
                    a += b * c; b += c * d; c += d * e; d += e * f;
                    e += f * g; f += g * h; g += h * a; h += a * b;
                }
                return a + b + c + d + e + f + g + h;
            }
            int main(void) { print_f(work()); print_nl(); return 0; }
        """)

        def instructions_with(regs):
            program = lower_module(module,
                                   LoweringOptions(check_density=0.0))
            for func in program.functions:
                allocate_registers(func, regs)
            program.finalize(0x0400_0000)
            cpu = CPUModel()
            from repro.isa.memory import LinearMemory
            fs = VirtualFS()
            machine = Machine(program, cpu,
                              memory=LinearMemory(program.memory_pages),
                              host=WasiAPI(fs=fs, cpu=cpu).as_host())
            machine.apply_data_segments()
            from repro.errors import ExitProc
            try:
                machine.run_export("_start")
            except ExitProc:
                pass
            return cpu.counters.instructions

        assert instructions_with(6) > instructions_with(24)


class TestBackendCharging:
    def test_compile_work_charged(self):
        module = _module(SOURCE)
        cpu = CPUModel()
        compile_backend(module, LLVM, cpu)
        assert cpu.counters.instructions > \
            module.body_size() * LLVM.compile_cost_per_op * 0.9
        assert cpu.counters.branches > 0

    def test_compiler_memory_peaks_then_frees(self):
        module = _module(SOURCE)
        cpu = CPUModel()
        compile_backend(module, LLVM, cpu)
        # Peak recorded, scratch freed, code cache retained.
        assert cpu.memory.peak_bytes > cpu.memory.resident_bytes
        assert "jit-code-cache" in cpu.memory.breakdown()

    def test_tiers_rank_by_compile_cost(self):
        module = _module(SOURCE)
        costs = {}
        for name in ("singlepass", "cranelift", "llvm"):
            cpu = CPUModel()
            compile_backend(module, BACKENDS[name], cpu)
            costs[name] = cpu.counters.instructions
        assert costs["singlepass"] < costs["cranelift"] < costs["llvm"]
