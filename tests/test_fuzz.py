"""Unit tests for the repro.fuzz subsystem itself.

Generator determinism and validity, oracle verdicts (clean programs
pass; injected faults of every mode are caught), trap normalization,
the artifact-cache integration, and campaign behavior including the
``--jobs``-style parallel path.
"""

import pytest

from repro.compiler import compile_source
from repro.errors import HarnessError
from repro.fuzz import (CellRunner, check_program, derive_seed,
                        generate_module, generate_program,
                        normalize_trap, register_faulty_engine,
                        run_campaign, unregister_engine)
from repro.harness.cache import ArtifactCache

from .conftest import fuzz_seeds

pytestmark = pytest.mark.fuzz


class TestGenerator:
    def test_deterministic_for_seed(self):
        a = generate_program(1234, 20)
        b = generate_program(1234, 20)
        assert a.source == b.source
        assert a.statement_count == b.statement_count

    def test_different_seeds_differ(self):
        assert generate_program(1, 20).source != \
            generate_program(2, 20).source

    def test_budget_scales_program(self):
        small = generate_program(99, 8)
        large = generate_program(99, 60)
        assert large.statement_count > small.statement_count

    @pytest.mark.parametrize("seed", fuzz_seeds(6, salt=10))
    def test_programs_compile_at_every_opt_level(self, seed):
        program = generate_program(seed, 16)
        for opt in (0, 1, 2, 3):
            compile_source(program.source, opt_level=opt)

    def test_derive_seed_pure_and_spread(self):
        assert derive_seed(42, 0) == derive_seed(42, 0)
        seeds = {derive_seed(42, i) for i in range(100)}
        assert len(seeds) == 100

    def test_module_generator_deterministic(self):
        from repro.wasm import encode_module
        a = encode_module(generate_module(7, 40))
        b = encode_module(generate_module(7, 40))
        assert a == b


class TestTrapNormalization:
    @pytest.mark.parametrize("raw,kind", [
        (None, None),
        ("trap: integer divide by zero", "integer divide by zero"),
        ("trap: out of bounds memory access: f6: store at 512 0",
         "out of bounds memory access"),
        ("trap: out of bounds memory access: main: load at 4 8",
         "out of bounds memory access"),
        ("trap: indirect call type mismatch",
         "indirect call type mismatch"),
    ])
    def test_normalize(self, raw, kind):
        assert normalize_trap(raw) == kind


class TestOracle:
    def test_clean_program_zero_divergences(self):
        program = generate_program(derive_seed(42, 0), 14)
        report = check_program(program.source,
                               engines=("native", "wamr", "wasmtime"),
                               opt_levels=(0, 2))
        assert report.ok
        assert report.cells_run == 6

    def test_unknown_engine_rejected(self):
        with pytest.raises(HarnessError):
            check_program("int main(void) { return 0; }",
                          engines=("no-such-engine",))

    @pytest.mark.parametrize("mode,expect_detail", [
        ("flip-stdout", "stdout"),
        ("truncate-stdout", "stdout"),
        ("exit-code", "exit"),
        ("fake-trap", "trap"),
    ])
    def test_fault_modes_all_caught(self, mode, expect_detail):
        name = register_faulty_engine(f"faulty-{mode}", base="wamr",
                                      mode=mode)
        try:
            program = generate_program(derive_seed(42, 1), 12)
            report = check_program(program.source,
                                   engines=("native", name),
                                   opt_levels=(2,))
            assert not report.ok
            assert all(d.cell[0] == name for d in report.divergences)
            assert expect_detail in report.divergences[0].detail
        finally:
            unregister_engine(name)

    def test_observations_cached_across_engines(self, tmp_path):
        cache = ArtifactCache(str(tmp_path / "store"))
        program = generate_program(derive_seed(42, 2), 10)
        runner = CellRunner(cache=cache)
        check_program(program.source, engines=("native", "wamr"),
                      opt_levels=(0, 2), runner=runner)
        assert runner.stats.misses.get("fuzz-result") == 4
        warm = CellRunner(cache=cache)
        check_program(program.source, engines=("native", "wamr"),
                      opt_levels=(0, 2), runner=warm)
        assert warm.stats.hits.get("fuzz-result") == 4
        assert not warm.stats.misses


class TestCampaign:
    def test_small_campaign_clean_and_deterministic(self):
        first = run_campaign(42, budget=2,
                             engines=("native", "wamr"),
                             opt_levels=(0, 2))
        second = run_campaign(42, budget=2,
                              engines=("native", "wamr"),
                              opt_levels=(0, 2))
        assert first.ok and second.ok
        assert first.render() == second.render()
        assert first.cells_run == 2 * 2 * 2

    def test_parallel_matches_serial(self, tmp_path):
        kwargs = dict(budget=3, engines=("native", "wamr"),
                      opt_levels=(2,),
                      cache_dir=str(tmp_path / "store"))
        parallel = run_campaign(7, jobs=3, **kwargs)
        serial = run_campaign(7, jobs=1, **kwargs)
        assert parallel.render() == serial.render()

    def test_exercises_required_grid(self):
        """Acceptance shape: >= 4 engines x >= 2 opt levels per program."""
        report = run_campaign(
            42, budget=1,
            engines=("native", "wamr", "wasm3", "wasmtime"),
            opt_levels=(0, 2))
        assert report.cells_run >= 4 * 2
