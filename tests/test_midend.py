"""Unit tests for the midend optimizer (pass-level behavior)."""

import pytest

from repro.compiler import compile_source
from repro.compiler import midend
from repro.minic import analyze, parse
from repro.minic import ast as A
from repro.wasm import opcodes as op


def _optimized_unit(source, opt=2):
    unit = parse(source)
    analyze(unit)
    stats = midend.optimize(unit, opt)
    return unit, stats


def _body_of(unit, name):
    return unit.function(name).body


class TestConstantFolding:
    def test_folds_arithmetic(self):
        unit, stats = _optimized_unit(
            "int f(void) { return 6 * 7 + (10 - 2); }")
        ret = _body_of(unit, "f").statements[0]
        assert isinstance(ret.value, A.IntLit)
        assert ret.value.value == 50
        assert stats["const_fold"] >= 2

    def test_fold_wraps_like_target(self):
        unit, _ = _optimized_unit(
            "int f(void) { return 2147483647 + 1; }")
        ret = _body_of(unit, "f").statements[0]
        assert ret.value.value == -2147483648

    def test_fold_unsigned_comparison(self):
        unit, _ = _optimized_unit(
            "int f(void) { return 0xFFFFFFFFu > 1u; }")
        ret = _body_of(unit, "f").statements[0]
        assert ret.value.value == 1

    def test_division_by_zero_not_folded(self):
        unit, _ = _optimized_unit("int f(void) { return 1 / 0; }")
        ret = _body_of(unit, "f").statements[0]
        assert isinstance(ret.value, A.Binary)  # left for runtime trap

    def test_float_folding(self):
        unit, _ = _optimized_unit(
            "double f(void) { return 1.5 * 4.0; }")
        ret = _body_of(unit, "f").statements[0]
        assert isinstance(ret.value, A.FloatLit)
        assert ret.value.value == 6.0


class TestAlgebraic:
    def test_add_zero_removed(self):
        unit, stats = _optimized_unit("int f(int x) { return x + 0; }")
        ret = _body_of(unit, "f").statements[0]
        assert isinstance(ret.value, A.Ident)
        assert stats["algebraic"] >= 1

    def test_mul_one_removed(self):
        unit, _ = _optimized_unit("int f(int x) { return x * 1; }")
        assert isinstance(_body_of(unit, "f").statements[0].value, A.Ident)

    def test_mul_zero_with_side_effect_kept(self):
        unit, _ = _optimized_unit("""
            int calls = 0;
            int bump(void) { calls++; return 1; }
            int f(void) { return bump() * 0; }
        """)
        ret = _body_of(unit, "f").statements[0]
        assert isinstance(ret.value, A.Binary)  # call must still happen


class TestStrengthReduction:
    def test_mul_pow2_becomes_shift(self):
        unit, stats = _optimized_unit("int f(int x) { return x * 8; }")
        ret = _body_of(unit, "f").statements[0]
        assert ret.value.op == "<<"
        assert stats["strength"] >= 1

    def test_long_shift_amount_typed_long(self):
        # Regression: the shift literal must match the operand width.
        unit, _ = _optimized_unit("long f(long x) { return x * 8l; }")
        ret = _body_of(unit, "f").statements[0]
        assert ret.value.op == "<<"
        assert ret.value.right.ctype.wasm_type == 0x7E  # i64

    def test_unsigned_div_pow2(self):
        unit, _ = _optimized_unit(
            "unsigned int f(unsigned int x) { return x / 4u; }")
        assert _body_of(unit, "f").statements[0].value.op == ">>"

    def test_signed_div_not_reduced(self):
        # -7/2 != -7>>1, so signed division must stay a division.
        unit, _ = _optimized_unit("int f(int x) { return x / 2; }")
        assert _body_of(unit, "f").statements[0].value.op == "/"

    def test_unsigned_mod_pow2(self):
        unit, _ = _optimized_unit(
            "unsigned int f(unsigned int x) { return x % 16u; }")
        assert _body_of(unit, "f").statements[0].value.op == "&"

    def test_not_applied_at_o1(self):
        unit, stats = _optimized_unit("int f(int x) { return x * 8; }",
                                      opt=1)
        assert stats["strength"] == 0


class TestBranchFolding:
    def test_if_true_keeps_then(self):
        unit, stats = _optimized_unit("""
            int f(void) { if (1) { return 10; } else { return 20; } }
        """)
        assert stats["branch_fold"] >= 1
        # No If statement left in the body.
        assert not any(isinstance(s, A.If)
                       for s in _body_of(unit, "f").statements)

    def test_while_zero_removed(self):
        unit, stats = _optimized_unit("""
            int f(void) { int x = 1; while (0) { x = 2; } return x; }
        """)
        assert stats["branch_fold"] >= 1

    def test_behavior_preserved(self):
        from tests.conftest import run_wamr
        src = """
            int main(void) {
                int x = 0;
                if (3 > 2) x += 1;
                if (0) x += 100;
                while (0) x += 1000;
                print_i(x); print_nl();
                return 0;
            }
        """
        assert run_wamr(src, opt_level=2).stdout_text() == "1\n"


class TestInlining:
    def test_small_function_inlined(self):
        unit, stats = _optimized_unit("""
            int sq(int x) { return x * x; }
            int f(int a) { return sq(a); }
        """)
        assert stats["inline"] >= 1
        ret = _body_of(unit, "f").statements[0]
        assert not isinstance(ret.value, A.Call)

    def test_side_effecting_arg_not_duplicated(self):
        from tests.conftest import run_wamr
        src = """
            int calls = 0;
            int bump(void) { calls++; return 3; }
            int sq(int x) { return x * x; }
            int main(void) {
                int r = sq(bump());
                print_i(r); print_i(calls); print_nl();
                return 0;
            }
        """
        assert run_wamr(src, opt_level=2).stdout_text() == "91\n"

    def test_recursive_function_not_inlined_into_itself(self):
        unit, _ = _optimized_unit("""
            int f(int n) { return n < 1 ? 0 : f(n - 1); }
        """)
        # Still terminates analysis; call remains.
        text_calls = [e for e in [unit.function("f")] if e]
        assert text_calls


class TestUnrolling:
    def test_constant_loop_unrolled_at_o3(self):
        unit, stats = _optimized_unit("""
            int a[4];
            int f(void) {
                int total = 0;
                for (int i = 0; i < 4; i++) total += a[i];
                return total;
            }
        """, opt=3)
        assert stats["unroll"] >= 1
        assert not any(isinstance(s, A.For)
                       for s in _body_of(unit, "f").statements)

    def test_not_unrolled_when_var_modified(self):
        unit, stats = _optimized_unit("""
            int f(void) {
                int total = 0;
                for (int i = 0; i < 4; i++) { total += i; i += 0; }
                return total;
            }
        """, opt=3)
        assert stats["unroll"] == 0

    def test_not_unrolled_with_break(self):
        unit, stats = _optimized_unit("""
            int f(void) {
                int total = 0;
                for (int i = 0; i < 4; i++) { if (total > 2) break;
                                              total += i; }
                return total;
            }
        """, opt=3)
        assert stats["unroll"] == 0

    def test_large_trip_count_not_unrolled(self):
        unit, stats = _optimized_unit("""
            int f(void) {
                int total = 0;
                for (int i = 0; i < 1000; i++) total += i;
                return total;
            }
        """, opt=3)
        assert stats["unroll"] == 0


class TestPeephole:
    def test_set_get_becomes_tee(self):
        result = compile_source("""
            int main(void) {
                int x = 5;
                print_i(x); print_nl();
                return 0;
            }
        """, opt_level=2)
        # Find main's body and check no SET-then-GET of the same local.
        for func in result.module.functions:
            body = func.body
            for i in range(len(body) - 1):
                if body[i][0] == op.LOCAL_SET and \
                        body[i + 1][0] == op.LOCAL_GET:
                    assert body[i][1] != body[i + 1][1]

    def test_o0_skips_peephole(self):
        result = compile_source("int main(void){return 0;}", opt_level=0)
        assert result.peephole_removed == 0
