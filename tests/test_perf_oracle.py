"""Performance-differential oracle: ratio math, flagging, reduction,
corpus replay, determinism, and the committed baseline.

The oracle under test (:mod:`repro.fuzz.perf`) is the WarpDiff-style
gate: per generated program, every cell's slowdown ratio over the
reference engine is compared against a baseline of expected ratios, and
outliers become ``kind="perf"`` divergences.  Skew is injected with
:class:`repro.fuzz.faults.PerfSkewRuntime` — a wrapper that scales the
modeled counters while leaving behavior bit-identical, so *only* the
perf oracle can see it.
"""

import json
import math

import pytest

from .conftest import FUZZ_BASE_SEED
from repro.errors import HarnessError
from repro.fuzz import (Corpus, PerfBaseline, build_baseline,
                        check_program, derive_seed, generate_program,
                        pair_stats, perf_divergences,
                        reduce_divergence, register_perf_skew_engine,
                        run_campaign, size_class, unregister_engine)
from repro.fuzz.engines import ORACLE_VERSION, CellRunner
from repro.fuzz.perf import (DEFAULT_BASELINE_PATH, PERF_SCHEMA, ROUND,
                             PairStats, log2_ratio)
from repro.registry import PERF_CLASS_BOUNDS, PERF_CLASS_TOP

ENGINES = ("native", "wamr")
OPTS = (0, 2)
BUDGET = 10


@pytest.fixture
def skew_engine():
    """A perf-skew engine whose factor tests re-register at will."""
    name = "wamr-perfskew"
    register_perf_skew_engine(name, base="wamr", factor=1.0)
    yield name
    unregister_engine(name)


def _skew(name, factor):
    unregister_engine(name)
    register_perf_skew_engine(name, base="wamr", factor=factor)


class TestRatioMath:
    def test_size_class_buckets(self):
        for cls_name, bound in PERF_CLASS_BOUNDS:
            assert size_class(bound - 1) == cls_name
        assert size_class(PERF_CLASS_BOUNDS[-1][1]) == PERF_CLASS_TOP
        assert size_class(0) == PERF_CLASS_BOUNDS[0][0]

    def test_log2_ratio_rounds(self):
        assert log2_ratio(8, 2) == 2.0
        value = log2_ratio(3, 7)
        assert value == round(math.log2(3 / 7), ROUND)

    def test_pair_stats_single_sample(self):
        stats = pair_stats([1.5])
        assert stats.median_log2 == 1.5
        assert stats.mad_log2 == 0.0
        assert stats.samples == 1
        # MAD of one sample is zero: the floor carries the tolerance.
        assert stats.tol_log2 == pytest.approx(0.35)

    def test_pair_stats_covers_own_max_deviation(self):
        # A wide sample: tolerance must exceed the worst member's
        # deviation, so the population that built the baseline can
        # never be flagged by it.
        samples = [0.0, 0.1, 0.2, 3.0]
        stats = pair_stats(samples)
        worst = max(abs(s - stats.median_log2) for s in samples)
        assert stats.tol_log2 > worst

    def test_pair_stats_empty_rejected(self):
        with pytest.raises(ValueError):
            pair_stats([])


class TestBaselineSerialization:
    def test_round_trip_is_byte_identical(self):
        base = build_baseline(FUZZ_BASE_SEED, 4, engines=ENGINES,
                              opt_levels=OPTS)
        again = PerfBaseline.from_dict(json.loads(base.to_json()))
        assert again.to_json() == base.to_json()

    def test_schema_mismatch_rejected(self):
        with pytest.raises(HarnessError):
            PerfBaseline.from_dict({"schema": "bogus/9", "metric":
                                    "cycles", "reference": "native",
                                    "pairs": {}})

    def test_unknown_metric_rejected(self):
        with pytest.raises(HarnessError):
            PerfBaseline("wall_seconds", "native", {})

    def test_subset_filters_pairs(self):
        pairs = {"s|wamr|0": PairStats(1.0, 0.0, 0.35, 1),
                 "s|wamr|2": PairStats(1.0, 0.0, 0.35, 1),
                 "s|wavm|0": PairStats(2.0, 0.0, 0.35, 1)}
        base = PerfBaseline("cycles", "native", pairs)
        sub = base.subset(("native", "wamr"), (0,))
        assert sorted(sub.pairs) == ["s|wamr|0"]


class TestFlagging:
    def test_same_population_is_green(self, skew_engine):
        base = build_baseline(FUZZ_BASE_SEED, BUDGET,
                              engines=("native", skew_engine),
                              opt_levels=OPTS)
        report = run_campaign(FUZZ_BASE_SEED, budget=BUDGET,
                              engines=("native", skew_engine),
                              opt_levels=OPTS, perf_baseline=base)
        assert report.ok
        assert report.perf_metric == "cycles"

    def test_slowdown_flagged_with_direction(self, skew_engine):
        base = build_baseline(FUZZ_BASE_SEED, BUDGET,
                              engines=("native", skew_engine),
                              opt_levels=OPTS)
        _skew(skew_engine, 8.0)
        program = generate_program(derive_seed(FUZZ_BASE_SEED, 1), 24)
        report = check_program(program.source,
                               engines=("native", skew_engine),
                               opt_levels=OPTS, perf_baseline=base,
                               check_determinism=False)
        perf = [d for d in report.divergences if d.kind == "perf"]
        assert perf, "8x counter skew must trip the perf oracle"
        assert all(d.direction == "slow" for d in perf)
        assert all(d.signature() == ("perf", skew_engine, d.cell[1],
                                     "slow") for d in perf)
        assert all("slow" in d.detail for d in perf)

    def test_speedup_flagged_as_fast(self, skew_engine):
        base = build_baseline(FUZZ_BASE_SEED, BUDGET,
                              engines=("native", skew_engine),
                              opt_levels=OPTS)
        _skew(skew_engine, 0.125)
        program = generate_program(derive_seed(FUZZ_BASE_SEED, 1), 24)
        report = check_program(program.source,
                               engines=("native", skew_engine),
                               opt_levels=OPTS, perf_baseline=base,
                               check_determinism=False)
        perf = [d for d in report.divergences if d.kind == "perf"]
        assert perf and all(d.direction == "fast" for d in perf)

    def test_tolerance_boundary_exact_not_flagged(self):
        # Hand-built observations: deviation == tolerance stays green,
        # one ulp of rounding past it flags.
        program = generate_program(derive_seed(FUZZ_BASE_SEED, 2), 24)
        runner = CellRunner()
        report = check_program(program.source, engines=ENGINES,
                               opt_levels=(0,), runner=runner,
                               check_determinism=False)
        obs = report.observations
        ref = obs[("native", 0)]
        cell = obs[("wamr", 0)]
        cls_name = size_class(ref.metrics["instructions"])
        actual = log2_ratio(cell.metrics["cycles"],
                            ref.metrics["cycles"])
        tol = 0.25
        # Median placed exactly `tol` below the observed ratio.
        pairs = {PerfBaseline.key(cls_name, "wamr", 0):
                 PairStats(round(actual - tol, ROUND), 0.0, tol, 1)}
        base = PerfBaseline("cycles", "native", pairs)
        assert perf_divergences(obs, base) == []
        pairs_tight = {PerfBaseline.key(cls_name, "wamr", 0):
                       PairStats(round(actual - tol, ROUND), 0.0,
                                 round(tol - 10 ** -ROUND, ROUND), 1)}
        tight = PerfBaseline("cycles", "native", pairs_tight)
        flagged = perf_divergences(obs, tight)
        assert len(flagged) == 1 and flagged[0].direction == "slow"

    def test_unknown_pair_is_skipped(self):
        program = generate_program(derive_seed(FUZZ_BASE_SEED, 3), 24)
        report = check_program(program.source, engines=ENGINES,
                               opt_levels=(0,), check_determinism=False)
        empty = PerfBaseline("cycles", "native", {})
        assert perf_divergences(report.observations, empty) == []


class TestReduction:
    def test_reduction_preserves_anomaly_signature(self, skew_engine):
        base = build_baseline(FUZZ_BASE_SEED, BUDGET,
                              engines=("native", skew_engine),
                              opt_levels=OPTS)
        _skew(skew_engine, 8.0)
        program = generate_program(derive_seed(FUZZ_BASE_SEED, 1), 24)
        report = check_program(program.source,
                               engines=("native", skew_engine),
                               opt_levels=OPTS, perf_baseline=base,
                               check_determinism=False)
        perf = [d for d in report.divergences if d.kind == "perf"]
        assert perf
        divergence = perf[0]
        result = reduce_divergence(divergence,
                                   ("native", skew_engine), OPTS,
                                   perf_baseline=base)
        assert result is not None
        assert result.reduced_lines <= result.original_lines
        # The minimized program still trips the oracle with the exact
        # 4-tuple signature (engine pair AND direction).
        replay = check_program(result.source,
                               engines=("native", skew_engine),
                               opt_levels=OPTS, perf_baseline=base,
                               check_determinism=False)
        assert divergence.signature() in \
            [d.signature() for d in replay.divergences]

    def test_campaign_minimizes_and_embeds_baseline(self, tmp_path,
                                                    skew_engine):
        base = build_baseline(FUZZ_BASE_SEED, 4,
                              engines=("native", skew_engine),
                              opt_levels=OPTS)
        _skew(skew_engine, 8.0)
        corpus = Corpus(str(tmp_path / "corpus"))
        report = run_campaign(FUZZ_BASE_SEED, budget=4,
                              engines=("native", skew_engine),
                              opt_levels=OPTS, minimize=True,
                              corpus=corpus, perf_baseline=base)
        assert not report.ok
        assert report.reproducers
        entry = corpus.entries()[0]
        assert entry.signature[0] == "perf"
        assert entry.signature[3] == "slow"
        # The embedded baseline slice makes replay self-contained.
        assert entry.meta["perf"]["schema"] == PERF_SCHEMA
        assert entry.perf_baseline is not None

    def test_perf_reproducer_replays(self, tmp_path, skew_engine):
        base = build_baseline(FUZZ_BASE_SEED, 4,
                              engines=("native", skew_engine),
                              opt_levels=OPTS)
        _skew(skew_engine, 8.0)
        corpus = Corpus(str(tmp_path / "corpus"))
        run_campaign(FUZZ_BASE_SEED, budget=4,
                     engines=("native", skew_engine), opt_levels=OPTS,
                     minimize=True, corpus=corpus, perf_baseline=base)
        entry = corpus.entries()[0]
        # Engine registered and still skewed: divergent.
        outcome = corpus.replay_entry(entry)
        assert outcome.status == "divergent"
        assert any(d.kind == "perf" for d in outcome.divergences)
        # Engine gone (the fault only lives in this test): the replayer
        # maps the entry to missing-engine, never to a hard failure.
        unregister_engine(skew_engine)
        try:
            assert corpus.replay_entry(entry).status == "missing-engine"
        finally:
            register_perf_skew_engine(skew_engine, base="wamr",
                                      factor=8.0)


class TestDeterminism:
    def test_reports_byte_identical_across_jobs(self):
        # Builtin engines only, so the --jobs pool engages; a doctored
        # baseline guarantees at least one perf divergence in the
        # rendered report (the interesting path for byte-identity).
        program_cls = {}
        base = build_baseline(FUZZ_BASE_SEED, 6, engines=ENGINES,
                              opt_levels=OPTS,
                              progress=lambda i, c:
                              program_cls.__setitem__(i, c))
        assert program_cls, "baseline saw no usable programs"
        doctored = {key: PairStats(stats.median_log2 + 5.0, 0.0,
                                   0.35, stats.samples)
                    for key, stats in base.pairs.items()}
        bait = PerfBaseline("cycles", "native", doctored)
        reports = []
        for jobs in (1, 2):
            report = run_campaign(FUZZ_BASE_SEED, budget=6,
                                  engines=ENGINES, opt_levels=OPTS,
                                  jobs=jobs, perf_baseline=bait)
            assert not report.ok
            reports.append(report.render(verbose=True))
        assert reports[0] == reports[1]

    def test_cache_key_carries_oracle_version(self):
        # The satellite bugfix: a cached verdict written by an older
        # oracle (which did not persist the counter vector) must never
        # satisfy a perf-oracle run — bumping ORACLE_VERSION moves the
        # fuzz-result key.
        from repro.compiler import config_fingerprint
        from repro.fuzz.engines import source_digest
        from repro.fuzz.generator import GENERATOR_VERSION
        from repro.harness.cache import cache_key

        source = "int main() { return 0; }"
        runner = CellRunner()
        parts = dict(gen=GENERATOR_VERSION, src=source_digest(source),
                     engine="wamr", opt=0, cc=config_fingerprint(0))
        current = cache_key("fuzz-result", oracle=ORACLE_VERSION, **parts)
        stale = cache_key("fuzz-result", oracle="fuzz-oracle-1", **parts)
        assert runner._cell_key(source, "wamr", 0) == current
        assert current != stale


class TestCommittedBaseline:
    def test_committed_baseline_loads_and_gates_green(self):
        base = PerfBaseline.from_file(DEFAULT_BASELINE_PATH)
        assert base.metric == "cycles"
        assert base.reference == "native"
        assert base.pairs
        # A slice of the committed campaign must pass against it.
        report = run_campaign(42, budget=6, perf_baseline=base)
        assert report.ok

    def test_missing_baseline_is_a_harness_error(self, tmp_path):
        with pytest.raises(HarnessError):
            PerfBaseline.from_file(str(tmp_path / "nope.json"))
