"""Tests for the harness: runner caching, metrics, report rendering, CLI."""

import json
import os

import pytest

from repro.errors import HarnessError
from repro.harness import ENGINES, Harness, Table, geomean
from repro.harness.cli import main as cli_main
from repro.harness.experiments import EXPERIMENTS

SUBSET = ["quicksort", "gemm"]


@pytest.fixture(scope="module")
def harness():
    return Harness(size="test", benchmarks=SUBSET)


class TestGeomean:
    def test_basic(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)

    def test_empty_warns(self):
        # Regression: an empty input used to return 0.0 silently, masking
        # broken normalizations in figure tables.
        with pytest.warns(UserWarning, match="empty input"):
            assert geomean([]) == 0.0

    def test_nonpositive_dropped_with_warning(self):
        with pytest.warns(UserWarning, match="dropped 1 non-positive"):
            assert geomean([4.0, 0.0]) == pytest.approx(4.0)

    def test_all_nonpositive_warns_once_and_returns_zero(self):
        with pytest.warns(UserWarning, match="dropped 2 non-positive"):
            assert geomean([0.0, -1.0]) == 0.0

    def test_strict_raises_on_drop(self):
        with pytest.raises(HarnessError):
            geomean([4.0, 0.0], strict=True)
        with pytest.raises(HarnessError):
            geomean([], strict=True)

    def test_clean_input_does_not_warn(self):
        import warnings as _w
        with _w.catch_warnings():
            _w.simplefilter("error")
            assert geomean([1.0, 2.0]) > 0


class TestHarness:
    def test_run_caches_results(self, harness):
        first = harness.run("gemm", "native")
        second = harness.run("gemm", "native")
        assert first is second

    def test_runs_are_deterministic(self):
        h1 = Harness(size="test", benchmarks=["quicksort"])
        h2 = Harness(size="test", benchmarks=["quicksort"])
        r1 = h1.run("quicksort", "wamr")
        r2 = h2.run("quicksort", "wamr")
        assert r1.stdout == r2.stdout
        assert r1.counters == r2.counters
        assert r1.mrss_bytes == r2.mrss_bytes

    def test_normalized_metric(self, harness):
        value = harness.normalized("gemm", "wamr", "instructions")
        assert value > 2.0

    def test_verify_outputs(self, harness):
        harness.verify_outputs("quicksort", engines=("native", "wamr"))

    def test_aot_image_cached(self, harness):
        img1, s1 = harness.aot_image("gemm", "wasmtime")
        img2, s2 = harness.aot_image("gemm", "wasmtime")
        assert img1 is img2 and s1 == s2

    def test_native_rejects_aot(self, harness):
        with pytest.raises(HarnessError):
            harness.run("gemm", "native", aot=True)

    def test_grouped_rows_structure(self):
        h = Harness(size="test",
                    benchmarks=["gemm", "quicksort", "whitedb"])
        rows = dict(h.grouped_rows())
        assert rows["PolyBench"] == ["gemm"]
        assert rows["JetStream2"] == ["quicksort"]
        assert rows["whitedb"] == ["whitedb"]

    def test_unknown_size_rejected(self):
        h = Harness(size="galactic", benchmarks=["gemm"])
        with pytest.raises(KeyError):
            h.run("gemm", "native")

    def test_opt_level_variants_cached_separately(self, harness):
        o2 = harness.run("quicksort", "native", opt=2)
        o0 = harness.run("quicksort", "native", opt=0)
        assert o0.counters["instructions"] > o2.counters["instructions"]
        assert o0.stdout == o2.stdout


class TestTable:
    def test_render_alignment(self):
        t = Table("Figure X", "demo", ["workload", "a", "b"])
        t.add("row1", 1.234, 56789.0)
        t.add("row2", 0.5, 2.0)
        t.note("a note")
        text = t.render()
        assert "Figure X" in text
        assert "row1" in text and "56,789" in text
        assert "note: a note" in text

    def test_cell_lookup(self):
        t = Table("T", "demo", ["w", "x"])
        t.add("r", 3.0)
        assert t.cell("r", "x") == 3.0
        with pytest.raises(KeyError):
            t.cell("missing", "x")

    def test_column_values_skip(self):
        t = Table("T", "demo", ["w", "x"])
        t.add("a", 1.0)
        t.add("GEOMEAN", 9.0)
        assert t.column_values("x", skip_labels=("GEOMEAN",)) == [1.0]


class TestExperimentsRegistry:
    def test_all_paper_artifacts_present(self):
        expected = {"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
                    "fig8", "fig9", "fig10", "fig11", "fig12", "fig13",
                    "fig14", "table4", "table5", "metrics"}
        assert set(EXPERIMENTS) == expected

    def test_metric_experiments_share_runs(self, harness):
        # figs 6-10 must reuse fig1's cached runs: no new configurations.
        from repro.harness.experiments import arch
        arch.fig6(harness)
        cached = len(harness._result_cache)
        arch.fig7(harness)
        arch.fig9(harness)
        arch.fig10(harness)
        assert len(harness._result_cache) == cached


class TestCli:
    def test_list(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "gnuchess" in out and "polybench" in out

    def test_run_single(self, capsys):
        code = cli_main(["run", "quicksort", "--runtime", "wamr",
                         "--size", "test"])
        assert code == 0
        out = capsys.readouterr().out
        assert "quicksort checksum" in out
        assert "IPC" in out

    def test_experiment_with_subset_and_out(self, capsys, tmp_path):
        out_dir = str(tmp_path / "results")
        code = cli_main(["fig6", "--size", "test",
                         "--benchmarks", "quicksort,gemm",
                         "--out", out_dir])
        assert code == 0
        assert os.path.exists(os.path.join(out_dir, "fig6.txt"))
        text = open(os.path.join(out_dir, "fig6.txt")).read()
        assert "Figure 6" in text

    def test_experiment_prints_cache_stats_line(self, capsys):
        assert cli_main(["fig6", "--size", "test",
                         "--benchmarks", "quicksort"]) == 0
        assert "[cache]" in capsys.readouterr().out


class TestCliRegressions:
    """The four silent result-masking bugfixes, one test each."""

    def test_run_rejects_benchmarks_flag(self, capsys):
        # Regression: --benchmarks was accepted and silently ignored.
        code = cli_main(["run", "quicksort", "--size", "test",
                         "--benchmarks", "gemm"])
        assert code == 2
        err = capsys.readouterr().err
        assert "--benchmarks" in err and "positional" in err

    def test_run_honors_verbose(self, capsys):
        # Regression: --verbose was accepted and silently ignored.
        assert cli_main(["run", "quicksort", "--runtime", "wamr",
                         "--size", "test", "--verbose"]) == 0
        out = capsys.readouterr().out
        assert "[run] quicksort on wamr" in out

    def test_run_honors_out(self, capsys, tmp_path):
        # Regression: --out was accepted and silently ignored.
        out_dir = str(tmp_path / "results")
        assert cli_main(["run", "quicksort", "--runtime", "wamr",
                         "--size", "test", "--out", out_dir]) == 0
        path = os.path.join(out_dir, "run-quicksort.txt")
        assert os.path.exists(path)
        assert "quicksort checksum" in open(path).read()

    def test_harness_error_is_one_line_not_traceback(self, capsys):
        # Regression: `run --runtime native --aot` dumped a raw traceback.
        code = cli_main(["run", "quicksort", "--runtime", "native",
                         "--aot", "--size", "test"])
        assert code == 1
        err = capsys.readouterr().err
        assert err.startswith("wabench: ")
        assert "AOT does not apply" in err
        assert "Traceback" not in err


class TestCliFuzz:
    """``wabench fuzz`` — the differential-fuzzing subcommand."""

    FAST = ["--engines", "native,wamr", "--opt-levels", "2",
            "--budget", "2", "--size-budget", "12"]

    def test_clean_campaign_exits_zero(self, capsys):
        assert cli_main(["fuzz", "--seed", "42"] + self.FAST) == 0
        out = capsys.readouterr().out
        assert "0 divergence(s)" in out
        assert "[cache]" in out

    def test_out_report_is_deterministic(self, capsys, tmp_path):
        paths = []
        for run in ("a", "b"):
            out_dir = str(tmp_path / run)
            assert cli_main(["fuzz", "--seed", "7", "--out", out_dir]
                            + self.FAST) == 0
            paths.append(os.path.join(out_dir, "fuzz-seed7.txt"))
        capsys.readouterr()
        first, second = (open(p).read() for p in paths)
        assert first == second
        assert "2 program(s)" in first

    def test_jobs_matches_serial(self, capsys, tmp_path):
        reports = []
        for jobs, sub in (("1", "serial"), ("3", "parallel")):
            out_dir = str(tmp_path / sub)
            assert cli_main(["fuzz", "--seed", "9", "--jobs", jobs,
                             "--out", out_dir] + self.FAST) == 0
            reports.append(
                open(os.path.join(out_dir, "fuzz-seed9.txt")).read())
        capsys.readouterr()
        assert reports[0] == reports[1]

    def test_unknown_engine_is_clean_error(self, capsys):
        code = cli_main(["fuzz", "--seed", "1", "--budget", "1",
                         "--engines", "native,quickjs"])
        assert code == 1
        err = capsys.readouterr().err
        assert err.startswith("wabench: ")
        assert "quickjs" in err and "Traceback" not in err

    def test_corpus_dir_records_seeds(self, capsys, tmp_path):
        corpus_dir = str(tmp_path / "corpus")
        assert cli_main(["fuzz", "--seed", "11",
                         "--corpus-dir", corpus_dir] + self.FAST) == 0
        capsys.readouterr()
        seeds = json.load(open(os.path.join(corpus_dir, "seeds.json")))
        assert seeds[0]["seed"] == 11
        assert seeds[0]["divergences"] == 0
