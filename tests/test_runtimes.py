"""Runtime-model tests: AOT, backends, traps, instrumentation, registry."""

import pytest

from repro.compiler import compile_source
from repro.errors import ReproError
from repro.runtimes import (ALL_RUNTIME_NAMES, RUNTIME_CLASSES, AotImage,
                            WasmerRuntime, make_runtime)
from repro.wasi import VirtualFS
from tests.conftest import run_everywhere

SIMPLE = """
int main(void) {
    int i, total = 0;
    for (i = 0; i < 50; i++) total += i;
    print_i(total); print_nl();
    return 0;
}
"""

TRAPPING_DIV = """
int zero = 0;
int main(void) {
    print_i(7 / zero); print_nl();
    return 0;
}
"""

TRAPPING_OOB = """
int main(void) {
    int *p = (int *)0x7fffffff;
    print_i(*p); print_nl();
    return 0;
}
"""

NULL_FUNCPTR = """
int (*fp)(void);
int main(void) {
    return fp();
}
"""


@pytest.fixture(scope="module")
def simple_wasm():
    return compile_source(SIMPLE).wasm_bytes


class TestRegistry:
    def test_all_five_runtimes_present(self):
        assert set(ALL_RUNTIME_NAMES) == {"wasmtime", "wavm", "wasmer",
                                          "wasm3", "wamr"}

    def test_make_runtime_unknown(self):
        with pytest.raises(KeyError):
            make_runtime("nodejs")

    def test_modes(self):
        modes = {name: RUNTIME_CLASSES[name].mode
                 for name in ALL_RUNTIME_NAMES}
        assert modes == {"wasmtime": "jit", "wavm": "jit", "wasmer": "jit",
                         "wasm3": "interp", "wamr": "interp"}

    def test_wasmer_backend_selection(self):
        assert make_runtime("wasmer-singlepass").backend_name == "singlepass"
        # "cranelift" maps to Wasmer's lean Cranelift integration
        assert make_runtime("wasmer-cranelift").backend_name == \
            "cranelift-lean"
        assert make_runtime("wasmer-llvm").backend_name == "llvm"

    def test_wasmer_bad_backend(self):
        with pytest.raises(ReproError):
            WasmerRuntime(backend="turbofan")


class TestExecution:
    @pytest.mark.parametrize("name", ALL_RUNTIME_NAMES)
    def test_runs_and_matches(self, name, simple_wasm):
        res = make_runtime(name).run(simple_wasm)
        assert res.trap is None
        assert res.exit_code == 0
        assert res.stdout_text() == "1225\n"

    @pytest.mark.parametrize("name", ALL_RUNTIME_NAMES)
    def test_counters_populated(self, name, simple_wasm):
        res = make_runtime(name).run(simple_wasm)
        c = res.counters
        assert c["instructions"] > 1000
        assert c["cycles"] > 0
        assert 0 < c["ipc"] <= 4.0
        assert c["branches"] > 0
        assert res.mrss_bytes > res.code_bytes
        assert res.seconds > 0

    def test_exit_code_propagates(self):
        wasm = compile_source("int main(void) { return 42; }").wasm_bytes
        res = make_runtime("wamr").run(wasm)
        assert res.exit_code == 42
        assert not res.ok

    @pytest.mark.parametrize("name", ALL_RUNTIME_NAMES)
    def test_divide_by_zero_traps(self, name):
        wasm = compile_source(TRAPPING_DIV).wasm_bytes
        res = make_runtime(name).run(wasm)
        assert res.trap is not None and "divide" in res.trap

    @pytest.mark.parametrize("name", ALL_RUNTIME_NAMES)
    def test_out_of_bounds_traps(self, name):
        wasm = compile_source(TRAPPING_OOB).wasm_bytes
        res = make_runtime(name).run(wasm)
        assert res.trap is not None and "bounds" in res.trap

    @pytest.mark.parametrize("name", ("wamr", "wasmtime"))
    def test_null_function_pointer_traps(self, name):
        wasm = compile_source(NULL_FUNCPTR).wasm_bytes
        res = make_runtime(name).run(wasm)
        assert res.trap is not None

    def test_stdout_capture_separate_fs(self, simple_wasm):
        fs1, fs2 = VirtualFS(), VirtualFS()
        make_runtime("wamr").run(simple_wasm, fs=fs1)
        assert fs1.stdout_text() == "1225\n"
        assert fs2.stdout_text() == ""


class TestJitSpecifics:
    def test_compile_time_reported(self, simple_wasm):
        res = make_runtime("wavm").run(simple_wasm)
        assert res.compile_seconds > 0
        assert res.compile_seconds < res.seconds

    def test_llvm_compiles_slower_than_singlepass(self, simple_wasm):
        sp = WasmerRuntime("singlepass").run(simple_wasm)
        ll = WasmerRuntime("llvm").run(simple_wasm)
        assert ll.compile_seconds > sp.compile_seconds * 3

    def test_singlepass_executes_slower_than_cranelift(self):
        # Long enough that execution dominates compilation.
        source = """
            int main(void) {
                int i;
                unsigned int h = 1u;
                for (i = 0; i < 20000; i++) h = h * 31u + (unsigned int)i;
                print_u(h); print_nl();
                return 0;
            }
        """
        wasm = compile_source(source).wasm_bytes
        sp = WasmerRuntime("singlepass").run(wasm)
        cl = WasmerRuntime("cranelift").run(wasm)
        assert sp.stdout == cl.stdout
        assert sp.execute_seconds > cl.execute_seconds * 1.3

    def test_interpreters_report_zero_like_compile(self, simple_wasm):
        res = make_runtime("wasm3").run(simple_wasm)
        # Threaded-code translation is cheap but not free.
        assert res.compile_seconds < res.seconds * 0.5


class TestAot:
    @pytest.mark.parametrize("name", ("wasmtime", "wavm", "wasmer"))
    def test_aot_roundtrip(self, name, simple_wasm):
        rt = make_runtime(name)
        image, compile_seconds = rt.compile_aot(simple_wasm)
        assert isinstance(image, AotImage)
        assert compile_seconds > 0
        res = rt.run(simple_wasm, aot_image=image)
        assert res.stdout_text() == "1225\n"

    def test_aot_removes_compile_time(self, simple_wasm):
        rt = make_runtime("wavm")
        jit = rt.run(simple_wasm)
        image, _ = rt.compile_aot(simple_wasm)
        aot = rt.run(simple_wasm, aot_image=image)
        assert aot.compile_seconds < jit.compile_seconds / 3
        assert aot.seconds < jit.seconds

    def test_aot_backend_mismatch_rejected(self, simple_wasm):
        image, _ = make_runtime("wavm").compile_aot(simple_wasm)
        with pytest.raises(ReproError):
            make_runtime("wasmtime").run(simple_wasm, aot_image=image)

    def test_interpreters_reject_aot(self, simple_wasm):
        with pytest.raises(ReproError):
            make_runtime("wasm3").compile_aot(simple_wasm)


class TestCharacterizationShape:
    """Coarse sanity on the paper's headline relationships (Finding 1/5/6)."""

    SOURCE = """
        int data[256];
        int main(void) {
            int i, j;
            unsigned int h = 0u;
            for (i = 0; i < 40; i++)
                for (j = 0; j < 256; j++) {
                    data[j] = data[j] + i * j;
                    h = h * 31u + (unsigned int)data[j];
                }
            print_u(h); print_nl();
            return 0;
        }
    """

    @pytest.fixture(scope="class")
    def results(self):
        return run_everywhere(self.SOURCE)

    def test_all_outputs_identical(self, results):
        outputs = {name: r.stdout for name, r in results.items()}
        assert len(set(outputs.values())) == 1, outputs

    def test_every_runtime_slower_than_native(self, results):
        native = results["native"].seconds
        for name in ALL_RUNTIME_NAMES:
            assert results[name].seconds > native, name

    def test_interpreters_slower_than_jits_on_loops(self, results):
        jit_worst = max(results[n].seconds
                        for n in ("wasmtime", "wasmer"))
        interp_best = min(results[n].seconds for n in ("wasm3", "wamr"))
        assert interp_best > jit_worst

    def test_instruction_blowup_ordering(self, results):
        native = results["native"].counters["instructions"]
        wamr = results["wamr"].counters["instructions"]
        wasmtime = results["wasmtime"].counters["instructions"]
        assert wamr > 6 * native          # interpreter tax
        assert wasmtime < wamr            # JIT executes far fewer
        assert wasmtime > native          # but still more than native

    def test_wasm3_faster_than_wamr(self, results):
        assert results["wasm3"].seconds < results["wamr"].seconds

    def test_jits_use_more_memory_than_interps(self, results):
        jit_min = min(results[n].mrss_bytes
                      for n in ("wasmtime", "wavm", "wasmer"))
        interp_max = max(results[n].mrss_bytes for n in ("wasm3", "wamr"))
        assert jit_min > interp_max
