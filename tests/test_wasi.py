"""Unit tests for the WASI layer and virtual filesystem.

The ``TestConformanceMatrix`` class is the preview1 conformance matrix:
one section per contract axis (errno behavior, preopen resolution,
readdir determinism, path normalization, truncation aliasing, rights).
``TestCrossEngineIdentity`` pins the observability contract — the
``{fn: (calls, bytes)}`` profile of a WASI-heavy benchmark is a pure
function of the guest program, identical across engines, speed tiers,
and ``--jobs`` fan-out."""

import struct

import pytest

from repro import speed
from repro.errors import ExitProc
from repro.hw import CPUModel
from repro.isa.memory import LinearMemory
from repro.wasi import (FDFLAG_APPEND, O_CREAT, O_DIRECTORY, O_EXCL,
                        O_TRUNC, RIGHT_FD_READ, RIGHT_FD_SEEK,
                        RIGHT_FD_WRITE, SEEK_CUR, SEEK_END, SEEK_SET,
                        VirtualFS, WasiAPI, errno)


@pytest.fixture
def api():
    fs = VirtualFS({"data.txt": b"hello world"})
    return WasiAPI(fs=fs, cpu=CPUModel()), LinearMemory(1)


def _write_iov(mem, iov_addr, buf_addr, data):
    mem.write_bytes(buf_addr, data)
    mem.store_u32(iov_addr, buf_addr)
    mem.store_u32(iov_addr + 4, len(data))


class TestVirtualFS:
    def test_stdout_stderr(self):
        fs = VirtualFS()
        assert fs.write(1, b"out") == 3
        assert fs.write(2, b"err") == 3
        assert fs.stdout == b"out" and fs.stderr == b"err"

    def test_open_missing_without_creat(self):
        fs = VirtualFS()
        assert fs.open_path("nope", 0) == -errno.ENOENT

    def test_open_creat_excl(self):
        fs = VirtualFS()
        fd = fs.open_path("new.bin", O_CREAT)
        assert fd >= 4
        assert fs.open_path("new.bin", O_CREAT | O_EXCL) == -errno.EEXIST

    def test_trunc(self):
        fs = VirtualFS({"f": b"0123456789"})
        fd = fs.open_path("f", O_TRUNC)
        assert fs.read(fd, 100) == b""

    def test_read_write_positioning(self):
        fs = VirtualFS()
        fd = fs.open_path("f", O_CREAT)
        fs.write(fd, b"abcdef")
        assert fs.seek(fd, 2, SEEK_SET) == 2
        assert fs.read(fd, 2) == b"cd"
        assert fs.seek(fd, -1, SEEK_CUR) == 3
        assert fs.seek(fd, -2, SEEK_END) == 4
        assert fs.read(fd, 10) == b"ef"

    def test_seek_negative_rejected(self):
        fs = VirtualFS({"f": b"xy"})
        fd = fs.open_path("f", 0)
        assert fs.seek(fd, -5, SEEK_SET) == -errno.EINVAL

    def test_write_extends_with_zeros(self):
        fs = VirtualFS()
        fd = fs.open_path("f", O_CREAT)
        fs.seek(fd, 4, SEEK_SET)
        fs.write(fd, b"z")
        assert bytes(fs.files["f"]) == b"\x00\x00\x00\x00z"

    def test_close_invalidates(self):
        fs = VirtualFS({"f": b"abc"})
        fd = fs.open_path("f", 0)
        assert fs.close(fd) == errno.SUCCESS
        assert fs.read(fd, 1) is None
        assert fs.close(fd) == errno.EBADF

    def test_stdin(self):
        fs = VirtualFS()
        fs.set_stdin(b"input data")
        assert fs.read(0, 5) == b"input"
        assert fs.read(0, 50) == b" data"
        assert fs.read(0, 5) == b""

    def test_path_normalization(self):
        fs = VirtualFS()
        fs.add_file("./sub/file.txt", b"x")
        assert fs.open_path("sub/file.txt", 0) >= 4


class TestWasiAPI:
    def test_fd_write_gathers_iovecs(self, api):
        wasi, mem = api
        _write_iov(mem, 64, 256, b"hello ")
        _write_iov(mem, 72, 512, b"wasi")
        result = wasi.fd_write(mem, 1, 64, 2, 128)
        assert result == errno.SUCCESS
        assert mem.load_u32(128) == 10
        assert wasi.fs.stdout == b"hello wasi"

    def test_fd_read_into_memory(self, api):
        wasi, mem = api
        fd = wasi.fs.open_path("data.txt", 0)
        mem.store_u32(64, 256)
        mem.store_u32(68, 5)
        assert wasi.fd_read(mem, fd, 64, 1, 128) == errno.SUCCESS
        assert mem.load_u32(128) == 5
        assert mem.read_bytes(256, 5) == b"hello"

    def test_fd_read_bad_fd(self, api):
        wasi, mem = api
        mem.store_u32(64, 256)
        mem.store_u32(68, 5)
        assert wasi.fd_read(mem, 99, 64, 1, 128) == errno.EBADF

    def test_path_open(self, api):
        wasi, mem = api
        mem.write_bytes(256, b"data.txt")
        result = wasi.path_open(mem, 3, 0, 256, 8, 0, 0, 0, 0, 128)
        assert result == errno.SUCCESS
        assert mem.load_u32(128) >= 4

    def test_path_open_missing(self, api):
        wasi, mem = api
        mem.write_bytes(256, b"ghost")
        assert wasi.path_open(mem, 3, 0, 256, 5, 0, 0, 0, 0, 128) == \
            errno.ENOENT

    def test_fd_seek_signed_offset(self, api):
        wasi, mem = api
        fd = wasi.fs.open_path("data.txt", 0)
        wasi.fs.seek(fd, 5, SEEK_SET)
        # -2 as unsigned i64 image
        neg2 = (1 << 64) - 2
        assert wasi.fd_seek(mem, fd, neg2, SEEK_CUR, 128) == errno.SUCCESS
        assert mem.load("<Q", 128, 8) == 3

    def test_args(self, api):
        wasi, mem = api
        wasi.argv = [b"prog\x00", b"arg1\x00"]
        assert wasi.args_sizes_get(mem, 64, 68) == errno.SUCCESS
        assert mem.load_u32(64) == 2
        assert mem.load_u32(68) == 10
        assert wasi.args_get(mem, 128, 256) == errno.SUCCESS
        first = mem.load_u32(128)
        assert mem.read_cstring(first) == b"prog"

    def test_clock_is_deterministic_and_monotone(self, api):
        wasi, mem = api
        wasi.clock_time_get(mem, 1, 0, 64)
        t1 = mem.load("<Q", 64, 8)
        wasi.cpu.retire(1_000_000)
        wasi.clock_time_get(mem, 1, 0, 64)
        t2 = mem.load("<Q", 64, 8)
        assert t2 > t1

    def test_random_deterministic_per_seed(self):
        mem1, mem2 = LinearMemory(1), LinearMemory(1)
        WasiAPI(random_seed=7).random_get(mem1, 0, 32)
        WasiAPI(random_seed=7).random_get(mem2, 0, 32)
        assert mem1.read_bytes(0, 32) == mem2.read_bytes(0, 32)
        mem3 = LinearMemory(1)
        WasiAPI(random_seed=8).random_get(mem3, 0, 32)
        assert mem3.read_bytes(0, 32) != mem1.read_bytes(0, 32)

    def test_proc_exit_raises(self, api):
        wasi, mem = api
        with pytest.raises(ExitProc) as exc:
            wasi.proc_exit(mem, 3)
        assert exc.value.code == 3
        assert wasi.exit_code == 3

    def test_host_calls_charge_instructions(self, api):
        wasi, mem = api
        before = wasi.cpu.counters.instructions
        _write_iov(mem, 64, 256, b"x" * 800)
        wasi.fd_write(mem, 1, 64, 1, 128)
        charged = wasi.cpu.counters.instructions - before
        assert charged > 100  # syscall base + copy cost


class TestConformanceMatrix:
    """The preview1 conformance matrix: errno, preopens, readdir
    determinism, normalization regressions, aliasing, rights."""

    # -- errno: EBADF on every fd-taking operation -----------------------

    def test_ebadf_matrix(self):
        fs = VirtualFS()
        bad = 99
        assert fs.read(bad, 1) is None
        assert fs.write(bad, b"x") == -errno.EBADF
        assert fs.seek(bad, 0, SEEK_SET) == -errno.EBADF
        assert fs.pread(bad, 1, 0) is None
        assert fs.pwrite(bad, b"x", 0) == -errno.EBADF
        assert fs.close(bad) == errno.EBADF
        assert fs.readdir(bad) == -errno.EBADF

    def test_ebadf_matrix_api(self, api):
        wasi, mem = api
        assert wasi.fd_fdstat_get(mem, 99, 128) == errno.EBADF
        assert wasi.fd_readdir(mem, 99, 256, 64, 0, 128) == errno.EBADF
        mem.store_u32(64, 256)
        mem.store_u32(68, 4)
        assert wasi.fd_pread(mem, 99, 64, 1, 0, 128) == errno.EBADF
        assert wasi.fd_pwrite(mem, 99, 64, 1, 0, 128) == errno.EBADF

    # -- errno: ENOENT / EEXIST / EINVAL / EISDIR / ENOTDIR --------------

    def test_enoent_matrix(self):
        fs = VirtualFS({"real.txt": b"x"})
        assert fs.open_path("ghost", 0) == -errno.ENOENT
        assert fs.filestat("ghost") == -errno.ENOENT
        assert fs.unlink("ghost") == -errno.ENOENT
        assert fs.rename("ghost", "other") == -errno.ENOENT
        assert fs.open_path("ghostdir/file", O_CREAT) == -errno.ENOENT

    def test_eexist_on_exclusive_create(self):
        fs = VirtualFS({"f": b"x"})
        assert fs.open_path("f", O_CREAT | O_EXCL) == -errno.EEXIST

    def test_einval_matrix(self):
        fs = VirtualFS({"f": b"abcd"})
        fd = fs.open_path("f", 0)
        assert fs.seek(fd, -1, SEEK_SET) == -errno.EINVAL
        assert fs.seek(fd, 0, 7) == -errno.EINVAL  # bad whence

    def test_eisdir_on_file_ops_against_directory(self):
        fs = VirtualFS({"d/inner.txt": b"x"})
        assert fs.unlink("d") == -errno.EISDIR
        fd = fs.open_path("d", O_DIRECTORY)
        assert fd >= 4
        assert fs.seek(fd, 0, SEEK_SET) == -errno.EISDIR

    def test_enotdir_on_o_directory_against_file(self):
        fs = VirtualFS({"f": b"x"})
        assert fs.open_path("f", O_DIRECTORY) == -errno.ENOTDIR

    # -- preopen resolution ----------------------------------------------

    def test_root_preopen_is_fd3_and_unclosable(self):
        fs = VirtualFS()
        h = fs.handle(3)
        assert h is not None and h.preopen and h.path == "."
        assert fs.close(3) == errno.ENOTSUP

    def test_added_preopen_resolves_relative_paths(self):
        fs = VirtualFS({"work/cfg.ini": b"k=v"})
        pfd = fs.add_preopen("work")
        assert pfd >= 4
        fd = fs.open_path("cfg.ini", 0, dirfd=pfd)
        assert fd >= 4
        assert fs.read(fd, 16) == b"k=v"
        # Same name resolved against the root preopen: not found.
        assert fs.open_path("cfg.ini", 0, dirfd=3) == -errno.ENOENT

    def test_bad_dirfd_is_ebadf_not_enoent(self):
        fs = VirtualFS({"f": b"x"})
        assert fs.open_path("f", 0, dirfd=42) == -errno.EBADF
        assert fs.filestat("f", dirfd=42) == -errno.EBADF

    # -- readdir determinism ---------------------------------------------

    def test_readdir_order_independent_of_insertion(self):
        a = VirtualFS()
        for name in ("zeta.bin", "alpha.txt", "mid/f"):
            a.add_file(name, b"x")
        b = VirtualFS()
        for name in ("mid/f", "zeta.bin", "alpha.txt"):
            b.add_file(name, b"x")
        fd_a = a.open_path(".", O_DIRECTORY, dirfd=3)
        fd_b = b.open_path(".", O_DIRECTORY, dirfd=3)
        names_a = [name for name, _ in a.readdir(fd_a)]
        names_b = [name for name, _ in b.readdir(fd_b)]
        assert names_a == names_b == ["alpha.txt", "mid", "zeta.bin"]

    def test_fd_readdir_serialization_and_continuation(self, api):
        wasi, mem = api
        for name in ("bb.txt", "aa.txt", "cc.txt"):
            wasi.fs.add_file(name, b"x")
        fd = wasi.fs.open_path(".", O_DIRECTORY, dirfd=3)
        # Small buffer: one 24-byte header + short name per page.
        seen, cookie = [], 0
        for _ in range(16):
            assert wasi.fd_readdir(mem, fd, 256, 40, cookie, 128) == \
                errno.SUCCESS
            used = mem.load_u32(128)
            d_next, _ino, namlen, _ftype = struct.unpack(
                "<QQIBxxx", mem.read_bytes(256, 24))
            if used >= 24 + namlen:
                seen.append(mem.read_bytes(256 + 24, namlen).decode())
                cookie = d_next
            if used < 40:
                break
        assert seen == ["aa.txt", "bb.txt", "cc.txt", "data.txt"]

    # -- path normalization regressions ----------------------------------

    def test_dotfile_not_stripped(self):
        """Regression: ``_norm`` must strip the ``./`` prefix, not every
        leading dot — ``.profile`` is a real name."""
        fs = VirtualFS()
        fs.add_file(".profile", b"dot")
        fs.add_file("profile", b"plain")
        fd = fs.open_path("./.profile", 0)
        assert fs.read(fd, 8) == b"dot"
        assert sorted(fs.files) == [".profile", "profile"]

    def test_dotdot_clamps_at_root(self):
        fs = VirtualFS({"top.txt": b"x"})
        assert fs.open_path("a/../../top.txt", 0) >= 4

    # -- O_TRUNC aliasing regression --------------------------------------

    def test_trunc_preserves_buffer_identity(self):
        """Regression: O_TRUNC must clear the file's buffer in place.
        A handle opened before the truncation shares the node; writes
        through either fd must stay visible through both."""
        fs = VirtualFS({"f": b"0123456789"})
        old = fs.open_path("f", 0)
        new = fs.open_path("f", O_TRUNC)
        assert fs.read(old, 16) == b""  # truncation visible via old fd
        fs.write(new, b"fresh")
        fs.seek(old, 0, SEEK_SET)
        assert fs.read(old, 16) == b"fresh"

    # -- rights and fdflags ----------------------------------------------

    def test_rights_restrict_when_nonzero(self):
        fs = VirtualFS({"f": b"abc"})
        rd = fs.open_path("f", 0, rights=RIGHT_FD_READ | RIGHT_FD_SEEK)
        assert fs.read(rd, 3) == b"abc"
        assert fs.write(rd, b"x") == -errno.EACCES
        wr = fs.open_path("f", 0, rights=RIGHT_FD_WRITE)
        assert fs.read(wr, 1) is None  # read denied
        assert fs.write(wr, b"Z") == 1

    def test_append_fdflag_positions_at_end(self):
        fs = VirtualFS({"log": b"one\n"})
        fd = fs.open_path("log", 0, fdflags=FDFLAG_APPEND)
        fs.write(fd, b"two\n")
        assert bytes(fs.files["log"]) == b"one\ntwo\n"


class TestCrossEngineIdentity:
    """wasi_calls {fn: (calls, bytes)} is engine-, tier-, and
    jobs-invariant on the I/O-bound benchmark class."""

    BENCH = "fscan_io"
    ENGINES = ("wasm3", "wamr", "wasmtime")

    @staticmethod
    def _profile(result):
        return {fn: (s["calls"], s["bytes"])
                for fn, s in result.wasi_calls.items()}

    def test_identical_across_engines_and_tiers(self):
        from repro.harness import Harness
        profiles = {}
        try:
            for tier in (0, 2):
                speed.set_tier(tier)
                speed.module_cache.clear()
                harness = Harness(size="test", benchmarks=[self.BENCH])
                for engine in self.ENGINES:
                    result = harness.run(self.BENCH, engine)
                    profiles[(engine, tier)] = self._profile(result)
        finally:
            speed.set_tier(2)
            speed.module_cache.clear()
        reference = profiles[(self.ENGINES[0], 0)]
        assert reference  # non-trivial profile
        for key, profile in profiles.items():
            assert profile == reference, f"profile diverged in {key}"

    def test_identical_across_jobs(self):
        from repro.harness import Harness
        from repro.harness.parallel import run_cells
        cells = [(self.BENCH, engine, 2, False)
                 for engine in self.ENGINES]
        serial = Harness(size="test", benchmarks=[self.BENCH])
        expected = {engine: serial.run(self.BENCH, engine).to_json()
                    for engine in self.ENGINES}
        speed.module_cache.clear()
        fanned = Harness(size="test", benchmarks=[self.BENCH])
        run_cells(fanned, cells, jobs=2)
        for engine in self.ENGINES:
            got = fanned.run(self.BENCH, engine).to_json()
            assert got == expected[engine], f"--jobs diverged on {engine}"
