"""Unit tests for the WASI layer and virtual filesystem."""

import pytest

from repro.errors import ExitProc
from repro.hw import CPUModel
from repro.isa.memory import LinearMemory
from repro.wasi import (O_CREAT, O_EXCL, O_TRUNC, SEEK_CUR, SEEK_END,
                        SEEK_SET, VirtualFS, WasiAPI, errno)


@pytest.fixture
def api():
    fs = VirtualFS({"data.txt": b"hello world"})
    return WasiAPI(fs=fs, cpu=CPUModel()), LinearMemory(1)


def _write_iov(mem, iov_addr, buf_addr, data):
    mem.write_bytes(buf_addr, data)
    mem.store_u32(iov_addr, buf_addr)
    mem.store_u32(iov_addr + 4, len(data))


class TestVirtualFS:
    def test_stdout_stderr(self):
        fs = VirtualFS()
        assert fs.write(1, b"out") == 3
        assert fs.write(2, b"err") == 3
        assert fs.stdout == b"out" and fs.stderr == b"err"

    def test_open_missing_without_creat(self):
        fs = VirtualFS()
        assert fs.open_path("nope", 0) == -errno.ENOENT

    def test_open_creat_excl(self):
        fs = VirtualFS()
        fd = fs.open_path("new.bin", O_CREAT)
        assert fd >= 4
        assert fs.open_path("new.bin", O_CREAT | O_EXCL) == -errno.EEXIST

    def test_trunc(self):
        fs = VirtualFS({"f": b"0123456789"})
        fd = fs.open_path("f", O_TRUNC)
        assert fs.read(fd, 100) == b""

    def test_read_write_positioning(self):
        fs = VirtualFS()
        fd = fs.open_path("f", O_CREAT)
        fs.write(fd, b"abcdef")
        assert fs.seek(fd, 2, SEEK_SET) == 2
        assert fs.read(fd, 2) == b"cd"
        assert fs.seek(fd, -1, SEEK_CUR) == 3
        assert fs.seek(fd, -2, SEEK_END) == 4
        assert fs.read(fd, 10) == b"ef"

    def test_seek_negative_rejected(self):
        fs = VirtualFS({"f": b"xy"})
        fd = fs.open_path("f", 0)
        assert fs.seek(fd, -5, SEEK_SET) == -errno.EINVAL

    def test_write_extends_with_zeros(self):
        fs = VirtualFS()
        fd = fs.open_path("f", O_CREAT)
        fs.seek(fd, 4, SEEK_SET)
        fs.write(fd, b"z")
        assert bytes(fs.files["f"]) == b"\x00\x00\x00\x00z"

    def test_close_invalidates(self):
        fs = VirtualFS({"f": b"abc"})
        fd = fs.open_path("f", 0)
        assert fs.close(fd) == errno.SUCCESS
        assert fs.read(fd, 1) is None
        assert fs.close(fd) == errno.EBADF

    def test_stdin(self):
        fs = VirtualFS()
        fs.set_stdin(b"input data")
        assert fs.read(0, 5) == b"input"
        assert fs.read(0, 50) == b" data"
        assert fs.read(0, 5) == b""

    def test_path_normalization(self):
        fs = VirtualFS()
        fs.add_file("./sub/file.txt", b"x")
        assert fs.open_path("sub/file.txt", 0) >= 4


class TestWasiAPI:
    def test_fd_write_gathers_iovecs(self, api):
        wasi, mem = api
        _write_iov(mem, 64, 256, b"hello ")
        _write_iov(mem, 72, 512, b"wasi")
        result = wasi.fd_write(mem, 1, 64, 2, 128)
        assert result == errno.SUCCESS
        assert mem.load_u32(128) == 10
        assert wasi.fs.stdout == b"hello wasi"

    def test_fd_read_into_memory(self, api):
        wasi, mem = api
        fd = wasi.fs.open_path("data.txt", 0)
        mem.store_u32(64, 256)
        mem.store_u32(68, 5)
        assert wasi.fd_read(mem, fd, 64, 1, 128) == errno.SUCCESS
        assert mem.load_u32(128) == 5
        assert mem.read_bytes(256, 5) == b"hello"

    def test_fd_read_bad_fd(self, api):
        wasi, mem = api
        mem.store_u32(64, 256)
        mem.store_u32(68, 5)
        assert wasi.fd_read(mem, 99, 64, 1, 128) == errno.EBADF

    def test_path_open(self, api):
        wasi, mem = api
        mem.write_bytes(256, b"data.txt")
        result = wasi.path_open(mem, 3, 0, 256, 8, 0, 0, 0, 0, 128)
        assert result == errno.SUCCESS
        assert mem.load_u32(128) >= 4

    def test_path_open_missing(self, api):
        wasi, mem = api
        mem.write_bytes(256, b"ghost")
        assert wasi.path_open(mem, 3, 0, 256, 5, 0, 0, 0, 0, 128) == \
            errno.ENOENT

    def test_fd_seek_signed_offset(self, api):
        wasi, mem = api
        fd = wasi.fs.open_path("data.txt", 0)
        wasi.fs.seek(fd, 5, SEEK_SET)
        # -2 as unsigned i64 image
        neg2 = (1 << 64) - 2
        assert wasi.fd_seek(mem, fd, neg2, SEEK_CUR, 128) == errno.SUCCESS
        assert mem.load("<Q", 128, 8) == 3

    def test_args(self, api):
        wasi, mem = api
        wasi.argv = [b"prog\x00", b"arg1\x00"]
        assert wasi.args_sizes_get(mem, 64, 68) == errno.SUCCESS
        assert mem.load_u32(64) == 2
        assert mem.load_u32(68) == 10
        assert wasi.args_get(mem, 128, 256) == errno.SUCCESS
        first = mem.load_u32(128)
        assert mem.read_cstring(first) == b"prog"

    def test_clock_is_deterministic_and_monotone(self, api):
        wasi, mem = api
        wasi.clock_time_get(mem, 1, 0, 64)
        t1 = mem.load("<Q", 64, 8)
        wasi.cpu.retire(1_000_000)
        wasi.clock_time_get(mem, 1, 0, 64)
        t2 = mem.load("<Q", 64, 8)
        assert t2 > t1

    def test_random_deterministic_per_seed(self):
        mem1, mem2 = LinearMemory(1), LinearMemory(1)
        WasiAPI(random_seed=7).random_get(mem1, 0, 32)
        WasiAPI(random_seed=7).random_get(mem2, 0, 32)
        assert mem1.read_bytes(0, 32) == mem2.read_bytes(0, 32)
        mem3 = LinearMemory(1)
        WasiAPI(random_seed=8).random_get(mem3, 0, 32)
        assert mem3.read_bytes(0, 32) != mem1.read_bytes(0, 32)

    def test_proc_exit_raises(self, api):
        wasi, mem = api
        with pytest.raises(ExitProc) as exc:
            wasi.proc_exit(mem, 3)
        assert exc.value.code == 3
        assert wasi.exit_code == 3

    def test_host_calls_charge_instructions(self, api):
        wasi, mem = api
        before = wasi.cpu.counters.instructions
        _write_iov(mem, 64, 256, b"x" * 800)
        wasi.fd_write(mem, 1, 64, 1, 128)
        charged = wasi.cpu.counters.instructions - before
        assert charged > 100  # syscall base + copy cost
