#!/usr/bin/env python3
"""Regenerate the golden static-audit reports pinned by test_audit.py.

Run after an *intended* analyzer or compiler change::

    PYTHONPATH=src python tests/golden/regen_audit_golden.py

and review the diff — a golden change is a behavior change.
"""

import json
import os
import sys

_HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, os.path.join(_HERE, "..", "..", "src"))

from repro.analysis.audit import audit_wasm       # noqa: E402
from repro.bench import get                       # noqa: E402
from repro.compiler import compile_source         # noqa: E402

BENCHES = ("quicksort", "sha", "gemm")


def main():
    for name in BENCHES:
        bench = get(name)
        wasm = compile_source(bench.source, opt_level=2,
                              defines=bench.defines_for("test")).wasm_bytes
        audit = audit_wasm(wasm, name=name)
        payload = {"name": name,
                   "diagnostics": [d.key() for d in audit.diagnostics]}
        path = os.path.join(_HERE, f"audit_{name}.json")
        with open(path, "w") as f:
            json.dump(payload, f, indent=1, sort_keys=True)
            f.write("\n")
        print(f"wrote {path} ({len(payload['diagnostics'])} diagnostic(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
