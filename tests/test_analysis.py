"""Tests for ``repro.analysis``: CFG reconstruction, the worklist dataflow
engine, liveness, interval/range analysis, and static metrics.

The range analysis is additionally checked *differentially*: hypothesis
generates small structured programs, the real interpreter executes them
with a memory-access trace installed, and every access the analysis
claimed in-bounds must stay inside the module's minimum memory.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (build_cfg, dead_stores, function_ranges,
                            live_variables, module_report, provable_inbounds,
                            solve)
from repro.analysis.liveness import LivenessAnalysis
from repro.bench import ALL_BENCHMARKS
from repro.compiler import compile_source
from repro.errors import Trap
from repro.hw import CPUModel
from repro.isa.memory import LinearMemory
from repro.runtimes.interp.engine import (CLASSIC_PROFILE, Interpreter,
                                          prepare_function)
from repro.wasm import I32, ModuleBuilder, decode_module
from repro.wasm import opcodes as op

PAGE = 65536


# ---------------------------------------------------------------------------
# Shared helpers
# ---------------------------------------------------------------------------


def build_one(build, params=0, results=(I32,), pages=1):
    """Build a single-function module; returns (module, func)."""
    mb = ModuleBuilder()
    if pages:
        mb.set_memory(pages)
    fb = mb.function("f", [I32] * params, list(results), export=True)
    build(fb)
    module = mb.build()          # build() validates: agreement with validator
    return module, module.functions[0]


def check_cfg_invariants(cfg, func):
    """The round-trip invariants every CFG must satisfy."""
    n = len(func.body)
    blocks = cfg.blocks

    # The synthetic exit block is last and empty.
    exit_block = blocks[cfg.exit_index]
    assert cfg.exit_index == len(blocks) - 1
    assert exit_block.start == exit_block.end == n

    # Partition: every pc lies in exactly one real block.
    covered = []
    for block in blocks[:-1]:
        assert 0 <= block.start < block.end <= n
        covered.extend(block.pcs())
    assert sorted(covered) == list(range(n))
    assert len(covered) == len(set(covered))

    # block_of agrees with the partition.
    for block in blocks[:-1]:
        for pc in block.pcs():
            assert cfg.block_at(pc) == block.index

    # Edges are symmetric and land on block starts.
    starts = {b.start: b.index for b in blocks}
    for block in blocks:
        for succ in block.succs:
            assert 0 <= succ < len(blocks)
            assert block.index in blocks[succ].preds
        for pred in block.preds:
            assert block.index in blocks[pred].succs
    for block in blocks[:-1]:
        term = block.end - 1
        for target in cfg.branch_targets(term):
            assert target == n or target in starts

    # Reverse postorder visits the entry first and only reachable blocks.
    order = cfg.rpo()
    reach = cfg.reachable()
    assert order[0] == 0
    assert set(order) == reach
    assert len(order) == len(set(order))


def run_traced(module, args=(), pages=1):
    """Execute function 0 in the interpreter, tracing memory accesses."""
    prepared = [("wasm", prepare_function(module, module.functions[0], 0))]
    interp = Interpreter(CLASSIC_PROFILE, CPUModel(), LinearMemory(pages),
                         [], [], prepared)
    interp.set_signatures(module)
    accesses = []
    interp.trace_memory = (
        lambda fidx, pc, addr, size, st: accesses.append((pc, addr, size)))
    trapped = False
    try:
        result = interp.call_index(0, list(args))
    except Trap:
        trapped = True
        result = None
    return result, accesses, trapped


# ---------------------------------------------------------------------------
# CFG reconstruction
# ---------------------------------------------------------------------------


class TestCfg:
    def test_straight_line(self):
        module, func = build_one(lambda fb: fb.i32_const(7))
        cfg = build_cfg(func, module)
        check_cfg_invariants(cfg, func)
        assert len(cfg.blocks) == 2           # one real block + exit
        assert cfg.blocks[0].succs == [cfg.exit_index]
        assert cfg.unreachable_pcs() == []

    def test_if_else_diamond(self):
        def build(fb):
            fb.local_get(0)
            fb.if_("x", I32)
            fb.i32_const(10)
            fb.else_()
            fb.i32_const(20)
            fb.end()

        module, func = build_one(build, params=1)
        cfg = build_cfg(func, module)
        check_cfg_invariants(cfg, func)
        # The IF terminator splits: true edge to the then-arm (pc+1).
        if_block = cfg.blocks[cfg.block_at(1)]
        assert if_block.true_succ is not None
        assert cfg.blocks[if_block.true_succ].start == 2
        assert len(if_block.succs) == 2

    def test_loop_backedge_targets_loop_pc(self):
        def build(fb):
            i = fb.add_local(I32)
            fb.block("out")
            fb.loop("top")
            fb.local_get(i).i32_const(5).emit(op.I32_GE_S).br_if("out")
            fb.local_get(i).i32_const(1).emit(op.I32_ADD).local_set(i)
            fb.br("top")
            fb.end().end()
            fb.local_get(i)

        module, func = build_one(build)
        cfg = build_cfg(func, module)
        check_cfg_invariants(cfg, func)
        loop_pc = next(pc for pc, ins in enumerate(func.body)
                       if ins[0] == op.LOOP)
        br_pc = next(pc for pc, ins in enumerate(func.body)
                     if ins[0] == op.BR)
        assert cfg.branch_targets(br_pc) == [loop_pc]
        # The loop header has at least two predecessors (entry + backedge).
        header = cfg.blocks[cfg.block_at(loop_pc)]
        assert len(header.preds) >= 2

    def test_br_table_edges(self):
        def build(fb):
            fb.block("a")
            fb.block("b")
            fb.block("c")
            fb.local_get(0)
            fb.br_table(["a", "b"], "c")
            fb.end()
            fb.end()
            fb.end()
            fb.i32_const(1)

        module, func = build_one(build, params=1)
        cfg = build_cfg(func, module)
        check_cfg_invariants(cfg, func)
        table_pc = next(pc for pc, ins in enumerate(func.body)
                        if ins[0] == op.BR_TABLE)
        targets = cfg.branch_targets(table_pc)
        assert len(set(targets)) == 3          # three distinct END landings

    def test_compiled_minic_function(self):
        source = """
        int a[16];
        int main(void) {
            int i;
            for (i = 0; i < 16; i++) a[i] = i * i;
            return a[7];
        }
        """
        module = decode_module(compile_source(source).wasm_bytes)
        for func in module.functions:
            check_cfg_invariants(build_cfg(func, module), func)


# ---------------------------------------------------------------------------
# Validator / CFG agreement on unreachable code (the bugfix sweep)
# ---------------------------------------------------------------------------


class TestValidatorCfgAgreement:
    """Both layers must accept dead code after a transfer inside a block
    and agree on which pcs can never execute."""

    def test_dead_code_after_br_in_block(self):
        def build(fb):
            fb.block("b")
            fb.br("b")
            fb.i32_const(111).emit(op.DROP)    # dead, still validated
            fb.end()
            fb.i32_const(5)

        # ModuleBuilder.build() validates: acceptance is half the contract.
        module, func = build_one(build)
        cfg = build_cfg(func, module)
        check_cfg_invariants(cfg, func)
        dead = set(cfg.unreachable_pcs())
        const_pc = next(pc for pc, ins in enumerate(func.body)
                        if ins[0] == op.I32_CONST and ins[1] == 111)
        assert const_pc in dead and const_pc + 1 in dead
        # The code after END is live again.
        live_pc = next(pc for pc, ins in enumerate(func.body)
                       if ins[0] == op.I32_CONST and ins[1] == 5)
        assert cfg.block_at(live_pc) in cfg.reachable()
        result, _, trapped = run_traced(module)
        assert result == 5 and not trapped

    def test_dead_code_after_unreachable_in_if(self):
        def build(fb):
            fb.local_get(0)
            fb.if_("x")
            fb.emit(op.UNREACHABLE)
            fb.i32_const(9).emit(op.DROP)      # dead
            fb.end()
            fb.i32_const(3)

        module, func = build_one(build, params=1)
        cfg = build_cfg(func, module)
        check_cfg_invariants(cfg, func)
        dead = set(cfg.unreachable_pcs())
        const_pc = next(pc for pc, ins in enumerate(func.body)
                        if ins[0] == op.I32_CONST and ins[1] == 9)
        assert const_pc in dead
        result, _, trapped = run_traced(module, (0,))
        assert result == 3 and not trapped

    def test_if_with_both_arms_branching(self):
        def build(fb):
            fb.block("out")
            fb.local_get(0)
            fb.if_("x")
            fb.br("out")
            fb.else_()
            fb.br("out")
            fb.end()
            fb.i32_const(42).emit(op.DROP)     # dead: both arms left
            fb.end()
            fb.i32_const(1)

        module, func = build_one(build, params=1)
        cfg = build_cfg(func, module)
        check_cfg_invariants(cfg, func)
        dead = set(cfg.unreachable_pcs())
        const_pc = next(pc for pc, ins in enumerate(func.body)
                        if ins[0] == op.I32_CONST and ins[1] == 42)
        assert const_pc in dead
        for args in ((0,), (1,)):
            result, _, trapped = run_traced(module, args)
            assert result == 1 and not trapped

    def test_dead_nested_block_partitions_cleanly(self):
        def build(fb):
            fb.block("outer")
            fb.br("outer")
            fb.block("inner")                  # a whole dead nested block
            fb.i32_const(1).br_if("inner")
            fb.end()
            fb.end()
            fb.i32_const(8)

        module, func = build_one(build)
        cfg = build_cfg(func, module)
        check_cfg_invariants(cfg, func)
        result, _, trapped = run_traced(module)
        assert result == 8 and not trapped

    def test_every_bench_function_agrees(self):
        # Spot-check a real program end to end: whatever the validator
        # accepted, the CFG must partition, including dead regions.
        source = """
        int classify(int x) {
            if (x < 0) return -1;
            if (x == 0) return 0;
            return 1;
        }
        int main(void) {
            return classify(3) + classify(-3);
        }
        """
        module = decode_module(compile_source(source).wasm_bytes)
        for func in module.functions:
            cfg = build_cfg(func, module)
            check_cfg_invariants(cfg, func)


# ---------------------------------------------------------------------------
# Liveness and dead stores
# ---------------------------------------------------------------------------


class TestLiveness:
    def test_dead_store_detected(self):
        def build(fb):
            x = fb.add_local(I32)
            fb.i32_const(1).local_set(x)       # dead: overwritten below
            fb.i32_const(2).local_set(x)
            fb.local_get(x)

        module, func = build_one(build)
        dead = dead_stores(module, func)
        first_set = next(pc for pc, ins in enumerate(func.body)
                         if ins[0] == op.LOCAL_SET)
        assert dead == [first_set]

    def test_live_through_loop(self):
        def build(fb):
            i = fb.add_local(I32)
            acc = fb.add_local(I32)
            fb.block("out")
            fb.loop("top")
            fb.local_get(i).i32_const(10).emit(op.I32_GE_S).br_if("out")
            fb.local_get(acc).local_get(i).emit(op.I32_ADD).local_set(acc)
            fb.local_get(i).i32_const(1).emit(op.I32_ADD).local_set(i)
            fb.br("top")
            fb.end().end()
            fb.local_get(acc)

        module, func = build_one(build)
        assert dead_stores(module, func) == []
        cfg, entry_facts, _ = live_variables(module, func)
        # Nothing is live at function entry: both locals are zero-init
        # and written before read... except the loop reads them first.
        assert entry_facts[0] is not None

    def test_tee_is_pure_definition(self):
        def build(fb):
            x = fb.add_local(I32)
            fb.i32_const(3).local_tee(x)       # tee defines x, reads stack
            fb.emit(op.DROP)
            fb.i32_const(4).local_set(x)       # x still dead after this?
            fb.local_get(x)

        module, func = build_one(build)
        dead = dead_stores(module, func)
        tee_pc = next(pc for pc, ins in enumerate(func.body)
                      if ins[0] == op.LOCAL_TEE)
        assert tee_pc in dead                  # its value is overwritten


# ---------------------------------------------------------------------------
# Range analysis: precision on the shapes the JIT cares about
# ---------------------------------------------------------------------------

ARRAY_LOOP = """
int data[64];
int main(void) {
    int i;
    for (i = 0; i < 64; i++)
        data[i] = data[i] + i;
    return data[10];
}
"""

POINTER_CHASE = """
int next[256];
int main(void) {
    int i, p = 0;
    for (i = 0; i < 256; i++) next[i] = (i * 7 + 1) & 255;
    for (i = 0; i < 1000; i++) p = next[p * 4 / 4];
    return p;
}
"""


def _module_totals(module):
    """(total reachable mem ops, total proven) across all functions."""
    total = proved = 0
    for func in module.functions:
        ranges = function_ranges(module, func)
        total += ranges.mem_ops
        proved += len(ranges.inbounds)
    return total, proved


class TestRanges:
    def test_constant_address_proven(self):
        def build(fb):
            fb.i32_const(128)
            fb.emit(op.I32_LOAD, 2, 0)

        module, func = build_one(build)
        ranges = function_ranges(module, func)
        assert ranges.mem_ops == 1
        assert len(ranges.inbounds) == 1

    def test_constant_oob_not_proven(self):
        def build(fb):
            fb.i32_const(PAGE - 2)             # 4-byte load pokes past end
            fb.emit(op.I32_LOAD, 2, 0)

        module, func = build_one(build)
        assert function_ranges(module, func).inbounds == frozenset()

    def test_offset_counts_toward_bound(self):
        def build(fb):
            fb.i32_const(0)
            fb.emit(op.I32_LOAD, 2, PAGE - 2)  # offset pushes it OOB

        module, func = build_one(build)
        assert function_ranges(module, func).inbounds == frozenset()

    def test_unguarded_parameter_not_proven(self):
        def build(fb):
            fb.local_get(0)
            fb.emit(op.I32_LOAD, 2, 0)

        module, func = build_one(build, params=1)
        assert function_ranges(module, func).inbounds == frozenset()

    def test_guarded_parameter_proven(self):
        def build(fb):
            fb.block("out")
            fb.local_get(0).i32_const(1024).emit(op.I32_GE_U).br_if("out")
            fb.local_get(0)
            fb.emit(op.I32_LOAD, 2, 0)
            fb.emit(op.DROP)
            fb.end()
            fb.i32_const(0)

        module, func = build_one(build, params=1)
        ranges = function_ranges(module, func)
        assert len(ranges.inbounds) == 1       # unsigned guard pins [0,1023]

    def test_array_loop_fully_proven(self):
        module = decode_module(compile_source(ARRAY_LOOP).wasm_bytes)
        total, proved = _module_totals(module)
        assert total > 0
        assert proved == total          # counted loop over a sized array

    def test_pointer_chase_keeps_checks(self):
        module = decode_module(compile_source(POINTER_CHASE).wasm_bytes)
        total, proved = _module_totals(module)
        # The chased load's index is data-dependent: not provable.
        assert proved < total

    def test_widening_terminates_on_unbounded_loop(self):
        def build(fb):
            i = fb.add_local(I32)
            fb.block("out")
            fb.loop("top")
            fb.local_get(i).emit(op.I32_LOAD, 2, 0).i32_const(0)
            fb.emit(op.I32_EQ).br_if("out")
            fb.local_get(i).i32_const(4).emit(op.I32_ADD).local_set(i)
            fb.br("top")
            fb.end().end()
            fb.local_get(i)

        module, func = build_one(build)
        ranges = function_ranges(module, func)   # must not diverge
        assert ranges.inbounds == frozenset()    # i grows without bound


# ---------------------------------------------------------------------------
# Differential soundness: analysis claims vs. real execution
# ---------------------------------------------------------------------------

# A tiny structured-program generator.  Each statement compiles to valid
# Wasm over four i32 locals; masks and offsets are chosen so that some
# accesses are provably safe and others genuinely out of range.

_MASKS = [0xFF, 0xFFF, 0xFFFF, 0x1FFFF]
_OFFSETS = [0, 4, 100, PAGE - 4, PAGE + 8]

_leaf = st.one_of(
    st.tuples(st.just("const"), st.integers(0, 3),
              st.integers(-8, PAGE + 16)),
    st.tuples(st.just("binop"), st.integers(0, 3), st.integers(0, 3),
              st.sampled_from(["add", "sub", "mul", "and"]),
              st.integers(0, 64)),
    st.tuples(st.just("store"), st.integers(0, 3),
              st.sampled_from(_MASKS), st.sampled_from(_OFFSETS)),
    st.tuples(st.just("load"), st.integers(0, 3), st.integers(0, 3),
              st.sampled_from(_MASKS), st.sampled_from(_OFFSETS)),
)

_stmt = st.recursive(
    _leaf,
    lambda inner: st.one_of(
        st.tuples(st.just("loop"), st.integers(0, 3), st.integers(1, 8),
                  st.lists(inner, min_size=1, max_size=3)),
        st.tuples(st.just("if"), st.integers(0, 3), st.integers(0, 256),
                  st.lists(inner, min_size=1, max_size=3),
                  st.lists(inner, max_size=2)),
    ),
    max_leaves=12,
)

_ARITH = {"add": op.I32_ADD, "sub": op.I32_SUB, "mul": op.I32_MUL,
          "and": op.I32_AND}


def _emit_stmt(fb, stmt, depth=0):
    kind = stmt[0]
    if kind == "const":
        fb.i32_const(stmt[2]).local_set(stmt[1])
    elif kind == "binop":
        _, dst, src, opname, c = stmt
        fb.local_get(src).i32_const(c).emit(_ARITH[opname]).local_set(dst)
    elif kind == "store":
        _, src, mask, offset = stmt
        fb.local_get(src).i32_const(mask).emit(op.I32_AND)
        fb.i32_const(7)
        fb.emit(op.I32_STORE, 2, offset)
    elif kind == "load":
        _, dst, src, mask, offset = stmt
        fb.local_get(src).i32_const(mask).emit(op.I32_AND)
        fb.emit(op.I32_LOAD, 2, offset)
        fb.local_set(dst)
    elif kind == "loop":
        _, _unused, trip, body = stmt
        # Counters live in reserved locals (one per nesting depth) that
        # leaf statements never write, so every loop terminates; trip
        # counts shrink with depth to bound total work.
        ivar = 4 + min(depth, 11)
        trip = min(trip, (8, 4, 2)[depth] if depth < 3 else 1)
        out = f"out{depth}"
        top = f"top{depth}"
        fb.i32_const(0).local_set(ivar)
        fb.block(out)
        fb.loop(top)
        fb.local_get(ivar).i32_const(trip).emit(op.I32_GE_S).br_if(out)
        for s in body:
            _emit_stmt(fb, s, depth + 1)
        fb.local_get(ivar).i32_const(1).emit(op.I32_ADD).local_set(ivar)
        fb.br(top)
        fb.end().end()
    elif kind == "if":
        _, cond, c, then_body, else_body = stmt
        fb.local_get(cond).i32_const(c).emit(op.I32_LT_S)
        fb.if_(f"if{depth}")
        for s in then_body:
            _emit_stmt(fb, s, depth + 1)
        if else_body:
            fb.else_()
            for s in else_body:
                _emit_stmt(fb, s, depth + 1)
        fb.end()


def _build_program(stmts):
    mb = ModuleBuilder()
    mb.set_memory(1)
    fb = mb.function("f", [], [I32], export=True)
    for _ in range(16):                 # 0-3 data, 4-15 loop counters
        fb.add_local(I32)
    for s in stmts:
        _emit_stmt(fb, s)
    fb.local_get(0)
    return mb.build()


class TestRangeSoundness:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(_stmt, min_size=1, max_size=6))
    def test_claimed_inbounds_never_escape_memory(self, stmts):
        module = _build_program(stmts)
        func = module.functions[0]
        claimed = provable_inbounds(module, func)
        _, accesses, _ = run_traced(module)
        for pc, addr, size in accesses:
            if pc in claimed:
                assert 0 <= addr and addr + size <= PAGE, (
                    f"analysis claimed pc {pc} in bounds but it accessed "
                    f"[{addr}, {addr + size})")

    @settings(max_examples=60, deadline=None)
    @given(st.lists(_stmt, min_size=1, max_size=6))
    def test_cfg_invariants_on_generated_programs(self, stmts):
        module = _build_program(stmts)
        func = module.functions[0]
        check_cfg_invariants(build_cfg(func, module), func)


# ---------------------------------------------------------------------------
# Static metrics
# ---------------------------------------------------------------------------


class TestMetrics:
    def test_module_report_shape(self):
        module = decode_module(compile_source(ARRAY_LOOP).wasm_bytes)
        report = module_report(module)
        assert report.instructions > 0
        assert sum(report.mix.values()) == report.instructions
        assert 0.0 <= report.elimination_ratio <= 1.0
        assert report.checks_kept == report.mem_ops - report.checks_eliminated
        assert report.max_loop_depth >= 1

    def test_loop_depth_counts_nesting(self):
        source = """
        int m[8];
        int main(void) {
            int i, j, k, acc = 0;
            for (i = 0; i < 2; i++)
                for (j = 0; j < 2; j++)
                    for (k = 0; k < 2; k++)
                        acc += m[(i + j + k) & 7];
            return acc;
        }
        """
        module = decode_module(compile_source(source).wasm_bytes)
        report = module_report(module)
        assert report.max_loop_depth >= 3


# ---------------------------------------------------------------------------
# The full WABench sweep (slow): CFG round-trip on all 50 modules
# ---------------------------------------------------------------------------


@pytest.mark.slow
@pytest.mark.parametrize("bench", ALL_BENCHMARKS, ids=lambda b: b.name)
def test_cfg_roundtrip_on_wabench(bench):
    result = compile_source(bench.source, defines=bench.defines_for("test"))
    module = decode_module(result.wasm_bytes)
    for func in module.functions:
        check_cfg_invariants(build_cfg(func, module), func)
