"""Static auditor: lints, golden reports, LEB128 minimality, baselines,
the static-vs-dynamic cross-checks, and the fuzz static pre-oracle."""

import json
import os

import pytest

from repro.analysis.audit import (DynamicProfile, audit_benchmark,
                                  audit_wasm, compare_baseline,
                                  dynamic_profile, run_suite_audit)
from repro.analysis.callgraph import build_call_graph
from repro.bench import get as get_bench
from repro.compiler import compile_source
from repro.wasm import leb128
from repro.wasm.decoder import decode_module_with_stats

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")
GOLDEN_BENCHES = ("quicksort", "sha", "gemm")


def _bench_wasm(name, opt=2, size="test"):
    bench = get_bench(name)
    return compile_source(bench.source, opt_level=opt,
                          defines=bench.defines_for(size)).wasm_bytes


# -- golden lint reports ----------------------------------------------------


@pytest.mark.parametrize("name", GOLDEN_BENCHES)
def test_golden_lint_report(name):
    """The static diagnostics of three fixed benchmarks are pinned.

    Regenerate after an intended analyzer change with::

        PYTHONPATH=src python tests/golden/regen_audit_golden.py
    """
    audit = audit_wasm(_bench_wasm(name), name=name)
    got = {"name": name,
           "diagnostics": [d.key() for d in audit.diagnostics]}
    path = os.path.join(GOLDEN_DIR, f"audit_{name}.json")
    with open(path) as f:
        expected = json.load(f)
    assert got == expected


# -- LEB128 minimality ------------------------------------------------------


def test_decode_u_ex_flags_non_minimal():
    assert leb128.decode_u_ex(b"\x00", 0) == (0, 1, True)
    assert leb128.decode_u_ex(b"\x80\x00", 0) == (0, 2, False)
    assert leb128.decode_u_ex(b"\xff\x01", 0) == (255, 2, True)
    assert leb128.decode_u_ex(b"\xff\x81\x00", 0) == (255, 3, False)


def test_decode_s_ex_flags_non_minimal():
    assert leb128.decode_s_ex(b"\x7f", 0) == (-1, 1, True)
    assert leb128.decode_s_ex(b"\xff\x7f", 0) == (-1, 2, False)
    assert leb128.decode_s_ex(b"\x3f", 0) == (63, 1, True)
    assert leb128.decode_s_ex(b"\xbf\x00", 0) == (63, 2, False)
    # 0x40 has the sign bit set in 7 bits, so two bytes ARE minimal.
    assert leb128.decode_s_ex(b"\xc0\x00", 0) == (64, 2, True)


def test_encoder_emits_minimal_lebs():
    """Round numbers: everything wasicc emits must decode with zero
    non-minimal LEB128 sites (values the encoder itself produced)."""
    for name in GOLDEN_BENCHES:
        _, stats = decode_module_with_stats(_bench_wasm(name))
        assert stats.non_minimal == ()


def _patch_section_size_non_minimal(wasm):
    """Rewrite the first section's size LEB to a 2-byte form.

    Byte 8 is the first section id, byte 9 its (single-byte) size; the
    padded form keeps the value, so the module still decodes.
    """
    size = wasm[9]
    assert size < 0x80
    return wasm[:9] + bytes([size | 0x80, 0x00]) + wasm[10:]


def test_non_minimal_module_regression():
    wasm = _bench_wasm("quicksort")
    patched = _patch_section_size_non_minimal(wasm)

    module, stats = decode_module_with_stats(patched)
    assert stats.non_minimal == (9,)
    clean_module, clean_stats = decode_module_with_stats(wasm)
    assert clean_stats.non_minimal == ()
    # Decoding is unaffected; only the stats record the padded site.
    assert len(module.functions) == len(clean_module.functions)

    audit = audit_wasm(patched, name="patched")
    wa006 = [d for d in audit.diagnostics if d.id == "WA006"]
    assert len(wa006) == 1
    assert "offset(s) 9" in wa006[0].message


# -- suite audit: cross-checks, determinism, baseline gate ------------------


def test_audit_benchmark_record():
    record = audit_benchmark("quicksort", "test", 2)
    assert record["stack_bound_ok"]
    assert record["deviations"] == []
    assert record["dynamic_ops"] > 0
    shares = sum(record["dynamic_mix"].values())
    assert shares == pytest.approx(1.0, abs=0.01)
    assert any(d.startswith("WA001") for d in record["diagnostics"])


def test_audit_benchmark_deterministic():
    first = audit_benchmark("quicksort", "test", 2)
    second = audit_benchmark("quicksort", "test", 2)
    assert first == second


def test_suite_audit_json_deterministic():
    one = run_suite_audit("test", 2, benchmarks=["quicksort"])
    two = run_suite_audit("test", 2, benchmarks=["quicksort"])
    assert one.to_json() == two.to_json()
    assert "quicksort" in one.render()


def test_compare_baseline_gate():
    suite = run_suite_audit("test", 2, benchmarks=["quicksort"])
    baseline = suite.baseline_dict()
    regressions, notes = compare_baseline(suite, baseline)
    assert regressions == []
    assert notes == []

    # A diagnostic the baseline does not expect is a regression ...
    entry = baseline["benchmarks"]["quicksort"]
    removed = entry["diagnostics"].pop()
    regressions, notes = compare_baseline(suite, baseline)
    assert any("new diagnostic" in r for r in regressions)

    # ... and a baseline entry that no longer fires is only a note.
    entry["diagnostics"].append(removed)
    entry["diagnostics"].append("WA003 99:-1 phantom entry")
    regressions, notes = compare_baseline(suite, baseline)
    assert regressions == []
    assert any("no longer fires" in n for n in notes)

    # Version and size mismatches always fail.
    stale = dict(baseline, audit_version=-1)
    regressions, _ = compare_baseline(suite, stale)
    assert regressions
    wrong_size = dict(baseline, size="ref")
    regressions, _ = compare_baseline(suite, wrong_size)
    assert regressions


def test_committed_baseline_matches_quicksort():
    """The committed AUDIT_baseline.json gates the current analyzer
    output (spot check on one benchmark; CI sweeps all 50)."""
    path = os.path.join(os.path.dirname(__file__), "..",
                        "AUDIT_baseline.json")
    with open(path) as f:
        baseline = json.load(f)
    suite = run_suite_audit("test", 2, benchmarks=["quicksort"])
    regressions, _notes = compare_baseline(suite, baseline)
    assert regressions == []


# -- static max-stack bound vs the instrumented interpreter -----------------


from .conftest import fuzz_seeds  # noqa: E402


@pytest.mark.fuzz
@pytest.mark.parametrize("seed", fuzz_seeds(5, salt=81))
@pytest.mark.parametrize("opt", [0, 2])
def test_static_stack_bound_dominates_observed(seed, opt):
    """The per-function static bound is sound: no dispatch of the
    reference loop ever observes a deeper operand stack."""
    from repro.fuzz.generator import generate_program
    from repro.runtimes.interpreters import Wasm3Runtime

    program = generate_program(seed)
    wasm = compile_source(program.source, opt_level=opt).wasm_bytes
    module, _stats = decode_module_with_stats(wasm)
    graph = build_call_graph(module)

    profile = dynamic_profile(wasm)
    assert profile.total_ops > 0
    for index, observed in profile.max_stack.items():
        bound = graph.max_stack[index]
        assert bound is not None
        assert observed <= bound, \
            f"{graph.names[index]}: observed {observed} > bound {bound}"


def test_dynamic_profile_matches_plain_run_behavior():
    """Attaching the observer must not change modeled execution."""
    from repro.runtimes.interpreters import Wasm3Runtime

    wasm = _bench_wasm("quicksort")
    plain = Wasm3Runtime().run(wasm)
    rt = Wasm3Runtime()
    rt.instr_profile = DynamicProfile()
    instrumented = rt.run(wasm)
    assert instrumented.to_json() == plain.to_json()


# -- fuzz static pre-oracle -------------------------------------------------


def test_compute_static_findings_clean_on_compiler_output():
    from repro.fuzz.engines import compute_static_findings
    assert compute_static_findings(_bench_wasm("quicksort")) == []


def test_compute_static_findings_flags_non_minimal():
    from repro.fuzz.engines import compute_static_findings
    patched = _patch_section_size_non_minimal(_bench_wasm("quicksort"))
    findings = compute_static_findings(patched)
    assert any("non-minimal" in f for f in findings)
    # The padded byte also breaks the byte-identical round-trip.
    assert any("round-trip" in f for f in findings)


def test_compute_static_findings_rejects_garbage():
    from repro.fuzz.engines import compute_static_findings
    findings = compute_static_findings(b"\x00asm\x01\x00\x00\x00\xff")
    assert findings and "decoder rejected" in findings[0]


def test_check_program_runs_static_oracle(tmp_path):
    from repro.fuzz.engines import CellRunner
    from repro.fuzz.generator import generate_program
    from repro.fuzz.oracle import check_program
    from repro.harness.cache import ArtifactCache

    runner = CellRunner(cache=ArtifactCache(str(tmp_path)))
    source = generate_program(42).source
    report = check_program(source, engines=("native", "wasm3"),
                           opt_levels=(0, 2), runner=runner,
                           check_determinism=False)
    assert report.ok
    assert [k for k in runner.stats.misses if k == "fuzz-static"]
    # Second check served from the cache.
    check_program(source, engines=("native", "wasm3"), opt_levels=(0, 2),
                  runner=runner, check_determinism=False)
    assert [k for k in runner.stats.hits if k == "fuzz-static"]


def test_static_divergence_reported(tmp_path, monkeypatch):
    """A static finding surfaces as a kind='static' divergence."""
    from repro.fuzz import engines as fuzz_engines
    from repro.fuzz.engines import CellRunner
    from repro.fuzz.oracle import check_program

    monkeypatch.setattr(fuzz_engines, "compute_static_findings",
                        lambda wasm: ["injected analyzer crash"])
    report = check_program("int main() { return 0; }",
                           engines=("native",), opt_levels=(0,),
                           runner=CellRunner(), check_determinism=False)
    static = [d for d in report.divergences if d.kind == "static"]
    assert len(static) == 1
    assert static[0].cell == ("static", 0)
    assert "injected" in static[0].detail
