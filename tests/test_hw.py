"""Unit and property tests for the hardware performance model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hw import (BranchConfig, BranchPredictor, Cache, CacheConfig,
                      CacheHierarchy, CPUModel, MachineConfig,
                      MemoryAccountant, PerfCounters, PAGE_BYTES)
from repro.hw.counters import CacheLevelStats


class TestCache:
    def _mk(self, size=1024, ways=2, line=64):
        stats = CacheLevelStats()
        return Cache(CacheConfig("T", size, ways, line, miss_penalty=10),
                     stats), stats

    def test_cold_miss_then_hit(self):
        cache, stats = self._mk()
        assert cache.access_line(5) == 10  # cold miss
        assert cache.access_line(5) == 0   # hit
        assert stats.refs == 2 and stats.misses == 1

    def test_lru_eviction(self):
        cache, stats = self._mk(size=2 * 64, ways=2)  # one set, two ways
        assert cache.num_sets == 1
        cache.access_line(1)
        cache.access_line(2)
        cache.access_line(1)          # make 2 the LRU way
        cache.access_line(3)          # evicts 2
        assert cache.contains_line(1)
        assert not cache.contains_line(2)
        assert cache.contains_line(3)

    def test_set_indexing_no_conflict(self):
        cache, stats = self._mk(size=4 * 64, ways=1)  # 4 direct-mapped sets
        cache.access_line(0)
        cache.access_line(1)
        assert cache.contains_line(0) and cache.contains_line(1)
        cache.access_line(4)  # maps to set 0, evicts line 0
        assert not cache.contains_line(0)

    def test_miss_propagates_to_next_level(self):
        l2s = CacheLevelStats()
        l2 = Cache(CacheConfig("L2", 4096, 4, miss_penalty=30), l2s)
        l1s = CacheLevelStats()
        l1 = Cache(CacheConfig("L1", 512, 2, miss_penalty=10), l1s, l2)
        assert l1.access_line(9) == 40     # both levels miss
        assert l2s.refs == 1 and l2s.misses == 1
        l1.flush()
        assert l1.access_line(9) == 10     # L1 misses, L2 hits
        assert l2s.misses == 1

    def test_non_power_of_two_sets_rejected(self):
        stats = CacheLevelStats()
        with pytest.raises(ValueError):
            Cache(CacheConfig("bad", 3 * 64, 1), stats)

    @given(st.lists(st.integers(min_value=0, max_value=500), max_size=300))
    @settings(max_examples=50, deadline=None)
    def test_hits_plus_misses_equals_refs(self, lines):
        cache, stats = self._mk()
        for line in lines:
            cache.access_line(line)
        assert stats.refs == len(lines)
        assert 0 <= stats.misses <= stats.refs
        assert stats.hits + stats.misses == stats.refs

    @given(st.lists(st.integers(min_value=0, max_value=7), min_size=1,
                    max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_working_set_within_capacity_never_remisses(self, lines):
        # 8 lines fit entirely in a 512B fully-associative-enough cache.
        cache, stats = self._mk(size=8 * 64, ways=8)
        for line in set(lines):
            cache.access_line(line)
        cold = stats.misses
        for line in lines:
            cache.access_line(line)
        assert stats.misses == cold


class TestHierarchy:
    def test_straddling_access_touches_two_lines(self):
        counters = PerfCounters()
        h = CacheHierarchy(MachineConfig(), counters)
        h.data_access(60, 8)  # crosses the 64-byte boundary
        assert counters.l1d.refs == 2

    def test_ifetch_separate_from_data(self):
        counters = PerfCounters()
        h = CacheHierarchy(MachineConfig(), counters)
        h.ifetch_line(1)
        h.data_access(64, 4)
        assert counters.l1i.refs == 1
        assert counters.l1d.refs == 1
        # Both miss into the shared L2.
        assert counters.l2.refs == 2


class TestBranchPredictor:
    def _mk(self):
        counters = PerfCounters()
        return BranchPredictor(BranchConfig(), counters), counters

    def test_loop_branch_learns(self):
        bp, c = self._mk()
        for _ in range(100):
            bp.cond_branch(0x100, True)
        assert c.branches == 100
        # Warmup: the history register churns the gshare index for the
        # first `history_bits` iterations; steady state is perfect.
        assert c.branch_misses <= 16
        misses_at_100 = c.branch_misses
        for _ in range(100):
            bp.cond_branch(0x100, True)
        assert c.branch_misses == misses_at_100

    def test_alternating_pattern_with_history_learns(self):
        bp, c = self._mk()
        for i in range(400):
            bp.cond_branch(0x200, i % 2 == 0)
        # gshare captures the alternation via history after warmup.
        assert c.branch_misses < 40

    def test_random_branch_mispredicts_heavily(self):
        import random
        rng = random.Random(7)
        bp, c = self._mk()
        for _ in range(1000):
            bp.cond_branch(0x300, rng.random() < 0.5)
        assert c.branch_misses > 300

    def test_indirect_repetitive_sequence_predicts(self):
        bp, c = self._mk()
        targets = [10, 20, 30, 40] * 100
        for t in targets:
            bp.indirect_branch(0x400, t)
        assert c.branch_misses < 30

    def test_indirect_random_stream_mispredicts(self):
        import random
        rng = random.Random(3)
        bp, c = self._mk()
        for _ in range(1000):
            bp.indirect_branch(0x400, rng.randrange(64) * 8)
        assert c.branch_misses > 500

    def test_call_ret_pairs_predict(self):
        bp, c = self._mk()
        for i in range(50):
            bp.call(0x1000 + i)
            assert not bp.ret(0x1000 + i)

    def test_ras_overflow_mispredicts_oldest(self):
        bp, c = self._mk()
        depth = BranchConfig().ras_depth
        for i in range(depth + 1):
            bp.call(i)
        # The deepest (oldest) return was pushed out.
        for i in reversed(range(1, depth + 1)):
            assert not bp.ret(i)
        assert bp.ret(0)  # lost from the RAS

    def test_mispredict_adds_stall_cycles(self):
        bp, c = self._mk()
        bp.cond_branch(0x1, True)  # initialized weakly-not-taken: miss
        assert c.stall_cycles == BranchConfig().miss_penalty

    def test_direct_branch_counts_without_missing(self):
        bp, c = self._mk()
        bp.direct_branch()
        assert c.branches == 1 and c.branch_misses == 0

    @given(st.lists(st.tuples(st.integers(0, 1023), st.booleans()),
                    max_size=500))
    @settings(max_examples=30, deadline=None)
    def test_misses_never_exceed_branches(self, events):
        bp, c = self._mk()
        for pc, taken in events:
            bp.cond_branch(pc, taken)
        assert c.branch_misses <= c.branches == len(events)


class TestMemoryAccountant:
    def test_eager_alloc_counts_immediately(self):
        m = MemoryAccountant()
        m.alloc("runtime", 1 << 20)
        assert m.resident_bytes == 1 << 20
        assert m.peak_bytes == 1 << 20

    def test_peak_survives_free(self):
        m = MemoryAccountant()
        m.alloc("compiler", 8 << 20)
        m.free("compiler")
        assert m.resident_bytes == 0
        assert m.peak_bytes == 8 << 20

    def test_lazy_region_counts_touched_pages_only(self):
        m = MemoryAccountant()
        pages = m.lazy_region("linear-memory")
        pages.add(0)
        pages.add(100)
        assert m.resident_bytes == 2 * PAGE_BYTES

    def test_touch_range_covers_partial_pages(self):
        m = MemoryAccountant()
        m.touch_range("heap", PAGE_BYTES - 1, 2)  # straddles two pages
        assert m.resident_bytes == 2 * PAGE_BYTES

    def test_touch_range_empty(self):
        m = MemoryAccountant()
        m.touch_range("heap", 0, 0)
        assert m.resident_bytes == 0

    def test_shrink(self):
        m = MemoryAccountant()
        m.alloc("x", 100)
        m.shrink("x", 30)
        assert m.resident_bytes == 70
        m.shrink("x", 1000)
        assert m.resident_bytes == 0

    def test_negative_alloc_rejected(self):
        m = MemoryAccountant()
        with pytest.raises(ValueError):
            m.alloc("x", -1)

    def test_breakdown(self):
        m = MemoryAccountant()
        m.alloc("a", 10)
        m.touch_page("b", 0)
        assert m.breakdown() == {"a": 10, "b": PAGE_BYTES}

    @given(st.lists(st.tuples(st.sampled_from(["r1", "r2"]),
                              st.integers(0, 1 << 16)), max_size=50))
    @settings(max_examples=30, deadline=None)
    def test_peak_is_monotone(self, allocs):
        m = MemoryAccountant()
        last_peak = 0
        for region, nbytes in allocs:
            m.alloc(region, nbytes)
            assert m.peak_bytes >= last_peak
            last_peak = m.peak_bytes


class TestCounters:
    def test_ipc_bounded_by_issue_width(self):
        c = PerfCounters(issue_width=4)
        c.instructions = 1000
        assert c.ipc <= 4.0

    def test_stalls_reduce_ipc(self):
        c = PerfCounters(issue_width=4)
        c.instructions = 1000
        ipc_no_stall = c.ipc
        c.stall_cycles = 500
        assert c.ipc < ipc_no_stall

    def test_ratios_zero_safe(self):
        c = PerfCounters()
        assert c.branch_miss_ratio == 0.0
        assert c.cache_miss_ratio == 0.0
        assert c.ipc == 0.0

    def test_merge(self):
        a, b = PerfCounters(), PerfCounters()
        a.instructions, b.instructions = 10, 20
        b.l3.refs, b.l3.misses = 5, 2
        a.merge(b)
        assert a.instructions == 30
        assert a.cache_references == 5 and a.cache_misses == 2

    def test_snapshot_keys(self):
        snap = PerfCounters().snapshot()
        for key in ("instructions", "cycles", "ipc", "branch_miss_ratio",
                    "cache_misses", "cache_miss_ratio"):
            assert key in snap


class TestCPUModel:
    def test_report_contains_all_paper_metrics(self):
        cpu = CPUModel()
        cpu.retire(100)
        cpu.data_access(0x1000_0000, 8)
        cpu.cond_branch(0x5, True)
        report = cpu.report()
        for key in ("seconds", "mrss_bytes", "instructions", "ipc",
                    "branch_misses", "cache_misses"):
            assert key in report
        assert report["seconds"] > 0

    def test_seconds_scale_with_frequency(self):
        slow = CPUModel(MachineConfig(frequency_hz=1_000_000))
        fast = CPUModel(MachineConfig(frequency_hz=2_000_000))
        for cpu in (slow, fast):
            cpu.retire(10_000)
        assert slow.seconds == pytest.approx(2 * fast.seconds)
