"""Shared fixtures: compile-and-run helpers used across the test suite."""

import pytest

from repro.compiler import compile_source
from repro.native import nativecc, run_native
from repro.runtimes import make_runtime
from repro.wasi import VirtualFS

ALL_RUNTIMES = ("wasmtime", "wavm", "wasmer", "wasm3", "wamr")


@pytest.fixture(autouse=True)
def _isolated_wabench_cache(tmp_path, monkeypatch):
    """Keep every test away from the user's persistent artifact cache."""
    monkeypatch.setenv("WABENCH_CACHE_DIR", str(tmp_path / "wabench-cache"))


def run_everywhere(source, opt_level=2, defines=None, files=None,
                   runtimes=ALL_RUNTIMES):
    """Compile once, run native + the given runtimes; return dict of results."""
    results = {}
    binary = nativecc(source, opt_level=opt_level, defines=defines)
    results["native"] = run_native(binary, fs=_fs(files))
    artifact = compile_source(source, opt_level=opt_level, defines=defines)
    for name in runtimes:
        results[name] = make_runtime(name).run(artifact.wasm_bytes,
                                               fs=_fs(files))
    return results


def _fs(files):
    fs = VirtualFS()
    for path, data in (files or {}).items():
        fs.add_file(path, data)
    return fs


def run_wamr(source, opt_level=2, defines=None, files=None):
    """Cheapest single-runtime execution for semantics tests."""
    artifact = compile_source(source, opt_level=opt_level, defines=defines)
    return make_runtime("wamr").run(artifact.wasm_bytes, fs=_fs(files))


def run_native_quick(source, opt_level=2, defines=None, files=None):
    binary = nativecc(source, opt_level=opt_level, defines=defines)
    return run_native(binary, fs=_fs(files))


@pytest.fixture
def everywhere():
    return run_everywhere
