"""Shared fixtures: compile-and-run helpers used across the test suite."""

import os

import pytest

from repro.compiler import compile_source
from repro.fuzz.generator import derive_seed
from repro.native import nativecc, run_native
from repro.runtimes import make_runtime
from repro.wasi import VirtualFS

ALL_RUNTIMES = ("wasmtime", "wavm", "wasmer", "wasm3", "wamr")

#: Every generator-driven ("fuzz") test derives its program seeds from
#: this base seed; a failing test's id shows the exact program seed
#: (``seed=<value>``), and setting ``REPRO_FUZZ_SEED=<value>`` replays
#: that very program as the first parameter of every fuzz test — one
#: env var reproduces any CI failure locally.
FUZZ_BASE_SEED = int(os.environ.get("REPRO_FUZZ_SEED", "42"))
_FUZZ_SEED_OVERRIDDEN = "REPRO_FUZZ_SEED" in os.environ


def fuzz_seeds(n, salt=0):
    """``n`` pytest params of derived program seeds, ids = the seed.

    With ``REPRO_FUZZ_SEED`` set, the given seed itself is prepended as
    the first program seed, so the failing ``seed=<value>`` from a CI
    log regenerates the identical program (``generate_program`` is a
    pure function of the seed).
    """
    seeds = [derive_seed(FUZZ_BASE_SEED, salt * 10000 + i)
             for i in range(n)]
    if _FUZZ_SEED_OVERRIDDEN:
        seeds = [FUZZ_BASE_SEED] + seeds[:- 1]
    return [pytest.param(seed, id=f"seed={seed}") for seed in seeds]


def pytest_report_header(config):
    return (f"repro-fuzz base seed: {FUZZ_BASE_SEED} "
            "(override with REPRO_FUZZ_SEED=<int>)")


@pytest.fixture(autouse=True)
def _isolated_wabench_cache(tmp_path, monkeypatch):
    """Keep every test away from the user's persistent artifact cache."""
    monkeypatch.setenv("WABENCH_CACHE_DIR", str(tmp_path / "wabench-cache"))


def run_everywhere(source, opt_level=2, defines=None, files=None,
                   runtimes=ALL_RUNTIMES):
    """Compile once, run native + the given runtimes; return dict of results."""
    results = {}
    binary = nativecc(source, opt_level=opt_level, defines=defines)
    results["native"] = run_native(binary, fs=_fs(files))
    artifact = compile_source(source, opt_level=opt_level, defines=defines)
    for name in runtimes:
        results[name] = make_runtime(name).run(artifact.wasm_bytes,
                                               fs=_fs(files))
    return results


def _fs(files):
    fs = VirtualFS()
    for path, data in (files or {}).items():
        fs.add_file(path, data)
    return fs


def run_wamr(source, opt_level=2, defines=None, files=None):
    """Cheapest single-runtime execution for semantics tests."""
    artifact = compile_source(source, opt_level=opt_level, defines=defines)
    return make_runtime("wamr").run(artifact.wasm_bytes, fs=_fs(files))


def run_native_quick(source, opt_level=2, defines=None, files=None):
    binary = nativecc(source, opt_level=opt_level, defines=defines)
    return run_native(binary, fs=_fs(files))


@pytest.fixture
def everywhere():
    return run_everywhere
