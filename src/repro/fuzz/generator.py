"""Seeded MiniC program generator: well-defined by construction.

Every program this module emits is free of undefined or unbounded
behavior *by construction*, so any divergence between two engines is a
bug in an engine (or the compiler), never in the program:

* integer division and modulo guard the divisor into ``[1, 16]``, so
  neither divide-by-zero nor ``INT_MIN / -1`` can occur;
* shift amounts are masked to ``[0, 31]``;
* every array index is masked to the (power-of-two) array length;
* every loop has a dedicated counter with a static trip count, never
  written inside the body, so total dynamic work is bounded;
* doubles are never cast back to integers (``trunc`` can trap on
  overflow); they flow only through +,-,*, guarded /, fabs and sqrt
  and are observed via ``print_f`` (inf/nan print deterministically);
* integer overflow wraps identically on every engine (two's-complement
  wasm semantics are mirrored by the native backend).

The generator is driven exclusively by ``random.Random(seed)``: the same
``(seed, size_budget)`` pair reproduces the same program on any machine,
which is what makes fuzz failures one-line reproducible.

Two entry points:

* :func:`generate_program` — a MiniC translation unit (multiple
  functions with calls, control flow, globals, arrays, int and double
  arithmetic) rendered one statement per line so the delta-debugging
  reducer can work at statement granularity;
* :func:`generate_module` — a raw Wasm :class:`~repro.wasm.Module`
  built directly with the module builder (straight-line arithmetic over
  locals with embedded memory traffic), for engine tests below the
  MiniC compiler.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

#: Bump when generated-program shape changes; part of fuzz cache keys.
GENERATOR_VERSION = "fuzz-gen-1"

DEFAULT_SIZE_BUDGET = 24

_INT_BIN = ("+", "-", "*", "&", "|", "^")
_INT_CMP = ("==", "!=", "<", ">", "<=", ">=")
_ARRAY_SIZES = (8, 16)          # power-of-two so indices mask cleanly


def derive_seed(base_seed: int, index: int) -> int:
    """The seed of the ``index``-th program of a campaign.

    A splitmix-style mix keeps neighbouring indices decorrelated while
    staying a pure function of ``(base_seed, index)``.
    """
    x = (base_seed + 0x9E3779B97F4A7C15 * (index + 1)) & (2**64 - 1)
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & (2**64 - 1)
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & (2**64 - 1)
    return (x ^ (x >> 31)) & (2**63 - 1)


@dataclass
class GeneratedProgram:
    """One generated MiniC program plus the metadata tests care about."""

    seed: int
    size_budget: int
    source: str
    statement_count: int
    function_names: List[str] = field(default_factory=list)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return self.source


class _Gen:
    """Stateful single-program generator (one instance per program)."""

    def __init__(self, rng: random.Random, size_budget: int):
        self.rng = rng
        self.budget = max(4, size_budget)
        self.statements = 0
        self.fn_counters = 0
        self.counter_decl_idx = -1
        self.lines: List[str] = []
        self.indent = 0
        # Declared names usable in expressions, per category.
        self.int_vars: List[str] = []
        # Read-only ints (loop counters): usable in expressions but
        # never as assignment targets, preserving bounded trip counts.
        self.ro_ints: List[str] = []
        self.double_vars: List[str] = []
        self.arrays: List[Tuple[str, int]] = []
        # Helper functions callable from later code: (name, n_int_params).
        self.int_funcs: List[Tuple[str, int]] = []
        self.double_funcs: List[str] = []

    # -- emission helpers --------------------------------------------------

    def emit(self, text: str) -> None:
        self.lines.append("    " * self.indent + text)

    def stmt(self, text: str) -> None:
        self.emit(text)
        self.statements += 1
        self.budget -= 1

    def fresh_counter(self) -> str:
        self.fn_counters += 1
        return f"lc{self.fn_counters}"

    def begin_counters(self) -> None:
        """Reserve a line for this function's loop-counter declarations.

        Counter names are handed out while the body is generated, so the
        declaration line is patched in (or dropped) at function end.
        """
        self.fn_counters = 0
        self.emit("")          # placeholder, patched by end_counters()
        self.counter_decl_idx = len(self.lines) - 1

    def end_counters(self) -> None:
        if self.fn_counters:
            names = ", ".join(f"lc{k} = 0"
                              for k in range(1, self.fn_counters + 1))
            pad = "    " * (self.indent or 1)
            self.lines[self.counter_decl_idx] = f"{pad}int {names};"
        else:
            del self.lines[self.counter_decl_idx]

    # -- expressions -------------------------------------------------------

    def int_leaf(self) -> str:
        r = self.rng
        readable = self.int_vars + self.ro_ints
        kind = r.randrange(5)
        if kind == 0 or not readable:
            return str(r.choice((r.randint(-9, 9),
                                 r.randint(-100000, 100000))))
        if kind <= 2:
            return r.choice(readable)
        if kind == 3 and self.arrays:
            name, size = r.choice(self.arrays)
            return f"{name}[({self.int_expr(3)}) & {size - 1}]"
        return r.choice(readable)

    def int_expr(self, depth: int = 0) -> str:
        r = self.rng
        if depth >= 3 or r.random() < 0.35:
            return self.int_leaf()
        kind = r.randrange(8)
        a = self.int_expr(depth + 1)
        b = self.int_expr(depth + 1)
        if kind == 0:
            return f"({a} {r.choice(_INT_BIN)} {b})"
        if kind == 1:
            return f"({a} {r.choice(_INT_CMP)} {b})"
        if kind == 2:
            # Guarded division: divisor in [1, 16], never INT_MIN / -1.
            op = r.choice(("/", "%"))
            return f"(({a}) {op} ((({b}) & 15) + 1))"
        if kind == 3:
            op = r.choice(("<<", ">>"))
            return f"(({a}) {op} (({b}) & 31))"
        if kind == 4:
            return f"(({a}) ? ({b}) : ({a} + 1))"
        if kind == 5:
            return f"({r.choice(('-', '~', '!'))}({a}))"
        if kind == 6 and self.int_funcs:
            name, arity = r.choice(self.int_funcs)
            args = ", ".join(self.int_expr(depth + 1)
                             for _ in range(arity))
            return f"{name}({args})"
        return f"({a} {r.choice(_INT_BIN)} {b})"

    def double_leaf(self) -> str:
        r = self.rng
        kind = r.randrange(4)
        if kind == 0 or (not self.double_vars and not self.int_vars):
            return repr(round(r.uniform(-100.0, 100.0), 6))
        if kind == 1 and self.int_vars:
            return f"(double){r.choice(self.int_vars)}"
        if self.double_vars:
            return r.choice(self.double_vars)
        return repr(round(r.uniform(-100.0, 100.0), 6))

    def double_expr(self, depth: int = 0) -> str:
        r = self.rng
        if depth >= 3 or r.random() < 0.4:
            return self.double_leaf()
        kind = r.randrange(5)
        a = self.double_expr(depth + 1)
        b = self.double_expr(depth + 1)
        if kind == 0:
            return f"({a} {r.choice(('+', '-', '*'))} {b})"
        if kind == 1:
            # Guarded: divisor >= 1.0 (NaN propagates deterministically).
            return f"(({a}) / (fabs({b}) + 1.0))"
        if kind == 2:
            return f"sqrt(fabs({a}))"
        if kind == 3 and self.double_funcs:
            return f"{r.choice(self.double_funcs)}({a}, {b})"
        return f"(({a}) < ({b}) ? ({a}) : ({b}))"

    def condition(self) -> str:
        r = self.rng
        if self.double_vars and r.random() < 0.2:
            return (f"{r.choice(self.double_vars)} < "
                    f"{self.double_expr(2)}")
        return f"{self.int_expr(1)} {r.choice(_INT_CMP)} {self.int_expr(2)}"

    # -- statements --------------------------------------------------------

    def gen_statement(self, loop_depth: int) -> None:
        r = self.rng
        choices = ["assign", "assign", "compound", "checksum", "print"]
        if self.arrays:
            choices += ["array_store", "array_store"]
        if self.double_vars:
            choices.append("double_assign")
        if self.int_funcs:
            choices.append("call")
        if loop_depth < 2 and self.budget >= 4:
            choices += ["for", "if", "while"]
        kind = r.choice(choices)
        if kind == "assign":
            self.stmt(f"{r.choice(self.int_vars)} = {self.int_expr()};")
        elif kind == "compound":
            op = r.choice(("+=", "-=", "^=", "|="))
            self.stmt(f"{r.choice(self.int_vars)} {op} "
                      f"{self.int_expr(1)};")
        elif kind == "checksum":
            self.stmt("g_h = g_h * 16777619u ^ (unsigned int)"
                      f"({self.int_expr(1)});")
        elif kind == "array_store":
            name, size = r.choice(self.arrays)
            self.stmt(f"{name}[({self.int_expr(2)}) & {size - 1}] = "
                      f"{self.int_expr(1)};")
        elif kind == "double_assign":
            self.stmt(f"{r.choice(self.double_vars)} = "
                      f"{self.double_expr()};")
        elif kind == "call":
            name, arity = r.choice(self.int_funcs)
            args = ", ".join(self.int_expr(2) for _ in range(arity))
            self.stmt(f"{r.choice(self.int_vars)} = {name}({args});")
        elif kind == "print":
            if self.double_vars and r.random() < 0.25:
                self.stmt(f"print_f({r.choice(self.double_vars)}); "
                          "print_nl();")
            else:
                self.stmt(f"print_i({self.int_expr(1)}); print_nl();")
        elif kind == "if":
            self.stmt(f"if ({self.condition()}) {{")
            self.indent += 1
            self.gen_block(r.randint(1, 2), loop_depth)
            self.indent -= 1
            if r.random() < 0.5 and self.budget > 1:
                self.emit("} else {")
                self.indent += 1
                self.gen_block(1, loop_depth)
                self.indent -= 1
            self.emit("}")
        elif kind == "for":
            c = self.fresh_counter()
            trip = r.randint(2, 10)
            step = r.randint(1, 3)
            self.stmt(f"for ({c} = 0; {c} < {trip}; {c} += {step}) {{")
            self.indent += 1
            self.ro_ints.append(c)
            self.gen_block(r.randint(1, 3), loop_depth + 1)
            self.ro_ints.remove(c)
            self.indent -= 1
            self.emit("}")
        elif kind == "while":
            c = self.fresh_counter()
            trip = r.randint(1, 8)
            self.stmt(f"{c} = {trip};")
            self.stmt(f"while ({c} > 0) {{")
            self.indent += 1
            self.ro_ints.append(c)
            self.gen_block(r.randint(1, 2), loop_depth + 1)
            self.ro_ints.remove(c)
            # The counter strictly decreases: termination by construction.
            self.stmt(f"{c} = {c} - 1;")
            self.indent -= 1
            self.emit("}")

    def gen_block(self, n: int, loop_depth: int) -> None:
        for _ in range(n):
            if self.budget <= 0:
                break
            self.gen_statement(loop_depth)

    # -- whole program -----------------------------------------------------

    def gen_helper_int(self, index: int) -> None:
        r = self.rng
        arity = r.randint(1, 3)
        name = f"fi{index}"
        params = [f"p{k}" for k in range(arity)]
        self.emit(f"int {name}({', '.join('int ' + p for p in params)}) {{")
        self.indent += 1
        outer_ints, outer_doubles = self.int_vars, self.double_vars
        outer_counters, outer_idx = self.fn_counters, self.counter_decl_idx
        # Params shadow nothing: globals stay visible inside helpers.
        self.int_vars = outer_ints + list(params)
        self.double_vars = []
        self.begin_counters()
        self.stmt("int t0 = 0;")
        self.int_vars.append("t0")
        self.stmt(f"t0 = {self.int_expr(1)};")
        self.gen_block(r.randint(1, 3), loop_depth=1)
        self.stmt(f"return {self.int_expr(1)};")
        self.end_counters()
        self.fn_counters, self.counter_decl_idx = outer_counters, outer_idx
        self.int_vars, self.double_vars = outer_ints, outer_doubles
        self.indent -= 1
        self.emit("}")
        self.int_funcs.append((name, arity))

    def gen_helper_double(self, index: int) -> None:
        name = f"fd{index}"
        self.emit(f"double {name}(double x, double y) {{")
        self.indent += 1
        outer_ints, outer_doubles = self.int_vars, self.double_vars
        self.int_vars = []
        self.double_vars = ["x", "y"]
        self.stmt(f"return {self.double_expr()};")
        self.int_vars, self.double_vars = outer_ints, outer_doubles
        self.indent -= 1
        self.emit("}")
        self.double_funcs.append(name)

    def generate(self, seed: int, size_budget: int) -> GeneratedProgram:
        r = self.rng
        # Globals: scalars, the FNV checksum, and 1-2 arrays.
        n_globals = r.randint(1, 3)
        for k in range(n_globals):
            self.emit(f"int g{k} = {r.randint(-1000, 1000)};")
            self.int_vars.append(f"g{k}")
        self.emit("unsigned int g_h = 2166136261u;")
        for k in range(r.randint(1, 2)):
            size = r.choice(_ARRAY_SIZES)
            init = ", ".join(str(r.randint(-100, 100))
                             for _ in range(size))
            self.emit(f"int A{k}[{size}] = {{{init}}};")
            self.arrays.append((f"A{k}", size))

        # Helper functions, callable from everything emitted later.
        for k in range(r.randint(0, 2)):
            self.gen_helper_double(k)
        for k in range(r.randint(1, 3)):
            self.gen_helper_int(k)

        # main: locals, the generated body, then an observation epilogue.
        self.emit("int main(void) {")
        self.indent += 1
        self.begin_counters()
        n_ints = r.randint(2, 4)
        for k in range(n_ints):
            self.stmt(f"int t{k} = {r.randint(-1000, 1000)};")
            self.int_vars.append(f"t{k}")
        n_doubles = r.randint(0, 2)
        for k in range(n_doubles):
            self.stmt(f"double d{k} = {round(r.uniform(-50, 50), 4)!r};")
            self.double_vars.append(f"d{k}")
        while self.budget > 0:
            self.gen_statement(loop_depth=0)
        # Epilogue: observe every live value so silent corruption in any
        # engine shows up in stdout.
        for name in self.int_vars:
            self.stmt(f"print_i({name}); print_nl();")
        for name in self.double_vars:
            self.stmt(f"print_f({name}); print_nl();")
        for name, size in self.arrays:
            c = self.fresh_counter()
            self.stmt(f"for ({c} = 0; {c} < {size}; {c}++) "
                      f"{{ print_i({name}[{c}]); putchar(32); }}")
            self.stmt("print_nl();")
        self.stmt("print_u(g_h); print_nl();")
        self.stmt("return 0;")
        self.end_counters()
        self.indent -= 1
        self.emit("}")

        return GeneratedProgram(
            seed=seed, size_budget=size_budget,
            source="\n".join(self.lines) + "\n",
            statement_count=self.statements,
            function_names=[n for n, _ in self.int_funcs] +
                           self.double_funcs + ["main"])


def generate_program(seed: int,
                     size_budget: int = DEFAULT_SIZE_BUDGET
                     ) -> GeneratedProgram:
    """Generate one well-defined MiniC program for ``seed``."""
    rng = random.Random(seed)
    return _Gen(rng, size_budget).generate(seed, size_budget)


# -- raw Wasm module generation (below the MiniC compiler) ------------------

#: Binary i32 ops safe for arbitrary operands (no trap).
SAFE_I32_BIN = ("i32.add", "i32.sub", "i32.mul", "i32.and", "i32.or",
                "i32.xor", "i32.shl", "i32.shr_s", "i32.shr_u",
                "i32.rotl", "i32.rotr", "i32.eq", "i32.ne", "i32.lt_s",
                "i32.lt_u", "i32.ge_s")
SAFE_I32_UN = ("i32.eqz", "i32.clz", "i32.ctz", "i32.popcnt")


def _abstract_ops(rng: random.Random, size: int) -> List[tuple]:
    """A list of abstract stack ops keeping abstract depth >= 0."""
    ops_out: List[tuple] = []
    depth = 0
    for _ in range(size):
        choices = ["const", "local_get"]
        if depth >= 1:
            choices += ["un", "local_set", "local_tee", "store", "load"]
        if depth >= 2:
            choices += ["bin", "bin"]
        kind = rng.choice(choices)
        if kind == "const":
            ops_out.append(("const", rng.randint(-2**31, 2**31 - 1)))
            depth += 1
        elif kind == "local_get":
            ops_out.append(("local_get", rng.randint(0, 3)))
            depth += 1
        elif kind == "un":
            ops_out.append(("un", rng.choice(SAFE_I32_UN)))
        elif kind == "bin":
            ops_out.append(("bin", rng.choice(SAFE_I32_BIN)))
            depth -= 1
        elif kind == "local_set":
            ops_out.append(("local_set", rng.randint(0, 3)))
            depth -= 1
        elif kind == "local_tee":
            ops_out.append(("local_tee", rng.randint(0, 3)))
        elif kind == "store":
            ops_out.append(("store", rng.randint(0, 8191) * 8))
            depth -= 1
        elif kind == "load":
            ops_out.append(("load", rng.randint(0, 16383) * 4))
    ops_out.append(("drain", depth))
    return ops_out


def generate_module(seed: int, size: Optional[int] = None):
    """A random valid-by-construction Wasm module (one exported ``f``).

    The function takes two i32 parameters, has four i32 locals, one page
    of memory, and ends by xor-folding whatever is on the abstract stack
    — straight-line code whose every instruction is trap-free, for
    differential tests of the execution tiers below the MiniC compiler.
    """
    from ..wasm import I32, ModuleBuilder
    from ..wasm import opcodes as op

    mnemonic = {
        "i32.add": op.I32_ADD, "i32.sub": op.I32_SUB,
        "i32.mul": op.I32_MUL, "i32.and": op.I32_AND,
        "i32.or": op.I32_OR, "i32.xor": op.I32_XOR,
        "i32.shl": op.I32_SHL, "i32.shr_s": op.I32_SHR_S,
        "i32.shr_u": op.I32_SHR_U, "i32.rotl": op.I32_ROTL,
        "i32.rotr": op.I32_ROTR, "i32.eq": op.I32_EQ,
        "i32.ne": op.I32_NE, "i32.lt_s": op.I32_LT_S,
        "i32.lt_u": op.I32_LT_U, "i32.ge_s": op.I32_GE_S,
        "i32.eqz": op.I32_EQZ, "i32.clz": op.I32_CLZ,
        "i32.ctz": op.I32_CTZ, "i32.popcnt": op.I32_POPCNT,
    }
    rng = random.Random(seed)
    if size is None:
        size = rng.randint(5, 60)
    abstract = _abstract_ops(rng, size)

    mb = ModuleBuilder()
    mb.set_memory(1)
    fb = mb.function("f", [I32, I32], [I32], export=True)
    fb.add_local(I32)
    fb.add_local(I32)
    for item in abstract:
        kind = item[0]
        if kind == "const":
            fb.i32_const(item[1])
        elif kind == "local_get":
            fb.local_get(item[1])
        elif kind == "local_set":
            fb.local_set(item[1])
        elif kind == "local_tee":
            fb.local_tee(item[1])
        elif kind in ("un", "bin"):
            fb.emit(mnemonic[item[1]])
        elif kind == "store":
            # stack: [value] -> store into the first page
            fb.local_set(2)
            fb.i32_const(item[1] & 0xFFF8)
            fb.local_get(2)
            fb.emit(op.I32_STORE, 2, 0)
        elif kind == "load":
            fb.emit(op.DROP)
            fb.i32_const(item[1] & 0xFFFC)
            fb.emit(op.I32_LOAD, 2, 0)
        elif kind == "drain":
            depth = item[1]
            fb.local_set(3) if depth else fb.i32_const(0)
            if depth:
                for _ in range(depth - 1):
                    fb.local_get(3).emit(op.I32_XOR).local_set(3)
                fb.local_get(3)
    return mb.build()
