"""Fuzz campaigns: generate N programs, oracle-check each, minimize hits.

A campaign is a pure function of ``(base_seed, budget, size_budget,
engines, opt_levels)``: program ``i`` uses
:func:`~repro.fuzz.generator.derive_seed`\\ ``(base_seed, i)``, so the
same invocation always generates, checks, and reports the same cells in
the same order — whether it runs serially or fanned out over a process
pool (results are merged in program order, like ``wabench --jobs``).

Divergences are minimized with the delta-debugging reducer when
requested and persisted to the corpus for regression replay.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from .. import speed
from ..harness.cache import ArtifactCache, CacheStats
from ..obs import NULL_TRACER
from .corpus import Corpus
from .engines import (DEFAULT_ENGINES, DEFAULT_OPT_LEVELS, CellRunner,
                      is_builtin_engine, validate_engines)
from .generator import (DEFAULT_SIZE_BUDGET, GeneratedProgram,
                        derive_seed, generate_program)
from .oracle import Divergence, check_program
from .perf import PerfBaseline
from .reduce import count_statements, reduce_divergence

DEFAULT_BUDGET = 50


@dataclass
class ProgramVerdict:
    """One generated program's pass/fail summary."""

    index: int
    seed: int
    statements: int
    cells: int
    divergences: List[Divergence] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences


@dataclass
class ReducedReproducer:
    """A minimized diverging program, as saved to the corpus."""

    entry_id: str
    seed: int
    signature: tuple
    statements: int
    source: str


@dataclass
class CampaignReport:
    """Everything one campaign produced."""

    base_seed: int
    budget: int
    engines: Sequence[str]
    opt_levels: Sequence[int]
    verdicts: List[ProgramVerdict] = field(default_factory=list)
    reproducers: List[ReducedReproducer] = field(default_factory=list)
    cache_stats: CacheStats = field(default_factory=CacheStats)
    #: Metric the perf-differential oracle gated on (None = perf off).
    perf_metric: Optional[str] = None

    @property
    def programs_run(self) -> int:
        return len(self.verdicts)

    @property
    def cells_run(self) -> int:
        return sum(v.cells for v in self.verdicts)

    @property
    def divergences(self) -> List[Divergence]:
        out: List[Divergence] = []
        for verdict in self.verdicts:
            out.extend(verdict.divergences)
        return out

    @property
    def ok(self) -> bool:
        return not self.divergences

    def render(self, verbose: bool = False) -> str:
        perf = f" perf={self.perf_metric}" if self.perf_metric else ""
        lines = [f"fuzz campaign: seed={self.base_seed} "
                 f"budget={self.budget} "
                 f"engines={','.join(self.engines)} "
                 f"opts={','.join(f'-O{o}' for o in self.opt_levels)}"
                 f"{perf}"]
        for verdict in self.verdicts:
            if verbose or not verdict.ok:
                status = "ok" if verdict.ok else \
                    f"DIVERGES x{len(verdict.divergences)}"
                lines.append(f"  [{verdict.index:3d}] "
                             f"seed={verdict.seed} "
                             f"stmts={verdict.statements} "
                             f"cells={verdict.cells} {status}")
            for divergence in verdict.divergences:
                lines.append(f"        {divergence.describe()}")
        for repro in self.reproducers:
            kind = repro.signature[0]
            if len(repro.signature) > 3:      # perf: append direction
                kind = f"{kind}:{repro.signature[3]}"
            lines.append(f"  minimized {repro.signature[1]} "
                         f"-O{repro.signature[2]} [{kind}] "
                         f"to {repro.statements} statement(s) -> "
                         f"corpus id {repro.entry_id}")
        lines.append(f"{self.programs_run} program(s), "
                     f"{self.cells_run} cells, "
                     f"{len(self.divergences)} divergence(s)")
        return "\n".join(lines)


def _check_one(index: int, base_seed: int, size_budget: int,
               engines: Sequence[str], opt_levels: Sequence[int],
               runner: CellRunner,
               perf_baseline: Optional[PerfBaseline] = None
               ) -> ProgramVerdict:
    seed = derive_seed(base_seed, index)
    program: GeneratedProgram = generate_program(seed, size_budget)
    report = check_program(program.source, engines=engines,
                           opt_levels=opt_levels, runner=runner,
                           seed=seed, perf_baseline=perf_baseline)
    return ProgramVerdict(index=index, seed=seed,
                          statements=program.statement_count,
                          cells=report.cells_run,
                          divergences=report.divergences)


# -- worker side (one process of the --jobs pool) ---------------------------

_WORKER_STATE = None
_WORKER_PERF = None


def _worker_init(cache_dir: Optional[str],
                 perf_data: Optional[dict] = None) -> None:
    global _WORKER_STATE, _WORKER_PERF
    cache = ArtifactCache(cache_dir) if cache_dir else None
    speed.module_cache.attach_disk(cache)
    _WORKER_STATE = CellRunner(cache=cache)
    _WORKER_PERF = PerfBaseline.from_dict(perf_data) if perf_data else None


def _worker_check(task):
    index, base_seed, size_budget, engines, opt_levels = task
    before = CacheStats.from_dict(_WORKER_STATE.stats.to_dict())
    verdict = _check_one(index, base_seed, size_budget, engines,
                         opt_levels, _WORKER_STATE,
                         perf_baseline=_WORKER_PERF)
    after = _WORKER_STATE.stats
    delta = CacheStats(
        hits={k: v - before.hits.get(k, 0)
              for k, v in after.hits.items()},
        misses={k: v - before.misses.get(k, 0)
                for k, v in after.misses.items()},
        recompute_seconds=(after.recompute_seconds -
                           before.recompute_seconds))
    return index, verdict, delta.to_dict()


def run_campaign(base_seed: int,
                 budget: int = DEFAULT_BUDGET,
                 size_budget: int = DEFAULT_SIZE_BUDGET,
                 engines: Sequence[str] = DEFAULT_ENGINES,
                 opt_levels: Sequence[int] = DEFAULT_OPT_LEVELS,
                 minimize: bool = False,
                 corpus: Optional[Corpus] = None,
                 cache_dir: Optional[str] = None,
                 jobs: int = 1,
                 progress=None,
                 tracer=None,
                 perf_baseline: Optional[PerfBaseline] = None
                 ) -> CampaignReport:
    """Run one differential-fuzzing campaign.

    ``jobs > 1`` fans whole programs out across worker processes;
    engines registered in this process only (fault injection) force a
    serial run because workers cannot see them.  Reduction always runs
    serially in the parent, against an uncached runner so candidate
    programs never pollute the artifact store.

    ``perf_baseline`` switches on the performance-differential oracle
    (:mod:`repro.fuzz.perf`): every cell's slowdown ratio over the
    reference engine is gated against the baseline's expected ratios,
    and outliers become ``kind="perf"`` divergences minimized and filed
    exactly like behavioral ones.  The baseline is serialized into each
    worker, so parallel campaigns flag byte-identically to serial ones.

    ``tracer`` (a :class:`repro.obs.Tracer`) receives campaign-level
    metrics — programs/cells checked, divergences, reproducers — and a
    wall-clock session span per campaign stage.  It never influences the
    report, so traced and untraced campaigns render identically.
    """
    obs = tracer if tracer is not None else NULL_TRACER
    validate_engines(engines)
    opt_levels = sorted(set(opt_levels))
    cache = ArtifactCache(cache_dir) if cache_dir else None
    speed.module_cache.attach_disk(cache)
    runner = CellRunner(cache=cache)
    report = CampaignReport(base_seed=base_seed, budget=budget,
                            engines=tuple(engines),
                            opt_levels=tuple(opt_levels),
                            cache_stats=runner.stats,
                            perf_metric=(perf_baseline.metric
                                         if perf_baseline else None))

    all_builtin = all(is_builtin_engine(e) for e in engines)
    use_pool = jobs > 1 and budget > 1 and all_builtin
    verdicts: List[Optional[ProgramVerdict]] = [None] * budget

    if use_pool:
        try:
            from concurrent.futures import ProcessPoolExecutor
            executor = ProcessPoolExecutor(
                max_workers=min(jobs, budget, os.cpu_count() or 1),
                initializer=_worker_init,
                initargs=(cache_dir,
                          perf_baseline.to_dict() if perf_baseline
                          else None))
        except (ImportError, OSError, PermissionError):
            use_pool = False
    with obs.span("check", budget=budget, jobs=jobs if use_pool else 1):
        if use_pool:
            tasks = [(i, base_seed, size_budget, tuple(engines),
                      tuple(opt_levels)) for i in range(budget)]
            with executor:
                for index, verdict, stats in executor.map(_worker_check,
                                                          tasks):
                    verdicts[index] = verdict
                    report.cache_stats.merge(CacheStats.from_dict(stats))
                    if progress is not None:
                        progress(verdict)
        else:
            for index in range(budget):
                verdicts[index] = _check_one(index, base_seed, size_budget,
                                             engines, opt_levels, runner,
                                             perf_baseline=perf_baseline)
                if progress is not None:
                    progress(verdicts[index])

    report.verdicts = [v for v in verdicts if v is not None]
    obs.metrics.inc("fuzz.programs", report.programs_run)
    obs.metrics.inc("fuzz.cells", report.cells_run)
    obs.metrics.inc("fuzz.divergences", len(report.divergences))

    if minimize and not report.ok:
        reduction_runner = CellRunner(cache=None)
        corpus = corpus if corpus is not None else Corpus()
        seen_signatures = set()
        with obs.span("minimize", divergences=len(report.divergences)):
            for divergence in report.divergences:
                if divergence.signature() in seen_signatures:
                    continue
                seen_signatures.add(divergence.signature())
                result = reduce_divergence(divergence, engines, opt_levels,
                                           runner=reduction_runner,
                                           perf_baseline=perf_baseline)
                if result is None:
                    continue
                signature = {"kind": divergence.signature()[0],
                             "engine": divergence.signature()[1],
                             "opt": divergence.signature()[2]}
                if divergence.direction:
                    signature["direction"] = divergence.direction
                meta = {
                    "seed": divergence.seed,
                    "base_seed": base_seed,
                    "signature": signature,
                    "detail": divergence.detail,
                    "engines": list(engines),
                    "opt_levels": list(opt_levels),
                    "statements": result.statement_count,
                }
                if divergence.kind == "perf" and perf_baseline is not None:
                    # Embed the baseline slice this entry was judged
                    # against: replay stays self-contained across
                    # future PERF_baseline.json refreshes.
                    meta["perf"] = perf_baseline.subset(
                        engines, opt_levels).to_dict()
                entry_id = corpus.save_reproducer(result.source, meta)
                report.reproducers.append(ReducedReproducer(
                    entry_id=entry_id, seed=divergence.seed or 0,
                    signature=divergence.signature(),
                    statements=result.statement_count,
                    source=result.source))
        obs.metrics.inc("fuzz.reproducers", len(report.reproducers))

    if corpus is not None:
        corpus.record_campaign(base_seed, budget, engines, opt_levels,
                               len(report.divergences))
    return report
