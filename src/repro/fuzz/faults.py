"""Fault injection: a wrapper engine that corrupts results on purpose.

This is *test infrastructure*, not a runtime model: the differential
oracle, the reducer, and the corpus replayer all need an engine that is
known to be wrong in a controlled, deterministic way.  Production code
never registers one; tests do, via
:func:`repro.fuzz.engines.register_engine`, and results from registered
engines are deliberately excluded from the artifact cache.
"""

from __future__ import annotations

from typing import Optional

from ..runtimes import RunResult, make_runtime


class FaultInjectingRuntime:
    """Runs a real runtime, then deterministically corrupts the result.

    ``trigger`` is a byte pattern: when it occurs in the inner run's
    stdout, the fault fires.  The default (empty pattern) fires on any
    program that produces output at all — the worst possible engine bug,
    and the easiest for reducer tests to reason about.

    Fault modes:

    * ``"flip-stdout"`` — replace the first occurrence of ``trigger``
      (or the first byte) with ``X``;
    * ``"truncate-stdout"`` — drop everything from the trigger on;
    * ``"exit-code"`` — report exit status 41 instead of the real one;
    * ``"fake-trap"`` — report a spurious out-of-bounds trap.
    """

    def __init__(self, base: str = "wamr", trigger: bytes = b"",
                 mode: str = "flip-stdout"):
        if mode not in ("flip-stdout", "truncate-stdout", "exit-code",
                        "fake-trap"):
            raise ValueError(f"unknown fault mode {mode!r}")
        self.base = base
        self.trigger = trigger
        self.mode = mode

    def run(self, wasm_bytes: bytes, **kwargs) -> RunResult:
        result = make_runtime(self.base).run(wasm_bytes, **kwargs)
        position = result.stdout.find(self.trigger) \
            if result.stdout else -1
        if position < 0:
            return result
        if self.mode == "flip-stdout":
            index = position if self.trigger else 0
            corrupted = (result.stdout[:index] + b"X" +
                         result.stdout[index + 1:])
            result.stdout = corrupted
        elif self.mode == "truncate-stdout":
            result.stdout = result.stdout[:position]
        elif self.mode == "exit-code":
            result.exit_code = 41
        elif self.mode == "fake-trap":
            result.trap = "trap: out of bounds memory access: injected"
        return result


class PerfSkewRuntime:
    """Runs a real runtime, then deterministically scales its modeled
    cost — a *performance* bug with bit-identical behavior.

    The behavioral oracles can never catch this wrapper: stdout, exit
    status and traps are untouched.  Only the performance-differential
    oracle sees it, because the cell's counters (and therefore its
    slowdown ratio over the reference engine) move by ``factor``.
    ``factor > 1`` models a slowdown (dispatch regression, lost
    optimization), ``factor < 1`` a too-good-to-be-true speedup
    (mis-accounted work); both directions are anomalies.
    """

    def __init__(self, base: str = "wamr", factor: float = 8.0,
                 metrics: tuple = ("instructions", "cycles",
                                   "cache_misses")):
        if factor <= 0:
            raise ValueError(f"skew factor must be > 0 (got {factor})")
        self.base = base
        self.factor = factor
        self.metrics = metrics

    def run(self, wasm_bytes: bytes, **kwargs) -> RunResult:
        result = make_runtime(self.base).run(wasm_bytes, **kwargs)
        for name in self.metrics:
            if name in result.counters:
                result.counters[name] = max(
                    1, int(result.counters[name] * self.factor))
        if "cycles" in self.metrics:
            result.cycles = max(1, int(result.cycles * self.factor))
        return result


def register_perf_skew_engine(name: str, base: str = "wamr",
                              factor: float = 8.0,
                              metrics: tuple = ("instructions", "cycles",
                                                "cache_misses")) -> str:
    """Register a perf-skew engine (perf-oracle tests); returns name."""
    from .engines import register_engine

    def factory(base=base, factor=factor, metrics=metrics):
        return PerfSkewRuntime(base=base, factor=factor, metrics=metrics)

    register_engine(name, factory)
    return name


def register_faulty_engine(name: str, base: str = "wamr",
                           trigger: bytes = b"",
                           mode: str = "flip-stdout") -> str:
    """Convenience used by tests: register and return the engine name."""
    from .engines import register_engine

    def factory(base=base, trigger=trigger, mode=mode):
        return FaultInjectingRuntime(base=base, trigger=trigger,
                                     mode=mode)

    register_engine(name, factory)
    return name
