"""Performance-differential oracle: WarpDiff-style ratio outlier tests.

The behavioral oracles in :mod:`repro.fuzz.oracle` only establish that
every engine computes the *same answer*; nothing notices when a
modeling or optimization PR silently makes one engine's modeled cost
drift.  Jiang et al. ("Revealing Performance Issues in Server-side
WebAssembly Runtimes via Differential Testing", WarpDiff) show that the
*relative* cost between engines is a stable signal: for a population of
programs, the slowdown ratio of engine B over engine A clusters
tightly, and a program whose ratio is an outlier localizes a real
performance bug.  This module is that oracle over our modeled metrics:

* **metrics** — the per-cell integer vector extracted by
  :func:`repro.obs.cell_metrics` (instructions, cycles, LLC misses —
  see :data:`repro.registry.PERF_ORACLE_METRICS`); the baseline gates
  on one of them (cycles by default, the metric that integrates
  instruction count with branch/cache stall behavior).
* **benchmark classes** — expected ratios shift with workload size
  (spawn/compile costs amortize as programs grow), so the baseline is
  kept per size class of the reference cell
  (:func:`size_class`, bounds in :data:`repro.registry.PERF_CLASS_BOUNDS`).
* **baseline** — ``PERF_baseline.json``: for every
  ``class|engine|-O`` pair, the median log2 slowdown ratio over the
  committed corpus campaign, its MAD dispersion, and an explicit
  tolerance that covers the baseline sample itself (so re-running the
  exact baseline campaign is green by construction, while a
  fault-injected or modeling-drift skew on one engine is flagged).
* **divergences** — a cell whose log2 ratio deviates from the expected
  median by more than the pair's tolerance becomes a ``kind="perf"``
  divergence whose signature carries the *deviation direction*
  (``slow``/``fast``) in addition to the engine pair, so delta-
  debugging reduction must preserve the anomaly — the outlier engine
  and the direction of the skew — not merely "some perf flag".

Determinism: ratios are compared in log2 space rounded to
:data:`ROUND` decimals, and every stored statistic is rounded the same
way; combined with the 5% + 1e-6 tolerance margin this keeps verdicts
(and therefore reports) byte-identical across repeat, warm-cache, and
``--jobs`` runs, and immune to last-ulp libm differences.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import HarnessError
from ..registry import (PERF_CLASS_BOUNDS, PERF_CLASS_TOP,
                        PERF_ORACLE_METRICS)
from .engines import (DEFAULT_ENGINES, DEFAULT_OPT_LEVELS, CellRunner,
                      validate_engines)
from .generator import (DEFAULT_SIZE_BUDGET, GENERATOR_VERSION,
                        derive_seed, generate_program)

#: Baseline file schema stamp.
PERF_SCHEMA = "wabench-perf-baseline/1"

#: Where ``wabench fuzz --perf`` looks for the committed baseline.
DEFAULT_BASELINE_PATH = "PERF_baseline.json"

#: The metric the baseline gates on by default.
DEFAULT_METRIC = "cycles"

#: Tolerance = max(K * MAD, FLOOR, observed-max-deviation * 1.05 + 1e-6),
#: all in log2 units.  FLOOR = 0.35 is ~1.27x — relative-cost noise below
#: that is modeling jitter, not a perf bug worth a reproducer.
DEFAULT_TOLERANCE_K = 4.0
DEFAULT_TOLERANCE_FLOOR = 0.35

#: Decimal places every stored/compared log2 quantity is rounded to.
ROUND = 6


def size_class(ref_instructions: int) -> str:
    """The benchmark class of a program: the size bucket of its
    reference cell's dynamic instruction count."""
    for name, bound in PERF_CLASS_BOUNDS:
        if ref_instructions < bound:
            return name
    return PERF_CLASS_TOP


def log2_ratio(value: int, reference: int) -> float:
    """Rounded log2 slowdown of ``value`` over ``reference``."""
    return round(math.log2(value / reference), ROUND)


@dataclass
class PairStats:
    """Expected ratio statistics for one ``class|engine|-O`` pair."""

    median_log2: float          #: expected log2 slowdown ratio
    mad_log2: float             #: median absolute deviation (dispersion)
    tol_log2: float             #: flag when |deviation| exceeds this
    samples: int                #: baseline sample count behind the stats

    def to_dict(self) -> Dict:
        return {"median_log2": self.median_log2,
                "mad_log2": self.mad_log2,
                "tol_log2": self.tol_log2,
                "samples": self.samples}

    @classmethod
    def from_dict(cls, data: Dict) -> "PairStats":
        return cls(median_log2=float(data["median_log2"]),
                   mad_log2=float(data["mad_log2"]),
                   tol_log2=float(data["tol_log2"]),
                   samples=int(data["samples"]))


def _median(sorted_values: Sequence[float]) -> float:
    n = len(sorted_values)
    mid = n // 2
    if n % 2:
        return sorted_values[mid]
    return (sorted_values[mid - 1] + sorted_values[mid]) / 2.0


def pair_stats(samples: Sequence[float],
               k: float = DEFAULT_TOLERANCE_K,
               floor: float = DEFAULT_TOLERANCE_FLOOR) -> PairStats:
    """Median/MAD/tolerance over one pair's log2-ratio samples.

    The tolerance explicitly covers the sample's own maximum deviation
    (with a 5% + 1e-6 margin absorbing the rounding of the stored
    median), so replaying the campaign a baseline was built from never
    flags — only a ratio that moved beyond everything the baseline
    population exhibited does.
    """
    if not samples:
        raise ValueError("cannot summarize an empty sample")
    ordered = sorted(samples)
    median = _median(ordered)
    deviations = sorted(abs(s - median) for s in ordered)
    mad = _median(deviations)
    max_dev = deviations[-1]
    tol = max(k * mad, floor, max_dev * 1.05 + 1e-6)
    return PairStats(median_log2=round(median, ROUND),
                     mad_log2=round(mad, ROUND),
                     tol_log2=round(tol, ROUND),
                     samples=len(ordered))


class PerfBaseline:
    """Expected cross-engine slowdown ratios, per pair and class."""

    def __init__(self, metric: str, reference: str,
                 pairs: Dict[str, PairStats],
                 meta: Optional[Dict] = None):
        if metric not in PERF_ORACLE_METRICS:
            raise HarnessError(
                f"unknown perf metric {metric!r}; known: "
                f"{', '.join(PERF_ORACLE_METRICS)}")
        self.metric = metric
        self.reference = reference
        self.pairs = pairs
        self.meta = dict(meta or {})

    @staticmethod
    def key(cls_name: str, engine: str, opt: int) -> str:
        return f"{cls_name}|{engine}|{opt}"

    def lookup(self, cls_name: str, engine: str,
               opt: int) -> Optional[PairStats]:
        return self.pairs.get(self.key(cls_name, engine, opt))

    def subset(self, engines: Sequence[str],
               opt_levels: Sequence[int]) -> "PerfBaseline":
        """The baseline slice covering one engine/opt grid (every class).

        Corpus reproducers embed this slice in their ``meta.json`` so a
        perf divergence replays self-contained — a later baseline
        refresh cannot silently change what the saved entry asserts.
        """
        engines = set(engines)
        opts = {str(o) for o in opt_levels}
        pairs = {}
        for key, stats in self.pairs.items():
            _cls, engine, opt = key.rsplit("|", 2)
            if engine in engines and opt in opts:
                pairs[key] = stats
        return PerfBaseline(self.metric, self.reference, pairs,
                            meta=self.meta)

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> Dict:
        payload = {
            "schema": PERF_SCHEMA,
            "metric": self.metric,
            "reference": self.reference,
            "pairs": {key: stats.to_dict()
                      for key, stats in sorted(self.pairs.items())},
        }
        payload.update(self.meta)
        return payload

    def to_json(self) -> str:
        """Canonical text form (the bytes committed as the baseline)."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_dict(cls, data: Dict) -> "PerfBaseline":
        if data.get("schema") != PERF_SCHEMA:
            raise HarnessError(
                f"perf baseline schema {data.get('schema')!r} != "
                f"{PERF_SCHEMA!r} (refresh with "
                "scripts/perf_baseline.py --update)")
        meta = {k: v for k, v in data.items()
                if k not in ("schema", "metric", "reference", "pairs")}
        return cls(metric=data["metric"], reference=data["reference"],
                   pairs={key: PairStats.from_dict(stats)
                          for key, stats in data["pairs"].items()},
                   meta=meta)

    @classmethod
    def from_file(cls, path: str) -> "PerfBaseline":
        try:
            with open(path) as fh:
                data = json.load(fh)
        except FileNotFoundError:
            raise HarnessError(
                f"perf baseline {path!r} not found (generate with "
                "scripts/perf_baseline.py --update)")
        except (OSError, ValueError) as exc:
            raise HarnessError(f"perf baseline {path!r} unreadable: {exc}")
        return cls.from_dict(data)


# -- the oracle --------------------------------------------------------------


def program_class(observations, reference: str,
                  opt_levels: Sequence[int]) -> Optional[str]:
    """The benchmark class of one checked program, or None when the
    reference cell is unusable (missing, trapped, or zero-cost)."""
    for opt in sorted(opt_levels):
        obs = observations.get((reference, opt))
        if obs is None:
            continue
        if obs.trap_kind is not None:
            return None
        instructions = obs.metrics.get("instructions", 0)
        if instructions <= 0:
            return None
        return size_class(instructions)
    return None


def perf_divergences(observations, baseline: Optional[PerfBaseline],
                     seed: Optional[int] = None,
                     source: str = "") -> List:
    """Apply the ratio-outlier test to one program's observations.

    For every non-reference cell, the slowdown ratio over the reference
    engine *at the same -O level* is compared against the baseline's
    expected ratio for this program's class; a deviation beyond the
    pair's tolerance is one ``kind="perf"`` divergence.  Cells with no
    baseline coverage (unknown pair, trapped cell, zero metric) are
    skipped: the oracle only speaks where the baseline has data.
    """
    from .oracle import Divergence

    if baseline is None:
        return []
    opt_levels = sorted({opt for _eng, opt in observations})
    cls_name = program_class(observations, baseline.reference, opt_levels)
    if cls_name is None:
        return []
    out: List[Divergence] = []
    for (engine, opt), obs in observations.items():
        if engine in (baseline.reference, "static"):
            continue
        ref = observations.get((baseline.reference, opt))
        if ref is None or obs.trap_kind is not None \
                or ref.trap_kind is not None:
            continue
        value = obs.metrics.get(baseline.metric, 0)
        ref_value = ref.metrics.get(baseline.metric, 0)
        if value <= 0 or ref_value <= 0:
            continue
        stats = baseline.lookup(cls_name, engine, opt)
        if stats is None:
            continue
        deviation = round(log2_ratio(value, ref_value)
                          - stats.median_log2, ROUND)
        if abs(deviation) <= stats.tol_log2:
            continue
        direction = "slow" if deviation > 0 else "fast"
        out.append(Divergence(
            kind="perf", cell=(engine, opt),
            reference_cell=(baseline.reference, opt),
            detail=(f"{baseline.metric} ratio {value / ref_value:.2f}x "
                    f"vs expected {2 ** stats.median_log2:.2f}x "
                    f"(class {cls_name}, log2 deviation {deviation:+.3f} "
                    f"beyond tolerance {stats.tol_log2:.3f}, {direction})"),
            seed=seed, source=source, direction=direction))
    return out


# -- baseline construction ---------------------------------------------------


def build_baseline(base_seed: int, budget: int,
                   size_budget: int = DEFAULT_SIZE_BUDGET,
                   engines: Sequence[str] = DEFAULT_ENGINES,
                   opt_levels: Sequence[int] = DEFAULT_OPT_LEVELS,
                   metric: str = DEFAULT_METRIC,
                   k: float = DEFAULT_TOLERANCE_K,
                   floor: float = DEFAULT_TOLERANCE_FLOOR,
                   runner: Optional[CellRunner] = None,
                   progress=None) -> PerfBaseline:
    """Derive a :class:`PerfBaseline` from one seeded corpus campaign.

    Runs the same program population a campaign with the same
    ``(base_seed, budget, size_budget)`` would fuzz, collects every
    cell's log2 slowdown ratio over the reference engine (``engines[0]``)
    at the same -O level, and summarizes per ``class|engine|-O`` pair.
    Pure function of its arguments — rebuilding on another machine
    byte-reproduces the committed ``PERF_baseline.json``.
    """
    if not engines:
        raise ValueError("need at least one engine")
    if metric not in PERF_ORACLE_METRICS:
        raise HarnessError(
            f"unknown perf metric {metric!r}; known: "
            f"{', '.join(PERF_ORACLE_METRICS)}")
    validate_engines(engines)
    opt_levels = sorted(set(opt_levels))
    runner = runner if runner is not None else CellRunner()
    reference = engines[0]
    samples: Dict[str, List[float]] = {}

    from ..obs import cell_metrics

    for index in range(budget):
        seed = derive_seed(base_seed, index)
        program = generate_program(seed, size_budget)
        cells: Dict[Tuple[str, int], Dict[str, int]] = {}
        trapped = False
        for engine in engines:
            for opt in opt_levels:
                result = runner.run_cell(program.source, engine, opt)
                if result.trap is not None:
                    trapped = True
                cells[(engine, opt)] = cell_metrics(result)
        if trapped:
            # A trapping program has no meaningful steady-state cost;
            # the behavioral oracles own that case.
            continue
        ref_instr = cells[(reference, opt_levels[0])]["instructions"]
        if ref_instr <= 0:
            continue
        cls_name = size_class(ref_instr)
        for engine in engines[1:]:
            for opt in opt_levels:
                value = cells[(engine, opt)].get(metric, 0)
                ref_value = cells[(reference, opt)].get(metric, 0)
                if value <= 0 or ref_value <= 0:
                    continue
                key = PerfBaseline.key(cls_name, engine, opt)
                samples.setdefault(key, []).append(
                    log2_ratio(value, ref_value))
        if progress is not None:
            progress(index, cls_name)

    pairs = {key: pair_stats(values, k=k, floor=floor)
             for key, values in samples.items()}
    meta = {
        "base_seed": base_seed,
        "budget": budget,
        "size_budget": size_budget,
        "engines": list(engines),
        "opt_levels": list(opt_levels),
        "generator": GENERATOR_VERSION,
        "tolerance_k": k,
        "tolerance_floor": floor,
    }
    return PerfBaseline(metric=metric, reference=reference, pairs=pairs,
                        meta=meta)
