"""repro.fuzz — differential fuzzing with cross-engine oracles.

The paper's credibility rests on five runtimes computing identical
answers for every benchmark; this subsystem turns that property into an
adversarial test harness:

* :mod:`~repro.fuzz.generator` — seeded, well-defined-by-construction
  MiniC programs (and raw Wasm modules) with calls, control flow,
  arrays, globals, and int/double arithmetic;
* :mod:`~repro.fuzz.oracle` — differential (stdout / exit status /
  trap kind), metamorphic (-O never increases dynamic instructions),
  and determinism (warm rerun byte-identical) oracles;
* :mod:`~repro.fuzz.perf` — WarpDiff-style performance-differential
  oracle: cross-engine slowdown ratios gated against a committed
  baseline of expected ratios (``PERF_baseline.json``);
* :mod:`~repro.fuzz.reduce` — delta-debugging minimizer at
  statement/function granularity;
* :mod:`~repro.fuzz.corpus` — persisted seeds + minimized reproducers
  with a regression replayer;
* :mod:`~repro.fuzz.campaign` — the ``wabench fuzz`` driver: N seeded
  programs, optionally minimized, fanned out over ``--jobs`` workers
  with results cached in the PR-2 artifact store.
"""

from .campaign import (DEFAULT_BUDGET, CampaignReport, ProgramVerdict,
                       ReducedReproducer, run_campaign)
from .corpus import (DEFAULT_CORPUS_DIR, Corpus, CorpusEntry,
                     ReplayOutcome)
from .engines import (DEFAULT_ENGINES, DEFAULT_OPT_LEVELS, ORACLE_VERSION,
                      CellRunner, is_builtin_engine, register_engine,
                      unregister_engine)
from .faults import (FaultInjectingRuntime, PerfSkewRuntime,
                     register_faulty_engine, register_perf_skew_engine)
from .generator import (DEFAULT_SIZE_BUDGET, GENERATOR_VERSION,
                        GeneratedProgram, derive_seed, generate_module,
                        generate_program)
from .oracle import (CheckReport, Divergence, Observation,
                     check_program, normalize_trap)
from .perf import (DEFAULT_BASELINE_PATH, DEFAULT_METRIC, PerfBaseline,
                   PairStats, build_baseline, pair_stats,
                   perf_divergences, size_class)
from .reduce import (ReductionResult, count_statements, make_predicate,
                     reduce_divergence, reduce_source)

__all__ = [
    "DEFAULT_BUDGET", "CampaignReport", "ProgramVerdict",
    "ReducedReproducer", "run_campaign",
    "DEFAULT_CORPUS_DIR", "Corpus", "CorpusEntry", "ReplayOutcome",
    "DEFAULT_ENGINES", "DEFAULT_OPT_LEVELS", "ORACLE_VERSION",
    "CellRunner",
    "is_builtin_engine", "register_engine", "unregister_engine",
    "FaultInjectingRuntime", "PerfSkewRuntime",
    "register_faulty_engine", "register_perf_skew_engine",
    "DEFAULT_SIZE_BUDGET", "GENERATOR_VERSION", "GeneratedProgram",
    "derive_seed", "generate_module", "generate_program",
    "CheckReport", "Divergence", "Observation", "check_program",
    "normalize_trap",
    "DEFAULT_BASELINE_PATH", "DEFAULT_METRIC", "PerfBaseline",
    "PairStats", "build_baseline", "pair_stats", "perf_divergences",
    "size_class",
    "ReductionResult", "count_statements", "make_predicate",
    "reduce_divergence", "reduce_source",
]
