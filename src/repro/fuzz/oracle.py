"""Differential and metamorphic oracles for generated programs.

Given one program, :func:`check_program` compiles it at every requested
-O level, runs it on every requested engine, and applies four oracle
families:

* **static** — before any engine executes, every compiled module is run
  through the static pre-oracle (decode, validate, the full
  :mod:`repro.analysis.audit` pass, and an encode/decode round-trip);
  an analyzer crash, a validator rejection of the compiler's own
  output, a non-minimal LEB128 emission, or a round-trip disagreement
  is a reportable finding even when every engine agrees dynamically.
* **differential** — every cell must agree with the reference cell on
  stdout, exit status, and *trap behavior*: a well-defined program must
  not trap anywhere, and a trapping program must raise the same trap
  kind (``integer divide by zero``, ``out of bounds memory access``,
  ``indirect call type mismatch``, ...) on every engine.  Trap messages
  carry engine-specific detail (the faulting function's mangled name),
  so comparison is on the normalized trap *kind*.
* **metamorphic (optimization)** — on the native baseline, compiling at
  a higher -O level must never *increase* the model's dynamic
  instruction count relative to the unoptimized (-O0 or lowest swept)
  build.  An optimizing pipeline that executes more instructions than
  its own unoptimized input is a performance bug of exactly the kind
  Jiang et al. hunt with differential testing.
* **performance-differential (perf)** — when a
  :class:`~repro.fuzz.perf.PerfBaseline` is supplied, every cell's
  slowdown ratio over the reference engine at the same -O level is
  compared against the expected ratio for this program's benchmark
  class; a deviation beyond the pair's tolerance is a ``kind="perf"``
  divergence whose signature carries the deviation direction (see
  :mod:`repro.fuzz.perf` — the WarpDiff-style oracle).
* **determinism** — recomputing the reference cell from scratch must
  reproduce the (possibly cache-served) first result byte-for-byte;
  this checks both model purity and artifact-cache integrity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..obs import cell_metrics
from ..runtimes import RunResult
from .engines import (DEFAULT_ENGINES, DEFAULT_OPT_LEVELS, ORACLE_VERSION,
                      CellRunner, validate_engines)
from .perf import PerfBaseline, perf_divergences

#: A cell is one (engine, -O level) execution of the program under test.
Cell = Tuple[str, int]


def normalize_trap(trap: Optional[str]) -> Optional[str]:
    """Reduce a trap message to its specification-level kind.

    ``"trap: out of bounds memory access: f6: store at 512 0"`` and
    ``"trap: out of bounds memory access: main: store at 512 0"`` are
    the same trap; only the kind is comparable across engines.
    """
    if trap is None:
        return None
    text = trap[len("trap: "):] if trap.startswith("trap: ") else trap
    return text.split(":", 1)[0].strip()


@dataclass
class Observation:
    """What one cell produced, as compared by the oracles."""

    engine: str
    opt: int
    stdout: bytes
    exit_code: int
    trap_kind: Optional[str]
    instructions: int
    result_json: str
    #: Stable integer metric vector (repro.obs.cell_metrics): the
    #: counters the performance-differential oracle gates on.
    metrics: Dict[str, int] = field(default_factory=dict)

    @classmethod
    def from_result(cls, engine: str, opt: int,
                    result: RunResult) -> "Observation":
        metrics = cell_metrics(result)
        return cls(engine=engine, opt=opt, stdout=result.stdout,
                   exit_code=result.exit_code,
                   trap_kind=normalize_trap(result.trap),
                   instructions=metrics["instructions"],
                   result_json=result.to_json(),
                   metrics=metrics)

    def behavior(self) -> Tuple[bytes, int, Optional[str]]:
        return (self.stdout, self.exit_code, self.trap_kind)


@dataclass
class Divergence:
    """One oracle violation, with everything needed to reproduce it."""

    kind: str  # "static" | "behavior" | "opt-regression" | "perf" | "nondet"
    cell: Cell
    reference_cell: Cell
    detail: str
    seed: Optional[int] = None
    source: str = ""
    #: Perf divergences only: which way the ratio deviated
    #: ("slow" | "fast"); part of the anomaly signature.
    direction: Optional[str] = None

    def signature(self) -> Tuple:
        """Stable identity used by the reducer: a candidate program is
        'still interesting' iff it produces a divergence with the same
        signature (same oracle, same engine, same -O level — and, for
        perf divergences, the same deviation direction)."""
        base = (self.kind, self.cell[0], self.cell[1])
        return base + (self.direction,) if self.direction else base

    def describe(self) -> str:
        engine, opt = self.cell
        return (f"[{self.kind}] {engine} -O{opt} "
                f"vs {self.reference_cell[0]} -O{self.reference_cell[1]}: "
                f"{self.detail}")


@dataclass
class CheckReport:
    """Everything :func:`check_program` observed for one program."""

    observations: Dict[Cell, Observation] = field(default_factory=dict)
    divergences: List[Divergence] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences

    @property
    def cells_run(self) -> int:
        return len(self.observations)


def _behavior_detail(got: Observation, ref: Observation) -> str:
    if got.trap_kind != ref.trap_kind:
        return f"trap {got.trap_kind!r} != {ref.trap_kind!r}"
    if got.exit_code != ref.exit_code:
        return f"exit {got.exit_code} != {ref.exit_code}"
    return (f"stdout {got.stdout[:48]!r}... != {ref.stdout[:48]!r}..."
            if len(got.stdout) > 48 or len(ref.stdout) > 48 else
            f"stdout {got.stdout!r} != {ref.stdout!r}")


def check_program(source: str,
                  engines: Sequence[str] = DEFAULT_ENGINES,
                  opt_levels: Sequence[int] = DEFAULT_OPT_LEVELS,
                  runner: Optional[CellRunner] = None,
                  seed: Optional[int] = None,
                  check_determinism: bool = True,
                  perf_baseline: Optional[PerfBaseline] = None
                  ) -> CheckReport:
    """Run every (engine, -O) cell of ``source`` and apply the oracles.

    The reference cell is the *first* engine at the *lowest* -O level —
    by default the native baseline at -O0, mirroring the paper's setup
    where native execution is ground truth.
    """
    if not engines:
        raise ValueError("need at least one engine")
    validate_engines(engines)
    runner = runner if runner is not None else CellRunner()
    opt_levels = sorted(set(opt_levels))
    report = CheckReport()

    # Oracle 0: static pre-oracle, before any engine executes.  A cell
    # of ("static", opt) identifies the compiled module, not an engine.
    for opt in opt_levels:
        for detail in runner.static_findings(source, opt):
            report.divergences.append(Divergence(
                kind="static", cell=("static", opt),
                reference_cell=("static", opt), detail=detail,
                seed=seed, source=source))

    for engine in engines:
        for opt in opt_levels:
            result = runner.run_cell(source, engine, opt)
            report.observations[(engine, opt)] = \
                Observation.from_result(engine, opt, result)

    ref_cell: Cell = (engines[0], opt_levels[0])
    ref = report.observations[ref_cell]

    # Oracle 1: cross-engine / cross-level behavioral agreement.
    for cell, obs in report.observations.items():
        if cell == ref_cell:
            continue
        if obs.behavior() != ref.behavior():
            report.divergences.append(Divergence(
                kind="behavior", cell=cell, reference_cell=ref_cell,
                detail=_behavior_detail(obs, ref), seed=seed,
                source=source))

    # Oracle 2: optimizing harder must not execute more instructions
    # (checked on the first engine, native by default; interpreter
    # instruction counts scale with bytecode shape, not optimization
    # quality, so the baseline engine is the meaningful one).
    base_engine = engines[0]
    base_obs = report.observations[(base_engine, opt_levels[0])]
    if base_obs.trap_kind is None:
        for opt in opt_levels[1:]:
            obs = report.observations[(base_engine, opt)]
            if obs.instructions > base_obs.instructions:
                report.divergences.append(Divergence(
                    kind="opt-regression", cell=(base_engine, opt),
                    reference_cell=(base_engine, opt_levels[0]),
                    detail=(f"-O{opt} executed {obs.instructions:,} "
                            f"instructions > -O{opt_levels[0]}'s "
                            f"{base_obs.instructions:,}"),
                    seed=seed, source=source))

    # Oracle 3: performance-differential ratio outliers (WarpDiff) —
    # only when the caller supplies a baseline of expected ratios.
    if perf_baseline is not None:
        report.divergences.extend(perf_divergences(
            report.observations, perf_baseline, seed=seed, source=source))

    # Oracle 4: recomputing the reference cell reproduces it exactly
    # (model purity + cache integrity: a warm rerun is byte-identical).
    if check_determinism:
        fresh = runner.run_cell(source, ref_cell[0], ref_cell[1],
                                use_cache=False)
        if fresh.to_json() != ref.result_json:
            report.divergences.append(Divergence(
                kind="nondet", cell=ref_cell, reference_cell=ref_cell,
                detail="fresh recompute differs from first/cached run",
                seed=seed, source=source))

    return report
