"""Execution cells for the fuzzer: engine registry + cached cell runner.

An *engine* here is anything that can run a MiniC program end to end:
the native baseline, any of the five runtime models, an AOT variant of
a JIT runtime (``"<runtime>-aot"``), or a test-registered custom engine
(used by the fault-injection tests).  A *cell* is one ``(engine, -O)``
execution of one program.

Cell results are cached in the PR-2 content-addressed artifact store
(kind ``fuzz-result``), keyed by the program text, the engine, the -O
level and the compiler fingerprint — so a re-run of a fuzz campaign
with a warm cache performs zero compiles, exactly like ``wabench``.
Custom (test-registered) engines are never cached: their behavior is
not a pure function of the key.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Dict, Optional, Sequence

from ..compiler import compile_source, config_fingerprint
from ..errors import HarnessError
from ..harness.cache import ArtifactCache, CacheStats, cache_key
from ..native import nativecc, run_native
from ..obs import Stopwatch
from ..registry import DEFAULT_FUZZ_ENGINES as DEFAULT_ENGINES
from ..runtimes import ALL_RUNTIME_NAMES, RunResult, make_runtime
from .generator import GENERATOR_VERSION

DEFAULT_OPT_LEVELS = (0, 2)

#: Test-registered engines: name -> zero-arg factory returning an object
#: with ``.run(wasm_bytes) -> RunResult``.
_CUSTOM_ENGINES: Dict[str, Callable[[], object]] = {}


def register_engine(name: str, factory: Callable[[], object]) -> None:
    """Register a custom engine (fault injection in tests).  Results of
    custom engines are never written to the artifact cache."""
    _CUSTOM_ENGINES[name] = factory


def unregister_engine(name: str) -> None:
    _CUSTOM_ENGINES.pop(name, None)


def is_builtin_engine(name: str) -> bool:
    if name in _CUSTOM_ENGINES:
        return False
    base = name[:-4] if name.endswith("-aot") else name
    return (base == "native" or base in ALL_RUNTIME_NAMES or
            base.startswith("wasmer-"))


def known_engines() -> Sequence[str]:
    return tuple(DEFAULT_ENGINES) + tuple(_CUSTOM_ENGINES)


def validate_engines(engines: Sequence[str]) -> None:
    for name in engines:
        if name in _CUSTOM_ENGINES or is_builtin_engine(name):
            continue
        raise HarnessError(
            f"unknown fuzz engine {name!r}; built-ins: "
            f"{', '.join(DEFAULT_ENGINES)} (plus any runtime name and "
            f"'<jit>-aot' variants)")


def source_digest(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


class CellRunner:
    """Compiles and executes (program, engine, -O) cells with caching.

    One instance per process; it memoizes compiled artifacts in memory
    and run results in the shared on-disk store when one is configured.
    """

    def __init__(self, cache: Optional[ArtifactCache] = None,
                 stats: Optional[CacheStats] = None):
        self.cache = cache
        self.stats = stats if stats is not None else CacheStats()
        self._wasm_memo: Dict[tuple, bytes] = {}
        self._native_memo: Dict[tuple, object] = {}
        self._aot_memo: Dict[tuple, object] = {}

    # -- compiled artifacts ------------------------------------------------

    def wasm_for(self, source: str, opt: int) -> bytes:
        key = (source_digest(source), opt)
        wasm = self._wasm_memo.get(key)
        if wasm is None:
            wasm = compile_source(source, opt_level=opt).wasm_bytes
            self._wasm_memo[key] = wasm
        return wasm

    def _native_for(self, source: str, opt: int):
        key = (source_digest(source), opt)
        binary = self._native_memo.get(key)
        if binary is None:
            binary = nativecc(source, opt_level=opt)
            self._native_memo[key] = binary
        return binary

    def _aot_for(self, source: str, runtime_name: str, opt: int):
        key = (source_digest(source), runtime_name, opt)
        image = self._aot_memo.get(key)
        if image is None:
            rt = make_runtime(runtime_name)
            image, _seconds = rt.compile_aot(self.wasm_for(source, opt))
            self._aot_memo[key] = image
        return image

    # -- cell execution ----------------------------------------------------

    def _cell_key(self, source: str, engine: str, opt: int) -> str:
        return cache_key("fuzz-result",
                         gen=GENERATOR_VERSION,
                         src=source_digest(source),
                         engine=engine, opt=opt,
                         cc=config_fingerprint(opt))

    def run_cell(self, source: str, engine: str, opt: int,
                 use_cache: bool = True) -> RunResult:
        """One execution; cached for built-in engines."""
        cacheable = (use_cache and self.cache is not None and
                     is_builtin_engine(engine))
        disk_key = self._cell_key(source, engine, opt) if cacheable else None
        if cacheable:
            payload = self.cache.get_bytes(disk_key)
            if payload is not None:
                try:
                    result = RunResult.from_json(payload.decode("utf-8"))
                except (KeyError, TypeError, ValueError,
                        UnicodeDecodeError):
                    result = None
                if result is not None:
                    self.stats.hit("fuzz-result")
                    return result
        watch = Stopwatch()
        result = self._execute(source, engine, opt)
        if cacheable:
            self.stats.miss("fuzz-result", watch.seconds)
            self.cache.put_bytes(disk_key,
                                 result.to_json().encode("utf-8"))
        return result

    def _execute(self, source: str, engine: str, opt: int) -> RunResult:
        factory = _CUSTOM_ENGINES.get(engine)
        if factory is not None:
            return factory().run(self.wasm_for(source, opt))
        if engine == "native":
            return run_native(self._native_for(source, opt))
        if engine.endswith("-aot"):
            base = engine[:-4]
            image = self._aot_for(source, base, opt)
            return make_runtime(base).run(self.wasm_for(source, opt),
                                          aot_image=image)
        return make_runtime(engine).run(self.wasm_for(source, opt))
