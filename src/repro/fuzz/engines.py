"""Execution cells for the fuzzer: engine registry + cached cell runner.

An *engine* here is anything that can run a MiniC program end to end:
the native baseline, any of the five runtime models, an AOT variant of
a JIT runtime (``"<runtime>-aot"``), or a test-registered custom engine
(used by the fault-injection tests).  A *cell* is one ``(engine, -O)``
execution of one program.

Cell results are cached in the PR-2 content-addressed artifact store
(kind ``fuzz-result``), keyed by the program text, the engine, the -O
level and the compiler fingerprint — so a re-run of a fuzz campaign
with a warm cache performs zero compiles, exactly like ``wabench``.
Custom (test-registered) engines are never cached: their behavior is
not a pure function of the key.
"""

from __future__ import annotations

import hashlib
import json
from typing import Callable, Dict, List, Optional, Sequence

from ..compiler import compile_source, config_fingerprint
from ..errors import HarnessError
from ..harness.cache import ArtifactCache, CacheStats, cache_key
from ..native import nativecc, run_native
from ..obs import Stopwatch
from ..registry import DEFAULT_FUZZ_ENGINES as DEFAULT_ENGINES
from ..runtimes import ALL_RUNTIME_NAMES, RunResult, make_runtime
from .generator import GENERATOR_VERSION

DEFAULT_OPT_LEVELS = (0, 2)

#: Oracle/config version stamp, part of every fuzz-result cache key.
#: Bump whenever an oracle change needs different data out of a cell
#: (a new metric, a serialization change, ...) — a stale cached result
#: from a correctness-only run must never satisfy a perf-oracle run.
#: /2: perf-differential oracle reads the full counter vector.
ORACLE_VERSION = "fuzz-oracle-2"

#: Test-registered engines: name -> zero-arg factory returning an object
#: with ``.run(wasm_bytes) -> RunResult``.
_CUSTOM_ENGINES: Dict[str, Callable[[], object]] = {}


def register_engine(name: str, factory: Callable[[], object]) -> None:
    """Register a custom engine (fault injection in tests).  Results of
    custom engines are never written to the artifact cache."""
    _CUSTOM_ENGINES[name] = factory


def unregister_engine(name: str) -> None:
    _CUSTOM_ENGINES.pop(name, None)


def is_builtin_engine(name: str) -> bool:
    if name in _CUSTOM_ENGINES:
        return False
    base = name[:-4] if name.endswith("-aot") else name
    return (base == "native" or base in ALL_RUNTIME_NAMES or
            base.startswith("wasmer-"))


def known_engines() -> Sequence[str]:
    return tuple(DEFAULT_ENGINES) + tuple(_CUSTOM_ENGINES)


def validate_engines(engines: Sequence[str]) -> None:
    for name in engines:
        if name in _CUSTOM_ENGINES or is_builtin_engine(name):
            continue
        raise HarnessError(
            f"unknown fuzz engine {name!r}; built-ins: "
            f"{', '.join(DEFAULT_ENGINES)} (plus any runtime name and "
            f"'<jit>-aot' variants)")


def source_digest(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def compute_static_findings(wasm_bytes: bytes) -> List[str]:
    """Static pre-oracle over one compiled module.

    The compiler's own output must decode, validate, survive the whole
    static auditor without crashing, contain no non-minimal LEB128
    encodings, and round-trip the encoder byte-identically with the
    same lint diagnostics.  Each violated expectation is one finding
    string; an empty list means the module is statically clean.
    """
    from ..analysis.audit import audit_module
    from ..analysis.lints import lint_module
    from ..wasm import encode_module, validate_module
    from ..wasm.decoder import decode_module_with_stats

    try:
        module, stats = decode_module_with_stats(wasm_bytes)
    except Exception as exc:
        return [f"decoder rejected compiler output: {exc}"]
    try:
        validate_module(module)
    except Exception as exc:
        return [f"validator rejected compiler output: {exc}"]
    try:
        audit = audit_module(module, stats=stats)
    except Exception as exc:
        return [f"static auditor crashed: {type(exc).__name__}: {exc}"]

    findings: List[str] = []
    if stats.non_minimal:
        head = ", ".join(str(o) for o in stats.non_minimal[:4])
        findings.append(
            f"compiler emitted {len(stats.non_minimal)} non-minimal "
            f"LEB128 encoding(s) at offset(s) {head}")

    try:
        reencoded = encode_module(module)
    except Exception as exc:
        findings.append(f"re-encode crashed: "
                        f"{type(exc).__name__}: {exc}")
        return findings
    if reencoded != wasm_bytes:
        findings.append(
            f"encode/decode round-trip not byte-identical "
            f"({len(wasm_bytes)} -> {len(reencoded)} bytes)")
        try:
            module2, stats2 = decode_module_with_stats(reencoded)
            validate_module(module2)
            diags2 = [d.key() for d in lint_module(module2, stats=stats2)]
        except Exception as exc:
            findings.append(f"re-decode of re-encoded module failed: "
                            f"{type(exc).__name__}: {exc}")
            return findings
        diags1 = [d.key() for d in audit.diagnostics]
        if diags1 != diags2:
            changed = set(diags1).symmetric_difference(diags2)
            findings.append(
                f"lint disagreement after encode/decode round-trip "
                f"({len(changed)} diagnostic(s) changed)")
    return findings


class CellRunner:
    """Compiles and executes (program, engine, -O) cells with caching.

    One instance per process; it memoizes compiled artifacts in memory
    and run results in the shared on-disk store when one is configured.
    """

    def __init__(self, cache: Optional[ArtifactCache] = None,
                 stats: Optional[CacheStats] = None):
        self.cache = cache
        self.stats = stats if stats is not None else CacheStats()
        self._wasm_memo: Dict[tuple, bytes] = {}
        self._native_memo: Dict[tuple, object] = {}
        self._aot_memo: Dict[tuple, object] = {}

    # -- compiled artifacts ------------------------------------------------

    def wasm_for(self, source: str, opt: int) -> bytes:
        key = (source_digest(source), opt)
        wasm = self._wasm_memo.get(key)
        if wasm is None:
            wasm = compile_source(source, opt_level=opt).wasm_bytes
            self._wasm_memo[key] = wasm
        return wasm

    def _native_for(self, source: str, opt: int):
        key = (source_digest(source), opt)
        binary = self._native_memo.get(key)
        if binary is None:
            binary = nativecc(source, opt_level=opt)
            self._native_memo[key] = binary
        return binary

    def _aot_for(self, source: str, runtime_name: str, opt: int):
        key = (source_digest(source), runtime_name, opt)
        image = self._aot_memo.get(key)
        if image is None:
            rt = make_runtime(runtime_name)
            image, _seconds = rt.compile_aot(self.wasm_for(source, opt))
            self._aot_memo[key] = image
        return image

    # -- cell execution ----------------------------------------------------

    def _cell_key(self, source: str, engine: str, opt: int) -> str:
        return cache_key("fuzz-result",
                         gen=GENERATOR_VERSION,
                         oracle=ORACLE_VERSION,
                         src=source_digest(source),
                         engine=engine, opt=opt,
                         cc=config_fingerprint(opt))

    def static_findings(self, source: str, opt: int,
                        use_cache: bool = True) -> List[str]:
        """Cached static pre-oracle findings for one compiled program
        (see :func:`compute_static_findings`)."""
        from ..analysis.lints import LINT_VERSION
        cacheable = use_cache and self.cache is not None
        disk_key = None
        if cacheable:
            disk_key = cache_key("fuzz-static",
                                 gen=GENERATOR_VERSION,
                                 src=source_digest(source), opt=opt,
                                 cc=config_fingerprint(opt),
                                 lint=LINT_VERSION)
            payload = self.cache.get_bytes(disk_key)
            if payload is not None:
                try:
                    findings = json.loads(payload.decode("utf-8"))
                except (ValueError, UnicodeDecodeError):
                    findings = None
                if isinstance(findings, list):
                    self.stats.hit("fuzz-static")
                    return findings
        watch = Stopwatch()
        findings = compute_static_findings(self.wasm_for(source, opt))
        if cacheable:
            self.stats.miss("fuzz-static", watch.seconds)
            self.cache.put_bytes(disk_key,
                                 json.dumps(findings).encode("utf-8"))
        return findings

    def run_cell(self, source: str, engine: str, opt: int,
                 use_cache: bool = True) -> RunResult:
        """One execution; cached for built-in engines."""
        cacheable = (use_cache and self.cache is not None and
                     is_builtin_engine(engine))
        disk_key = self._cell_key(source, engine, opt) if cacheable else None
        if cacheable:
            payload = self.cache.get_bytes(disk_key)
            if payload is not None:
                try:
                    result = RunResult.from_json(payload.decode("utf-8"))
                except (KeyError, TypeError, ValueError,
                        UnicodeDecodeError):
                    result = None
                if result is not None:
                    self.stats.hit("fuzz-result")
                    return result
        watch = Stopwatch()
        result = self._execute(source, engine, opt)
        if cacheable:
            self.stats.miss("fuzz-result", watch.seconds)
            self.cache.put_bytes(disk_key,
                                 result.to_json().encode("utf-8"))
        return result

    def _execute(self, source: str, engine: str, opt: int) -> RunResult:
        factory = _CUSTOM_ENGINES.get(engine)
        if factory is not None:
            return factory().run(self.wasm_for(source, opt))
        if engine == "native":
            return run_native(self._native_for(source, opt))
        if engine.endswith("-aot"):
            base = engine[:-4]
            image = self._aot_for(source, base, opt)
            return make_runtime(base).run(self.wasm_for(source, opt),
                                          aot_image=image)
        return make_runtime(engine).run(self.wasm_for(source, opt))
