"""Corpus persistence: seeds, minimized reproducers, and their replay.

Layout (rooted at ``corpus/`` by default)::

    corpus/
      seeds.json                   # campaign provenance: base seeds run
      reproducers/
        <id>/repro.c               # minimized diverging program
        <id>/meta.json             # how it diverged + how to replay it

``<id>`` is the first 12 hex digits of the SHA-256 of the minimized
source, so saving the same reproducer twice is idempotent and ids are
stable across machines.

The replayer re-checks every saved reproducer against today's engines.
A reproducer whose diverging engine is not registered in this process
(fault-injection engines exist only inside the test that creates them)
cannot diverge again; the regression suite maps that case to *xfail*,
keeping the entry visible without failing the build.  A reproducer
whose engines are all real must replay clean — its divergence was a
bug that has since been fixed, and replaying it green forever is the
point of keeping the corpus.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from .engines import is_builtin_engine, known_engines
from .generator import GENERATOR_VERSION

DEFAULT_CORPUS_DIR = "corpus"

#: meta.json schema version.
CORPUS_FORMAT = 1


@dataclass
class CorpusEntry:
    """One saved reproducer."""

    entry_id: str
    source: str
    meta: Dict

    @property
    def engines(self) -> List[str]:
        return list(self.meta.get("engines", []))

    @property
    def opt_levels(self) -> List[int]:
        return [int(o) for o in self.meta.get("opt_levels", [0, 2])]

    @property
    def signature(self):
        sig = self.meta.get("signature", {})
        base = (sig.get("kind", "behavior"), sig.get("engine", ""),
                int(sig.get("opt", 0)))
        direction = sig.get("direction")
        return base + (direction,) if direction else base

    @property
    def perf_baseline(self):
        """Embedded perf-baseline slice, or None (non-perf entries)."""
        data = self.meta.get("perf")
        if not data:
            return None
        from .perf import PerfBaseline
        return PerfBaseline.from_dict(data)


@dataclass
class ReplayOutcome:
    """Result of replaying one corpus entry."""

    entry: CorpusEntry
    status: str                 # "clean" | "divergent" | "missing-engine"
    detail: str = ""
    divergences: List = field(default_factory=list)


def entry_id_for(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()[:12]


class Corpus:
    """A directory of fuzz seeds and minimized reproducers."""

    def __init__(self, root: str = DEFAULT_CORPUS_DIR):
        self.root = os.path.abspath(root)

    # -- seed provenance ---------------------------------------------------

    def record_campaign(self, base_seed: int, budget: int,
                        engines: Sequence[str],
                        opt_levels: Sequence[int],
                        divergences_found: int) -> None:
        """Append one campaign record to ``seeds.json``."""
        os.makedirs(self.root, exist_ok=True)
        path = os.path.join(self.root, "seeds.json")
        records = []
        if os.path.exists(path):
            try:
                with open(path) as fh:
                    records = json.load(fh)
            except (OSError, ValueError):
                records = []
        record = {"seed": base_seed, "budget": budget,
                  "engines": list(engines),
                  "opt_levels": [int(o) for o in opt_levels],
                  "divergences": divergences_found,
                  "generator": GENERATOR_VERSION}
        if record not in records:
            records.append(record)
        with open(path, "w") as fh:
            json.dump(records, fh, indent=2, sort_keys=True)
            fh.write("\n")

    # -- reproducers -------------------------------------------------------

    def save_reproducer(self, source: str, meta: Dict) -> str:
        """Persist a minimized reproducer; returns its stable id."""
        entry_id = entry_id_for(source)
        directory = os.path.join(self.root, "reproducers", entry_id)
        os.makedirs(directory, exist_ok=True)
        with open(os.path.join(directory, "repro.c"), "w") as fh:
            fh.write(source)
        full_meta = {"format": CORPUS_FORMAT,
                     "generator": GENERATOR_VERSION, **meta}
        with open(os.path.join(directory, "meta.json"), "w") as fh:
            json.dump(full_meta, fh, indent=2, sort_keys=True)
            fh.write("\n")
        return entry_id

    def entries(self) -> List[CorpusEntry]:
        """Every saved reproducer, sorted by id (deterministic order)."""
        directory = os.path.join(self.root, "reproducers")
        if not os.path.isdir(directory):
            return []
        out: List[CorpusEntry] = []
        for entry_id in sorted(os.listdir(directory)):
            src_path = os.path.join(directory, entry_id, "repro.c")
            meta_path = os.path.join(directory, entry_id, "meta.json")
            if not os.path.exists(src_path):
                continue
            with open(src_path) as fh:
                source = fh.read()
            meta: Dict = {}
            if os.path.exists(meta_path):
                try:
                    with open(meta_path) as fh:
                        meta = json.load(fh)
                except (OSError, ValueError):
                    meta = {}
            out.append(CorpusEntry(entry_id=entry_id, source=source,
                                   meta=meta))
        return out

    # -- replay ------------------------------------------------------------

    def replay_entry(self, entry: CorpusEntry,
                     runner=None) -> ReplayOutcome:
        """Re-run one reproducer's oracle check with today's engines."""
        from .oracle import check_program

        available = set(known_engines())
        missing = [e for e in entry.engines
                   if e not in available and not is_builtin_engine(e)]
        if missing:
            return ReplayOutcome(
                entry=entry, status="missing-engine",
                detail=(f"engine(s) {', '.join(sorted(missing))} not "
                        "registered in this process (fault-injection "
                        "engines exist only in their test)"))
        # Perf reproducers carry the baseline slice they were judged
        # against, so replay re-applies the perf oracle with the exact
        # expectations that flagged them — independent of whatever
        # PERF_baseline.json says today.
        report = check_program(entry.source, engines=entry.engines,
                               opt_levels=entry.opt_levels,
                               runner=runner,
                               perf_baseline=entry.perf_baseline)
        if report.divergences:
            return ReplayOutcome(
                entry=entry, status="divergent",
                detail="; ".join(d.describe()
                                 for d in report.divergences),
                divergences=report.divergences)
        return ReplayOutcome(entry=entry, status="clean")

    def replay_all(self, runner=None) -> List[ReplayOutcome]:
        return [self.replay_entry(e, runner=runner)
                for e in self.entries()]
