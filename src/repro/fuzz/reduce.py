"""Delta-debugging reducer: shrink a diverging program to a minimal one.

Generated programs are rendered one statement (or block delimiter) per
line, so classic ddmin over *lines* gives statement granularity, and —
because removing a function header line without its closing brace makes
the candidate fail to compile and be rejected — contiguous chunks give
function granularity for free: whole functions disappear the moment a
chunk spans them.

The interestingness predicate is supplied by the caller; candidates
that fail to compile are simply "not interesting", so the reducer never
needs to understand MiniC syntax.  The whole process is deterministic:
the same input program and predicate always reduce to the same output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from ..compiler import compile_source
from ..errors import ReproError

#: Safety valve: predicate evaluations per reduction.
DEFAULT_MAX_TESTS = 2000


@dataclass
class ReductionResult:
    """Outcome of one reduction."""

    source: str                #: minimized program text
    original_lines: int
    reduced_lines: int
    statement_count: int       #: non-empty, non-brace-only lines
    tests_run: int             #: predicate evaluations spent

    @property
    def removed_lines(self) -> int:
        return self.original_lines - self.reduced_lines


def count_statements(source: str) -> int:
    """Lines that hold actual code (not blank, not a lone ``}``/``{``)."""
    count = 0
    for line in source.splitlines():
        text = line.strip()
        if text and text not in ("{", "}", "} else {"):
            count += 1
    return count


def compiles(source: str) -> bool:
    """True iff the candidate is a valid MiniC program."""
    try:
        compile_source(source, opt_level=0)
    except ReproError:
        return False
    return True


class _Budget:
    def __init__(self, limit: int):
        self.limit = limit
        self.used = 0

    def spend(self) -> bool:
        self.used += 1
        return self.used <= self.limit


def _render(lines: Sequence[str]) -> str:
    return "\n".join(lines) + "\n"


def reduce_source(source: str,
                  is_interesting: Callable[[str], bool],
                  max_tests: int = DEFAULT_MAX_TESTS) -> ReductionResult:
    """ddmin over lines, then a greedy single-line polish pass.

    ``is_interesting(candidate_source)`` must return True when the
    candidate still exhibits the behavior being chased (and must itself
    treat non-compiling candidates as uninteresting — use
    :func:`make_predicate` to get that plus oracle integration).
    """
    lines: List[str] = source.splitlines()
    original = len(lines)
    budget = _Budget(max_tests)
    if not is_interesting(_render(lines)):
        raise ValueError("input program is not 'interesting' — "
                         "nothing to chase while reducing")

    # Phase 1: classic ddmin — remove aligned chunks, doubling
    # granularity when stuck, restarting coarse after progress.
    n = 2
    while len(lines) >= 2:
        chunk = max(1, len(lines) // n)
        progress = False
        start = 0
        while start < len(lines):
            candidate = lines[:start] + lines[start + chunk:]
            if candidate and budget.spend() and \
                    is_interesting(_render(candidate)):
                lines = candidate
                progress = True
                # Same start now addresses the next chunk.
            else:
                start += chunk
            if budget.used >= budget.limit:
                break
        if budget.used >= budget.limit:
            break
        if progress:
            n = max(2, n // 2)
        elif chunk == 1:
            break
        else:
            n = min(len(lines), n * 2)

    # Phase 2: greedy single-line elimination to a local fixpoint (ddmin
    # at chunk == 1 can miss lines that only become removable late).
    changed = True
    while changed and budget.used < budget.limit:
        changed = False
        i = 0
        while i < len(lines):
            candidate = lines[:i] + lines[i + 1:]
            if candidate and budget.spend() and \
                    is_interesting(_render(candidate)):
                lines = candidate
                changed = True
            else:
                i += 1
            if budget.used >= budget.limit:
                break

    reduced = _render(lines)
    return ReductionResult(source=reduced, original_lines=original,
                           reduced_lines=len(lines),
                           statement_count=count_statements(reduced),
                           tests_run=budget.used)


def make_predicate(engines: Sequence[str],
                   opt_levels: Sequence[int],
                   signature,
                   runner=None,
                   perf_baseline=None) -> Callable[[str], bool]:
    """Interestingness = "compiles, and the oracles still report a
    divergence with this signature" (same kind, engine, -O level — and,
    for perf divergences, the same deviation direction).

    Matching on the signature rather than the exact expected/got bytes
    is what lets the reducer strip statements: output shrinks as lines
    vanish, but the *defect* — e.g. "wamr -O2 disagrees with the
    reference", or "wamr -O2 runs anomalously slow" — must survive
    every step.  For perf divergences the candidate's benchmark class
    may legitimately shift as it shrinks (smaller programs fall into
    smaller size buckets); the *anomaly signature* — outlier engine
    pair plus deviation direction — is what must be preserved.
    """
    from .oracle import check_program

    def is_interesting(candidate: str) -> bool:
        if not compiles(candidate):
            return False
        try:
            report = check_program(candidate, engines=engines,
                                   opt_levels=opt_levels, runner=runner,
                                   check_determinism=False,
                                   perf_baseline=perf_baseline)
        except ReproError:
            return False
        return any(d.signature() == signature
                   for d in report.divergences)

    return is_interesting


def reduce_divergence(divergence, engines: Sequence[str],
                      opt_levels: Sequence[int],
                      runner=None,
                      max_tests: int = DEFAULT_MAX_TESTS,
                      perf_baseline=None
                      ) -> Optional[ReductionResult]:
    """Minimize the program attached to ``divergence``.

    Returns None when the divergence does not reproduce on the original
    program (flaky environment, or an engine changed underneath us).
    """
    predicate = make_predicate(engines, opt_levels,
                               divergence.signature(), runner=runner,
                               perf_baseline=perf_baseline)
    try:
        return reduce_source(divergence.source, predicate,
                             max_tests=max_tests)
    except ValueError:
        return None
