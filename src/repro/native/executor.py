"""Execution of native binaries (the paper's baseline measurements)."""

from __future__ import annotations

from typing import Optional, Sequence

from ..errors import ExitProc, Trap
from ..hw import CPUModel, MachineConfig
from ..isa.machine import Machine
from ..isa.memory import LinearMemory
from ..obs.spans import TraceBuilder
from ..runtimes.base import RunResult
from ..wasi import VirtualFS, WasiAPI
from .nativecc import NativeBinary

# A statically-linked native binary's base footprint: text/rodata mapping
# plus loader and initial libc heap structures.
_NATIVE_BASE_BYTES = 720_000


def run_native(binary: NativeBinary,
               fs: Optional[VirtualFS] = None,
               argv: Sequence[str] = ("wabench",),
               config: Optional[MachineConfig] = None) -> RunResult:
    """Run a native binary from cold start under the hardware model.

    Follows the same span discipline as :class:`~repro.runtimes.base.
    RunPipeline`, with the phases a native process actually has: spawn
    (mappings), load (data segments), execute, teardown.
    """
    program = binary.program
    cpu = CPUModel(config)
    trace = TraceBuilder(cpu.counters)
    cpu.trace = trace

    trap = None
    exit_code = 0
    execute_span = None
    with trace.span("run", runtime="native", mode="native"):
        with trace.span("spawn"):
            cpu.memory.alloc("native-base", _NATIVE_BASE_BYTES)
            cpu.memory.alloc("native-code", program.code_bytes)
            fs = fs if fs is not None else VirtualFS()
            wasi = WasiAPI(fs=fs, cpu=cpu, argv=argv, engine="native")
        with trace.span("load"):
            touched = cpu.memory.lazy_region("native-data")
            memory = LinearMemory(program.memory_pages,
                                  program.memory_max_pages, touched)
            machine = Machine(program, cpu, memory=memory,
                              host=wasi.as_host())
            machine.apply_data_segments()
        with trace.span("execute") as execute_span:
            try:
                if program.start_function is not None:
                    machine.call_function(program.start_function, ())
                machine.run_export("_start")
            except ExitProc as exc:
                exit_code = exc.code
            except Trap as exc:
                trap = str(exc)
        with trace.span("teardown"):
            cpu.memory.checkpoint()

    return RunResult(
        runtime="native",
        stdout=bytes(fs.stdout),
        exit_code=exit_code,
        trap=trap,
        seconds=cpu.seconds,
        cycles=cpu.cycles,
        mrss_bytes=cpu.memory.peak_bytes,
        counters=cpu.counters.snapshot(),
        compile_seconds=0.0,
        execute_seconds=cpu.config.cycles_to_seconds(
            execute_span["cycles_end"] - execute_span["cycles_start"]),
        memory_breakdown=cpu.memory.breakdown(),
        code_bytes=program.code_bytes,
        trace=trace.records(),
        wasi_calls=wasi.stats.as_dict(),
    )
