"""Native baseline: MiniC compiled straight to the machine ISA.

The paper's baseline is the same C source compiled with plain clang and
run directly on the CPU.  Here, ``nativecc`` drives the same frontend and
midend as ``wasicc`` at the chosen -O level, then lowers through the
native backend (full register file, no sandbox bounds checks, and the
heavy machine-level pipeline gated by -O), and the binary runs on the
virtual CPU with no runtime system underneath — just the libc-to-syscall
boundary.
"""

from .nativecc import NativeBinary, nativecc
from .executor import run_native

__all__ = ["NativeBinary", "nativecc", "run_native"]
