"""``nativecc`` — the native C compiler of the reproduction.

Shares MiniC's frontend and the -O-gated midend with ``wasicc`` (as clang
shares its frontend between x86 and wasm targets), then lowers to the
machine ISA through a backend that differs from the JIT tiers exactly the
way native codegen differs from sandboxed JIT codegen:

* no software bounds checks (no sandbox);
* the full register file;
* machine-level optimization passes *gated by the -O flag* — which is why
  native executables respond more strongly to -O than the re-optimizing
  JIT runtimes do (paper Fig. 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..compiler import compile_source
from ..hw.config import NATIVE_CODE_BASE
from ..isa.program import MProgram
from ..runtimes.jit.lowering import LoweringOptions, lower_module
from ..runtimes.jit.passes import run_optimizing_pipeline
from ..runtimes.jit.regalloc import allocate_registers

_NATIVE_REGISTERS = 28


@dataclass
class NativeBinary:
    """A compiled native executable."""

    program: MProgram
    opt_level: int
    wasm_ops: int           # size of the midend artifact (for reports)

    @property
    def code_bytes(self) -> int:
        return self.program.code_bytes


def nativecc(source: str, opt_level: int = 2,
             defines: Optional[Dict[str, str]] = None,
             include_libc: bool = True) -> NativeBinary:
    """Compile MiniC source to a native binary at the given -O level."""
    native_defines = {"TARGET_NATIVE": "1"}
    native_defines.update(defines or {})
    artifact = compile_source(source, opt_level=opt_level,
                              defines=native_defines,
                              include_libc=include_libc)
    options = LoweringOptions(shadow_stack=False, check_density=0.0)
    program = lower_module(artifact.module, options)
    for func in program.functions:
        if opt_level >= 1:
            run_optimizing_pipeline(func, heavy=(opt_level >= 2))
        allocate_registers(func,
                           _NATIVE_REGISTERS if opt_level >= 1 else 6)
    program.source_opt_level = opt_level
    program.finalize(NATIVE_CODE_BASE)
    return NativeBinary(program=program, opt_level=opt_level,
                        wasm_ops=artifact.instruction_count)
