"""WASI snapshot-preview1 layer: host functions + virtual filesystem.

Standalone runtimes implement WASI so Wasm programs can reach system
resources; this package is that implementation for every runtime model in
the reproduction, plus the native baseline's syscall layer.
"""

from . import errno
from .api import WasiAPI
from .fs import (O_CREAT, O_DIRECTORY, O_EXCL, O_TRUNC, SEEK_CUR, SEEK_END,
                 SEEK_SET, FileHandle, VirtualFS)

__all__ = ["errno", "WasiAPI", "O_CREAT", "O_DIRECTORY", "O_EXCL", "O_TRUNC",
           "SEEK_CUR", "SEEK_END", "SEEK_SET", "FileHandle", "VirtualFS"]
