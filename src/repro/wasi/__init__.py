"""WASI snapshot-preview1 layer: host functions + virtual filesystem.

Standalone runtimes implement WASI so Wasm programs can reach system
resources; this package is that implementation for every runtime model in
the reproduction, plus the native baseline's syscall layer.  The package
is layered: ``fs`` is the hierarchical in-memory filesystem (preopens,
rights, directories), ``api`` is the preview1 surface charged against
per-engine syscall cost tables from ``repro.registry``, and ``errno``
holds the shared error numbers.
"""

from . import errno
from .api import DEFAULT_ENVIRON, WasiAPI
from .fs import (FDFLAG_APPEND, FILETYPE_CHARACTER_DEVICE,
                 FILETYPE_DIRECTORY, FILETYPE_REGULAR_FILE,
                 FILETYPE_UNKNOWN, O_CREAT, O_DIRECTORY, O_EXCL, O_TRUNC,
                 RIGHT_FD_READ, RIGHT_FD_READDIR, RIGHT_FD_SEEK,
                 RIGHT_FD_WRITE, RIGHTS_ALL, SEEK_CUR, SEEK_END, SEEK_SET,
                 DirNode, FileHandle, FileNode, VirtualFS)

__all__ = ["errno", "WasiAPI", "DEFAULT_ENVIRON",
           "O_CREAT", "O_DIRECTORY", "O_EXCL", "O_TRUNC",
           "FDFLAG_APPEND", "FILETYPE_CHARACTER_DEVICE",
           "FILETYPE_DIRECTORY", "FILETYPE_REGULAR_FILE",
           "FILETYPE_UNKNOWN", "RIGHT_FD_READ", "RIGHT_FD_READDIR",
           "RIGHT_FD_SEEK", "RIGHT_FD_WRITE", "RIGHTS_ALL",
           "SEEK_CUR", "SEEK_END", "SEEK_SET",
           "DirNode", "FileHandle", "FileNode", "VirtualFS"]
