"""WASI errno values (snapshot preview1 subset used by the suite)."""

SUCCESS = 0
E2BIG = 1
EACCES = 2
EBADF = 8
EEXIST = 20
EINVAL = 28
EIO = 29
EISDIR = 31
ENOENT = 44
ENOSYS = 52
ENOTDIR = 54
ENOTSUP = 58
ESPIPE = 70

NAMES = {value: name for name, value in list(globals().items())
         if isinstance(value, int) and name.isupper()}
