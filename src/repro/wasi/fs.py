"""In-memory hierarchical virtual filesystem behind the WASI layer.

Every run gets its own :class:`VirtualFS` holding the benchmark's input
files, the standard streams, and anything the guest creates.  The same
instance backs both the Wasm runtimes (through WASI) and the native
baseline (through the host syscall layer), so outputs are directly
comparable.

The tree is real: directories are :class:`DirNode` objects with sorted
child listings (``fd_readdir`` ordering is deterministic by
construction), files are :class:`FileNode` objects whose ``data``
bytearray is shared by every open handle — truncation happens in place,
so concurrently-open descriptors never diverge from the file.  Path
resolution starts from a preopen table (fd 3 is the root; additional
preopens can be installed with :meth:`VirtualFS.add_preopen`).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple, Union

from ..errors import WasiError
from . import errno

# WASI whence values for fd_seek.
SEEK_SET = 0
SEEK_CUR = 1
SEEK_END = 2

# WASI open flags (oflags).
O_CREAT = 1 << 0
O_DIRECTORY = 1 << 1
O_EXCL = 1 << 2
O_TRUNC = 1 << 3

# WASI fdflags (subset the shim honors).
FDFLAG_APPEND = 1 << 0

# WASI filetypes (preview1).
FILETYPE_UNKNOWN = 0
FILETYPE_CHARACTER_DEVICE = 2
FILETYPE_DIRECTORY = 3
FILETYPE_REGULAR_FILE = 4

# WASI rights bits (the subset the shim checks).  A rights mask of 0 at
# path_open means "unrestricted" — the permissive default every libc in
# this repo uses; a non-zero mask restricts the handle to exactly the
# granted operations, the way a capability-honoring runtime would.
RIGHT_FD_READ = 1 << 1
RIGHT_FD_SEEK = 1 << 2
RIGHT_FD_WRITE = 1 << 6
RIGHT_FD_READDIR = 1 << 14
RIGHTS_ALL = RIGHT_FD_READ | RIGHT_FD_SEEK | RIGHT_FD_WRITE | \
    RIGHT_FD_READDIR

_PREOPEN_FIRST_FD = 3  # 0-2 std streams; preopens from 3 up


class FileNode:
    """A regular file: one shared byte buffer plus a stable inode."""

    __slots__ = ("data", "ino")
    kind = "file"

    def __init__(self, data: bytes = b"", ino: int = 0):
        self.data = bytearray(data)
        self.ino = ino

    @property
    def filetype(self) -> int:
        return FILETYPE_REGULAR_FILE


class DirNode:
    """A directory: named children, listed in sorted order."""

    __slots__ = ("entries", "ino")
    kind = "dir"

    def __init__(self, ino: int = 0):
        self.entries: Dict[str, Union[FileNode, "DirNode"]] = {}
        self.ino = ino

    @property
    def filetype(self) -> int:
        return FILETYPE_DIRECTORY

    def listing(self) -> List[Tuple[str, Union[FileNode, "DirNode"]]]:
        """Deterministic readdir order: lexicographic by name."""
        return sorted(self.entries.items())


Node = Union[FileNode, DirNode]


class FileHandle:
    """One open file descriptor over a tree node."""

    def __init__(self, fd: int, path: str, node: Node,
                 rights: int = RIGHTS_ALL, fdflags: int = 0,
                 preopen: bool = False):
        self.fd = fd
        self.path = path
        self.node = node
        self.rights = rights if rights else RIGHTS_ALL
        self.fdflags = fdflags
        self.preopen = preopen
        self.position = 0
        self.open = True

    @property
    def data(self) -> bytearray:
        """The file's live buffer (shared with every other handle)."""
        return self.node.data

    def allows(self, right: int) -> bool:
        return bool(self.rights & right)


class VirtualFS:
    """Hierarchical in-memory tree plus the three standard streams."""

    def __init__(self, files: Optional[Dict[str, bytes]] = None,
                 preopens: Iterable[str] = ()):
        self._next_ino = 1
        self.root = DirNode(ino=self._take_ino())
        self.stdin = bytearray()
        self.stdout = bytearray()
        self.stderr = bytearray()
        self._stdin_pos = 0
        self._handles: Dict[int, FileHandle] = {}
        #: fd -> guest path of each preopened directory; fd 3 is always
        #: the root.
        self.preopens: Dict[int, str] = {_PREOPEN_FIRST_FD: "."}
        self._next_fd = _PREOPEN_FIRST_FD + 1
        self._handles[_PREOPEN_FIRST_FD] = FileHandle(
            _PREOPEN_FIRST_FD, ".", self.root, preopen=True)
        for path, data in (files or {}).items():
            self.add_file(path, data)
        for path in preopens:
            self.add_preopen(path)

    def _take_ino(self) -> int:
        ino = self._next_ino
        self._next_ino += 1
        return ino

    # -- setup helpers --------------------------------------------------

    def add_file(self, path: str, data: bytes) -> None:
        """Install an input file, creating intermediate directories."""
        parts = self._parts(path)
        if not parts:
            raise WasiError(f"cannot add a file at the root: {path!r}")
        parent = self._ensure_dirs(parts[:-1])
        node = parent.entries.get(parts[-1])
        if isinstance(node, DirNode):
            raise WasiError(f"{path!r} is a directory")
        if node is None:
            node = FileNode(ino=self._take_ino())
            parent.entries[parts[-1]] = node
        node.data[:] = data

    def add_dir(self, path: str) -> None:
        """Create a (possibly nested) directory."""
        self._ensure_dirs(self._parts(path))

    def add_preopen(self, path: str) -> int:
        """Preopen a directory (created on demand); returns its fd."""
        parts = self._parts(path)
        self._ensure_dirs(parts)
        norm = "/".join(parts) or "."
        for fd, existing in self.preopens.items():
            if existing == norm:
                return fd
        fd = self._next_fd
        self._next_fd += 1
        node = self._lookup(parts)
        self.preopens[fd] = norm
        self._handles[fd] = FileHandle(fd, norm, node, preopen=True)
        return fd

    def set_stdin(self, data: bytes) -> None:
        self.stdin = bytearray(data)
        self._stdin_pos = 0

    # -- path handling --------------------------------------------------

    @staticmethod
    def _parts(path: str) -> List[str]:
        """Split a guest path into normalized components.

        Strips ``./`` *prefixes* (not a character class — dotfiles like
        ``.config`` keep their dots), drops empty and ``.`` segments,
        and resolves ``..`` lexically, clamping at the sandbox root the
        way a preopen-confined runtime does.
        """
        while path.startswith("./"):
            path = path[2:]
        parts: List[str] = []
        for segment in path.split("/"):
            if segment in ("", "."):
                continue
            if segment == "..":
                if parts:
                    parts.pop()
                continue
            parts.append(segment)
        return parts

    @classmethod
    def _norm(cls, path: str) -> str:
        return "/".join(cls._parts(path)) or "."

    def _lookup(self, parts: List[str],
                base: Optional[DirNode] = None) -> Optional[Node]:
        node: Node = base if base is not None else self.root
        for segment in parts:
            if not isinstance(node, DirNode):
                return None
            child = node.entries.get(segment)
            if child is None:
                return None
            node = child
        return node

    def _ensure_dirs(self, parts: List[str]) -> DirNode:
        node = self.root
        for segment in parts:
            child = node.entries.get(segment)
            if child is None:
                child = DirNode(ino=self._take_ino())
                node.entries[segment] = child
            elif not isinstance(child, DirNode):
                raise WasiError(f"{segment!r} is not a directory")
            node = child
        return node

    def _resolve_dirfd(self, dirfd: Optional[int]
                       ) -> Union[DirNode, int]:
        """The directory node a path resolves against, or ``-errno``."""
        if dirfd is None:
            return self.root
        h = self._handles.get(dirfd)
        if h is None or not h.open:
            return -errno.EBADF
        if not isinstance(h.node, DirNode):
            return -errno.ENOTDIR
        return h.node

    def node_at(self, path: str,
                dirfd: Optional[int] = None) -> Optional[Node]:
        """The tree node at a guest path (None when absent)."""
        base = self._resolve_dirfd(dirfd)
        if isinstance(base, int):
            return None
        return self._lookup(self._parts(path), base)

    #: Back-compat flat view: normalized path -> live file buffer.
    @property
    def files(self) -> Dict[str, bytearray]:
        out: Dict[str, bytearray] = {}

        def walk(node: DirNode, prefix: str) -> None:
            for name, child in node.listing():
                path = prefix + name
                if isinstance(child, DirNode):
                    walk(child, path + "/")
                else:
                    out[path] = child.data

        walk(self.root, "")
        return out

    # -- descriptor table -----------------------------------------------

    def open_path(self, path: str, oflags: int,
                  dirfd: Optional[int] = None, rights: int = 0,
                  fdflags: int = 0) -> int:
        """Open a path; returns an fd or a negative errno."""
        base = self._resolve_dirfd(dirfd)
        if isinstance(base, int):
            return base
        parts = self._parts(path)
        node = self._lookup(parts, base)
        if oflags & O_EXCL and node is not None:
            return -errno.EEXIST
        if oflags & O_DIRECTORY:
            if node is None:
                return -errno.ENOENT
            if not isinstance(node, DirNode):
                return -errno.ENOTDIR
        if node is None:
            if not oflags & O_CREAT:
                return -errno.ENOENT
            if not parts:
                return -errno.EINVAL
            parent = self._lookup(parts[:-1], base)
            if parent is None:
                return -errno.ENOENT
            if not isinstance(parent, DirNode):
                return -errno.ENOTDIR
            node = FileNode(ino=self._take_ino())
            parent.entries[parts[-1]] = node
        elif oflags & O_TRUNC:
            if isinstance(node, DirNode):
                return -errno.EISDIR
            # Truncate *in place*: handles already open on this file
            # keep referencing the same buffer.
            del node.data[:]
        fd = self._next_fd
        self._next_fd += 1
        norm = "/".join(parts) or "."
        handle = FileHandle(fd, norm, node, rights=rights,
                            fdflags=fdflags)
        if isinstance(node, FileNode) and fdflags & FDFLAG_APPEND:
            handle.position = len(node.data)
        self._handles[fd] = handle
        return fd

    def handle(self, fd: int) -> Optional[FileHandle]:
        h = self._handles.get(fd)
        if h is not None and h.open:
            return h
        return None

    def close(self, fd: int) -> int:
        h = self._handles.get(fd)
        if h is None or not h.open:
            return errno.EBADF
        if h.preopen:
            return errno.ENOTSUP  # preopens stay open for the run
        h.open = False
        return errno.SUCCESS

    # -- I/O primitives --------------------------------------------------

    def write(self, fd: int, payload: bytes) -> int:
        """Write to an fd; returns bytes written or negative errno."""
        if fd == 1:
            self.stdout += payload
            return len(payload)
        if fd == 2:
            self.stderr += payload
            return len(payload)
        h = self.handle(fd)
        if h is None:
            return -errno.EBADF
        if isinstance(h.node, DirNode):
            return -errno.EISDIR
        if not h.allows(RIGHT_FD_WRITE):
            return -errno.EACCES
        if h.fdflags & FDFLAG_APPEND:
            h.position = len(h.node.data)
        end = h.position + len(payload)
        data = h.node.data
        if end > len(data):
            data.extend(b"\x00" * (end - len(data)))
        data[h.position:end] = payload
        h.position = end
        return len(payload)

    def read(self, fd: int, size: int) -> Optional[bytes]:
        """Read from an fd; None means EBADF/EACCES/EISDIR."""
        if fd == 0:
            chunk = bytes(self.stdin[self._stdin_pos:self._stdin_pos + size])
            self._stdin_pos += len(chunk)
            return chunk
        h = self.handle(fd)
        if h is None or isinstance(h.node, DirNode):
            return None
        if not h.allows(RIGHT_FD_READ):
            return None
        chunk = bytes(h.node.data[h.position:h.position + size])
        h.position += len(chunk)
        return chunk

    def pread(self, fd: int, size: int, offset: int) -> Optional[bytes]:
        """Positioned read; never moves the handle's cursor."""
        h = self.handle(fd)
        if h is None or isinstance(h.node, DirNode):
            return None
        if not h.allows(RIGHT_FD_READ):
            return None
        return bytes(h.node.data[offset:offset + size])

    def pwrite(self, fd: int, payload: bytes, offset: int) -> int:
        """Positioned write; never moves the handle's cursor."""
        h = self.handle(fd)
        if h is None:
            return -errno.EBADF
        if isinstance(h.node, DirNode):
            return -errno.EISDIR
        if not h.allows(RIGHT_FD_WRITE):
            return -errno.EACCES
        if offset < 0:
            return -errno.EINVAL
        data = h.node.data
        end = offset + len(payload)
        if end > len(data):
            data.extend(b"\x00" * (end - len(data)))
        data[offset:end] = payload
        return len(payload)

    def seek(self, fd: int, offset: int, whence: int) -> int:
        """Seek; returns new position or negative errno."""
        h = self.handle(fd)
        if h is None:
            return -errno.EBADF
        if isinstance(h.node, DirNode):
            return -errno.EISDIR
        if not h.allows(RIGHT_FD_SEEK):
            return -errno.EACCES
        if whence == SEEK_SET:
            new = offset
        elif whence == SEEK_CUR:
            new = h.position + offset
        elif whence == SEEK_END:
            new = len(h.node.data) + offset
        else:
            return -errno.EINVAL
        if new < 0:
            return -errno.EINVAL
        h.position = new
        return new

    # -- directory / metadata operations ---------------------------------

    def readdir(self, fd: int) -> Union[List[Tuple[str, Node]], int]:
        """Sorted entries of an open directory, or ``-errno``."""
        h = self.handle(fd)
        if h is None:
            return -errno.EBADF
        if not isinstance(h.node, DirNode):
            return -errno.ENOTDIR
        if not h.allows(RIGHT_FD_READDIR):
            return -errno.EACCES
        return h.node.listing()

    def unlink(self, path: str, dirfd: Optional[int] = None) -> int:
        base = self._resolve_dirfd(dirfd)
        if isinstance(base, int):
            return base
        parts = self._parts(path)
        if not parts:
            return -errno.EINVAL
        parent = self._lookup(parts[:-1], base)
        if not isinstance(parent, DirNode):
            return -errno.ENOENT
        node = parent.entries.get(parts[-1])
        if node is None:
            return -errno.ENOENT
        if isinstance(node, DirNode):
            return -errno.EISDIR
        del parent.entries[parts[-1]]
        return errno.SUCCESS

    def rename(self, old_path: str, new_path: str,
               old_dirfd: Optional[int] = None,
               new_dirfd: Optional[int] = None) -> int:
        old_base = self._resolve_dirfd(old_dirfd)
        if isinstance(old_base, int):
            return old_base
        new_base = self._resolve_dirfd(new_dirfd)
        if isinstance(new_base, int):
            return new_base
        old_parts = self._parts(old_path)
        new_parts = self._parts(new_path)
        if not old_parts or not new_parts:
            return -errno.EINVAL
        old_parent = self._lookup(old_parts[:-1], old_base)
        if not isinstance(old_parent, DirNode):
            return -errno.ENOENT
        node = old_parent.entries.get(old_parts[-1])
        if node is None:
            return -errno.ENOENT
        new_parent = self._lookup(new_parts[:-1], new_base)
        if not isinstance(new_parent, DirNode):
            return -errno.ENOENT
        existing = new_parent.entries.get(new_parts[-1])
        if isinstance(existing, DirNode):
            return -errno.EISDIR
        del old_parent.entries[old_parts[-1]]
        new_parent.entries[new_parts[-1]] = node
        return errno.SUCCESS

    def filestat(self, path: str,
                 dirfd: Optional[int] = None) -> Union[Tuple, int]:
        """``(ino, filetype, size)`` of a path, or ``-errno``."""
        base = self._resolve_dirfd(dirfd)
        if isinstance(base, int):
            return base
        node = self._lookup(self._parts(path), base)
        if node is None:
            return -errno.ENOENT
        size = len(node.data) if isinstance(node, FileNode) else 0
        return (node.ino, node.filetype, size)

    def size_of(self, path: str) -> int:
        node = self._lookup(self._parts(path))
        if not isinstance(node, FileNode):
            raise WasiError(f"no such file: {path}")
        return len(node.data)

    def stdout_text(self, encoding: str = "utf-8") -> str:
        return self.stdout.decode(encoding, errors="replace")
