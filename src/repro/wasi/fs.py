"""In-memory virtual filesystem behind the WASI layer.

Every run gets its own :class:`VirtualFS` holding the benchmark's input
files, the standard streams, and anything the guest creates.  The same
instance backs both the Wasm runtimes (through WASI) and the native
baseline (through the host syscall layer), so outputs are directly
comparable.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..errors import WasiError
from . import errno

# WASI whence values for fd_seek.
SEEK_SET = 0
SEEK_CUR = 1
SEEK_END = 2

# WASI open flags (oflags).
O_CREAT = 1 << 0
O_DIRECTORY = 1 << 1
O_EXCL = 1 << 2
O_TRUNC = 1 << 3

_FIRST_USER_FD = 4  # 0-2 std streams, 3 the preopened root


class FileHandle:
    """One open file descriptor."""

    def __init__(self, fd: int, path: str, data: bytearray,
                 append: bool = False):
        self.fd = fd
        self.path = path
        self.data = data
        self.position = len(data) if append else 0
        self.open = True


class VirtualFS:
    """Path-keyed in-memory files plus the three standard streams."""

    def __init__(self, files: Optional[Dict[str, bytes]] = None):
        self.files: Dict[str, bytearray] = {
            path: bytearray(data) for path, data in (files or {}).items()}
        self.stdin = bytearray()
        self.stdout = bytearray()
        self.stderr = bytearray()
        self._stdin_pos = 0
        self._handles: Dict[int, FileHandle] = {}
        self._next_fd = _FIRST_USER_FD

    # -- setup helpers --------------------------------------------------

    def add_file(self, path: str, data: bytes) -> None:
        self.files[self._norm(path)] = bytearray(data)

    def set_stdin(self, data: bytes) -> None:
        self.stdin = bytearray(data)
        self._stdin_pos = 0

    @staticmethod
    def _norm(path: str) -> str:
        return path.lstrip("./").lstrip("/") or "."

    # -- descriptor table -----------------------------------------------

    def open_path(self, path: str, oflags: int) -> int:
        """Open a path; returns an fd or raises a WASI errno via ValueError."""
        path = self._norm(path)
        exists = path in self.files
        if oflags & O_EXCL and exists:
            return -errno.EEXIST
        if not exists:
            if not oflags & O_CREAT:
                return -errno.ENOENT
            self.files[path] = bytearray()
        elif oflags & O_TRUNC:
            self.files[path] = bytearray()
        fd = self._next_fd
        self._next_fd += 1
        self._handles[fd] = FileHandle(fd, path, self.files[path])
        return fd

    def handle(self, fd: int) -> Optional[FileHandle]:
        h = self._handles.get(fd)
        if h is not None and h.open:
            return h
        return None

    def close(self, fd: int) -> int:
        h = self._handles.get(fd)
        if h is None or not h.open:
            return errno.EBADF
        h.open = False
        return errno.SUCCESS

    # -- I/O primitives ------------------------------------------------------

    def write(self, fd: int, payload: bytes) -> int:
        """Write to an fd; returns bytes written or negative errno."""
        if fd == 1:
            self.stdout += payload
            return len(payload)
        if fd == 2:
            self.stderr += payload
            return len(payload)
        h = self.handle(fd)
        if h is None:
            return -errno.EBADF
        end = h.position + len(payload)
        if end > len(h.data):
            h.data.extend(b"\x00" * (end - len(h.data)))
        h.data[h.position:end] = payload
        h.position = end
        return len(payload)

    def read(self, fd: int, size: int) -> Optional[bytes]:
        """Read from an fd; None means EBADF."""
        if fd == 0:
            chunk = bytes(self.stdin[self._stdin_pos:self._stdin_pos + size])
            self._stdin_pos += len(chunk)
            return chunk
        h = self.handle(fd)
        if h is None:
            return None
        chunk = bytes(h.data[h.position:h.position + size])
        h.position += len(chunk)
        return chunk

    def seek(self, fd: int, offset: int, whence: int) -> int:
        """Seek; returns new position or negative errno."""
        h = self.handle(fd)
        if h is None:
            return -errno.EBADF
        if whence == SEEK_SET:
            new = offset
        elif whence == SEEK_CUR:
            new = h.position + offset
        elif whence == SEEK_END:
            new = len(h.data) + offset
        else:
            return -errno.EINVAL
        if new < 0:
            return -errno.EINVAL
        h.position = new
        return new

    def size_of(self, path: str) -> int:
        data = self.files.get(self._norm(path))
        if data is None:
            raise WasiError(f"no such file: {path}")
        return len(data)

    def stdout_text(self, encoding: str = "utf-8") -> str:
        return self.stdout.decode(encoding, errors="replace")
