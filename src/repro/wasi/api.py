"""WASI snapshot-preview1 host functions.

One :class:`WasiAPI` instance serves a single program run.  Every method
implements one WASI function against a guest :class:`LinearMemory` and
the run's :class:`VirtualFS`, and charges the CPU model for the host-side
work (syscall entry, buffer copies) the way a real runtime's WASI shim
burns instructions.

The same implementation backs the native baseline's "syscall" layer —
the paper's native binaries and Wasm binaries ultimately reach the same
kernel, and so do ours.
"""

from __future__ import annotations

import struct
from typing import Dict, Optional, Sequence

from ..errors import ExitProc
from ..hw import CPUModel
from ..isa.memory import LinearMemory
from ..obs.metrics import CallStats
from . import errno
from .fs import VirtualFS

_SYSCALL_BASE_COST = 180       # instructions per host call (shim + checks)
_COPY_COST_PER_8B = 1          # instructions per 8 copied bytes

_CLOCK_REALTIME_EPOCH_NS = 1_650_000_000_000_000_000  # fixed, deterministic


class WasiAPI:
    """All WASI functions used by the WABench suite."""

    NAMES = ("fd_write", "fd_read", "fd_close", "fd_seek", "path_open",
             "args_sizes_get", "args_get", "clock_time_get", "random_get",
             "proc_exit")

    def __init__(self, fs: Optional[VirtualFS] = None,
                 cpu: Optional[CPUModel] = None,
                 argv: Sequence[str] = ("wabench",),
                 random_seed: int = 0x5EED):
        self.fs = fs or VirtualFS()
        self.cpu = cpu
        self.argv = [a.encode() + b"\x00" for a in argv]
        self._rng_state = random_seed & 0xFFFFFFFFFFFFFFFF
        self.exit_code: Optional[int] = None
        #: Per-call event hook: call counts + modeled instruction cost
        #: for every WASI function this run hit (the eWAPA-style view;
        #: surfaces as ``RunResult.wasi_calls`` and trace ``wasi`` lines).
        self.stats = CallStats()

    # -- cost accounting --------------------------------------------------

    def _charge(self, fn: str, extra_bytes: int = 0) -> None:
        """Charge one host call's modeled cost and record the event."""
        cost = _SYSCALL_BASE_COST + (extra_bytes // 8) * _COPY_COST_PER_8B
        self.stats.record(fn, cost)
        if self.cpu is not None:
            self.cpu.counters.instructions += cost

    # -- the interface -----------------------------------------------------

    def fd_write(self, mem: LinearMemory, fd: int, iovs: int,
                 iovs_len: int, nwritten_ptr: int) -> int:
        total = 0
        chunks = []
        for i in range(iovs_len):
            base = mem.load_u32(iovs + i * 8)
            length = mem.load_u32(iovs + i * 8 + 4)
            chunks.append(mem.read_bytes(base, length))
        payload = b"".join(chunks)
        written = self.fs.write(fd, payload)
        self._charge("fd_write", len(payload))
        if written < 0:
            return -written
        mem.store_u32(nwritten_ptr, written)
        return errno.SUCCESS

    def fd_read(self, mem: LinearMemory, fd: int, iovs: int,
                iovs_len: int, nread_ptr: int) -> int:
        total = 0
        for i in range(iovs_len):
            base = mem.load_u32(iovs + i * 8)
            length = mem.load_u32(iovs + i * 8 + 4)
            chunk = self.fs.read(fd, length)
            if chunk is None:
                self._charge("fd_read")
                return errno.EBADF
            mem.write_bytes(base, chunk)
            total += len(chunk)
            if len(chunk) < length:
                break
        self._charge("fd_read", total)
        mem.store_u32(nread_ptr, total)
        return errno.SUCCESS

    def fd_close(self, mem: LinearMemory, fd: int) -> int:
        self._charge("fd_close")
        return self.fs.close(fd)

    def fd_seek(self, mem: LinearMemory, fd: int, offset: int,
                whence: int, newoffset_ptr: int) -> int:
        self._charge("fd_seek")
        # offset arrives as an unsigned i64 image; interpret signed.
        if offset >= 1 << 63:
            offset -= 1 << 64
        result = self.fs.seek(fd, offset, whence)
        if result < 0:
            return -result
        mem.store("<Q", newoffset_ptr, 8, result)
        return errno.SUCCESS

    def path_open(self, mem: LinearMemory, dirfd: int, dirflags: int,
                  path_ptr: int, path_len: int, oflags: int,
                  rights_base: int, rights_inheriting: int,
                  fdflags: int, opened_fd_ptr: int) -> int:
        self._charge("path_open", path_len)
        path = mem.read_bytes(path_ptr, path_len).decode("utf-8",
                                                         errors="replace")
        fd = self.fs.open_path(path, oflags)
        if fd < 0:
            return -fd
        mem.store_u32(opened_fd_ptr, fd)
        return errno.SUCCESS

    def args_sizes_get(self, mem: LinearMemory, argc_ptr: int,
                       argv_buf_size_ptr: int) -> int:
        self._charge("args_sizes_get")
        mem.store_u32(argc_ptr, len(self.argv))
        mem.store_u32(argv_buf_size_ptr, sum(len(a) for a in self.argv))
        return errno.SUCCESS

    def args_get(self, mem: LinearMemory, argv_ptr: int,
                 argv_buf: int) -> int:
        offset = 0
        for i, arg in enumerate(self.argv):
            mem.store_u32(argv_ptr + 4 * i, argv_buf + offset)
            mem.write_bytes(argv_buf + offset, arg)
            offset += len(arg)
        self._charge("args_get", offset)
        return errno.SUCCESS

    def clock_time_get(self, mem: LinearMemory, clock_id: int,
                       precision: int, time_ptr: int) -> int:
        """Deterministic clock driven by the modeled cycle count."""
        self._charge("clock_time_get")
        if self.cpu is not None:
            ns = int(self.cpu.seconds * 1e9)
        else:
            ns = 0
        if clock_id == 0:  # realtime
            ns += _CLOCK_REALTIME_EPOCH_NS
        mem.store("<Q", time_ptr, 8, ns & (2 ** 64 - 1))
        return errno.SUCCESS

    def random_get(self, mem: LinearMemory, buf: int, buf_len: int) -> int:
        """Deterministic xorshift stream (seeded per run)."""
        out = bytearray()
        state = self._rng_state
        while len(out) < buf_len:
            state ^= (state << 13) & 0xFFFFFFFFFFFFFFFF
            state ^= state >> 7
            state ^= (state << 17) & 0xFFFFFFFFFFFFFFFF
            out += struct.pack("<Q", state)
        self._rng_state = state
        mem.write_bytes(buf, bytes(out[:buf_len]))
        self._charge("random_get", buf_len)
        return errno.SUCCESS

    def proc_exit(self, mem: LinearMemory, code: int) -> None:
        self._charge("proc_exit")
        self.exit_code = code
        raise ExitProc(code)

    # -- adapters ----------------------------------------------------------

    def call_by_name(self, name: str, mem: LinearMemory, args: Sequence):
        """Dynamic dispatch used by the interpreters."""
        return getattr(self, name)(mem, *args)

    def as_host(self) -> Dict[str, "callable"]:
        """Host-function map for :class:`repro.isa.machine.Machine`."""
        out = {}
        for name in self.NAMES:
            method = getattr(self, name)
            out[name] = _bind(method)
        return out


def _bind(method):
    def host_fn(machine, args):
        return method(machine.memory, *args)
    return host_fn
