"""WASI snapshot-preview1 host functions.

One :class:`WasiAPI` instance serves a single program run.  Every method
implements one WASI function against a guest :class:`LinearMemory` and
the run's :class:`VirtualFS`, and charges the CPU model for the host-side
work (syscall entry, buffer copies) the way a real runtime's WASI shim
burns instructions.

The charge is engine-aware: the shim looks up its run's engine in
:func:`repro.registry.syscall_cost_table`, so an interpreter's generic
marshalling shim, a JIT's compiled trampoline, an AOT image's link-time
direct call, and the native baseline's plain syscall wrapper each price
the same guest behavior differently — the eWAPA observation that WASI
paths are where standalone runtimes diverge most.  Because *every*
execution tier (reference interpreter, fastloop, closures, JIT machine,
native executor) calls these same bound methods, call counts and byte
totals are byte-identical across tiers by construction; only the
per-engine instruction pricing differs between engine cells.
"""

from __future__ import annotations

import struct
from typing import Dict, Optional, Sequence, Tuple

from ..errors import ExitProc
from ..hw import CPUModel
from ..isa.memory import LinearMemory
from ..obs.metrics import CallStats
from ..registry import syscall_cost_table
from . import errno
from .fs import (FILETYPE_CHARACTER_DEVICE, DirNode, FileNode, VirtualFS)

#: Fallback pricing for a function missing from the registry tables
#: (kept equal to the old flat ``_SYSCALL_BASE_COST`` model).
_DEFAULT_COST: Tuple[int, int] = (180, 1)

_CLOCK_REALTIME_EPOCH_NS = 1_650_000_000_000_000_000  # fixed, deterministic

#: Deterministic default guest environment: every engine cell sees the
#: same environ bytes, so cross-engine ``wasi_calls`` byte totals agree.
DEFAULT_ENVIRON: Tuple[Tuple[str, str], ...] = (
    ("LANG", "C.UTF-8"),
    ("WABENCH", "1"),
)

# preview1 struct sizes the shim serializes.
_FDSTAT_SIZE = 24
_FILESTAT_SIZE = 64
_DIRENT_SIZE = 24


class WasiAPI:
    """All WASI functions used by the WABench suite."""

    NAMES = ("fd_write", "fd_read", "fd_close", "fd_seek", "fd_pread",
             "fd_pwrite", "fd_fdstat_get", "fd_readdir", "path_open",
             "path_filestat_get", "path_unlink_file", "path_rename",
             "args_sizes_get", "args_get", "environ_sizes_get",
             "environ_get", "clock_time_get", "random_get", "proc_exit")

    def __init__(self, fs: Optional[VirtualFS] = None,
                 cpu: Optional[CPUModel] = None,
                 argv: Sequence[str] = ("wabench",),
                 random_seed: int = 0x5EED,
                 engine: str = "wasmtime",
                 aot: bool = False,
                 environ: Optional[Sequence[Tuple[str, str]]] = None):
        self.fs = fs or VirtualFS()
        self.cpu = cpu
        self.argv = [a.encode() + b"\x00" for a in argv]
        env = DEFAULT_ENVIRON if environ is None else tuple(environ)
        self.environ = [f"{k}={v}".encode() + b"\x00" for k, v in env]
        self._rng_state = random_seed & 0xFFFFFFFFFFFFFFFF
        self.exit_code: Optional[int] = None
        self.engine = engine
        self.aot = aot
        #: ``fn -> (base_instructions, copy_cost_per_8B)`` for this
        #: run's engine (see ``repro.registry.syscall_cost_table``).
        self.costs: Dict[str, Tuple[int, int]] = syscall_cost_table(
            engine, aot=aot)
        #: Per-call event hook: call counts, modeled instruction cost,
        #: and guest<->host bytes for every WASI function this run hit
        #: (the eWAPA-style view; surfaces as ``RunResult.wasi_calls``
        #: and trace ``wasi`` lines).
        self.stats = CallStats()

    # -- cost accounting --------------------------------------------------

    def _charge(self, fn: str, extra_bytes: int = 0) -> None:
        """Charge one host call's modeled cost and record the event."""
        base, per8 = self.costs.get(fn, _DEFAULT_COST)
        cost = base + (extra_bytes // 8) * per8
        self.stats.record(fn, cost, extra_bytes)
        if self.cpu is not None:
            self.cpu.counters.instructions += cost

    # -- the interface -----------------------------------------------------

    def fd_write(self, mem: LinearMemory, fd: int, iovs: int,
                 iovs_len: int, nwritten_ptr: int) -> int:
        chunks = []
        for i in range(iovs_len):
            base = mem.load_u32(iovs + i * 8)
            length = mem.load_u32(iovs + i * 8 + 4)
            chunks.append(mem.read_bytes(base, length))
        payload = b"".join(chunks)
        written = self.fs.write(fd, payload)
        self._charge("fd_write", len(payload))
        if written < 0:
            return -written
        mem.store_u32(nwritten_ptr, written)
        return errno.SUCCESS

    def fd_read(self, mem: LinearMemory, fd: int, iovs: int,
                iovs_len: int, nread_ptr: int) -> int:
        total = 0
        for i in range(iovs_len):
            base = mem.load_u32(iovs + i * 8)
            length = mem.load_u32(iovs + i * 8 + 4)
            chunk = self.fs.read(fd, length)
            if chunk is None:
                self._charge("fd_read")
                return errno.EBADF
            mem.write_bytes(base, chunk)
            total += len(chunk)
            if len(chunk) < length:
                break
        self._charge("fd_read", total)
        mem.store_u32(nread_ptr, total)
        return errno.SUCCESS

    def fd_close(self, mem: LinearMemory, fd: int) -> int:
        self._charge("fd_close")
        return self.fs.close(fd)

    def fd_seek(self, mem: LinearMemory, fd: int, offset: int,
                whence: int, newoffset_ptr: int) -> int:
        self._charge("fd_seek")
        # offset arrives as an unsigned i64 image; interpret signed.
        if offset >= 1 << 63:
            offset -= 1 << 64
        result = self.fs.seek(fd, offset, whence)
        if result < 0:
            return -result
        mem.store("<Q", newoffset_ptr, 8, result)
        return errno.SUCCESS

    def fd_pread(self, mem: LinearMemory, fd: int, iovs: int,
                 iovs_len: int, offset: int, nread_ptr: int) -> int:
        total = 0
        for i in range(iovs_len):
            base = mem.load_u32(iovs + i * 8)
            length = mem.load_u32(iovs + i * 8 + 4)
            chunk = self.fs.pread(fd, length, offset + total)
            if chunk is None:
                self._charge("fd_pread")
                return errno.EBADF
            mem.write_bytes(base, chunk)
            total += len(chunk)
            if len(chunk) < length:
                break
        self._charge("fd_pread", total)
        mem.store_u32(nread_ptr, total)
        return errno.SUCCESS

    def fd_pwrite(self, mem: LinearMemory, fd: int, iovs: int,
                  iovs_len: int, offset: int, nwritten_ptr: int) -> int:
        chunks = []
        for i in range(iovs_len):
            base = mem.load_u32(iovs + i * 8)
            length = mem.load_u32(iovs + i * 8 + 4)
            chunks.append(mem.read_bytes(base, length))
        payload = b"".join(chunks)
        written = self.fs.pwrite(fd, payload, offset)
        self._charge("fd_pwrite", len(payload))
        if written < 0:
            return -written
        mem.store_u32(nwritten_ptr, written)
        return errno.SUCCESS

    def fd_fdstat_get(self, mem: LinearMemory, fd: int,
                      stat_ptr: int) -> int:
        self._charge("fd_fdstat_get", _FDSTAT_SIZE)
        if fd in (0, 1, 2):
            filetype, fdflags, rights = FILETYPE_CHARACTER_DEVICE, 0, 0
        else:
            h = self.fs.handle(fd)
            if h is None:
                return errno.EBADF
            filetype = h.node.filetype
            fdflags = h.fdflags
            rights = h.rights
        mem.write_bytes(stat_ptr, struct.pack(
            "<BxHxxxxQQ", filetype, fdflags,
            rights & (2 ** 64 - 1), rights & (2 ** 64 - 1)))
        return errno.SUCCESS

    def fd_readdir(self, mem: LinearMemory, fd: int, buf: int,
                   buf_len: int, cookie: int, bufused_ptr: int) -> int:
        entries = self.fs.readdir(fd)
        if isinstance(entries, int):
            self._charge("fd_readdir")
            return -entries
        out = bytearray()
        for index in range(cookie, len(entries)):
            name, node = entries[index]
            name_bytes = name.encode()
            out += struct.pack("<QQIBxxx", index + 1, node.ino,
                               len(name_bytes), node.filetype)
            out += name_bytes
            if len(out) >= buf_len:
                break
        # Per preview1: a full buffer means "maybe more entries"; the
        # guest loops with the last d_next cookie until used < buf_len.
        used = min(len(out), buf_len)
        mem.write_bytes(buf, bytes(out[:used]))
        self._charge("fd_readdir", used)
        mem.store_u32(bufused_ptr, used)
        return errno.SUCCESS

    def path_open(self, mem: LinearMemory, dirfd: int, dirflags: int,
                  path_ptr: int, path_len: int, oflags: int,
                  rights_base: int, rights_inheriting: int,
                  fdflags: int, opened_fd_ptr: int) -> int:
        self._charge("path_open", path_len)
        path = mem.read_bytes(path_ptr, path_len).decode("utf-8",
                                                         errors="replace")
        fd = self.fs.open_path(path, oflags, dirfd=dirfd,
                               rights=rights_base, fdflags=fdflags)
        if fd < 0:
            return -fd
        mem.store_u32(opened_fd_ptr, fd)
        return errno.SUCCESS

    def path_filestat_get(self, mem: LinearMemory, dirfd: int,
                          flags: int, path_ptr: int, path_len: int,
                          stat_ptr: int) -> int:
        self._charge("path_filestat_get", path_len + _FILESTAT_SIZE)
        path = mem.read_bytes(path_ptr, path_len).decode("utf-8",
                                                         errors="replace")
        stat = self.fs.filestat(path, dirfd=dirfd)
        if isinstance(stat, int):
            return -stat
        ino, filetype, size = stat
        mem.write_bytes(stat_ptr, struct.pack(
            "<QQBxxxxxxxQQQQQ", 0, ino, filetype, 1, size, 0, 0, 0))
        return errno.SUCCESS

    def path_unlink_file(self, mem: LinearMemory, dirfd: int,
                         path_ptr: int, path_len: int) -> int:
        self._charge("path_unlink_file", path_len)
        path = mem.read_bytes(path_ptr, path_len).decode("utf-8",
                                                         errors="replace")
        result = self.fs.unlink(path, dirfd=dirfd)
        return -result if result < 0 else result

    def path_rename(self, mem: LinearMemory, old_dirfd: int,
                    old_ptr: int, old_len: int, new_dirfd: int,
                    new_ptr: int, new_len: int) -> int:
        self._charge("path_rename", old_len + new_len)
        old = mem.read_bytes(old_ptr, old_len).decode("utf-8",
                                                      errors="replace")
        new = mem.read_bytes(new_ptr, new_len).decode("utf-8",
                                                      errors="replace")
        result = self.fs.rename(old, new, old_dirfd=old_dirfd,
                                new_dirfd=new_dirfd)
        return -result if result < 0 else result

    def args_sizes_get(self, mem: LinearMemory, argc_ptr: int,
                       argv_buf_size_ptr: int) -> int:
        self._charge("args_sizes_get")
        mem.store_u32(argc_ptr, len(self.argv))
        mem.store_u32(argv_buf_size_ptr, sum(len(a) for a in self.argv))
        return errno.SUCCESS

    def args_get(self, mem: LinearMemory, argv_ptr: int,
                 argv_buf: int) -> int:
        offset = 0
        for i, arg in enumerate(self.argv):
            mem.store_u32(argv_ptr + 4 * i, argv_buf + offset)
            mem.write_bytes(argv_buf + offset, arg)
            offset += len(arg)
        self._charge("args_get", offset)
        return errno.SUCCESS

    def environ_sizes_get(self, mem: LinearMemory, count_ptr: int,
                          buf_size_ptr: int) -> int:
        self._charge("environ_sizes_get")
        mem.store_u32(count_ptr, len(self.environ))
        mem.store_u32(buf_size_ptr, sum(len(e) for e in self.environ))
        return errno.SUCCESS

    def environ_get(self, mem: LinearMemory, environ_ptr: int,
                    environ_buf: int) -> int:
        offset = 0
        for i, entry in enumerate(self.environ):
            mem.store_u32(environ_ptr + 4 * i, environ_buf + offset)
            mem.write_bytes(environ_buf + offset, entry)
            offset += len(entry)
        self._charge("environ_get", offset)
        return errno.SUCCESS

    def clock_time_get(self, mem: LinearMemory, clock_id: int,
                       precision: int, time_ptr: int) -> int:
        """Deterministic clock driven by the modeled cycle count."""
        self._charge("clock_time_get")
        if self.cpu is not None:
            ns = int(self.cpu.seconds * 1e9)
        else:
            ns = 0
        if clock_id == 0:  # realtime
            ns += _CLOCK_REALTIME_EPOCH_NS
        mem.store("<Q", time_ptr, 8, ns & (2 ** 64 - 1))
        return errno.SUCCESS

    def random_get(self, mem: LinearMemory, buf: int, buf_len: int) -> int:
        """Deterministic xorshift stream (seeded per run)."""
        out = bytearray()
        state = self._rng_state
        while len(out) < buf_len:
            state ^= (state << 13) & 0xFFFFFFFFFFFFFFFF
            state ^= state >> 7
            state ^= (state << 17) & 0xFFFFFFFFFFFFFFFF
            out += struct.pack("<Q", state)
        self._rng_state = state
        mem.write_bytes(buf, bytes(out[:buf_len]))
        self._charge("random_get", buf_len)
        return errno.SUCCESS

    def proc_exit(self, mem: LinearMemory, code: int) -> None:
        self._charge("proc_exit")
        self.exit_code = code
        raise ExitProc(code)

    # -- adapters ----------------------------------------------------------

    def call_by_name(self, name: str, mem: LinearMemory, args: Sequence):
        """Dynamic dispatch used by the interpreters."""
        return getattr(self, name)(mem, *args)

    def as_host(self) -> Dict[str, "callable"]:
        """Host-function map for :class:`repro.isa.machine.Machine`."""
        out = {}
        for name in self.NAMES:
            method = getattr(self, name)
            out[name] = _bind(method)
        return out


def _bind(method):
    def host_fn(machine, args):
        return method(machine.memory, *args)
    return host_fn
