"""Orchestration for ``wabench serve``: profiles -> simulation -> report.

One :func:`run_serve` call measures a cost profile per (workload,
engine) through the shared harness (cached, optionally prewarmed across
``--jobs`` workers), sweeps the (mode x concurrency) grid through the
simulator, records one synthetic traced run per cell on the harness's
tracer, and returns the ``wabench-serve/2`` report document.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional, Sequence

from ..hw import MachineConfig
from ..runtimes import RunResult
from .profile import profiles_from_harness
from .report import build_report
from .simulator import CellSim, cell_spans, simulate_cell


def cell_seed(seed: int, workload: str, engine: str, mode: str,
              concurrency: int) -> int:
    """Independent per-cell arrival seed, derived (not shared) so cells
    never see correlated arrival streams yet stay reproducible."""
    tag = f"{seed}|{workload}|{engine}|{mode}|{concurrency}"
    return int.from_bytes(
        hashlib.sha256(tag.encode()).digest()[:8], "big")


def run_serve(harness, *, workloads: Sequence[str],
              engines: Sequence[str], modes: Sequence[str],
              concurrency_levels: Sequence[int], seed: int = 0,
              requests: int = 200, utilization: float = 0.8,
              pool_size: Optional[int] = None,
              idle_timeout_ms: Optional[float] = 10.0,
              jobs: int = 1,
              machine: Optional[MachineConfig] = None) -> Dict:
    """Run the full serving grid; returns the report document."""
    machine = machine or MachineConfig()
    idle_timeout_cycles = None if idle_timeout_ms is None else \
        int(idle_timeout_ms * machine.frequency_hz / 1000)

    if jobs > 1:
        cells = [(w, e, harness.default_opt, False)
                 for w in workloads for e in engines]
        harness.prewarm(cells, jobs=jobs)
    profiles = profiles_from_harness(harness, workloads, engines)

    sims: List[CellSim] = []
    for workload in workloads:
        for engine in engines:
            profile = profiles[(workload, engine)]
            for mode in modes:
                for concurrency in concurrency_levels:
                    sim = simulate_cell(
                        profile, mode, concurrency,
                        seed=cell_seed(seed, workload, engine, mode,
                                       concurrency),
                        requests=requests, utilization=utilization,
                        pool_size=pool_size,
                        idle_timeout_cycles=idle_timeout_cycles)
                    sims.append(sim)
                    _record_cell(harness, profile, sim, machine)

    meta = {
        "seed": seed,
        "requests": requests,
        "utilization": utilization,
        "size": harness.size,
        "opt": harness.default_opt,
        "workloads": list(workloads),
        "engines": list(engines),
        "modes": list(modes),
        "concurrency": list(concurrency_levels),
        "pool_size": pool_size,
        "idle_timeout_ms": idle_timeout_ms,
        "frequency_hz": machine.frequency_hz,
        "parallel_fallback": harness.cache_stats.parallel_fallback,
    }
    return build_report(profiles, sims, meta=meta,
                        to_seconds=machine.cycles_to_seconds)


def _record_cell(harness, profile, sim: CellSim,
                 machine: MachineConfig) -> None:
    """Register the cell on the session tracer as one synthetic run whose
    span tree is the simulated request timeline — ``--trace`` output then
    flows through the ordinary wabench-trace/1 exporter."""
    trace = cell_spans(profile, sim)
    root = trace[0]
    result = RunResult(
        runtime=sim.engine,
        stdout=b"",
        exit_code=0,
        trap=None,
        seconds=machine.cycles_to_seconds(sim.makespan),
        cycles=sim.makespan,
        mrss_bytes=sim.busy_peak * profile.mrss_bytes,
        counters={"instructions": float(root["instructions"])},
        trace=trace)
    harness.tracer.record_run(
        {"bench": sim.workload, "engine": sim.engine,
         "opt": harness.default_opt, "aot": False, "size": harness.size,
         "serve_mode": sim.mode, "concurrency": sim.concurrency},
        result)
