"""Seeded open-loop arrival process for the serving simulator.

Requests arrive on a Poisson-like process that is *open-loop*: arrival
times never depend on completions, so overload shows up as growing
queueing delay (the serverless "cold-start storm" signature) instead of
being hidden by client back-pressure.

Determinism is a hard requirement (serve reports are byte-compared in
CI across machines), so the exponential sampler avoids ``math.log`` at
sample time: libm functions are not correctly-rounded and may differ in
the last ulp across platforms.  Instead we precompute a 4096-bucket
inverse-CDF table *quantized to integer millionths* — coarse enough
that a sub-ulp libm difference cannot change any table entry — and all
per-sample arithmetic is pure integer math on Mersenne-Twister bits,
which are bit-exact everywhere.
"""

from __future__ import annotations

import math
import random
from typing import List

_BUCKET_BITS = 12
_BUCKETS = 1 << _BUCKET_BITS
_SCALE = 1_000_000

#: Inverse CDF of Exp(1) at the bucket midpoints, in millionths.
#: Mean of the table is ~1e6 (i.e. 1.0), so ``mean_cycles`` below is the
#: true mean interarrival up to quantization.
_EXP_MICRO = tuple(
    int(round(-math.log(1.0 - (k + 0.5) / _BUCKETS) * _SCALE))
    for k in range(_BUCKETS))


def interarrival_cycles(rng: random.Random, mean_cycles: int) -> int:
    """One exponential interarrival gap, in whole cycles (>= 1)."""
    quantile = _EXP_MICRO[rng.getrandbits(_BUCKET_BITS)]
    return max(1, (mean_cycles * quantile) // _SCALE)


def arrival_times(seed: int, mean_cycles: int, count: int) -> List[int]:
    """``count`` cumulative arrival times (cycles), open-loop, seeded."""
    rng = random.Random(seed)
    times: List[int] = []
    now = 0
    for _ in range(count):
        now += interarrival_cycles(rng, mean_cycles)
        times.append(now)
    return times
