"""Per-engine request cost profiles, extracted from measured runs.

The serving simulator never re-executes a module: one instrumented
:class:`~repro.runtimes.base.RunPipeline` run per (workload, engine)
supplies everything it needs, read straight off the run's model-time
span tree.  The three serving costs are:

* **cold** — every pipeline phase up to and including ``instantiate``
  (:data:`repro.registry.COLD_START_PHASES`): what a spawn-per-request
  or pool-miss request pays before its handler can run;
* **reset** — the ``instantiate`` phase alone: warm reuse keeps the
  decoded/compiled module and re-initializes instance state (memory,
  globals) between requests;
* **execute** — the ``execute`` phase: one request's handler work.

Because the span tree is a pure function of the run configuration, so
is every profile — which is what makes serve reports byte-identical
across cold caches, warm caches, and ``--jobs`` fan-out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from ..errors import HarnessError
from ..obs import root_span
from ..registry import COLD_START_PHASES

#: Event counters carried per phase (the TRACING.md span count fields).
COUNT_FIELDS = ("instructions", "branches", "branch_misses", "stall_cycles")


@dataclass(frozen=True)
class PhaseCost:
    """Modeled cycles + event counts of one serving cost component."""

    cycles: int = 0
    instructions: int = 0
    branches: int = 0
    branch_misses: int = 0
    stall_cycles: int = 0

    def __add__(self, other: "PhaseCost") -> "PhaseCost":
        return PhaseCost(
            cycles=self.cycles + other.cycles,
            instructions=self.instructions + other.instructions,
            branches=self.branches + other.branches,
            branch_misses=self.branch_misses + other.branch_misses,
            stall_cycles=self.stall_cycles + other.stall_cycles)

    @classmethod
    def from_span(cls, record: Dict) -> "PhaseCost":
        return cls(
            cycles=record["cycles_end"] - record["cycles_start"],
            instructions=record["instructions"],
            branches=record["branches"],
            branch_misses=record["branch_misses"],
            stall_cycles=record["stall_cycles"])


@dataclass(frozen=True)
class CostProfile:
    """Everything the simulator needs about one (workload, engine)."""

    workload: str
    engine: str
    cold: PhaseCost
    reset: PhaseCost
    execute: PhaseCost
    mrss_bytes: int
    #: Per-request WASI shim totals (the I/O axis of the request):
    #: host calls made, engine-priced shim instructions, bytes copied.
    wasi_calls: int = 0
    wasi_instructions: int = 0
    wasi_bytes: int = 0

    @property
    def cold_latency_cycles(self) -> int:
        """Unqueued cold-request latency: full startup + one execution."""
        return self.cold.cycles + self.execute.cycles

    @property
    def warm_latency_cycles(self) -> int:
        """Unqueued warm-request latency: reset + one execution."""
        return self.reset.cycles + self.execute.cycles

    @classmethod
    def from_result(cls, workload: str, engine: str,
                    result) -> "CostProfile":
        """Build a profile from a :class:`RunResult`'s span tree."""
        root = root_span(result.trace)
        if root is None:
            raise HarnessError(
                f"{workload} on {engine}: run result carries no span "
                "tree; serve profiles need an instrumented pipeline run")
        by_phase: Dict[str, PhaseCost] = {}
        for record in result.trace:
            if record.get("parent") == root["id"]:
                cost = PhaseCost.from_span(record)
                prior = by_phase.get(record["span"])
                by_phase[record["span"]] = \
                    cost if prior is None else prior + cost
        cold = PhaseCost()
        for phase in COLD_START_PHASES:
            cold = cold + by_phase.get(phase, PhaseCost())
        wasi = result.wasi_calls or {}
        return cls(
            workload=workload,
            engine=engine,
            cold=cold,
            reset=by_phase.get("instantiate", PhaseCost()),
            execute=by_phase.get("execute", PhaseCost()),
            mrss_bytes=result.mrss_bytes,
            wasi_calls=sum(s["calls"] for s in wasi.values()),
            wasi_instructions=sum(s["instructions"] for s in wasi.values()),
            wasi_bytes=sum(s.get("bytes", 0) for s in wasi.values()))


def profiles_from_harness(harness, workloads: Sequence[str],
                          engines: Sequence[str]
                          ) -> Dict[tuple, CostProfile]:
    """One measured profile per (workload, engine), via the harness's
    cached :meth:`~repro.harness.runner.Harness.run`."""
    out: Dict[tuple, CostProfile] = {}
    for workload in workloads:
        for engine in engines:
            result = harness.run(workload, engine)
            out[(workload, engine)] = CostProfile.from_result(
                workload, engine, result)
    return out
