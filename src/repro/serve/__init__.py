"""``repro.serve`` — modeled edge/serverless serving tier.

The paper's cold-start and memory-footprint numbers matter because
standalone Wasm runtimes are pitched as *serverless instance engines*:
the unit of deployment is "instantiate a module per request" (or keep a
warm pool of instances), so startup latency and per-instance RSS decide
whether the model works.  This package closes that loop: it takes the
phase-resolved cost profiles the instrumented
:class:`~repro.runtimes.base.RunPipeline` already measures and plays
request traffic against them under the three serving disciplines real
platforms use — spawn-per-request, warm reuse, and a bounded instance
pool — reporting cold-start latency, warm p50/p90/p99, sustained RPS,
scaling efficiency, and modeled memory per concurrency level.

Everything is simulated in deterministic model time (integer cycles):
``wabench serve --seed 0`` is byte-identical across repeated runs, cold
vs warm artifact caches, and ``--jobs`` fan-out, which is what lets CI
diff its report against a committed golden.

Layout:

* :mod:`~repro.serve.profile` — per-(workload, engine) cost extraction
  from measured span trees (cold / reset / execute + RSS);
* :mod:`~repro.serve.arrivals` — seeded open-loop arrival process
  (integer-quantized exponential sampler; no libm at sample time);
* :mod:`~repro.serve.simulator` — the G/G/c-style event loop for the
  three execution models, plus per-request span emission;
* :mod:`~repro.serve.report` — the ``wabench-serve/2`` JSON document
  and rendered latency/scaling/memory tables;
* :mod:`~repro.serve.driver` — ``wabench serve`` orchestration.
"""

from .arrivals import arrival_times, interarrival_cycles
from .driver import cell_seed, run_serve
from .profile import CostProfile, PhaseCost, profiles_from_harness
from .report import SERVE_SCHEMA, build_report, render_report, report_json
from .simulator import CellSim, SimRequest, cell_spans, simulate_cell

__all__ = [
    "arrival_times", "interarrival_cycles",
    "cell_seed", "run_serve",
    "CostProfile", "PhaseCost", "profiles_from_harness",
    "SERVE_SCHEMA", "build_report", "render_report", "report_json",
    "CellSim", "SimRequest", "cell_spans", "simulate_cell",
]
