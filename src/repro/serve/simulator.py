"""Deterministic model-time request-serving simulator.

One :func:`simulate_cell` call plays a seeded open-loop arrival stream
against one (workload, engine, mode, concurrency) configuration and
returns per-request records plus aggregate counters.  Three execution
models (:data:`repro.registry.SERVE_MODES`):

* ``spawn`` — every request pays the full cold start (spawn + decode +
  validate + load + instantiate) before executing; the per-request
  instance dies afterwards.
* ``warm``  — one persistent instance per worker: the first request on
  a worker is cold, every later one pays only the reset (re-instantiate)
  cost.
* ``pool``  — a bounded pool of reusable instances with acquire/release:
  requests queue when the pool is exhausted, an acquire of an instance
  that sat idle longer than the idle timeout is a pool miss (the
  instance expired and must cold-start again — the scale-to-zero
  behavior of serverless platforms).  Acquisition is most-recently-
  released first, the policy real pools use to keep hot instances hot
  and let cold ones expire.

Everything is integer cycle arithmetic on top of measured
:class:`~repro.serve.profile.CostProfile` costs — no wall clock, no
floats in the event loop — so a cell's outcome is a pure function of
(profile, mode, concurrency, seed, knobs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import HarnessError
from ..obs import TimelineBuilder
from ..registry import SERVE_MODES
from .arrivals import arrival_times
from .profile import CostProfile, PhaseCost


@dataclass(frozen=True)
class SimRequest:
    """One served request on the simulated timeline (cycles)."""

    index: int
    arrival: int
    start: int          # when an instance began setup for this request
    finish: int         # response complete
    cold: bool          # paid the full cold start (vs warm reset)
    expired: bool       # pool only: was cold because the instance expired
    instance: int       # which worker/pool slot served it

    @property
    def wait(self) -> int:
        return self.start - self.arrival

    @property
    def latency(self) -> int:
        return self.finish - self.arrival


@dataclass
class CellSim:
    """Raw outcome of one simulated serving cell."""

    workload: str
    engine: str
    mode: str
    concurrency: int
    slots: int                      # serving slots (pool size for pool)
    seed: int
    mean_interarrival: int
    requests: List[SimRequest] = field(default_factory=list)
    cold_starts: int = 0
    warm_hits: int = 0
    expirations: int = 0
    queued: int = 0                 # requests that waited at all
    queue_peak: int = 0             # max simultaneous waiters
    max_wait: int = 0
    instances_used: int = 0         # distinct slots that ever served
    busy_peak: int = 0              # max simultaneously-busy slots
    makespan: int = 0               # last completion time (cycles)

    @property
    def latencies(self) -> List[int]:
        return [r.latency for r in self.requests]


def simulate_cell(profile: CostProfile, mode: str, concurrency: int, *,
                  seed: int, requests: int, utilization: float = 0.8,
                  pool_size: Optional[int] = None,
                  idle_timeout_cycles: Optional[int] = None) -> CellSim:
    """Simulate ``requests`` open-loop arrivals through one cell."""
    if mode not in SERVE_MODES:
        raise HarnessError(f"unknown serve mode {mode!r}; "
                           f"choose from {SERVE_MODES}")
    if concurrency < 1:
        raise HarnessError("concurrency must be >= 1")
    if requests < 1:
        raise HarnessError("requests must be >= 1")
    if not 0.0 < utilization <= 1.0:
        raise HarnessError("utilization must be in (0, 1]")

    if mode == "pool":
        slots = pool_size if pool_size is not None \
            else max(1, concurrency // 2)
        if slots < 1:
            raise HarnessError("pool size must be >= 1")
    else:
        slots = concurrency

    # Offered load targets `utilization` of the cell's steady-state
    # capacity, so every mode is measured at a comparable relative load
    # and mode differences show up in latency *and* absolute RPS.
    steady = (profile.cold.cycles if mode == "spawn"
              else profile.reset.cycles) + profile.execute.cycles
    mean_interarrival = max(1, int(max(1, steady) / (slots * utilization)))
    arrivals = arrival_times(seed, mean_interarrival, requests)

    avail = [0] * slots             # when each slot frees up
    used = [False] * slots          # has the slot a live warm instance
    sim = CellSim(workload=profile.workload, engine=profile.engine,
                  mode=mode, concurrency=concurrency, slots=slots,
                  seed=seed, mean_interarrival=mean_interarrival)

    for index, arrival in enumerate(arrivals):
        idle = [s for s in range(slots) if avail[s] <= arrival]
        if idle:
            # Most-recently-released first (ties: lowest slot id).
            slot = max(idle, key=lambda s: (avail[s], -s))
        else:
            # All busy: queue FIFO for the earliest release.
            slot = min(range(slots), key=lambda s: (avail[s], s))
        start = max(arrival, avail[slot])

        expired = (mode == "pool" and used[slot] and
                   idle_timeout_cycles is not None and
                   start - avail[slot] > idle_timeout_cycles)
        cold = mode == "spawn" or not used[slot] or expired
        setup = profile.cold if cold else profile.reset
        finish = start + setup.cycles + profile.execute.cycles

        avail[slot] = finish
        used[slot] = mode != "spawn"
        sim.requests.append(SimRequest(
            index=index, arrival=arrival, start=start, finish=finish,
            cold=cold, expired=expired, instance=slot))
        sim.cold_starts += cold
        sim.warm_hits += not cold
        sim.expirations += expired
        if start > arrival:
            sim.queued += 1
            sim.max_wait = max(sim.max_wait, start - arrival)

    sim.instances_used = len({r.instance for r in sim.requests})
    sim.makespan = max(r.finish for r in sim.requests)
    sim.busy_peak = _peak_overlap(
        [(r.start, r.finish) for r in sim.requests])
    sim.queue_peak = _peak_overlap(
        [(r.arrival, r.start) for r in sim.requests if r.start > r.arrival])
    return sim


def _peak_overlap(intervals: List[tuple]) -> int:
    """Max number of half-open ``[lo, hi)`` intervals alive at once."""
    events: List[tuple] = []
    for lo, hi in intervals:
        events.append((lo, 1))
        events.append((hi, -1))
    # Close before open at the same instant: back-to-back reuse of a
    # slot is one instance, not two.
    events.sort(key=lambda e: (e[0], e[1]))
    peak = live = 0
    for _, delta in events:
        live += delta
        peak = max(peak, live)
    return peak


def cell_spans(profile: CostProfile, sim: CellSim) -> List[Dict]:
    """The cell's model-time span tree: one ``request`` span per served
    request (child of the root ``serve`` span), with ``cold_start`` /
    ``reset`` and ``execute`` children — so instantiation-vs-execute
    breakdowns fall out of the same span machinery as single runs."""
    timeline = TimelineBuilder()
    totals = PhaseCost()
    for request in sim.requests:
        setup = profile.cold if request.cold else profile.reset
        totals = totals + setup + profile.execute
    root = timeline.add(
        "serve", None, 0, sim.makespan,
        instructions=totals.instructions, branches=totals.branches,
        branch_misses=totals.branch_misses,
        stall_cycles=totals.stall_cycles,
        mode=sim.mode, concurrency=sim.concurrency, slots=sim.slots)
    for request in sim.requests:
        setup = profile.cold if request.cold else profile.reset
        req_span = timeline.add(
            "request", root["id"], request.arrival, request.finish,
            instructions=setup.instructions + profile.execute.instructions,
            branches=setup.branches + profile.execute.branches,
            branch_misses=(setup.branch_misses +
                           profile.execute.branch_misses),
            stall_cycles=setup.stall_cycles + profile.execute.stall_cycles,
            request=request.index, instance=request.instance,
            cold=request.cold, wait_cycles=request.wait)
        setup_end = request.start + setup.cycles
        timeline.add(
            "cold_start" if request.cold else "reset", req_span["id"],
            request.start, setup_end,
            instructions=setup.instructions, branches=setup.branches,
            branch_misses=setup.branch_misses,
            stall_cycles=setup.stall_cycles)
        timeline.add(
            "execute", req_span["id"], setup_end, request.finish,
            instructions=profile.execute.instructions,
            branches=profile.execute.branches,
            branch_misses=profile.execute.branch_misses,
            stall_cycles=profile.execute.stall_cycles)
    return timeline.records()
