"""Serve report: canonical JSON + rendered tables for ``wabench serve``.

The JSON document (schema ``wabench-serve/2``) is the CI contract: it is
byte-compared against a committed golden, so everything in it must be a
pure function of the run configuration.  All primary quantities are
integer cycles straight out of the simulator; derived seconds/RPS floats
are computed from those integers in one place here, which keeps them
reproducible too (same ints, same float ops, same bytes).
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from ..harness.report import Table, percentile_nearest_rank
from .profile import CostProfile
from .simulator import CellSim

SERVE_SCHEMA = "wabench-serve/2"


def _us(cycles: int, to_seconds) -> float:
    return round(to_seconds(cycles) * 1e6, 3)


def build_report(profiles: Dict[tuple, CostProfile],
                 sims: Sequence[CellSim], *, meta: Dict,
                 to_seconds) -> Dict:
    """Assemble the ``wabench-serve/2`` report document."""
    profile_rows = []
    for (workload, engine) in sorted(profiles):
        prof = profiles[(workload, engine)]
        profile_rows.append({
            "workload": workload,
            "engine": engine,
            "cold_cycles": prof.cold.cycles,
            "reset_cycles": prof.reset.cycles,
            "execute_cycles": prof.execute.cycles,
            "cold_latency_us": _us(prof.cold_latency_cycles, to_seconds),
            "warm_latency_us": _us(prof.warm_latency_cycles, to_seconds),
            "rss_per_instance_bytes": prof.mrss_bytes,
            "wasi_calls": prof.wasi_calls,
            "wasi_instructions": prof.wasi_instructions,
            "wasi_bytes": prof.wasi_bytes,
        })

    cells = []
    for sim in sims:
        latencies = sorted(sim.latencies)
        prof = profiles[(sim.workload, sim.engine)]
        makespan_s = to_seconds(sim.makespan)
        cells.append({
            "workload": sim.workload,
            "engine": sim.engine,
            "mode": sim.mode,
            "concurrency": sim.concurrency,
            "slots": sim.slots,
            "seed": sim.seed,
            "requests": len(sim.requests),
            "mean_interarrival_cycles": sim.mean_interarrival,
            "cold_start_us": _us(prof.cold_latency_cycles, to_seconds),
            "p50_us": _us(percentile_nearest_rank(latencies, 50),
                          to_seconds),
            "p90_us": _us(percentile_nearest_rank(latencies, 90),
                          to_seconds),
            "p99_us": _us(percentile_nearest_rank(latencies, 99),
                          to_seconds),
            "rps": round(len(sim.requests) / makespan_s, 1)
            if makespan_s else 0.0,
            "makespan_cycles": sim.makespan,
            "cold_starts": sim.cold_starts,
            "warm_hits": sim.warm_hits,
            "expirations": sim.expirations,
            "queued": sim.queued,
            "queue_peak": sim.queue_peak,
            "max_wait_us": _us(sim.max_wait, to_seconds),
            "instances_used": sim.instances_used,
            "busy_peak": sim.busy_peak,
            "rss_per_instance_bytes": prof.mrss_bytes,
            "modeled_peak_rss_bytes": sim.busy_peak * prof.mrss_bytes,
        })

    _add_scaling_efficiency(cells)
    return {
        "schema": SERVE_SCHEMA,
        "meta": dict(meta),
        "profiles": profile_rows,
        "cells": cells,
    }


def _add_scaling_efficiency(cells: List[Dict]) -> None:
    """Per-cell ``scaling_efficiency``: throughput gain over the group's
    lowest concurrency level, normalized by the concurrency ratio (1.0 =
    perfect linear scaling)."""
    base: Dict[tuple, Dict] = {}
    for cell in cells:
        key = (cell["workload"], cell["engine"], cell["mode"])
        if key not in base or \
                cell["concurrency"] < base[key]["concurrency"]:
            base[key] = cell
    for cell in cells:
        anchor = base[(cell["workload"], cell["engine"], cell["mode"])]
        ratio = cell["concurrency"] / anchor["concurrency"]
        cell["scaling_efficiency"] = round(
            (cell["rps"] / anchor["rps"]) / ratio, 3) \
            if anchor["rps"] and ratio else 0.0


def report_json(report: Dict) -> str:
    """Canonical serialization — the byte-compared CI artifact."""
    return json.dumps(report, indent=2, sort_keys=True) + "\n"


def render_report(report: Dict) -> str:
    """Human tables: latency grid, scaling efficiency, memory model."""
    latency = Table(
        experiment_id="Serve 1",
        title="request latency and throughput per serving cell",
        columns=["cell", "cold-start us", "p50 us", "p90 us", "p99 us",
                 "RPS", "queued", "colds"])
    for cell in report["cells"]:
        label = (f"{cell['workload']}/{cell['engine']}/{cell['mode']}"
                 f"/c{cell['concurrency']}")
        latency.add(label, cell["cold_start_us"], cell["p50_us"],
                    cell["p90_us"], cell["p99_us"], cell["rps"],
                    cell["queued"], cell["cold_starts"])
    latency.note("cold-start = unqueued cold latency (startup + execute); "
                 "percentiles include queueing delay")

    levels = sorted({c["concurrency"] for c in report["cells"]})
    scaling = Table(
        experiment_id="Serve 2",
        title="sustained RPS by concurrency (scaling efficiency at max)",
        columns=["workload/engine/mode"] +
                [f"c{lvl} RPS" for lvl in levels] + ["efficiency"])
    groups: Dict[tuple, Dict[int, Dict]] = {}
    for cell in report["cells"]:
        key = (cell["workload"], cell["engine"], cell["mode"])
        groups.setdefault(key, {})[cell["concurrency"]] = cell
    for key in sorted(groups):
        by_level = groups[key]
        row = [by_level[lvl]["rps"] if lvl in by_level else "-"
               for lvl in levels]
        top = by_level[max(by_level)]
        scaling.add("/".join(str(k) for k in key), *row,
                    top["scaling_efficiency"])
    scaling.note("efficiency = (RPS gain over lowest concurrency) / "
                 "(concurrency ratio); 1.0 = perfect linear scaling")

    memory = Table(
        experiment_id="Serve 3",
        title="modeled memory per serving cell",
        columns=["cell", "RSS/instance KiB", "peak instances",
                 "peak RSS KiB"])
    for cell in report["cells"]:
        label = (f"{cell['workload']}/{cell['engine']}/{cell['mode']}"
                 f"/c{cell['concurrency']}")
        memory.add(label,
                   round(cell["rss_per_instance_bytes"] / 1024, 1),
                   cell["busy_peak"],
                   round(cell["modeled_peak_rss_bytes"] / 1024, 1))
    memory.note("peak RSS = simultaneously-live instances x per-instance "
                "modeled max RSS")

    parts = [latency.render(), "", scaling.render(), "", memory.render()]
    if report["meta"].get("parallel_fallback"):
        parts.append("")
        parts.append("note: profile prewarm fell back to serial "
                     "(worker pool unavailable)")
    return "\n".join(parts) + "\n"
