"""Guest linear memory shared by every execution engine.

One :class:`LinearMemory` instance backs a program run, whether the program
is native code, JIT-compiled code, or interpreted Wasm.  It provides:

* byte-addressed, bounds-checked, little-endian typed access (the Wasm
  memory model);
* page-granular growth (``memory.grow`` semantics — new pages are zeroed);
* residency tracking: *written* pages are recorded into the memory
  accountant's lazy region, modeling demand-paged RSS (reads of untouched
  pages hit the kernel's shared zero page and are not charged, which is
  exactly the mechanism behind the paper's whitedb observation).

Bounds checks here are for *correctness* (a malicious/buggy guest must
trap); the per-access *cost* of software bounds checking is charged
separately by the engines that actually emit check instructions.
"""

from __future__ import annotations

import struct
from typing import Optional, Set

from ..errors import Trap

PAGE = 65536
_RSS_PAGE_SHIFT = 12  # 4 KiB residency pages


class LinearMemory:
    """A growable, zero-initialized, bounds-checked byte array."""

    def __init__(self, min_pages: int, max_pages: Optional[int] = None,
                 touched_pages: Optional[Set[int]] = None):
        self.data = bytearray(min_pages * PAGE)
        self.size = min_pages * PAGE
        self.max_pages = max_pages
        # Residency: the accountant's lazy-region set (4 KiB page indices).
        self.touched = touched_pages if touched_pages is not None else set()

    @property
    def pages(self) -> int:
        return self.size // PAGE

    def grow(self, delta_pages: int) -> int:
        """Grow by ``delta_pages``; returns old page count, or -1 on failure."""
        old = self.pages
        new = old + delta_pages
        if delta_pages < 0 or new > 65536 or \
                (self.max_pages is not None and new > self.max_pages):
            return -1
        self.data.extend(bytes(delta_pages * PAGE))
        self.size = new * PAGE
        return old

    # -- raw block access (used by WASI and data segments) -----------------

    def check(self, addr: int, size: int) -> None:
        if addr < 0 or addr + size > self.size:
            raise Trap("out of bounds memory access",
                       f"[{addr}, {addr + size}) of {self.size}")

    def read_bytes(self, addr: int, size: int) -> bytes:
        self.check(addr, size)
        return bytes(self.data[addr:addr + size])

    def write_bytes(self, addr: int, payload: bytes) -> None:
        size = len(payload)
        self.check(addr, size)
        self.data[addr:addr + size] = payload
        if size:
            self.touched.update(
                range(addr >> _RSS_PAGE_SHIFT,
                      ((addr + size - 1) >> _RSS_PAGE_SHIFT) + 1))

    # -- typed access -----------------------------------------------------
    # The machine executor inlines struct calls for speed; these methods
    # define the semantics and serve the interpreters and WASI layer.

    def load(self, fmt: str, addr: int, size: int):
        if addr < 0 or addr + size > self.size:
            raise Trap("out of bounds memory access",
                       f"load {size}B at {addr} of {self.size}")
        return struct.unpack_from(fmt, self.data, addr)[0]

    def store(self, fmt: str, addr: int, size: int, value) -> None:
        if addr < 0 or addr + size > self.size:
            raise Trap("out of bounds memory access",
                       f"store {size}B at {addr} of {self.size}")
        struct.pack_into(fmt, self.data, addr, value)
        self.touched.add(addr >> _RSS_PAGE_SHIFT)
        if (addr + size - 1) >> _RSS_PAGE_SHIFT != addr >> _RSS_PAGE_SHIFT:
            self.touched.add((addr + size - 1) >> _RSS_PAGE_SHIFT)

    # Convenience accessors used by WASI and the harness.

    def load_u32(self, addr: int) -> int:
        return self.load("<I", addr, 4)

    def store_u32(self, addr: int, value: int) -> None:
        self.store("<I", addr, 4, value & 0xFFFFFFFF)

    def load_u8(self, addr: int) -> int:
        return self.load("<B", addr, 1)

    def read_cstring(self, addr: int, max_len: int = 1 << 20) -> bytes:
        """Read a NUL-terminated string (for diagnostics and WASI paths)."""
        self.check(addr, 1)
        end = self.data.find(b"\x00", addr, min(self.size, addr + max_len))
        if end < 0:
            raise Trap("out of bounds memory access", "unterminated string")
        return bytes(self.data[addr:end])

    @property
    def resident_bytes(self) -> int:
        return len(self.touched) << _RSS_PAGE_SHIFT
