"""Virtual native ISA: the register machine all compiled code runs on.

Contains the opcode space and semantics (:mod:`repro.isa.ops`), program
containers with basic-block metadata (:mod:`repro.isa.program`), guest
linear memory (:mod:`repro.isa.memory`), and the executor that drives the
hardware model (:mod:`repro.isa.machine`).
"""

from . import ops
from .machine import Machine
from .memory import LinearMemory
from .program import MFunction, MProgram, disassemble

__all__ = ["ops", "Machine", "LinearMemory", "MFunction", "MProgram",
           "disassemble"]
