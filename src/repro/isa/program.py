"""Machine-code container: functions, basic blocks, whole programs.

An :class:`MProgram` is the executable artifact of every compiled path:
the native compiler produces one, and each JIT/AOT backend produces one
from a Wasm module.  ``finalize`` lays the code out in the modeled address
space and precomputes, per basic block, the retired-instruction count and
the instruction-cache lines the block occupies — the machine executor
charges these in one step per block entry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ReproError
from . import ops

_INSTR_BYTES = 4  # average encoded size of one machine instruction


@dataclass
class MFunction:
    """One machine-code function."""

    name: str
    num_params: int
    num_regs: int
    code: List[tuple]
    sig_id: int = 0               # signature identity for indirect calls
    returns_value: bool = False
    frame_slots: int = 0          # spill slots (accounting)
    # Filled by MProgram.finalize():
    index: int = -1
    code_addr: int = 0
    blocks: Dict[int, Tuple[int, Tuple[int, ...]]] = field(default_factory=dict)

    def instr_cost(self, ins: tuple) -> int:
        """Retired machine instructions one ISA tuple stands for."""
        o = ins[0]
        if o == ops.CALL or o == ops.CALL_HOST:
            return 1 + len(ins[3])
        if o == ops.CALL_IND:
            return 2 + len(ins[4])
        if o == ops.CHECK:
            return 2   # bounds compare + branch
        return 1

    def compute_blocks(self, line_shift: int) -> None:
        """Identify leaders and precompute per-block charge data."""
        code = self.code
        n = len(code)
        leaders = {0}
        for pc, ins in enumerate(code):
            o = ins[0]
            if o == ops.JMP:
                leaders.add(ins[1])
            elif o in (ops.BRZ, ops.BRNZ):
                leaders.add(ins[2])
                if pc + 1 < n:
                    leaders.add(pc + 1)
            elif o == ops.BR_TABLE:
                leaders.update(ins[2])
                leaders.add(ins[3])
        leaders = sorted(l for l in leaders if l < n)

        # Cumulative byte offsets of each instruction.
        offsets = [0] * (n + 1)
        for pc, ins in enumerate(code):
            offsets[pc + 1] = offsets[pc] + self.instr_cost(ins) * _INSTR_BYTES

        self.code_size = offsets[n]
        self.blocks = {}
        for i, leader in enumerate(leaders):
            end = leaders[i + 1] if i + 1 < len(leaders) else n
            # A block also ends at its first terminator.
            stop = end
            for pc in range(leader, end):
                if code[pc][0] in ops.TERMINATORS:
                    stop = pc + 1
                    break
            n_instr = sum(self.instr_cost(code[pc])
                          for pc in range(leader, stop))
            start_addr = self.code_addr + offsets[leader]
            end_addr = self.code_addr + offsets[stop]
            lines = tuple(range(start_addr >> line_shift,
                                max(start_addr >> line_shift,
                                    (end_addr - 1) >> line_shift) + 1))
            self.blocks[leader] = (n_instr, lines)

    def validate_targets(self) -> None:
        """Every branch target must be a valid instruction index."""
        n = len(self.code)
        for pc, ins in enumerate(self.code):
            o = ins[0]
            targets: Sequence[int] = ()
            if o == ops.JMP:
                targets = (ins[1],)
            elif o in (ops.BRZ, ops.BRNZ):
                targets = (ins[2],)
            elif o == ops.BR_TABLE:
                targets = tuple(ins[2]) + (ins[3],)
            for t in targets:
                if not 0 <= t < n:
                    raise ReproError(
                        f"{self.name}: branch at {pc} targets {t} (size {n})")


@dataclass
class MProgram:
    """A complete machine program plus its static environment."""

    functions: List[MFunction] = field(default_factory=list)
    host_imports: List[str] = field(default_factory=list)
    globals_init: List[float] = field(default_factory=list)
    table: List[int] = field(default_factory=list)   # funcref table (indices)
    memory_pages: int = 1
    memory_max_pages: Optional[int] = None
    data_segments: List[Tuple[int, bytes]] = field(default_factory=list)
    exports: Dict[str, int] = field(default_factory=dict)
    start_function: Optional[int] = None
    source_opt_level: int = 2
    finalized: bool = False

    def add_function(self, func: MFunction) -> int:
        func.index = len(self.functions)
        self.functions.append(func)
        return func.index

    def function_named(self, name: str) -> MFunction:
        index = self.exports.get(name)
        if index is None:
            raise ReproError(f"no exported function {name!r}")
        return self.functions[index]

    @property
    def code_bytes(self) -> int:
        """Total generated code size (drives code-cache MRSS accounting)."""
        if not self.finalized:
            raise ReproError("program not finalized")
        return sum(f.code_size for f in self.functions)

    def finalize(self, code_base: int, line_shift: int = 6) -> "MProgram":
        """Lay out code in the address space and precompute block data."""
        addr = code_base
        for func in self.functions:
            func.code_addr = addr
            func.validate_targets()
            func.compute_blocks(line_shift)
            addr += func.code_size + _INSTR_BYTES  # alignment gap
        self.finalized = True
        return self


def disassemble(func: MFunction) -> str:
    """Human-readable listing of one machine function (debugging aid)."""
    lines = [f"{func.name}: params={func.num_params} regs={func.num_regs} "
             f"slots={func.frame_slots}"]
    for pc, ins in enumerate(func.code):
        marker = "->" if pc in func.blocks else "  "
        body = " ".join(str(x) for x in ins[1:])
        lines.append(f"{marker} {pc:4d}: {ops.name_of(ins[0])} {body}")
    return "\n".join(lines)
