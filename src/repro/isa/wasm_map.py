"""Mapping from WebAssembly opcodes to the machine ISA's operations.

This single table guarantees that every execution engine — both
interpreters and all three JIT backends — computes with *identical*
semantics: interpreters call the machine op's semantic function directly,
and JIT lowering emits the machine opcode.  Differential tests across
engines lean on this.
"""

from __future__ import annotations

from typing import Dict

from ..wasm import opcodes as w
from . import ops as m

# Simple value ops: wasm opcode -> machine opcode (binary or unary).
BINARY: Dict[int, int] = {
    w.I32_ADD: m.ADD32, w.I32_SUB: m.SUB32, w.I32_MUL: m.MUL32,
    w.I32_DIV_S: m.DIVS32, w.I32_DIV_U: m.DIVU32,
    w.I32_REM_S: m.REMS32, w.I32_REM_U: m.REMU32,
    w.I32_AND: m.AND32, w.I32_OR: m.OR32, w.I32_XOR: m.XOR32,
    w.I32_SHL: m.SHL32, w.I32_SHR_S: m.SHRS32, w.I32_SHR_U: m.SHRU32,
    w.I32_ROTL: m.ROTL32, w.I32_ROTR: m.ROTR32,
    w.I32_EQ: m.EQ32, w.I32_NE: m.NE32,
    w.I32_LT_S: m.LTS32, w.I32_LT_U: m.LTU32,
    w.I32_GT_S: m.GTS32, w.I32_GT_U: m.GTU32,
    w.I32_LE_S: m.LES32, w.I32_LE_U: m.LEU32,
    w.I32_GE_S: m.GES32, w.I32_GE_U: m.GEU32,

    w.I64_ADD: m.ADD64, w.I64_SUB: m.SUB64, w.I64_MUL: m.MUL64,
    w.I64_DIV_S: m.DIVS64, w.I64_DIV_U: m.DIVU64,
    w.I64_REM_S: m.REMS64, w.I64_REM_U: m.REMU64,
    w.I64_AND: m.AND64, w.I64_OR: m.OR64, w.I64_XOR: m.XOR64,
    w.I64_SHL: m.SHL64, w.I64_SHR_S: m.SHRS64, w.I64_SHR_U: m.SHRU64,
    w.I64_ROTL: m.ROTL64, w.I64_ROTR: m.ROTR64,
    w.I64_EQ: m.EQ64, w.I64_NE: m.NE64,
    w.I64_LT_S: m.LTS64, w.I64_LT_U: m.LTU64,
    w.I64_GT_S: m.GTS64, w.I64_GT_U: m.GTU64,
    w.I64_LE_S: m.LES64, w.I64_LE_U: m.LEU64,
    w.I64_GE_S: m.GES64, w.I64_GE_U: m.GEU64,

    w.F32_ADD: m.ADDF32, w.F32_SUB: m.SUBF32, w.F32_MUL: m.MULF32,
    w.F32_DIV: m.DIVF32, w.F32_MIN: m.MINF32, w.F32_MAX: m.MAXF32,
    w.F32_COPYSIGN: m.COPYSIGNF32,
    w.F32_EQ: m.EQF32, w.F32_NE: m.NEF32, w.F32_LT: m.LTF32,
    w.F32_GT: m.GTF32, w.F32_LE: m.LEF32, w.F32_GE: m.GEF32,

    w.F64_ADD: m.ADDF64, w.F64_SUB: m.SUBF64, w.F64_MUL: m.MULF64,
    w.F64_DIV: m.DIVF64, w.F64_MIN: m.MINF64, w.F64_MAX: m.MAXF64,
    w.F64_COPYSIGN: m.COPYSIGNF64,
    w.F64_EQ: m.EQF64, w.F64_NE: m.NEF64, w.F64_LT: m.LTF64,
    w.F64_GT: m.GTF64, w.F64_LE: m.LEF64, w.F64_GE: m.GEF64,
}

UNARY: Dict[int, int] = {
    w.I32_CLZ: m.CLZ32, w.I32_CTZ: m.CTZ32, w.I32_POPCNT: m.POPCNT32,
    w.I32_EQZ: m.EQZ32,
    w.I64_CLZ: m.CLZ64, w.I64_CTZ: m.CTZ64, w.I64_POPCNT: m.POPCNT64,
    w.I64_EQZ: m.EQZ64,
    w.F32_ABS: m.ABSF32, w.F32_NEG: m.NEGF32, w.F32_CEIL: m.CEILF32,
    w.F32_FLOOR: m.FLOORF32, w.F32_TRUNC: m.TRUNCF32,
    w.F32_NEAREST: m.NEARESTF32, w.F32_SQRT: m.SQRTF32,
    w.F64_ABS: m.ABSF64, w.F64_NEG: m.NEGF64, w.F64_CEIL: m.CEILF64,
    w.F64_FLOOR: m.FLOORF64, w.F64_TRUNC: m.TRUNCF64,
    w.F64_NEAREST: m.NEARESTF64, w.F64_SQRT: m.SQRTF64,
    w.I32_WRAP_I64: m.WRAP64,
    w.I32_TRUNC_F32_S: m.TRUNCF32S32, w.I32_TRUNC_F32_U: m.TRUNCF32U32,
    w.I32_TRUNC_F64_S: m.TRUNCF64S32, w.I32_TRUNC_F64_U: m.TRUNCF64U32,
    w.I64_EXTEND_I32_S: m.EXTENDS32, w.I64_EXTEND_I32_U: m.EXTENDU32,
    w.I64_TRUNC_F32_S: m.TRUNCF32S64, w.I64_TRUNC_F32_U: m.TRUNCF32U64,
    w.I64_TRUNC_F64_S: m.TRUNCF64S64, w.I64_TRUNC_F64_U: m.TRUNCF64U64,
    w.F32_CONVERT_I32_S: m.CVTS32F32, w.F32_CONVERT_I32_U: m.CVTU32F32,
    w.F32_CONVERT_I64_S: m.CVTS64F32, w.F32_CONVERT_I64_U: m.CVTU64F32,
    w.F32_DEMOTE_F64: m.DEMOTE,
    w.F64_CONVERT_I32_S: m.CVTS32F64, w.F64_CONVERT_I32_U: m.CVTU32F64,
    w.F64_CONVERT_I64_S: m.CVTS64F64, w.F64_CONVERT_I64_U: m.CVTU64F64,
    w.F64_PROMOTE_F32: m.PROMOTE,
    w.I32_REINTERPRET_F32: m.RI32F32, w.I64_REINTERPRET_F64: m.RI64F64,
    w.F32_REINTERPRET_I32: m.RF32I32, w.F64_REINTERPRET_I64: m.RF64I64,
}

LOADS: Dict[int, int] = {
    w.I32_LOAD: m.LOAD32, w.I64_LOAD: m.LOAD64,
    w.F32_LOAD: m.LOADF32, w.F64_LOAD: m.LOADF64,
    w.I32_LOAD8_S: m.LOAD8_S, w.I32_LOAD8_U: m.LOAD8_U,
    w.I32_LOAD16_S: m.LOAD16_S, w.I32_LOAD16_U: m.LOAD16_U,
    w.I64_LOAD8_S: m.LOAD8_S64, w.I64_LOAD8_U: m.LOAD8_U,
    w.I64_LOAD16_S: m.LOAD16_S64, w.I64_LOAD16_U: m.LOAD16_U,
    w.I64_LOAD32_S: m.LOAD32_S64, w.I64_LOAD32_U: m.LOAD32_U64,
}

STORES: Dict[int, int] = {
    w.I32_STORE: m.STORE32, w.I64_STORE: m.STORE64,
    w.F32_STORE: m.STOREF32, w.F64_STORE: m.STOREF64,
    w.I32_STORE8: m.STORE8, w.I32_STORE16: m.STORE16,
    w.I64_STORE8: m.STORE8, w.I64_STORE16: m.STORE16,
    w.I64_STORE32: m.STORE32,
}

# Semantic functions for direct interpretation: wasm opcode -> callable.
BIN_FN = {wop: m.BINF[mop] for wop, mop in BINARY.items()}
UN_FN = {wop: m.UNF[mop - m.NUM_BIN] for wop, mop in UNARY.items()}
