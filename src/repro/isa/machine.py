"""The virtual CPU executor: runs machine programs against the hw model.

This is the single hottest loop in the repository — it executes every
native run and every JIT/AOT-compiled run.  Per *basic block* it charges
retired instructions and instruction-cache fetches (precomputed by
``MProgram.finalize``); per *memory access* it performs the real typed
access on the shared :class:`~repro.isa.memory.LinearMemory` and charges
the data-cache hierarchy; per *branch* it consults the branch predictor.
Everything the paper measures falls out of these three event streams.

Style note: the dispatch loop deliberately trades idiomatic structure for
locality — locals are bound once per call frame and the opcode space is
range-partitioned — because it executes millions of times per experiment.
"""

from __future__ import annotations

import struct
from typing import Callable, Dict, List, Optional, Sequence

from ..errors import ReproError, Trap
from ..hw import CPUModel
from ..hw.config import HOST_STACK_BASE, RUNTIME_DATA_BASE
from . import ops
from .memory import LinearMemory
from .program import MFunction, MProgram

# Precompiled struct codecs per load/store opcode.
_LOADS: Dict[int, tuple] = {}
for _op, (_size, _fmt, _mask) in ops.LOAD_CODEC.items():
    _LOADS[_op] = (_size, struct.Struct("<" + _fmt).unpack_from, _mask)
_STORES: Dict[int, tuple] = {}
for _op, (_size, _fmt, _mask) in ops.STORE_CODEC.items():
    _STORES[_op] = (_size, struct.Struct("<" + _fmt).pack_into, _mask)

_GLOBALS_ADDR = RUNTIME_DATA_BASE + 0x0010_0000
_HOST_CALL_INSTRS = 24       # trampoline + ABI shuffle per host call
_MAX_CALL_DEPTH = 1200

# Each guest call costs a few CPython frames; keep the interpreter's own
# recursion limit comfortably above the guest's.
import sys as _sys

if _sys.getrecursionlimit() < _MAX_CALL_DEPTH * 5 + 200:
    _sys.setrecursionlimit(_MAX_CALL_DEPTH * 5 + 200)

HostFn = Callable[["Machine", Sequence], Optional[float]]


class Machine:
    """Executes one finalized :class:`MProgram`."""

    def __init__(self, program: MProgram, cpu: CPUModel,
                 memory: Optional[LinearMemory] = None,
                 host: Optional[Dict[str, HostFn]] = None,
                 check_cost: bool = False):
        if not program.finalized:
            raise ReproError("program must be finalized before execution")
        self.program = program
        self.cpu = cpu
        self.memory = memory or LinearMemory(program.memory_pages,
                                             program.memory_max_pages)
        self.globals: List = list(program.globals_init)
        self.table: List[int] = list(program.table)
        self.check_cost = check_cost
        host = host or {}
        self.host_functions: List[HostFn] = []
        for name in program.host_imports:
            fn = host.get(name)
            if fn is None:
                raise ReproError(f"unresolved host import {name!r}")
            self.host_functions.append(fn)
        self._depth = 0
        self._frame_top = HOST_STACK_BASE
        self.returned_value = None

    # -- program environment setup -------------------------------------

    def apply_data_segments(self) -> None:
        for offset, payload in self.program.data_segments:
            self.memory.write_bytes(offset, payload)

    def run_start(self) -> None:
        if self.program.start_function is not None:
            self.call_function(self.program.start_function, ())

    def run_export(self, name: str, args: Sequence = ()) -> Optional[float]:
        index = self.program.exports.get(name)
        if index is None:
            raise ReproError(f"no exported function {name!r}")
        return self.call_function(index, args)

    # -- execution ----------------------------------------------------------

    def call_function(self, func_index: int, args: Sequence):
        func = self.program.functions[func_index]
        if len(args) != func.num_params:
            raise ReproError(f"{func.name}: expected {func.num_params} args, "
                             f"got {len(args)}")
        return self._call(func, list(args))

    def _call(self, func: MFunction, args: List):
        self._depth += 1
        if self._depth > _MAX_CALL_DEPTH:
            self._depth -= 1
            raise Trap("call stack exhausted")
        frame_bytes = (func.frame_slots + 2 + func.num_params) * 8
        self._frame_top -= frame_bytes
        frame_base = self._frame_top
        try:
            return self._exec(func, args, frame_base)
        finally:
            self._frame_top += frame_bytes
            self._depth -= 1

    def _exec(self, func: MFunction, args: List, frame_base: int):
        # Bind everything hot into locals.
        code = func.code
        blocks = func.blocks
        regs = args + [0] * (func.num_regs - len(args))
        counters = self.cpu.counters
        caches = self.cpu.caches
        l1i = caches.l1i
        l1d = caches.l1d
        l1i_access = l1i.access_line
        l1d_access = l1d.access_line
        line_shift = caches.line_shift
        branches = self.cpu.branches
        mem = self.memory
        mem_data = mem.data
        mem_size = mem.size
        touched = mem.touched
        binf = ops.BINF
        unf = ops.UNF
        num_bin = ops.NUM_BIN
        num_un = ops.NUM_UN_END
        extra_stall = ops.EXTRA_STALL
        func_tag = (func.index & 0xFFFF) << 16
        guest_line_base = 0x1000_0000 >> line_shift  # GUEST_MEMORY_BASE
        pc = 0
        stall = 0

        # Shadowed model state, as in repro.speed.fastloop: the gshare
        # history/tables, the indirect target history, pending branch
        # and L1 reference counts, and the L1 LRU clocks live in frame
        # locals; everything is written back before any observation
        # point (calls, traps, return), and every model miss path falls
        # back to the real method after a write-back, so the modeled
        # numbers are byte-identical to calling the methods per event.
        penalty = branches.penalty
        gshare = branches._gshare
        gmask = branches._gshare_mask
        gh = branches._history
        ghmask = branches._history_mask
        imask = branches._itc_mask
        btb = branches._btb
        itc = branches._itc
        th = branches._target_history
        br = 0
        l1i_sets = l1i.sets
        l1i_smask = l1i.set_mask
        l1i_stats = l1i.stats
        l1i_tick = l1i.tick
        l1i_refs = 0
        l1d_sets = l1d.sets
        l1d_smask = l1d.set_mask
        l1d_stats = l1d.stats
        l1d_tick = l1d.tick
        l1d_refs = 0

        # Charge the entry block.
        blk = blocks[0]
        counters.instructions += blk[0]
        for ln in blk[1]:
            cs = l1i_sets[ln & l1i_smask]
            if ln in cs:
                l1i_tick += 1
                l1i_refs += 1
                cs[ln] = l1i_tick
            else:
                l1i.tick = l1i_tick
                l1i_stats.refs += l1i_refs
                l1i_refs = 0
                stall += l1i_access(ln)
                l1i_tick = l1i.tick

        while True:
            ins = code[pc]
            o = ins[0]
            if o < num_bin:
                s = extra_stall[o]
                if s:
                    stall += s
                regs[ins[1]] = binf[o](regs[ins[2]], regs[ins[3]])
                pc += 1
            elif o < num_un:
                s = extra_stall[o]
                if s:
                    stall += s
                regs[ins[1]] = unf[o - num_bin](regs[ins[2]])
                pc += 1
            elif o == ops.LI:
                regs[ins[1]] = ins[2]
                pc += 1
            elif o == ops.MOV:
                regs[ins[1]] = regs[ins[2]]
                pc += 1
            elif o in _LOADS:
                size, unpack, mask = _LOADS[o]
                addr = regs[ins[2]] + ins[3]
                if addr + size > mem_size:
                    counters.stall_cycles += stall
                    counters.branches += br
                    l1i_stats.refs += l1i_refs
                    l1d_stats.refs += l1d_refs
                    branches._history = gh
                    branches._target_history = th
                    l1i.tick = l1i_tick
                    l1d.tick = l1d_tick
                    raise Trap("out of bounds memory access",
                               f"{func.name}: load at {addr}")
                value = unpack(mem_data, addr)[0]
                regs[ins[1]] = (value & mask) if mask else value
                ln = guest_line_base + (addr >> line_shift)
                cs = l1d_sets[ln & l1d_smask]
                if ln in cs:
                    l1d_tick += 1
                    l1d_refs += 1
                    cs[ln] = l1d_tick
                else:
                    l1d.tick = l1d_tick
                    l1d_stats.refs += l1d_refs
                    l1d_refs = 0
                    stall += l1d_access(ln)
                    l1d_tick = l1d.tick
                pc += 1
            elif o in _STORES:
                size, pack, mask = _STORES[o]
                addr = regs[ins[1]] + ins[2]
                if addr + size > mem_size:
                    counters.stall_cycles += stall
                    counters.branches += br
                    l1i_stats.refs += l1i_refs
                    l1d_stats.refs += l1d_refs
                    branches._history = gh
                    branches._target_history = th
                    l1i.tick = l1i_tick
                    l1d.tick = l1d_tick
                    raise Trap("out of bounds memory access",
                               f"{func.name}: store at {addr}")
                value = regs[ins[3]]
                pack(mem_data, addr, (value & mask) if mask else value)
                touched.add(addr >> 12)
                ln = guest_line_base + (addr >> line_shift)
                cs = l1d_sets[ln & l1d_smask]
                if ln in cs:
                    l1d_tick += 1
                    l1d_refs += 1
                    cs[ln] = l1d_tick
                else:
                    l1d.tick = l1d_tick
                    l1d_stats.refs += l1d_refs
                    l1d_refs = 0
                    stall += l1d_access(ln)
                    l1d_tick = l1d.tick
                pc += 1
            elif o == ops.BRZ or o == ops.BRNZ:
                taken = (regs[ins[1]] == 0) == (o == ops.BRZ)
                br += 1
                gi = ((func_tag | pc) ^ gh) & gmask
                gc = gshare[gi]
                if taken:
                    if gc < 3:
                        gshare[gi] = gc + 1
                    gh = ((gh << 1) | 1) & ghmask
                else:
                    if gc > 0:
                        gshare[gi] = gc - 1
                    gh = (gh << 1) & ghmask
                if (gc >= 2) != taken:
                    counters.branch_misses += 1
                    stall += penalty
                pc = ins[2] if taken else pc + 1
                blk = blocks[pc]
                counters.instructions += blk[0]
                for ln in blk[1]:
                    cs = l1i_sets[ln & l1i_smask]
                    if ln in cs:
                        l1i_tick += 1
                        l1i_refs += 1
                        cs[ln] = l1i_tick
                    else:
                        l1i.tick = l1i_tick
                        l1i_stats.refs += l1i_refs
                        l1i_refs = 0
                        stall += l1i_access(ln)
                        l1i_tick = l1i.tick
            elif o == ops.JMP:
                br += 1
                pc = ins[1]
                blk = blocks[pc]
                counters.instructions += blk[0]
                for ln in blk[1]:
                    cs = l1i_sets[ln & l1i_smask]
                    if ln in cs:
                        l1i_tick += 1
                        l1i_refs += 1
                        cs[ln] = l1i_tick
                    else:
                        l1i.tick = l1i_tick
                        l1i_stats.refs += l1i_refs
                        l1i_refs = 0
                        stall += l1i_access(ln)
                        l1i_tick = l1i.tick
            elif o == ops.CALL:
                counters.stall_cycles += stall
                counters.branches += br
                l1i_stats.refs += l1i_refs
                l1d_stats.refs += l1d_refs
                branches._history = gh
                branches._target_history = th
                l1i.tick = l1i_tick
                l1d.tick = l1d_tick
                stall = 0
                br = 0
                l1i_refs = 0
                l1d_refs = 0
                branches.call(func_tag | pc)
                result = self._call(self.program.functions[ins[2]],
                                    [regs[r] for r in ins[3]])
                branches.ret(func_tag | pc)
                gh = branches._history
                th = branches._target_history
                l1i_tick = l1i.tick
                l1d_tick = l1d.tick
                mem_data = mem.data   # callee may have grown memory
                mem_size = mem.size
                if ins[1] >= 0:
                    regs[ins[1]] = result
                pc += 1
            elif o == ops.CALL_HOST:
                counters.instructions += _HOST_CALL_INSTRS
                counters.stall_cycles += stall
                counters.branches += br
                l1i_stats.refs += l1i_refs
                l1d_stats.refs += l1d_refs
                branches._history = gh
                branches._target_history = th
                l1i.tick = l1i_tick
                l1d.tick = l1d_tick
                stall = 0
                br = 0
                l1i_refs = 0
                l1d_refs = 0
                branches.call(func_tag | pc)
                result = self.host_functions[ins[2]](
                    self, [regs[r] for r in ins[3]])
                branches.ret(func_tag | pc)
                gh = branches._history
                th = branches._target_history
                l1i_tick = l1i.tick
                l1d_tick = l1d.tick
                mem_data = mem.data   # host may have grown memory
                mem_size = mem.size
                if ins[1] >= 0:
                    regs[ins[1]] = result
                pc += 1
            elif o == ops.CALL_IND:
                counters.stall_cycles += stall
                counters.branches += br
                l1i_stats.refs += l1i_refs
                l1d_stats.refs += l1d_refs
                branches._history = gh
                branches._target_history = th
                l1i.tick = l1i_tick
                l1d.tick = l1d_tick
                stall = 0
                br = 0
                l1i_refs = 0
                l1d_refs = 0
                table_index = regs[ins[3]]
                if table_index >= len(self.table) or table_index < 0:
                    raise Trap("undefined element",
                               f"table index {table_index}")
                callee_index = self.table[table_index]
                if callee_index < 0:
                    raise Trap("uninitialized element")
                callee = self.program.functions[callee_index]
                if callee.sig_id != ins[2]:
                    raise Trap("indirect call type mismatch")
                branches.indirect_branch(func_tag | pc, callee_index)
                result = self._call(callee, [regs[r] for r in ins[4]])
                branches.ret(func_tag | pc)
                gh = branches._history
                th = branches._target_history
                l1i_tick = l1i.tick
                l1d_tick = l1d.tick
                mem_data = mem.data   # callee may have grown memory
                mem_size = mem.size
                if ins[1] >= 0:
                    regs[ins[1]] = result
                pc += 1
            elif o == ops.RET:
                counters.stall_cycles += stall
                counters.branches += br
                l1i_stats.refs += l1i_refs
                l1d_stats.refs += l1d_refs
                branches._history = gh
                branches._target_history = th
                l1i.tick = l1i_tick
                l1d.tick = l1d_tick
                return regs[ins[1]] if ins[1] >= 0 else None
            elif o == ops.SELECT:
                regs[ins[1]] = regs[ins[3]] if regs[ins[2]] else regs[ins[4]]
                pc += 1
            elif o == ops.GGET:
                regs[ins[1]] = self.globals[ins[2]]
                ln = (_GLOBALS_ADDR + ins[2] * 8) >> line_shift
                cs = l1d_sets[ln & l1d_smask]
                if ln in cs:
                    l1d_tick += 1
                    l1d_refs += 1
                    cs[ln] = l1d_tick
                else:
                    l1d.tick = l1d_tick
                    l1d_stats.refs += l1d_refs
                    l1d_refs = 0
                    stall += l1d_access(ln)
                    l1d_tick = l1d.tick
                pc += 1
            elif o == ops.GSET:
                self.globals[ins[1]] = regs[ins[2]]
                ln = (_GLOBALS_ADDR + ins[1] * 8) >> line_shift
                cs = l1d_sets[ln & l1d_smask]
                if ln in cs:
                    l1d_tick += 1
                    l1d_refs += 1
                    cs[ln] = l1d_tick
                else:
                    l1d.tick = l1d_tick
                    l1d_stats.refs += l1d_refs
                    l1d_refs = 0
                    stall += l1d_access(ln)
                    l1d_tick = l1d.tick
                pc += 1
            elif o == ops.SPILL or o == ops.RELOAD:
                ln = (frame_base + ins[1] * 8) >> line_shift
                cs = l1d_sets[ln & l1d_smask]
                if ln in cs:
                    l1d_tick += 1
                    l1d_refs += 1
                    cs[ln] = l1d_tick
                else:
                    l1d.tick = l1d_tick
                    l1d_stats.refs += l1d_refs
                    l1d_refs = 0
                    stall += l1d_access(ln)
                    l1d_tick = l1d.tick
                pc += 1
            elif o == ops.CHECK:
                pc += 1
            elif o == ops.MEMSIZE:
                regs[ins[1]] = mem.pages
                pc += 1
            elif o == ops.MEMGROW:
                counters.instructions += 200
                regs[ins[1]] = ops.M32 & mem.grow(regs[ins[2]])
                mem_data = mem.data
                mem_size = mem.size
                pc += 1
            elif o == ops.BR_TABLE:
                index = regs[ins[1]]
                targets = ins[2]
                target = targets[index] if index < len(targets) else ins[3]
                if btb.get((func_tag | pc) & imask) == target \
                        and itc.get(th & imask) == target:
                    th = ((th << 4) ^ target) & imask
                    br += 1
                else:
                    branches._target_history = th
                    branches.indirect_branch(func_tag | pc, target)
                    th = branches._target_history
                pc = target
                blk = blocks[pc]
                counters.instructions += blk[0]
                for ln in blk[1]:
                    cs = l1i_sets[ln & l1i_smask]
                    if ln in cs:
                        l1i_tick += 1
                        l1i_refs += 1
                        cs[ln] = l1i_tick
                    else:
                        l1i.tick = l1i_tick
                        l1i_stats.refs += l1i_refs
                        l1i_refs = 0
                        stall += l1i_access(ln)
                        l1i_tick = l1i.tick
            elif o == ops.TRAP_OP:
                counters.stall_cycles += stall
                counters.branches += br
                l1i_stats.refs += l1i_refs
                l1d_stats.refs += l1d_refs
                branches._history = gh
                branches._target_history = th
                l1i.tick = l1i_tick
                l1d.tick = l1d_tick
                raise Trap(ins[1])
            else:  # pragma: no cover - opcode space is closed
                # The reference loses pending stall here; only the
                # shadowed predictor/cache state is written back.
                counters.branches += br
                l1i_stats.refs += l1i_refs
                l1d_stats.refs += l1d_refs
                branches._history = gh
                branches._target_history = th
                l1i.tick = l1i_tick
                l1d.tick = l1d_tick
                raise ReproError(f"unknown machine opcode {o}")
