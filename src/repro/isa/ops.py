"""The virtual native ISA: a load/store register machine.

This is the "x86" of the reproduction: MiniC's native compiler and the
three JIT backends all emit this ISA, and :mod:`repro.isa.machine`
executes it against the hardware model.  Instructions are tuples whose
first element is an opcode from this module.

Opcode-space layout (chosen so the executor can dispatch on cheap range
checks instead of a 150-way if/elif chain):

* ``[0, NUM_BIN)``    — binary ALU ops ``(op, dst, a, b)``, semantics in
  :data:`BINF`;
* ``[NUM_BIN, NUM_UN)`` — unary/conversion ops ``(op, dst, a)``, semantics
  in :data:`UNF`;
* named specials above ``NUM_UN`` — moves, memory, control, calls.

Integer registers hold **unsigned masked** values (i32 in ``[0, 2**32)``,
i64 in ``[0, 2**64)``); float registers hold Python floats.  f32
operations round their result to single precision, matching the Wasm
spec; helpers below implement the spec's trapping and NaN semantics so
that every execution engine computes identical results.
"""

from __future__ import annotations

import math
import struct
from typing import Callable, Dict, List

from ..errors import Trap

M32 = 0xFFFFFFFF
M64 = 0xFFFFFFFFFFFFFFFF
_S32 = 0x80000000
_S64 = 0x8000000000000000

_pack_f = struct.Struct("<f")
_pack_d = struct.Struct("<d")
_pack_i = struct.Struct("<i")
_pack_I = struct.Struct("<I")
_pack_q = struct.Struct("<q")
_pack_Q = struct.Struct("<Q")


def s32(v: int) -> int:
    """Signed view of an unsigned-masked i32."""
    return v - ((v & _S32) << 1)


def s64(v: int) -> int:
    """Signed view of an unsigned-masked i64."""
    return v - ((v & _S64) << 1)


def f32round(x: float) -> float:
    """Round a double to the nearest representable single."""
    try:
        return _pack_f.unpack(_pack_f.pack(x))[0]
    except OverflowError:
        return math.inf if x > 0 else -math.inf


def _idiv(a: int, b: int) -> int:
    """Truncating (toward zero) signed integer division."""
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def _div_s(a: int, b: int, mask: int, smin: int) -> int:
    if b == 0:
        raise Trap("integer divide by zero")
    sa, sb = a - ((a & smin) << 1), b - ((b & smin) << 1)
    if sa == -(smin) and sb == -1:
        raise Trap("integer overflow")
    return _idiv(sa, sb) & mask


def _rem_s(a: int, b: int, mask: int, smin: int) -> int:
    if b == 0:
        raise Trap("integer divide by zero")
    sa, sb = a - ((a & smin) << 1), b - ((b & smin) << 1)
    return (sa - sb * _idiv(sa, sb)) & mask if sb else 0


def _div_u(a: int, b: int) -> int:
    if b == 0:
        raise Trap("integer divide by zero")
    return a // b


def _rem_u(a: int, b: int) -> int:
    if b == 0:
        raise Trap("integer divide by zero")
    return a % b


def _fmin(a: float, b: float) -> float:
    if a != a or b != b:
        return math.nan
    if a == 0 and b == 0:
        # -0 is the minimum of (0, -0).
        return a if math.copysign(1, a) < 0 else b
    return a if a < b else b


def _fmax(a: float, b: float) -> float:
    if a != a or b != b:
        return math.nan
    if a == 0 and b == 0:
        return a if math.copysign(1, a) > 0 else b
    return a if a > b else b


def _nearest(x: float) -> float:
    """Round-half-to-even (the Wasm `nearest` semantics)."""
    if x != x or math.isinf(x):
        return x
    r = math.floor(x)
    d = x - r
    if d > 0.5 or (d == 0.5 and r % 2 != 0):
        r += 1
    if r == 0 and math.copysign(1, x) < 0:
        return -0.0
    return float(r)


def _rotl(a: int, b: int, bits: int, mask: int) -> int:
    b &= bits - 1
    if not b:
        return a
    return ((a << b) | (a >> (bits - b))) & mask


def _rotr(a: int, b: int, bits: int, mask: int) -> int:
    b &= bits - 1
    if not b:
        return a
    return ((a >> b) | (a << (bits - b))) & mask


def _trunc_checked(x: float, lo: int, hi: int, mask: int) -> int:
    if x != x:
        raise Trap("invalid conversion to integer")
    t = math.trunc(x)
    if not lo <= t <= hi:
        raise Trap("integer overflow")
    return t & mask


def _clz(v: int, bits: int) -> int:
    return bits - v.bit_length()


def _ctz(v: int, bits: int) -> int:
    return (v & -v).bit_length() - 1 if v else bits


# ---------------------------------------------------------------------------
# Binary ALU opcodes.  Registered in definition order starting at 0.
# ---------------------------------------------------------------------------

BINF: List[Callable] = []
NAME: Dict[int, str] = {}
_EXTRA_STALL: Dict[int, int] = {}


def _bin(name: str, fn: Callable, stall: int = 0) -> int:
    code = len(BINF)
    BINF.append(fn)
    NAME[code] = name
    if stall:
        _EXTRA_STALL[code] = stall
    return code


# -- i32 ---------------------------------------------------------------
ADD32 = _bin("add32", lambda a, b: (a + b) & M32)
SUB32 = _bin("sub32", lambda a, b: (a - b) & M32)
MUL32 = _bin("mul32", lambda a, b: (a * b) & M32, stall=1)
DIVS32 = _bin("divs32", lambda a, b: _div_s(a, b, M32, _S32), stall=20)
DIVU32 = _bin("divu32", _div_u, stall=20)
REMS32 = _bin("rems32", lambda a, b: _rem_s(a, b, M32, _S32), stall=20)
REMU32 = _bin("remu32", _rem_u, stall=20)
AND32 = _bin("and32", lambda a, b: a & b)
OR32 = _bin("or32", lambda a, b: a | b)
XOR32 = _bin("xor32", lambda a, b: a ^ b)
SHL32 = _bin("shl32", lambda a, b: (a << (b & 31)) & M32)
SHRS32 = _bin("shrs32", lambda a, b: (s32(a) >> (b & 31)) & M32)
SHRU32 = _bin("shru32", lambda a, b: a >> (b & 31))
ROTL32 = _bin("rotl32", lambda a, b: _rotl(a, b, 32, M32))
ROTR32 = _bin("rotr32", lambda a, b: _rotr(a, b, 32, M32))
EQ32 = _bin("eq32", lambda a, b: 1 if a == b else 0)
NE32 = _bin("ne32", lambda a, b: 1 if a != b else 0)
LTS32 = _bin("lts32", lambda a, b: 1 if s32(a) < s32(b) else 0)
LTU32 = _bin("ltu32", lambda a, b: 1 if a < b else 0)
GTS32 = _bin("gts32", lambda a, b: 1 if s32(a) > s32(b) else 0)
GTU32 = _bin("gtu32", lambda a, b: 1 if a > b else 0)
LES32 = _bin("les32", lambda a, b: 1 if s32(a) <= s32(b) else 0)
LEU32 = _bin("leu32", lambda a, b: 1 if a <= b else 0)
GES32 = _bin("ges32", lambda a, b: 1 if s32(a) >= s32(b) else 0)
GEU32 = _bin("geu32", lambda a, b: 1 if a >= b else 0)

# -- i64 ---------------------------------------------------------------
ADD64 = _bin("add64", lambda a, b: (a + b) & M64)
SUB64 = _bin("sub64", lambda a, b: (a - b) & M64)
MUL64 = _bin("mul64", lambda a, b: (a * b) & M64, stall=1)
DIVS64 = _bin("divs64", lambda a, b: _div_s(a, b, M64, _S64), stall=30)
DIVU64 = _bin("divu64", _div_u, stall=30)
REMS64 = _bin("rems64", lambda a, b: _rem_s(a, b, M64, _S64), stall=30)
REMU64 = _bin("remu64", _rem_u, stall=30)
AND64 = _bin("and64", lambda a, b: a & b)
OR64 = _bin("or64", lambda a, b: a | b)
XOR64 = _bin("xor64", lambda a, b: a ^ b)
SHL64 = _bin("shl64", lambda a, b: (a << (b & 63)) & M64)
SHRS64 = _bin("shrs64", lambda a, b: (s64(a) >> (b & 63)) & M64)
SHRU64 = _bin("shru64", lambda a, b: a >> (b & 63))
ROTL64 = _bin("rotl64", lambda a, b: _rotl(a, b, 64, M64))
ROTR64 = _bin("rotr64", lambda a, b: _rotr(a, b, 64, M64))
EQ64 = _bin("eq64", lambda a, b: 1 if a == b else 0)
NE64 = _bin("ne64", lambda a, b: 1 if a != b else 0)
LTS64 = _bin("lts64", lambda a, b: 1 if s64(a) < s64(b) else 0)
LTU64 = _bin("ltu64", lambda a, b: 1 if a < b else 0)
GTS64 = _bin("gts64", lambda a, b: 1 if s64(a) > s64(b) else 0)
GTU64 = _bin("gtu64", lambda a, b: 1 if a > b else 0)
LES64 = _bin("les64", lambda a, b: 1 if s64(a) <= s64(b) else 0)
LEU64 = _bin("leu64", lambda a, b: 1 if a <= b else 0)
GES64 = _bin("ges64", lambda a, b: 1 if s64(a) >= s64(b) else 0)
GEU64 = _bin("geu64", lambda a, b: 1 if a >= b else 0)

# -- f32 (round results to single precision) ----------------------------
ADDF32 = _bin("addf32", lambda a, b: f32round(a + b), stall=1)
SUBF32 = _bin("subf32", lambda a, b: f32round(a - b), stall=1)
MULF32 = _bin("mulf32", lambda a, b: f32round(a * b), stall=1)
DIVF32 = _bin("divf32", lambda a, b: f32round(a / b) if b else (math.nan if (a != a or a == 0) else math.copysign(math.inf, a) * math.copysign(1, b)), stall=8)
MINF32 = _bin("minf32", lambda a, b: f32round(_fmin(a, b)), stall=1)
MAXF32 = _bin("maxf32", lambda a, b: f32round(_fmax(a, b)), stall=1)
COPYSIGNF32 = _bin("copysignf32", lambda a, b: math.copysign(a, b) if a == a else (math.nan if math.copysign(1, b) > 0 else -math.nan))
EQF32 = _bin("eqf32", lambda a, b: 1 if a == b else 0)
NEF32 = _bin("nef32", lambda a, b: 1 if a != b or a != a or b != b else 0)
LTF32 = _bin("ltf32", lambda a, b: 1 if a < b else 0)
GTF32 = _bin("gtf32", lambda a, b: 1 if a > b else 0)
LEF32 = _bin("lef32", lambda a, b: 1 if a <= b else 0)
GEF32 = _bin("gef32", lambda a, b: 1 if a >= b else 0)

# -- f64 -------------------------------------------------------------
ADDF64 = _bin("addf64", lambda a, b: a + b, stall=1)
SUBF64 = _bin("subf64", lambda a, b: a - b, stall=1)
MULF64 = _bin("mulf64", lambda a, b: a * b, stall=2)
DIVF64 = _bin("divf64", lambda a, b: (a / b) if b else (math.nan if (a != a or a == 0) else math.copysign(math.inf, a) * math.copysign(1, b)), stall=10)
MINF64 = _bin("minf64", _fmin, stall=1)
MAXF64 = _bin("maxf64", _fmax, stall=1)
COPYSIGNF64 = _bin("copysignf64", lambda a, b: math.copysign(a, b) if a == a else (math.nan if math.copysign(1, b) > 0 else -math.nan))
EQF64 = _bin("eqf64", lambda a, b: 1 if a == b else 0)
NEF64 = _bin("nef64", lambda a, b: 1 if a != b or a != a or b != b else 0)
LTF64 = _bin("ltf64", lambda a, b: 1 if a < b else 0)
GTF64 = _bin("gtf64", lambda a, b: 1 if a > b else 0)
LEF64 = _bin("lef64", lambda a, b: 1 if a <= b else 0)
GEF64 = _bin("gef64", lambda a, b: 1 if a >= b else 0)

NUM_BIN = len(BINF)

# ---------------------------------------------------------------------------
# Unary / conversion opcodes, indexed into UNF by (opcode - NUM_BIN).
# ---------------------------------------------------------------------------

UNF: List[Callable] = []


def _un(name: str, fn: Callable, stall: int = 0) -> int:
    code = NUM_BIN + len(UNF)
    UNF.append(fn)
    NAME[code] = name
    if stall:
        _EXTRA_STALL[code] = stall
    return code


CLZ32 = _un("clz32", lambda a: _clz(a, 32))
CTZ32 = _un("ctz32", lambda a: _ctz(a, 32))
POPCNT32 = _un("popcnt32", lambda a: a.bit_count())
EQZ32 = _un("eqz32", lambda a: 1 if a == 0 else 0)
CLZ64 = _un("clz64", lambda a: _clz(a, 64))
CTZ64 = _un("ctz64", lambda a: _ctz(a, 64))
POPCNT64 = _un("popcnt64", lambda a: a.bit_count())
EQZ64 = _un("eqz64", lambda a: 1 if a == 0 else 0)

ABSF32 = _un("absf32", lambda a: abs(a) if a == a else math.nan)
NEGF32 = _un("negf32", lambda a: -a)
CEILF32 = _un("ceilf32", lambda a: f32round(float(math.ceil(a))) if a == a and not math.isinf(a) else a)
FLOORF32 = _un("floorf32", lambda a: f32round(float(math.floor(a))) if a == a and not math.isinf(a) else a)
TRUNCF32 = _un("truncf32", lambda a: f32round(float(math.trunc(a))) if a == a and not math.isinf(a) else a)
NEARESTF32 = _un("nearestf32", lambda a: f32round(_nearest(a)))
SQRTF32 = _un("sqrtf32", lambda a: f32round(math.sqrt(a)) if a >= 0 else math.nan, stall=8)

ABSF64 = _un("absf64", lambda a: abs(a) if a == a else math.nan)
NEGF64 = _un("negf64", lambda a: -a)
CEILF64 = _un("ceilf64", lambda a: float(math.ceil(a)) if a == a and not math.isinf(a) else a)
FLOORF64 = _un("floorf64", lambda a: float(math.floor(a)) if a == a and not math.isinf(a) else a)
TRUNCF64 = _un("truncf64", lambda a: float(math.trunc(a)) if a == a and not math.isinf(a) else a)
NEARESTF64 = _un("nearestf64", _nearest)
SQRTF64 = _un("sqrtf64", lambda a: math.sqrt(a) if a >= 0 else math.nan, stall=12)

WRAP64 = _un("wrap64", lambda a: a & M32)
EXTENDS32 = _un("extends32", lambda a: s32(a) & M64)
EXTENDU32 = _un("extendu32", lambda a: a)
TRUNCF32S32 = _un("truncf32s32", lambda a: _trunc_checked(a, -2**31, 2**31 - 1, M32), stall=4)
TRUNCF32U32 = _un("truncf32u32", lambda a: _trunc_checked(a, 0, 2**32 - 1, M32), stall=4)
TRUNCF64S32 = _un("truncf64s32", lambda a: _trunc_checked(a, -2**31, 2**31 - 1, M32), stall=4)
TRUNCF64U32 = _un("truncf64u32", lambda a: _trunc_checked(a, 0, 2**32 - 1, M32), stall=4)
TRUNCF32S64 = _un("truncf32s64", lambda a: _trunc_checked(a, -2**63, 2**63 - 1, M64), stall=4)
TRUNCF32U64 = _un("truncf32u64", lambda a: _trunc_checked(a, 0, 2**64 - 1, M64), stall=4)
TRUNCF64S64 = _un("truncf64s64", lambda a: _trunc_checked(a, -2**63, 2**63 - 1, M64), stall=4)
TRUNCF64U64 = _un("truncf64u64", lambda a: _trunc_checked(a, 0, 2**64 - 1, M64), stall=4)
CVTS32F32 = _un("cvts32f32", lambda a: f32round(float(s32(a))), stall=3)
CVTU32F32 = _un("cvtu32f32", lambda a: f32round(float(a)), stall=3)
CVTS64F32 = _un("cvts64f32", lambda a: f32round(float(s64(a))), stall=3)
CVTU64F32 = _un("cvtu64f32", lambda a: f32round(float(a)), stall=3)
DEMOTE = _un("demote", f32round, stall=2)
CVTS32F64 = _un("cvts32f64", lambda a: float(s32(a)), stall=3)
CVTU32F64 = _un("cvtu32f64", lambda a: float(a), stall=3)
CVTS64F64 = _un("cvts64f64", lambda a: float(s64(a)), stall=3)
CVTU64F64 = _un("cvtu64f64", lambda a: float(a), stall=3)
PROMOTE = _un("promote", lambda a: a)
RI32F32 = _un("ri32f32", lambda a: _pack_I.unpack(_pack_f.pack(a))[0])
RI64F64 = _un("ri64f64", lambda a: _pack_Q.unpack(_pack_d.pack(a))[0])
RF32I32 = _un("rf32i32", lambda a: _pack_f.unpack(_pack_I.pack(a))[0])
RF64I64 = _un("rf64i64", lambda a: _pack_d.unpack(_pack_Q.pack(a))[0])

NUM_UN_END = NUM_BIN + len(UNF)

# ---------------------------------------------------------------------------
# Named special opcodes (moves, memory, control, calls).
# ---------------------------------------------------------------------------

_next = NUM_UN_END


def _special(name: str) -> int:
    global _next
    code = _next
    _next += 1
    NAME[code] = name
    return code


LI = _special("li")                 # (LI, dst, value)
MOV = _special("mov")               # (MOV, dst, src)
SELECT = _special("select")         # (SELECT, dst, cond, a, b)

# Loads: (op, dst, addr_reg, offset)
LOAD8_S = _special("load8_s")
LOAD8_U = _special("load8_u")
LOAD16_S = _special("load16_s")
LOAD16_U = _special("load16_u")
LOAD32 = _special("load32")         # i32 load (unsigned register image)
LOAD32_S64 = _special("load32_s64")
LOAD32_U64 = _special("load32_u64")
LOAD64 = _special("load64")
LOADF32 = _special("loadf32")
LOADF64 = _special("loadf64")
LOAD8_S64 = _special("load8_s64")    # sign-extend byte into an i64 image
LOAD16_S64 = _special("load16_s64")
# Stores: (op, addr_reg, offset, src)
STORE8 = _special("store8")
STORE16 = _special("store16")
STORE32 = _special("store32")
STORE64 = _special("store64")
STOREF32 = _special("storef32")
STOREF64 = _special("storef64")

GGET = _special("gget")             # (GGET, dst, global_index)
GSET = _special("gset")             # (GSET, global_index, src)
MEMSIZE = _special("memsize")       # (MEMSIZE, dst)
MEMGROW = _special("memgrow")       # (MEMGROW, dst, pages_reg)

JMP = _special("jmp")               # (JMP, target_pc)
BRZ = _special("brz")               # (BRZ, cond_reg, target_pc)
BRNZ = _special("brnz")             # (BRNZ, cond_reg, target_pc)
BR_TABLE = _special("br_table")     # (BR_TABLE, idx_reg, targets, default)
CALL = _special("call")             # (CALL, dst|-1, func_index, args)
CALL_IND = _special("call_ind")     # (CALL_IND, dst|-1, type_sig, idx_reg, args)
CALL_HOST = _special("call_host")   # (CALL_HOST, dst|-1, host_index, args)
RET = _special("ret")               # (RET, src_reg | -1)
TRAP_OP = _special("trap")          # (TRAP_OP, kind)

SPILL = _special("spill")           # (SPILL, slot) — accounting only
RELOAD = _special("reload")         # (RELOAD, slot) — accounting only
CHECK = _special("check")           # (CHECK,) — charged bounds check

NUM_OPS = _next

LOAD_OPS = frozenset(range(LOAD8_S, LOAD16_S64 + 1))
STORE_OPS = frozenset(range(STORE8, STOREF64 + 1))
TERMINATORS = frozenset((JMP, BRZ, BRNZ, BR_TABLE, RET, TRAP_OP))

# Per-opcode extra stall cycles (long-latency units); dense list for speed.
EXTRA_STALL: List[int] = [0] * NUM_OPS
for _code, _stall in _EXTRA_STALL.items():
    EXTRA_STALL[_code] = _stall

# Struct codecs for loads/stores, used by the machine and the interpreters.
LOAD_CODEC = {
    LOAD8_S: (1, "b", M32), LOAD8_U: (1, "B", 0),
    LOAD16_S: (2, "h", M32), LOAD16_U: (2, "H", 0),
    LOAD32: (4, "I", 0),
    LOAD32_S64: (4, "i", M64), LOAD32_U64: (4, "I", 0),
    LOAD64: (8, "Q", 0),
    LOADF32: (4, "f", 0), LOADF64: (8, "d", 0),
    LOAD8_S64: (1, "b", M64), LOAD16_S64: (2, "h", M64),
}
STORE_CODEC = {
    STORE8: (1, "B", 0xFF), STORE16: (2, "H", 0xFFFF),
    STORE32: (4, "I", M32), STORE64: (8, "Q", M64),
    STOREF32: (4, "f", 0), STOREF64: (8, "d", 0),
}


def name_of(opcode: int) -> str:
    return NAME.get(opcode, f"m{opcode}")
