"""JetStream2 `tsf`: a typed stream format implementation.

Serializes typed records (tag + varint/float payload) into a byte
stream, then parses them back — the schema-driven encode/decode pattern
of the original TSF library.
"""

from ..workload import Benchmark

SOURCE = r"""
#define TAG_INT 1
#define TAG_LONG 2
#define TAG_DOUBLE 3
#define TAG_STRING 4

char stream[STREAM_BYTES];
int stream_len = 0;
int read_pos = 0;

void put_byte(int b) {
    stream[stream_len++] = (char)b;
}

int get_byte(void) {
    return (int)(unsigned char)stream[read_pos++];
}

/* unsigned LEB128-style varints, the TSF wire primitive */
void put_varint(unsigned int v) {
    while (v >= 128u) {
        put_byte((int)(v & 127u) | 128);
        v >>= 7;
    }
    put_byte((int)v);
}

unsigned int get_varint(void) {
    unsigned int result = 0u;
    int shift = 0;
    while (1) {
        int b = get_byte();
        result |= (unsigned int)(b & 127) << shift;
        if (!(b & 128)) return result;
        shift += 7;
    }
}

void put_double(double d) {
    /* fixed-point encode: TSF uses IEEE bits, we use scaled integers to
       stay within the byte-level format */
    long scaled = (long)(d * 65536.0);
    int i;
    for (i = 0; i < 8; i++) {
        put_byte((int)(scaled & 255l));
        scaled >>= 8;
    }
}

double get_double(void) {
    long scaled = 0l;
    int i;
    for (i = 7; i >= 0; i--) {
        scaled = (scaled << 8) | (long)get_byte();
    }
    /* sign-extension already handled by 64-bit accumulation */
    return (double)scaled / 65536.0;
}

void encode_record(int kind, unsigned int a, double d, char *s) {
    put_byte(kind);
    if (kind == TAG_INT) {
        put_varint(a);
    } else if (kind == TAG_LONG) {
        put_varint(a);
        put_varint(a * 2977u);
    } else if (kind == TAG_DOUBLE) {
        put_double(d);
    } else {
        unsigned int n = strlen(s);
        put_varint(n);
        {
            unsigned int i;
            for (i = 0u; i < n; i++) put_byte((int)s[i]);
        }
    }
}

unsigned int decode_all(void) {
    unsigned int check = 2166136261u;
    read_pos = 0;
    while (read_pos < stream_len) {
        int kind = get_byte();
        if (kind == TAG_INT) {
            check = check * 16777619u ^ get_varint();
        } else if (kind == TAG_LONG) {
            unsigned int lo = get_varint();
            unsigned int hi = get_varint();
            check = check * 16777619u ^ lo ^ (hi << 1);
        } else if (kind == TAG_DOUBLE) {
            double d = get_double();
            check = check * 16777619u ^ (unsigned int)(long)(d * 256.0);
        } else {
            unsigned int n = get_varint();
            unsigned int i;
            for (i = 0u; i < n; i++)
                check = check * 31u + (unsigned int)get_byte();
        }
    }
    return check;
}

char *names[4];

int main(void) {
    unsigned int state = 99u;
    unsigned int check = 0u;
    int round;
    names[0] = "typed";
    names[1] = "stream";
    names[2] = "format";
    names[3] = "records";
    for (round = 0; round < ROUNDS; round++) {
        int i;
        stream_len = 0;
        for (i = 0; i < RECORDS; i++) {
            state = state * 1664525u + 1013904223u;
            encode_record((int)(state % 4u) + 1, state >> 8,
                          (double)(state & 4095u) * 0.125,
                          names[(state >> 4) & 3u]);
        }
        check = check * 31u + decode_all();
    }
    print_s("tsf bytes="); print_i(stream_len);
    print_s(" check="); print_x(check);
    print_nl();
    return 0;
}
"""

BENCHMARK = Benchmark(
    name="tsf",
    suite="jetstream2",
    domain="Data processing",
    description="Implementation of a typed stream format",
    source=SOURCE,
    defines={
        "test": {"STREAM_BYTES": "4096", "RECORDS": "120", "ROUNDS": "1"},
        "small": {"STREAM_BYTES": "32768", "RECORDS": "900", "ROUNDS": "3"},
        "ref": {"STREAM_BYTES": "262144", "RECORDS": "6000", "ROUNDS": "6"},
    },
    traits=("byte-oriented",),
)
