"""JetStream2 `quicksort`: recursive quicksort over integer arrays.

The paper's canonical *short-running* benchmark — it finishes in well
under a second, which is exactly where JIT compilation time shows up as
a big relative slowdown (Section 4.1).
"""

from ..workload import Benchmark

SOURCE = r"""
int data[N];

void fill(void) {
    unsigned int state = 0xCAFEu;
    int i;
    for (i = 0; i < N; i++) {
        state = state * 1664525u + 1013904223u;
        data[i] = (int)(state >> 8) % 100000;
    }
}

void quicksort_range(int lo, int hi) {
    int pivot, i, j, tmp;
    if (lo >= hi) return;
    pivot = data[lo + (hi - lo) / 2];
    i = lo;
    j = hi;
    while (i <= j) {
        while (data[i] < pivot) i++;
        while (data[j] > pivot) j--;
        if (i <= j) {
            tmp = data[i];
            data[i] = data[j];
            data[j] = tmp;
            i++;
            j--;
        }
    }
    quicksort_range(lo, j);
    quicksort_range(i, hi);
}

int main(void) {
    int round;
    unsigned int check = 0u;
    for (round = 0; round < ROUNDS; round++) {
        int i;
        fill();
        quicksort_range(0, N - 1);
        for (i = 1; i < N; i++) {
            if (data[i - 1] > data[i]) {
                print_s("quicksort: NOT SORTED");
                print_nl();
                return 1;
            }
        }
        check = check * 31u + (unsigned int)data[N / 2]
                + (unsigned int)data[0] + (unsigned int)data[N - 1];
    }
    print_s("quicksort checksum: ");
    print_x(check);
    print_nl();
    return 0;
}
"""

BENCHMARK = Benchmark(
    name="quicksort",
    suite="jetstream2",
    domain="Data Sorting",
    description="Quick sort algorithm implementation",
    source=SOURCE,
    defines={
        "test": {"N": "200", "ROUNDS": "1"},
        "small": {"N": "1200", "ROUNDS": "2"},
        "ref": {"N": "8000", "ROUNDS": "4"},
    },
    traits=("short-running", "recursive"),
)
