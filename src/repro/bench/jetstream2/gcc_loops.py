"""JetStream2 `gcc-loops`: the GCC auto-vectorizer tuning loops.

A set of small regular loops (reductions, saxpy, strided access, induction
variables, conditional stores) that compilers love — the benchmark the
paper reports the highest IPC on (4.07, Wasmer).
"""

from ..workload import Benchmark

SOURCE = r"""
int ia[LEN];
int ib[LEN];
int ic[LEN];
double da[LEN];
double db[LEN];
double dc[LEN];

void init_arrays(void) {
    int i;
    for (i = 0; i < LEN; i++) {
        ia[i] = i * 3 + 1;
        ib[i] = LEN - i;
        ic[i] = i & 31;
        da[i] = (double)i * 0.5;
        db[i] = (double)(LEN - i) * 0.25;
        dc[i] = 1.0;
    }
}

/* example 1: plain element-wise add */
void loop_add(void) {
    int i;
    for (i = 0; i < LEN; i++) ia[i] = ib[i] + ic[i];
}

/* example 2a: constant stores with induction */
void loop_induction(void) {
    int i;
    for (i = 0; i < LEN; i++) ib[i] = i * 7;
}

/* example 3: pointer-based accumulate */
int loop_pointer_sum(void) {
    int *p = ia;
    int total = 0;
    int n = LEN;
    while (n--) total += *p++;
    return total;
}

/* example 4a: if-conversion candidate */
void loop_select(void) {
    int i;
    for (i = 0; i < LEN; i++)
        ic[i] = ia[i] > ib[i] ? ia[i] : ib[i];
}

/* example 7: strided read */
int loop_strided(void) {
    int i, total = 0;
    for (i = 0; i < LEN / 2; i++) total += ia[2 * i];
    return total;
}

/* example 10a: widening multiply-accumulate */
long loop_widen(void) {
    int i;
    long acc = 0l;
    for (i = 0; i < LEN; i++) acc += (long)ia[i] * (long)ib[i];
    return acc;
}

/* example 11: double saxpy */
void loop_saxpy(void) {
    int i;
    for (i = 0; i < LEN; i++) da[i] = da[i] + 1.5 * db[i];
}

/* example 12: double reduction */
double loop_dot(void) {
    int i;
    double acc = 0.0;
    for (i = 0; i < LEN; i++) acc += da[i] * db[i];
    return acc;
}

/* example 21: reversal */
void loop_reverse(void) {
    int i = 0;
    int j = LEN - 1;
    while (i < j) {
        int t = ia[i];
        ia[i] = ia[j];
        ia[j] = t;
        i++;
        j--;
    }
}

/* example 23: saturating update with wraparound index */
void loop_wrap(void) {
    int i;
    for (i = 0; i < LEN; i++)
        ib[i] = (ib[i] + ia[(i + 16) % LEN]) & 0xFFFF;
}

int main(void) {
    int iter;
    unsigned int check = 2166136261u;
    init_arrays();
    for (iter = 0; iter < ITERS; iter++) {
        loop_add();
        loop_induction();
        check = check * 16777619u ^ (unsigned int)loop_pointer_sum();
        loop_select();
        check = check * 16777619u ^ (unsigned int)loop_strided();
        check = check * 16777619u ^ (unsigned int)loop_widen();
        loop_saxpy();
        check = check * 16777619u ^ (unsigned int)(long)loop_dot();
        loop_reverse();
        loop_wrap();
    }
    print_s("gcc-loops checksum: ");
    print_x(check);
    print_nl();
    return 0;
}
"""

BENCHMARK = Benchmark(
    name="gcc-loops",
    suite="jetstream2",
    domain="Compilation",
    description="Loops used to tune the GCC vectorizer",
    source=SOURCE,
    defines={
        "test": {"LEN": "64", "ITERS": "2"},
        "small": {"LEN": "256", "ITERS": "6"},
        "ref": {"LEN": "1024", "ITERS": "12"},
    },
    traits=("regular", "high-ipc"),
)
