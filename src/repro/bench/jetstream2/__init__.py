"""JetStream2 WebAssembly benchmarks (paper Table 2, rows 1-4)."""
