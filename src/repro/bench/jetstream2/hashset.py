"""JetStream2 `hashset`: the hash-table workload of web page loading.

Open-addressing hash set with linear probing and growth, exercising the
insert/lookup/remove mix a browser's symbol tables see.  The paper calls
out its relatively large code footprint in WAVM's AOT discussion.
"""

from ..workload import Benchmark

SOURCE = r"""
#define EMPTY 0
#define TOMB 1

unsigned int table_keys[CAPACITY * 2];
int table_size = 0;
int table_cap = CAPACITY;
int table_used = 0;

unsigned int hash_key(unsigned int key) {
    key ^= key >> 16;
    key *= 0x85ebca6bu;
    key ^= key >> 13;
    key *= 0xc2b2ae35u;
    key ^= key >> 16;
    return key;
}

int set_find_slot(unsigned int key) {
    unsigned int mask = (unsigned int)table_cap - 1u;
    unsigned int idx = hash_key(key) & mask;
    int first_tomb = -1;
    while (1) {
        unsigned int cur = table_keys[idx];
        if (cur == EMPTY) {
            if (first_tomb >= 0) return first_tomb;
            return (int)idx;
        }
        if (cur == TOMB) {
            if (first_tomb < 0) first_tomb = (int)idx;
        } else if (cur == key) {
            return (int)idx;
        }
        idx = (idx + 1u) & mask;
    }
}

void set_rehash(int newcap);

int set_insert(unsigned int key) {
    int slot;
    if (key < 2u) key += 2u;  /* reserve sentinels */
    if ((table_used + 1) * 4 >= table_cap * 3) {
        set_rehash(table_cap * 2);
    }
    slot = set_find_slot(key);
    if (table_keys[slot] == key) return 0;
    if (table_keys[slot] == EMPTY) table_used++;
    table_keys[slot] = key;
    table_size++;
    return 1;
}

int set_contains(unsigned int key) {
    int slot;
    if (key < 2u) key += 2u;
    slot = set_find_slot(key);
    return table_keys[slot] == key;
}

int set_remove(unsigned int key) {
    int slot;
    if (key < 2u) key += 2u;
    slot = set_find_slot(key);
    if (table_keys[slot] != key) return 0;
    table_keys[slot] = TOMB;
    table_size--;
    return 1;
}

unsigned int rehash_scratch[CAPACITY * 2];

void set_rehash(int newcap) {
    int oldcap = table_cap;
    int i;
    int count = 0;
    for (i = 0; i < oldcap; i++) {
        unsigned int key = table_keys[i];
        if (key != EMPTY && key != TOMB) rehash_scratch[count++] = key;
        table_keys[i] = EMPTY;
    }
    if (newcap <= CAPACITY * 2) table_cap = newcap;
    for (i = oldcap; i < table_cap; i++) table_keys[i] = EMPTY;
    table_size = 0;
    table_used = 0;
    for (i = 0; i < count; i++) set_insert(rehash_scratch[i]);
}

int main(void) {
    unsigned int state = 0x12345u;
    unsigned int check = 0u;
    int hits = 0;
    int i;
    for (i = 0; i < OPS; i++) {
        unsigned int key;
        state = state * 1664525u + 1013904223u;
        key = (state >> 8) % KEYSPACE;
        if ((state & 7u) < 4u) {
            set_insert(key);
        } else if ((state & 7u) < 7u) {
            hits += set_contains(key);
        } else {
            set_remove(key);
        }
    }
    for (i = 0; i < table_cap; i++) {
        unsigned int key = table_keys[i];
        if (key != EMPTY && key != TOMB) check = check * 31u + key;
    }
    print_s("hashset size="); print_i(table_size);
    print_s(" hits="); print_i(hits);
    print_s(" check="); print_x(check);
    print_nl();
    return 0;
}
"""

BENCHMARK = Benchmark(
    name="hashset",
    suite="jetstream2",
    domain="Hash table",
    description="Hash table operations of web page loading",
    source=SOURCE,
    defines={
        "test": {"CAPACITY": "256", "OPS": "600", "KEYSPACE": "300u"},
        "small": {"CAPACITY": "1024", "OPS": "4000", "KEYSPACE": "1500u"},
        "ref": {"CAPACITY": "8192", "OPS": "30000", "KEYSPACE": "10000u"},
    },
    traits=("pointer-chasing", "large-code"),
)
