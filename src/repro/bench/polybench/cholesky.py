"""PolyBench `cholesky`: Cholesky decomposition of an SPD matrix."""

from . import CHECKSUM_HELPERS, polybench

SOURCE = r"""
double A[N][N];

void init(void) {
    int i, j, k;
    /* standard polybench trick: build B = L*L^T from a simple L so the
       input is guaranteed positive definite */
    for (i = 0; i < N; i++) {
        for (j = 0; j <= i; j++)
            A[i][j] = (double)(-(j % N)) / (double)N + 1.0;
        for (j = i + 1; j < N; j++)
            A[i][j] = 0.0;
        A[i][i] = 1.0;
    }
    /* A = A * A^T (in place via scratch accumulation) */
    {
        static double B[N][N];
        for (i = 0; i < N; i++)
            for (j = 0; j < N; j++) {
                double acc = 0.0;
                for (k = 0; k < N; k++) acc += A[i][k] * A[j][k];
                B[i][j] = acc;
            }
        for (i = 0; i < N; i++)
            for (j = 0; j < N; j++)
                A[i][j] = B[i][j];
    }
}

void kernel_cholesky(void) {
    int i, j, k;
    for (i = 0; i < N; i++) {
        for (j = 0; j < i; j++) {
            for (k = 0; k < j; k++)
                A[i][j] -= A[i][k] * A[j][k];
            A[i][j] /= A[j][j];
        }
        for (k = 0; k < i; k++)
            A[i][i] -= A[i][k] * A[i][k];
        A[i][i] = sqrt(A[i][i]);
    }
}

int main(void) {
    int i, j;
    init();
    kernel_cholesky();
    for (i = 0; i < N; i++)
        for (j = 0; j <= i; j++) pb_feed(A[i][j]);
    pb_report("cholesky");
    return 0;
}
""" + CHECKSUM_HELPERS

BENCHMARK = polybench(
    "cholesky", "Linear algebra", "Cholesky decomposition", SOURCE,
    sizes={"test": 8, "small": 16, "ref": 36})
