"""PolyBench `jacobi-1d`: 1-D Jacobi stencil computation."""

from . import CHECKSUM_HELPERS, polybench

SOURCE = r"""
double A[N];
double B[N];

void init(void) {
    int i;
    for (i = 0; i < N; i++) {
        A[i] = ((double)i + 2.0) / (double)N;
        B[i] = ((double)i + 3.0) / (double)N;
    }
}

void kernel_jacobi_1d(void) {
    int t, i;
    for (t = 0; t < TSTEPS; t++) {
        for (i = 1; i < N - 1; i++)
            B[i] = 0.33333 * (A[i - 1] + A[i] + A[i + 1]);
        for (i = 1; i < N - 1; i++)
            A[i] = 0.33333 * (B[i - 1] + B[i] + B[i + 1]);
    }
}

int main(void) {
    int i;
    init();
    kernel_jacobi_1d();
    for (i = 0; i < N; i++) pb_feed(A[i]);
    pb_report("jacobi-1d");
    return 0;
}
""" + CHECKSUM_HELPERS

BENCHMARK = polybench(
    "jacobi-1d", "Stencils", "1-D Jacobi stencil computation", SOURCE,
    sizes={"test": 64, "small": 400, "ref": 2000},
    extra_defines={"TSTEPS": lambda n: max(4, n // 10)})
