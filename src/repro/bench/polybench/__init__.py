"""PolyBench/C kernels (all 30, as in paper Table 2 rows 14-43).

Each kernel module defines ``BENCHMARK`` via :func:`polybench`, which
fills in the suite name and the standard workload knob (`N`, plus
kernel-specific extras).  Kernels follow the reference PolyBench/C
sources: static global arrays, a deterministic ``init_*``, the kernel
itself, and a checksum print of the output data (PolyBench's
``print_array`` role, reduced to one line so runs are comparable
across engines).
"""

from ..workload import Benchmark


def polybench(name: str, domain: str, description: str, source: str,
              sizes=None, extra_defines=None, traits=()) -> Benchmark:
    sizes = sizes or {"test": 8, "small": 16, "ref": 32}
    defines = {}
    for cls, n in sizes.items():
        d = {"N": str(n)}
        if extra_defines:
            d.update({k: str(v(n)) if callable(v) else str(v)
                      for k, v in extra_defines.items()})
        defines[cls] = d
    return Benchmark(name=name, suite="polybench", domain=domain,
                     description=description, source=source,
                     defines=defines, traits=tuple(traits) + ("kernel",))


# Shared MiniC helper appended to every kernel: prints one checksum line.
CHECKSUM_HELPERS = r"""
unsigned int __pb_check = 2166136261u;

void pb_feed(double v) {
    long q = (long)(v * 1024.0);
    __pb_check = (__pb_check ^ (unsigned int)q) * 16777619u;
    __pb_check = (__pb_check ^ (unsigned int)(q >> 32)) * 16777619u;
}

void pb_report(char *name) {
    print_s(name);
    print_s(" checksum=");
    print_x(__pb_check);
    print_nl();
}
"""
