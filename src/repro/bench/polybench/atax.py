"""PolyBench `atax`: matrix transpose and vector multiplication y = A^T (A x)."""

from . import CHECKSUM_HELPERS, polybench

SOURCE = r"""
double A[N][N];
double x[N]; double y[N]; double tmp[N];

void init(void) {
    int i, j;
    for (i = 0; i < N; i++) {
        x[i] = 1.0 + (double)i / (double)N;
        for (j = 0; j < N; j++)
            A[i][j] = (double)((i + j) % N) / (5.0 * (double)N);
    }
}

void kernel_atax(void) {
    int i, j;
    for (i = 0; i < N; i++) y[i] = 0.0;
    for (i = 0; i < N; i++) {
        tmp[i] = 0.0;
        for (j = 0; j < N; j++) tmp[i] += A[i][j] * x[j];
        for (j = 0; j < N; j++) y[j] += A[i][j] * tmp[i];
    }
}

int main(void) {
    int i;
    init();
    kernel_atax();
    for (i = 0; i < N; i++) pb_feed(y[i]);
    pb_report("atax");
    return 0;
}
""" + CHECKSUM_HELPERS

BENCHMARK = polybench(
    "atax", "Linear algebra", "Matrix transpose and vector multiplication",
    SOURCE, sizes={"test": 16, "small": 56, "ref": 140})
