"""PolyBench `adi`: alternating direction implicit 2D heat solver."""

from . import CHECKSUM_HELPERS, polybench

SOURCE = r"""
double u[N][N];
double v[N][N];
double p[N][N];
double q[N][N];

void init(void) {
    int i, j;
    for (i = 0; i < N; i++)
        for (j = 0; j < N; j++)
            u[i][j] = (double)(i + N - j) / (double)N;
}

void kernel_adi(void) {
    int t, i, j;
    double DX = 1.0 / (double)N;
    double DY = 1.0 / (double)N;
    double DT = 1.0 / (double)TSTEPS;
    double B1 = 2.0;
    double B2 = 1.0;
    double mul1 = B1 * DT / (DX * DX);
    double mul2 = B2 * DT / (DY * DY);
    double a = -mul1 / 2.0;
    double b = 1.0 + mul1;
    double c = a;
    double d = -mul2 / 2.0;
    double e = 1.0 + mul2;
    double f = d;
    for (t = 1; t <= TSTEPS; t++) {
        /* column sweep */
        for (i = 1; i < N - 1; i++) {
            v[0][i] = 1.0;
            p[i][0] = 0.0;
            q[i][0] = v[0][i];
            for (j = 1; j < N - 1; j++) {
                p[i][j] = -c / (a * p[i][j - 1] + b);
                q[i][j] = (-d * u[j][i - 1]
                           + (1.0 + 2.0 * d) * u[j][i]
                           - f * u[j][i + 1]
                           - a * q[i][j - 1]) / (a * p[i][j - 1] + b);
            }
            v[N - 1][i] = 1.0;
            for (j = N - 2; j >= 1; j--)
                v[j][i] = p[i][j] * v[j + 1][i] + q[i][j];
        }
        /* row sweep */
        for (i = 1; i < N - 1; i++) {
            u[i][0] = 1.0;
            p[i][0] = 0.0;
            q[i][0] = u[i][0];
            for (j = 1; j < N - 1; j++) {
                p[i][j] = -f / (d * p[i][j - 1] + e);
                q[i][j] = (-a * v[i - 1][j]
                           + (1.0 + 2.0 * a) * v[i][j]
                           - c * v[i + 1][j]
                           - d * q[i][j - 1]) / (d * p[i][j - 1] + e);
            }
            u[i][N - 1] = 1.0;
            for (j = N - 2; j >= 1; j--)
                u[i][j] = p[i][j] * u[i][j + 1] + q[i][j];
        }
    }
}

int main(void) {
    int i, j;
    init();
    kernel_adi();
    for (i = 0; i < N; i++)
        for (j = 0; j < N; j++) pb_feed(u[i][j]);
    pb_report("adi");
    return 0;
}
""" + CHECKSUM_HELPERS

BENCHMARK = polybench(
    "adi", "Stencils", "Alternating direction implicit solver", SOURCE,
    sizes={"test": 10, "small": 20, "ref": 44},
    extra_defines={"TSTEPS": lambda n: max(2, n // 8)})
