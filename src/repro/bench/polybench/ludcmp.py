"""PolyBench `ludcmp`: LU decomposition followed by forward/back substitution."""

from . import CHECKSUM_HELPERS, polybench

SOURCE = r"""
double A[N][N];
double b[N]; double x[N]; double y[N];

void init(void) {
    int i, j, k;
    for (i = 0; i < N; i++) {
        b[i] = (double)(i + 1) / (double)N / 2.0 + 4.0;
        x[i] = 0.0;
        y[i] = 0.0;
        for (j = 0; j <= i; j++)
            A[i][j] = (double)(-(j % N)) / (double)N + 1.0;
        for (j = i + 1; j < N; j++)
            A[i][j] = 0.0;
        A[i][i] = 1.0;
    }
    {
        static double B[N][N];
        for (i = 0; i < N; i++)
            for (j = 0; j < N; j++) {
                double acc = 0.0;
                for (k = 0; k < N; k++) acc += A[i][k] * A[j][k];
                B[i][j] = acc;
            }
        for (i = 0; i < N; i++)
            for (j = 0; j < N; j++)
                A[i][j] = B[i][j];
    }
}

void kernel_ludcmp(void) {
    int i, j, k;
    double w;
    for (i = 0; i < N; i++) {
        for (j = 0; j < i; j++) {
            w = A[i][j];
            for (k = 0; k < j; k++)
                w -= A[i][k] * A[k][j];
            A[i][j] = w / A[j][j];
        }
        for (j = i; j < N; j++) {
            w = A[i][j];
            for (k = 0; k < i; k++)
                w -= A[i][k] * A[k][j];
            A[i][j] = w;
        }
    }
    for (i = 0; i < N; i++) {
        w = b[i];
        for (j = 0; j < i; j++)
            w -= A[i][j] * y[j];
        y[i] = w;
    }
    for (i = N - 1; i >= 0; i--) {
        w = y[i];
        for (j = i + 1; j < N; j++)
            w -= A[i][j] * x[j];
        x[i] = w / A[i][i];
    }
}

int main(void) {
    int i;
    init();
    kernel_ludcmp();
    for (i = 0; i < N; i++) pb_feed(x[i]);
    pb_report("ludcmp");
    return 0;
}
""" + CHECKSUM_HELPERS

BENCHMARK = polybench(
    "ludcmp", "Linear algebra", "LU decomposition + solver", SOURCE,
    sizes={"test": 8, "small": 16, "ref": 36})
