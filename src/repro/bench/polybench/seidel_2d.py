"""PolyBench `seidel-2d`: 2-D Gauss-Seidel stencil computation."""

from . import CHECKSUM_HELPERS, polybench

SOURCE = r"""
double A[N][N];

void init(void) {
    int i, j;
    for (i = 0; i < N; i++)
        for (j = 0; j < N; j++)
            A[i][j] = ((double)i * ((double)j + 2.0) + 2.0) / (double)N;
}

void kernel_seidel_2d(void) {
    int t, i, j;
    for (t = 0; t <= TSTEPS - 1; t++)
        for (i = 1; i <= N - 2; i++)
            for (j = 1; j <= N - 2; j++)
                A[i][j] = (A[i - 1][j - 1] + A[i - 1][j] + A[i - 1][j + 1]
                           + A[i][j - 1] + A[i][j] + A[i][j + 1]
                           + A[i + 1][j - 1] + A[i + 1][j]
                           + A[i + 1][j + 1]) / 9.0;
}

int main(void) {
    int i, j;
    init();
    kernel_seidel_2d();
    for (i = 0; i < N; i++)
        for (j = 0; j < N; j++) pb_feed(A[i][j]);
    pb_report("seidel-2d");
    return 0;
}
""" + CHECKSUM_HELPERS

BENCHMARK = polybench(
    "seidel-2d", "Stencils", "2-D Seidel stencil computation", SOURCE,
    sizes={"test": 10, "small": 24, "ref": 52},
    extra_defines={"TSTEPS": lambda n: max(2, n // 4)})
