"""PolyBench `symm`: symmetric matrix multiplication."""

from . import CHECKSUM_HELPERS, polybench

SOURCE = r"""
double A[N][N];
double B[N][N];
double C[N][N];

void init(void) {
    int i, j;
    for (i = 0; i < N; i++)
        for (j = 0; j < N; j++) {
            B[i][j] = (double)((i + j) % 100) / (double)N;
            C[i][j] = (double)((N + i - j) % 100) / (double)N;
        }
    for (i = 0; i < N; i++)
        for (j = 0; j <= i; j++) {
            A[i][j] = (double)((i + j) % 100) / (double)N;
            A[j][i] = A[i][j];
        }
}

void kernel_symm(double alpha, double beta) {
    int i, j, k;
    double temp2;
    for (i = 0; i < N; i++)
        for (j = 0; j < N; j++) {
            temp2 = 0.0;
            for (k = 0; k < i; k++) {
                C[k][j] += alpha * B[i][j] * A[i][k];
                temp2 += B[k][j] * A[i][k];
            }
            C[i][j] = beta * C[i][j] + alpha * B[i][j] * A[i][i]
                    + alpha * temp2;
        }
}

int main(void) {
    int i, j;
    init();
    kernel_symm(1.5, 1.2);
    for (i = 0; i < N; i++)
        for (j = 0; j < N; j++) pb_feed(C[i][j]);
    pb_report("symm");
    return 0;
}
""" + CHECKSUM_HELPERS

BENCHMARK = polybench(
    "symm", "Linear algebra", "Symmetric matrix multiplication", SOURCE,
    sizes={"test": 8, "small": 16, "ref": 36})
