"""PolyBench `doitgen`: multiresolution analysis kernel (3D tensor contraction)."""

from . import CHECKSUM_HELPERS, polybench

SOURCE = r"""
double A[N][N][N];
double C4[N][N];
double sum[N];

void init(void) {
    int i, j, k;
    for (i = 0; i < N; i++)
        for (j = 0; j < N; j++) {
            C4[i][j] = (double)(i * j % N) / (double)N;
            for (k = 0; k < N; k++)
                A[i][j][k] = (double)((i * j + k) % N) / (double)N;
        }
}

void kernel_doitgen(void) {
    int r, q, p, s;
    for (r = 0; r < N; r++)
        for (q = 0; q < N; q++) {
            for (p = 0; p < N; p++) {
                sum[p] = 0.0;
                for (s = 0; s < N; s++)
                    sum[p] += A[r][q][s] * C4[s][p];
            }
            for (p = 0; p < N; p++)
                A[r][q][p] = sum[p];
        }
}

int main(void) {
    int i, j, k;
    init();
    kernel_doitgen();
    for (i = 0; i < N; i++)
        for (j = 0; j < N; j++)
            for (k = 0; k < N; k++) pb_feed(A[i][j][k]);
    pb_report("doitgen");
    return 0;
}
""" + CHECKSUM_HELPERS

BENCHMARK = polybench(
    "doitgen", "Linear algebra", "Multiresolution analysis kernel", SOURCE,
    sizes={"test": 6, "small": 10, "ref": 18})
