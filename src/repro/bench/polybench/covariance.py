"""PolyBench `covariance`: covariance matrix computation."""

from . import CHECKSUM_HELPERS, polybench

SOURCE = r"""
double data[N][N];
double cov[N][N];
double mean[N];

void init(void) {
    int i, j;
    for (i = 0; i < N; i++)
        for (j = 0; j < N; j++)
            data[i][j] = (double)(i * j) / (double)N;
}

void kernel_covariance(void) {
    int i, j, k;
    double float_n = (double)N;
    for (j = 0; j < N; j++) {
        mean[j] = 0.0;
        for (i = 0; i < N; i++) mean[j] += data[i][j];
        mean[j] /= float_n;
    }
    for (i = 0; i < N; i++)
        for (j = 0; j < N; j++)
            data[i][j] -= mean[j];
    for (i = 0; i < N; i++)
        for (j = i; j < N; j++) {
            cov[i][j] = 0.0;
            for (k = 0; k < N; k++)
                cov[i][j] += data[k][i] * data[k][j];
            cov[i][j] /= float_n - 1.0;
            cov[j][i] = cov[i][j];
        }
}

int main(void) {
    int i, j;
    init();
    kernel_covariance();
    for (i = 0; i < N; i++)
        for (j = 0; j < N; j++) pb_feed(cov[i][j]);
    pb_report("covariance");
    return 0;
}
""" + CHECKSUM_HELPERS

BENCHMARK = polybench(
    "covariance", "Data mining", "Covariance computation", SOURCE,
    sizes={"test": 8, "small": 16, "ref": 36})
