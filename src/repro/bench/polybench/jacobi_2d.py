"""PolyBench `jacobi-2d`: 2-D Jacobi stencil computation."""

from . import CHECKSUM_HELPERS, polybench

SOURCE = r"""
double A[N][N];
double B[N][N];

void init(void) {
    int i, j;
    for (i = 0; i < N; i++)
        for (j = 0; j < N; j++) {
            A[i][j] = ((double)i * ((double)j + 2.0) + 2.0) / (double)N;
            B[i][j] = ((double)i * ((double)j + 3.0) + 3.0) / (double)N;
        }
}

void kernel_jacobi_2d(void) {
    int t, i, j;
    for (t = 0; t < TSTEPS; t++) {
        for (i = 1; i < N - 1; i++)
            for (j = 1; j < N - 1; j++)
                B[i][j] = 0.2 * (A[i][j] + A[i][j - 1] + A[i][j + 1]
                                 + A[i + 1][j] + A[i - 1][j]);
        for (i = 1; i < N - 1; i++)
            for (j = 1; j < N - 1; j++)
                A[i][j] = 0.2 * (B[i][j] + B[i][j - 1] + B[i][j + 1]
                                 + B[i + 1][j] + B[i - 1][j]);
    }
}

int main(void) {
    int i, j;
    init();
    kernel_jacobi_2d();
    for (i = 0; i < N; i++)
        for (j = 0; j < N; j++) pb_feed(A[i][j]);
    pb_report("jacobi-2d");
    return 0;
}
""" + CHECKSUM_HELPERS

BENCHMARK = polybench(
    "jacobi-2d", "Stencils", "2-D Jacobi stencil computation", SOURCE,
    sizes={"test": 10, "small": 22, "ref": 50},
    extra_defines={"TSTEPS": lambda n: max(2, n // 4)})
