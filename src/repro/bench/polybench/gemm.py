"""PolyBench `gemm`: general matrix multiplication C = alpha*A*B + beta*C."""

from . import CHECKSUM_HELPERS, polybench

SOURCE = r"""
double A[N][N];
double B[N][N];
double C[N][N];

void init(void) {
    int i, j;
    for (i = 0; i < N; i++)
        for (j = 0; j < N; j++) {
            A[i][j] = (double)((i * j + 1) % N) / (double)N;
            B[i][j] = (double)((i * (j + 1)) % N) / (double)N;
            C[i][j] = (double)((i * (j + 2)) % N) / (double)N;
        }
}

void kernel_gemm(double alpha, double beta) {
    int i, j, k;
    for (i = 0; i < N; i++) {
        for (j = 0; j < N; j++) C[i][j] *= beta;
        for (k = 0; k < N; k++)
            for (j = 0; j < N; j++)
                C[i][j] += alpha * A[i][k] * B[k][j];
    }
}

int main(void) {
    int i, j;
    init();
    kernel_gemm(1.5, 1.2);
    for (i = 0; i < N; i++)
        for (j = 0; j < N; j++) pb_feed(C[i][j]);
    pb_report("gemm");
    return 0;
}
""" + CHECKSUM_HELPERS

BENCHMARK = polybench(
    "gemm", "Linear algebra", "Matrix multiplication", SOURCE,
    sizes={"test": 8, "small": 18, "ref": 40})
