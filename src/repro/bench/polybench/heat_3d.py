"""PolyBench `heat-3d`: heat equation over a 3D data domain."""

from . import CHECKSUM_HELPERS, polybench

SOURCE = r"""
double A[N][N][N];
double B[N][N][N];

void init(void) {
    int i, j, k;
    for (i = 0; i < N; i++)
        for (j = 0; j < N; j++)
            for (k = 0; k < N; k++)
                A[i][j][k] = B[i][j][k]
                    = (double)(i + j + (N - k)) * 10.0 / (double)N;
}

void kernel_heat_3d(void) {
    int t, i, j, k;
    for (t = 1; t <= TSTEPS; t++) {
        for (i = 1; i < N - 1; i++)
            for (j = 1; j < N - 1; j++)
                for (k = 1; k < N - 1; k++)
                    B[i][j][k] = 0.125 * (A[i + 1][j][k] - 2.0 * A[i][j][k]
                                          + A[i - 1][j][k])
                               + 0.125 * (A[i][j + 1][k] - 2.0 * A[i][j][k]
                                          + A[i][j - 1][k])
                               + 0.125 * (A[i][j][k + 1] - 2.0 * A[i][j][k]
                                          + A[i][j][k - 1])
                               + A[i][j][k];
        for (i = 1; i < N - 1; i++)
            for (j = 1; j < N - 1; j++)
                for (k = 1; k < N - 1; k++)
                    A[i][j][k] = 0.125 * (B[i + 1][j][k] - 2.0 * B[i][j][k]
                                          + B[i - 1][j][k])
                               + 0.125 * (B[i][j + 1][k] - 2.0 * B[i][j][k]
                                          + B[i][j - 1][k])
                               + 0.125 * (B[i][j][k + 1] - 2.0 * B[i][j][k]
                                          + B[i][j][k - 1])
                               + B[i][j][k];
    }
}

int main(void) {
    int i, j, k;
    init();
    kernel_heat_3d();
    for (i = 0; i < N; i++)
        for (j = 0; j < N; j++)
            for (k = 0; k < N; k++) pb_feed(A[i][j][k]);
    pb_report("heat-3d");
    return 0;
}
""" + CHECKSUM_HELPERS

BENCHMARK = polybench(
    "heat-3d", "Stencils", "Heat equation over 3D data domain", SOURCE,
    sizes={"test": 6, "small": 10, "ref": 16},
    extra_defines={"TSTEPS": lambda n: max(2, n // 4)})
