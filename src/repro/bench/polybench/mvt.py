"""PolyBench `mvt`: matrix vector product and transpose."""

from . import CHECKSUM_HELPERS, polybench

SOURCE = r"""
double A[N][N];
double x1[N]; double x2[N]; double y1[N]; double y2[N];

void init(void) {
    int i, j;
    for (i = 0; i < N; i++) {
        x1[i] = (double)(i % N) / (double)N;
        x2[i] = (double)((i + 1) % N) / (double)N;
        y1[i] = (double)((i + 3) % N) / (double)N;
        y2[i] = (double)((i + 4) % N) / (double)N;
        for (j = 0; j < N; j++)
            A[i][j] = (double)(i * j % N) / (double)N;
    }
}

void kernel_mvt(void) {
    int i, j;
    for (i = 0; i < N; i++)
        for (j = 0; j < N; j++)
            x1[i] = x1[i] + A[i][j] * y1[j];
    for (i = 0; i < N; i++)
        for (j = 0; j < N; j++)
            x2[i] = x2[i] + A[j][i] * y2[j];
}

int main(void) {
    int i;
    init();
    kernel_mvt();
    for (i = 0; i < N; i++) { pb_feed(x1[i]); pb_feed(x2[i]); }
    pb_report("mvt");
    return 0;
}
""" + CHECKSUM_HELPERS

BENCHMARK = polybench(
    "mvt", "Linear algebra", "Matrix vector product and transpose", SOURCE,
    sizes={"test": 16, "small": 56, "ref": 140})
