"""PolyBench `trisolv`: triangular solver (forward substitution)."""

from . import CHECKSUM_HELPERS, polybench

SOURCE = r"""
double L[N][N];
double b[N]; double x[N];

void init(void) {
    int i, j;
    for (i = 0; i < N; i++) {
        x[i] = -999.0;
        b[i] = (double)i / (double)N;
        for (j = 0; j <= i; j++)
            L[i][j] = (double)(i + N - j + 1) * 2.0 / (double)N;
    }
}

void kernel_trisolv(void) {
    int i, j;
    for (i = 0; i < N; i++) {
        x[i] = b[i];
        for (j = 0; j < i; j++)
            x[i] -= L[i][j] * x[j];
        x[i] = x[i] / L[i][i];
    }
}

int main(void) {
    int i;
    init();
    kernel_trisolv();
    for (i = 0; i < N; i++) pb_feed(x[i]);
    pb_report("trisolv");
    return 0;
}
""" + CHECKSUM_HELPERS

BENCHMARK = polybench(
    "trisolv", "Linear algebra", "Triangular solver", SOURCE,
    sizes={"test": 24, "small": 80, "ref": 220})
