"""PolyBench `lu`: LU decomposition without pivoting."""

from . import CHECKSUM_HELPERS, polybench

SOURCE = r"""
double A[N][N];

void init(void) {
    int i, j, k;
    for (i = 0; i < N; i++) {
        for (j = 0; j <= i; j++)
            A[i][j] = (double)(-(j % N)) / (double)N + 1.0;
        for (j = i + 1; j < N; j++)
            A[i][j] = 0.0;
        A[i][i] = 1.0;
    }
    {
        static double B[N][N];
        for (i = 0; i < N; i++)
            for (j = 0; j < N; j++) {
                double acc = 0.0;
                for (k = 0; k < N; k++) acc += A[i][k] * A[j][k];
                B[i][j] = acc;
            }
        for (i = 0; i < N; i++)
            for (j = 0; j < N; j++)
                A[i][j] = B[i][j];
    }
}

void kernel_lu(void) {
    int i, j, k;
    for (i = 0; i < N; i++) {
        for (j = 0; j < i; j++) {
            for (k = 0; k < j; k++)
                A[i][j] -= A[i][k] * A[k][j];
            A[i][j] /= A[j][j];
        }
        for (j = i; j < N; j++)
            for (k = 0; k < i; k++)
                A[i][j] -= A[i][k] * A[k][j];
    }
}

int main(void) {
    int i, j;
    init();
    kernel_lu();
    for (i = 0; i < N; i++)
        for (j = 0; j < N; j++) pb_feed(A[i][j]);
    pb_report("lu");
    return 0;
}
""" + CHECKSUM_HELPERS

BENCHMARK = polybench(
    "lu", "Linear algebra", "LU decomposition", SOURCE,
    sizes={"test": 8, "small": 16, "ref": 36})
