"""PolyBench `trmm`: triangular matrix multiplication."""

from . import CHECKSUM_HELPERS, polybench

SOURCE = r"""
double A[N][N];
double B[N][N];

void init(void) {
    int i, j;
    for (i = 0; i < N; i++) {
        for (j = 0; j < i; j++)
            A[i][j] = (double)((i + j) % N) / (double)N;
        A[i][i] = 1.0;
        for (j = 0; j < N; j++)
            B[i][j] = (double)((N + i - j) % N) / (double)N;
    }
}

void kernel_trmm(double alpha) {
    int i, j, k;
    for (i = 0; i < N; i++)
        for (j = 0; j < N; j++) {
            for (k = i + 1; k < N; k++)
                B[i][j] += A[k][i] * B[k][j];
            B[i][j] = alpha * B[i][j];
        }
}

int main(void) {
    int i, j;
    init();
    kernel_trmm(1.5);
    for (i = 0; i < N; i++)
        for (j = 0; j < N; j++) pb_feed(B[i][j]);
    pb_report("trmm");
    return 0;
}
""" + CHECKSUM_HELPERS

BENCHMARK = polybench(
    "trmm", "Linear algebra", "Triangular matrix multiplication", SOURCE,
    sizes={"test": 8, "small": 18, "ref": 40})
