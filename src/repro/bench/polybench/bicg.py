"""PolyBench `bicg`: BiCG sub-kernel of the BiCGStab linear solver."""

from . import CHECKSUM_HELPERS, polybench

SOURCE = r"""
double A[N][N];
double s[N]; double q[N]; double p[N]; double r[N];

void init(void) {
    int i, j;
    for (i = 0; i < N; i++) {
        p[i] = (double)(i % N) / (double)N;
        r[i] = (double)((i + 1) % N) / (double)N;
        for (j = 0; j < N; j++)
            A[i][j] = (double)((i * (j + 1)) % N) / (double)N;
    }
}

void kernel_bicg(void) {
    int i, j;
    for (i = 0; i < N; i++) s[i] = 0.0;
    for (i = 0; i < N; i++) {
        q[i] = 0.0;
        for (j = 0; j < N; j++) {
            s[j] = s[j] + r[i] * A[i][j];
            q[i] = q[i] + A[i][j] * p[j];
        }
    }
}

int main(void) {
    int i;
    init();
    kernel_bicg();
    for (i = 0; i < N; i++) { pb_feed(s[i]); pb_feed(q[i]); }
    pb_report("bicg");
    return 0;
}
""" + CHECKSUM_HELPERS

BENCHMARK = polybench(
    "bicg", "Linear algebra", "BiCG sub kernel of BiCGStab linear solver",
    SOURCE, sizes={"test": 16, "small": 56, "ref": 140})
