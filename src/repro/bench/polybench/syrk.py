"""PolyBench `syrk`: symmetric rank-k update."""

from . import CHECKSUM_HELPERS, polybench

SOURCE = r"""
double A[N][N];
double C[N][N];

void init(void) {
    int i, j;
    for (i = 0; i < N; i++)
        for (j = 0; j < N; j++) {
            A[i][j] = (double)((i * j + 1) % N) / (double)N;
            C[i][j] = (double)((i * j + 2) % N) / (double)N;
        }
}

void kernel_syrk(double alpha, double beta) {
    int i, j, k;
    for (i = 0; i < N; i++) {
        for (j = 0; j <= i; j++) C[i][j] *= beta;
        for (k = 0; k < N; k++)
            for (j = 0; j <= i; j++)
                C[i][j] += alpha * A[i][k] * A[j][k];
    }
}

int main(void) {
    int i, j;
    init();
    kernel_syrk(1.5, 1.2);
    for (i = 0; i < N; i++)
        for (j = 0; j <= i; j++) pb_feed(C[i][j]);
    pb_report("syrk");
    return 0;
}
""" + CHECKSUM_HELPERS

BENCHMARK = polybench(
    "syrk", "Linear algebra", "Symmetric rank-k operations", SOURCE,
    sizes={"test": 8, "small": 18, "ref": 40})
