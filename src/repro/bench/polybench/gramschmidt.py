"""PolyBench `gramschmidt`: modified Gram-Schmidt QR decomposition."""

from . import CHECKSUM_HELPERS, polybench

SOURCE = r"""
double A[N][N];
double R[N][N];
double Q[N][N];

void init(void) {
    int i, j;
    for (i = 0; i < N; i++)
        for (j = 0; j < N; j++) {
            A[i][j] = ((double)((i * j) % N) / (double)N) * 100.0 + 10.0;
            Q[i][j] = 0.0;
            R[i][j] = 0.0;
        }
    /* make columns clearly independent */
    for (i = 0; i < N; i++) A[i][i] += 150.0;
}

void kernel_gramschmidt(void) {
    int i, j, k;
    double nrm;
    for (k = 0; k < N; k++) {
        nrm = 0.0;
        for (i = 0; i < N; i++)
            nrm += A[i][k] * A[i][k];
        R[k][k] = sqrt(nrm);
        for (i = 0; i < N; i++)
            Q[i][k] = A[i][k] / R[k][k];
        for (j = k + 1; j < N; j++) {
            R[k][j] = 0.0;
            for (i = 0; i < N; i++)
                R[k][j] += Q[i][k] * A[i][j];
            for (i = 0; i < N; i++)
                A[i][j] = A[i][j] - Q[i][k] * R[k][j];
        }
    }
}

int main(void) {
    int i, j;
    init();
    kernel_gramschmidt();
    for (i = 0; i < N; i++)
        for (j = 0; j < N; j++) { pb_feed(R[i][j]); pb_feed(Q[i][j]); }
    pb_report("gramschmidt");
    return 0;
}
""" + CHECKSUM_HELPERS

BENCHMARK = polybench(
    "gramschmidt", "Linear algebra", "Gram-Schmidt decomposition", SOURCE,
    sizes={"test": 8, "small": 16, "ref": 36})
