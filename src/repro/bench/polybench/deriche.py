"""PolyBench `deriche`: Deriche recursive edge-detection filter."""

from . import CHECKSUM_HELPERS, polybench

SOURCE = r"""
double img_in[N][N];
double img_out[N][N];
double y1v[N][N];
double y2v[N][N];

void init(void) {
    int i, j;
    for (i = 0; i < N; i++)
        for (j = 0; j < N; j++)
            img_in[i][j] = (double)((313 * i + 991 * j) % 65536) / 65535.0;
}

void kernel_deriche(double alpha) {
    int i, j;
    double k;
    double a1, a2, a3, a4, a5, a6, a7, a8, b1, b2, c1, c2;
    double ym1, ym2, xm1, tm1, tm2, tp1, tp2, yp1, yp2;
    k = (1.0 - exp(-alpha)) * (1.0 - exp(-alpha))
        / (1.0 + 2.0 * alpha * exp(-alpha) - exp(2.0 * alpha));
    a1 = k; a5 = k;
    a2 = k * exp(-alpha) * (alpha - 1.0); a6 = a2;
    a3 = k * exp(-alpha) * (alpha + 1.0); a7 = a3;
    a4 = -k * exp(-2.0 * alpha); a8 = a4;
    b1 = pow(2.0, -alpha);
    b2 = -exp(-2.0 * alpha);
    c1 = 1.0; c2 = 1.0;

    for (i = 0; i < N; i++) {
        ym1 = 0.0; ym2 = 0.0; xm1 = 0.0;
        for (j = 0; j < N; j++) {
            y1v[i][j] = a1 * img_in[i][j] + a2 * xm1 + b1 * ym1 + b2 * ym2;
            xm1 = img_in[i][j];
            ym2 = ym1;
            ym1 = y1v[i][j];
        }
    }
    for (i = 0; i < N; i++) {
        yp1 = 0.0; yp2 = 0.0; tp1 = 0.0; tp2 = 0.0;
        for (j = N - 1; j >= 0; j--) {
            y2v[i][j] = a3 * tp1 + a4 * tp2 + b1 * yp1 + b2 * yp2;
            tp2 = tp1;
            tp1 = img_in[i][j];
            yp2 = yp1;
            yp1 = y2v[i][j];
        }
    }
    for (i = 0; i < N; i++)
        for (j = 0; j < N; j++)
            img_out[i][j] = c1 * (y1v[i][j] + y2v[i][j]);
    /* vertical pass */
    for (j = 0; j < N; j++) {
        tm1 = 0.0; ym1 = 0.0; ym2 = 0.0;
        for (i = 0; i < N; i++) {
            y1v[i][j] = a5 * img_out[i][j] + a6 * tm1 + b1 * ym1 + b2 * ym2;
            tm1 = img_out[i][j];
            ym2 = ym1;
            ym1 = y1v[i][j];
        }
    }
    for (j = 0; j < N; j++) {
        tp1 = 0.0; tp2 = 0.0; yp1 = 0.0; yp2 = 0.0;
        for (i = N - 1; i >= 0; i--) {
            y2v[i][j] = a7 * tp1 + a8 * tp2 + b1 * yp1 + b2 * yp2;
            tp2 = tp1;
            tp1 = img_out[i][j];
            yp2 = yp1;
            yp1 = y2v[i][j];
        }
    }
    for (i = 0; i < N; i++)
        for (j = 0; j < N; j++)
            img_out[i][j] = c2 * (y1v[i][j] + y2v[i][j]);
}

int main(void) {
    int i, j;
    init();
    kernel_deriche(0.25);
    for (i = 0; i < N; i++)
        for (j = 0; j < N; j++) pb_feed(img_out[i][j]);
    pb_report("deriche");
    return 0;
}
""" + CHECKSUM_HELPERS

BENCHMARK = polybench(
    "deriche", "Image processing", "Edge detection filter", SOURCE,
    sizes={"test": 12, "small": 32, "ref": 80})
