"""PolyBench `correlation`: correlation matrix computation."""

from . import CHECKSUM_HELPERS, polybench

SOURCE = r"""
double data[N][N];
double corr[N][N];
double mean[N];
double stddev[N];

void init(void) {
    int i, j;
    for (i = 0; i < N; i++)
        for (j = 0; j < N; j++)
            data[i][j] = (double)(i * j) / (double)N + (double)i;
}

void kernel_correlation(void) {
    int i, j, k;
    double float_n = (double)N;
    double eps = 0.1;
    for (j = 0; j < N; j++) {
        mean[j] = 0.0;
        for (i = 0; i < N; i++) mean[j] += data[i][j];
        mean[j] /= float_n;
    }
    for (j = 0; j < N; j++) {
        stddev[j] = 0.0;
        for (i = 0; i < N; i++)
            stddev[j] += (data[i][j] - mean[j]) * (data[i][j] - mean[j]);
        stddev[j] /= float_n;
        stddev[j] = sqrt(stddev[j]);
        if (stddev[j] <= eps) stddev[j] = 1.0;
    }
    for (i = 0; i < N; i++)
        for (j = 0; j < N; j++) {
            data[i][j] -= mean[j];
            data[i][j] /= sqrt(float_n) * stddev[j];
        }
    for (i = 0; i < N - 1; i++) {
        corr[i][i] = 1.0;
        for (j = i + 1; j < N; j++) {
            corr[i][j] = 0.0;
            for (k = 0; k < N; k++)
                corr[i][j] += data[k][i] * data[k][j];
            corr[j][i] = corr[i][j];
        }
    }
    corr[N - 1][N - 1] = 1.0;
}

int main(void) {
    int i, j;
    init();
    kernel_correlation();
    for (i = 0; i < N; i++)
        for (j = 0; j < N; j++) pb_feed(corr[i][j]);
    pb_report("correlation");
    return 0;
}
""" + CHECKSUM_HELPERS

BENCHMARK = polybench(
    "correlation", "Data mining", "Correlation computation", SOURCE,
    sizes={"test": 8, "small": 16, "ref": 36})
