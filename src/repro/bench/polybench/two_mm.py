"""PolyBench `2mm`: two chained matrix multiplications D = alpha*A*B*C + beta*D."""

from . import CHECKSUM_HELPERS, polybench

SOURCE = r"""
double A[N][N];
double B[N][N];
double C[N][N];
double D[N][N];
double tmp[N][N];

void init(void) {
    int i, j;
    for (i = 0; i < N; i++)
        for (j = 0; j < N; j++) {
            A[i][j] = (double)((i * j + 1) % N) / (double)N;
            B[i][j] = (double)(i * (j + 1) % N) / (double)N;
            C[i][j] = (double)((i * (j + 3) + 1) % N) / (double)N;
            D[i][j] = (double)(i * (j + 2) % N) / (double)N;
        }
}

void kernel_2mm(double alpha, double beta) {
    int i, j, k;
    for (i = 0; i < N; i++)
        for (j = 0; j < N; j++) {
            tmp[i][j] = 0.0;
            for (k = 0; k < N; k++)
                tmp[i][j] += alpha * A[i][k] * B[k][j];
        }
    for (i = 0; i < N; i++)
        for (j = 0; j < N; j++) {
            D[i][j] *= beta;
            for (k = 0; k < N; k++)
                D[i][j] += tmp[i][k] * C[k][j];
        }
}

int main(void) {
    int i, j;
    init();
    kernel_2mm(1.5, 1.2);
    for (i = 0; i < N; i++)
        for (j = 0; j < N; j++) pb_feed(D[i][j]);
    pb_report("2mm");
    return 0;
}
""" + CHECKSUM_HELPERS

BENCHMARK = polybench(
    "2mm", "Linear algebra", "Two matrix multiplications", SOURCE,
    sizes={"test": 8, "small": 14, "ref": 32})
