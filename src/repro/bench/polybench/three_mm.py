"""PolyBench `3mm`: three chained matrix multiplications G = (A*B)*(C*D)."""

from . import CHECKSUM_HELPERS, polybench

SOURCE = r"""
double A[N][N];
double B[N][N];
double C[N][N];
double D[N][N];
double E[N][N];
double F[N][N];
double G[N][N];

void init(void) {
    int i, j;
    for (i = 0; i < N; i++)
        for (j = 0; j < N; j++) {
            A[i][j] = (double)((i * j + 1) % N) / (5.0 * (double)N);
            B[i][j] = (double)((i * (j + 1) + 2) % N) / (5.0 * (double)N);
            C[i][j] = (double)(i * (j + 3) % N) / (5.0 * (double)N);
            D[i][j] = (double)((i * (j + 2) + 2) % N) / (5.0 * (double)N);
        }
}

void kernel_3mm(void) {
    int i, j, k;
    for (i = 0; i < N; i++)
        for (j = 0; j < N; j++) {
            E[i][j] = 0.0;
            for (k = 0; k < N; k++) E[i][j] += A[i][k] * B[k][j];
        }
    for (i = 0; i < N; i++)
        for (j = 0; j < N; j++) {
            F[i][j] = 0.0;
            for (k = 0; k < N; k++) F[i][j] += C[i][k] * D[k][j];
        }
    for (i = 0; i < N; i++)
        for (j = 0; j < N; j++) {
            G[i][j] = 0.0;
            for (k = 0; k < N; k++) G[i][j] += E[i][k] * F[k][j];
        }
}

int main(void) {
    int i, j;
    init();
    kernel_3mm();
    for (i = 0; i < N; i++)
        for (j = 0; j < N; j++) pb_feed(G[i][j]);
    pb_report("3mm");
    return 0;
}
""" + CHECKSUM_HELPERS

BENCHMARK = polybench(
    "3mm", "Linear algebra", "Three matrix multiplications", SOURCE,
    sizes={"test": 8, "small": 12, "ref": 28})
