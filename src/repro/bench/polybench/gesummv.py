"""PolyBench `gesummv`: scalar, vector and matrix multiplication."""

from . import CHECKSUM_HELPERS, polybench

SOURCE = r"""
double A[N][N];
double B[N][N];
double x[N]; double y[N]; double tmp[N];

void init(void) {
    int i, j;
    for (i = 0; i < N; i++) {
        x[i] = (double)(i % N) / (double)N;
        for (j = 0; j < N; j++) {
            A[i][j] = (double)((i * j + 1) % N) / (double)N;
            B[i][j] = (double)((i * j + 2) % N) / (double)N;
        }
    }
}

void kernel_gesummv(double alpha, double beta) {
    int i, j;
    for (i = 0; i < N; i++) {
        tmp[i] = 0.0;
        y[i] = 0.0;
        for (j = 0; j < N; j++) {
            tmp[i] = A[i][j] * x[j] + tmp[i];
            y[i] = B[i][j] * x[j] + y[i];
        }
        y[i] = alpha * tmp[i] + beta * y[i];
    }
}

int main(void) {
    int i;
    init();
    kernel_gesummv(1.5, 1.2);
    for (i = 0; i < N; i++) pb_feed(y[i]);
    pb_report("gesummv");
    return 0;
}
""" + CHECKSUM_HELPERS

BENCHMARK = polybench(
    "gesummv", "Linear algebra", "Scalar, vector and matrix multiplication",
    SOURCE, sizes={"test": 16, "small": 56, "ref": 140})
