"""PolyBench `durbin`: Levinson-Durbin Toeplitz system solver."""

from . import CHECKSUM_HELPERS, polybench

SOURCE = r"""
double r[N];
double y[N];
double z[N];

void init(void) {
    int i;
    for (i = 0; i < N; i++)
        r[i] = (double)(N + 1 - i) / (double)(2 * N);
}

void kernel_durbin(void) {
    double alpha, beta, total;
    int i, k;
    y[0] = -r[0];
    beta = 1.0;
    alpha = -r[0];
    for (k = 1; k < N; k++) {
        beta = (1.0 - alpha * alpha) * beta;
        total = 0.0;
        for (i = 0; i < k; i++)
            total += r[k - i - 1] * y[i];
        alpha = -(r[k] + total) / beta;
        for (i = 0; i < k; i++)
            z[i] = y[i] + alpha * y[k - i - 1];
        for (i = 0; i < k; i++)
            y[i] = z[i];
        y[k] = alpha;
    }
}

int main(void) {
    int i;
    init();
    kernel_durbin();
    for (i = 0; i < N; i++) pb_feed(y[i]);
    pb_report("durbin");
    return 0;
}
""" + CHECKSUM_HELPERS

BENCHMARK = polybench(
    "durbin", "Linear algebra", "Toeplitz system solver", SOURCE,
    sizes={"test": 24, "small": 100, "ref": 300})
