"""PolyBench `syr2k`: symmetric rank-2k update."""

from . import CHECKSUM_HELPERS, polybench

SOURCE = r"""
double A[N][N];
double B[N][N];
double C[N][N];

void init(void) {
    int i, j;
    for (i = 0; i < N; i++)
        for (j = 0; j < N; j++) {
            A[i][j] = (double)((i * j + 1) % N) / (double)N;
            B[i][j] = (double)((i * j + 2) % N) / (double)N;
            C[i][j] = (double)((i * j + 3) % N) / (double)N;
        }
}

void kernel_syr2k(double alpha, double beta) {
    int i, j, k;
    for (i = 0; i < N; i++) {
        for (j = 0; j <= i; j++) C[i][j] *= beta;
        for (k = 0; k < N; k++)
            for (j = 0; j <= i; j++)
                C[i][j] += A[j][k] * alpha * B[i][k]
                         + B[j][k] * alpha * A[i][k];
    }
}

int main(void) {
    int i, j;
    init();
    kernel_syr2k(1.5, 1.2);
    for (i = 0; i < N; i++)
        for (j = 0; j <= i; j++) pb_feed(C[i][j]);
    pb_report("syr2k");
    return 0;
}
""" + CHECKSUM_HELPERS

BENCHMARK = polybench(
    "syr2k", "Linear algebra", "Symmetric rank-2k operations", SOURCE,
    sizes={"test": 8, "small": 16, "ref": 36})
