"""PolyBench `floyd-warshall`: all-pairs shortest paths."""

from . import CHECKSUM_HELPERS, polybench

SOURCE = r"""
int path[N][N];

void init(void) {
    int i, j;
    for (i = 0; i < N; i++)
        for (j = 0; j < N; j++) {
            path[i][j] = i * j % 7 + 1;
            if ((i + j) % 13 == 0 || (i + j) % 7 == 0 || (i + j) % 11 == 0)
                path[i][j] = 999;
        }
}

void kernel_floyd_warshall(void) {
    int i, j, k;
    for (k = 0; k < N; k++)
        for (i = 0; i < N; i++)
            for (j = 0; j < N; j++)
                path[i][j] = path[i][j] < path[i][k] + path[k][j]
                    ? path[i][j]
                    : path[i][k] + path[k][j];
}

int main(void) {
    int i, j;
    init();
    kernel_floyd_warshall();
    for (i = 0; i < N; i++)
        for (j = 0; j < N; j++) pb_feed((double)path[i][j]);
    pb_report("floyd-warshall");
    return 0;
}
""" + CHECKSUM_HELPERS

BENCHMARK = polybench(
    "floyd-warshall", "Graph algorithms",
    "Computing shortest paths in a graph", SOURCE,
    sizes={"test": 8, "small": 18, "ref": 40})
