"""PolyBench `fdtd-2d`: 2-D finite-difference time-domain kernel."""

from . import CHECKSUM_HELPERS, polybench

SOURCE = r"""
double ex[N][N];
double ey[N][N];
double hz[N][N];
double fict[TSTEPS];

void init(void) {
    int i, j;
    for (i = 0; i < TSTEPS; i++) fict[i] = (double)i;
    for (i = 0; i < N; i++)
        for (j = 0; j < N; j++) {
            ex[i][j] = ((double)i * ((double)j + 1.0)) / (double)N;
            ey[i][j] = ((double)i * ((double)j + 2.0)) / (double)N;
            hz[i][j] = ((double)i * ((double)j + 3.0)) / (double)N;
        }
}

void kernel_fdtd_2d(void) {
    int t, i, j;
    for (t = 0; t < TSTEPS; t++) {
        for (j = 0; j < N; j++)
            ey[0][j] = fict[t];
        for (i = 1; i < N; i++)
            for (j = 0; j < N; j++)
                ey[i][j] = ey[i][j] - 0.5 * (hz[i][j] - hz[i - 1][j]);
        for (i = 0; i < N; i++)
            for (j = 1; j < N; j++)
                ex[i][j] = ex[i][j] - 0.5 * (hz[i][j] - hz[i][j - 1]);
        for (i = 0; i < N - 1; i++)
            for (j = 0; j < N - 1; j++)
                hz[i][j] = hz[i][j] - 0.7 * (ex[i][j + 1] - ex[i][j]
                                             + ey[i + 1][j] - ey[i][j]);
    }
}

int main(void) {
    int i, j;
    init();
    kernel_fdtd_2d();
    for (i = 0; i < N; i++)
        for (j = 0; j < N; j++) { pb_feed(ex[i][j]); pb_feed(hz[i][j]); }
    pb_report("fdtd-2d");
    return 0;
}
""" + CHECKSUM_HELPERS

BENCHMARK = polybench(
    "fdtd-2d", "Stencils", "2-D finite-difference time-domain kernel",
    SOURCE, sizes={"test": 10, "small": 22, "ref": 48},
    extra_defines={"TSTEPS": lambda n: max(2, n // 4)})
