"""PolyBench `nussinov`: RNA secondary-structure dynamic programming."""

from . import CHECKSUM_HELPERS, polybench

SOURCE = r"""
int seq[N];
int table[N][N];

int match(int b1, int b2) {
    return (b1 + b2) == 3 ? 1 : 0;
}

int max_score(int a, int b) {
    return a >= b ? a : b;
}

void init(void) {
    int i, j;
    for (i = 0; i < N; i++) seq[i] = (i + 1) % 4;
    for (i = 0; i < N; i++)
        for (j = 0; j < N; j++) table[i][j] = 0;
}

void kernel_nussinov(void) {
    int i, j, k;
    for (i = N - 1; i >= 0; i--) {
        for (j = i + 1; j < N; j++) {
            if (j - 1 >= 0)
                table[i][j] = max_score(table[i][j], table[i][j - 1]);
            if (i + 1 < N)
                table[i][j] = max_score(table[i][j], table[i + 1][j]);
            if (j - 1 >= 0 && i + 1 < N) {
                if (i < j - 1)
                    table[i][j] = max_score(table[i][j],
                        table[i + 1][j - 1] + match(seq[i], seq[j]));
                else
                    table[i][j] = max_score(table[i][j],
                                            table[i + 1][j - 1]);
            }
            for (k = i + 1; k < j; k++)
                table[i][j] = max_score(table[i][j],
                                        table[i][k] + table[k + 1][j]);
        }
    }
}

int main(void) {
    int i, j;
    init();
    kernel_nussinov();
    for (i = 0; i < N; i++)
        for (j = i; j < N; j++) pb_feed((double)table[i][j]);
    pb_report("nussinov");
    return 0;
}
""" + CHECKSUM_HELPERS

BENCHMARK = polybench(
    "nussinov", "Bioinformatics", "Sequence alignment", SOURCE,
    sizes={"test": 10, "small": 20, "ref": 48})
