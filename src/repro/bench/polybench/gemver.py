"""PolyBench `gemver`: vector multiplication and matrix addition."""

from . import CHECKSUM_HELPERS, polybench

SOURCE = r"""
double A[N][N];
double u1[N]; double v1[N]; double u2[N]; double v2[N];
double w[N]; double x[N]; double y[N]; double z[N];

void init(void) {
    int i, j;
    for (i = 0; i < N; i++) {
        u1[i] = (double)i / (double)N;
        u2[i] = (double)(i + 1) / (double)N / 2.0;
        v1[i] = (double)(i + 2) / (double)N / 4.0;
        v2[i] = (double)(i + 3) / (double)N / 6.0;
        y[i] = (double)(i + 4) / (double)N / 8.0;
        z[i] = (double)(i + 5) / (double)N / 9.0;
        x[i] = 0.0;
        w[i] = 0.0;
        for (j = 0; j < N; j++)
            A[i][j] = (double)((i * j) % N) / (double)N;
    }
}

void kernel_gemver(double alpha, double beta) {
    int i, j;
    for (i = 0; i < N; i++)
        for (j = 0; j < N; j++)
            A[i][j] = A[i][j] + u1[i] * v1[j] + u2[i] * v2[j];
    for (i = 0; i < N; i++)
        for (j = 0; j < N; j++)
            x[i] = x[i] + beta * A[j][i] * y[j];
    for (i = 0; i < N; i++)
        x[i] = x[i] + z[i];
    for (i = 0; i < N; i++)
        for (j = 0; j < N; j++)
            w[i] = w[i] + alpha * A[i][j] * x[j];
}

int main(void) {
    int i;
    init();
    kernel_gemver(1.5, 1.2);
    for (i = 0; i < N; i++) pb_feed(w[i]);
    pb_report("gemver");
    return 0;
}
""" + CHECKSUM_HELPERS

BENCHMARK = polybench(
    "gemver", "Linear algebra", "Vector multiplication and matrix addition",
    SOURCE, sizes={"test": 16, "small": 48, "ref": 120})
