"""Service workloads for the ``repro.serve`` modeled serving tier.

These are not part of the paper's 50-benchmark WABench suite (Table 2);
they model the request *handlers* an edge/serverless gateway would
instantiate per request — the workload family of the wasm-bench edge
study (SNIPPETS.md Snippet 2) and the WASI-heavy programs eWAPA shows
differentiate server-side runtimes most:

* ``hello_svc``   — minimal response formatting (the HTTP "hello" path);
* ``compute_svc`` — CPU-bound hashing (the SHA-iterations path);
* ``state_svc``   — stateful counter over WASI file read-modify-write
  (the ``/state`` path; syscall-dominated).

Each program's ``main`` handles one request batch end to end and prints
a deterministic checksum, so the cross-engine agreement contract of the
main suite applies unchanged.
"""

from .compute import BENCHMARK as COMPUTE_SVC
from .hello import BENCHMARK as HELLO_SVC
from .state import BENCHMARK as STATE_SVC

SERVICE_BENCHMARKS = [HELLO_SVC, COMPUTE_SVC, STATE_SVC]

__all__ = ["SERVICE_BENCHMARKS", "HELLO_SVC", "COMPUTE_SVC", "STATE_SVC"]
