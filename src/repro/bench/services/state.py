"""``state_svc``: stateful counter endpoint over WASI file I/O.

Models the ``/state`` endpoint of the edge-benchmark suites: every
request reads the counter file, parses it, increments, writes it back,
and rewrites a single-slot access-log record.  The handler is syscall-dominated
(path_open/fd_read/fd_write per request) — the WASI-heavy profile eWAPA
identifies as the axis where server-side runtimes differ most.
"""

from ..workload import Benchmark

SOURCE = r"""
char buf[32];
char line[64];

/* parse an unsigned decimal from buf[0..n) */
unsigned int parse_u(int n) {
    unsigned int v = 0u;
    int i;
    for (i = 0; i < n; i++) {
        int c = (int)buf[i];
        if (c < 48 || c > 57) break;
        v = v * 10u + (unsigned int)(c - 48);
    }
    return v;
}

/* format v as decimal into buf, returns length */
int format_u(unsigned int v) {
    char digits[12];
    int k = 0, n = 0;
    if (v == 0u) { buf[0] = 48; return 1; }
    while (v > 0u) { digits[k] = (char)(48u + v % 10u); v /= 10u; k++; }
    while (k > 0) { k--; buf[n] = digits[k]; n++; }
    return n;
}

unsigned int read_counter(void) {
    int fd = open_read("counter.txt");
    int n;
    unsigned int v;
    if (fd < 0) return 0u;
    n = read_bytes(fd, buf, 31);
    close_fd(fd);
    if (n < 0) return 0u;
    return parse_u(n);
}

void write_counter(unsigned int v) {
    int fd = open_write("counter.txt");
    int n = format_u(v);
    write_bytes(fd, buf, n);
    close_fd(fd);
}

/* single-slot access log: open_write truncates, so each request pays
   the full open/format/write/close syscall path */
int write_log(unsigned int request_id, unsigned int value) {
    int fd = open_write("access.log");
    int n = 0, k, i;
    char *prefix = "req ";
    for (i = 0; prefix[i] != 0; i++) { line[n] = prefix[i]; n++; }
    k = format_u(request_id);
    for (i = 0; i < k; i++) { line[n] = buf[i]; n++; }
    line[n] = 32; n++;
    k = format_u(value);
    for (i = 0; i < k; i++) { line[n] = buf[i]; n++; }
    line[n] = 10; n++;
    write_bytes(fd, line, n);
    close_fd(fd);
    return n;
}

int main(void) {
    unsigned int check = 2166136261u;
    unsigned int req, value = 0u;
    int log_bytes = 0;
    for (req = 0u; req < REQUESTS; req++) {
        value = read_counter() + 1u;
        write_counter(value);
        log_bytes += write_log(req, value);
        check = (check ^ value) * 16777619u;
    }
    print_s("state_svc requests="); print_u((unsigned int)REQUESTS);
    print_s(" counter="); print_u(value);
    print_s(" log_bytes="); print_i(log_bytes);
    print_s(" check="); print_x(check);
    print_nl();
    return 0;
}
"""


def _files(size):
    return {"counter.txt": b"0"}


BENCHMARK = Benchmark(
    name="state_svc",
    suite="service",
    domain="Edge serving",
    description="Stateful counter endpoint (WASI syscall-dominated)",
    source=SOURCE,
    defines={
        "test": {"REQUESTS": "6u"},
        "small": {"REQUESTS": "48u"},
        "ref": {"REQUESTS": "384u"},
    },
    files=_files,
    traits=("integer", "file-input", "wasi-heavy", "stateful"),
)
