"""``compute_svc``: CPU-bound request handler (hash iterations).

Models the SHA-iterations endpoint of the edge-benchmark suites: each
request runs ROUNDS of a mixing hash over a payload buffer derived from
the request id.  Execution dominates instantiation, so this is the
workload where warm reuse pays off least and engine code quality
(JIT vs interpreter) shows most.
"""

from ..workload import Benchmark

SOURCE = r"""
unsigned char payload[PAYLOAD];

void fill_payload(unsigned int request_id) {
    unsigned int state = request_id * 2654435761u + 1u;
    int i;
    for (i = 0; i < PAYLOAD; i++) {
        state ^= state << 13;
        state ^= state >> 17;
        state ^= state << 5;
        payload[i] = (unsigned char)(state & 255u);
    }
}

/* one mixing round over the payload (xorshift-folded, sha-like cost) */
unsigned int mix_round(unsigned int h) {
    int i;
    for (i = 0; i < PAYLOAD; i++) {
        h ^= (unsigned int)payload[i];
        h *= 16777619u;
        h ^= h >> 15;
        h *= 2246822519u;
        h ^= h >> 13;
    }
    return h;
}

unsigned int handle(unsigned int request_id) {
    unsigned int h = 2166136261u;
    int r;
    fill_payload(request_id);
    for (r = 0; r < ROUNDS; r++)
        h = mix_round(h + (unsigned int)r);
    return h;
}

int main(void) {
    unsigned int check = 0u;
    unsigned int req;
    for (req = 0u; req < REQUESTS; req++)
        check = check * 31u + handle(req);
    print_s("compute_svc requests="); print_u((unsigned int)REQUESTS);
    print_s(" rounds="); print_i(ROUNDS);
    print_s(" check="); print_x(check);
    print_nl();
    return 0;
}
"""

BENCHMARK = Benchmark(
    name="compute_svc",
    suite="service",
    domain="Edge serving",
    description="CPU-bound hash endpoint (execution-dominated)",
    source=SOURCE,
    defines={
        "test": {"REQUESTS": "4u", "ROUNDS": "6", "PAYLOAD": "512"},
        "small": {"REQUESTS": "16u", "ROUNDS": "16", "PAYLOAD": "1024"},
        "ref": {"REQUESTS": "64u", "ROUNDS": "32", "PAYLOAD": "4096"},
    },
    traits=("integer", "compute-bound", "hashing"),
)
