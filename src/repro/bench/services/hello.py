"""``hello_svc``: minimal HTTP-style "hello" responder.

Models the lightest endpoint of the edge-benchmark suites: per request
it formats a small JSON body plus a status line into a response buffer
and folds the bytes into a running FNV-1a checksum.  Almost no compute —
so in the serving tier its latency is dominated by instantiation, which
is exactly what makes it the cold-start probe.
"""

from ..workload import Benchmark

SOURCE = r"""
char resp[512];

/* append s at resp+n, returns new length */
int emit_s(int n, char *s) {
    int i = 0;
    while (s[i] != 0) { resp[n] = s[i]; n++; i++; }
    return n;
}

/* append unsigned decimal at resp+n, returns new length */
int emit_u(int n, unsigned int v) {
    char digits[12];
    int k = 0;
    if (v == 0u) { resp[n] = 48; return n + 1; }
    while (v > 0u) { digits[k] = (char)(48u + v % 10u); v /= 10u; k++; }
    while (k > 0) { k--; resp[n] = digits[k]; n++; }
    return n;
}

int build_response(unsigned int request_id) {
    int n = 0;
    n = emit_s(n, "HTTP/1.1 200 OK\r\ncontent-type: application/json\r\n\r\n");
    n = emit_s(n, "{\"hello\": \"world\", \"request\": ");
    n = emit_u(n, request_id);
    n = emit_s(n, "}\n");
    return n;
}

int main(void) {
    unsigned int check = 2166136261u;     /* FNV-1a offset basis */
    unsigned int req;
    int total = 0;
    for (req = 0u; req < REQUESTS; req++) {
        int len = build_response(req * 2654435761u % 100000u);
        int i;
        for (i = 0; i < len; i++) {
            check ^= (unsigned int)(unsigned char)resp[i];
            check *= 16777619u;
        }
        total += len;
    }
    print_s("hello_svc requests="); print_u((unsigned int)REQUESTS);
    print_s(" bytes="); print_i(total);
    print_s(" check="); print_x(check);
    print_nl();
    return 0;
}
"""

BENCHMARK = Benchmark(
    name="hello_svc",
    suite="service",
    domain="Edge serving",
    description="Minimal HTTP hello responder (cold-start probe)",
    source=SOURCE,
    defines={
        "test": {"REQUESTS": "2u"},
        "small": {"REQUESTS": "64u"},
        "ref": {"REQUESTS": "512u"},
    },
    traits=("integer", "short-running", "startup-dominated"),
)
