"""MiBench `basicmath`: cubic equations, integer sqrt, angle conversion.

Follows the original's structure: solve batches of cubic equations via
the trigonometric method, take integer square roots by bit-shifting, and
convert degrees<->radians — the automotive math mix.
"""

from ..workload import Benchmark

SOURCE = r"""
#define PI 3.141592653589793

double solutions[3];
int num_solutions;

/* Solve a*x^3 + b*x^2 + c*x + d = 0 (the original SolveCubic) */
void solve_cubic(double a, double b, double c, double d) {
    double a1 = b / a;
    double a2 = c / a;
    double a3 = d / a;
    double q = (a1 * a1 - 3.0 * a2) / 9.0;
    double r = (2.0 * a1 * a1 * a1 - 9.0 * a1 * a2 + 27.0 * a3) / 54.0;
    double r2 = r * r;
    double q3 = q * q * q;
    if (r2 < q3) {
        double theta = acos(r / sqrt(q3));
        double sq = -2.0 * sqrt(q);
        num_solutions = 3;
        solutions[0] = sq * cos(theta / 3.0) - a1 / 3.0;
        solutions[1] = sq * cos((theta + 2.0 * PI) / 3.0) - a1 / 3.0;
        solutions[2] = sq * cos((theta + 4.0 * PI) / 3.0) - a1 / 3.0;
    } else {
        double e = pow(sqrt(r2 - q3) + fabs(r), 1.0 / 3.0);
        if (r > 0.0) e = -e;
        num_solutions = 1;
        solutions[0] = (e + (e == 0.0 ? 0.0 : q / e)) - a1 / 3.0;
    }
}

/* usqrt from the original: bit-serial integer square root */
unsigned int usqrt(unsigned int x) {
    unsigned int a = 0u;
    unsigned int r = 0u;
    unsigned int e = 0u;
    int i;
    for (i = 0; i < 16; i++) {
        r = (r << 2) + (x >> 30);
        x <<= 2;
        a <<= 1;
        e = (a << 1) + 1u;
        if (r >= e) {
            r -= e;
            a += 1u;
        }
    }
    return a;
}

double deg2rad(double deg) { return deg * PI / 180.0; }
double rad2deg(double rad) { return rad * 180.0 / PI; }

int main(void) {
    double a, b, c, d;
    unsigned int u;
    double x;
    double acc = 0.0;
    unsigned int icheck = 0u;

    /* cubic sweeps, as in the original nested loops */
    for (a = 1.0; a < CUBIC_A; a += 1.0) {
        for (b = 10.0; b > 8.0; b -= 0.5) {
            for (c = 5.0; c < 6.0; c += 0.25) {
                for (d = -1.0; d > -2.0; d -= 0.5) {
                    int i;
                    solve_cubic(a, b, c, d);
                    for (i = 0; i < num_solutions; i++)
                        acc += solutions[i];
                }
            }
        }
    }

    /* integer square roots */
    for (u = 0u; u < USQRT_N; u += 1u) {
        icheck = icheck * 31u + usqrt(u * u + u);
    }

    /* angle conversions */
    for (x = 0.0; x < 360.0; x += 0.25) {
        acc += deg2rad(x);
    }
    for (x = 0.0; x < 2.0 * PI; x += 0.025) {
        acc += rad2deg(x);
    }

    print_s("basicmath acc=");
    print_f(acc);
    print_s(" icheck=");
    print_x(icheck);
    print_nl();
    return 0;
}
"""

BENCHMARK = Benchmark(
    name="basicmath",
    suite="mibench",
    domain="Automotive",
    description="Basic mathematical computations",
    source=SOURCE,
    defines={
        "test": {"CUBIC_A": "3.0", "USQRT_N": "60u"},
        "small": {"CUBIC_A": "10.0", "USQRT_N": "400u"},
        "ref": {"CUBIC_A": "32.0", "USQRT_N": "4000u"},
    },
    traits=("floating-point", "libm-heavy"),
)
