"""MiBench `stringsearch`: Boyer-Moore-Horspool search of words in
phrases, matching the original's init_search/strsearch structure."""

from ..workload import Benchmark
from ..workload import deterministic_text

SOURCE = r"""
int skip_table[256];

void init_search(char *pattern, int plen) {
    int i;
    for (i = 0; i < 256; i++) skip_table[i] = plen;
    for (i = 0; i < plen - 1; i++)
        skip_table[(int)(unsigned char)pattern[i]] = plen - 1 - i;
}

/* Horspool search; returns match count in [text, text+tlen) */
int strsearch(char *pattern, int plen, char *text, int tlen) {
    int matches = 0;
    int pos = 0;
    while (pos + plen <= tlen) {
        int j = plen - 1;
        while (j >= 0 && pattern[j] == text[pos + j]) j--;
        if (j < 0) {
            matches++;
            pos += plen;
        } else {
            pos += skip_table[(int)(unsigned char)text[pos + plen - 1]];
        }
    }
    return matches;
}

char text[TEXT_BYTES + 1];
char *patterns[8];

int main(void) {
    int n, i, total = 0;
    unsigned int check = 0u;
    int fd = open_read("phrases.txt");
    if (fd < 0) { print_s("no input"); print_nl(); return 1; }
    n = read_bytes(fd, text, TEXT_BYTES);
    text[n] = 0;
    close_fd(fd);

    patterns[0] = "the";
    patterns[1] = "webassembly";
    patterns[2] = "runtimes";
    patterns[3] = "native";
    patterns[4] = "quick brown";
    patterns[5] = "sandbox";
    patterns[6] = "zzzz";
    patterns[7] = "code with near";

    for (i = 0; i < 8; i++) {
        int plen = (int)strlen(patterns[i]);
        int found;
        init_search(patterns[i], plen);
        found = strsearch(patterns[i], plen, text, n);
        total += found;
        check = check * 31u + (unsigned int)found;
    }
    print_s("stringsearch matches="); print_i(total);
    print_s(" check="); print_x(check);
    print_nl();
    return 0;
}
"""

_SIZES = {"test": 2048, "small": 24576, "ref": 262144}


def _files(size):
    return {"phrases.txt": deterministic_text(_SIZES[size])}


BENCHMARK = Benchmark(
    name="stringsearch",
    suite="mibench",
    domain="Office automation",
    description="Searching given words in phrases",
    source=SOURCE,
    defines={
        "test": {"TEXT_BYTES": "2048"},
        "small": {"TEXT_BYTES": "24576"},
        "ref": {"TEXT_BYTES": "262144"},
    },
    files=_files,
    traits=("byte-oriented", "file-input"),
)
