"""MiBench `adpcm`: IMA ADPCM speech codec (the real coder/decoder
tables and step logic from the original rawcaudio/rawdaudio)."""

from ..workload import Benchmark

SOURCE = r"""
int index_table[16] = {
    -1, -1, -1, -1, 2, 4, 6, 8,
    -1, -1, -1, -1, 2, 4, 6, 8
};

int step_table[89] = {
    7, 8, 9, 10, 11, 12, 13, 14, 16, 17,
    19, 21, 23, 25, 28, 31, 34, 37, 41, 45,
    50, 55, 60, 66, 73, 80, 88, 97, 107, 118,
    130, 143, 157, 173, 190, 209, 230, 253, 279, 307,
    337, 371, 408, 449, 494, 544, 598, 658, 724, 796,
    876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066,
    2272, 2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358,
    5894, 6484, 7132, 7845, 8630, 9493, 10442, 11487, 12635, 13899,
    15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767
};

short pcm_in[NSAMPLES];
char code_out[NSAMPLES];
short pcm_out[NSAMPLES];

int enc_valpred = 0;
int enc_index = 0;

void adpcm_coder(short *indata, char *outdata, int len) {
    int valpred = enc_valpred;
    int index = enc_index;
    int step = step_table[index];
    int i;
    for (i = 0; i < len; i++) {
        int val = (int)indata[i];
        int diff = val - valpred;
        int sign = diff < 0 ? 8 : 0;
        int delta, vpdiff;
        if (sign) diff = -diff;
        delta = 0;
        vpdiff = step >> 3;
        if (diff >= step) {
            delta = 4;
            diff -= step;
            vpdiff += step;
        }
        step >>= 1;
        if (diff >= step) {
            delta |= 2;
            diff -= step;
            vpdiff += step;
        }
        step >>= 1;
        if (diff >= step) {
            delta |= 1;
            vpdiff += step;
        }
        if (sign) valpred -= vpdiff;
        else valpred += vpdiff;
        if (valpred > 32767) valpred = 32767;
        else if (valpred < -32768) valpred = -32768;
        delta |= sign;
        index += index_table[delta];
        if (index < 0) index = 0;
        if (index > 88) index = 88;
        step = step_table[index];
        outdata[i] = (char)delta;
    }
    enc_valpred = valpred;
    enc_index = index;
}

int dec_valpred = 0;
int dec_index = 0;

void adpcm_decoder(char *indata, short *outdata, int len) {
    int valpred = dec_valpred;
    int index = dec_index;
    int step = step_table[index];
    int i;
    for (i = 0; i < len; i++) {
        int delta = (int)indata[i] & 15;
        int sign = delta & 8;
        int vpdiff;
        index += index_table[delta];
        if (index < 0) index = 0;
        if (index > 88) index = 88;
        delta &= 7;
        vpdiff = step >> 3;
        if (delta & 4) vpdiff += step;
        if (delta & 2) vpdiff += step >> 1;
        if (delta & 1) vpdiff += step >> 2;
        if (sign) valpred -= vpdiff;
        else valpred += vpdiff;
        if (valpred > 32767) valpred = 32767;
        else if (valpred < -32768) valpred = -32768;
        step = step_table[index];
        outdata[i] = (short)valpred;
    }
    dec_valpred = valpred;
    dec_index = index;
}

int main(void) {
    int i;
    long err = 0l;
    unsigned int check = 0u;
    /* synthesize a speech-like waveform: mixed tones + noise */
    for (i = 0; i < NSAMPLES; i++) {
        double t = (double)i * 0.02;
        double v = 6000.0 * sin(t * 7.0) + 2500.0 * sin(t * 23.0 + 1.0);
        pcm_in[i] = (short)(int)v;
    }
    adpcm_coder(pcm_in, code_out, NSAMPLES);
    adpcm_decoder(code_out, pcm_out, NSAMPLES);
    for (i = 0; i < NSAMPLES; i++) {
        int d = (int)pcm_in[i] - (int)pcm_out[i];
        err += (long)(d < 0 ? -d : d);
        check = check * 31u + ((unsigned int)code_out[i] & 15u);
    }
    print_s("adpcm err="); print_l(err / (long)NSAMPLES);
    print_s(" check="); print_x(check);
    print_nl();
    return 0;
}
"""

BENCHMARK = Benchmark(
    name="adpcm",
    suite="mibench",
    domain="Telecommunications",
    description="Adaptive differential pulse code modulation",
    source=SOURCE,
    defines={
        "test": {"NSAMPLES": "512"},
        "small": {"NSAMPLES": "6000"},
        "ref": {"NSAMPLES": "60000"},
    },
    traits=("integer", "branchy"),
)
