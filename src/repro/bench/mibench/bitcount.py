"""MiBench `bitcount`: seven bit-counting algorithms, like the original
(optimized 1-bit, recursive, table-driven 8/16-bit, shift-and-count,
arithmetic tricks), dispatched through a function-pointer array."""

from ..workload import Benchmark

SOURCE = r"""
char bits_table[256];

void init_table(void) {
    int i;
    for (i = 0; i < 256; i++) {
        int n = 0;
        int v = i;
        while (v) { n += v & 1; v >>= 1; }
        bits_table[i] = (char)n;
    }
}

/* 1. optimized: clear lowest set bit */
int bit_count_opt(unsigned int x) {
    int n = 0;
    while (x) {
        x &= x - 1u;
        n++;
    }
    return n;
}

/* 2. shift and test */
int bit_count_shift(unsigned int x) {
    int n = 0;
    while (x) {
        n += (int)(x & 1u);
        x >>= 1;
    }
    return n;
}

/* 3. 8-bit table lookups */
int bit_count_table8(unsigned int x) {
    return (int)bits_table[x & 255u]
         + (int)bits_table[(x >> 8) & 255u]
         + (int)bits_table[(x >> 16) & 255u]
         + (int)bits_table[(x >> 24) & 255u];
}

/* 4. nibble recursion (the original's recursive variant) */
int bit_count_recursive(unsigned int x) {
    if (x == 0u) return 0;
    return (int)(x & 1u) + bit_count_recursive(x >> 1);
}

/* 5. parallel (SWAR) counting */
int bit_count_parallel(unsigned int x) {
    x = x - ((x >> 1) & 0x55555555u);
    x = (x & 0x33333333u) + ((x >> 2) & 0x33333333u);
    x = (x + (x >> 4)) & 0x0F0F0F0Fu;
    return (int)((x * 0x01010101u) >> 24);
}

/* 6. arithmetic modulo trick */
int bit_count_mod(unsigned int x) {
    unsigned int c = x - ((x >> 1) & 0xDB6DB6DBu) - ((x >> 2) & 0x49249249u);
    return (int)(((c + (c >> 3)) & 0xC71C71C7u) % 63u);
}

/* 7. byte loop */
int bit_count_bytes(unsigned int x) {
    int n = 0;
    int i;
    for (i = 0; i < 4; i++) {
        n += (int)bits_table[x & 255u];
        x >>= 8;
    }
    return n;
}

int (*counters[7])(unsigned int);

int main(void) {
    unsigned int seed;
    long totals[7];
    int f;
    init_table();
    counters[0] = bit_count_opt;
    counters[1] = bit_count_shift;
    counters[2] = bit_count_table8;
    counters[3] = bit_count_recursive;
    counters[4] = bit_count_parallel;
    counters[5] = bit_count_mod;
    counters[6] = bit_count_bytes;
    for (f = 0; f < 7; f++) totals[f] = 0l;

    for (f = 0; f < 7; f++) {
        unsigned int state = 0x1234u;
        int i;
        for (i = 0; i < ITERATIONS; i++) {
            state = state * 1103515245u + 12345u;
            totals[f] += (long)counters[f](state);
        }
    }
    for (f = 1; f < 7; f++) {
        if (totals[f] != totals[0]) {
            print_s("bitcount MISMATCH at ");
            print_i(f);
            print_nl();
            return 1;
        }
    }
    print_s("bitcount total=");
    print_l(totals[0]);
    print_nl();
    return 0;
}
"""

BENCHMARK = Benchmark(
    name="bitcount",
    suite="mibench",
    domain="Automotive",
    description="Bit manipulations",
    source=SOURCE,
    defines={
        "test": {"ITERATIONS": "300"},
        "small": {"ITERATIONS": "2500"},
        "ref": {"ITERATIONS": "30000"},
    },
    traits=("integer", "indirect-calls"),
)
