"""MiBench embedded benchmarks (paper Table 2, rows 5-13)."""
