"""MiBench `blowfish`: the Blowfish symmetric block cipher.

Authentic structure: 18-entry P-array + four 256-entry S-boxes, the
standard key schedule (XOR key into P, then re-encrypt the zero block to
fill P and S), and the 16-round Feistel network in ECB mode with a
decrypt verification pass.  The hex-digits-of-pi initialization constants
are replaced by a deterministic generator (documented substitution — the
dataflow and table pressure are identical).
"""

from ..workload import Benchmark

SOURCE = r"""
unsigned int P[18];
unsigned int S[4][256];

unsigned int pi_state = 0x243F6A88u;  /* first pi word, seeds the stream */

unsigned int next_pi(void) {
    pi_state ^= pi_state << 13;
    pi_state ^= pi_state >> 17;
    pi_state ^= pi_state << 5;
    return pi_state;
}

unsigned int bf_f(unsigned int x) {
    unsigned int h = S[0][x >> 24] + S[1][(x >> 16) & 255u];
    return (h ^ S[2][(x >> 8) & 255u]) + S[3][x & 255u];
}

unsigned int enc_l, enc_r;

void bf_encrypt(unsigned int l, unsigned int r) {
    int i;
    for (i = 0; i < 16; i += 2) {
        l ^= P[i];
        r ^= bf_f(l);
        r ^= P[i + 1];
        l ^= bf_f(r);
    }
    l ^= P[16];
    r ^= P[17];
    enc_l = r;
    enc_r = l;
}

void bf_decrypt(unsigned int l, unsigned int r) {
    int i;
    for (i = 16; i > 0; i -= 2) {
        l ^= P[i + 1];
        r ^= bf_f(l);
        r ^= P[i];
        l ^= bf_f(r);
    }
    l ^= P[1];
    r ^= P[0];
    enc_l = r;
    enc_r = l;
}

void bf_key_schedule(unsigned char *key, int keylen) {
    int i, j, k;
    unsigned int data;
    unsigned int l = 0u;
    unsigned int r = 0u;
    pi_state = 0x243F6A88u;
    for (i = 0; i < 18; i++) P[i] = next_pi();
    for (i = 0; i < 4; i++)
        for (j = 0; j < 256; j++) S[i][j] = next_pi();
    j = 0;
    for (i = 0; i < 18; i++) {
        data = 0u;
        for (k = 0; k < 4; k++) {
            data = (data << 8) | (unsigned int)key[j];
            j = (j + 1) % keylen;
        }
        P[i] ^= data;
    }
    for (i = 0; i < 18; i += 2) {
        bf_encrypt(l, r);
        l = enc_l;
        r = enc_r;
        P[i] = l;
        P[i + 1] = r;
    }
    for (i = 0; i < 4; i++) {
        for (j = 0; j < 256; j += 2) {
            bf_encrypt(l, r);
            l = enc_l;
            r = enc_r;
            S[i][j] = l;
            S[i][j + 1] = r;
        }
    }
}

unsigned char key[16] = {1, 35, 69, 103, 137, 171, 205, 239,
                         16, 50, 84, 118, 152, 186, 220, 254};
unsigned int blocks_l[NBLOCKS];
unsigned int blocks_r[NBLOCKS];

int main(void) {
    unsigned int state = 0xF00Du;
    unsigned int check = 0u;
    int i;
    bf_key_schedule(key, 16);
    for (i = 0; i < NBLOCKS; i++) {
        state = state * 1664525u + 1013904223u;
        blocks_l[i] = state;
        state = state * 1664525u + 1013904223u;
        blocks_r[i] = state;
    }
    /* encrypt in ECB */
    for (i = 0; i < NBLOCKS; i++) {
        bf_encrypt(blocks_l[i], blocks_r[i]);
        blocks_l[i] = enc_l;
        blocks_r[i] = enc_r;
        check = check * 31u + enc_l + enc_r;
    }
    /* decrypt and verify roundtrip */
    {
        unsigned int verify = 0xF00Du;
        for (i = 0; i < NBLOCKS; i++) {
            unsigned int pl, pr;
            bf_decrypt(blocks_l[i], blocks_r[i]);
            verify = verify * 1664525u + 1013904223u;
            pl = verify;
            verify = verify * 1664525u + 1013904223u;
            pr = verify;
            if (enc_l != pl || enc_r != pr) {
                print_s("blowfish roundtrip FAILED");
                print_nl();
                return 1;
            }
        }
    }
    print_s("blowfish check=");
    print_x(check);
    print_nl();
    return 0;
}
"""

BENCHMARK = Benchmark(
    name="blowfish",
    suite="mibench",
    domain="Security",
    description="Symmetric block cipher",
    source=SOURCE,
    defines={
        "test": {"NBLOCKS": "40"},
        "small": {"NBLOCKS": "300"},
        "ref": {"NBLOCKS": "4000"},
    },
    traits=("table-lookups", "integer"),
)
