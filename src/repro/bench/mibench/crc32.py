"""MiBench `crc32`: table-driven 32-bit cyclic redundancy check (the
standard reflected CRC-32 used by the original, over a generated file)."""

from ..workload import Benchmark
from ..workload import deterministic_bytes

SOURCE = r"""
unsigned int crc_table[256];

void make_crc_table(void) {
    unsigned int c;
    int n, k;
    for (n = 0; n < 256; n++) {
        c = (unsigned int)n;
        for (k = 0; k < 8; k++) {
            if (c & 1u) c = 0xEDB88320u ^ (c >> 1);
            else c >>= 1;
        }
        crc_table[n] = c;
    }
}

unsigned int crc32_update(unsigned int crc, unsigned char *buf, int len) {
    int i;
    crc ^= 0xFFFFFFFFu;
    for (i = 0; i < len; i++)
        crc = crc_table[(crc ^ (unsigned int)buf[i]) & 255u] ^ (crc >> 8);
    return crc ^ 0xFFFFFFFFu;
}

/* bit-serial reference implementation for cross-check (the original
   ships both) */
unsigned int crc32_bitwise(unsigned char *buf, int len) {
    unsigned int crc = 0xFFFFFFFFu;
    int i, k;
    for (i = 0; i < len; i++) {
        crc ^= (unsigned int)buf[i];
        for (k = 0; k < 8; k++) {
            if (crc & 1u) crc = (crc >> 1) ^ 0xEDB88320u;
            else crc >>= 1;
        }
    }
    return crc ^ 0xFFFFFFFFu;
}

unsigned char buffer[CHUNK];

int main(void) {
    unsigned int crc = 0u;
    unsigned int bit_crc;
    long total = 0l;
    int fd = open_read("data.bin");
    int n;
    make_crc_table();
    if (fd < 0) { print_s("no input"); print_nl(); return 1; }
    while ((n = read_bytes(fd, (char *)buffer, CHUNK)) > 0) {
        crc = crc32_update(crc, buffer, n);
        total += (long)n;
    }
    close_fd(fd);
    /* verify the first chunk against the bit-serial reference */
    fd = open_read("data.bin");
    n = read_bytes(fd, (char *)buffer, CHUNK);
    close_fd(fd);
    bit_crc = crc32_bitwise(buffer, n);
    print_s("crc32 bytes="); print_l(total);
    print_s(" crc="); print_x(crc);
    print_s(" head="); print_x(bit_crc);
    print_nl();
    return 0;
}
"""

_BYTES = {"test": 4096, "small": 49152, "ref": 786432}


def _files(size):
    return {"data.bin": deterministic_bytes(_BYTES[size], seed=0xC3C3)}


BENCHMARK = Benchmark(
    name="crc32",
    suite="mibench",
    domain="Telecommunications",
    description="32-bit Cyclic Redundancy Check",
    source=SOURCE,
    defines={
        "test": {"CHUNK": "1024"},
        "small": {"CHUNK": "4096"},
        "ref": {"CHUNK": "16384"},
    },
    files=_files,
    traits=("integer", "file-input", "streaming"),
)
