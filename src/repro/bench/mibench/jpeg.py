"""MiBench `jpeg`: baseline JPEG-style image compression/decompression.

The real codec's computational core: 8x8 forward DCT (AAN integer
layout), quantization with the standard luminance table, zig-zag +
run-length coding, then the inverse path, with a PSNR-style error check.
The paper's headline data point — WAVM's 135x slowdown — comes from this
benchmark's short runtime against a comparatively large module.
"""

from ..workload import Benchmark

SOURCE = r"""
#define BLOCK 8

int quant_table[64] = {
    16, 11, 10, 16, 24, 40, 51, 61,
    12, 12, 14, 19, 26, 58, 60, 55,
    14, 13, 16, 24, 40, 57, 69, 56,
    14, 17, 22, 29, 51, 87, 80, 62,
    18, 22, 37, 56, 68, 109, 103, 77,
    24, 35, 55, 64, 81, 104, 113, 92,
    49, 64, 78, 87, 103, 121, 120, 101,
    72, 92, 95, 98, 112, 100, 103, 99
};

int zigzag[64] = {
    0, 1, 8, 16, 9, 2, 3, 10, 17, 24, 32, 25, 18, 11, 4, 5,
    12, 19, 26, 33, 40, 48, 41, 34, 27, 20, 13, 6, 7, 14, 21, 28,
    35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51,
    58, 59, 52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63
};

unsigned char image[WIDTH * HEIGHT];
unsigned char recon[WIDTH * HEIGHT];
int coeffs[64];
int rle_stream[WIDTH * HEIGHT * 2];
int rle_len;

double cos_lut[8][8];

void init_dct(void) {
    int u, x;
    for (u = 0; u < 8; u++)
        for (x = 0; x < 8; x++)
            cos_lut[u][x] = cos((2.0 * (double)x + 1.0) * (double)u
                                * 3.141592653589793 / 16.0);
}

void make_image(void) {
    unsigned int state = 0xBEEF1u;
    int y, x;
    for (y = 0; y < HEIGHT; y++) {
        for (x = 0; x < WIDTH; x++) {
            int base = 128 + (x + y) % 48 - 24;   /* gradient texture */
            state = state * 1664525u + 1013904223u;
            image[y * WIDTH + x] =
                (unsigned char)(base + (int)(state >> 28) - 8);
        }
    }
}

void fdct_block(int bx, int by) {
    double tmp[64];
    int u, v, x, y;
    for (v = 0; v < 8; v++) {
        for (u = 0; u < 8; u++) {
            double acc = 0.0;
            for (y = 0; y < 8; y++)
                for (x = 0; x < 8; x++)
                    acc += ((double)image[(by + y) * WIDTH + bx + x] - 128.0)
                           * cos_lut[u][x] * cos_lut[v][y];
            tmp[v * 8 + u] = acc * 0.25
                * (u == 0 ? 0.7071067811865476 : 1.0)
                * (v == 0 ? 0.7071067811865476 : 1.0);
        }
    }
    for (u = 0; u < 64; u++) {
        double q = tmp[u] / (double)quant_table[u];
        coeffs[u] = (int)(q + (q >= 0.0 ? 0.5 : -0.5));
    }
}

void idct_block(int bx, int by) {
    double tmp[64];
    int u, v, x, y;
    for (u = 0; u < 64; u++)
        tmp[u] = (double)(coeffs[u] * quant_table[u]);
    for (y = 0; y < 8; y++) {
        for (x = 0; x < 8; x++) {
            double acc = 0.0;
            for (v = 0; v < 8; v++)
                for (u = 0; u < 8; u++)
                    acc += tmp[v * 8 + u] * cos_lut[u][x] * cos_lut[v][y]
                        * (u == 0 ? 0.7071067811865476 : 1.0)
                        * (v == 0 ? 0.7071067811865476 : 1.0);
            {
                int px = (int)(acc * 0.25 + 128.5);
                if (px < 0) px = 0;
                if (px > 255) px = 255;
                recon[(by + y) * WIDTH + bx + x] = (unsigned char)px;
            }
        }
    }
}

/* zig-zag + (run,level) coding, the entropy-coder front half */
void rle_encode_block(void) {
    int zeros = 0;
    int i;
    for (i = 0; i < 64; i++) {
        int c = coeffs[zigzag[i]];
        if (c == 0) {
            zeros++;
        } else {
            rle_stream[rle_len++] = zeros;
            rle_stream[rle_len++] = c;
            zeros = 0;
        }
    }
    rle_stream[rle_len++] = -1;  /* EOB */
    rle_stream[rle_len++] = 0;
}

int rle_pos;

void rle_decode_block(void) {
    int i = 0;
    int j;
    for (j = 0; j < 64; j++) coeffs[j] = 0;
    while (1) {
        int run = rle_stream[rle_pos++];
        int level = rle_stream[rle_pos++];
        if (run < 0) break;
        i += run;
        coeffs[zigzag[i]] = level;
        i++;
    }
}

int main(void) {
    int by, bx;
    long err = 0l;
    unsigned int check = 0u;
    init_dct();
    make_image();
    rle_len = 0;
    for (by = 0; by < HEIGHT; by += 8)
        for (bx = 0; bx < WIDTH; bx += 8) {
            fdct_block(bx, by);
            rle_encode_block();
        }
    rle_pos = 0;
    for (by = 0; by < HEIGHT; by += 8)
        for (bx = 0; bx < WIDTH; bx += 8) {
            rle_decode_block();
            idct_block(bx, by);
        }
    {
        int i;
        for (i = 0; i < WIDTH * HEIGHT; i++) {
            int d = (int)image[i] - (int)recon[i];
            err += (long)(d * d);
            check = check * 31u + (unsigned int)recon[i];
        }
    }
    print_s("jpeg rle_words="); print_i(rle_len);
    print_s(" sq_err="); print_l(err);
    print_s(" check="); print_x(check);
    print_nl();
    return 0;
}
"""

BENCHMARK = Benchmark(
    name="jpeg",
    suite="mibench",
    domain="Consumer multimedia",
    description="JPEG image compression/decompression",
    source=SOURCE,
    defines={
        "test": {"WIDTH": "16", "HEIGHT": "16"},
        "small": {"WIDTH": "32", "HEIGHT": "24"},
        "ref": {"WIDTH": "96", "HEIGHT": "64"},
    },
    traits=("short-running", "large-code", "floating-point"),
)
