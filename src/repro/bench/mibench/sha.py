"""MiBench `sha`: the real SHA-1 secure hash over a generated message."""

from ..workload import Benchmark

SOURCE = r"""
unsigned int h0, h1, h2, h3, h4;
unsigned char message[MSG_BYTES + 72];
unsigned int w[80];

unsigned int rol(unsigned int x, int n) {
    return (x << n) | (x >> (32 - n));
}

void sha1_block(unsigned char *p) {
    unsigned int a, b, c, d, e;
    int t;
    for (t = 0; t < 16; t++) {
        w[t] = ((unsigned int)p[t * 4] << 24)
             | ((unsigned int)p[t * 4 + 1] << 16)
             | ((unsigned int)p[t * 4 + 2] << 8)
             | (unsigned int)p[t * 4 + 3];
    }
    for (t = 16; t < 80; t++)
        w[t] = rol(w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16], 1);
    a = h0; b = h1; c = h2; d = h3; e = h4;
    for (t = 0; t < 80; t++) {
        unsigned int f, k;
        if (t < 20) {
            f = (b & c) | ((~b) & d);
            k = 0x5A827999u;
        } else if (t < 40) {
            f = b ^ c ^ d;
            k = 0x6ED9EBA1u;
        } else if (t < 60) {
            f = (b & c) | (b & d) | (c & d);
            k = 0x8F1BBCDCu;
        } else {
            f = b ^ c ^ d;
            k = 0xCA62C1D6u;
        }
        {
            unsigned int temp = rol(a, 5) + f + e + k + w[t];
            e = d;
            d = c;
            c = rol(b, 30);
            b = a;
            a = temp;
        }
    }
    h0 += a; h1 += b; h2 += c; h3 += d; h4 += e;
}

void sha1(unsigned char *data, int len) {
    int i;
    int total;
    long bits = (long)len * 8l;
    h0 = 0x67452301u; h1 = 0xEFCDAB89u; h2 = 0x98BADCFEu;
    h3 = 0x10325476u; h4 = 0xC3D2E1F0u;
    /* padding */
    data[len] = (unsigned char)0x80;
    total = len + 1;
    while (total % 64 != 56) data[total++] = 0;
    for (i = 7; i >= 0; i--) data[total++] = (unsigned char)(bits >> (i * 8));
    for (i = 0; i < total; i += 64) sha1_block(data + i);
}

int main(void) {
    unsigned int state = 0x5AADu;
    int i;
    for (i = 0; i < MSG_BYTES; i++) {
        state = state * 1664525u + 1013904223u;
        message[i] = (unsigned char)(state >> 24);
    }
    for (i = 0; i < ROUNDS; i++) {
        sha1(message, MSG_BYTES);
        /* feed the digest back into the message head */
        message[0] = (unsigned char)(h0 >> 24);
        message[1] = (unsigned char)(h1 >> 16);
        message[2] = (unsigned char)(h2 >> 8);
        message[3] = (unsigned char)h3;
    }
    print_s("sha1 digest=");
    print_x(h0); putchar(' ');
    print_x(h1); putchar(' ');
    print_x(h2); putchar(' ');
    print_x(h3); putchar(' ');
    print_x(h4);
    print_nl();
    return 0;
}
"""

BENCHMARK = Benchmark(
    name="sha",
    suite="mibench",
    domain="Security",
    description="Secure hash algorithm",
    source=SOURCE,
    defines={
        "test": {"MSG_BYTES": "256", "ROUNDS": "1"},
        "small": {"MSG_BYTES": "2048", "ROUNDS": "3"},
        "ref": {"MSG_BYTES": "32768", "ROUNDS": "6"},
    },
    traits=("integer", "regular"),
)
