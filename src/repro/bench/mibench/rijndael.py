"""MiBench `rijndael`: AES-128 with the real GF(2^8) S-box construction.

Implements the genuine cipher: the S-box is computed from multiplicative
inverses in GF(2^8) plus the affine transform, key expansion follows
FIPS-197, and encryption runs SubBytes/ShiftRows/MixColumns/AddRoundKey
over 16-byte blocks in ECB.
"""

from ..workload import Benchmark

SOURCE = r"""
unsigned char sbox[256];
unsigned char round_keys[176];   /* 11 round keys x 16 bytes */
unsigned char state_bytes[16];

/* GF(2^8) multiply, reduction polynomial 0x11B */
int gmul(int a, int b) {
    int p = 0;
    int i;
    for (i = 0; i < 8; i++) {
        if (b & 1) p ^= a;
        {
            int hi = a & 0x80;
            a = (a << 1) & 0xFF;
            if (hi) a ^= 0x1B;
        }
        b >>= 1;
    }
    return p;
}

void build_sbox(void) {
    /* brute-force inverses + affine transform (FIPS-197 definition) */
    int x, y;
    sbox[0] = (unsigned char)0x63;
    for (x = 1; x < 256; x++) {
        int inv = 0;
        for (y = 1; y < 256; y++) {
            if (gmul(x, y) == 1) { inv = y; break; }
        }
        {
            int s = inv;
            int r = inv;
            int i;
            for (i = 0; i < 4; i++) {
                r = ((r << 1) | (r >> 7)) & 0xFF;
                s ^= r;
            }
            sbox[x] = (unsigned char)(s ^ 0x63);
        }
    }
}

void key_expansion(unsigned char *key) {
    int i;
    unsigned char rcon = 1;
    for (i = 0; i < 16; i++) round_keys[i] = key[i];
    for (i = 16; i < 176; i += 4) {
        unsigned char t0 = round_keys[i - 4];
        unsigned char t1 = round_keys[i - 3];
        unsigned char t2 = round_keys[i - 2];
        unsigned char t3 = round_keys[i - 1];
        if (i % 16 == 0) {
            unsigned char tmp = t0;
            t0 = (unsigned char)(sbox[t1] ^ rcon);
            t1 = sbox[t2];
            t2 = sbox[t3];
            t3 = sbox[tmp];
            rcon = (unsigned char)gmul(rcon, 2);
        }
        round_keys[i] = (unsigned char)(round_keys[i - 16] ^ t0);
        round_keys[i + 1] = (unsigned char)(round_keys[i - 15] ^ t1);
        round_keys[i + 2] = (unsigned char)(round_keys[i - 14] ^ t2);
        round_keys[i + 3] = (unsigned char)(round_keys[i - 13] ^ t3);
    }
}

void add_round_key(int round) {
    int i;
    for (i = 0; i < 16; i++)
        state_bytes[i] = (unsigned char)(state_bytes[i]
                                         ^ round_keys[round * 16 + i]);
}

void sub_bytes(void) {
    int i;
    for (i = 0; i < 16; i++) state_bytes[i] = sbox[state_bytes[i]];
}

void shift_rows(void) {
    unsigned char t;
    /* row 1: rotate left 1 */
    t = state_bytes[1];
    state_bytes[1] = state_bytes[5];
    state_bytes[5] = state_bytes[9];
    state_bytes[9] = state_bytes[13];
    state_bytes[13] = t;
    /* row 2: rotate left 2 */
    t = state_bytes[2];
    state_bytes[2] = state_bytes[10];
    state_bytes[10] = t;
    t = state_bytes[6];
    state_bytes[6] = state_bytes[14];
    state_bytes[14] = t;
    /* row 3: rotate left 3 */
    t = state_bytes[15];
    state_bytes[15] = state_bytes[11];
    state_bytes[11] = state_bytes[7];
    state_bytes[7] = state_bytes[3];
    state_bytes[3] = t;
}

void mix_columns(void) {
    int c;
    for (c = 0; c < 4; c++) {
        int a0 = state_bytes[c * 4];
        int a1 = state_bytes[c * 4 + 1];
        int a2 = state_bytes[c * 4 + 2];
        int a3 = state_bytes[c * 4 + 3];
        state_bytes[c * 4] = (unsigned char)(gmul(a0, 2) ^ gmul(a1, 3)
                                             ^ a2 ^ a3);
        state_bytes[c * 4 + 1] = (unsigned char)(a0 ^ gmul(a1, 2)
                                                 ^ gmul(a2, 3) ^ a3);
        state_bytes[c * 4 + 2] = (unsigned char)(a0 ^ a1 ^ gmul(a2, 2)
                                                 ^ gmul(a3, 3));
        state_bytes[c * 4 + 3] = (unsigned char)(gmul(a0, 3) ^ a1 ^ a2
                                                 ^ gmul(a3, 2));
    }
}

void aes_encrypt_block(void) {
    int round;
    add_round_key(0);
    for (round = 1; round < 10; round++) {
        sub_bytes();
        shift_rows();
        mix_columns();
        add_round_key(round);
    }
    sub_bytes();
    shift_rows();
    add_round_key(10);
}

unsigned char aes_key[16] = {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2,
                             0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
                             0x4f, 0x3c};

int main(void) {
    unsigned int stream = 0xA5A5u;
    unsigned int check = 2166136261u;
    int block, i;
    build_sbox();
    key_expansion(aes_key);
    for (block = 0; block < NBLOCKS; block++) {
        for (i = 0; i < 16; i++) {
            stream = stream * 1664525u + 1013904223u;
            state_bytes[i] = (unsigned char)(stream >> 24);
        }
        aes_encrypt_block();
        for (i = 0; i < 16; i++)
            check = (check ^ (unsigned int)state_bytes[i]) * 16777619u;
    }
    print_s("rijndael check=");
    print_x(check);
    print_nl();
    return 0;
}
"""

BENCHMARK = Benchmark(
    name="rijndael",
    suite="mibench",
    domain="Security",
    description="Block cipher with variable length keys",
    source=SOURCE,
    defines={
        "test": {"NBLOCKS": "6"},
        "small": {"NBLOCKS": "40"},
        "ref": {"NBLOCKS": "400"},
    },
    traits=("table-lookups", "integer"),
)
