"""WABench: the paper's 50-program benchmark suite.

Four groups as in Table 2: JetStream2 (4), MiBench (9), PolyBench (30),
and whole applications (7).  Every benchmark is MiniC source plus sized
workload parameters and (where the original reads files) deterministic
synthetic inputs.
"""

from .registry import (ALL_BENCHMARKS, APP_NAMES, BY_NAME, IO_BENCHMARKS,
                       SERVICE_BENCHMARKS, SUITES, by_suite, get, io_names,
                       names, service_names)
from .workload import SIZES, Benchmark

__all__ = ["ALL_BENCHMARKS", "APP_NAMES", "BY_NAME", "IO_BENCHMARKS",
           "SERVICE_BENCHMARKS", "SUITES", "by_suite", "get", "io_names",
           "names", "service_names", "SIZES", "Benchmark"]
