"""I/O-bound workloads for the WASI/syscall characterization axis.

These are not part of the paper's 50-benchmark WABench suite (Table 2);
they are the syscall-dominated program class eWAPA (PAPERS.md) uses to
show that WASI paths are where standalone runtimes differ most.  Each
program spends most of its modeled instructions inside the WASI shim
rather than in guest code, so the interpreter-vs-JIT speedup collapses
toward 1x (the crossover characterized in PERFORMANCE.md):

* ``fscan_io``     — chunked file scan: stat + many small ``fd_read``;
* ``fcopy_io``     — file copy/stamp/verify/rename/unlink lifecycle;
* ``dirwalk_io``   — two-level directory walk over ``fd_readdir`` +
  per-entry ``path_filestat_get``;
* ``clockrand_io`` — clock/random churn (``clock_time_get``,
  ``random_get``);
* ``envarg_io``    — arg/env churn (``args_get``/``environ_get``).

Registered like ``bench/services``: ``ALL_BENCHMARKS`` stays exactly 50,
but ``wabench run/trace/serve`` resolve them through ``bench.get()``.
"""

from .clockrand import BENCHMARK as CLOCKRAND_IO
from .dirwalk import BENCHMARK as DIRWALK_IO
from .envarg import BENCHMARK as ENVARG_IO
from .fcopy import BENCHMARK as FCOPY_IO
from .fscan import BENCHMARK as FSCAN_IO

IO_BENCHMARKS = [FSCAN_IO, FCOPY_IO, DIRWALK_IO, CLOCKRAND_IO, ENVARG_IO]

__all__ = ["IO_BENCHMARKS", "FSCAN_IO", "FCOPY_IO", "DIRWALK_IO",
           "CLOCKRAND_IO", "ENVARG_IO"]
