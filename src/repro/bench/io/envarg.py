"""``envarg_io``: argument/environment churn.

Repeatedly sizes and copies the argv and environ blocks — the startup
path every CLI-style module pays, amplified into a loop the way a
per-request reinitializing serverless handler would.  Pure marshalling:
guest compute is a checksum over the copied bytes.
"""

from ..workload import Benchmark

SOURCE = r"""
int ptrs[16];
char block[256];

unsigned int fold(int n) {
    int i;
    unsigned int check = 0u;
    for (i = 0; i < n && i < 256; i++) {
        check = (check ^ (unsigned int)(unsigned char)block[i])
                * 16777619u;
    }
    return check;
}

int main(void) {
    unsigned int check = 2166136261u;
    int sizes[2];
    int argc = 0, envc = 0, abytes = 0, ebytes = 0;
    int round;
    for (round = 0; round < ROUNDS; round++) {
        if (__wasi_args_sizes_get((int)sizes, (int)&sizes[1]) == 0) {
            argc = sizes[0];
            abytes = sizes[1];
            __wasi_args_get((int)ptrs, (int)block);
            check = (check ^ fold(abytes)) * 16777619u;
        }
        if (__wasi_environ_sizes_get((int)sizes, (int)&sizes[1]) == 0) {
            envc = sizes[0];
            ebytes = sizes[1];
            __wasi_environ_get((int)ptrs, (int)block);
            check = (check ^ fold(ebytes)) * 16777619u;
        }
    }
    print_s("envarg_io argc="); print_i(argc);
    print_s(" argv_bytes="); print_i(abytes);
    print_s(" envc="); print_i(envc);
    print_s(" env_bytes="); print_i(ebytes);
    print_s(" check="); print_x(check);
    print_nl();
    return 0;
}
"""

BENCHMARK = Benchmark(
    name="envarg_io",
    suite="io",
    domain="Host services",
    description="Arg/env block sizing and copy churn (args/environ_get)",
    source=SOURCE,
    defines={
        "test": {"ROUNDS": "32"},
        "small": {"ROUNDS": "256"},
        "ref": {"ROUNDS": "2048"},
    },
    traits=("integer", "wasi-heavy", "io-bound"),
)
