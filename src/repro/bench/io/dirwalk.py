"""``dirwalk_io``: two-level directory walk.

Opens the preopen root, pages through ``fd_readdir`` with an explicit
cookie (deliberately using a buffer smaller than most listings, so the
truncation/continuation protocol is exercised), descends one level into
every subdirectory, and stats each regular file it finds.  The du/find
profile: metadata syscalls with almost no guest compute.
"""

from ..workload import Benchmark, deterministic_bytes, deterministic_text

SOURCE = r"""
char dirbuf[DIRBUF];
char name[64];
char path[128];

int __files;
int __dirs;
long __bytes;
unsigned int __check;

/* parse one readdir buffer; returns entries consumed, updates cookie
   via return of count (cookie advances by d_next == index + 1) */
int walk_dir(char *dirname) {
    int fd, used, off, namlen, dtype, i, k;
    long cookie = 0l;
    int entries = 0;
    fd = open_dir(dirname);
    if (fd < 0) {
        return -1;
    }
    for (;;) {
        int parsed = 0;
        used = read_dir(fd, dirbuf, DIRBUF, cookie);
        if (used <= 0) {
            break;
        }
        off = 0;
        while (off + 24 <= used) {
            int *np = (int *)(dirbuf + off + 16);
            namlen = np[0];
            if (off + 24 + namlen > used) {
                break;  /* truncated entry: re-read from cookie */
            }
            dtype = (int)dirbuf[off + 20];
            for (i = 0; i < namlen && i < 63; i++) {
                name[i] = dirbuf[off + 24 + i];
            }
            name[i] = (char)0;
            /* entry path = dirname "/" name (skip for the root ".") */
            k = 0;
            if (dirname[0] != 46 || dirname[1] != 0) {
                for (i = 0; dirname[i] != 0; i++) {
                    path[k] = dirname[i];
                    k++;
                }
                path[k] = 47;
                k++;
            }
            for (i = 0; name[i] != 0; i++) {
                path[k] = name[i];
                k++;
            }
            path[k] = (char)0;
            __check = (__check ^ (unsigned int)namlen) * 16777619u;
            if (dtype == 4) {
                __files++;
                __bytes += stat_size(path);
            }
            if (dtype == 3) {
                __dirs++;
            }
            cookie = cookie + 1l;
            off = off + 24 + namlen;
            parsed = 1;
            entries++;
        }
        if (used < DIRBUF) {
            break;  /* final page */
        }
        if (!parsed) {
            break;  /* buffer cannot hold a single entry */
        }
    }
    close_fd(fd);
    return entries;
}

int main(void) {
    char sub[64];
    int pass, i, n;
    __files = 0;
    __dirs = 0;
    __bytes = 0l;
    __check = 2166136261u;
    for (pass = 0; pass < PASSES; pass++) {
        int before_dirs = __dirs;
        walk_dir(".");
        /* descend one level: subdirectories are named d0, d1, ... */
        n = __dirs - before_dirs;
        for (i = 0; i < n; i++) {
            sub[0] = 100;
            if (i < 10) {
                sub[1] = (char)(48 + i);
                sub[2] = (char)0;
            } else {
                sub[1] = (char)(48 + i / 10);
                sub[2] = (char)(48 + i % 10);
                sub[3] = (char)0;
            }
            walk_dir(sub);
        }
    }
    print_s("dirwalk_io files="); print_i(__files);
    print_s(" dirs="); print_i(__dirs);
    print_s(" bytes="); print_l(__bytes);
    print_s(" check="); print_x(__check);
    print_nl();
    return 0;
}
"""

_SHAPE = {"test": (2, 3), "small": (4, 8), "ref": (8, 16)}


def _files(size):
    n_dirs, n_files = _SHAPE[size]
    out = {"readme.txt": deterministic_text(160, seed=0x31)}
    for d in range(n_dirs):
        for f in range(n_files):
            out[f"d{d}/f{f:02d}.bin"] = deterministic_bytes(
                96 + 32 * ((d + f) % 5), seed=0x300 + d * 64 + f)
    return out


BENCHMARK = Benchmark(
    name="dirwalk_io",
    suite="io",
    domain="File I/O",
    description="Two-level directory walk (fd_readdir + filestat)",
    source=SOURCE,
    defines={
        "test": {"DIRBUF": "192", "PASSES": "1"},
        "small": {"DIRBUF": "192", "PASSES": "4"},
        "ref": {"DIRBUF": "192", "PASSES": "16"},
    },
    files=_files,
    traits=("integer", "file-input", "wasi-heavy", "io-bound"),
)
