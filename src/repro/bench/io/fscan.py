"""``fscan_io``: chunked sequential file scan.

The classic I/O-bound profile: stat the input, then read it in small
chunks and fold every byte into an FNV checksum.  Almost all modeled
work is ``fd_read`` shim cost — per-chunk guest arithmetic is a few
dozen instructions — so the engine's host-call dispatch price, not its
JIT quality, decides the runtime.
"""

from ..workload import Benchmark, deterministic_bytes

SOURCE = r"""
char buf[256];

int main(void) {
    unsigned int check = 2166136261u;
    long declared;
    int fd, n, i, reads = 0;
    long total = 0l;

    declared = stat_size("data/input.bin");
    fd = open_read("data/input.bin");
    if (fd < 0) {
        print_s("fscan_io open failed");
        print_nl();
        return 1;
    }
    for (;;) {
        n = read_bytes(fd, buf, CHUNK);
        if (n <= 0) {
            break;
        }
        reads++;
        total += (long)n;
        for (i = 0; i < n; i++) {
            check = (check ^ (unsigned int)(unsigned char)buf[i])
                    * 16777619u;
        }
    }
    close_fd(fd);

    print_s("fscan_io bytes="); print_l(total);
    print_s(" declared="); print_l(declared);
    print_s(" reads="); print_i(reads);
    print_s(" check="); print_x(check);
    print_nl();
    return 0;
}
"""

_SIZES = {"test": 2048, "small": 16384, "ref": 131072}


def _files(size):
    return {"data/input.bin": deterministic_bytes(_SIZES[size], seed=0x10)}


BENCHMARK = Benchmark(
    name="fscan_io",
    suite="io",
    domain="File I/O",
    description="Chunked sequential file scan (fd_read-dominated)",
    source=SOURCE,
    defines={
        "test": {"CHUNK": "64"},
        "small": {"CHUNK": "64"},
        "ref": {"CHUNK": "64"},
    },
    files=_files,
    traits=("integer", "file-input", "wasi-heavy", "io-bound"),
)
