"""``fcopy_io``: file copy lifecycle.

Copies the input in small chunks, stamps a header back over the copy
with ``fd_pwrite``, verifies spot offsets with ``fd_pread``, then
renames the staged copy into place and unlinks a scratch file — the
create/copy/rename/unlink lifecycle a log rotator or object store
compaction pays per segment.  Exercises the widest slice of the
preview1 surface of any WABench program.
"""

from ..workload import Benchmark, deterministic_bytes

SOURCE = r"""
char buf[256];
char hdr[8];

int main(void) {
    unsigned int check = 2166136261u;
    int fd_in, fd_out, fd, n, i, r;
    long total = 0l;
    long final_size;

    fd_in = open_read("src.bin");
    fd_out = open_write("stage.bin");
    if (fd_in < 0 || fd_out < 0) {
        print_s("fcopy_io open failed");
        print_nl();
        return 1;
    }
    for (;;) {
        n = read_bytes(fd_in, buf, CHUNK);
        if (n <= 0) {
            break;
        }
        write_bytes(fd_out, buf, n);
        total += (long)n;
    }
    close_fd(fd_in);

    /* stamp a magic header over the staged copy in place */
    for (i = 0; i < 8; i++) {
        hdr[i] = (char)(65 + i);
    }
    pwrite_bytes(fd_out, hdr, 8, 0l);
    close_fd(fd_out);

    /* spot-verify a few offsets without disturbing any cursor */
    fd = open_read("stage.bin");
    for (r = 0; r < VERIFY; r++) {
        long off = (total * (long)r) / (long)VERIFY;
        if (off > total - 16l) {
            off = total - 16l;
        }
        if (off < 0l) {
            off = 0l;
        }
        n = pread_bytes(fd, buf, 16, off);
        for (i = 0; i < n; i++) {
            check = (check ^ (unsigned int)(unsigned char)buf[i])
                    * 16777619u;
        }
    }
    close_fd(fd);

    /* scratch file: create, then remove */
    fd = open_write("scratch.tmp");
    write_bytes(fd, hdr, 8);
    close_fd(fd);
    unlink_file("scratch.tmp");

    rename_file("stage.bin", "out.bin");
    final_size = stat_size("out.bin");

    print_s("fcopy_io bytes="); print_l(total);
    print_s(" out="); print_l(final_size);
    print_s(" gone="); print_i(stat_type("scratch.tmp") < 0 ? 1 : 0);
    print_s(" check="); print_x(check);
    print_nl();
    return 0;
}
"""

_SIZES = {"test": 1024, "small": 8192, "ref": 65536}


def _files(size):
    return {"src.bin": deterministic_bytes(_SIZES[size], seed=0x20)}


BENCHMARK = Benchmark(
    name="fcopy_io",
    suite="io",
    domain="File I/O",
    description="Copy/stamp/verify/rename/unlink file lifecycle",
    source=SOURCE,
    defines={
        "test": {"CHUNK": "64", "VERIFY": "8"},
        "small": {"CHUNK": "64", "VERIFY": "32"},
        "ref": {"CHUNK": "64", "VERIFY": "128"},
    },
    files=_files,
    traits=("integer", "file-input", "wasi-heavy", "io-bound"),
)
