"""``clockrand_io``: clock and random syscall churn.

Tight loop over ``clock_time_get`` + ``random_get`` — the profile of a
token-bucket rate limiter or request-ID generator.  The modeled clock is
engine-dependent (it reads the cycle counter), so the program only
checks monotonicity and folds the *random* stream (deterministic and
engine-independent) into the printed checksum.
"""

from ..workload import Benchmark

SOURCE = r"""
char rbuf[32];

int main(void) {
    unsigned int check = 2166136261u;
    long last = 0l;
    int mono = 0;
    int round, i;
    for (round = 0; round < ROUNDS; round++) {
        long now = time_ns();
        if (now >= last) {
            mono++;
        }
        last = now;
        random_bytes(rbuf, 24);
        for (i = 0; i < 24; i++) {
            check = (check ^ (unsigned int)(unsigned char)rbuf[i])
                    * 16777619u;
        }
    }
    print_s("clockrand_io rounds="); print_i((int)ROUNDS);
    print_s(" mono="); print_i(mono);
    print_s(" check="); print_x(check);
    print_nl();
    return 0;
}
"""

BENCHMARK = Benchmark(
    name="clockrand_io",
    suite="io",
    domain="Host services",
    description="Clock/random syscall churn (clock_time_get + random_get)",
    source=SOURCE,
    defines={
        "test": {"ROUNDS": "48"},
        "small": {"ROUNDS": "384"},
        "ref": {"ROUNDS": "3072"},
    },
    traits=("integer", "wasi-heavy", "io-bound"),
)
