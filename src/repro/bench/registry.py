"""The WABench registry: all 50 benchmarks of paper Table 2."""

from __future__ import annotations

from typing import Dict, List

from .workload import Benchmark

from .jetstream2 import gcc_loops, hashset, quicksort, tsf
from .mibench import (adpcm, basicmath, bitcount, blowfish, crc32, jpeg,
                      rijndael, sha, stringsearch)
from .polybench import (adi, atax, bicg, cholesky, correlation, covariance,
                        deriche, doitgen, durbin, fdtd_2d, floyd_warshall,
                        gemm, gemver, gesummv, gramschmidt, heat_3d,
                        jacobi_1d, jacobi_2d, lu, ludcmp, mvt, nussinov,
                        seidel_2d, symm, syr2k, syrk, three_mm, trisolv,
                        trmm, two_mm)
from .apps import (bzip2, espeak, facedetection, gnuchess, mnist, snappy,
                   whitedb)

_MODULES = [
    # JetStream2 (rows 1-4)
    gcc_loops, hashset, quicksort, tsf,
    # MiBench (rows 5-13)
    basicmath, bitcount, jpeg, stringsearch, blowfish, rijndael, sha,
    adpcm, crc32,
    # PolyBench (rows 14-43), paper order
    correlation, covariance, gemm, gemver, gesummv, symm, syr2k, syrk,
    trmm, two_mm, three_mm, atax, bicg, doitgen, mvt, cholesky, durbin,
    gramschmidt, lu, ludcmp, trisolv, deriche, floyd_warshall, nussinov,
    adi, fdtd_2d, heat_3d, jacobi_1d, jacobi_2d, seidel_2d,
    # Whole applications (rows 44-50)
    bzip2, espeak, facedetection, gnuchess, mnist, snappy, whitedb,
]

ALL_BENCHMARKS: List[Benchmark] = [m.BENCHMARK for m in _MODULES]
BY_NAME: Dict[str, Benchmark] = {b.name: b for b in ALL_BENCHMARKS}

SUITES = ("jetstream2", "mibench", "polybench", "apps")

# The seven whole applications, in paper order.
APP_NAMES = ("bzip2", "espeak", "facedetection", "gnuchess", "mnist",
             "snappy", "whitedb")

# Service workloads for the repro.serve tier (suite "service") and the
# I/O-bound class (suite "io").  They are deliberately *not* part of
# ALL_BENCHMARKS: the paper's Table 2 suite stays exactly 50 programs,
# but `get()` resolves them so the harness can compile/run/cache them
# like any other benchmark.
from .io import IO_BENCHMARKS  # noqa: E402  (after _MODULES)
from .services import SERVICE_BENCHMARKS  # noqa: E402  (after _MODULES)

SERVICES_BY_NAME: Dict[str, Benchmark] = {b.name: b
                                          for b in SERVICE_BENCHMARKS}
IO_BY_NAME: Dict[str, Benchmark] = {b.name: b for b in IO_BENCHMARKS}
assert not set(SERVICES_BY_NAME) & set(BY_NAME), \
    "service workload names must not shadow WABench names"
assert not set(IO_BY_NAME) & (set(BY_NAME) | set(SERVICES_BY_NAME)), \
    "io workload names must not shadow WABench or service names"


def service_names() -> List[str]:
    return [b.name for b in SERVICE_BENCHMARKS]


def io_names() -> List[str]:
    return [b.name for b in IO_BENCHMARKS]


def get(name: str) -> Benchmark:
    bench = (BY_NAME.get(name) or SERVICES_BY_NAME.get(name) or
             IO_BY_NAME.get(name))
    if bench is None:
        raise KeyError(f"unknown benchmark {name!r}")
    return bench


def by_suite(suite: str) -> List[Benchmark]:
    if suite not in SUITES:
        raise KeyError(f"unknown suite {suite!r}")
    return [b for b in ALL_BENCHMARKS if b.suite == suite]


def names() -> List[str]:
    return [b.name for b in ALL_BENCHMARKS]
