"""WABench benchmark descriptors.

Each benchmark is a MiniC program plus per-size workload parameters
(``#define`` values) and optional synthetic input files.  Three size
classes mirror how benchmark suites ship inputs:

* ``test``  — seconds-scale in the model; used by the unit tests;
* ``small`` — the harness default; large enough that execution dominates
  noise but small enough that the full 50x6 sweep completes quickly;
* ``ref``   — a larger configuration for deeper runs.

``traits`` captures what the paper says about a program where it matters
for the experiments (e.g. facedetection: short-running but with a large
dynamic code footprint).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

SIZES = ("test", "small", "ref")

FileGen = Callable[[str], Dict[str, bytes]]


@dataclass(frozen=True)
class Benchmark:
    """One WABench program."""

    name: str
    suite: str                     # jetstream2 | mibench | polybench | apps
    domain: str
    description: str
    source: str
    defines: Dict[str, Dict[str, str]] = field(default_factory=dict)
    files: Optional[FileGen] = None
    traits: Tuple[str, ...] = ()

    def defines_for(self, size: str) -> Dict[str, str]:
        if size not in SIZES:
            raise KeyError(f"unknown workload size {size!r}")
        return dict(self.defines.get(size, {}))

    def files_for(self, size: str) -> Dict[str, bytes]:
        if self.files is None:
            return {}
        return self.files(size)


def deterministic_bytes(n: int, seed: int = 1) -> bytes:
    """Pseudo-random but compressible byte stream (xorshift + runs)."""
    out = bytearray()
    state = seed & 0xFFFFFFFF or 1
    while len(out) < n:
        state ^= (state << 13) & 0xFFFFFFFF
        state ^= state >> 17
        state ^= (state << 5) & 0xFFFFFFFF
        byte = state & 0xFF
        if state & 0x300 == 0:       # occasional runs, so RLE/LZ find wins
            out.extend(bytes([byte & 0x3F]) * (8 + (state >> 24 & 15)))
        else:
            out.append(byte & 0x7F)
    return bytes(out[:n])


def deterministic_text(n: int, seed: int = 7) -> bytes:
    """English-like filler text for the NLP / search benchmarks."""
    words = (b"the quick brown fox jumps over a lazy dog while many "
             b"standalone webassembly runtimes execute portable binary "
             b"code with near native speed and strong sandbox safety "
             b"compilers interpreters caches branches memory systems").split()
    out = bytearray()
    state = seed or 1
    while len(out) < n:
        state = (state * 1103515245 + 12345) & 0x7FFFFFFF
        out += words[state % len(words)]
        out += b" "
        if state % 11 == 0:
            out += b"\n"
    return bytes(out[:n])
