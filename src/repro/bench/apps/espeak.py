"""Whole application `espeak`: compact text-to-speech synthesizer.

The eSpeak pipeline end to end: text normalization and tokenization,
rule-based letter-to-phoneme translation (a reduced English ruleset),
prosody assignment (duration/pitch contours per phoneme), and formant
synthesis — each phoneme rendered as a sum of two formant sine waves
plus fricative noise, exactly the Klatt-style source-filter structure
eSpeak uses.  Input is a text file; output is a checksum over the
synthesized PCM samples plus phoneme statistics.
"""

from ..workload import Benchmark, deterministic_text

SOURCE = r"""
#define MAX_PHONEMES 8192
#define SAMPLE_RATE 8000.0

/* phoneme table: id, two formant frequencies, voiced flag, base duration */
double formant1[40];
double formant2[40];
int voiced_flag[40];
int base_duration[40];

int phoneme_stream[MAX_PHONEMES];
int phoneme_count = 0;

char text_buf[TEXT_BYTES + 1];

void init_phonemes(void) {
    int i;
    /* vowel region 0..9 */
    for (i = 0; i < 10; i++) {
        formant1[i] = 300.0 + 55.0 * (double)i;
        formant2[i] = 2300.0 - 120.0 * (double)i;
        voiced_flag[i] = 1;
        base_duration[i] = 90 + 8 * (i % 4);
    }
    /* voiced consonants 10..24 */
    for (i = 10; i < 25; i++) {
        formant1[i] = 200.0 + 30.0 * (double)(i - 10);
        formant2[i] = 1500.0 + 60.0 * (double)(i - 10);
        voiced_flag[i] = 1;
        base_duration[i] = 55;
    }
    /* unvoiced consonants 25..39 */
    for (i = 25; i < 40; i++) {
        formant1[i] = 900.0 + 100.0 * (double)(i - 25);
        formant2[i] = 3000.0;
        voiced_flag[i] = 0;
        base_duration[i] = 45;
    }
}

int is_vowel_letter(int c) {
    return c == 'a' || c == 'e' || c == 'i' || c == 'o' || c == 'u';
}

void emit_phoneme(int p) {
    if (phoneme_count < MAX_PHONEMES)
        phoneme_stream[phoneme_count++] = p;
}

/* letter-to-sound rules: digraph handling + context-dependent vowels,
   a reduced version of espeak's English ruleset */
void translate_word(char *w, int len) {
    int i = 0;
    while (i < len) {
        int c = (int)w[i];
        int next = i + 1 < len ? (int)w[i + 1] : 0;
        if (c == 't' && next == 'h') {
            emit_phoneme(12);       /* TH */
            i += 2;
        } else if (c == 's' && next == 'h') {
            emit_phoneme(27);       /* SH */
            i += 2;
        } else if (c == 'c' && next == 'h') {
            emit_phoneme(28);       /* CH */
            i += 2;
        } else if (c == 'q') {
            emit_phoneme(30);       /* K */
            emit_phoneme(14);       /* W */
            i += next == 'u' ? 2 : 1;
        } else if (is_vowel_letter(c)) {
            int v = c == 'a' ? 0 : c == 'e' ? 2 : c == 'i' ? 4
                  : c == 'o' ? 6 : 8;
            /* long vowel before single consonant + e (magic e) */
            if (i + 2 < len && !is_vowel_letter(next)
                    && w[i + 2] == 'e')
                v++;
            emit_phoneme(v);
            i++;
        } else if (c >= 'a' && c <= 'z') {
            int base = (c - 'a') % 15;
            emit_phoneme(c % 2 == 0 ? 10 + base : 25 + base);
            i++;
        } else {
            i++;  /* drop punctuation inside words */
        }
    }
    emit_phoneme(39);  /* word-boundary pause */
}

void text_to_phonemes(char *text, int n) {
    int i = 0;
    char word[48];
    while (i < n) {
        int wlen = 0;
        while (i < n && ((text[i] >= 'a' && text[i] <= 'z')
                         || (text[i] >= 'A' && text[i] <= 'Z'))) {
            char c = text[i];
            if (c >= 'A' && c <= 'Z') c = (char)(c - 'A' + 'a');
            if (wlen < 47) word[wlen++] = c;
            i++;
        }
        if (wlen > 0) translate_word(word, wlen);
        while (i < n && !((text[i] >= 'a' && text[i] <= 'z')
                          || (text[i] >= 'A' && text[i] <= 'Z')))
            i++;
    }
}

/* formant synthesis: each phoneme renders duration*8 samples */
unsigned int noise_state = 0x7E57u;

unsigned int synth_phoneme(int p, double pitch, unsigned int check) {
    int samples = base_duration[p] * SAMPLES_PER_MS / 10;
    double t = 0.0;
    double dt = 1.0 / SAMPLE_RATE;
    int k;
    for (k = 0; k < samples; k++) {
        double v = 0.0;
        if (voiced_flag[p]) {
            v = 0.5 * sin(6.283185307179586 * formant1[p] * t)
              + 0.3 * sin(6.283185307179586 * formant2[p] * t)
              + 0.15 * sin(6.283185307179586 * pitch * t);
        } else {
            noise_state = noise_state * 1103515245u + 12345u;
            v = (double)((noise_state >> 16) & 1023u) / 512.0 - 1.0;
            v *= 0.4;
        }
        {
            int sample = (int)(v * 12000.0);
            check = check * 31u + (unsigned int)(sample & 0xFFFF);
        }
        t += dt;
    }
    return check;
}

int main(void) {
    int fd = open_read("speech.txt");
    int n;
    int i;
    unsigned int check = 2166136261u;
    int voiced = 0;
    double pitch = 110.0;
    if (fd < 0) { print_s("no input"); print_nl(); return 1; }
    n = read_bytes(fd, text_buf, TEXT_BYTES);
    close_fd(fd);
    init_phonemes();
    text_to_phonemes(text_buf, n);
    for (i = 0; i < phoneme_count; i++) {
        int p = phoneme_stream[i];
        /* declining pitch contour across each breath group */
        pitch = 110.0 - (double)(i % 40) * 0.8;
        check = synth_phoneme(p, pitch, check);
        voiced += voiced_flag[p];
    }
    print_s("espeak phonemes="); print_i(phoneme_count);
    print_s(" voiced="); print_i(voiced);
    print_s(" check="); print_x(check);
    print_nl();
    return 0;
}
"""

_BYTES = {"test": 400, "small": 2200, "ref": 20000}


def _files(size):
    return {"speech.txt": deterministic_text(_BYTES[size], seed=0xE5)}


BENCHMARK = Benchmark(
    name="espeak",
    suite="apps",
    domain="NLP",
    description="Text-to-Speech synthesizer",
    source=SOURCE,
    defines={
        "test": {"TEXT_BYTES": "400", "SAMPLES_PER_MS": "1"},
        "small": {"TEXT_BYTES": "2200", "SAMPLES_PER_MS": "1"},
        "ref": {"TEXT_BYTES": "20000", "SAMPLES_PER_MS": "2"},
    },
    files=_files,
    traits=("floating-point", "file-input", "libm-heavy"),
)
