"""Whole application `snappy`: Google's fast LZ77-family compressor.

Implements the snappy format's actual scheme: a 16-bit hash table over
4-byte sequences finds back-references; output is a stream of literal
runs and (offset, length) copies with snappy's varint length header;
decompression replays tags.  The paper's workload compresses 512 MB of
in-memory data — here the buffer is scaled down but, as in the paper,
allocated and *touched* in full, so the memory-overhead ratios behave the
same way (runtime overhead is small next to application data).
"""

from ..workload import Benchmark

SOURCE = r"""
unsigned char *src_buf;
unsigned char *dst_buf;
unsigned char *verify_buf;
int hash_table[1 << HASH_BITS];

unsigned int load32(unsigned char *p) {
    return (unsigned int)p[0] | ((unsigned int)p[1] << 8)
         | ((unsigned int)p[2] << 16) | ((unsigned int)p[3] << 24);
}

unsigned int snappy_hash(unsigned int v) {
    return (v * 0x1e35a7bdu) >> (32 - HASH_BITS);
}

int emit_varint(unsigned char *dst, int o, unsigned int v) {
    while (v >= 128u) {
        dst[o++] = (unsigned char)((v & 127u) | 128u);
        v >>= 7;
    }
    dst[o++] = (unsigned char)v;
    return o;
}

/* Emit a literal run: tag (len-1)<<2 | 0, with a 1-byte extension for
   runs of 61..256 (longer runs are split, as the format permits). */
int emit_literal(unsigned char *dst, int o, unsigned char *lit, int len) {
    int done = 0;
    while (done < len) {
        int chunk = len - done;
        int i;
        if (chunk > 256) chunk = 256;
        if (chunk - 1 < 60) {
            dst[o++] = (unsigned char)((chunk - 1) << 2);
        } else {
            dst[o++] = (unsigned char)(60 << 2);
            dst[o++] = (unsigned char)(chunk - 1);
        }
        for (i = 0; i < chunk; i++) dst[o++] = lit[done + i];
        done += chunk;
    }
    return o;
}

/* Emit a copy: 2-byte-offset form, tag 2. */
int emit_copy(unsigned char *dst, int o, int offset, int len) {
    while (len >= 4) {
        int chunk = len > 64 ? 64 : len;
        dst[o++] = (unsigned char)(((chunk - 1) << 2) | 2);
        dst[o++] = (unsigned char)(offset & 255);
        dst[o++] = (unsigned char)(offset >> 8);
        len -= chunk;
    }
    return o;
}

int snappy_compress(unsigned char *src, int n, unsigned char *dst) {
    int o = 0;
    int pos = 0;
    int lit_start = 0;
    int i;
    o = emit_varint(dst, o, (unsigned int)n);
    for (i = 0; i < (1 << HASH_BITS); i++) hash_table[i] = -1;
    while (pos + 4 <= n) {
        unsigned int h = snappy_hash(load32(src + pos));
        int cand = hash_table[h];
        hash_table[h] = pos;
        if (cand >= 0 && pos - cand < 65536
                && load32(src + cand) == load32(src + pos)) {
            int len = 4;
            while (pos + len < n && src[cand + len] == src[pos + len]
                   && len < 255)
                len++;
            if (pos > lit_start)
                o = emit_literal(dst, o, src + lit_start, pos - lit_start);
            o = emit_copy(dst, o, pos - cand, len);
            pos += len;
            lit_start = pos;
        } else {
            pos++;
        }
    }
    if (n > lit_start)
        o = emit_literal(dst, o, src + lit_start, n - lit_start);
    return o;
}

int snappy_decompress(unsigned char *src, int n, unsigned char *dst) {
    int i = 0;
    int o = 0;
    unsigned int expect = 0u;
    int shift = 0;
    while (1) {
        unsigned char b = src[i++];
        expect |= ((unsigned int)b & 127u) << shift;
        if (!(b & 128u)) break;
        shift += 7;
    }
    while (i < n) {
        int tag = (int)src[i++];
        int kind = tag & 3;
        if (kind == 0) {
            int len = (tag >> 2) + 1;
            int k;
            if (len == 61) len = (int)src[i++] + 1;
            for (k = 0; k < len; k++) dst[o++] = src[i++];
        } else {
            int len = ((tag >> 2) & 63) + 1;
            int offset = (int)src[i] | ((int)src[i + 1] << 8);
            int k;
            i += 2;
            for (k = 0; k < len; k++) {
                dst[o] = dst[o - offset];
                o++;
            }
        }
    }
    if ((unsigned int)o != expect) return -1;
    return o;
}

void fill_data(unsigned char *buf, int n) {
    unsigned int state = SNAPPY_SEED;
    int i = 0;
    while (i < n) {
        state = state * 1664525u + 1013904223u;
        if ((state & 0xF00u) == 0u && i > 64) {
            /* repeat an earlier window: gives LZ matches */
            int back = 16 + (int)(state % 48u);
            int len = 8 + (int)((state >> 8) % 40u);
            int k;
            if (len > n - i) len = n - i;
            for (k = 0; k < len; k++) {
                buf[i] = buf[i - back];
                i++;
            }
        } else {
            buf[i++] = (unsigned char)((state >> 16) & 63u) + 32;
        }
    }
}

int main(void) {
    int n = DATA_BYTES;
    int comp, back, round;
    unsigned int check = 0u;
    src_buf = (unsigned char *)malloc((unsigned int)n);
    dst_buf = (unsigned char *)malloc((unsigned int)(n + n / 4 + 64));
    verify_buf = (unsigned char *)malloc((unsigned int)n);
    fill_data(src_buf, n);
    comp = 0;
    for (round = 0; round < ROUNDS; round++) {
        comp = snappy_compress(src_buf, n, dst_buf);
        back = snappy_decompress(dst_buf, comp, verify_buf);
        if (back != n || memcmp((void *)src_buf, (void *)verify_buf,
                                (unsigned int)n) != 0) {
            print_s("snappy roundtrip FAILED");
            print_nl();
            return 1;
        }
    }
    {
        int i;
        for (i = 0; i < comp; i += 17)
            check = check * 31u + (unsigned int)dst_buf[i];
    }
    print_s("snappy in="); print_i(n);
    print_s(" out="); print_i(comp);
    print_s(" ratio_pct="); print_i(comp * 100 / n);
    print_s(" check="); print_x(check);
    print_nl();
    return 0;
}
"""

BENCHMARK = Benchmark(
    name="snappy",
    suite="apps",
    domain="Big data processing",
    description="Data compression/decompression library",
    source=SOURCE,
    defines={
        "test": {"DATA_BYTES": "4096", "ROUNDS": "1", "HASH_BITS": "10",
                 "SNAPPY_SEED": "0x51ABu"},
        "small": {"DATA_BYTES": "49152", "ROUNDS": "1", "HASH_BITS": "12",
                  "SNAPPY_SEED": "0x51ABu"},
        "ref": {"DATA_BYTES": "524288", "ROUNDS": "2", "HASH_BITS": "14",
                "SNAPPY_SEED": "0x51ABu"},
    },
    traits=("memory-heavy", "byte-oriented"),
)
