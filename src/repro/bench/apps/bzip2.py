"""Whole application `bzip2`: block-sorting file compressor.

The genuine bzip2 pipeline over an input file, block by block:
run-length pre-pass, Burrows-Wheeler transform (suffix sorting),
move-to-front coding, RLE2 of zero runs, and a byte-frequency order-0
entropy stage standing in for the Huffman coder (same data movement, no
bit-level packing), followed by the full inverse pipeline and a
roundtrip check.  The paper's workload (compressing a 120 MB file)
is scaled to the model's time budget; the per-byte work is the same.
"""

from ..workload import Benchmark, deterministic_bytes

SOURCE = r"""
unsigned char block[BLOCK_SIZE];
unsigned char rle_buf[BLOCK_SIZE * 2];
unsigned char bwt_buf[BLOCK_SIZE * 2];
unsigned char mtf_buf[BLOCK_SIZE * 2];
unsigned char out_buf[BLOCK_SIZE * 2 + 64];
unsigned char dec_buf[BLOCK_SIZE * 2];
int rotations[BLOCK_SIZE * 2];
int tmp_rot[BLOCK_SIZE * 2];

/* ---- RLE1: collapse runs of 4+ identical bytes (bzip2's first stage) */
int rle1_encode(unsigned char *src, int n, unsigned char *dst) {
    int i = 0;
    int o = 0;
    while (i < n) {
        int run = 1;
        while (i + run < n && run < 255 + 4 && src[i + run] == src[i])
            run++;
        if (run >= 4) {
            dst[o++] = src[i]; dst[o++] = src[i];
            dst[o++] = src[i]; dst[o++] = src[i];
            dst[o++] = (unsigned char)(run - 4);
            i += run;
        } else {
            int k;
            for (k = 0; k < run; k++) dst[o++] = src[i + k];
            i += run;
        }
    }
    return o;
}

int rle1_decode(unsigned char *src, int n, unsigned char *dst) {
    int i = 0;
    int o = 0;
    while (i < n) {
        if (i + 3 < n && src[i] == src[i + 1] && src[i] == src[i + 2]
                && src[i] == src[i + 3]) {
            int count = 4 + (int)src[i + 4];
            int k;
            for (k = 0; k < count; k++) dst[o++] = src[i];
            i += 5;
        } else {
            dst[o++] = src[i++];
        }
    }
    return o;
}

/* ---- BWT via rotation sorting (bzip2's main sort, simplified to a
   comparison sort over rotation indices) */
int bwt_n;
unsigned char *bwt_src;

int rot_compare(int a, int b) {
    int i;
    for (i = 0; i < bwt_n; i++) {
        int ca = (int)bwt_src[(a + i) % bwt_n];
        int cb = (int)bwt_src[(b + i) % bwt_n];
        if (ca != cb) return ca - cb;
    }
    return a - b;
}

void rot_merge_sort(int lo, int hi) {
    int mid, i, j, k;
    if (hi - lo < 2) return;
    mid = (lo + hi) / 2;
    rot_merge_sort(lo, mid);
    rot_merge_sort(mid, hi);
    i = lo; j = mid; k = lo;
    while (i < mid && j < hi) {
        if (rot_compare(rotations[i], rotations[j]) <= 0)
            tmp_rot[k++] = rotations[i++];
        else
            tmp_rot[k++] = rotations[j++];
    }
    while (i < mid) tmp_rot[k++] = rotations[i++];
    while (j < hi) tmp_rot[k++] = rotations[j++];
    for (i = lo; i < hi; i++) rotations[i] = tmp_rot[i];
}

int bwt_encode(unsigned char *src, int n, unsigned char *dst) {
    int i;
    int primary = -1;
    bwt_n = n;
    bwt_src = src;
    for (i = 0; i < n; i++) rotations[i] = i;
    rot_merge_sort(0, n);
    for (i = 0; i < n; i++) {
        int rot = rotations[i];
        dst[i] = src[(rot + n - 1) % n];
        if (rot == 0) primary = i;
    }
    return primary;
}

int count_tbl[256];
int cum_tbl[257];
int next_link[BLOCK_SIZE * 2];

void bwt_decode(unsigned char *last_col, int n, int primary,
                unsigned char *dst) {
    int i;
    for (i = 0; i < 256; i++) count_tbl[i] = 0;
    for (i = 0; i < n; i++) count_tbl[(int)last_col[i]]++;
    cum_tbl[0] = 0;
    for (i = 0; i < 256; i++) cum_tbl[i + 1] = cum_tbl[i] + count_tbl[i];
    for (i = 0; i < 256; i++) count_tbl[i] = 0;
    for (i = 0; i < n; i++) {
        int c = (int)last_col[i];
        next_link[cum_tbl[c] + count_tbl[c]] = i;
        count_tbl[c]++;
    }
    {
        int p = next_link[primary];
        for (i = 0; i < n; i++) {
            dst[i] = last_col[p];
            p = next_link[p];
        }
    }
}

/* ---- MTF ---- */
unsigned char mtf_alphabet[256];

void mtf_init(void) {
    int i;
    for (i = 0; i < 256; i++) mtf_alphabet[i] = (unsigned char)i;
}

void mtf_encode(unsigned char *src, int n, unsigned char *dst) {
    int i, j;
    mtf_init();
    for (i = 0; i < n; i++) {
        unsigned char c = src[i];
        for (j = 0; mtf_alphabet[j] != c; j++) {}
        dst[i] = (unsigned char)j;
        while (j > 0) {
            mtf_alphabet[j] = mtf_alphabet[j - 1];
            j--;
        }
        mtf_alphabet[0] = c;
    }
}

void mtf_decode(unsigned char *src, int n, unsigned char *dst) {
    int i, j;
    mtf_init();
    for (i = 0; i < n; i++) {
        int idx = (int)src[i];
        unsigned char c = mtf_alphabet[idx];
        dst[i] = c;
        for (j = idx; j > 0; j--)
            mtf_alphabet[j] = mtf_alphabet[j - 1];
        mtf_alphabet[0] = c;
    }
}

/* ---- order-0 frequency stage (Huffman-coder stand-in: produces the
   code-length cost the entropy coder would emit) ---- */
long entropy_cost_bits(unsigned char *src, int n) {
    int freq[256];
    int i;
    long bits = 0l;
    for (i = 0; i < 256; i++) freq[i] = 0;
    for (i = 0; i < n; i++) freq[(int)src[i]]++;
    for (i = 0; i < 256; i++) {
        if (freq[i] > 0) {
            /* integer code length ~ ceil(log2(n / freq)) + 1 */
            int len = 1;
            int ratio = n / freq[i];
            while (ratio > 1) { ratio >>= 1; len++; }
            bits += (long)freq[i] * (long)len;
        }
    }
    return bits;
}

int main(void) {
    int fd = open_read("input.dat");
    long in_total = 0l;
    long out_bits = 0l;
    unsigned int check = 2166136261u;
    int n;
    if (fd < 0) { print_s("no input"); print_nl(); return 1; }
    while ((n = read_bytes(fd, (char *)block, BLOCK_SIZE)) > 0) {
        int rle_n, primary, i;
        in_total += (long)n;
        rle_n = rle1_encode(block, n, rle_buf);
        primary = bwt_encode(rle_buf, rle_n, bwt_buf);
        mtf_encode(bwt_buf, rle_n, mtf_buf);
        out_bits += entropy_cost_bits(mtf_buf, rle_n) + 48l;
        /* inverse pipeline: verify perfect reconstruction */
        mtf_decode(mtf_buf, rle_n, out_buf);
        bwt_decode(out_buf, rle_n, primary, dec_buf);
        {
            int back = rle1_decode(dec_buf, rle_n, out_buf);
            if (back != n || memcmp((void *)out_buf, (void *)block,
                                    (unsigned int)n) != 0) {
                print_s("bzip2 roundtrip FAILED");
                print_nl();
                return 1;
            }
        }
        for (i = 0; i < rle_n; i++)
            check = (check ^ (unsigned int)mtf_buf[i]) * 16777619u;
    }
    close_fd(fd);
    print_s("bzip2 in="); print_l(in_total);
    print_s(" out_bytes="); print_l(out_bits / 8l);
    print_s(" check="); print_x(check);
    print_nl();
    return 0;
}
"""

_BYTES = {"test": 2048, "small": 12288, "ref": 98304}


def _files(size):
    return {"input.dat": deterministic_bytes(_BYTES[size], seed=0xB21)}


BENCHMARK = Benchmark(
    name="bzip2",
    suite="apps",
    domain="File management",
    description="File compression/decompression",
    source=SOURCE,
    defines={
        "test": {"BLOCK_SIZE": "512"},
        "small": {"BLOCK_SIZE": "1024"},
        "ref": {"BLOCK_SIZE": "4096"},
    },
    files=_files,
    traits=("file-input", "memory-heavy"),
)
