"""Whole applications from diverse domains (paper Table 2, rows 44-50)."""
