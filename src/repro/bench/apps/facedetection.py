"""Whole application `facedetection`: CNN face detector (libfacedetection).

Sliding-window CNN over a synthetic grayscale image: integral-image
normalization, two convolution banks, 2x2 max-pooling, and a dense
scoring head, with non-maximum suppression over window scores.

Like the real libfacedetection network, the convolution banks are fully
unrolled per output channel with constant weights — giving the benchmark
the paper's signature profile: a *large dynamic code footprint* with a
*short running time* (the combination behind WAVM's 14.19x AOT speedup
and its extreme relative branch-miss/compile numbers).  The per-channel
functions are generated with distinct fixed-point weights, so the code
really is that big and really all executes.
"""

from ..workload import Benchmark

_CHANNELS = 8


def _conv_function(bank: int, ch: int) -> str:
    """One unrolled 3x3 conv channel with distinct constant weights."""
    seed = (bank * 131 + ch * 17 + 7) & 0xFFFF
    weights = []
    state = seed or 1
    for _ in range(9):
        state = (state * 25173 + 13849) & 0xFFFF
        weights.append((state % 15) - 7)
    state = (state * 25173 + 13849) & 0xFFFF
    bias = (state % 9) - 4
    src = "img_norm" if bank == 0 else f"feat{(ch * 3) % _CHANNELS}"
    w = weights
    return f"""
int conv{bank}_{ch}(int y, int x) {{
    int acc = {bias};
    acc += {w[0]} * (int){src}[(y - 1) * GRID + (x - 1)];
    acc += {w[1]} * (int){src}[(y - 1) * GRID + x];
    acc += {w[2]} * (int){src}[(y - 1) * GRID + (x + 1)];
    acc += {w[3]} * (int){src}[y * GRID + (x - 1)];
    acc += {w[4]} * (int){src}[y * GRID + x];
    acc += {w[5]} * (int){src}[y * GRID + (x + 1)];
    acc += {w[6]} * (int){src}[(y + 1) * GRID + (x - 1)];
    acc += {w[7]} * (int){src}[(y + 1) * GRID + x];
    acc += {w[8]} * (int){src}[(y + 1) * GRID + (x + 1)];
    if (acc < 0) acc = 0;              /* ReLU */
    if (acc > 4095) acc = 4095;
    return acc >> 3;
}}
"""


_CONV_BANK0 = "".join(_conv_function(0, ch) for ch in range(_CHANNELS))
_CONV_BANK1 = "".join(_conv_function(1, ch) for ch in range(_CHANNELS))

_FEAT_DECLS = "\n".join(
    f"unsigned char feat{ch}[GRID * GRID];" for ch in range(_CHANNELS))

_BANK0_APPLY = "\n".join(
    f"            feat{ch}[y * GRID + x] = (unsigned char)conv0_{ch}(y, x);"
    for ch in range(_CHANNELS))

_BANK1_SUM = "\n".join(
    f"            acc += conv1_{ch}(y, x) * {3 + ch};"
    for ch in range(_CHANNELS))

SOURCE = r"""
unsigned char img[GRID * GRID];
unsigned char img_norm[GRID * GRID];
int integral[(GRID + 1) * (GRID + 1)];
int score_map[GRID * GRID];
""" + _FEAT_DECLS + r"""

void make_image(void) {
    unsigned int state = 0xFACEu;
    int y, x;
    for (y = 0; y < GRID; y++)
        for (x = 0; x < GRID; x++) {
            int v = 90 + ((x * 5 + y * 3) % 60);
            state = state * 1664525u + 1013904223u;
            v += (int)(state >> 28) - 8;
            img[y * GRID + x] = (unsigned char)v;
        }
    /* plant face-like blobs: dark band (eyes) over light band (cheeks) */
    {
        int f;
        for (f = 0; f < NFACES; f++) {
            int cy = 6 + (f * 37) % (GRID - 14);
            int cx = 6 + (f * 53) % (GRID - 14);
            int dy, dx;
            for (dy = 0; dy < 3; dy++)
                for (dx = 0; dx < 8; dx++)
                    img[(cy + dy) * GRID + cx + dx] = (unsigned char)40;
            for (dy = 3; dy < 8; dy++)
                for (dx = 0; dx < 8; dx++)
                    img[(cy + dy) * GRID + cx + dx] = (unsigned char)200;
        }
    }
}

/* integral image for window normalization (the Viola-Jones front end
   libfacedetection keeps for candidate windows) */
void build_integral(void) {
    int y, x;
    for (x = 0; x <= GRID; x++) integral[x] = 0;
    for (y = 1; y <= GRID; y++) {
        int row = 0;
        integral[y * (GRID + 1)] = 0;
        for (x = 1; x <= GRID; x++) {
            row += (int)img[(y - 1) * GRID + (x - 1)];
            integral[y * (GRID + 1) + x] =
                integral[(y - 1) * (GRID + 1) + x] + row;
        }
    }
}

int window_mean(int y, int x, int h, int w) {
    int s = integral[(y + h) * (GRID + 1) + (x + w)]
          - integral[y * (GRID + 1) + (x + w)]
          - integral[(y + h) * (GRID + 1) + x]
          + integral[y * (GRID + 1) + x];
    return s / (h * w);
}

void normalize_image(void) {
    int y, x;
    int mean = window_mean(0, 0, GRID, GRID);
    for (y = 0; y < GRID; y++)
        for (x = 0; x < GRID; x++) {
            int v = (int)img[y * GRID + x] - mean + 128;
            if (v < 0) v = 0;
            if (v > 255) v = 255;
            img_norm[y * GRID + x] = (unsigned char)v;
        }
}
""" + _CONV_BANK0 + _CONV_BANK1 + r"""

void run_network(void) {
    int y, x;
    for (y = 1; y < GRID - 1; y++)
        for (x = 1; x < GRID - 1; x++) {
""" + _BANK0_APPLY + r"""
        }
    for (y = 2; y < GRID - 2; y++)
        for (x = 2; x < GRID - 2; x++) {
            int acc = 0;
""" + _BANK1_SUM + r"""
            score_map[y * GRID + x] = acc;
        }
}

/* 2x2 max pooling + thresholded non-maximum suppression */
int detect(void) {
    int detections = 0;
    int y, x;
    for (y = 4; y < GRID - 4; y += 2)
        for (x = 4; x < GRID - 4; x += 2) {
            int best = score_map[y * GRID + x];
            int b2 = score_map[y * GRID + x + 1];
            int b3 = score_map[(y + 1) * GRID + x];
            int b4 = score_map[(y + 1) * GRID + x + 1];
            if (b2 > best) best = b2;
            if (b3 > best) best = b3;
            if (b4 > best) best = b4;
            if (best > THRESHOLD) {
                /* suppress if a stronger neighbour window exists */
                int stronger = 0;
                int dy, dx;
                for (dy = -2; dy <= 2 && !stronger; dy++)
                    for (dx = -2; dx <= 2; dx++) {
                        int ny = y + dy;
                        int nx = x + dx;
                        if (ny >= 0 && nx >= 0 && ny < GRID && nx < GRID
                                && score_map[ny * GRID + nx] > best) {
                            stronger = 1;
                            break;
                        }
                    }
                if (!stronger) detections++;
            }
        }
    return detections;
}

int main(void) {
    unsigned int check = 0u;
    int found;
    int y, x;
    make_image();
    build_integral();
    normalize_image();
    run_network();
    found = detect();
    for (y = 4; y < GRID - 4; y += 3)
        for (x = 4; x < GRID - 4; x += 3)
            check = check * 31u + (unsigned int)score_map[y * GRID + x];
    print_s("facedetection detections="); print_i(found);
    print_s(" check="); print_x(check);
    print_nl();
    return 0;
}
"""

BENCHMARK = Benchmark(
    name="facedetection",
    suite="apps",
    domain="Computer vision",
    description="Detecting human faces in images",
    source=SOURCE,
    defines={
        "test": {"GRID": "24", "NFACES": "2", "THRESHOLD": "5200"},
        "small": {"GRID": "40", "NFACES": "4", "THRESHOLD": "5200"},
        "ref": {"GRID": "96", "NFACES": "9", "THRESHOLD": "5200"},
    },
    traits=("short-running", "large-code", "integer"),
)
