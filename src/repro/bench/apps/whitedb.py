"""Whole application `whitedb`: a lightweight in-memory NoSQL database.

Follows WhiteDB's architecture: one big contiguous database arena
(``calloc``-ed up front), records as fixed-slot field arrays inside the
arena, typed field encodings (int / double-as-scaled / short string
packed into the arena's string pool), a singly-linked record list, and a
simple T-tree-style sorted index for one column.  The workload runs the
paper's "set of database operations": bulk insert, field updates, index
(re)build, point and range queries, and deletes.

This is the memory-overhead oddity benchmark: the arena is sized far
beyond what the workload touches, so demand-paged runtimes show *less*
resident memory than the native baseline (paper Section 5).
"""

from ..workload import Benchmark

SOURCE = r"""
#define REC_FIELDS 8
#define REC_WORDS (REC_FIELDS + 1)   /* +1 for the next-record link */

/* ---- the database arena ------------------------------------------------ */
int *db_arena;
int db_arena_words;
int db_next_word;        /* bump pointer, in words */
int db_first_record;     /* word offset of first record, 0 = none */
int db_last_record;
int db_record_count;

/* string pool inside the arena, growing from the top down */
int db_string_top;

void db_create(int bytes) {
    db_arena_words = bytes / 4;
    db_arena = (int *)calloc((unsigned int)db_arena_words, 4u);
    db_next_word = 1;              /* word 0 reserved (NULL offset) */
    db_string_top = db_arena_words;
    db_first_record = 0;
    db_last_record = 0;
    db_record_count = 0;
}

/* ---- records ------------------------------------------------------------ */

int db_create_record(void) {
    int rec = db_next_word;
    db_next_word += REC_WORDS;
    db_arena[rec] = 0;  /* next link */
    if (db_last_record)
        db_arena[db_last_record] = rec;
    else
        db_first_record = rec;
    db_last_record = rec;
    db_record_count++;
    return rec;
}

/* field encodings, as in whitedb: low 2 bits are the type tag */
#define ENC_INT 0
#define ENC_FIXED 1
#define ENC_STR 2

int encode_int(int v) { return (v << 2) | ENC_INT; }
int decode_int(int e) { return e >> 2; }

int encode_fixed(double d) {
    return (((int)(d * 16.0)) << 2) | ENC_FIXED;
}
double decode_fixed(int e) { return (double)(e >> 2) / 16.0; }

int encode_str(char *s) {
    int len = (int)strlen(s);
    int words = (len + 1 + 3) / 4;
    db_string_top -= words + 1;
    db_arena[db_string_top] = len;
    memcpy((void *)&db_arena[db_string_top + 1], (void *)s,
           (unsigned int)(len + 1));
    return (db_string_top << 2) | ENC_STR;
}

char *decode_str(int e) {
    return (char *)&db_arena[(e >> 2) + 1];
}

void db_set_field(int rec, int field, int enc) {
    db_arena[rec + 1 + field] = enc;
}

int db_get_field(int rec, int field) {
    return db_arena[rec + 1 + field];
}

int db_next(int rec) { return db_arena[rec]; }

/* ---- sorted index over field 0 (int key): simple binary-search array,
   whitedb's T-tree reduced to its array core ---- */
int index_recs[MAX_RECORDS];
int index_size = 0;

int index_key(int rec) { return decode_int(db_get_field(rec, 0)); }

void index_build(void) {
    int rec = db_first_record;
    int i, j;
    index_size = 0;
    while (rec) {
        index_recs[index_size++] = rec;
        rec = db_next(rec);
    }
    /* insertion sort by key (records arrive mostly ordered) */
    for (i = 1; i < index_size; i++) {
        int r = index_recs[i];
        int key = index_key(r);
        j = i - 1;
        while (j >= 0 && index_key(index_recs[j]) > key) {
            index_recs[j + 1] = index_recs[j];
            j--;
        }
        index_recs[j + 1] = r;
    }
}

int index_lookup(int key) {
    int lo = 0;
    int hi = index_size - 1;
    while (lo <= hi) {
        int mid = (lo + hi) / 2;
        int k = index_key(index_recs[mid]);
        if (k == key) return index_recs[mid];
        if (k < key) lo = mid + 1;
        else hi = mid - 1;
    }
    return 0;
}

int index_range_count(int lo_key, int hi_key) {
    int count = 0;
    int i;
    for (i = 0; i < index_size; i++) {
        int k = index_key(index_recs[i]);
        if (k >= lo_key && k <= hi_key) count++;
        if (k > hi_key) break;
    }
    return count;
}

char name_buf[32];

void make_name(int id) {
    name_buf[0] = (char)('a' + id % 26);
    name_buf[1] = (char)('a' + (id / 26) % 26);
    name_buf[2] = (char)('0' + id % 10);
    name_buf[3] = 0;
}

int main(void) {
    unsigned int state = 0xDBDBu;
    unsigned int check = 2166136261u;
    int i;

    /* the whitedb pattern: allocate a big arena up front */
    db_create(ARENA_BYTES);

    /* bulk insert */
    for (i = 0; i < NRECORDS; i++) {
        int rec = db_create_record();
        state = state * 1664525u + 1013904223u;
        db_set_field(rec, 0, encode_int((int)(state % 100000u)));
        db_set_field(rec, 1, encode_fixed((double)(state % 1000u) * 0.25));
        make_name(i);
        db_set_field(rec, 2, encode_str(name_buf));
        db_set_field(rec, 3, encode_int(i));
    }

    index_build();

    /* point queries */
    {
        int hits = 0;
        for (i = 0; i < NQUERIES; i++) {
            state = state * 1664525u + 1013904223u;
            if (index_lookup((int)(state % 100000u))) hits++;
        }
        check = check * 31u + (unsigned int)hits;
    }

    /* range queries */
    for (i = 0; i < 16; i++) {
        int lo = i * 6000;
        check = check * 31u
              + (unsigned int)index_range_count(lo, lo + 3000);
    }

    /* update a field on every 7th record, then re-verify via scan */
    {
        int rec = db_first_record;
        int n = 0;
        long total = 0l;
        while (rec) {
            if (n % 7 == 0)
                db_set_field(rec, 3,
                             encode_int(decode_int(db_get_field(rec, 3))
                                        + 1000000));
            total += (long)decode_int(db_get_field(rec, 3));
            total += (long)(decode_fixed(db_get_field(rec, 1)) * 4.0);
            rec = db_next(rec);
            n++;
        }
        check = (check ^ (unsigned int)total) * 16777619u;
        check = (check ^ (unsigned int)(total >> 32)) * 16777619u;
    }

    /* string field spot checks */
    for (i = 0; i < 8; i++) {
        int rec = index_recs[(index_size / 9) * (i + 1) % index_size];
        char *s = decode_str(db_get_field(rec, 2));
        check = check * 31u + (unsigned int)s[0] + (unsigned int)strlen(s);
    }

    print_s("whitedb records="); print_i(db_record_count);
    print_s(" indexed="); print_i(index_size);
    print_s(" arena_used_pct=");
    print_i((db_next_word + (db_arena_words - db_string_top)) * 100
            / db_arena_words);
    print_s(" check="); print_x(check);
    print_nl();
    return 0;
}
"""

BENCHMARK = Benchmark(
    name="whitedb",
    suite="apps",
    domain="Database",
    description="Lightweight NoSQL database",
    source=SOURCE,
    defines={
        # The arena is deliberately much larger than the touched portion.
        "test": {"ARENA_BYTES": "8388608", "NRECORDS": "300",
                 "NQUERIES": "200", "MAX_RECORDS": "400"},
        "small": {"ARENA_BYTES": "16777216", "NRECORDS": "1500",
                  "NQUERIES": "1500", "MAX_RECORDS": "2000"},
        "ref": {"ARENA_BYTES": "50331648", "NRECORDS": "12000",
                "NQUERIES": "12000", "MAX_RECORDS": "16000"},
    },
    traits=("memory-heavy", "sparse-touch"),
)
