"""Whole application `gnuchess`: a chess engine playing one game round.

A real (small) chess engine in the GNU Chess tradition: 0x88 board
representation, full legal move generation for all piece types
(including castling-free but capture/promotion-complete rules),
make/unmake with incremental material, alpha-beta search with a
capture-first move ordering and a positional evaluation (material,
piece-square tables, mobility).  Plays a fixed number of plies against
itself at the configured search depth, like the paper's "single round
game (depth 10)" workload at model scale.

Chess search is the suite's most data-dependent control flow — this is
the benchmark where the paper's interpreters show ~20% branch-miss
ratios (Table 5) and WAVM shows its 347x cache-miss outlier.
"""

from ..workload import Benchmark

SOURCE = r"""
/* 0x88 board: empty 0; white pieces 1..6 (P N B R Q K); black 7..12 */
#define WP 1
#define WN 2
#define WB 3
#define WR 4
#define WQ 5
#define WK 6
#define BP 7
#define BN 8
#define BB 9
#define BR 10
#define BQ 11
#define BK 12

int board[128];
int side_to_move;       /* 0 = white, 1 = black */
int material_balance;   /* white minus black, centipawns */

int piece_value[13] = {0, 100, 320, 330, 500, 900, 20000,
                       100, 320, 330, 500, 900, 20000};

int knight_deltas[8] = {31, 33, 14, 18, -31, -33, -14, -18};
int king_deltas[8] = {1, -1, 16, -16, 17, 15, -17, -15};
int bishop_deltas[4] = {17, 15, -17, -15};
int rook_deltas[4] = {1, -1, 16, -16};

/* piece-square table for pawns/knights (simplified gnuchess tables) */
int pawn_pst[128];
int knight_pst[128];

void init_pst(void) {
    int sq;
    for (sq = 0; sq < 128; sq++) {
        int rank, file;
        if (sq & 0x88) continue;
        rank = sq >> 4;
        file = sq & 7;
        pawn_pst[sq] = rank * 4 + (file > 1 && file < 6 ? 6 : 0);
        knight_pst[sq] = 12 - (file == 0 || file == 7 ? 10 : 0)
                       - (rank == 0 || rank == 7 ? 10 : 0);
    }
}

void init_board(void) {
    int file;
    int sq;
    for (sq = 0; sq < 128; sq++) board[sq] = 0;
    for (file = 0; file < 8; file++) {
        board[16 + file] = WP;
        board[96 + file] = BP;
    }
    board[0] = WR; board[7] = WR;
    board[1] = WN; board[6] = WN;
    board[2] = WB; board[5] = WB;
    board[3] = WQ; board[4] = WK;
    board[112] = BR; board[119] = BR;
    board[113] = BN; board[118] = BN;
    board[114] = BB; board[117] = BB;
    board[115] = BQ; board[116] = BK;
    side_to_move = 0;
    material_balance = 0;
}

int is_white(int piece) { return piece >= WP && piece <= WK; }
int is_black(int piece) { return piece >= BP; }

int own_piece(int piece) {
    if (piece == 0) return 0;
    return side_to_move == 0 ? is_white(piece) : is_black(piece);
}

int enemy_piece(int piece) {
    if (piece == 0) return 0;
    return side_to_move == 0 ? is_black(piece) : is_white(piece);
}

/* move encoding: from | to<<8 | captured<<16 | promo<<24 */
int move_list[64][128];
int move_count[64];

void add_move(int ply, int from, int to, int promo) {
    int captured = board[to];
    move_list[ply][move_count[ply]++] =
        from | (to << 8) | (captured << 16) | (promo << 24);
}

void gen_slider(int ply, int from, int *deltas, int ndeltas) {
    int d;
    for (d = 0; d < ndeltas; d++) {
        int to = from + deltas[d];
        while (!(to & 0x88)) {
            if (own_piece(board[to])) break;
            add_move(ply, from, to, 0);
            if (board[to]) break;
            to += deltas[d];
        }
    }
}

void gen_stepper(int ply, int from, int *deltas, int ndeltas) {
    int d;
    for (d = 0; d < ndeltas; d++) {
        int to = from + deltas[d];
        if (!(to & 0x88) && !own_piece(board[to]))
            add_move(ply, from, to, 0);
    }
}

void gen_pawn(int ply, int from) {
    int forward = side_to_move == 0 ? 16 : -16;
    int start_rank = side_to_move == 0 ? 1 : 6;
    int promo_rank = side_to_move == 0 ? 7 : 0;
    int to = from + forward;
    int promo_piece = side_to_move == 0 ? WQ : BQ;
    if (!(to & 0x88) && board[to] == 0) {
        add_move(ply, from, to, (to >> 4) == promo_rank ? promo_piece : 0);
        if ((from >> 4) == start_rank && board[to + forward] == 0)
            add_move(ply, from, to + forward, 0);
    }
    {
        int caps[2];
        int c;
        caps[0] = from + forward + 1;
        caps[1] = from + forward - 1;
        for (c = 0; c < 2; c++) {
            to = caps[c];
            if (!(to & 0x88) && enemy_piece(board[to]))
                add_move(ply, from, to,
                         (to >> 4) == promo_rank ? promo_piece : 0);
        }
    }
}

void generate_moves(int ply) {
    int sq;
    move_count[ply] = 0;
    for (sq = 0; sq < 128; sq++) {
        int piece;
        if (sq & 0x88) continue;
        piece = board[sq];
        if (!own_piece(piece)) continue;
        switch (piece) {
        case WP: case BP:
            gen_pawn(ply, sq);
            break;
        case WN: case BN:
            gen_stepper(ply, sq, knight_deltas, 8);
            break;
        case WB: case BB:
            gen_slider(ply, sq, bishop_deltas, 4);
            break;
        case WR: case BR:
            gen_slider(ply, sq, rook_deltas, 4);
            break;
        case WQ: case BQ:
            gen_slider(ply, sq, bishop_deltas, 4);
            gen_slider(ply, sq, rook_deltas, 4);
            break;
        case WK: case BK:
            gen_stepper(ply, sq, king_deltas, 8);
            break;
        }
    }
}

void make_move(int move) {
    int from = move & 255;
    int to = (move >> 8) & 255;
    int captured = (move >> 16) & 255;
    int promo = (move >> 24) & 255;
    int piece = board[from];
    board[from] = 0;
    board[to] = promo ? promo : piece;
    if (captured) {
        int value = piece_value[captured];
        material_balance += is_white(captured) ? -value : value;
    }
    if (promo) {
        int gain = piece_value[promo] - 100;
        material_balance += side_to_move == 0 ? gain : -gain;
    }
    side_to_move ^= 1;
}

void unmake_move(int move) {
    int from = move & 255;
    int to = (move >> 8) & 255;
    int captured = (move >> 16) & 255;
    int promo = (move >> 24) & 255;
    int piece = board[to];
    side_to_move ^= 1;
    board[from] = promo ? (side_to_move == 0 ? WP : BP) : piece;
    board[to] = captured;
    if (captured) {
        int value = piece_value[captured];
        material_balance -= is_white(captured) ? -value : value;
    }
    if (promo) {
        int gain = piece_value[promo] - 100;
        material_balance -= side_to_move == 0 ? gain : -gain;
    }
}

int king_captured(void) {
    int wk = 0;
    int bk = 0;
    int sq;
    for (sq = 0; sq < 128; sq++) {
        if (sq & 0x88) continue;
        if (board[sq] == WK) wk = 1;
        if (board[sq] == BK) bk = 1;
    }
    return !(wk && bk);
}

int evaluate(void) {
    /* from the side to move's perspective */
    int score = material_balance;
    int sq;
    for (sq = 0; sq < 128; sq++) {
        int piece;
        if (sq & 0x88) continue;
        piece = board[sq];
        if (piece == WP) score += pawn_pst[sq];
        else if (piece == BP) score -= pawn_pst[120 - (sq & 0x77)];
        else if (piece == WN) score += knight_pst[sq];
        else if (piece == BN) score -= knight_pst[120 - (sq & 0x77)];
    }
    return side_to_move == 0 ? score : -score;
}

long nodes_searched = 0l;

/* order captures first: simple selection by captured value */
void order_moves(int ply) {
    int n = move_count[ply];
    int i, j;
    for (i = 0; i < n; i++) {
        int best = i;
        int best_score = piece_value[(move_list[ply][i] >> 16) & 255];
        for (j = i + 1; j < n; j++) {
            int s = piece_value[(move_list[ply][j] >> 16) & 255];
            if (s > best_score) {
                best_score = s;
                best = j;
            }
        }
        if (best != i) {
            int t = move_list[ply][i];
            move_list[ply][i] = move_list[ply][best];
            move_list[ply][best] = t;
        }
    }
}

int alphabeta(int depth, int alpha, int beta, int ply) {
    int i;
    int best = -100000;
    nodes_searched++;
    if (depth == 0) return evaluate();
    generate_moves(ply);
    order_moves(ply);
    if (move_count[ply] == 0) return evaluate();
    for (i = 0; i < move_count[ply]; i++) {
        int move = move_list[ply][i];
        int score;
        /* king capture = previous move was illegal */
        if (((move >> 16) & 255) == WK || ((move >> 16) & 255) == BK)
            return 50000 - ply;
        make_move(move);
        score = -alphabeta(depth - 1, -beta, -alpha, ply + 1);
        unmake_move(move);
        if (score > best) best = score;
        if (best > alpha) alpha = best;
        if (alpha >= beta) break;   /* cutoff */
    }
    return best;
}

int find_best_move(int depth) {
    int i;
    int best_move = 0;
    int best_score = -100000;
    generate_moves(0);
    order_moves(0);
    for (i = 0; i < move_count[0]; i++) {
        int move = move_list[0][i];
        int score;
        make_move(move);
        score = -alphabeta(depth - 1, -100000, 100000, 1);
        unmake_move(move);
        if (score > best_score) {
            best_score = score;
            best_move = move;
        }
    }
    return best_move;
}

int main(void) {
    int ply;
    unsigned int check = 2166136261u;
    init_pst();
    init_board();
    for (ply = 0; ply < GAME_PLIES; ply++) {
        int move = find_best_move(DEPTH);
        if (move == 0) break;
        make_move(move);
        check = (check ^ (unsigned int)move) * 16777619u;
        if (king_captured()) break;
    }
    print_s("gnuchess plies="); print_i(ply);
    print_s(" nodes="); print_l(nodes_searched);
    print_s(" material="); print_i(material_balance);
    print_s(" check="); print_x(check);
    print_nl();
    return 0;
}
"""

BENCHMARK = Benchmark(
    name="gnuchess",
    suite="apps",
    domain="Gaming",
    description="Chess-playing game",
    source=SOURCE,
    defines={
        "test": {"GAME_PLIES": "2", "DEPTH": "2"},
        "small": {"GAME_PLIES": "4", "DEPTH": "3"},
        "ref": {"GAME_PLIES": "10", "DEPTH": "4"},
    },
    traits=("branchy", "irregular", "long-running"),
)
