"""Whole application `mnist`: neural-network digit recognition.

Mirrors the paper's reference (a plain-C MNIST network): a single-layer
softmax-style classifier plus a hidden-layer variant, trained by
stochastic gradient descent.  The MNIST image files are replaced by a
deterministic generator that draws 8x8 digit glyphs with noise (the
dataset is not shippable offline); training dynamics — forward pass,
sigmoid activations, backprop outer products — are the real computation.
Reports training loss and accuracy like the original's 92% checkpoint.
"""

from ..workload import Benchmark

SOURCE = r"""
#define IN_DIM 64            /* 8x8 synthetic digits */
#define HIDDEN 16
#define CLASSES 10

double w1[HIDDEN][IN_DIM];
double b1[HIDDEN];
double w2[CLASSES][HIDDEN];
double b2[CLASSES];
double hidden_out[HIDDEN];
double out[CLASSES];
double delta_out[CLASSES];
double delta_hidden[HIDDEN];
double image[IN_DIM];

unsigned int rng_state = 0x3A3Au;

unsigned int xrand(void) {
    rng_state = rng_state * 1664525u + 1013904223u;
    return rng_state;
}

double frand(void) {
    return (double)(xrand() >> 8) / 16777216.0;
}

/* 10 glyph templates on an 8x8 grid (rows as bitmasks) */
int glyphs[CLASSES][8] = {
    {0x3C, 0x42, 0x46, 0x5A, 0x62, 0x42, 0x3C, 0x00},  /* 0 */
    {0x08, 0x18, 0x28, 0x08, 0x08, 0x08, 0x3E, 0x00},  /* 1 */
    {0x3C, 0x42, 0x02, 0x0C, 0x30, 0x40, 0x7E, 0x00},  /* 2 */
    {0x3C, 0x42, 0x02, 0x1C, 0x02, 0x42, 0x3C, 0x00},  /* 3 */
    {0x04, 0x0C, 0x14, 0x24, 0x7E, 0x04, 0x04, 0x00},  /* 4 */
    {0x7E, 0x40, 0x7C, 0x02, 0x02, 0x42, 0x3C, 0x00},  /* 5 */
    {0x1C, 0x20, 0x40, 0x7C, 0x42, 0x42, 0x3C, 0x00},  /* 6 */
    {0x7E, 0x02, 0x04, 0x08, 0x10, 0x20, 0x20, 0x00},  /* 7 */
    {0x3C, 0x42, 0x42, 0x3C, 0x42, 0x42, 0x3C, 0x00},  /* 8 */
    {0x3C, 0x42, 0x42, 0x3E, 0x02, 0x04, 0x38, 0x00}   /* 9 */
};

int make_sample(void) {
    int digit = (int)(xrand() % 10u);
    int r, c;
    for (r = 0; r < 8; r++) {
        for (c = 0; c < 8; c++) {
            double v = (glyphs[digit][r] >> (7 - c)) & 1 ? 0.9 : 0.05;
            v += (frand() - 0.5) * 0.25;       /* pixel noise */
            if (v < 0.0) v = 0.0;
            if (v > 1.0) v = 1.0;
            image[r * 8 + c] = v;
        }
    }
    return digit;
}

void init_weights(void) {
    int i, j;
    for (i = 0; i < HIDDEN; i++) {
        b1[i] = 0.0;
        for (j = 0; j < IN_DIM; j++)
            w1[i][j] = (frand() - 0.5) * 0.4;
    }
    for (i = 0; i < CLASSES; i++) {
        b2[i] = 0.0;
        for (j = 0; j < HIDDEN; j++)
            w2[i][j] = (frand() - 0.5) * 0.4;
    }
}

void forward(void) {
    int i, j;
    for (i = 0; i < HIDDEN; i++) {
        double acc = b1[i];
        for (j = 0; j < IN_DIM; j++)
            acc += w1[i][j] * image[j];
        hidden_out[i] = sigmoid(acc);
    }
    for (i = 0; i < CLASSES; i++) {
        double acc = b2[i];
        for (j = 0; j < HIDDEN; j++)
            acc += w2[i][j] * hidden_out[j];
        out[i] = sigmoid(acc);
    }
}

double train_step(int label, double lr) {
    int i, j;
    double loss = 0.0;
    forward();
    for (i = 0; i < CLASSES; i++) {
        double target = i == label ? 1.0 : 0.0;
        double err = out[i] - target;
        loss += err * err;
        delta_out[i] = err * out[i] * (1.0 - out[i]);
    }
    for (j = 0; j < HIDDEN; j++) {
        double acc = 0.0;
        for (i = 0; i < CLASSES; i++)
            acc += delta_out[i] * w2[i][j];
        delta_hidden[j] = acc * hidden_out[j] * (1.0 - hidden_out[j]);
    }
    for (i = 0; i < CLASSES; i++) {
        for (j = 0; j < HIDDEN; j++)
            w2[i][j] -= lr * delta_out[i] * hidden_out[j];
        b2[i] -= lr * delta_out[i];
    }
    for (i = 0; i < HIDDEN; i++) {
        for (j = 0; j < IN_DIM; j++)
            w1[i][j] -= lr * delta_hidden[i] * image[j];
        b1[i] -= lr * delta_hidden[i];
    }
    return loss;
}

int predict(void) {
    int i;
    int best = 0;
    forward();
    for (i = 1; i < CLASSES; i++)
        if (out[i] > out[best]) best = i;
    return best;
}

int main(void) {
    int iter;
    double loss = 0.0;
    int correct = 0;
    init_weights();
    for (iter = 0; iter < ITERATIONS; iter++) {
        int label = make_sample();
        loss = train_step(label, 0.5);
    }
    /* evaluation pass */
    for (iter = 0; iter < EVAL_SAMPLES; iter++) {
        int label = make_sample();
        if (predict() == label) correct++;
    }
    print_s("mnist iterations="); print_i(ITERATIONS);
    print_s(" final_loss="); print_f(loss);
    print_s(" accuracy_pct="); print_i(correct * 100 / EVAL_SAMPLES);
    print_nl();
    return 0;
}
"""

BENCHMARK = Benchmark(
    name="mnist",
    suite="apps",
    domain="Machine learning",
    description="A neural network for digit recognition",
    source=SOURCE,
    defines={
        "test": {"ITERATIONS": "30", "EVAL_SAMPLES": "20"},
        "small": {"ITERATIONS": "150", "EVAL_SAMPLES": "60"},
        "ref": {"ITERATIONS": "1000", "EVAL_SAMPLES": "200"},
    },
    traits=("floating-point", "long-running", "memory-heavy"),
)
