"""Session-level tracer: the object the harness and CLI thread through.

One :class:`Tracer` lives for one tool invocation (``wabench run
--trace``, ``wabench trace``, a fuzz campaign).  Layers report into it:

* the harness records every (benchmark, engine, -O, AOT) run it serves —
  whether freshly executed, cache-hit, or merged from a parallel worker
  — as a :class:`TracedRun` carrying the run's deterministic model-time
  span records;
* the compiler driver opens wall-clock *session spans* around its
  front/mid/back-end phases;
* everything increments the shared :class:`MetricRegistry`.

The default is :data:`NULL_TRACER`: a shared no-op instance, so the
untraced hot path costs one attribute lookup and a dead call per hook.

Determinism contract: model-time data (the per-run span records) comes
from :class:`RunResult` and is byte-stable; wall-clock data (session
spans, per-run wall seconds) is collected separately and only enters a
trace file when explicitly requested (``include_wall``).
"""

from __future__ import annotations

from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .metrics import MetricRegistry, NullMetricRegistry
from .timing import wall_clock


@dataclass
class TracedRun:
    """One run the harness served, plus session-side observations."""

    meta: Dict[str, object]          # bench/engine/opt/aot/size identity
    result: object                   # the RunResult (carries .trace)
    wall_seconds: Optional[float] = None   # live wall time; never cached


@dataclass
class SessionSpan:
    """A wall-clock span (compiler phase, experiment, ...)."""

    name: str
    wall_seconds: float = 0.0
    parent: Optional[int] = None
    attrs: Dict[str, object] = field(default_factory=dict)


class Tracer:
    """Collects runs, session spans, and metrics for one invocation."""

    enabled = True

    def __init__(self):
        self.metrics = MetricRegistry()
        self._runs: List[TracedRun] = []
        self._run_keys = set()
        self._spans: List[SessionSpan] = []
        self._stack: List[int] = []

    # -- runs -------------------------------------------------------------

    def record_run(self, meta: Dict[str, object], result,
                   wall_seconds: Optional[float] = None) -> None:
        """Register one served run.  Repeat requests for the same cell
        (experiments re-read results constantly) keep the first record,
        so trace output follows first-request order deterministically."""
        key = tuple(sorted(meta.items()))
        if key in self._run_keys:
            return
        self._run_keys.add(key)
        self._runs.append(TracedRun(meta=dict(meta), result=result,
                                    wall_seconds=wall_seconds))
        self.metrics.inc("runs.recorded")

    @property
    def runs(self) -> List[TracedRun]:
        return list(self._runs)

    # -- wall-clock session spans ----------------------------------------

    @contextmanager
    def span(self, name: str, **attrs):
        """Wall-clock span; yields its record so callers can attach
        attributes discovered mid-phase (sizes, instruction counts)."""
        record = SessionSpan(
            name=name,
            parent=self._stack[-1] if self._stack else None,
            attrs=dict(attrs))
        index = len(self._spans)
        self._spans.append(record)
        self._stack.append(index)
        start = wall_clock()
        try:
            yield record
        finally:
            record.wall_seconds = wall_clock() - start
            self._stack.pop()

    @property
    def session_spans(self) -> List[SessionSpan]:
        return list(self._spans)


class NullTracer(Tracer):
    """The default fast path: every hook is a no-op.

    Shared as :data:`NULL_TRACER`; construction cost is paid once at
    import, and ``record_run``/``span``/metrics all discard their input.
    """

    enabled = False
    _CTX = nullcontext(SessionSpan(name="null"))

    def __init__(self):
        self.metrics = NullMetricRegistry()
        self._runs = []
        self._run_keys = set()
        self._spans = []
        self._stack = []

    def record_run(self, meta, result, wall_seconds=None) -> None:
        pass

    def span(self, name: str, **attrs):
        return self._CTX


NULL_TRACER = NullTracer()
