"""``repro.obs`` — deterministic tracing + metrics for the execution stack.

The paper's whole methodology is phase-resolved measurement: every number
it reports is "how much of X happened between two well-defined points of
a run".  This package is the one place the reproduction keeps that
machinery, so every layer (runtimes, WASI, compiler, harness, fuzzer)
emits through it instead of keeping ad-hoc accounting:

* :class:`~repro.obs.spans.TraceBuilder` — *model-time* span recorder.
  One lives inside every measured run (``cpu.trace``); spans are keyed by
  the modeled cycle counter, so they are a pure function of the inputs
  and survive the artifact cache byte-for-byte.
* :class:`~repro.obs.tracer.Tracer` / :class:`~repro.obs.tracer.NullTracer`
  — the session-level collector the harness and CLI thread through.  It
  gathers per-run trace records, wall-clock session spans (compiler
  phases), and a counter/gauge registry.  ``NullTracer`` is the default
  fast path: every hook is a no-op.
* :mod:`~repro.obs.export` — the JSON-lines trace format
  (``wabench run --trace out.jsonl``), schema validation, and the
  per-phase breakdown used by ``wabench trace``.  See TRACING.md for the
  field-by-field schema.
* :mod:`~repro.obs.timing` — monotonic wall-clock timers
  (``time.perf_counter``; ``time.time`` is not monotonic and must never
  be used for durations).
"""

from .export import (TRACE_SCHEMA, TraceSchemaError, cell_metrics,
                     phase_cycles, root_span, trace_lines,
                     validate_trace, write_trace)
from .metrics import CallStats, MetricRegistry
from .spans import (NULL_BUILDER, NullTraceBuilder, TimelineBuilder,
                    TraceBuilder)
from .timing import Stopwatch, wall_clock
from .tracer import NULL_TRACER, NullTracer, TracedRun, Tracer

__all__ = [
    "TRACE_SCHEMA", "TraceSchemaError", "cell_metrics", "phase_cycles",
    "root_span", "trace_lines", "validate_trace", "write_trace",
    "CallStats", "MetricRegistry",
    "NULL_BUILDER", "NullTraceBuilder", "TimelineBuilder", "TraceBuilder",
    "Stopwatch", "wall_clock",
    "NULL_TRACER", "NullTracer", "TracedRun", "Tracer",
]
