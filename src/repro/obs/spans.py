"""Model-time span recording: the deterministic half of the trace.

A :class:`TraceBuilder` lives for one measured run, attached to the CPU
model as ``cpu.trace``.  Every layer that does work inside the run —
the run pipeline's named phases, the JIT backends, the interpreter
translators — opens a span around that work; the builder records the
modeled cycle counter and the architectural event counters at entry and
exit.  Because the modeled counters are a pure function of the run's
inputs, so is the resulting span tree: it can be cached, transported
across worker processes, and re-emitted byte-for-byte.

Span records are plain dicts (JSON-ready) with this shape::

    {"span": "decode", "id": 1, "parent": 0,
     "cycles_start": 1, "cycles_end": 1205,
     "instructions": 4816, "branches": 0, "branch_misses": 0,
     "stall_cycles": 0}                      # + "attrs": {...} if any

``id`` numbers spans in opening order (a pre-order walk of the tree);
``parent`` is the enclosing span's id (``None`` for the root).  Wall
time is deliberately absent: it belongs to the session-level
:class:`~repro.obs.tracer.Tracer`, never to cached run records.
"""

from __future__ import annotations

from contextlib import contextmanager, nullcontext
from typing import Dict, List, Optional


class TraceBuilder:
    """Records a tree of model-time spans for one measured run."""

    def __init__(self, counters):
        self._counters = counters
        self._records: List[Dict] = []
        self._stack: List[Dict] = []

    @contextmanager
    def span(self, name: str, **attrs):
        """Open a span around a unit of charged work.

        Yields the underlying record dict so callers can read the final
        ``cycles_start``/``cycles_end`` afterwards (the pipeline derives
        ``compile_seconds``/``execute_seconds`` from exactly these).
        """
        counters = self._counters
        record: Dict = {
            "span": name,
            "id": len(self._records),
            "parent": self._stack[-1]["id"] if self._stack else None,
            "cycles_start": counters.cycles,
            "cycles_end": counters.cycles,
            "instructions": counters.instructions,
            "branches": counters.branches,
            "branch_misses": counters.branch_misses,
            "stall_cycles": counters.stall_cycles,
        }
        if attrs:
            record["attrs"] = dict(attrs)
        self._records.append(record)
        self._stack.append(record)
        try:
            yield record
        finally:
            self._stack.pop()
            record["cycles_end"] = counters.cycles
            for key in ("instructions", "branches", "branch_misses",
                        "stall_cycles"):
                record[key] = getattr(counters, key) - record[key]

    def records(self) -> List[Dict]:
        """The span records in opening (pre-order) sequence."""
        return list(self._records)


class TimelineBuilder:
    """Span records on an explicit model-time clock.

    :class:`TraceBuilder` *observes* live counters around work as it
    happens; the serving simulator (:mod:`repro.serve`) instead *replays*
    measured per-phase costs on a simulated request timeline, so it knows
    every span's interval and event counts up front.  This builder emits
    records of exactly the same shape (TRACING.md span schema), so serve
    traces validate and render through the same export machinery.
    """

    _COUNT_FIELDS = ("instructions", "branches", "branch_misses",
                     "stall_cycles")

    def __init__(self):
        self._records: List[Dict] = []

    def add(self, name: str, parent: Optional[int],
            cycles_start: int, cycles_end: int,
            instructions: int = 0, branches: int = 0,
            branch_misses: int = 0, stall_cycles: int = 0,
            **attrs) -> Dict:
        """Append one closed span; returns the record (its ``id`` is the
        append index, so parents must be added before their children)."""
        if cycles_end < cycles_start:
            raise ValueError(f"span {name!r} closes before it opens")
        record: Dict = {
            "span": name,
            "id": len(self._records),
            "parent": parent,
            "cycles_start": int(cycles_start),
            "cycles_end": int(cycles_end),
            "instructions": int(instructions),
            "branches": int(branches),
            "branch_misses": int(branch_misses),
            "stall_cycles": int(stall_cycles),
        }
        if attrs:
            record["attrs"] = dict(attrs)
        self._records.append(record)
        return record

    def records(self) -> List[Dict]:
        return list(self._records)


class NullTraceBuilder:
    """No-op builder: the default ``cpu.trace`` outside a pipeline.

    Keeps standalone uses of the engines (``compile_aot``, ablation
    benchmarks, direct backend calls) free of recording overhead.
    """

    _CTX = nullcontext()

    def span(self, name: str, **attrs):
        return self._CTX

    def records(self) -> List[Dict]:
        return []


NULL_BUILDER = NullTraceBuilder()


def child_spans(records: List[Dict], parent_id: Optional[int]) -> List[Dict]:
    """Spans whose direct parent is ``parent_id``, in opening order."""
    return [r for r in records if r.get("parent") == parent_id]
