"""JSON-lines trace export + schema validation + phase breakdowns.

The trace file format (``wabench run --trace out.jsonl``) is line-
oriented JSON with four record types, documented field-by-field in
TRACING.md:

* ``header`` — one per file: schema version, repro version, the
  configuration the trace was taken under.
* ``run`` — one per measured (benchmark, engine, -O, AOT) cell, in
  first-request order: identity fields plus the run's headline totals.
* ``span`` — the run's model-time span tree (one line per span, pre-order,
  ``run`` links back to the owning run's ``index``).
* ``wasi`` — per-WASI-function call counts, modeled instruction cost,
  and guest<->host bytes copied for the run (the eWAPA-style syscall
  view; instruction costs are per-engine, see ``repro.registry``).

Every field is a pure function of the run configuration **except**
``wall``, which is wall-clock and only emitted when ``include_wall`` is
set.  That is the byte-identity contract: serial cold, warm-cache, and
``--jobs N`` invocations of the same configuration produce identical
files (and :func:`canonical_lines` strips ``wall`` so checkers can
compare traces taken with it).
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Sequence

from .. import __version__ as _REPRO_VERSION

#: Bump when a record type gains/loses/renames a field.
#: /2: ``wasi`` records gained a ``bytes`` field (guest<->host copies).
TRACE_SCHEMA = "wabench-trace/2"

_SPAN_INT_FIELDS = ("id", "cycles_start", "cycles_end", "instructions",
                    "branches", "branch_misses", "stall_cycles")
_RUN_REQUIRED = ("index", "runtime", "exit_code", "seconds", "cycles",
                 "mrss_bytes", "compile_seconds", "execute_seconds")


class TraceSchemaError(ValueError):
    """A trace file violates the documented schema."""


def _dump(record: Dict) -> str:
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def trace_lines(runs: Sequence, config: Optional[Dict] = None,
                include_wall: bool = False) -> List[str]:
    """Serialize :class:`~repro.obs.tracer.TracedRun`s to JSONL lines."""
    header: Dict = {"type": "header", "schema": TRACE_SCHEMA,
                    "repro": _REPRO_VERSION, "runs": len(runs)}
    if config:
        header["config"] = dict(config)
    lines = [_dump(header)]
    for index, traced in enumerate(runs):
        result = traced.result
        run_record: Dict = {"type": "run", "index": index}
        run_record.update(traced.meta)
        run_record.update({
            "runtime": result.runtime,
            "exit_code": result.exit_code,
            "trap": result.trap,
            "seconds": result.seconds,
            "cycles": result.cycles,
            "mrss_bytes": result.mrss_bytes,
            "compile_seconds": result.compile_seconds,
            "execute_seconds": result.execute_seconds,
            "code_bytes": result.code_bytes,
        })
        if include_wall and traced.wall_seconds is not None:
            run_record["wall"] = traced.wall_seconds
        lines.append(_dump(run_record))
        for span in result.trace:
            record = {"type": "span", "run": index}
            record.update(span)
            lines.append(_dump(record))
        for fn, stats in result.wasi_calls.items():
            lines.append(_dump({"type": "wasi", "run": index, "fn": fn,
                                "calls": stats["calls"],
                                "instructions": stats["instructions"],
                                "bytes": stats.get("bytes", 0)}))
    return lines


def write_trace(path: str, runs: Sequence, config: Optional[Dict] = None,
                include_wall: bool = False) -> int:
    """Write a trace file; returns the number of lines written."""
    lines = trace_lines(runs, config=config, include_wall=include_wall)
    with open(path, "w") as fh:
        fh.write("\n".join(lines) + "\n")
    return len(lines)


def canonical_lines(lines: Iterable[str]) -> List[str]:
    """Strip the (optional, non-deterministic) ``wall`` field from every
    record and re-serialize canonically — the form byte-compared by the
    determinism check."""
    out = []
    for line in lines:
        if not line.strip():
            continue
        record = json.loads(line)
        record.pop("wall", None)
        out.append(_dump(record))
    return out


# -- validation --------------------------------------------------------------


def _fail(lineno: int, message: str) -> None:
    raise TraceSchemaError(f"trace line {lineno}: {message}")


def validate_trace(lines: Iterable[str]) -> Dict[str, int]:
    """Validate a trace against the schema; returns record counts.

    Checks structural requirements (required fields, types) and the span
    invariants the rest of the repo relies on: spans close after they
    open, every parent exists earlier in the same run, and children lie
    within their parent's cycle interval.
    """
    counts = {"header": 0, "run": 0, "span": 0, "wasi": 0}
    run_indices = set()
    spans_by_run: Dict[int, Dict[int, Dict]] = {}
    for lineno, line in enumerate(lines, 1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            _fail(lineno, f"not valid JSON ({exc})")
        if not isinstance(record, dict) or "type" not in record:
            _fail(lineno, "record is not an object with a 'type'")
        rtype = record["type"]
        if rtype not in counts:
            _fail(lineno, f"unknown record type {rtype!r}")
        counts[rtype] += 1

        if rtype == "header":
            if lineno != 1:
                _fail(lineno, "header must be the first line")
            if record.get("schema") != TRACE_SCHEMA:
                _fail(lineno, f"schema {record.get('schema')!r} != "
                              f"{TRACE_SCHEMA!r}")
        elif rtype == "run":
            for fld in _RUN_REQUIRED:
                if fld not in record:
                    _fail(lineno, f"run record missing {fld!r}")
            if record["index"] in run_indices:
                _fail(lineno, f"duplicate run index {record['index']}")
            run_indices.add(record["index"])
        elif rtype == "span":
            if record.get("run") not in run_indices:
                _fail(lineno, "span references unknown run "
                              f"{record.get('run')!r}")
            if "span" not in record:
                _fail(lineno, "span record missing 'span' name")
            for fld in _SPAN_INT_FIELDS:
                if not isinstance(record.get(fld), int):
                    _fail(lineno, f"span field {fld!r} missing or not int")
            if record["cycles_end"] < record["cycles_start"]:
                _fail(lineno, "span closes before it opens")
            per_run = spans_by_run.setdefault(record["run"], {})
            parent = record.get("parent")
            if parent is not None:
                enclosing = per_run.get(parent)
                if enclosing is None:
                    _fail(lineno, f"span parent {parent} not seen yet")
                if (record["cycles_start"] < enclosing["cycles_start"] or
                        record["cycles_end"] > enclosing["cycles_end"]):
                    _fail(lineno, "span escapes its parent's interval")
            per_run[record["id"]] = record
        elif rtype == "wasi":
            if record.get("run") not in run_indices:
                _fail(lineno, "wasi record references unknown run "
                              f"{record.get('run')!r}")
            for fld in ("fn", "calls", "instructions", "bytes"):
                if fld not in record:
                    _fail(lineno, f"wasi record missing {fld!r}")
    if counts["header"] != 1:
        raise TraceSchemaError("trace must contain exactly one header line")
    return counts


# -- per-cell metric extraction ---------------------------------------------


def cell_metrics(result) -> Dict[str, int]:
    """The stable integer metric vector of one measured cell.

    Extracts exactly :data:`repro.registry.PERF_ORACLE_METRICS` from a
    :class:`~repro.runtimes.RunResult`'s counter snapshot, as ints, in
    registry order.  This is the one extraction point the perf-
    differential oracle, its baseline builder, and the corpus replayer
    all share, so a counter rename or a new metric is a one-line change
    here plus a registry entry — never a silent drift between them.
    """
    from ..registry import PERF_ORACLE_METRICS
    counters = result.counters
    return {name: int(counters.get(name, 0))
            for name in PERF_ORACLE_METRICS}


# -- phase breakdowns --------------------------------------------------------


def root_span(trace: Sequence[Dict]) -> Optional[Dict]:
    """The run's root span (parent ``None``), if the trace has one."""
    for record in trace:
        if record.get("parent") is None:
            return record
    return None


def phase_cycles(trace: Sequence[Dict]) -> Dict[str, int]:
    """Cycles spent in each top-level pipeline phase of one run's trace,
    in phase order (the root span's direct children)."""
    root = root_span(trace)
    if root is None:
        return {}
    out: Dict[str, int] = {}
    for record in trace:
        if record.get("parent") == root["id"]:
            out[record["span"]] = (out.get(record["span"], 0) +
                                   record["cycles_end"] -
                                   record["cycles_start"])
    return out
