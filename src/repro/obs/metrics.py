"""Counter/gauge registry + per-callee call statistics.

Two small deterministic accumulators:

* :class:`MetricRegistry` — named monotonic counters and last-value
  gauges, the session-level "how much work did this invocation do" view
  (runs executed, cache hits, fuzz cells, divergences...).
* :class:`CallStats` — per-function call counts, modeled instruction
  cost, and bytes copied; the WASI layer keeps one per run (the
  eWAPA-style syscall view: *which host functions did this program hit,
  how often, at what cost, moving how much data*).
"""

from __future__ import annotations

from typing import Dict


class MetricRegistry:
    """Named counters (monotonic) and gauges (last value wins)."""

    def __init__(self):
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}

    def inc(self, name: str, value: float = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def snapshot(self) -> Dict[str, float]:
        """Flat, sorted view: counters and gauges in one dict."""
        out = dict(self.counters)
        out.update(self.gauges)
        return dict(sorted(out.items()))

    def render(self, prefix: str = "[obs]") -> str:
        parts = [f"{name}={value:g}" for name, value
                 in sorted(self.counters.items())]
        parts += [f"{name}={value:g}" for name, value
                  in sorted(self.gauges.items())]
        return f"{prefix} " + " ".join(parts) if parts else f"{prefix} (empty)"


class NullMetricRegistry(MetricRegistry):
    """Discards everything; backs :class:`~repro.obs.tracer.NullTracer`."""

    def inc(self, name: str, value: float = 1) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass


class CallStats:
    """Call counts, modeled instruction cost, and guest<->host bytes,
    keyed by callee name."""

    __slots__ = ("_calls",)

    def __init__(self):
        self._calls: Dict[str, list] = {}

    def record(self, name: str, instructions: int = 0,
               data_bytes: int = 0) -> None:
        entry = self._calls.get(name)
        if entry is None:
            self._calls[name] = [1, instructions, data_bytes]
        else:
            entry[0] += 1
            entry[1] += instructions
            entry[2] += data_bytes

    @property
    def total_calls(self) -> int:
        return sum(entry[0] for entry in self._calls.values())

    @property
    def total_instructions(self) -> int:
        return sum(entry[1] for entry in self._calls.values())

    @property
    def total_bytes(self) -> int:
        return sum(entry[2] for entry in self._calls.values())

    def as_dict(self) -> Dict[str, Dict[str, int]]:
        """Sorted, JSON-ready view (stored on :class:`RunResult`)."""
        return {name: {"calls": calls, "instructions": instructions,
                       "bytes": data_bytes}
                for name, (calls, instructions, data_bytes)
                in sorted(self._calls.items())}
