"""Wall-clock timing helpers (monotonic, for durations only).

``time.time()`` follows the system clock, which NTP and the
administrator can step backwards — a duration computed from it can come
out negative.  Every wall-clock duration in the repo goes through these
helpers, which use ``time.perf_counter()`` (monotonic, highest available
resolution).  Wall time is observability-only: it never feeds a modeled
counter, a cache key, or a deterministic trace field.
"""

from __future__ import annotations

import time

#: Monotonic wall-clock reading, in seconds.  Only differences of two
#: readings are meaningful.
wall_clock = time.perf_counter


class Stopwatch:
    """Measures elapsed wall time from construction (or ``restart``)."""

    __slots__ = ("_start",)

    def __init__(self):
        self._start = wall_clock()

    def restart(self) -> None:
        self._start = wall_clock()

    @property
    def seconds(self) -> float:
        return wall_clock() - self._start
