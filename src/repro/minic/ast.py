"""MiniC abstract syntax tree.

Nodes are plain dataclasses.  The parser builds them untyped; semantic
analysis (:mod:`repro.minic.sema`) fills in ``ctype`` on expressions and
resolves identifiers, leaving a fully typed tree the code generators and
the midend optimizer consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from dataclasses import fields as dataclass_fields
from typing import List, Optional, Tuple

from .typesys import CType

_FIELD_NAMES: dict = {}


def field_names(cls) -> Tuple[str, ...]:
    """Memoized dataclass field-name tuple for ``cls``.

    The tree walkers in the midend and code generators visit every node
    field; calling :func:`dataclasses.fields` there dominates their
    runtime (it rebuilds the tuple from ``__dataclass_fields__`` on
    every call).  Node classes never change fields at runtime, so the
    name tuple is computed once per class.
    """
    names = _FIELD_NAMES.get(cls)
    if names is None:
        names = tuple(f.name for f in dataclass_fields(cls))
        _FIELD_NAMES[cls] = names
    return names


_EXPR_CHILD_FIELDS: dict = {}


def expr_child_fields(cls) -> Tuple[Tuple[str, ...], Tuple[str, ...]]:
    """(scalar Expr fields, List[Expr] fields) for node class ``cls``.

    Derived from the declared field types, so expression rewriters can
    visit exactly the child slots instead of probing every field with
    ``isinstance`` (``line``, ``op``, ``ctype``... are never children).
    Declaration order is preserved, keeping visit order identical to a
    full field scan.
    """
    entry = _EXPR_CHILD_FIELDS.get(cls)
    if entry is None:
        scalars = []
        lists = []
        for f in dataclass_fields(cls):
            ann = f.type if isinstance(f.type, str) else str(f.type)
            if "List[Expr]" in ann:
                lists.append(f.name)
            elif "Expr" in ann:
                scalars.append(f.name)
        entry = (tuple(scalars), tuple(lists))
        _EXPR_CHILD_FIELDS[cls] = entry
    return entry

# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass
class Expr:
    line: int = 0
    ctype: Optional[CType] = None


@dataclass
class IntLit(Expr):
    value: int = 0


@dataclass
class FloatLit(Expr):
    value: float = 0.0


@dataclass
class StrLit(Expr):
    value: bytes = b""
    data_offset: int = -1  # assigned by codegen when placed in memory


@dataclass
class Ident(Expr):
    name: str = ""
    # Resolution, filled by sema: ('local', index) | ('global', symbol)
    # | ('func', name) | ('enum', value)
    binding: Optional[tuple] = None


@dataclass
class Unary(Expr):
    op: str = ""          # '-', '~', '!'
    operand: Optional[Expr] = None


@dataclass
class AddrOf(Expr):
    operand: Optional[Expr] = None


@dataclass
class Deref(Expr):
    operand: Optional[Expr] = None


@dataclass
class Binary(Expr):
    op: str = ""          # arithmetic/bitwise/comparison/logical
    left: Optional[Expr] = None
    right: Optional[Expr] = None


@dataclass
class Assign(Expr):
    op: str = "="         # '=', '+=', '-=', ...
    target: Optional[Expr] = None
    value: Optional[Expr] = None


@dataclass
class IncDec(Expr):
    op: str = "++"        # '++' or '--'
    prefix: bool = True
    target: Optional[Expr] = None


@dataclass
class Cond(Expr):
    """Ternary ``c ? a : b``."""

    cond: Optional[Expr] = None
    then: Optional[Expr] = None
    other: Optional[Expr] = None


@dataclass
class Call(Expr):
    func: Optional[Expr] = None   # Ident (direct) or pointer expression
    args: List[Expr] = field(default_factory=list)


@dataclass
class Index(Expr):
    base: Optional[Expr] = None
    index: Optional[Expr] = None


@dataclass
class Cast(Expr):
    target_type: Optional[CType] = None
    operand: Optional[Expr] = None


@dataclass
class SizeofType(Expr):
    target_type: Optional[CType] = None


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass
class Stmt:
    line: int = 0


@dataclass
class ExprStmt(Stmt):
    expr: Optional[Expr] = None


@dataclass
class VarDecl(Stmt):
    """One declared variable (a multi-declarator line becomes several)."""

    name: str = ""
    var_type: Optional[CType] = None
    init: Optional[Expr] = None
    init_list: Optional[List[Expr]] = None  # array initializer
    # Filled by sema:
    local_index: int = -1
    needs_memory: bool = False   # address taken or array: shadow-stack slot
    frame_offset: int = -1


@dataclass
class Block(Stmt):
    statements: List[Stmt] = field(default_factory=list)


@dataclass
class DeclGroup(Block):
    """A multi-declarator line (``int a = 1, b;``): statements are the
    individual VarDecls.  Unlike a Block, it does NOT open a scope."""


@dataclass
class If(Stmt):
    cond: Optional[Expr] = None
    then: Optional[Stmt] = None
    other: Optional[Stmt] = None


@dataclass
class While(Stmt):
    cond: Optional[Expr] = None
    body: Optional[Stmt] = None


@dataclass
class DoWhile(Stmt):
    body: Optional[Stmt] = None
    cond: Optional[Expr] = None


@dataclass
class For(Stmt):
    init: Optional[Stmt] = None   # VarDecl-Block or ExprStmt or None
    cond: Optional[Expr] = None
    step: Optional[Expr] = None
    body: Optional[Stmt] = None


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


@dataclass
class SwitchCase:
    """One case arm (or default when ``value is None``)."""

    value: Optional[int]
    body: List[Stmt]
    line: int = 0


@dataclass
class Switch(Stmt):
    scrutinee: Optional[Expr] = None
    cases: List[SwitchCase] = field(default_factory=list)


# ---------------------------------------------------------------------------
# Top level
# ---------------------------------------------------------------------------


@dataclass
class Param:
    name: str
    ptype: CType
    line: int = 0


@dataclass
class FuncDef:
    name: str
    ret: CType
    params: List[Param]
    body: Optional[Block]          # None for extern declarations
    line: int = 0
    is_static: bool = False
    # Filled by sema:
    local_types: List[CType] = field(default_factory=list)
    frame_size: int = 0
    address_taken: bool = False


@dataclass
class GlobalVar:
    name: str
    var_type: CType
    init: Optional[Expr] = None
    init_list: Optional[List[Expr]] = None
    line: int = 0
    is_extern: bool = False
    # Filled by codegen:
    address: int = -1


@dataclass
class TranslationUnit:
    functions: List[FuncDef] = field(default_factory=list)
    globals: List[GlobalVar] = field(default_factory=list)

    def function(self, name: str) -> Optional[FuncDef]:
        for f in self.functions:
            if f.name == name:
                return f
        return None
