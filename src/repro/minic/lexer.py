"""MiniC lexer with a minimal preprocessor.

Tokenizes the C subset and handles the preprocessor features the WABench
sources use: ``//`` and ``/* */`` comments, object-like ``#define``
constants, ``#undef``, and ``#ifdef``/``#ifndef``/``#else``/``#endif``
conditional blocks.  Function-like macros are not supported (the
benchmark sources use inline functions instead).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from ..errors import MiniCSyntaxError

KEYWORDS = frozenset((
    "void", "char", "short", "int", "long", "float", "double",
    "unsigned", "signed", "const", "static", "extern",
    "if", "else", "while", "do", "for", "return", "break", "continue",
    "switch", "case", "default", "sizeof",
))

# Multi-character operators, longest first so maximal munch works.
_OPERATORS = [
    "<<=", ">>=", "...",
    "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--", "->",
    "+", "-", "*", "/", "%", "=", "<", ">", "!", "&", "|", "^", "~",
    "(", ")", "{", "}", "[", "]", ";", ",", "?", ":", ".",
]

_ESCAPES = {"n": "\n", "t": "\t", "r": "\r", "0": "\0", "\\": "\\",
            "'": "'", '"': '"', "a": "\a", "b": "\b", "f": "\f", "v": "\v"}


@dataclass(frozen=True)
class Token:
    """One lexical token: kind is 'id', 'kw', 'num', 'str', 'char', 'op',
    or 'eof'; value carries the decoded payload."""

    kind: str
    value: object
    line: int
    col: int

    def __repr__(self):
        return f"Token({self.kind}, {self.value!r}, {self.line}:{self.col})"


def _strip_comments(source: str) -> str:
    """Remove comments, preserving newlines so line numbers survive."""
    out: List[str] = []
    i, n = 0, len(source)
    while i < n:
        c = source[i]
        if c == "/" and i + 1 < n and source[i + 1] == "/":
            while i < n and source[i] != "\n":
                i += 1
        elif c == "/" and i + 1 < n and source[i + 1] == "*":
            end = source.find("*/", i + 2)
            if end < 0:
                raise MiniCSyntaxError("unterminated block comment")
            out.append("\n" * source.count("\n", i, end))
            i = end + 2
        elif c in "\"'":
            j = i + 1
            while j < n and source[j] != c:
                if source[j] == "\\":
                    j += 1
                j += 1
            if j >= n:
                raise MiniCSyntaxError("unterminated literal")
            out.append(source[i:j + 1])
            i = j + 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def _preprocess(source: str,
                predefined: Optional[Dict[str, str]] = None) -> str:
    """Expand the supported preprocessor subset into plain MiniC."""
    defines: Dict[str, str] = dict(predefined or {})
    out_lines: List[str] = []
    # Stack of booleans: is the current conditional region active?
    active_stack: List[bool] = []

    def active() -> bool:
        return all(active_stack)

    for lineno, line in enumerate(_strip_comments(source).split("\n"), 1):
        stripped = line.strip()
        if stripped.startswith("#"):
            parts = stripped[1:].split(None, 2)
            directive = parts[0] if parts else ""
            if directive == "define" and len(parts) >= 2:
                if active():
                    name = parts[1]
                    if "(" in name:
                        raise MiniCSyntaxError(
                            "function-like macros are not supported", lineno)
                    defines[name] = parts[2] if len(parts) > 2 else "1"
            elif directive == "undef" and len(parts) >= 2:
                if active():
                    defines.pop(parts[1], None)
            elif directive == "ifdef":
                active_stack.append(parts[1] in defines if len(parts) > 1
                                    else False)
            elif directive == "ifndef":
                active_stack.append(parts[1] not in defines if len(parts) > 1
                                    else True)
            elif directive == "else":
                if not active_stack:
                    raise MiniCSyntaxError("#else without #if", lineno)
                active_stack[-1] = not active_stack[-1]
            elif directive == "endif":
                if not active_stack:
                    raise MiniCSyntaxError("#endif without #if", lineno)
                active_stack.pop()
            elif directive == "include":
                pass  # the driver concatenates sources; includes are no-ops
            else:
                raise MiniCSyntaxError(
                    f"unsupported preprocessor directive #{directive}", lineno)
            out_lines.append("")  # keep line numbering
            continue
        if not active():
            out_lines.append("")
            continue
        out_lines.append(line)
    if active_stack:
        raise MiniCSyntaxError("unterminated #if block")

    text = "\n".join(out_lines)
    # Token-wise macro substitution outside string/char literals
    # (repeated to allow chained defines).
    if defines:
        import re
        # Either a literal (group 1, passed through) or an identifier.
        pattern = re.compile(
            r'("(?:[^"\\]|\\.)*"|\'(?:[^\'\\]|\\.)*\')'
            r"|\b([A-Za-z_][A-Za-z0-9_]*)\b")
        for _ in range(8):
            changed = False

            def sub(match):
                nonlocal changed
                if match.group(1) is not None:
                    return match.group(1)
                word = match.group(2)
                if word in defines:
                    changed = True
                    body = defines[word]
                    return body if body.strip().isalnum() else f"({body})"
                return word

            text = pattern.sub(sub, text)
            if not changed:
                break
    return text


def tokenize(source: str,
             defines: Optional[Dict[str, str]] = None) -> List[Token]:
    """Lex MiniC source (after preprocessing) into a token list."""
    text = _preprocess(source, defines)
    tokens: List[Token] = []
    line, col = 1, 1
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            col = 1
            i += 1
            continue
        if c in " \t\r":
            i += 1
            col += 1
            continue
        start_col = col
        if c.isalpha() or c == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            kind = "kw" if word in KEYWORDS else "id"
            tokens.append(Token(kind, word, line, start_col))
            col += j - i
            i = j
            continue
        if c.isdigit() or (c == "." and i + 1 < n and text[i + 1].isdigit()):
            j = i
            is_float = False
            if text[j] == "0" and j + 1 < n and text[j + 1] in "xX":
                j += 2
                while j < n and (text[j] in "0123456789abcdefABCDEF"):
                    j += 1
                value: object = int(text[i:j], 16)
            else:
                while j < n and text[j].isdigit():
                    j += 1
                if j < n and text[j] == ".":
                    is_float = True
                    j += 1
                    while j < n and text[j].isdigit():
                        j += 1
                if j < n and text[j] in "eE":
                    is_float = True
                    j += 1
                    if j < n and text[j] in "+-":
                        j += 1
                    while j < n and text[j].isdigit():
                        j += 1
                value = float(text[i:j]) if is_float else int(text[i:j])
            if j < n and text[j] in "fF" and is_float:
                j += 1  # float suffix
            while j < n and text[j] in "uUlL":
                j += 1  # integer suffixes accepted and ignored
            tokens.append(Token("num", value, line, start_col))
            col += j - i
            i = j
            continue
        if c == '"':
            j = i + 1
            chars: List[str] = []
            while j < n and text[j] != '"':
                if text[j] == "\\" and j + 1 < n:
                    chars.append(_ESCAPES.get(text[j + 1], text[j + 1]))
                    j += 2
                else:
                    chars.append(text[j])
                    j += 1
            if j >= n:
                raise MiniCSyntaxError("unterminated string", line, start_col)
            tokens.append(Token("str", "".join(chars), line, start_col))
            col += j - i + 1
            i = j + 1
            continue
        if c == "'":
            j = i + 1
            if j < n and text[j] == "\\" and j + 1 < n:
                ch = _ESCAPES.get(text[j + 1], text[j + 1])
                j += 2
            elif j < n:
                ch = text[j]
                j += 1
            else:
                raise MiniCSyntaxError("unterminated char literal", line, col)
            if j >= n or text[j] != "'":
                raise MiniCSyntaxError("unterminated char literal", line, col)
            tokens.append(Token("char", ord(ch), line, start_col))
            col += j - i + 1
            i = j + 1
            continue
        for op_text in _OPERATORS:
            if text.startswith(op_text, i):
                tokens.append(Token("op", op_text, line, start_col))
                i += len(op_text)
                col += len(op_text)
                break
        else:
            raise MiniCSyntaxError(f"unexpected character {c!r}", line, col)
    tokens.append(Token("eof", None, line, col))
    return tokens
