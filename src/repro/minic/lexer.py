"""MiniC lexer with a minimal preprocessor.

Tokenizes the C subset and handles the preprocessor features the WABench
sources use: ``//`` and ``/* */`` comments, object-like ``#define``
constants, ``#undef``, and ``#ifdef``/``#ifndef``/``#else``/``#endif``
conditional blocks.  Function-like macros are not supported (the
benchmark sources use inline functions instead).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, NamedTuple, Optional

from ..errors import MiniCSyntaxError

KEYWORDS = frozenset((
    "void", "char", "short", "int", "long", "float", "double",
    "unsigned", "signed", "const", "static", "extern",
    "if", "else", "while", "do", "for", "return", "break", "continue",
    "switch", "case", "default", "sizeof",
))

# Multi-character operators, longest first so maximal munch works.
_OPERATORS = [
    "<<=", ">>=", "...",
    "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--", "->",
    "+", "-", "*", "/", "%", "=", "<", ">", "!", "&", "|", "^", "~",
    "(", ")", "{", "}", "[", "]", ";", ",", "?", ":", ".",
]

_ESCAPES = {"n": "\n", "t": "\t", "r": "\r", "0": "\0", "\\": "\\",
            "'": "'", '"': '"', "a": "\a", "b": "\b", "f": "\f", "v": "\v"}


class Token(NamedTuple):
    """One lexical token: kind is 'id', 'kw', 'num', 'str', 'char', 'op',
    or 'eof'; value carries the decoded payload.

    A NamedTuple rather than a frozen dataclass: the lexer materializes
    tens of thousands of these per compile, and the tuple constructor
    avoids the per-field ``object.__setattr__`` a frozen dataclass pays.
    """

    kind: str
    value: object
    line: int
    col: int

    def __repr__(self):
        return f"Token({self.kind}, {self.value!r}, {self.line}:{self.col})"


import re as _re

# Comments and literals in one scan: plain text between matches is
# copied in bulk instead of character by character.  Literals are
# matched (and passed through) so comment markers inside strings are
# never treated as comments, exactly like the char-by-char scanner.
_STRIP_RE = _re.compile(
    r"//[^\n]*"
    r"|(?P<block>/\*[\s\S]*?\*/)"
    r"|(?P<badblock>/\*)"
    r"|(?P<lit>\"(?:\\[\s\S]|[^\"\\])*\"|'(?:\\[\s\S]|[^'\\])*')"
    r"|(?P<badlit>[\"'])")


def _strip_comments(source: str) -> str:
    """Remove comments, preserving newlines so line numbers survive."""
    def repl(m: "_re.Match") -> str:
        group = m.lastgroup
        if group == "lit":
            return m.group()
        if group == "block":
            return "\n" * m.group().count("\n")
        if group == "badblock":
            raise MiniCSyntaxError("unterminated block comment")
        if group == "badlit":
            raise MiniCSyntaxError("unterminated literal")
        return ""  # line comment
    return _STRIP_RE.sub(repl, source)


def _preprocess(source: str,
                predefined: Optional[Dict[str, str]] = None) -> str:
    """Expand the supported preprocessor subset into plain MiniC."""
    defines: Dict[str, str] = dict(predefined or {})
    out_lines: List[str] = []
    # Stack of booleans: is the current conditional region active?
    active_stack: List[bool] = []

    def active() -> bool:
        return all(active_stack)

    for lineno, line in enumerate(_strip_comments(source).split("\n"), 1):
        stripped = line.strip()
        if stripped.startswith("#"):
            parts = stripped[1:].split(None, 2)
            directive = parts[0] if parts else ""
            if directive == "define" and len(parts) >= 2:
                if active():
                    name = parts[1]
                    if "(" in name:
                        raise MiniCSyntaxError(
                            "function-like macros are not supported", lineno)
                    defines[name] = parts[2] if len(parts) > 2 else "1"
            elif directive == "undef" and len(parts) >= 2:
                if active():
                    defines.pop(parts[1], None)
            elif directive == "ifdef":
                active_stack.append(parts[1] in defines if len(parts) > 1
                                    else False)
            elif directive == "ifndef":
                active_stack.append(parts[1] not in defines if len(parts) > 1
                                    else True)
            elif directive == "else":
                if not active_stack:
                    raise MiniCSyntaxError("#else without #if", lineno)
                active_stack[-1] = not active_stack[-1]
            elif directive == "endif":
                if not active_stack:
                    raise MiniCSyntaxError("#endif without #if", lineno)
                active_stack.pop()
            elif directive == "include":
                pass  # the driver concatenates sources; includes are no-ops
            else:
                raise MiniCSyntaxError(
                    f"unsupported preprocessor directive #{directive}", lineno)
            out_lines.append("")  # keep line numbering
            continue
        if not active():
            out_lines.append("")
            continue
        out_lines.append(line)
    if active_stack:
        raise MiniCSyntaxError("unterminated #if block")

    text = "\n".join(out_lines)
    # Token-wise macro substitution outside string/char literals
    # (repeated to allow chained defines).  The identifier alternative
    # matches only *defined* names, so undefined identifiers — the vast
    # majority of the text — are never visited by the callback.
    if defines:
        import re
        pattern = re.compile(
            r'("(?:[^"\\]|\\.)*"|\'(?:[^\'\\]|\\.)*\')'
            r"|\b(" + "|".join(re.escape(name) for name in defines) +
            r")\b")
        for _ in range(8):
            changed = False

            def sub(match):
                nonlocal changed
                if match.group(1) is not None:
                    return match.group(1)
                word = match.group(2)
                if word in defines:
                    changed = True
                    body = defines[word]
                    return body if body.strip().isalnum() else f"({body})"
                return word

            text = pattern.sub(sub, text)
            if not changed:
                break
    return text


import re as _re

# Master scanning pattern: one alternative per token class, tried in the
# same precedence order as the reference scanner (numbers before
# operators so ``.5`` lexes as a literal; operator alternatives longest
# first so maximal munch is preserved).  ``\\[\s\S]`` lets escapes cover
# newlines exactly like the char-by-char scanner did.
_TOKEN_RE = _re.compile(
    r"(?P<nl>\n)"
    r"|(?P<ws>[ \t\r]+)"
    r"|(?P<id>[A-Za-z_][A-Za-z0-9_]*)"
    r"|(?P<num>0[xX][0-9A-Fa-f]*"
    r"|(?:[0-9]+(?:\.[0-9]*)?|\.[0-9]+)(?:[eE][+-]?[0-9]*)?)"
    r"|(?P<str>\"(?:\\[\s\S]|[^\"\\])*\")"
    r"|(?P<char>'(?:\\[\s\S]|[\s\S])')"
    r"|(?P<op>" + "|".join(_re.escape(o) for o in _OPERATORS) + r")")

_ESCAPE_RE = _re.compile(r"\\([\s\S])")


def _unescape(body: str) -> str:
    return _ESCAPE_RE.sub(lambda m: _ESCAPES.get(m.group(1), m.group(1)),
                          body)


# Token lists are pure functions of (preprocessed input, defines) and are
# never mutated by the parser, so repeat compiles of the same source —
# the -O0/-O2 pair of a fuzz cell, warm benchmark rebuilds — skip the
# scan entirely.  Bounded so long campaigns don't accumulate sources.
_token_cache: Dict[tuple, List[Token]] = {}
_TOKEN_CACHE_CAP = 32


def tokenize(source: str,
             defines: Optional[Dict[str, str]] = None) -> List[Token]:
    """Lex MiniC source into a token list (regex fast path).

    Byte-equivalent to :func:`_tokenize_reference` — the test suite
    cross-checks the two scanners token for token, including line and
    column bookkeeping.
    """
    cache_key = (source, tuple(sorted(defines.items())) if defines else ())
    cached = _token_cache.get(cache_key)
    if cached is not None:
        return cached
    text = _preprocess(source, defines)
    tokens: List[Token] = []
    append = tokens.append
    line = 1
    line_start = 0
    i, n = 0, len(text)
    match = _TOKEN_RE.match
    while i < n:
        m = match(text, i)
        if m is None:
            c = text[i]
            if c == '"':
                raise MiniCSyntaxError("unterminated string", line,
                                       i - line_start + 1)
            if c == "'":
                raise MiniCSyntaxError("unterminated char literal", line,
                                       i - line_start + 1)
            raise MiniCSyntaxError(f"unexpected character {c!r}", line,
                                   i - line_start + 1)
        kind = m.lastgroup
        j = m.end()
        if kind == "id":
            word = m.group()
            append(Token("kw" if word in KEYWORDS else "id", word, line,
                         i - line_start + 1))
        elif kind == "num":
            lit = m.group()
            if lit[0] == "0" and len(lit) > 1 and lit[1] in "xX":
                if len(lit) == 2:
                    raise MiniCSyntaxError(
                        "hex literal needs at least one digit", line,
                        i - line_start + 1)
                value: object = int(lit, 16)
                is_float = False
            else:
                is_float = "." in lit or "e" in lit or "E" in lit
                value = float(lit) if is_float else int(lit)
            if is_float and j < n and text[j] in "fF":
                j += 1  # float suffix
            while j < n and text[j] in "uUlL":
                j += 1  # integer suffixes accepted and ignored
            append(Token("num", value, line, i - line_start + 1))
        elif kind == "op":
            append(Token("op", m.group(), line, i - line_start + 1))
        elif kind == "nl":
            line += 1
            line_start = j
        elif kind == "str":
            body = m.group()[1:-1]
            append(Token("str",
                         _unescape(body) if "\\" in body else body,
                         line, i - line_start + 1))
        elif kind == "char":
            body = m.group()[1:-1]
            ch = _ESCAPES.get(body[1], body[1]) if body[0] == "\\" else body
            append(Token("char", ord(ch), line, i - line_start + 1))
        # whitespace: fall through
        i = j
    tokens.append(Token("eof", None, line, n - line_start + 1))
    if len(_token_cache) >= _TOKEN_CACHE_CAP:
        _token_cache.clear()
    _token_cache[cache_key] = tokens
    return tokens


def _tokenize_reference(source: str,
                        defines: Optional[Dict[str, str]] = None
                        ) -> List[Token]:
    """The original char-by-char scanner, kept as the equivalence oracle
    for :func:`tokenize` (tests/test_speed.py)."""
    text = _preprocess(source, defines)
    tokens: List[Token] = []
    line, col = 1, 1
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            col = 1
            i += 1
            continue
        if c in " \t\r":
            i += 1
            col += 1
            continue
        start_col = col
        if c.isalpha() or c == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            kind = "kw" if word in KEYWORDS else "id"
            tokens.append(Token(kind, word, line, start_col))
            col += j - i
            i = j
            continue
        if c.isdigit() or (c == "." and i + 1 < n and text[i + 1].isdigit()):
            j = i
            is_float = False
            if text[j] == "0" and j + 1 < n and text[j + 1] in "xX":
                j += 2
                while j < n and (text[j] in "0123456789abcdefABCDEF"):
                    j += 1
                if j == i + 2:
                    raise MiniCSyntaxError(
                        "hex literal needs at least one digit", line,
                        start_col)
                value: object = int(text[i:j], 16)
            else:
                while j < n and text[j].isdigit():
                    j += 1
                if j < n and text[j] == ".":
                    is_float = True
                    j += 1
                    while j < n and text[j].isdigit():
                        j += 1
                if j < n and text[j] in "eE":
                    is_float = True
                    j += 1
                    if j < n and text[j] in "+-":
                        j += 1
                    while j < n and text[j].isdigit():
                        j += 1
                value = float(text[i:j]) if is_float else int(text[i:j])
            if j < n and text[j] in "fF" and is_float:
                j += 1  # float suffix
            while j < n and text[j] in "uUlL":
                j += 1  # integer suffixes accepted and ignored
            tokens.append(Token("num", value, line, start_col))
            col += j - i
            i = j
            continue
        if c == '"':
            j = i + 1
            chars: List[str] = []
            while j < n and text[j] != '"':
                if text[j] == "\\" and j + 1 < n:
                    chars.append(_ESCAPES.get(text[j + 1], text[j + 1]))
                    j += 2
                else:
                    chars.append(text[j])
                    j += 1
            if j >= n:
                raise MiniCSyntaxError("unterminated string", line, start_col)
            tokens.append(Token("str", "".join(chars), line, start_col))
            col += j - i + 1
            i = j + 1
            continue
        if c == "'":
            j = i + 1
            if j < n and text[j] == "\\" and j + 1 < n:
                ch = _ESCAPES.get(text[j + 1], text[j + 1])
                j += 2
            elif j < n:
                ch = text[j]
                j += 1
            else:
                raise MiniCSyntaxError("unterminated char literal", line, col)
            if j >= n or text[j] != "'":
                raise MiniCSyntaxError("unterminated char literal", line, col)
            tokens.append(Token("char", ord(ch), line, start_col))
            col += j - i + 1
            i = j + 1
            continue
        for op_text in _OPERATORS:
            if text.startswith(op_text, i):
                tokens.append(Token("op", op_text, line, start_col))
                i += len(op_text)
                col += len(op_text)
                break
        else:
            raise MiniCSyntaxError(f"unexpected character {c!r}", line, col)
    tokens.append(Token("eof", None, line, col))
    return tokens
