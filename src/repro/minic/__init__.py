"""MiniC: the C-subset frontend the benchmark suite is written in.

Plays the role of C + the WASI SDK's clang frontend in the paper's
toolchain: :func:`repro.minic.parser.parse` builds the AST and
:func:`repro.minic.sema.analyze` type-checks it; the optimizing backend
lives in :mod:`repro.compiler`.
"""

from . import ast
from .lexer import Token, tokenize
from .parser import parse
from .sema import BUILTINS, WASI_EXTERNS, SemanticAnalyzer, analyze
from .typesys import (CHAR, CType, DOUBLE, FLOAT, INT, LONG, SHORT, UCHAR,
                      UINT, ULONG, USHORT, VOID, array_of, func_type,
                      pointer_to)

__all__ = [
    "ast", "Token", "tokenize", "parse",
    "BUILTINS", "WASI_EXTERNS", "SemanticAnalyzer", "analyze",
    "CHAR", "CType", "DOUBLE", "FLOAT", "INT", "LONG", "SHORT", "UCHAR",
    "UINT", "ULONG", "USHORT", "VOID", "array_of", "func_type", "pointer_to",
]
