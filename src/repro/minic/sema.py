"""MiniC semantic analysis: name resolution, type checking, storage.

Walks the parsed AST and produces a *typed* tree:

* every expression node gets a ``ctype``;
* implicit conversions become explicit :class:`~repro.minic.ast.Cast`
  nodes, so the midend and code generators never re-derive conversion
  rules;
* identifiers get bindings — ``('local', index)``, ``('global', name)``,
  ``('func', name)``, or ``('builtin', name)``;
* locals are assigned storage: scalar locals whose address is never taken
  become Wasm locals; arrays and address-taken scalars get shadow-stack
  frame offsets (exactly the wasi-libc/LLVM lowering);
* functions whose address is taken are flagged so codegen emits them
  into the ``funcref`` table.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..errors import MiniCTypeError
from . import ast
from .typesys import (CHAR, CType, DOUBLE, FLOAT, INT, LONG, UINT, ULONG,
                      VOID, array_of, common_arith_type, compatible_assignment,
                      func_type, pointer_to, promote)

# Compiler intrinsics: name -> (ret, params).  Codegen lowers these to
# single Wasm instructions.
BUILTINS: Dict[str, Tuple[CType, Tuple[CType, ...]]] = {
    "__builtin_sqrt": (DOUBLE, (DOUBLE,)),
    "__builtin_fabs": (DOUBLE, (DOUBLE,)),
    "__builtin_floor": (DOUBLE, (DOUBLE,)),
    "__builtin_ceil": (DOUBLE, (DOUBLE,)),
    "__builtin_trunc": (DOUBLE, (DOUBLE,)),
    "__builtin_nearest": (DOUBLE, (DOUBLE,)),
    "__builtin_sqrtf": (FLOAT, (FLOAT,)),
    "__builtin_clz": (INT, (UINT,)),
    "__builtin_ctz": (INT, (UINT,)),
    "__builtin_popcount": (INT, (UINT,)),
    "__builtin_clzll": (INT, (ULONG,)),
    "__builtin_memory_size": (INT, ()),
    "__builtin_heap_base": (INT, ()),
    "__builtin_memory_grow": (INT, (INT,)),
    "__builtin_trap": (VOID, ()),
}

# Host interface: extern functions implemented by the runtime (WASI) or the
# native syscall layer.  name -> (wasi_name, ret, params).
WASI_EXTERNS: Dict[str, Tuple[str, CType, Tuple[CType, ...]]] = {
    "__wasi_fd_write": ("fd_write", INT, (INT, INT, INT, INT)),
    "__wasi_fd_read": ("fd_read", INT, (INT, INT, INT, INT)),
    "__wasi_fd_close": ("fd_close", INT, (INT,)),
    "__wasi_fd_seek": ("fd_seek", INT, (INT, LONG, INT, INT)),
    "__wasi_path_open": ("path_open", INT,
                         (INT, INT, INT, INT, INT, LONG, LONG, INT, INT)),
    "__wasi_fd_pread": ("fd_pread", INT, (INT, INT, INT, LONG, INT)),
    "__wasi_fd_pwrite": ("fd_pwrite", INT, (INT, INT, INT, LONG, INT)),
    "__wasi_fd_fdstat_get": ("fd_fdstat_get", INT, (INT, INT)),
    "__wasi_fd_readdir": ("fd_readdir", INT, (INT, INT, INT, LONG, INT)),
    "__wasi_path_filestat_get": ("path_filestat_get", INT,
                                 (INT, INT, INT, INT, INT)),
    "__wasi_path_unlink_file": ("path_unlink_file", INT, (INT, INT, INT)),
    "__wasi_path_rename": ("path_rename", INT,
                           (INT, INT, INT, INT, INT, INT)),
    "__wasi_args_sizes_get": ("args_sizes_get", INT, (INT, INT)),
    "__wasi_args_get": ("args_get", INT, (INT, INT)),
    "__wasi_environ_sizes_get": ("environ_sizes_get", INT, (INT, INT)),
    "__wasi_environ_get": ("environ_get", INT, (INT, INT)),
    "__wasi_clock_time_get": ("clock_time_get", INT, (INT, LONG, INT)),
    "__wasi_random_get": ("random_get", INT, (INT, INT)),
    "__wasi_proc_exit": ("proc_exit", VOID, (INT,)),
}


class _Scope:
    def __init__(self, parent: Optional["_Scope"] = None):
        self.parent = parent
        self.names: Dict[str, ast.VarDecl] = {}

    def declare(self, decl: ast.VarDecl) -> None:
        if decl.name in self.names:
            raise MiniCTypeError(f"redeclaration of {decl.name!r}", decl.line)
        self.names[decl.name] = decl

    def lookup(self, name: str) -> Optional[ast.VarDecl]:
        scope: Optional[_Scope] = self
        while scope is not None:
            if name in scope.names:
                return scope.names[name]
            scope = scope.parent
        return None


def _cast_to(expr: ast.Expr, target: CType) -> ast.Expr:
    """Wrap in a Cast node unless the type already matches."""
    if expr.ctype == target:
        return expr
    cast = ast.Cast(line=expr.line, target_type=target, operand=expr)
    cast.ctype = target
    return cast


class SemanticAnalyzer:
    """Performs the full analysis over one translation unit."""

    def __init__(self, unit: ast.TranslationUnit,
                 force_locals_to_memory: bool = False):
        self.unit = unit
        # -O0 mode: every local lives on the shadow stack, the way clang
        # -O0 allocas every variable.
        self.force_locals_to_memory = force_locals_to_memory
        self.func_types: Dict[str, CType] = {}
        self.func_defined: Set[str] = set()
        self.globals: Dict[str, ast.GlobalVar] = {}
        self.address_taken_funcs: Set[str] = set()
        self.extern_funcs: Dict[str, str] = {}   # name -> wasi import name
        # per-function state
        self._current: Optional[ast.FuncDef] = None
        self._scope: Optional[_Scope] = None
        self._all_decls: List[ast.VarDecl] = []
        self._loop_depth = 0

    # -- entry point --------------------------------------------------------

    def analyze(self) -> ast.TranslationUnit:
        for glob in self.unit.globals:
            if glob.name in self.globals:
                raise MiniCTypeError(f"duplicate global {glob.name!r}",
                                     glob.line)
            if glob.name in BUILTINS or glob.name in WASI_EXTERNS:
                raise MiniCTypeError(
                    f"{glob.name!r} is a reserved name", glob.line)
            self.globals[glob.name] = glob
            self._check_global_init(glob)

        for func in self.unit.functions:
            sig = func_type(func.ret, tuple(p.ptype for p in func.params))
            prior = self.func_types.get(func.name)
            if prior is not None and prior != sig:
                raise MiniCTypeError(
                    f"conflicting declarations of {func.name!r}", func.line)
            self.func_types[func.name] = sig
            if func.body is not None:
                if func.name in self.func_defined:
                    raise MiniCTypeError(
                        f"redefinition of {func.name!r}", func.line)
                self.func_defined.add(func.name)
            elif func.name in WASI_EXTERNS:
                wasi_name, ret, params = WASI_EXTERNS[func.name]
                if sig != func_type(ret, params):
                    raise MiniCTypeError(
                        f"{func.name!r} signature does not match the WASI "
                        "interface", func.line)
                self.extern_funcs[func.name] = wasi_name

        for func in self.unit.functions:
            if func.body is not None:
                self._analyze_function(func)

        # Declared, never defined, not a known extern -> link error unless
        # unreachable; record for the driver's reachability check.
        return self.unit

    # -- globals ------------------------------------------------------------

    def _check_global_init(self, glob: ast.GlobalVar) -> None:
        t = glob.var_type
        if t.is_void or (t.is_func):
            raise MiniCTypeError(
                f"global {glob.name!r} has invalid type {t}", glob.line)
        if glob.init_list is not None:
            if not t.is_array:
                raise MiniCTypeError(
                    f"initializer list on non-array {glob.name!r}", glob.line)
            flat = _flatten_array(t)
            if len(glob.init_list) > flat:
                raise MiniCTypeError(
                    f"too many initializers for {glob.name!r}", glob.line)
            for item in glob.init_list:
                if not isinstance(item, (ast.IntLit, ast.FloatLit,
                                         ast.Unary, ast.Binary,
                                         ast.SizeofType, ast.StrLit)):
                    raise MiniCTypeError(
                        f"non-constant initializer for {glob.name!r}",
                        glob.line)
        elif glob.init is not None:
            if isinstance(glob.init, ast.StrLit):
                return
            from .parser import _fold_const_int
            if isinstance(glob.init, ast.FloatLit):
                return
            folded = _fold_const_int(glob.init)
            if folded is None:
                raise MiniCTypeError(
                    f"non-constant initializer for {glob.name!r}", glob.line)
            glob.init = ast.IntLit(line=glob.line, value=folded)

    # -- functions ------------------------------------------------------------

    def _analyze_function(self, func: ast.FuncDef) -> None:
        self._current = func
        self._scope = _Scope()
        self._all_decls = []
        self._loop_depth = 0
        # Parameters become pseudo-decls in the outermost scope.
        param_decls: List[ast.VarDecl] = []
        for param in func.params:
            ptype = param.ptype.decay()
            decl = ast.VarDecl(line=param.line, name=param.name,
                               var_type=ptype)
            if param.name:
                self._scope.declare(decl)
            param_decls.append(decl)
            self._all_decls.append(decl)
        self._visit_stmt(func.body)

        # Storage assignment: wasm locals vs shadow-stack frame.
        index = 0
        offset = 0
        func.local_types = []
        for decl in self._all_decls:
            t = decl.var_type
            if self.force_locals_to_memory:
                decl.needs_memory = True
            if t.is_array or decl.needs_memory:
                align = t.align
                offset = (offset + align - 1) & ~(align - 1)
                decl.frame_offset = offset
                decl.needs_memory = True
                offset += t.size
                decl.local_index = -1
            else:
                decl.local_index = index
                func.local_types.append(t)
                index += 1
        func.frame_size = (offset + 15) & ~15
        # Parameters that ended up needing memory still arrive in wasm
        # locals; codegen copies them into the frame.  Record their order.
        func.param_decls = param_decls  # type: ignore[attr-defined]
        self._current = None

    # -- statements -----------------------------------------------------------

    def _visit_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.DeclGroup):
            for s in stmt.statements:
                self._visit_stmt(s)
        elif isinstance(stmt, ast.Block):
            outer = self._scope
            self._scope = _Scope(outer)
            for s in stmt.statements:
                self._visit_stmt(s)
            self._scope = outer
        elif isinstance(stmt, ast.VarDecl):
            self._visit_decl(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            if stmt.expr is not None:
                stmt.expr = self._visit_expr(stmt.expr)
        elif isinstance(stmt, ast.If):
            stmt.cond = self._check_condition(stmt.cond)
            self._visit_stmt(stmt.then)
            if stmt.other is not None:
                self._visit_stmt(stmt.other)
        elif isinstance(stmt, ast.While):
            stmt.cond = self._check_condition(stmt.cond)
            self._loop_depth += 1
            self._visit_stmt(stmt.body)
            self._loop_depth -= 1
        elif isinstance(stmt, ast.DoWhile):
            self._loop_depth += 1
            self._visit_stmt(stmt.body)
            self._loop_depth -= 1
            stmt.cond = self._check_condition(stmt.cond)
        elif isinstance(stmt, ast.For):
            outer = self._scope
            self._scope = _Scope(outer)
            if stmt.init is not None:
                self._visit_stmt(stmt.init)
            if stmt.cond is not None:
                stmt.cond = self._check_condition(stmt.cond)
            if stmt.step is not None:
                stmt.step = self._visit_expr(stmt.step)
            self._loop_depth += 1
            self._visit_stmt(stmt.body)
            self._loop_depth -= 1
            self._scope = outer
        elif isinstance(stmt, ast.Return):
            ret = self._current.ret
            if stmt.value is not None:
                if ret.is_void:
                    raise MiniCTypeError(
                        f"{self._current.name}: returning a value from void "
                        "function", stmt.line)
                stmt.value = _cast_to(self._visit_expr(stmt.value), ret)
            elif not ret.is_void:
                raise MiniCTypeError(
                    f"{self._current.name}: missing return value", stmt.line)
        elif isinstance(stmt, (ast.Break, ast.Continue)):
            if self._loop_depth == 0 and isinstance(stmt, ast.Continue):
                raise MiniCTypeError("continue outside loop", stmt.line)
        elif isinstance(stmt, ast.Switch):
            stmt.scrutinee = self._visit_expr(stmt.scrutinee)
            if not stmt.scrutinee.ctype.is_integer:
                raise MiniCTypeError("switch requires integer scrutinee",
                                     stmt.line)
            stmt.scrutinee = _cast_to(stmt.scrutinee, INT)
            seen: Set[Optional[int]] = set()
            self._loop_depth += 1  # break works inside switch
            for case in stmt.cases:
                if case.value in seen:
                    raise MiniCTypeError(
                        f"duplicate case {case.value}", case.line)
                seen.add(case.value)
                for s in case.body:
                    self._visit_stmt(s)
            self._loop_depth -= 1
        else:
            raise MiniCTypeError(f"unhandled statement {type(stmt).__name__}",
                                 stmt.line)

    def _visit_decl(self, decl: ast.VarDecl) -> None:
        t = decl.var_type
        if t.is_void:
            raise MiniCTypeError(f"variable {decl.name!r} has void type",
                                 decl.line)
        self._scope.declare(decl)
        self._all_decls.append(decl)
        if decl.init is not None:
            if isinstance(decl.init, ast.StrLit) and t.is_array:
                value = decl.init
                value.ctype = pointer_to(CHAR)
                if len(value.value) > t.length:
                    raise MiniCTypeError(
                        f"string too long for {decl.name!r}", decl.line)
            else:
                decl.init = self._visit_expr(decl.init)
                target = t.decay() if t.is_array else t
                if not compatible_assignment(target, decl.init.ctype):
                    raise MiniCTypeError(
                        f"cannot initialize {decl.name!r} ({t}) from "
                        f"{decl.init.ctype}", decl.line)
                if not t.is_array:
                    decl.init = _cast_to(decl.init, t)
        if decl.init_list is not None:
            if not t.is_array:
                raise MiniCTypeError(
                    f"initializer list on non-array {decl.name!r}", decl.line)
            if len(decl.init_list) > _flatten_array(t):
                raise MiniCTypeError(
                    f"too many initializers for {decl.name!r}", decl.line)
            elem = _base_elem(t)
            decl.init_list = [_cast_to(self._visit_expr(e), elem)
                              for e in decl.init_list]

    def _check_condition(self, expr: ast.Expr) -> ast.Expr:
        expr = self._visit_expr(expr)
        if not expr.ctype.is_scalar:
            raise MiniCTypeError(f"condition has non-scalar type "
                                 f"{expr.ctype}", expr.line)
        return expr

    # -- expressions ------------------------------------------------------

    def _visit_expr(self, expr: ast.Expr) -> ast.Expr:
        method = getattr(self, f"_expr_{type(expr).__name__}", None)
        if method is None:
            raise MiniCTypeError(
                f"unhandled expression {type(expr).__name__}", expr.line)
        return method(expr)

    def _expr_IntLit(self, expr: ast.IntLit) -> ast.Expr:
        expr.ctype = LONG if abs(expr.value) > 0x7FFFFFFF else INT
        return expr

    def _expr_FloatLit(self, expr: ast.FloatLit) -> ast.Expr:
        expr.ctype = DOUBLE
        return expr

    def _expr_StrLit(self, expr: ast.StrLit) -> ast.Expr:
        expr.ctype = pointer_to(CHAR)
        return expr

    def _expr_Ident(self, expr: ast.Ident) -> ast.Expr:
        decl = self._scope.lookup(expr.name) if self._scope else None
        if decl is not None:
            expr.binding = ("local", decl)
            expr.ctype = decl.var_type.decay()
            return expr
        glob = self.globals.get(expr.name)
        if glob is not None:
            expr.binding = ("global", glob)
            expr.ctype = glob.var_type.decay()
            return expr
        if expr.name in self.func_types:
            expr.binding = ("func", expr.name)
            expr.ctype = pointer_to(self.func_types[expr.name])
            # A function name used anywhere except as a direct callee
            # decays to a pointer: it needs a funcref-table slot.
            if not getattr(expr, "_is_callee", False):
                self.address_taken_funcs.add(expr.name)
            return expr
        if expr.name in BUILTINS:
            ret, params = BUILTINS[expr.name]
            expr.binding = ("builtin", expr.name)
            expr.ctype = pointer_to(func_type(ret, params))
            return expr
        raise MiniCTypeError(f"undeclared identifier {expr.name!r}",
                             expr.line)

    def _expr_Unary(self, expr: ast.Unary) -> ast.Expr:
        expr.operand = self._visit_expr(expr.operand)
        t = expr.operand.ctype
        if expr.op == "!":
            if not t.is_scalar:
                raise MiniCTypeError("! requires scalar operand", expr.line)
            expr.ctype = INT
            return expr
        if expr.op == "~":
            if not t.is_integer:
                raise MiniCTypeError("~ requires integer operand", expr.line)
            target = promote(t)
            expr.operand = _cast_to(expr.operand, target)
            expr.ctype = target
            return expr
        if expr.op == "-":
            if not t.is_arith:
                raise MiniCTypeError("unary - requires arithmetic operand",
                                     expr.line)
            target = promote(t)
            expr.operand = _cast_to(expr.operand, target)
            expr.ctype = target
            return expr
        raise MiniCTypeError(f"unknown unary operator {expr.op}", expr.line)

    def _expr_AddrOf(self, expr: ast.AddrOf) -> ast.Expr:
        inner = expr.operand
        if isinstance(inner, ast.Ident):
            inner = self._visit_expr(inner)
            expr.operand = inner
            kind = inner.binding[0]
            if kind == "local":
                decl = inner.binding[1]
                decl.needs_memory = True
                expr.ctype = pointer_to(decl.var_type.decay()
                                        if decl.var_type.is_array
                                        else decl.var_type)
                if decl.var_type.is_array:
                    expr.ctype = pointer_to(decl.var_type.elem)
                else:
                    expr.ctype = pointer_to(decl.var_type)
                return expr
            if kind == "global":
                glob = inner.binding[1]
                expr.ctype = pointer_to(glob.var_type.elem
                                        if glob.var_type.is_array
                                        else glob.var_type)
                return expr
            if kind == "func":
                self.address_taken_funcs.add(inner.binding[1])
                expr.ctype = inner.ctype  # already pointer-to-function
                return expr
            raise MiniCTypeError("cannot take address of builtin", expr.line)
        if isinstance(inner, ast.Index):
            inner = self._visit_expr(inner)
            expr.operand = inner
            self._require_lvalue_memory(inner)
            expr.ctype = pointer_to(inner.ctype)
            return expr
        if isinstance(inner, ast.Deref):
            # &*p == p
            inner = self._visit_expr(inner)
            return inner.operand
        raise MiniCTypeError("cannot take address of this expression",
                             expr.line)

    def _require_lvalue_memory(self, expr: ast.Expr) -> None:
        """Index lvalues always live in memory; nothing extra to mark."""

    def _expr_Deref(self, expr: ast.Deref) -> ast.Expr:
        expr.operand = self._visit_expr(expr.operand)
        t = expr.operand.ctype
        if not t.is_pointer:
            raise MiniCTypeError(f"cannot dereference {t}", expr.line)
        if t.pointee.is_func:
            expr.ctype = t  # *fp is still the function designator
            return expr.operand
        expr.ctype = t.pointee.decay()
        return expr

    def _expr_Binary(self, expr: ast.Binary) -> ast.Expr:
        expr.left = self._visit_expr(expr.left)
        expr.right = self._visit_expr(expr.right)
        lt, rt = expr.left.ctype, expr.right.ctype
        op = expr.op

        if op in ("&&", "||"):
            if not (lt.is_scalar and rt.is_scalar):
                raise MiniCTypeError(f"{op} requires scalar operands",
                                     expr.line)
            expr.ctype = INT
            return expr

        if op in ("==", "!=", "<", ">", "<=", ">="):
            if lt.is_pointer and rt.is_pointer:
                expr.ctype = INT
                return expr
            if lt.is_pointer and rt.is_integer:
                expr.right = _cast_to(expr.right, UINT)
                expr.ctype = INT
                return expr
            if rt.is_pointer and lt.is_integer:
                expr.left = _cast_to(expr.left, UINT)
                expr.ctype = INT
                return expr
            common = common_arith_type(lt, rt)
            expr.left = _cast_to(expr.left, common)
            expr.right = _cast_to(expr.right, common)
            expr.ctype = INT
            return expr

        if op in ("+", "-"):
            if lt.is_pointer and rt.is_integer:
                expr.right = _cast_to(expr.right, INT)
                expr.ctype = lt
                return expr
            if op == "+" and lt.is_integer and rt.is_pointer:
                expr.left = _cast_to(expr.left, INT)
                expr.ctype = rt
                return expr
            if op == "-" and lt.is_pointer and rt.is_pointer:
                if lt.pointee != rt.pointee:
                    raise MiniCTypeError("pointer subtraction type mismatch",
                                         expr.line)
                expr.ctype = INT
                return expr

        if op in ("<<", ">>"):
            if not (lt.is_integer and rt.is_integer):
                raise MiniCTypeError(f"{op} requires integer operands",
                                     expr.line)
            target = promote(lt)
            expr.left = _cast_to(expr.left, target)
            # Wasm shift instructions take both operands in the same type.
            expr.right = _cast_to(expr.right, target)
            expr.ctype = target
            return expr

        if op in ("&", "|", "^", "%") and not (lt.is_integer and
                                               rt.is_integer):
            raise MiniCTypeError(f"{op} requires integer operands", expr.line)

        common = common_arith_type(lt, rt)
        expr.left = _cast_to(expr.left, common)
        expr.right = _cast_to(expr.right, common)
        expr.ctype = common
        return expr

    def _expr_Assign(self, expr: ast.Assign) -> ast.Expr:
        expr.target = self._visit_expr(expr.target)
        expr.value = self._visit_expr(expr.value)
        self._check_assignable(expr.target)
        target_type = expr.target.ctype
        if expr.op != "=":
            # Compound assignment: type-check as target OP= value.
            binop = expr.op[:-1]
            if binop in ("<<", ">>", "&", "|", "^", "%"):
                if not (target_type.is_integer and
                        expr.value.ctype.is_integer):
                    raise MiniCTypeError(
                        f"{expr.op} requires integer operands", expr.line)
            if target_type.is_pointer:
                if binop not in ("+", "-") or not expr.value.ctype.is_integer:
                    raise MiniCTypeError(
                        f"invalid pointer compound assignment {expr.op}",
                        expr.line)
                expr.value = _cast_to(expr.value, INT)
                expr.ctype = target_type
                return expr
        if not compatible_assignment(target_type, expr.value.ctype):
            raise MiniCTypeError(
                f"cannot assign {expr.value.ctype} to {target_type}",
                expr.line)
        if expr.op == "=":
            expr.value = _cast_to(expr.value, target_type)
        expr.ctype = target_type
        return expr

    def _check_assignable(self, target: ast.Expr) -> None:
        if isinstance(target, ast.Ident):
            if target.binding[0] not in ("local", "global"):
                raise MiniCTypeError("cannot assign to function",
                                     target.line)
            decl = target.binding[1]
            var_type = decl.var_type
            if var_type.is_array:
                raise MiniCTypeError("cannot assign to array", target.line)
            return
        if isinstance(target, (ast.Deref, ast.Index)):
            return
        raise MiniCTypeError("expression is not assignable", target.line)

    def _expr_IncDec(self, expr: ast.IncDec) -> ast.Expr:
        expr.target = self._visit_expr(expr.target)
        self._check_assignable(expr.target)
        t = expr.target.ctype
        if not (t.is_arith or t.is_pointer):
            raise MiniCTypeError(f"cannot {expr.op} a {t}", expr.line)
        expr.ctype = t
        return expr

    def _expr_Cond(self, expr: ast.Cond) -> ast.Expr:
        expr.cond = self._check_condition(expr.cond)
        expr.then = self._visit_expr(expr.then)
        expr.other = self._visit_expr(expr.other)
        lt, rt = expr.then.ctype, expr.other.ctype
        if lt.is_arith and rt.is_arith:
            common = common_arith_type(lt, rt)
            expr.then = _cast_to(expr.then, common)
            expr.other = _cast_to(expr.other, common)
            expr.ctype = common
        elif lt.is_pointer and rt.is_pointer:
            expr.ctype = lt
        elif lt.is_pointer and rt.is_integer:
            expr.other = _cast_to(expr.other, lt)
            expr.ctype = lt
        elif rt.is_pointer and lt.is_integer:
            expr.then = _cast_to(expr.then, rt)
            expr.ctype = rt
        else:
            raise MiniCTypeError("incompatible ternary arms", expr.line)
        return expr

    def _expr_Call(self, expr: ast.Call) -> ast.Expr:
        func = expr.func
        if isinstance(func, ast.Ident):
            func._is_callee = True
            func = self._visit_expr(func)
            expr.func = func
        else:
            expr.func = self._visit_expr(func)
            func = expr.func
        ftype = func.ctype
        if ftype.is_pointer and ftype.pointee.is_func:
            sig = ftype.pointee
        else:
            raise MiniCTypeError(f"called object is not a function "
                                 f"({ftype})", expr.line)
        if len(expr.args) != len(sig.params):
            raise MiniCTypeError(
                f"call expects {len(sig.params)} arguments, got "
                f"{len(expr.args)}", expr.line)
        new_args = []
        for arg, ptype in zip(expr.args, sig.params):
            arg = self._visit_expr(arg)
            if not compatible_assignment(ptype.decay(), arg.ctype):
                raise MiniCTypeError(
                    f"argument type {arg.ctype} incompatible with "
                    f"{ptype}", expr.line)
            new_args.append(_cast_to(arg, ptype.decay()))
        expr.args = new_args
        expr.ctype = sig.ret
        return expr

    def _expr_Index(self, expr: ast.Index) -> ast.Expr:
        expr.base = self._visit_expr(expr.base)
        expr.index = _cast_to(self._visit_expr(expr.index), INT)
        base_type = expr.base.ctype
        if not base_type.is_pointer:
            raise MiniCTypeError(f"cannot index {base_type}", expr.line)
        expr.ctype = base_type.pointee.decay()
        return expr

    def _expr_Cast(self, expr: ast.Cast) -> ast.Expr:
        expr.operand = self._visit_expr(expr.operand)
        src, dst = expr.operand.ctype, expr.target_type
        ok = (dst.is_arith and src.is_arith) or \
             (dst.is_pointer and (src.is_pointer or src.is_integer)) or \
             (dst.is_integer and src.is_pointer) or dst.is_void
        if not ok:
            raise MiniCTypeError(f"invalid cast from {src} to {dst}",
                                 expr.line)
        expr.ctype = dst
        return expr

    def _expr_SizeofType(self, expr: ast.SizeofType) -> ast.Expr:
        expr.ctype = UINT
        return expr


def _flatten_array(t: CType) -> int:
    total = 1
    while t.is_array:
        total *= t.length
        t = t.elem
    return total


def _base_elem(t: CType) -> CType:
    while t.is_array:
        t = t.elem
    return t


def analyze(unit: ast.TranslationUnit,
            force_locals_to_memory: bool = False) -> SemanticAnalyzer:
    """Run semantic analysis; returns the analyzer (with symbol tables)."""
    analyzer = SemanticAnalyzer(unit, force_locals_to_memory)
    analyzer.analyze()
    return analyzer
