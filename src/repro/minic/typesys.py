"""MiniC's C-like type system.

MiniC models the C subset the paper's benchmarks need: ``void``, the
integer family (``char``/``short``/``int``/``long`` with ``unsigned``
variants), ``float``/``double``, pointers, constant-size (possibly
multi-dimensional) arrays, and function types (enabling function
pointers).  ``long`` is 64-bit and pointers are 32-bit, matching the
wasm32/WASI data model the paper's WASI SDK targets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..errors import MiniCTypeError
from ..wasm.types import F32, F64, I32, I64

_INT_RANK = {"char": 1, "short": 2, "int": 3, "long": 4}
_SIZES = {"void": 0, "char": 1, "short": 2, "int": 4, "long": 8,
          "float": 4, "double": 8}


@dataclass(frozen=True)
class CType:
    """One MiniC type.  Instances are immutable and hashable."""

    kind: str                       # void/char/short/int/long/float/double/
                                    # ptr/array/func
    unsigned: bool = False
    pointee: Optional["CType"] = None          # ptr
    elem: Optional["CType"] = None              # array
    length: int = 0                             # array
    params: Tuple["CType", ...] = ()            # func
    ret: Optional["CType"] = None               # func

    # -- classification -----------------------------------------------

    @property
    def is_void(self) -> bool:
        return self.kind == "void"

    @property
    def is_integer(self) -> bool:
        return self.kind in _INT_RANK

    @property
    def is_float(self) -> bool:
        return self.kind in ("float", "double")

    @property
    def is_arith(self) -> bool:
        return self.is_integer or self.is_float

    @property
    def is_pointer(self) -> bool:
        return self.kind == "ptr"

    @property
    def is_array(self) -> bool:
        return self.kind == "array"

    @property
    def is_func(self) -> bool:
        return self.kind == "func"

    @property
    def is_scalar(self) -> bool:
        return self.is_arith or self.is_pointer

    # -- layout -------------------------------------------------------------

    @property
    def size(self) -> int:
        if self.kind in _SIZES:
            return _SIZES[self.kind]
        if self.is_pointer:
            return 4
        if self.is_array:
            return self.elem.size * self.length
        raise MiniCTypeError(f"type {self} has no size")

    @property
    def align(self) -> int:
        if self.is_array:
            return self.elem.align
        return max(1, min(8, self.size))

    # -- lowering -----------------------------------------------------------

    @property
    def wasm_type(self) -> int:
        """The Wasm value type this scalar lowers to."""
        if self.kind in ("char", "short", "int") or self.is_pointer:
            return I32
        if self.kind == "long":
            return I64
        if self.kind == "float":
            return F32
        if self.kind == "double":
            return F64
        raise MiniCTypeError(f"type {self} has no wasm value type")

    # -- conversions -----------------------------------------------------------

    def decay(self) -> "CType":
        """Array-to-pointer / function-to-pointer decay."""
        if self.is_array:
            return CType("ptr", pointee=self.elem)
        if self.is_func:
            return CType("ptr", pointee=self)
        return self

    def rank(self) -> int:
        if not self.is_integer:
            raise MiniCTypeError(f"no integer rank for {self}")
        return _INT_RANK[self.kind]

    def __str__(self) -> str:
        if self.kind == "ptr":
            return f"{self.pointee}*"
        if self.kind == "array":
            return f"{self.elem}[{self.length}]"
        if self.kind == "func":
            ps = ", ".join(str(p) for p in self.params) or "void"
            return f"{self.ret}({ps})"
        return ("unsigned " if self.unsigned else "") + self.kind


VOID = CType("void")
CHAR = CType("char")
UCHAR = CType("char", unsigned=True)
SHORT = CType("short")
USHORT = CType("short", unsigned=True)
INT = CType("int")
UINT = CType("int", unsigned=True)
LONG = CType("long")
ULONG = CType("long", unsigned=True)
FLOAT = CType("float")
DOUBLE = CType("double")


def pointer_to(t: CType) -> CType:
    return CType("ptr", pointee=t)


def array_of(elem: CType, length: int) -> CType:
    if length <= 0:
        raise MiniCTypeError(f"array length must be positive, got {length}")
    return CType("array", elem=elem, length=length)


def func_type(ret: CType, params: Tuple[CType, ...]) -> CType:
    return CType("func", params=params, ret=ret)


def promote(t: CType) -> CType:
    """C integer promotion: char/short become int."""
    if t.is_integer and t.rank() < _INT_RANK["int"]:
        return INT
    return t


def common_arith_type(a: CType, b: CType) -> CType:
    """Usual arithmetic conversions."""
    if not (a.is_arith and b.is_arith):
        raise MiniCTypeError(f"no common arithmetic type for {a} and {b}")
    if "double" in (a.kind, b.kind):
        return DOUBLE
    if "float" in (a.kind, b.kind):
        return FLOAT
    a, b = promote(a), promote(b)
    if a == b:
        return a
    if a.rank() == b.rank():
        return a if a.unsigned else b
    wider = a if a.rank() > b.rank() else b
    narrower = b if wider is a else a
    if narrower.unsigned and not wider.unsigned and narrower.rank() == wider.rank():
        return CType(wider.kind, unsigned=True)
    return wider


def compatible_assignment(dst: CType, src: CType) -> bool:
    """Whether ``src`` may be assigned to ``dst`` (with conversion)."""
    if dst.is_arith and src.is_arith:
        return True
    if dst.is_pointer and src.is_pointer:
        # void* is a universal pointer; otherwise require matching pointees.
        return (dst.pointee.is_void or src.pointee.is_void or
                dst.pointee == src.pointee)
    if dst.is_pointer and src.is_integer:
        return True  # allowed with implicit conversion (C-ish looseness)
    if dst.is_integer and src.is_pointer:
        return True
    return False
