"""MiniC recursive-descent parser.

Builds the untyped AST from a token stream.  The grammar is the familiar
C core: declarations with pointer/array/function-pointer declarators,
statements including ``switch``, and the full C expression precedence
ladder with casts, ``sizeof(type)``, and the ternary operator.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..errors import MiniCSyntaxError
from . import ast
from .lexer import Token, tokenize
from .typesys import (CHAR, CType, DOUBLE, FLOAT, INT, LONG, SHORT, UCHAR,
                      UINT, ULONG, USHORT, VOID, array_of, func_type,
                      pointer_to)

_TYPE_KEYWORDS = frozenset((
    "void", "char", "short", "int", "long", "float", "double",
    "unsigned", "signed", "const",
))

_ASSIGN_OPS = frozenset(("=", "+=", "-=", "*=", "/=", "%=",
                         "<<=", ">>=", "&=", "|=", "^="))


class Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token helpers ---------------------------------------------------

    # The helpers below are the parser's hottest code; each reads
    # ``self.tokens[self.pos]`` directly rather than delegating, because
    # ``pos`` can never pass the trailing eof token (``next`` refuses to
    # advance past it), making the offset-0 index always in bounds.

    def peek(self, offset: int = 0) -> Token:
        if offset == 0:
            return self.tokens[self.pos]
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def next(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def at(self, kind: str, value=None) -> bool:
        tok = self.tokens[self.pos]
        return tok.kind == kind and (value is None or tok.value == value)

    def accept(self, kind: str, value=None) -> Optional[Token]:
        tok = self.tokens[self.pos]
        if tok.kind == kind and (value is None or tok.value == value):
            if kind != "eof":
                self.pos += 1
            return tok
        return None

    def expect(self, kind: str, value=None) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != kind or (value is not None and tok.value != value):
            want = value if value is not None else kind
            raise MiniCSyntaxError(
                f"expected {want!r}, got {tok.kind} {tok.value!r}",
                tok.line, tok.col)
        if kind != "eof":
            self.pos += 1
        return tok

    def _error(self, message: str) -> MiniCSyntaxError:
        tok = self.peek()
        return MiniCSyntaxError(message, tok.line, tok.col)

    # -- types ---------------------------------------------------------------

    def at_type(self) -> bool:
        tok = self.tokens[self.pos]
        return tok.kind == "kw" and tok.value in _TYPE_KEYWORDS

    def parse_base_type(self) -> CType:
        """Parse declaration specifiers into a base type."""
        unsigned = False
        signed = False
        kind: Optional[str] = None
        long_seen = False
        while self.at_type():
            word = self.next().value
            if word == "const":
                continue
            if word == "unsigned":
                unsigned = True
            elif word == "signed":
                signed = True
            elif word == "long":
                if long_seen or kind == "long":
                    pass  # `long long` collapses to long (both are i64)
                kind = "long"
                long_seen = True
            elif word in ("void", "char", "short", "int", "float", "double"):
                if word == "int" and long_seen:
                    continue  # `long int`
                if kind == "short" and word == "int":
                    continue  # `short int`
                kind = word
        if kind is None:
            kind = "int"  # `unsigned x`
        if kind == "void":
            return VOID
        if kind in ("float", "double"):
            return DOUBLE if kind == "double" else FLOAT
        base = {"char": UCHAR if unsigned else CHAR,
                "short": USHORT if unsigned else SHORT,
                "int": UINT if unsigned else INT,
                "long": ULONG if unsigned else LONG}[kind]
        # Plain `char` in MiniC is signed; `signed` keyword is a no-op.
        return base

    def parse_pointers(self, base: CType) -> CType:
        while self.accept("op", "*"):
            self.accept("kw", "const")
            base = pointer_to(base)
        return base

    def parse_param_list(self) -> Tuple[List[ast.Param], bool]:
        """Parse ``( params )`` after the opening paren was consumed."""
        params: List[ast.Param] = []
        if self.accept("op", ")"):
            return params, False
        if self.at("kw", "void") and self.peek(1).kind == "op" \
                and self.peek(1).value == ")":
            self.next()
            self.expect("op", ")")
            return params, False
        while True:
            line = self.peek().line
            base = self.parse_base_type()
            ptype = self.parse_pointers(base)
            name = ""
            if self.at("op", "("):
                # Function-pointer parameter: T (*name)(params)
                self.next()
                self.expect("op", "*")
                name = self.expect("id").value
                self.expect("op", ")")
                self.expect("op", "(")
                inner, _ = self.parse_param_list()
                ptype = pointer_to(func_type(
                    ptype, tuple(p.ptype for p in inner)))
            else:
                tok = self.accept("id")
                if tok:
                    name = tok.value
                # Array parameters decay to pointers.
                while self.accept("op", "["):
                    if not self.accept("op", "]"):
                        self.parse_constant_int()
                        self.expect("op", "]")
                    ptype = pointer_to(ptype)
            params.append(ast.Param(name, ptype, line))
            if not self.accept("op", ","):
                break
        self.expect("op", ")")
        return params, False

    def parse_constant_int(self) -> int:
        """A constant integer expression (for array sizes / case labels)."""
        expr = self.parse_conditional()
        value = _fold_const_int(expr)
        if value is None:
            raise self._error("expected integer constant expression")
        return value

    # -- top level --------------------------------------------------------

    def parse_translation_unit(self) -> ast.TranslationUnit:
        unit = ast.TranslationUnit()
        while not self.at("eof"):
            self.parse_top_level(unit)
        return unit

    def parse_top_level(self, unit: ast.TranslationUnit) -> None:
        is_static = bool(self.accept("kw", "static"))
        is_extern = bool(self.accept("kw", "extern"))
        if not is_static:
            is_static = bool(self.accept("kw", "static"))
        line = self.peek().line
        if not self.at_type():
            raise self._error("expected declaration")
        base = self.parse_base_type()
        first = True
        while True:
            dtype = self.parse_pointers(base)
            if self.at("op", ";") and first:
                self.next()
                return  # stray `int;`
            if self.at("op", "("):
                # Function-pointer global: T (*name[N]?)(params) [= init];
                self.next()
                self.expect("op", "*")
                name = self.expect("id").value
                fp_dims: List[int] = []
                while self.accept("op", "["):
                    fp_dims.append(self.parse_constant_int())
                    self.expect("op", "]")
                self.expect("op", ")")
                self.expect("op", "(")
                inner, _ = self.parse_param_list()
                gtype = pointer_to(func_type(
                    dtype, tuple(p.ptype for p in inner)))
                for dim in reversed(fp_dims):
                    gtype = array_of(gtype, dim)
                init = None
                if self.accept("op", "="):
                    init = self.parse_assignment()
                unit.globals.append(ast.GlobalVar(name, gtype, init,
                                                  line=line,
                                                  is_extern=is_extern))
            else:
                name = self.expect("id").value
                if self.at("op", "("):
                    # Function definition or prototype.
                    self.next()
                    params, _ = self.parse_param_list()
                    if self.at("op", "{"):
                        body = self.parse_block()
                        unit.functions.append(ast.FuncDef(
                            name, dtype, params, body, line, is_static))
                        return
                    self.expect("op", ";")
                    unit.functions.append(ast.FuncDef(
                        name, dtype, params, None, line, is_static))
                    return
                gtype = dtype
                dims: List[int] = []
                infer_first = False
                while self.accept("op", "["):
                    if self.at("op", "]") and not dims:
                        infer_first = True
                        dims.append(-1)
                        self.next()
                    else:
                        dims.append(self.parse_constant_int())
                        self.expect("op", "]")
                init = None
                init_list = None
                if self.accept("op", "="):
                    if self.at("op", "{"):
                        init_list = self.parse_init_list()
                    else:
                        init = self.parse_assignment()
                if infer_first:
                    if init_list is not None:
                        dims[0] = len(init_list)
                    elif init is not None and isinstance(init, ast.StrLit):
                        dims[0] = len(init.value)  # NUL already appended
                    else:
                        raise self._error(
                            f"cannot infer length of array {name!r}")
                for dim in reversed(dims):
                    gtype = array_of(gtype, dim)
                unit.globals.append(ast.GlobalVar(
                    name, gtype, init, init_list, line, is_extern))
            first = False
            if self.accept("op", ","):
                continue
            self.expect("op", ";")
            return

    def parse_init_list(self) -> List[ast.Expr]:
        self.expect("op", "{")
        items: List[ast.Expr] = []
        if not self.at("op", "}"):
            while True:
                if self.at("op", "{"):
                    items.extend(self.parse_init_list())  # flatten nested
                else:
                    items.append(self.parse_assignment())
                if not self.accept("op", ","):
                    break
                if self.at("op", "}"):
                    break  # trailing comma
        self.expect("op", "}")
        return items

    # -- statements -----------------------------------------------------------

    def parse_block(self) -> ast.Block:
        open_tok = self.expect("op", "{")
        block = ast.Block(line=open_tok.line)
        while not self.at("op", "}"):
            if self.at("eof"):
                raise self._error("unterminated block")
            block.statements.append(self.parse_statement())
        self.next()
        return block

    def parse_statement(self) -> ast.Stmt:
        tok = self.peek()
        if tok.kind == "op" and tok.value == "{":
            return self.parse_block()
        if tok.kind == "kw":
            if tok.value in ("static", "const") or tok.value in _TYPE_KEYWORDS:
                return self.parse_local_decl()
            if tok.value == "if":
                return self.parse_if()
            if tok.value == "while":
                return self.parse_while()
            if tok.value == "do":
                return self.parse_do_while()
            if tok.value == "for":
                return self.parse_for()
            if tok.value == "switch":
                return self.parse_switch()
            if tok.value == "return":
                self.next()
                value = None
                if not self.at("op", ";"):
                    value = self.parse_expression()
                self.expect("op", ";")
                return ast.Return(line=tok.line, value=value)
            if tok.value == "break":
                self.next()
                self.expect("op", ";")
                return ast.Break(line=tok.line)
            if tok.value == "continue":
                self.next()
                self.expect("op", ";")
                return ast.Continue(line=tok.line)
        if self.accept("op", ";"):
            return ast.Block(line=tok.line)  # empty statement
        expr = self.parse_expression()
        self.expect("op", ";")
        return ast.ExprStmt(line=tok.line, expr=expr)

    def parse_local_decl(self) -> ast.Stmt:
        line = self.peek().line
        self.accept("kw", "static")  # local statics treated as plain locals
        base = self.parse_base_type()
        decls: List[ast.Stmt] = []
        while True:
            dtype = self.parse_pointers(base)
            if self.at("op", "("):
                self.next()
                self.expect("op", "*")
                name = self.expect("id").value
                fp_dims: List[int] = []
                while self.accept("op", "["):
                    fp_dims.append(self.parse_constant_int())
                    self.expect("op", "]")
                self.expect("op", ")")
                self.expect("op", "(")
                inner, _ = self.parse_param_list()
                dtype = pointer_to(func_type(
                    dtype, tuple(p.ptype for p in inner)))
                for dim in reversed(fp_dims):
                    dtype = array_of(dtype, dim)
            else:
                name = self.expect("id").value
                dims: List[int] = []
                infer = False
                while self.accept("op", "["):
                    if self.at("op", "]") and not dims:
                        infer = True
                        dims.append(-1)
                        self.next()
                    else:
                        dims.append(self.parse_constant_int())
                        self.expect("op", "]")
                init_peek = self.at("op", "=")
                if infer and not init_peek:
                    raise self._error(f"cannot infer length of {name!r}")
                if dims:
                    decl_init = None
                    decl_list = None
                    if self.accept("op", "="):
                        if self.at("op", "{"):
                            decl_list = self.parse_init_list()
                        else:
                            decl_init = self.parse_assignment()
                    if infer:
                        if decl_list is not None:
                            dims[0] = len(decl_list)
                        elif isinstance(decl_init, ast.StrLit):
                            dims[0] = len(decl_init.value)
                        else:
                            raise self._error(
                                f"cannot infer length of {name!r}")
                    for dim in reversed(dims):
                        dtype = array_of(dtype, dim)
                    decls.append(ast.VarDecl(line=line, name=name,
                                             var_type=dtype, init=decl_init,
                                             init_list=decl_list))
                    if self.accept("op", ","):
                        continue
                    self.expect("op", ";")
                    break
            init = None
            init_list = None
            if self.accept("op", "="):
                if self.at("op", "{"):
                    init_list = self.parse_init_list()
                else:
                    init = self.parse_assignment()
            decls.append(ast.VarDecl(line=line, name=name, var_type=dtype,
                                     init=init, init_list=init_list))
            if self.accept("op", ","):
                continue
            self.expect("op", ";")
            break
        if len(decls) == 1:
            return decls[0]
        return ast.DeclGroup(line=line, statements=decls)

    def parse_if(self) -> ast.If:
        tok = self.expect("kw", "if")
        self.expect("op", "(")
        cond = self.parse_expression()
        self.expect("op", ")")
        then = self.parse_statement()
        other = None
        if self.accept("kw", "else"):
            other = self.parse_statement()
        return ast.If(line=tok.line, cond=cond, then=then, other=other)

    def parse_while(self) -> ast.While:
        tok = self.expect("kw", "while")
        self.expect("op", "(")
        cond = self.parse_expression()
        self.expect("op", ")")
        body = self.parse_statement()
        return ast.While(line=tok.line, cond=cond, body=body)

    def parse_do_while(self) -> ast.DoWhile:
        tok = self.expect("kw", "do")
        body = self.parse_statement()
        self.expect("kw", "while")
        self.expect("op", "(")
        cond = self.parse_expression()
        self.expect("op", ")")
        self.expect("op", ";")
        return ast.DoWhile(line=tok.line, body=body, cond=cond)

    def parse_for(self) -> ast.For:
        tok = self.expect("kw", "for")
        self.expect("op", "(")
        init: Optional[ast.Stmt] = None
        if not self.at("op", ";"):
            if self.at_type():
                init = self.parse_local_decl()
            else:
                init = ast.ExprStmt(line=tok.line,
                                    expr=self.parse_expression())
                self.expect("op", ";")
        else:
            self.next()
        cond = None
        if not self.at("op", ";"):
            cond = self.parse_expression()
        self.expect("op", ";")
        step = None
        if not self.at("op", ")"):
            step = self.parse_expression()
        self.expect("op", ")")
        body = self.parse_statement()
        return ast.For(line=tok.line, init=init, cond=cond, step=step,
                       body=body)

    def parse_switch(self) -> ast.Switch:
        tok = self.expect("kw", "switch")
        self.expect("op", "(")
        scrutinee = self.parse_expression()
        self.expect("op", ")")
        self.expect("op", "{")
        cases: List[ast.SwitchCase] = []
        current: Optional[ast.SwitchCase] = None
        while not self.at("op", "}"):
            if self.accept("kw", "case"):
                value = self.parse_constant_int()
                self.expect("op", ":")
                current = ast.SwitchCase(value, [], self.peek().line)
                cases.append(current)
            elif self.accept("kw", "default"):
                self.expect("op", ":")
                current = ast.SwitchCase(None, [], self.peek().line)
                cases.append(current)
            else:
                if current is None:
                    raise self._error("statement before first case label")
                current.body.append(self.parse_statement())
        self.next()
        return ast.Switch(line=tok.line, scrutinee=scrutinee, cases=cases)

    # -- expressions ----------------------------------------------------------

    def parse_expression(self) -> ast.Expr:
        return self.parse_assignment()

    def parse_assignment(self) -> ast.Expr:
        left = self.parse_conditional()
        tok = self.peek()
        if tok.kind == "op" and tok.value in _ASSIGN_OPS:
            self.next()
            value = self.parse_assignment()
            return ast.Assign(line=tok.line, op=tok.value, target=left,
                              value=value)
        return left

    def parse_conditional(self) -> ast.Expr:
        cond = self.parse_binary(0)
        if self.at("op", "?"):
            tok = self.next()
            then = self.parse_expression()
            self.expect("op", ":")
            other = self.parse_conditional()
            return ast.Cond(line=tok.line, cond=cond, then=then, other=other)
        return cond

    _PRECEDENCE = [
        ("||",),
        ("&&",),
        ("|",),
        ("^",),
        ("&",),
        ("==", "!="),
        ("<", ">", "<=", ">="),
        ("<<", ">>"),
        ("+", "-"),
        ("*", "/", "%"),
    ]

    # Operator -> precedence level, derived from the table above.
    _BIN_LEVEL = {op: lvl for lvl, ops in enumerate(_PRECEDENCE)
                  for op in ops}

    def parse_binary(self, level: int) -> ast.Expr:
        # Precedence climbing: builds the same left-associative tree as
        # the per-level recursive cascade, but recurses only on actual
        # operator nesting instead of once per precedence level.
        bin_level = self._BIN_LEVEL
        left = self.parse_unary()
        while True:
            tok = self.tokens[self.pos]
            if tok.kind != "op":
                return left
            op_level = bin_level.get(tok.value)
            if op_level is None or op_level < level:
                return left
            self.pos += 1
            right = self.parse_binary(op_level + 1)
            left = ast.Binary(line=tok.line, op=tok.value, left=left,
                              right=right)

    def parse_unary(self) -> ast.Expr:
        tok = self.peek()
        if tok.kind == "op":
            if tok.value in ("-", "~", "!"):
                self.next()
                return ast.Unary(line=tok.line, op=tok.value,
                                 operand=self.parse_unary())
            if tok.value == "+":
                self.next()
                return self.parse_unary()
            if tok.value == "*":
                self.next()
                return ast.Deref(line=tok.line, operand=self.parse_unary())
            if tok.value == "&":
                self.next()
                return ast.AddrOf(line=tok.line, operand=self.parse_unary())
            if tok.value in ("++", "--"):
                self.next()
                return ast.IncDec(line=tok.line, op=tok.value, prefix=True,
                                  target=self.parse_unary())
            if tok.value == "(" and self.peek(1).kind == "kw" \
                    and self.peek(1).value in _TYPE_KEYWORDS:
                self.next()
                base = self.parse_base_type()
                ttype = self.parse_pointers(base)
                # Function-pointer cast: (T (*)(params))
                if self.at("op", "(") and self.peek(1).kind == "op" \
                        and self.peek(1).value == "*":
                    self.next()
                    self.expect("op", "*")
                    self.expect("op", ")")
                    self.expect("op", "(")
                    inner, _ = self.parse_param_list()
                    ttype = pointer_to(func_type(
                        ttype, tuple(p.ptype for p in inner)))
                self.expect("op", ")")
                return ast.Cast(line=tok.line, target_type=ttype,
                                operand=self.parse_unary())
        if tok.kind == "kw" and tok.value == "sizeof":
            self.next()
            self.expect("op", "(")
            if not self.at_type():
                raise self._error("sizeof requires a parenthesized type")
            base = self.parse_base_type()
            ttype = self.parse_pointers(base)
            while self.accept("op", "["):
                length = self.parse_constant_int()
                self.expect("op", "]")
                ttype = array_of(ttype, length)
            self.expect("op", ")")
            # sizeof is always a compile-time constant in MiniC.
            return ast.IntLit(line=tok.line, value=ttype.size)
        return self.parse_postfix()

    def parse_postfix(self) -> ast.Expr:
        expr = self.parse_primary()
        while True:
            tok = self.peek()
            if tok.kind != "op":
                return expr
            if tok.value == "[":
                self.next()
                index = self.parse_expression()
                self.expect("op", "]")
                expr = ast.Index(line=tok.line, base=expr, index=index)
            elif tok.value == "(":
                self.next()
                args: List[ast.Expr] = []
                if not self.at("op", ")"):
                    while True:
                        args.append(self.parse_assignment())
                        if not self.accept("op", ","):
                            break
                self.expect("op", ")")
                expr = ast.Call(line=tok.line, func=expr, args=args)
            elif tok.value in ("++", "--"):
                self.next()
                expr = ast.IncDec(line=tok.line, op=tok.value, prefix=False,
                                  target=expr)
            else:
                return expr

    def parse_primary(self) -> ast.Expr:
        tok = self.next()
        if tok.kind == "num":
            if isinstance(tok.value, float):
                return ast.FloatLit(line=tok.line, value=tok.value)
            return ast.IntLit(line=tok.line, value=tok.value)
        if tok.kind == "char":
            return ast.IntLit(line=tok.line, value=tok.value)
        if tok.kind == "str":
            value = tok.value
            # Adjacent string literal concatenation.
            while self.at("str"):
                value += self.next().value
            return ast.StrLit(line=tok.line,
                              value=value.encode("latin-1") + b"\x00")
        if tok.kind == "id":
            return ast.Ident(line=tok.line, name=tok.value)
        if tok.kind == "op" and tok.value == "(":
            expr = self.parse_expression()
            self.expect("op", ")")
            return expr
        raise MiniCSyntaxError(
            f"unexpected token {tok.kind} {tok.value!r}", tok.line, tok.col)


def _fold_const_int(expr: ast.Expr) -> Optional[int]:
    """Fold a small constant expression (array sizes, case labels)."""
    if isinstance(expr, ast.IntLit):
        return expr.value
    if isinstance(expr, ast.Unary) and expr.op == "-":
        inner = _fold_const_int(expr.operand)
        return -inner if inner is not None else None
    if isinstance(expr, ast.Unary) and expr.op == "~":
        inner = _fold_const_int(expr.operand)
        return ~inner if inner is not None else None
    if isinstance(expr, ast.Binary):
        left = _fold_const_int(expr.left)
        right = _fold_const_int(expr.right)
        if left is None or right is None:
            return None
        try:
            return {
                "+": lambda: left + right, "-": lambda: left - right,
                "*": lambda: left * right, "/": lambda: left // right,
                "%": lambda: left % right, "<<": lambda: left << right,
                ">>": lambda: left >> right, "&": lambda: left & right,
                "|": lambda: left | right, "^": lambda: left ^ right,
            }[expr.op]()
        except (KeyError, ZeroDivisionError):
            return None
    if isinstance(expr, ast.SizeofType):
        return expr.target_type.size
    return None


def parse(source: str, defines=None) -> ast.TranslationUnit:
    """Front door: source text -> untyped AST."""
    return Parser(tokenize(source, defines)).parse_translation_unit()
