"""Process-pool scheduler: fan (benchmark, engine, -O, AOT) cells out
across workers and merge the results deterministically.

Each cell is an independent pure computation, so the only coordination
needed is transport: workers return serialized :class:`RunResult`s (plus
their cache-stats deltas), and the parent inserts them into its result
cache in sorted cell order.  Workers share the parent's on-disk artifact
store when one is configured, so a parallel run also warms the cache for
every later serial run — and because every modeled counter is a pure
function of the cache key, parallel output is byte-identical to serial.
"""

from __future__ import annotations

import os
import sys
from typing import List, Optional, Sequence, Tuple

from ..errors import HarnessError
from ..registry import WASMER_BACKEND_ENGINES as _WASMER_BACKENDS
from ..runtimes import RunResult
from .cache import CacheStats

#: One schedulable unit: (benchmark, engine, opt level, aot).
Cell = Tuple[str, str, int, bool]

# Experiments whose runs are fully covered by the default-opt
# (benchmark x engine) grid that fig1 establishes.
_DEFAULT_GRID = ("fig1", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
                 "fig13", "fig14", "table5")
_OPT_LEVELS = (0, 1, 2, 3)


def plan_cells(harness, experiment_ids: Sequence[str]) -> List[Cell]:
    """Every cell the given experiments will ask the harness for.

    The plan mirrors the drivers in :mod:`repro.harness.experiments`; an
    experiment not listed here (e.g. the static ``metrics`` report) simply
    contributes no cells and runs serially from whatever is cached.
    """
    from .runner import ENGINES, JIT_RUNTIMES

    cells: List[Cell] = []
    seen = set()

    def add(name: str, engine: str, opt: int, aot: bool = False) -> None:
        cell = (name, engine, opt, aot)
        if cell not in seen:
            seen.add(cell)
            cells.append(cell)

    opt = harness.default_opt
    for experiment_id in experiment_ids:
        for name in harness.benchmark_names:
            if experiment_id in _DEFAULT_GRID:
                for engine in ENGINES:
                    add(name, engine, opt)
            elif experiment_id in ("fig2", "fig11"):
                for engine in _WASMER_BACKENDS:
                    add(name, engine, opt)
            elif experiment_id in ("fig3", "fig12", "table4"):
                for rt in JIT_RUNTIMES:
                    add(name, rt, opt)
                    add(name, rt, opt, aot=True)
            elif experiment_id == "fig4":
                for engine in ENGINES:
                    for level in _OPT_LEVELS:
                        add(name, engine, level)
    return cells


# -- worker side ------------------------------------------------------------

_WORKER_HARNESS = None


def _worker_init(size: str, opt_level: int, cache_dir: Optional[str],
                 speed_tier: Optional[int] = None) -> None:
    global _WORKER_HARNESS
    from .runner import Harness
    if speed_tier is not None:
        # A --speed-tier override set in the parent never reaches the
        # pool through the environment; hand it over explicitly.
        from .. import speed
        speed.set_tier(speed_tier)
    _WORKER_HARNESS = Harness(size=size, opt_level=opt_level,
                              cache_dir=cache_dir)


def _worker_run(cell: Cell):
    """Run one cell; returns (cell, result-JSON | None, error | None,
    cache-stats delta)."""
    name, engine, opt, aot = cell
    harness = _WORKER_HARNESS
    before = CacheStats.from_dict(harness.cache_stats.to_dict())
    payload = error = None
    try:
        payload = harness.run(name, engine, opt=opt, aot=aot).to_json()
    except HarnessError as exc:
        error = str(exc)
    after = harness.cache_stats
    delta = CacheStats(
        hits={k: v - before.hits.get(k, 0)
              for k, v in after.hits.items()},
        misses={k: v - before.misses.get(k, 0)
                for k, v in after.misses.items()},
        recompute_seconds=(after.recompute_seconds -
                           before.recompute_seconds))
    return cell, payload, error, delta.to_dict()


def _worker_run_batch(batch: Sequence[Cell]):
    """Run a chunk of cells in one dispatch (amortizes pool transport;
    consecutive cells reuse the worker's warm module/closure caches)."""
    return [_worker_run(cell) for cell in batch]


# -- parent side ------------------------------------------------------------


def run_cells(harness, cells: Sequence[Cell], jobs: int = 1) -> None:
    """Populate ``harness._result_cache`` for every cell.

    With ``jobs > 1`` the cells fan out over a process pool; results are
    merged in sorted cell order so the parent's state never depends on
    worker completion order.  Falls back to serial execution when the
    platform cannot start a pool (e.g. sandboxed semaphores).
    """
    pending = [c for c in cells
               if (c[0], c[1], c[2], c[3], harness.size)
               not in harness._result_cache]
    if not pending:
        return
    if jobs <= 1 or len(pending) == 1:
        for name, engine, opt, aot in pending:
            harness.run(name, engine, opt=opt, aot=aot)
        return

    cache_dir = harness.disk_cache.root if harness.disk_cache else None
    workers = min(jobs, len(pending), os.cpu_count() or 1)
    try:
        from concurrent.futures import ProcessPoolExecutor
        from .. import speed
        executor = ProcessPoolExecutor(
            max_workers=workers,
            initializer=_worker_init,
            initargs=(harness.size, harness.default_opt, cache_dir,
                      speed.tier()))
    except (ImportError, OSError, PermissionError) as exc:
        # Results are byte-identical either way, but a silent fallback
        # makes --jobs look slow for no visible reason — say so once and
        # flag it in the report.
        print(f"wabench: warning: --jobs {jobs} unavailable "
              f"({type(exc).__name__}: {exc}); running serially",
              file=sys.stderr)
        harness.cache_stats.parallel_fallback = True
        for name, engine, opt, aot in pending:
            harness.run(name, engine, opt=opt, aot=aot)
        return

    # Batch several cells per dispatch: plan order is benchmark-major,
    # so a chunk's cells mostly share one module and hit the worker's
    # warm decoded-module/closure caches; the transport round-trips drop
    # by the chunk factor.  Merge order below is sorted, so chunking
    # cannot affect results.
    chunk = max(1, -(-len(pending) // (workers * 4)))
    batches = [pending[i:i + chunk] for i in range(0, len(pending), chunk)]
    outcomes = []
    with executor:
        for batch_outcomes in executor.map(_worker_run_batch, batches):
            outcomes.extend(batch_outcomes)

    errors = []
    merged: List[Tuple[Cell, RunResult]] = []
    for cell, payload, error, stats in sorted(outcomes,
                                              key=lambda o: repr(o[0])):
        harness.cache_stats.merge(CacheStats.from_dict(stats))
        if error is not None:
            errors.append(f"{cell[0]} on {cell[1]}: {error}")
            continue
        merged.append((cell, RunResult.from_json(payload)))
    if errors:
        raise HarnessError("; ".join(errors))
    for (name, engine, opt, aot), result in merged:
        harness._result_cache[(name, engine, opt, aot, harness.size)] = result
