"""Memory-overhead experiments (paper Section 5): Figures 5 and 13."""

from __future__ import annotations

from typing import List

from ..report import Table
from ..runner import ALL_RUNTIMES, Harness, geomean


def _mrss_table(harness: Harness, experiment_id: str,
                per_benchmark: bool) -> Table:
    table = Table(experiment_id,
                  "Normalized maximum resident set size (native = 1.0)",
                  ["workload"] + list(ALL_RUNTIMES))

    def row(names: List[str]) -> List[float]:
        return [geomean([harness.normalized(n, rt, "mrss") for n in names])
                for rt in ALL_RUNTIMES]

    if per_benchmark:
        for name in harness.benchmark_names:
            table.add(name, *row([name]))
    else:
        for label, members in harness.grouped_rows():
            table.add(label, *row(members))
        table.add("GEOMEAN", *row(harness.benchmark_names))
    table.note("paper: averages 1.26x-5.50x; WAVM highest, Wasm3 lowest; "
               "JIT runtimes *below* native on whitedb")
    return table


def fig5(harness: Harness) -> Table:
    return _mrss_table(harness, "Figure 5", per_benchmark=False)


def fig13(harness: Harness) -> Table:
    return _mrss_table(harness, "Figure 13", per_benchmark=True)
