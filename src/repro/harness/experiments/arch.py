"""Architectural-characteristics experiments (paper Section 6).

* Figure 6/14 — normalized dynamically executed instructions
* Figure 7    — IPC of native and every runtime
* Figure 8    — normalized branch prediction misses
* Table 5     — branch prediction miss ratios
* Figure 9    — normalized cache misses (LLC)
* Figure 10   — cache miss ratios
"""

from __future__ import annotations

from typing import Callable, List

from ..report import Table
from ..runner import ALL_RUNTIMES, ENGINES, Harness, geomean


def _normalized_table(harness: Harness, experiment_id: str, title: str,
                      metric: str, note: str,
                      per_benchmark: bool) -> Table:
    table = Table(experiment_id, title, ["workload"] + list(ALL_RUNTIMES))

    def row(names: List[str]) -> List[float]:
        return [geomean([harness.normalized(n, rt, metric) for n in names])
                for rt in ALL_RUNTIMES]

    if per_benchmark:
        for name in harness.benchmark_names:
            table.add(name, *row([name]))
    else:
        for label, members in harness.grouped_rows():
            table.add(label, *row(members))
        table.add("GEOMEAN", *row(harness.benchmark_names))
    table.note(note)
    return table


def fig6(harness: Harness) -> Table:
    return _normalized_table(
        harness, "Figure 6",
        "Normalized dynamic instructions (native = 1.0)", "instructions",
        "paper: 2.03x-14.61x; interpreters far above JITs", False)


def fig14(harness: Harness) -> Table:
    return _normalized_table(
        harness, "Figure 14",
        "Normalized dynamic instructions per benchmark", "instructions",
        "appendix detail of Figure 6", True)


def _absolute_table(harness: Harness, experiment_id: str, title: str,
                    value: Callable, note: str) -> Table:
    table = Table(experiment_id, title, ["workload"] + list(ENGINES))

    def row(names: List[str]) -> List[float]:
        return [geomean([value(harness.run(n, engine)) for n in names])
                for engine in ENGINES]

    for label, members in harness.grouped_rows():
        table.add(label, *row(members))
    table.add("GEOMEAN", *row(harness.benchmark_names))
    table.note(note)
    return table


def fig7(harness: Harness) -> Table:
    return _absolute_table(
        harness, "Figure 7", "Instructions per cycle (IPC)",
        lambda r: r.counters["ipc"],
        "paper: runtimes generally reach higher IPC than native; "
        "gnuchess under Wasm3 drops below 1")


def fig8(harness: Harness) -> Table:
    return _normalized_table(
        harness, "Figure 8",
        "Normalized branch prediction misses (native = 1.0)",
        "branch_misses",
        "paper averages: 1.52x (wasmtime) to 12.64x (wasm3); "
        "wavm facedetection 414x", False)


def table5(harness: Harness) -> Table:
    table = Table("Table 5", "Branch prediction miss ratios (%)",
                  ["workload"] + list(ENGINES))

    def row(names: List[str]) -> List[float]:
        out = []
        for engine in ENGINES:
            ratios = [harness.run(n, engine).counters["branch_miss_ratio"]
                      for n in names]
            out.append(100.0 * sum(ratios) / len(ratios))
        return out

    for label, members in harness.grouped_rows():
        table.add(label, *row(members))
    table.add("GEOMEAN", *[
        100.0 * geomean([max(1e-6,
                             harness.run(n, e).counters["branch_miss_ratio"])
                         for n in harness.benchmark_names])
        for e in ENGINES])
    table.note("paper: ratios close to native everywhere except gnuchess "
               "on the interpreters (~18-21%)")
    return table


def fig9(harness: Harness) -> Table:
    return _normalized_table(
        harness, "Figure 9",
        "Normalized cache misses (native = 1.0)", "cache_misses",
        "paper averages: wasmtime 1.91x, wavm 4.60x, wasmer 1.73x, "
        "wasm3 1.39x, wamr 1.60x; wavm gnuchess 347x", False)


def fig10(harness: Harness) -> Table:
    table = Table("Figure 10", "Cache miss ratios (%)",
                  ["workload"] + list(ENGINES))

    def row(names: List[str]) -> List[float]:
        out = []
        for engine in ENGINES:
            ratios = [harness.run(n, engine).counters["cache_miss_ratio"]
                      for n in names]
            out.append(100.0 * sum(ratios) / len(ratios))
        return out

    for label, members in harness.grouped_rows():
        table.add(label, *row(members))
    table.add("AVERAGE", *row(harness.benchmark_names))
    table.note("paper: native 11.13%; runtimes 5.57%-13.26% — similar "
               "ratios despite more absolute misses")
    return table
