"""Per-figure/table experiment drivers.

``EXPERIMENTS`` maps every figure/table identifier from the paper's
evaluation to the callable regenerating it.
"""

from typing import Callable, Dict

from . import arch, memory, perf, static

EXPERIMENTS: Dict[str, Callable] = {
    "fig1": perf.fig1,
    "fig2": perf.fig2,
    "fig3": perf.fig3,
    "table4": perf.table4,
    "fig4": perf.fig4,
    "fig5": memory.fig5,
    "fig6": arch.fig6,
    "fig7": arch.fig7,
    "fig8": arch.fig8,
    "table5": arch.table5,
    "fig9": arch.fig9,
    "fig10": arch.fig10,
    "fig11": perf.fig11,
    "fig12": perf.fig12,
    "fig13": memory.fig13,
    "fig14": arch.fig14,
    "metrics": static.metrics,
}

__all__ = ["EXPERIMENTS", "arch", "memory", "perf", "static"]
