"""Per-figure/table experiment drivers.

``EXPERIMENTS`` maps every figure/table identifier from the paper's
evaluation to the callable regenerating it.  The driver modules are
imported on first access, not at package import: ``wabench run`` (and
every other non-experiment command) only needs the identifier list, and
the drivers pull in the whole analysis stack.
"""

from importlib import import_module
from typing import Callable, Iterator, Mapping

_SPECS = {
    "fig1": ("perf", "fig1"),
    "fig2": ("perf", "fig2"),
    "fig3": ("perf", "fig3"),
    "table4": ("perf", "table4"),
    "fig4": ("perf", "fig4"),
    "fig5": ("memory", "fig5"),
    "fig6": ("arch", "fig6"),
    "fig7": ("arch", "fig7"),
    "fig8": ("arch", "fig8"),
    "table5": ("arch", "table5"),
    "fig9": ("arch", "fig9"),
    "fig10": ("arch", "fig10"),
    "fig11": ("perf", "fig11"),
    "fig12": ("perf", "fig12"),
    "fig13": ("memory", "fig13"),
    "fig14": ("arch", "fig14"),
    "metrics": ("static", "metrics"),
}


class _LazyExperiments(Mapping):
    """Mapping over _SPECS that resolves driver callables on demand."""

    def __getitem__(self, experiment_id: str) -> Callable:
        module_name, func_name = _SPECS[experiment_id]
        module = import_module(f".{module_name}", __name__)
        return getattr(module, func_name)

    def __iter__(self) -> Iterator[str]:
        return iter(_SPECS)

    def __len__(self) -> int:
        return len(_SPECS)


EXPERIMENTS: Mapping = _LazyExperiments()

__all__ = ["EXPERIMENTS"]


def __getattr__(name):
    # ``from repro.harness.experiments import arch`` etc. still works.
    if name in ("arch", "memory", "perf", "static"):
        return import_module(f".{name}", __name__)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
