"""Static-structure experiment: code metrics for every benchmark.

Not a figure from the paper, but the lens its Section 6 analysis needs:
opcode mix, branchiness, indirect-transfer density, loop nesting, and
how many memory accesses the optimizing tier's range analysis can prove
safe.  Purely static — modules are compiled and decoded, never executed
— so the experiment is cheap enough for CI.
"""

from __future__ import annotations

from ...analysis.metrics import module_report
from ...wasm import decode_module
from ..report import Table
from ..runner import Harness


def metrics(harness: Harness) -> Table:
    table = Table(
        "Static metrics",
        "Per-benchmark static code structure (compiled at -O2)",
        ["benchmark", "ops", "mem%", "branch%", "ind/kop", "loopdepth",
         "checks", "elim%"])
    total_ops = total_mem = total_elim = 0
    for name in harness.benchmark_names:
        module = decode_module(harness.wasm_for(name))
        report = module_report(module)
        ops = report.instructions
        total_ops += ops
        total_mem += report.mem_ops
        total_elim += report.checks_eliminated
        table.add(
            name,
            ops,
            100.0 * report.mem_ops / max(ops, 1),
            100.0 * report.branches / max(ops, 1),
            1000.0 * report.indirect / max(ops, 1),
            report.max_loop_depth,
            report.checks_kept,
            100.0 * report.elimination_ratio,
        )
    table.add("TOTAL", total_ops, "", "", "", "",
              total_mem - total_elim,
              100.0 * total_elim / max(total_mem, 1))
    table.note("elim% = share of loads/stores the interval analysis "
               "proves in bounds (dropped by the LLVM tier)")
    return table
