"""Performance-efficiency experiments (paper Section 4).

* Figure 1  — normalized execution time, all benchmarks x 5 runtimes
* Figure 2/11 — Wasmer's three JIT backends (baseline SinglePass)
* Figure 3/12 — AOT speedup for the JIT runtimes
* Table 4  — AOT compilation times and share of no-AOT total time
* Figure 4 — compiler -O level speedups per engine (baseline -O0)
"""

from __future__ import annotations

from typing import List, Optional

from ..report import Table
from ..runner import ALL_RUNTIMES, JIT_RUNTIMES, Harness, geomean


def fig1(harness: Harness) -> Table:
    """Normalized execution times vs native (per benchmark + averages)."""
    table = Table("Figure 1", "Normalized execution time (native = 1.0)",
                  ["benchmark"] + list(ALL_RUNTIMES))
    per_runtime: dict = {rt: [] for rt in ALL_RUNTIMES}
    for name in harness.benchmark_names:
        row = []
        for rt in ALL_RUNTIMES:
            slowdown = harness.normalized(name, rt, "seconds")
            per_runtime[rt].append(slowdown)
            row.append(slowdown)
        # Free (all runs are cached): every engine must agree bit-for-bit.
        harness.verify_outputs(name)
        table.add(name, *row)
    table.add("GEOMEAN", *[geomean(per_runtime[rt]) for rt in ALL_RUNTIMES])
    table.note("paper averages: wasmtime 1.67x, wavm 3.54x, wasmer 1.59x, "
               "wasm3 6.99x, wamr 9.57x")
    return table


def _wasmer_backend_table(harness: Harness, experiment_id: str,
                          per_benchmark: bool) -> Table:
    backends = ("wasmer-singlepass", "wasmer", "wasmer-llvm")
    labels = ("SinglePass", "Cranelift", "LLVM")
    table = Table(experiment_id,
                  "Wasmer execution time normalized to SinglePass",
                  ["workload"] + list(labels))

    def norm_row(names: List[str]) -> List[float]:
        base = [harness.run(n, "wasmer-singlepass").seconds for n in names]
        out = []
        for backend in backends:
            ratios = [harness.run(n, backend).seconds / b
                      for n, b in zip(names, base)]
            out.append(geomean(ratios))
        return out

    if per_benchmark:
        for name in harness.benchmark_names:
            table.add(name, *norm_row([name]))
    else:
        for label, members in harness.grouped_rows():
            table.add(label, *norm_row(members))
        all_rows = norm_row(harness.benchmark_names)
        table.add("GEOMEAN", *all_rows)
    table.note("paper: Cranelift 1.74x speedup over SinglePass, LLVM 1.43x")
    return table


def fig2(harness: Harness) -> Table:
    """Wasmer backend comparison, aggregated like the paper's Fig. 2."""
    return _wasmer_backend_table(harness, "Figure 2", per_benchmark=False)


def fig11(harness: Harness) -> Table:
    """Appendix: the same comparison per benchmark."""
    return _wasmer_backend_table(harness, "Figure 11", per_benchmark=True)


def _aot_speedup_table(harness: Harness, experiment_id: str,
                       per_benchmark: bool) -> Table:
    table = Table(experiment_id,
                  "Speedup from AOT compilation (no-AOT = 1.0)",
                  ["workload"] + list(JIT_RUNTIMES))

    def speedups(names: List[str]) -> List[float]:
        out = []
        for rt in JIT_RUNTIMES:
            ratios = [harness.run(n, rt).seconds /
                      harness.run(n, rt, aot=True).seconds for n in names]
            out.append(geomean(ratios))
        return out

    if per_benchmark:
        for name in harness.benchmark_names:
            table.add(name, *speedups([name]))
    else:
        for label, members in harness.grouped_rows():
            table.add(label, *speedups(members))
        table.add("GEOMEAN", *speedups(harness.benchmark_names))
    table.note("paper averages: wasmtime 1.02x, wavm 1.73x, wasmer 1.02x; "
               "wavm facedetection 14.19x")
    return table


def fig3(harness: Harness) -> Table:
    return _aot_speedup_table(harness, "Figure 3", per_benchmark=False)


def fig12(harness: Harness) -> Table:
    return _aot_speedup_table(harness, "Figure 12", per_benchmark=True)


def table4(harness: Harness) -> Table:
    """AOT compile times (ms here; seconds in the paper) and the share of
    the no-AOT total they correspond to."""
    table = Table("Table 4",
                  "AOT compilation time, ms (percent of no-AOT total time)",
                  ["workload"] + list(JIT_RUNTIMES))

    def row(names: List[str]) -> List[str]:
        cells = []
        for rt in JIT_RUNTIMES:
            compile_ms = []
            shares = []
            for n in names:
                _img, seconds = harness.aot_image(n, rt)
                total = harness.run(n, rt).seconds
                compile_ms.append(seconds * 1e3)
                shares.append(seconds / total if total else 0.0)
            cells.append(f"{geomean(compile_ms):.3f} "
                         f"({geomean(shares) * 100:.1f}%)")
        return cells

    for label, members in harness.grouped_rows():
        table.add(label, *row(members))
    table.add("AVERAGE", *row(harness.benchmark_names))
    table.note("paper averages: wasmtime 0.09s (0.67%), wavm 0.93s (9.52%), "
               "wasmer 0.06s (0.48%) — absolute times are model-scaled, "
               "compare the percentages")
    return table


def fig4(harness: Harness,
         opt_levels=(0, 1, 2, 3)) -> Table:
    """Speedup from compiler optimization levels, baseline -O0."""
    engines = ("native",) + ALL_RUNTIMES
    table = Table("Figure 4",
                  "Speedup from -O levels (baseline -O0, geomean of all "
                  "benchmarks)",
                  ["engine"] + [f"-O{o}" for o in opt_levels])
    for engine in engines:
        base = {n: harness.run(n, engine, opt=0).seconds
                for n in harness.benchmark_names}
        row = []
        for opt in opt_levels:
            ratios = [base[n] / harness.run(n, engine, opt=opt).seconds
                      for n in harness.benchmark_names]
            row.append(geomean(ratios))
        table.add(engine, *row)
    table.note("paper at -O2: native 1.94x, wavm 1.44x, wasm3 3.57x; "
               "interpreters benefit most, JITs least")
    return table
