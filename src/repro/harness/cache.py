"""Content-addressed on-disk artifact cache for the harness.

Every artifact the harness produces — compiled Wasm modules, native
binaries, AOT images, and serialized :class:`RunResult`s — is stored
under a SHA-256 key derived from everything that determines its content:
the benchmark source, the workload defines and size, the -O level, the
engine, and the compiler/runtime version stamps.  Because every modeled
counter is a pure function of that key, a warm cache reproduces a cold
run bit-for-bit, across processes and across parallel workers.

On-disk format: each object is ``magic || sha256(payload) || payload``
written atomically (temp file + rename), so a truncated or bit-flipped
file is detected on read and treated as a miss, never as bad data.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from dataclasses import dataclass, field
from typing import Dict, Optional

_MAGIC = b"WBC1"
_DIGEST_LEN = 32

#: Bump to invalidate every object written by older harness versions.
CACHE_FORMAT_VERSION = 1


def cache_key(kind: str, **fields) -> str:
    """SHA-256 of the canonical JSON of ``kind`` + key fields."""
    payload = json.dumps({"kind": kind, "v": CACHE_FORMAT_VERSION,
                          **fields},
                         sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()


@dataclass
class CacheStats:
    """Artifact-level hit/miss counts plus the wall time spent on misses.

    A "touch" is the first time a process needs an artifact (in-memory
    re-use inside one process is not counted): a hit means the disk cache
    supplied it, a miss means it was recomputed.
    """

    hits: Dict[str, int] = field(default_factory=dict)
    misses: Dict[str, int] = field(default_factory=dict)
    recompute_seconds: float = 0.0
    #: True when a --jobs>1 run had to fall back to serial execution
    #: (worker pool could not start); surfaced in reports so a silently
    #: slower run is never mistaken for a parallel one.
    parallel_fallback: bool = False

    def hit(self, kind: str) -> None:
        self.hits[kind] = self.hits.get(kind, 0) + 1

    def miss(self, kind: str, seconds: float = 0.0) -> None:
        self.misses[kind] = self.misses.get(kind, 0) + 1
        self.recompute_seconds += seconds

    def merge(self, other: "CacheStats") -> None:
        for kind, n in other.hits.items():
            self.hits[kind] = self.hits.get(kind, 0) + n
        for kind, n in other.misses.items():
            self.misses[kind] = self.misses.get(kind, 0) + n
        self.recompute_seconds += other.recompute_seconds
        self.parallel_fallback = (self.parallel_fallback or
                                  other.parallel_fallback)

    @property
    def total_hits(self) -> int:
        return sum(self.hits.values())

    @property
    def total_misses(self) -> int:
        return sum(self.misses.values())

    @property
    def total(self) -> int:
        return self.total_hits + self.total_misses

    def to_dict(self) -> Dict[str, object]:
        return {"hits": dict(self.hits), "misses": dict(self.misses),
                "recompute_seconds": self.recompute_seconds,
                "parallel_fallback": self.parallel_fallback}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CacheStats":
        return cls(hits=dict(data.get("hits", {})),
                   misses=dict(data.get("misses", {})),
                   recompute_seconds=float(
                       data.get("recompute_seconds", 0.0)),
                   parallel_fallback=bool(
                       data.get("parallel_fallback", False)))


class ArtifactCache:
    """A content-addressed object store rooted at one directory.

    Objects are immutable: a key fully determines the payload, so writers
    never conflict — concurrent workers may race to create the same file
    and either rename wins with identical bytes.
    """

    def __init__(self, root: str):
        self.root = os.path.abspath(os.path.expanduser(root))

    # -- paths ------------------------------------------------------------

    def _path(self, key: str) -> str:
        return os.path.join(self.root, "objects", key[:2], key)

    def contains(self, key: str) -> bool:
        return os.path.exists(self._path(key))

    # -- raw bytes --------------------------------------------------------

    def get_bytes(self, key: str) -> Optional[bytes]:
        """Payload for ``key``, or None on miss or detected corruption."""
        path = self._path(key)
        try:
            with open(path, "rb") as fh:
                blob = fh.read()
        except OSError:
            return None
        header = len(_MAGIC) + _DIGEST_LEN
        if len(blob) < header or not blob.startswith(_MAGIC):
            self._evict(path)
            return None
        digest, payload = blob[len(_MAGIC):header], blob[header:]
        if hashlib.sha256(payload).digest() != digest:
            self._evict(path)
            return None
        return payload

    def put_bytes(self, key: str, payload: bytes) -> None:
        path = self._path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        blob = _MAGIC + hashlib.sha256(payload).digest() + payload
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path),
                                   prefix=".tmp-")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(blob)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    @staticmethod
    def _evict(path: str) -> None:
        try:
            os.unlink(path)
        except OSError:
            pass

    # -- typed payloads ---------------------------------------------------

    def get_json(self, key: str) -> Optional[object]:
        payload = self.get_bytes(key)
        if payload is None:
            return None
        try:
            return json.loads(payload.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            self._evict(self._path(key))
            return None

    def put_json(self, key: str, value: object) -> None:
        text = json.dumps(value, sort_keys=True, separators=(",", ":"))
        self.put_bytes(key, text.encode("utf-8"))

    def get_pickle(self, key: str) -> Optional[object]:
        payload = self.get_bytes(key)
        if payload is None:
            return None
        try:
            return pickle.loads(payload)
        except (pickle.UnpicklingError, EOFError, ValueError):
            # Genuinely corrupt payload: evict so it is rebuilt.
            self._evict(self._path(key))
            return None
        except (AttributeError, ImportError):
            # The payload is intact but references classes this process
            # cannot resolve (version skew, refactored module).  Treat as
            # a miss without evicting: another harness version may still
            # read it, and rebuilding under the same key overwrites it.
            return None

    def put_pickle(self, key: str, value: object) -> None:
        self.put_bytes(key, pickle.dumps(value, protocol=4))

    # -- maintenance ------------------------------------------------------

    def object_count(self) -> int:
        objects_dir = os.path.join(self.root, "objects")
        count = 0
        for _dir, _subdirs, files in os.walk(objects_dir):
            count += sum(1 for f in files if not f.startswith(".tmp-"))
        return count


def default_cache_dir() -> str:
    """``$WABENCH_CACHE_DIR``, else ``~/.cache/wabench``."""
    env = os.environ.get("WABENCH_CACHE_DIR")
    if env:
        return env
    xdg = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache")
    return os.path.join(xdg, "wabench")
