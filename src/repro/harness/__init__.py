"""Experiment harness: regenerates every figure and table of the paper."""

from .experiments import EXPERIMENTS
from .report import Table
from .runner import ALL_RUNTIMES, ENGINES, JIT_RUNTIMES, Harness, geomean

__all__ = ["EXPERIMENTS", "Table", "ALL_RUNTIMES", "ENGINES",
           "JIT_RUNTIMES", "Harness", "geomean"]
