"""Experiment harness: regenerates every figure and table of the paper."""

from .cache import ArtifactCache, CacheStats, cache_key, default_cache_dir
from .experiments import EXPERIMENTS
from .report import Table, render_cache_stats
from .runner import ALL_RUNTIMES, ENGINES, JIT_RUNTIMES, Harness, geomean

__all__ = ["EXPERIMENTS", "Table", "render_cache_stats", "ALL_RUNTIMES",
           "ENGINES", "JIT_RUNTIMES", "Harness", "geomean",
           "ArtifactCache", "CacheStats", "cache_key", "default_cache_dir"]
