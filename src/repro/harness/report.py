"""Plain-text table/figure rendering for experiment results."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from .cache import CacheStats


def percentile_nearest_rank(sorted_values: Sequence[int], pct: int) -> int:
    """Nearest-rank percentile of pre-sorted integer samples.

    Nearest-rank (ceil(p/100 * n), 1-indexed) always returns an observed
    sample — no interpolation, no floats — so percentile reports built
    from modeled integer cycles stay byte-identical across platforms.
    """
    if not sorted_values:
        raise ValueError("percentile of empty sample")
    if not 0 < pct <= 100:
        raise ValueError(f"percentile must be in (0, 100], got {pct}")
    rank = -(-pct * len(sorted_values) // 100)    # ceil division
    return sorted_values[rank - 1]


@dataclass
class Table:
    """One rendered experiment artifact (a paper table or figure's data)."""

    experiment_id: str              # e.g. "Figure 1"
    title: str
    columns: List[str]              # first column is the row label
    rows: List[List[object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add(self, label: str, *values) -> None:
        self.rows.append([label] + list(values))

    def note(self, text: str) -> None:
        self.notes.append(text)

    def render(self) -> str:
        def fmt(value) -> str:
            if isinstance(value, float):
                if value >= 1000:
                    return f"{value:,.0f}"
                if value >= 10:
                    return f"{value:.1f}"
                return f"{value:.2f}"
            return str(value)

        body = [[fmt(v) for v in row] for row in self.rows]
        widths = [max([len(self.columns[i])] +
                      [len(row[i]) for row in body if i < len(row)])
                  for i in range(len(self.columns))]
        lines = [f"== {self.experiment_id}: {self.title} =="]
        header = " | ".join(c.ljust(widths[i])
                            for i, c in enumerate(self.columns))
        lines.append(header)
        lines.append("-+-".join("-" * w for w in widths))
        for row in body:
            lines.append(" | ".join(
                cell.ljust(widths[i]) if i == 0 else cell.rjust(widths[i])
                for i, cell in enumerate(row)))
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def cell(self, row_label: str, column: str) -> object:
        """Look up a value by row label and column name."""
        col = self.columns.index(column)
        for row in self.rows:
            if row[0] == row_label:
                return row[col]
        raise KeyError(f"no row {row_label!r}")

    def column_values(self, column: str,
                      skip_labels: Sequence[str] = ()) -> List[float]:
        col = self.columns.index(column)
        return [float(row[col]) for row in self.rows
                if row[0] not in skip_labels]


def phase_table(benchmark: str, traced_runs: Sequence,
                cycles_to_seconds) -> Table:
    """Per-engine, per-pipeline-phase modeled-time breakdown — the body of
    ``wabench trace <benchmark>``.

    Columns are the :data:`repro.registry.PIPELINE_PHASES` that at least
    one engine actually entered (native runs skip decode/validate/
    instantiate), in pipeline order, plus the run total.  Values are
    modeled microseconds derived from each run's span tree, so the table
    is as deterministic as the runs themselves.
    """
    from ..registry import PIPELINE_PHASES

    breakdowns = [(traced.meta.get("engine", traced.result.runtime),
                   traced.result, traced.result.phase_cycles())
                  for traced in traced_runs]
    phases = [p for p in PIPELINE_PHASES
              if any(p in cycles for _, _, cycles in breakdowns)]
    table = Table(
        experiment_id="Trace",
        title=f"{benchmark}: modeled time per pipeline phase (us)",
        columns=["engine"] + [f"{p} us" for p in phases] + ["total us"])
    for engine, result, cycles in breakdowns:
        values = [cycles_to_seconds(cycles.get(p, 0)) * 1e6 for p in phases]
        table.add(engine, *values, result.seconds * 1e6)
    table.note("phases: " + " -> ".join(phases))
    return table


def wasi_table(benchmark: str, traced_runs: Sequence) -> Table:
    """Per-engine, per-syscall WASI breakdown — ``wabench trace --wasi``.

    One row per (engine, WASI function) the run actually hit: call
    count, modeled instructions charged by the engine's syscall cost
    table, guest<->host bytes copied, and the share of the run's total
    modeled instructions spent inside the shim.  Counts and bytes are
    identical across engines (same guest behavior); the instruction
    columns differ per engine — that *is* the eWAPA observation.
    """
    table = Table(
        experiment_id="Trace",
        title=f"{benchmark}: WASI syscall breakdown per engine",
        columns=["engine", "syscall", "calls", "instructions", "bytes",
                 "share %"])
    for traced in traced_runs:
        engine = traced.meta.get("engine", traced.result.runtime)
        result = traced.result
        total = result.counters.get("instructions", 0) or 0
        wasi_total = 0
        for fn, stats in result.wasi_calls.items():
            share = (100.0 * stats["instructions"] / total) if total else 0.0
            table.add(engine, fn, stats["calls"], stats["instructions"],
                      stats.get("bytes", 0), share)
            wasi_total += stats["instructions"]
        if result.wasi_calls:
            share = (100.0 * wasi_total / total) if total else 0.0
            table.add(engine, "(all)",
                      sum(s["calls"] for s in result.wasi_calls.values()),
                      wasi_total,
                      sum(s.get("bytes", 0)
                          for s in result.wasi_calls.values()),
                      share)
    table.note("instructions are engine-priced "
               "(repro.registry.syscall_cost_table); "
               "calls/bytes are engine-invariant")
    return table


def render_cache_stats(stats: CacheStats,
                       wall_seconds: Optional[float] = None) -> str:
    """One-line artifact-cache summary for the CLI.

    Example::

        [cache] 310/310 artifact hits (100.0%, warm) — wasm 50/50,
        native 50/50, aot 30/30, result 180/180; 0.0s recomputing misses
    """
    if stats.total == 0:
        return "[cache] no artifacts touched"
    pct = 100.0 * stats.total_hits / stats.total
    state = "warm" if stats.total_misses == 0 else \
        ("cold" if stats.total_hits == 0 else "mixed")
    known = ("wasm", "native", "aot", "result", "fuzz-result")
    extra = sorted((set(stats.hits) | set(stats.misses)) - set(known))
    kinds = []
    for kind in known + tuple(extra):
        hits = stats.hits.get(kind, 0)
        touches = hits + stats.misses.get(kind, 0)
        if touches:
            kinds.append(f"{kind} {hits}/{touches}")
    line = (f"[cache] {stats.total_hits}/{stats.total} artifact hits "
            f"({pct:.1f}%, {state}) — {', '.join(kinds)}; "
            f"{stats.recompute_seconds:.1f}s recomputing misses")
    if wall_seconds is not None:
        line += f" (wall {wall_seconds:.1f}s)"
    if stats.parallel_fallback:
        line += " [parallel fallback: ran serial]"
    return line
