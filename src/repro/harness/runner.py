"""Experiment runner: compiles and executes WABench configurations.

One :class:`Harness` caches everything — compiled Wasm artifacts, native
binaries, AOT images, and run results — keyed by the full configuration,
so the per-figure experiment drivers can share measurements exactly the
way the paper's figures share one set of `perf` runs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..bench import ALL_BENCHMARKS, Benchmark, get
from ..compiler import compile_source
from ..errors import HarnessError
from ..native import nativecc, run_native
from ..runtimes import RunResult, make_runtime
from ..wasi import VirtualFS

JIT_RUNTIMES = ("wasmtime", "wavm", "wasmer")
ALL_RUNTIMES = ("wasmtime", "wavm", "wasmer", "wasm3", "wamr")
ENGINES = ("native",) + ALL_RUNTIMES


def geomean(values: Iterable[float]) -> float:
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


class Harness:
    """Runs (benchmark, engine, -O, AOT) configurations with caching."""

    def __init__(self, size: str = "small", opt_level: int = 2,
                 benchmarks: Optional[Sequence[str]] = None,
                 verbose: bool = False):
        self.size = size
        self.default_opt = opt_level
        self.benchmark_names = list(benchmarks) if benchmarks is not None \
            else [b.name for b in ALL_BENCHMARKS]
        self.verbose = verbose
        self._wasm_cache: Dict[Tuple[str, int], bytes] = {}
        self._native_cache: Dict[Tuple[str, int], object] = {}
        self._aot_cache: Dict[Tuple[str, str, int], Tuple[object, float]] = {}
        self._result_cache: Dict[tuple, RunResult] = {}

    # -- building -----------------------------------------------------

    def benchmarks(self) -> List[Benchmark]:
        return [get(name) for name in self.benchmark_names]

    def _fs(self, bench: Benchmark) -> VirtualFS:
        fs = VirtualFS()
        for path, data in bench.files_for(self.size).items():
            fs.add_file(path, data)
        return fs

    def wasm_for(self, name: str, opt: Optional[int] = None) -> bytes:
        opt = self.default_opt if opt is None else opt
        key = (name, opt)
        if key not in self._wasm_cache:
            bench = get(name)
            self._wasm_cache[key] = compile_source(
                bench.source, opt,
                defines=bench.defines_for(self.size)).wasm_bytes
        return self._wasm_cache[key]

    def native_binary(self, name: str, opt: Optional[int] = None):
        opt = self.default_opt if opt is None else opt
        key = (name, opt)
        if key not in self._native_cache:
            bench = get(name)
            self._native_cache[key] = nativecc(
                bench.source, opt, defines=bench.defines_for(self.size))
        return self._native_cache[key]

    def aot_image(self, name: str, runtime: str,
                  opt: Optional[int] = None) -> Tuple[object, float]:
        opt = self.default_opt if opt is None else opt
        key = (name, runtime, opt)
        if key not in self._aot_cache:
            rt = make_runtime(runtime)
            self._aot_cache[key] = rt.compile_aot(self.wasm_for(name, opt))
        return self._aot_cache[key]

    # -- running --------------------------------------------------------

    def run(self, name: str, engine: str, opt: Optional[int] = None,
            aot: bool = False) -> RunResult:
        """Run one configuration (cached)."""
        opt = self.default_opt if opt is None else opt
        key = (name, engine, opt, aot, self.size)
        cached = self._result_cache.get(key)
        if cached is not None:
            return cached
        bench = get(name)
        if self.verbose:
            print(f"  [run] {name} on {engine} -O{opt}"
                  f"{' (AOT)' if aot else ''}")
        if engine == "native":
            if aot:
                raise HarnessError("AOT does not apply to native execution")
            result = run_native(self.native_binary(name, opt),
                                fs=self._fs(bench))
        else:
            rt = make_runtime(engine)
            image = None
            if aot:
                image, _seconds = self.aot_image(name, engine, opt)
            result = rt.run(self.wasm_for(name, opt), fs=self._fs(bench),
                            aot_image=image)
        if result.trap is not None:
            raise HarnessError(f"{name} on {engine}: {result.trap}")
        self._result_cache[key] = result
        return result

    def verify_outputs(self, name: str,
                       engines: Sequence[str] = ENGINES) -> None:
        """Assert every engine produced byte-identical output."""
        outputs = {e: self.run(name, e).stdout for e in engines}
        reference = outputs["native"] if "native" in outputs else \
            next(iter(outputs.values()))
        for engine, out in outputs.items():
            if out != reference:
                raise HarnessError(
                    f"{name}: output divergence on {engine}")

    # -- metric helpers ----------------------------------------------------

    def normalized(self, name: str, engine: str, metric: str,
                   opt: Optional[int] = None, aot: bool = False) -> float:
        """Metric of engine / metric of native, for one benchmark."""
        base = self._metric(self.run(name, "native", opt), metric)
        value = self._metric(self.run(name, engine, opt, aot), metric)
        if base == 0:
            return 0.0
        return value / base

    @staticmethod
    def _metric(result: RunResult, metric: str) -> float:
        if metric == "seconds":
            return result.seconds
        if metric == "mrss":
            return float(result.mrss_bytes)
        return float(result.counters[metric])

    # -- grouping (the paper's aggregation scheme) -------------------------

    def grouped_rows(self) -> List[Tuple[str, List[str]]]:
        """(label, benchmark names) rows: suites aggregated, apps singly."""
        rows: List[Tuple[str, List[str]]] = []
        present = set(self.benchmark_names)
        for suite, label in (("jetstream2", "JetStream2"),
                             ("mibench", "MiBench"),
                             ("polybench", "PolyBench")):
            members = [b.name for b in ALL_BENCHMARKS
                       if b.suite == suite and b.name in present]
            if members:
                rows.append((label, members))
        for bench in ALL_BENCHMARKS:
            if bench.suite == "apps" and bench.name in present:
                rows.append((bench.name, [bench.name]))
        return rows
