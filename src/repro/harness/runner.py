"""Experiment runner: compiles and executes WABench configurations.

One :class:`Harness` caches everything — compiled Wasm artifacts, native
binaries, AOT images, and run results — keyed by the full configuration,
so the per-figure experiment drivers can share measurements exactly the
way the paper's figures share one set of `perf` runs.

With a ``cache_dir``, every artifact is also persisted to a
content-addressed on-disk store (:mod:`repro.harness.cache`), so the
cache survives across processes: a warm second ``wabench`` invocation
performs zero compiles, and parallel workers (:mod:`repro.harness.
parallel`) share one store.  Every modeled counter is a pure function of
the cache key, which is what makes warm and parallel runs byte-identical
to cold serial ones.
"""

from __future__ import annotations

import hashlib
import math
import warnings
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .. import __version__ as _REPRO_VERSION
from .. import speed
from ..bench import ALL_BENCHMARKS, Benchmark, get
from ..compiler import compile_source, config_fingerprint
from ..errors import HarnessError
from ..native import nativecc, run_native
from ..obs import NULL_TRACER, Stopwatch
# Engine name lists live in the canonical registry; re-exported here under
# their historical harness names (`from repro.harness import ENGINES` etc.).
from ..registry import ALL_RUNTIME_NAMES as ALL_RUNTIMES
from ..registry import ENGINES
from ..registry import JIT_RUNTIME_NAMES as JIT_RUNTIMES
from ..runtimes import RunResult, make_runtime
from ..wasi import VirtualFS
from .cache import ArtifactCache, CacheStats, cache_key


def geomean(values: Iterable[float], strict: bool = False) -> float:
    """Geometric mean of the positive values.

    Non-positive values cannot enter a geometric mean, but silently
    dropping them masks broken normalizations in figure tables — so any
    drop (and the empty case, which returns 0.0) emits a warning, or
    raises :class:`HarnessError` under ``strict``.
    """
    values = list(values)
    positive = [v for v in values if v > 0]
    if len(positive) != len(values):
        dropped = len(values) - len(positive)
        message = (f"geomean: dropped {dropped} non-positive value(s) "
                   f"out of {len(values)}")
        if strict:
            raise HarnessError(message)
        warnings.warn(message, stacklevel=2)
    if not positive:
        if values:  # everything was dropped; already warned above
            return 0.0
        message = "geomean: empty input, returning 0.0"
        if strict:
            raise HarnessError(message)
        warnings.warn(message, stacklevel=2)
        return 0.0
    return math.exp(sum(math.log(v) for v in positive) / len(positive))


class Harness:
    """Runs (benchmark, engine, -O, AOT) configurations with caching."""

    def __init__(self, size: str = "small", opt_level: int = 2,
                 benchmarks: Optional[Sequence[str]] = None,
                 verbose: bool = False,
                 cache_dir: Optional[str] = None,
                 tracer=None):
        self.size = size
        self.default_opt = opt_level
        self.benchmark_names = list(benchmarks) if benchmarks is not None \
            else [b.name for b in ALL_BENCHMARKS]
        self.verbose = verbose
        self.disk_cache = ArtifactCache(cache_dir) if cache_dir else None
        self.cache_stats = CacheStats()
        # The decoded-module cache persists through the same artifact
        # store; without one it stays purely in-memory (no disk IO).
        speed.module_cache.attach_disk(self.disk_cache,
                                       stats=self.cache_stats)
        #: Session tracer (repro.obs); every run served — executed,
        #: cache-hit, or merged from a worker — is recorded on it.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        # In-memory caches; every key carries (name, opt, size) because
        # ``defines_for(size)`` changes compilation output.
        self._wasm_cache: Dict[Tuple[str, int, str], bytes] = {}
        self._native_cache: Dict[Tuple[str, int, str], object] = {}
        self._aot_cache: Dict[Tuple[str, str, int, str],
                              Tuple[object, float]] = {}
        self._result_cache: Dict[tuple, RunResult] = {}
        self._fingerprints: Dict[Tuple[str, int, str], Dict[str, str]] = {}

    # -- cache keys -------------------------------------------------------

    def _key_fields(self, name: str, opt: int) -> Dict[str, str]:
        """The content-determining fields shared by every artifact kind."""
        memo_key = (name, opt, self.size)
        fields = self._fingerprints.get(memo_key)
        if fields is None:
            bench = get(name)
            defines = bench.defines_for(self.size)
            files = bench.files_for(self.size)
            file_hash = hashlib.sha256()
            for path in sorted(files):
                file_hash.update(path.encode())
                file_hash.update(b"\0")
                file_hash.update(files[path])
                file_hash.update(b"\0")
            fields = {
                "bench": name,
                "source": hashlib.sha256(bench.source.encode()).hexdigest(),
                "config": config_fingerprint(opt, defines=defines),
                "inputs": file_hash.hexdigest(),
                "size": self.size,
                "repro": _REPRO_VERSION,
            }
            self._fingerprints[memo_key] = fields
        return fields

    def artifact_key(self, kind: str, name: str, opt: int,
                     **extra) -> str:
        return cache_key(kind, **self._key_fields(name, opt), **extra)

    # -- building -----------------------------------------------------

    def benchmarks(self) -> List[Benchmark]:
        return [get(name) for name in self.benchmark_names]

    def _fs(self, bench: Benchmark) -> VirtualFS:
        fs = VirtualFS()
        for path, data in bench.files_for(self.size).items():
            fs.add_file(path, data)
        return fs

    def wasm_for(self, name: str, opt: Optional[int] = None) -> bytes:
        opt = self.default_opt if opt is None else opt
        key = (name, opt, self.size)
        if key in self._wasm_cache:
            return self._wasm_cache[key]
        disk_key = self.artifact_key("wasm", name, opt)
        # Compiled bytes are a pure function of the artifact key, so the
        # process-global memo short-circuits the MiniC front-end for
        # fresh Harness instances *without* a cache dir (bench_wall's
        # repeat loop).  With a disk store attached the store stays the
        # source of truth — cache_stats keeps counting exactly as
        # before, and the memo is not consulted.
        if self.disk_cache is None:
            memo = speed.wasm_memo_get(disk_key)
            if memo is not None:
                self._wasm_cache[key] = memo
                return memo
        if self.disk_cache is not None:
            payload = self.disk_cache.get_bytes(disk_key)
            if payload is not None:
                self.cache_stats.hit("wasm")
                self._wasm_cache[key] = payload
                return payload
        bench = get(name)
        watch = Stopwatch()
        wasm = compile_source(bench.source, opt,
                              defines=bench.defines_for(self.size)).wasm_bytes
        self.cache_stats.miss("wasm", watch.seconds)
        if self.disk_cache is not None:
            self.disk_cache.put_bytes(disk_key, wasm)
        else:
            speed.wasm_memo_put(disk_key, wasm)
        self._wasm_cache[key] = wasm
        return wasm

    def native_binary(self, name: str, opt: Optional[int] = None):
        opt = self.default_opt if opt is None else opt
        key = (name, opt, self.size)
        if key in self._native_cache:
            return self._native_cache[key]
        disk_key = self.artifact_key("native", name, opt)
        if self.disk_cache is not None:
            binary = self.disk_cache.get_pickle(disk_key)
            if binary is not None:
                self.cache_stats.hit("native")
                self._native_cache[key] = binary
                return binary
        bench = get(name)
        watch = Stopwatch()
        binary = nativecc(bench.source, opt,
                          defines=bench.defines_for(self.size))
        self.cache_stats.miss("native", watch.seconds)
        if self.disk_cache is not None:
            self.disk_cache.put_pickle(disk_key, binary)
        self._native_cache[key] = binary
        return binary

    def aot_image(self, name: str, runtime: str,
                  opt: Optional[int] = None) -> Tuple[object, float]:
        opt = self.default_opt if opt is None else opt
        key = (name, runtime, opt, self.size)
        if key in self._aot_cache:
            return self._aot_cache[key]
        disk_key = self.artifact_key("aot", name, opt, runtime=runtime)
        if self.disk_cache is not None:
            entry = self.disk_cache.get_pickle(disk_key)
            if entry is not None:
                self.cache_stats.hit("aot")
                self._aot_cache[key] = entry
                return entry
        rt = make_runtime(runtime)
        watch = Stopwatch()
        entry = rt.compile_aot(self.wasm_for(name, opt))
        self.cache_stats.miss("aot", watch.seconds)
        if self.disk_cache is not None:
            self.disk_cache.put_pickle(disk_key, entry)
        self._aot_cache[key] = entry
        return entry

    # -- running --------------------------------------------------------

    def run(self, name: str, engine: str, opt: Optional[int] = None,
            aot: bool = False) -> RunResult:
        """Run one configuration (cached)."""
        opt = self.default_opt if opt is None else opt
        watch = Stopwatch()
        result = self._run_impl(name, engine, opt, aot)
        self.tracer.record_run(
            {"bench": name, "engine": engine, "opt": opt, "aot": aot,
             "size": self.size},
            result, wall_seconds=watch.seconds)
        return result

    def _run_impl(self, name: str, engine: str, opt: int,
                  aot: bool) -> RunResult:
        key = (name, engine, opt, aot, self.size)
        cached = self._result_cache.get(key)
        if cached is not None:
            return cached
        disk_key = self.artifact_key("result", name, opt,
                                     engine=engine, aot=aot)
        if self.disk_cache is not None:
            payload = self.disk_cache.get_bytes(disk_key)
            if payload is not None:
                try:
                    result = RunResult.from_json(payload.decode("utf-8"))
                except (KeyError, TypeError, ValueError,
                        UnicodeDecodeError):
                    result = None
                if result is not None:
                    self.cache_stats.hit("result")
                    self._result_cache[key] = result
                    return result
        bench = get(name)
        if self.verbose:
            print(f"  [run] {name} on {engine} -O{opt}"
                  f"{' (AOT)' if aot else ''}")
        watch = Stopwatch()
        if engine == "native":
            if aot:
                raise HarnessError("AOT does not apply to native execution")
            result = run_native(self.native_binary(name, opt),
                                fs=self._fs(bench))
        else:
            rt = make_runtime(engine)
            image = None
            if aot:
                image, _seconds = self.aot_image(name, engine, opt)
            result = rt.run(self.wasm_for(name, opt), fs=self._fs(bench),
                            aot_image=image)
        if result.trap is not None:
            raise HarnessError(f"{name} on {engine}: {result.trap}")
        self.cache_stats.miss("result", watch.seconds)
        if self.disk_cache is not None:
            self.disk_cache.put_bytes(disk_key,
                                      result.to_json().encode("utf-8"))
        self._result_cache[key] = result
        return result

    def prewarm(self, cells: Sequence[tuple], jobs: int = 1) -> None:
        """Populate the result cache for the given (name, engine, opt,
        aot) cells, fanning out across ``jobs`` worker processes."""
        from .parallel import run_cells
        run_cells(self, cells, jobs)

    def verify_outputs(self, name: str,
                       engines: Sequence[str] = ENGINES) -> None:
        """Assert every engine produced byte-identical output."""
        outputs = {e: self.run(name, e).stdout for e in engines}
        reference = outputs["native"] if "native" in outputs else \
            next(iter(outputs.values()))
        for engine, out in outputs.items():
            if out != reference:
                raise HarnessError(
                    f"{name}: output divergence on {engine}")

    # -- metric helpers ----------------------------------------------------

    def normalized(self, name: str, engine: str, metric: str,
                   opt: Optional[int] = None, aot: bool = False) -> float:
        """Metric of engine / metric of native, for one benchmark."""
        base = self._metric(self.run(name, "native", opt), metric)
        value = self._metric(self.run(name, engine, opt, aot), metric)
        if base == 0:
            return 0.0
        return value / base

    @staticmethod
    def _metric(result: RunResult, metric: str) -> float:
        if metric == "seconds":
            return result.seconds
        if metric == "mrss":
            return float(result.mrss_bytes)
        return float(result.counters[metric])

    # -- grouping (the paper's aggregation scheme) -------------------------

    def grouped_rows(self) -> List[Tuple[str, List[str]]]:
        """(label, benchmark names) rows: suites aggregated, apps singly."""
        rows: List[Tuple[str, List[str]]] = []
        present = set(self.benchmark_names)
        for suite, label in (("jetstream2", "JetStream2"),
                             ("mibench", "MiBench"),
                             ("polybench", "PolyBench")):
            members = [b.name for b in ALL_BENCHMARKS
                       if b.suite == suite and b.name in present]
            if members:
                rows.append((label, members))
        for bench in ALL_BENCHMARKS:
            if bench.suite == "apps" and bench.name in present:
                rows.append((bench.name, [bench.name]))
        return rows
