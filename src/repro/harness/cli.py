"""``wabench`` command line: run benchmarks and regenerate paper artifacts.

Examples::

    wabench list
    wabench run gemm --runtime wasm3 --size small -O2
    wabench fig1 --size small
    wabench all --size small --out results/ --jobs 4

Artifacts (compiled Wasm, native binaries, AOT images, run results) are
cached in a persistent content-addressed store (``--cache-dir``, default
``$WABENCH_CACHE_DIR`` or ``~/.cache/wabench``); a warm rerun performs
zero compiles.  ``--no-cache`` disables the store, ``--jobs N`` fans the
measurement cells out over N worker processes.

``wabench fuzz`` runs the differential-fuzzing subsystem: seeded
generated programs executed on every engine at multiple -O levels, with
divergences optionally minimized to corpus reproducers::

    wabench fuzz --seed 42 --budget 50 --jobs 4
    wabench fuzz --seed 42 --budget 50 --minimize --corpus-dir corpus
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import List, Optional

from ..bench import ALL_BENCHMARKS, names
from ..errors import HarnessError
from .cache import default_cache_dir
from .experiments import EXPERIMENTS
from .report import render_cache_stats
from .runner import ENGINES, Harness


def _cmd_list(args) -> int:
    print(f"{'name':16s} {'suite':11s} {'domain':22s} description")
    for bench in ALL_BENCHMARKS:
        print(f"{bench.name:16s} {bench.suite:11s} {bench.domain:22s} "
              f"{bench.description}")
    return 0


def _make_harness(args, benchmarks: Optional[List[str]] = None) -> Harness:
    cache_dir = None if args.no_cache else \
        (args.cache_dir or default_cache_dir())
    return Harness(size=args.size, opt_level=args.opt,
                   benchmarks=benchmarks, verbose=args.verbose,
                   cache_dir=cache_dir)


def _cmd_run(args) -> int:
    if args.benchmarks:
        print("wabench: 'run' takes a single positional benchmark; "
              "--benchmarks only applies to experiment commands "
              "(fig1..fig14, table4, table5, metrics, all)",
              file=sys.stderr)
        return 2
    harness = _make_harness(args, benchmarks=[args.benchmark])
    engines = [args.runtime] if args.runtime else list(ENGINES)
    if args.jobs > 1:
        cells = [(args.benchmark, engine, args.opt, args.aot)
                 for engine in engines
                 if not (engine == "native" and args.aot)]
        harness.prewarm(cells, jobs=args.jobs)
    lines = []
    for engine in engines:
        start = time.time()
        result = harness.run(args.benchmark, engine, aot=args.aot)
        wall = time.time() - start
        lines.append(f"--- {engine} ({wall:.2f}s wall)")
        lines.append(result.stdout_text().rstrip("\n"))
        lines.append(
            f"    modeled: {result.seconds * 1e3:.3f} ms, "
            f"{result.counters['instructions']:,} instructions, "
            f"IPC {result.counters['ipc']:.2f}, "
            f"MRSS {result.mrss_bytes / 1e6:.2f} MB, "
            f"bpm {result.counters['branch_miss_ratio']:.2%}, "
            f"cache-miss {result.counters['cache_miss_ratio']:.2%}")
    text = "\n".join(lines)
    print(text)
    print(render_cache_stats(harness.cache_stats))
    if args.out:
        os.makedirs(args.out, exist_ok=True)
        path = os.path.join(args.out, f"run-{args.benchmark}.txt")
        with open(path, "w") as f:
            f.write(text + "\n")
        print(f"wrote {path}")
    return 0


def _cmd_fuzz(args) -> int:
    from ..fuzz import Corpus, run_campaign
    from ..fuzz.engines import DEFAULT_ENGINES
    from .cache import default_cache_dir

    engines = tuple(e.strip() for e in args.engines.split(",")) \
        if args.engines else DEFAULT_ENGINES
    opt_levels = tuple(int(o) for o in args.opt_levels.split(","))
    cache_dir = None if args.no_cache else \
        (args.cache_dir or default_cache_dir())
    corpus = Corpus(args.corpus_dir or "corpus") \
        if (args.minimize or args.corpus_dir) else None

    progress = None
    if args.verbose:
        def progress(verdict):
            status = "ok" if verdict.ok else "DIVERGES"
            print(f"  [fuzz] program {verdict.index} "
                  f"seed={verdict.seed} {status}", flush=True)

    start = time.time()
    report = run_campaign(
        base_seed=args.seed, budget=args.budget,
        size_budget=args.size_budget, engines=engines,
        opt_levels=opt_levels, minimize=args.minimize,
        corpus=corpus, cache_dir=cache_dir, jobs=args.jobs,
        progress=progress)
    text = report.render(verbose=args.verbose)
    print(text)
    print(render_cache_stats(report.cache_stats,
                             wall_seconds=time.time() - start))
    if args.out:
        os.makedirs(args.out, exist_ok=True)
        path = os.path.join(args.out, f"fuzz-seed{args.seed}.txt")
        with open(path, "w") as f:
            f.write(text + "\n")
        print(f"wrote {path}")
    return 0 if report.ok else 1


def _run_experiments(ids: List[str], args) -> int:
    bench_subset: Optional[List[str]] = None
    if args.benchmarks:
        bench_subset = [b.strip() for b in args.benchmarks.split(",")]
    harness = _make_harness(args, benchmarks=bench_subset)
    total_start = time.time()
    if args.jobs > 1:
        from .parallel import plan_cells
        cells = plan_cells(harness, ids)
        if cells:
            print(f"[jobs] prewarming {len(cells)} cells "
                  f"across {args.jobs} workers")
            harness.prewarm(cells, jobs=args.jobs)
    outputs = []
    for experiment_id in ids:
        fn = EXPERIMENTS[experiment_id]
        start = time.time()
        table = fn(harness)
        text = table.render()
        outputs.append((experiment_id, text))
        print(text)
        print(f"  [{experiment_id} regenerated in {time.time() - start:.1f}s "
              f"wall]\n")
    print(render_cache_stats(harness.cache_stats,
                             wall_seconds=time.time() - total_start))
    if args.out:
        os.makedirs(args.out, exist_ok=True)
        for experiment_id, text in outputs:
            path = os.path.join(args.out, f"{experiment_id}.txt")
            with open(path, "w") as f:
                f.write(text + "\n")
        print(f"wrote {len(outputs)} artifact(s) to {args.out}/")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="wabench",
        description="WABench-repro: regenerate the paper's experiments")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the 50 benchmarks")

    run_p = sub.add_parser("run", help="run one benchmark")
    run_p.add_argument("benchmark", choices=names())
    run_p.add_argument("--runtime", default=None,
                       help="native|wasmtime|wavm|wasmer|wasm3|wamr|"
                            "wasmer-<backend> (default: all)")
    run_p.add_argument("--aot", action="store_true")

    for experiment_id in EXPERIMENTS:
        sub.add_parser(experiment_id,
                       help=f"regenerate {experiment_id}")
    sub.add_parser("all", help="regenerate every figure and table")

    for name, p in sub.choices.items():
        if name == "list":
            continue
        p.add_argument("--size", default="small",
                       choices=("test", "small", "ref"))
        p.add_argument("-O", "--opt", type=int, default=2)
        p.add_argument("--benchmarks", default=None,
                       help="comma-separated subset of benchmark names")
        p.add_argument("--out", default=None,
                       help="directory to write artifact text files")
        p.add_argument("--verbose", action="store_true")
        p.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="fan measurement cells out over N worker "
                            "processes (default: 1, serial)")
        p.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="artifact cache directory (default: "
                            "$WABENCH_CACHE_DIR or ~/.cache/wabench)")
        p.add_argument("--no-cache", action="store_true",
                       help="do not read or write the on-disk "
                            "artifact cache")

    fuzz_p = sub.add_parser(
        "fuzz", help="differential fuzzing across engines and -O levels")
    fuzz_p.add_argument("--seed", type=int, default=42,
                        help="campaign base seed (default: 42)")
    fuzz_p.add_argument("--budget", type=int, default=50, metavar="N",
                        help="number of generated programs (default: 50)")
    fuzz_p.add_argument("--size-budget", type=int, default=24,
                        metavar="S",
                        help="statements per generated program "
                             "(default: 24)")
    fuzz_p.add_argument("--engines", default=None,
                        help="comma-separated engine list (default: "
                             "native,wamr,wasm3,wasmtime,wavm,wasmer,"
                             "wasmtime-aot)")
    fuzz_p.add_argument("--opt-levels", default="0,2",
                        help="comma-separated -O levels (default: 0,2)")
    fuzz_p.add_argument("--minimize", action="store_true",
                        help="delta-debug each divergence to a minimal "
                             "reproducer saved in the corpus")
    fuzz_p.add_argument("--corpus-dir", default=None, metavar="DIR",
                        help="corpus directory (default: corpus/; only "
                             "written with --minimize or when given)")
    fuzz_p.add_argument("--verbose", action="store_true")
    fuzz_p.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="fan programs out over N worker processes")
    fuzz_p.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="artifact cache directory (default: "
                             "$WABENCH_CACHE_DIR or ~/.cache/wabench)")
    fuzz_p.add_argument("--no-cache", action="store_true",
                        help="do not read or write the on-disk "
                             "artifact cache")
    fuzz_p.add_argument("--out", default=None,
                        help="directory to write the campaign report")

    args = parser.parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list(args)
        if args.command == "fuzz":
            return _cmd_fuzz(args)
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "all":
            return _run_experiments(list(EXPERIMENTS), args)
        return _run_experiments([args.command], args)
    except HarnessError as exc:
        print(f"wabench: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
